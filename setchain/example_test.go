package setchain_test

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/spec"
	"repro/setchain"
)

// The basic lifecycle: build a deployment, add an element, advance
// virtual time until it settles, and confirm commitment against another
// (possibly Byzantine) server using f+1 epoch-proofs.
func Example() {
	net, err := setchain.New(setchain.Config{
		Algorithm: setchain.Hashchain,
		Servers:   4,
	})
	if err != nil {
		panic(err)
	}

	id, err := net.Client(0).Add([]byte("hello setchain"))
	if err != nil {
		panic(err)
	}
	settled := net.RunUntilSettled(2 * time.Minute)

	// Confirm against server 1: the client verifies f+1 epoch-proofs with
	// the PKI alone, trusting no single server.
	epoch, err := net.Client(0).Confirm(1, id)
	fmt.Printf("settled=%v epoch=%d err=%v\n", settled, epoch, err)
	fmt.Printf("added=%d committed=%d epochs_at_server0=%d\n",
		net.Added(), net.Committed(), net.EpochCount(0))
	// Output:
	// settled=true epoch=1 err=<nil>
	// added=1 committed=1 epochs_at_server0=1
}

// Scenarios are data: the same JSON document setchain-bench runs with
// -spec decodes into executable cells, and the harness returns the
// measurements every registry figure is built from. Every run ends with
// the internal/invariant safety check (Result.Invariant).
func Example_specDrivenRun() {
	cells, err := spec.Decode(strings.NewReader(`{
		"algorithm": "hashchain",
		"servers":   4,
		"rate":      300,
		"send_for":  "4s",
		"horizon":   "20s"
	}`))
	if err != nil {
		panic(err)
	}
	results, err := harness.RunSpecs(cells, 1)
	if err != nil {
		panic(err)
	}
	r := results[0]
	fmt.Printf("%s: injected=%d committed=%d eff@2x=%.3f safety_ok=%v\n",
		cells[0].Label(), r.Injected, r.Committed, r.Eff100, r.Invariant == nil)
	// Output:
	// Hashchain c=100: injected=1200 committed=1200 eff@2x=1.000 safety_ok=true
}
