// Package setchain is the public API of this repository: a Byzantine
// fault tolerant Setchain — a distributed grow-only set organized into a
// sequence of unordered epochs — implemented with the three algorithms of
// "Setchain Algorithms for Blockchain Scalability" (Vanilla, Compresschain
// and Hashchain) on top of a CometBFT-style block-based ledger.
//
// A Network is a complete deployment (ledger validators, Setchain servers,
// one client per server) running on a deterministic virtual-time simulator:
// time advances only through Run/RunUntilSettled, so tests and examples are
// exactly reproducible.
//
// Quickstart:
//
//	net, _ := setchain.New(setchain.Config{Algorithm: setchain.Hashchain, Servers: 4})
//	id, _ := net.Client(0).Add([]byte("hello setchain"))
//	net.RunUntilSettled(2 * time.Minute)
//	epoch, err := net.Client(0).Confirm(1, id) // verify via f+1 epoch-proofs
package setchain

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/setcrypto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Algorithm selects one of the paper's three Setchain implementations.
type Algorithm = core.Algorithm

// The three algorithms, in the paper's order.
const (
	// Vanilla appends each element as its own ledger transaction.
	Vanilla = core.Vanilla
	// Compresschain appends compressed element batches.
	Compresschain = core.Compresschain
	// Hashchain appends signed batch hashes and recovers contents through
	// the distributed batch store (the paper's primary contribution).
	Hashchain = core.Hashchain
)

// ElementID identifies an element added to the Setchain.
type ElementID = wire.ElementID

// Epoch is one entry of the Setchain history.
type Epoch = core.Epoch

// Byzantine configures faulty-server behavior (see the fields of
// core.Behavior: refuse to serve batches, serve wrong batches, corrupt
// proofs, inject invalid elements).
type Byzantine = core.Behavior

// Config describes a deployment.
type Config struct {
	// Algorithm selects Vanilla, Compresschain or Hashchain (default
	// Hashchain, the paper's best performer).
	Algorithm Algorithm
	// Servers is the number of Setchain/ledger servers (default 4).
	Servers int
	// F is the maximum number of Byzantine servers tolerated by the
	// Setchain layer (f < n/2); epoch confirmation requires f+1
	// epoch-proofs. Defaults to (Servers-1)/2.
	F int
	// CollectorSize is the batch collector limit c (default 100).
	CollectorSize int
	// CollectorTimeout flushes partial batches (default 500 ms).
	CollectorTimeout time.Duration
	// NetworkDelay adds artificial latency to every server-to-server
	// message, emulating WAN deployments (the paper's network_delay).
	NetworkDelay time.Duration
	// BlockBytes is the ledger block capacity (default 0.5 MiB).
	BlockBytes int
	// Seed makes the virtual-time simulation reproducible (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.F == 0 {
		c.F = (c.Servers - 1) / 2
	}
	if c.CollectorSize == 0 {
		c.CollectorSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Network is a running Setchain deployment on a virtual-time simulator.
type Network struct {
	cfg Config
	sim *sim.Simulator
	dep *core.Deployment
	rec *metrics.Recorder
}

// New builds and starts a deployment with real cryptography (ed25519 +
// SHA-512) and full payload fidelity.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Servers < 1 {
		return nil, errors.New("setchain: need at least one server")
	}
	if cfg.F >= cfg.Servers {
		return nil, fmt.Errorf("setchain: F=%d must be < Servers=%d", cfg.F, cfg.Servers)
	}
	s := sim.New(cfg.Seed)
	rec := metrics.New(s, metrics.LevelThroughput, cfg.Servers, cfg.F, 0)
	netCfg := netsim.DefaultLANConfig()
	netCfg.ExtraDelay = cfg.NetworkDelay
	consParams := consensus.PaperParams()
	if cfg.BlockBytes > 0 {
		consParams.MaxBlockBytes = cfg.BlockBytes
	}
	dep := core.Deploy(s, cfg.Servers, ledger.Config{
		Net:       netCfg,
		Consensus: consParams,
		Mempool:   mempool.PaperConfig(),
		Suite:     setcrypto.Ed25519Suite{},
	}, core.Options{
		Algorithm:        cfg.Algorithm,
		Mode:             core.Full,
		CollectorLimit:   cfg.CollectorSize,
		CollectorTimeout: cfg.CollectorTimeout,
		F:                cfg.F,
	}, rec)
	dep.Start()
	return &Network{cfg: cfg, sim: s, dep: dep, rec: rec}, nil
}

// Servers returns the deployment size n.
func (n *Network) Servers() int { return n.cfg.Servers }

// F returns the Byzantine fault bound.
func (n *Network) F() int { return n.cfg.F }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// Run advances virtual time by d, delivering messages, committing ledger
// blocks and consolidating epochs.
func (n *Network) Run(d time.Duration) {
	n.sim.RunUntil(n.sim.Now() + d)
}

// RunUntilSettled advances time until every element added so far is
// committed (in an epoch with f+1 proofs on the ledger) or maxWait
// elapses. Returns whether everything settled.
func (n *Network) RunUntilSettled(maxWait time.Duration) bool {
	deadline := n.sim.Now() + maxWait
	for n.sim.Now() < deadline {
		if n.rec.TotalCommitted() >= n.rec.TotalInjected() && n.rec.TotalInjected() > 0 {
			return true
		}
		n.dep.Drain()
		n.sim.RunUntil(n.sim.Now() + time.Second)
	}
	return n.rec.TotalCommitted() >= n.rec.TotalInjected()
}

// SetByzantine installs faulty behavior on one server (nil restores
// correct behavior). Use before or between Run calls.
func (n *Network) SetByzantine(server int, b *Byzantine) {
	n.dep.Servers[server].SetBehavior(b)
}

// Client returns the client attached to a server (one per server, as in
// the paper's deployment).
func (n *Network) Client(server int) *Client {
	return &Client{net: n, server: server}
}

// History returns server's current epoch sequence (read-only view).
func (n *Network) History(server int) []*Epoch {
	return n.dep.Servers[server].Get().History
}

// EpochCount returns the epoch counter at a server.
func (n *Network) EpochCount(server int) uint64 {
	return n.dep.Servers[server].Get().Epoch
}

// Committed returns how many added elements are committed so far.
func (n *Network) Committed() uint64 { return n.rec.TotalCommitted() }

// Added returns how many elements clients have added.
func (n *Network) Added() uint64 { return n.rec.TotalInjected() }

// Client adds elements through one server and verifies commitment against
// any (possibly different, possibly Byzantine) server using f+1
// epoch-proofs — the paper's single-server interaction model.
type Client struct {
	net    *Network
	server int
}

// Add creates a signed element carrying payload and submits it to the
// client's server. The returned id is used to confirm commitment later.
// The element is not yet durable when Add returns: advance time with
// Network.Run or RunUntilSettled.
func (c *Client) Add(payload []byte) (ElementID, error) {
	cl := c.net.dep.Clients[c.server]
	e := cl.NewElement(payload)
	e.InjectedAt = int64(c.net.sim.Now())
	if err := c.net.dep.Servers[c.server].Add(e); err != nil {
		return ElementID{}, err
	}
	c.net.rec.Injected(e)
	return e.ID, nil
}

// Confirm asks the given server for its get() state and verifies — using
// only the PKI — that the element is in an epoch carrying at least f+1
// valid epoch-proofs. Returns the epoch number.
func (c *Client) Confirm(askServer int, id ElementID) (uint64, error) {
	cl := c.net.dep.Clients[c.server]
	snap := c.net.dep.Servers[askServer].Get()
	return cl.VerifyCommitted(snap, id)
}

// InSet reports whether a server's the_set contains the element (weaker
// than Confirm: no proof verification).
func (c *Client) InSet(askServer int, id ElementID) bool {
	snap := c.net.dep.Servers[askServer].Get()
	_, ok := snap.TheSet[id]
	return ok
}

// Find returns the epoch containing the element at a server, or nil.
func (c *Client) Find(askServer int, id ElementID) *Epoch {
	snap := c.net.dep.Servers[askServer].Get()
	for _, ep := range snap.History {
		for _, e := range ep.Elements {
			if e.ID == id {
				return ep
			}
		}
	}
	return nil
}
