package setchain_test

import (
	"fmt"
	"testing"
	"time"

	"repro/setchain"
)

func TestQuickstartFlow(t *testing.T) {
	for _, alg := range []setchain.Algorithm{setchain.Vanilla, setchain.Compresschain, setchain.Hashchain} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			net, err := setchain.New(setchain.Config{Algorithm: alg, Servers: 4, CollectorSize: 5})
			if err != nil {
				t.Fatal(err)
			}
			id, err := net.Client(0).Add([]byte("hello setchain"))
			if err != nil {
				t.Fatal(err)
			}
			if !net.RunUntilSettled(2 * time.Minute) {
				t.Fatal("element never settled")
			}
			// Confirm against a different server than the one used to add.
			epoch, err := net.Client(0).Confirm(2, id)
			if err != nil {
				t.Fatalf("Confirm: %v", err)
			}
			if epoch == 0 {
				t.Fatal("epoch = 0")
			}
			if !net.Client(0).InSet(1, id) {
				t.Fatal("element missing from the_set")
			}
			if ep := net.Client(0).Find(3, id); ep == nil || ep.Number != epoch {
				t.Fatal("Find disagrees with Confirm")
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := setchain.New(setchain.Config{Servers: -1}); err == nil {
		t.Fatal("negative servers accepted")
	}
	if _, err := setchain.New(setchain.Config{Servers: 3, F: 3}); err == nil {
		t.Fatal("F >= Servers accepted")
	}
}

func TestDefaults(t *testing.T) {
	net, err := setchain.New(setchain.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if net.Servers() != 4 || net.F() != 1 {
		t.Fatalf("defaults: n=%d f=%d, want 4/1", net.Servers(), net.F())
	}
}

func TestManyClientsManyElements(t *testing.T) {
	net, err := setchain.New(setchain.Config{Algorithm: setchain.Hashchain, Servers: 4, CollectorSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var ids []setchain.ElementID
	for i := 0; i < 40; i++ {
		id, err := net.Client(i % 4).Add([]byte(fmt.Sprintf("item-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		net.Run(100 * time.Millisecond)
	}
	if !net.RunUntilSettled(3 * time.Minute) {
		t.Fatalf("settled %d of %d", net.Committed(), net.Added())
	}
	for _, id := range ids {
		if _, err := net.Client(0).Confirm(1, id); err != nil {
			t.Fatalf("Confirm(%v): %v", id, err)
		}
	}
	// Histories agree across servers (Consistent-Gets through the API).
	h0 := net.History(0)
	for srv := 1; srv < 4; srv++ {
		h := net.History(srv)
		m := len(h0)
		if len(h) < m {
			m = len(h)
		}
		for k := 0; k < m; k++ {
			if len(h0[k].Elements) != len(h[k].Elements) {
				t.Fatalf("server %d epoch %d differs", srv, k+1)
			}
		}
	}
}

func TestDuplicateAddRejectedThroughAPI(t *testing.T) {
	net, err := setchain.New(setchain.Config{Servers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Same payload from the same client yields distinct elements (distinct
	// sequence numbers), so both succeed.
	a, err := net.Client(0).Add([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Client(0).Add([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two adds produced the same element id")
	}
}

func TestByzantineServerThroughAPI(t *testing.T) {
	net, err := setchain.New(setchain.Config{Algorithm: setchain.Hashchain, Servers: 4, CollectorSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	net.SetByzantine(3, &setchain.Byzantine{
		RefuseServe:         func(int, []byte) bool { return true },
		InjectBogusElements: 2,
	})
	var ids []setchain.ElementID
	for i := 0; i < 12; i++ {
		id, err := net.Client(i % 3).Add([]byte(fmt.Sprintf("honest-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		net.Run(200 * time.Millisecond)
	}
	net.Run(60 * time.Second)
	for _, id := range ids {
		if _, err := net.Client(0).Confirm(1, id); err != nil {
			t.Fatalf("honest element not confirmed under Byzantine server: %v", err)
		}
	}
}

func TestDeterministicSeeds(t *testing.T) {
	run := func() uint64 {
		net, _ := setchain.New(setchain.Config{Algorithm: setchain.Compresschain, Servers: 4, Seed: 9})
		for i := 0; i < 10; i++ {
			net.Client(i % 4).Add([]byte(fmt.Sprintf("d-%d", i)))
		}
		net.RunUntilSettled(time.Minute)
		return net.Committed()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different outcomes: %d vs %d", a, b)
	}
}

func TestClockOnlyAdvancesWhenRun(t *testing.T) {
	net, _ := setchain.New(setchain.Config{Servers: 4})
	t0 := net.Now()
	net.Client(0).Add([]byte("static"))
	if net.Now() != t0 {
		t.Fatal("Add advanced virtual time")
	}
	net.Run(3 * time.Second)
	if net.Now() != t0+3*time.Second {
		t.Fatalf("Now = %v, want %v", net.Now(), t0+3*time.Second)
	}
}

func TestNetworkDelayConfig(t *testing.T) {
	// A WAN-like deployment still settles, just slower than the LAN one.
	lan, err := setchain.New(setchain.Config{Servers: 4, CollectorSize: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wan, err := setchain.New(setchain.Config{Servers: 4, CollectorSize: 5, Seed: 3,
		NetworkDelay: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	settle := func(n *setchain.Network) time.Duration {
		if _, err := n.Client(0).Add([]byte("timed")); err != nil {
			t.Fatal(err)
		}
		if !n.RunUntilSettled(2 * time.Minute) {
			t.Fatal("never settled")
		}
		return n.Now()
	}
	tLan, tWan := settle(lan), settle(wan)
	if tWan <= tLan {
		t.Fatalf("WAN settle (%v) not slower than LAN (%v)", tWan, tLan)
	}
}

func TestCustomBlockBytes(t *testing.T) {
	// A tiny block size still makes progress (elements span many blocks).
	net, err := setchain.New(setchain.Config{
		Algorithm: setchain.Vanilla, Servers: 4, BlockBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := net.Client(i % 4).Add([]byte(fmt.Sprintf("small-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !net.RunUntilSettled(3 * time.Minute) {
		t.Fatalf("small blocks stalled: %d of %d", net.Committed(), net.Added())
	}
	if net.EpochCount(0) < 2 {
		t.Fatalf("epochs = %d, want several with 2 KiB blocks", net.EpochCount(0))
	}
}
