// Package execution implements the paper's Appendix G extension: turning
// the Setchain into a fully functional blockchain, the way Hyperledger
// Fabric and RedBelly do.
//
//  1. While elements are added and epochs are formed, each transaction is
//     validated optimistically by itself — independently of all other
//     transactions, in parallel — ignoring its semantics (ValidateParallel).
//  2. After an epoch consolidates and its transactions are ordered, their
//     effects are computed sequentially at their final position; a
//     transaction whose semantics fail (e.g. insufficient balance) is
//     marked void rather than removed (State.ApplyEpoch).
//
// The demonstration state machine is an account-based token ledger; every
// correct server replaying the same epoch sequence reaches the same state,
// including the same void set.
//
// See DESIGN.md §2 (layering).
package execution

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// Transfer is the demonstration transaction: move Amount from From to To.
type Transfer struct {
	From   string
	To     string
	Amount uint64
}

// Payload errors.
var (
	ErrNotTransfer = errors.New("execution: payload is not a transfer")
	ErrTruncated   = errors.New("execution: truncated transfer payload")
)

// transferMagic tags transfer payloads.
const transferMagic = 0x5E

// EncodeTransfer renders a transfer as an element payload.
func EncodeTransfer(t Transfer) []byte {
	buf := []byte{transferMagic}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.From)))
	buf = append(buf, t.From...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.To)))
	buf = append(buf, t.To...)
	buf = binary.LittleEndian.AppendUint64(buf, t.Amount)
	return buf
}

// DecodeTransfer parses an element payload.
func DecodeTransfer(payload []byte) (Transfer, error) {
	var t Transfer
	if len(payload) < 1 || payload[0] != transferMagic {
		return t, ErrNotTransfer
	}
	off := 1
	str := func() (string, error) {
		if off+4 > len(payload) {
			return "", ErrTruncated
		}
		n := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if n < 0 || off+n > len(payload) {
			return "", ErrTruncated
		}
		s := string(payload[off : off+n])
		off += n
		return s, nil
	}
	var err error
	if t.From, err = str(); err != nil {
		return t, err
	}
	if t.To, err = str(); err != nil {
		return t, err
	}
	if off+8 > len(payload) {
		return t, ErrTruncated
	}
	t.Amount = binary.LittleEndian.Uint64(payload[off:])
	return t, nil
}

// ValidateParallel performs the optimistic, order-independent validation
// step over a batch of elements using a bounded worker pool: each element
// is checked in isolation (decodable payload, syntactically sane transfer).
// Results are positionally stable, so the outcome is deterministic
// regardless of scheduling. workers <= 0 uses GOMAXPROCS.
func ValidateParallel(elems []*wire.Element, workers int) []bool {
	out := make([]bool, len(elems))
	if len(elems) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(elems) {
		workers = len(elems)
	}
	var wg sync.WaitGroup
	chunk := (len(elems) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(elems) {
			hi = len(elems)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = validateOne(elems[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func validateOne(e *wire.Element) bool {
	if e == nil || len(e.Payload) == 0 {
		return false
	}
	t, err := DecodeTransfer(e.Payload)
	if err != nil {
		return false
	}
	return t.From != "" && t.To != "" && t.From != t.To && t.Amount > 0
}

// Status is a transaction's execution outcome.
type Status uint8

// Execution outcomes.
const (
	// Applied means the transfer executed and changed balances.
	Applied Status = iota
	// Void means the transfer was ordered but semantically invalid at its
	// final position (paper Appendix G: "marked as void").
	Void
	// Rejected means the payload was not a well-formed transfer at all.
	Rejected
)

func (s Status) String() string {
	switch s {
	case Applied:
		return "applied"
	case Void:
		return "void"
	default:
		return "rejected"
	}
}

// Receipt records one transaction's outcome at its final position.
type Receipt struct {
	Element wire.ElementID
	Epoch   uint64
	Index   int
	Status  Status
	Reason  string
}

// State is the replicated token-ledger state built by executing epochs in
// order.
type State struct {
	balances map[string]uint64
	applied  uint64 // epochs executed
	receipts map[wire.ElementID]Receipt

	// Counters.
	executed uint64
	voided   uint64
	rejected uint64
}

// NewState creates a state with the given genesis balances.
func NewState(genesis map[string]uint64) *State {
	st := &State{
		balances: make(map[string]uint64, len(genesis)),
		receipts: make(map[wire.ElementID]Receipt),
	}
	for acct, bal := range genesis {
		st.balances[acct] = bal
	}
	return st
}

// Balance returns an account's balance (0 for unknown accounts).
func (st *State) Balance(acct string) uint64 { return st.balances[acct] }

// EpochsExecuted returns how many epochs have been applied.
func (st *State) EpochsExecuted() uint64 { return st.applied }

// Counters returns (executed, voided, rejected) transaction totals.
func (st *State) Counters() (executed, voided, rejected uint64) {
	return st.executed, st.voided, st.rejected
}

// Receipt returns the execution receipt for an element, if executed.
func (st *State) Receipt(id wire.ElementID) (Receipt, bool) {
	r, ok := st.receipts[id]
	return r, ok
}

// TotalSupply sums all balances (conserved by construction).
func (st *State) TotalSupply() uint64 {
	var total uint64
	for _, b := range st.balances {
		total += b
	}
	return total
}

// ApplyEpoch executes one consolidated epoch's transactions sequentially at
// their final positions. Epochs must be applied in order; out-of-order
// application returns an error and changes nothing.
func (st *State) ApplyEpoch(ep *core.Epoch) ([]Receipt, error) {
	if ep.Number != st.applied+1 {
		return nil, fmt.Errorf("execution: epoch %d applied after %d (want %d)",
			ep.Number, st.applied, st.applied+1)
	}
	receipts := make([]Receipt, 0, len(ep.Elements))
	for i, e := range ep.Elements {
		r := Receipt{Element: e.ID, Epoch: ep.Number, Index: i}
		t, err := DecodeTransfer(e.Payload)
		switch {
		case err != nil:
			r.Status = Rejected
			r.Reason = err.Error()
			st.rejected++
		case t.From == t.To || t.Amount == 0:
			r.Status = Rejected
			r.Reason = "malformed transfer"
			st.rejected++
		case st.balances[t.From] < t.Amount:
			// Ordered but semantically invalid at its final position.
			r.Status = Void
			r.Reason = fmt.Sprintf("insufficient balance: %d < %d", st.balances[t.From], t.Amount)
			st.voided++
		default:
			st.balances[t.From] -= t.Amount
			st.balances[t.To] += t.Amount
			r.Status = Applied
			st.executed++
		}
		st.receipts[e.ID] = r
		receipts = append(receipts, r)
	}
	st.applied = ep.Number
	return receipts, nil
}

// Replay executes a history prefix from scratch; all correct servers
// replaying the same history reach identical states (the blockchain
// determinism requirement).
func Replay(genesis map[string]uint64, history []*core.Epoch) (*State, error) {
	st := NewState(genesis)
	for _, ep := range history {
		if _, err := st.ApplyEpoch(ep); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Equal reports whether two states have identical balances and counters
// (consistency check across servers).
func (st *State) Equal(other *State) bool {
	if st.applied != other.applied || st.executed != other.executed ||
		st.voided != other.voided || st.rejected != other.rejected {
		return false
	}
	if len(st.balances) != len(other.balances) {
		// Accounts with zero balance may or may not be materialized;
		// compare through both directions instead of by length alone.
		for k, v := range st.balances {
			if other.balances[k] != v {
				return false
			}
		}
		for k, v := range other.balances {
			if st.balances[k] != v {
				return false
			}
		}
		return true
	}
	for k, v := range st.balances {
		if other.balances[k] != v {
			return false
		}
	}
	return true
}
