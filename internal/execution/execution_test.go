package execution

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/wire"
)

func elemWithTransfer(i int, t Transfer) *wire.Element {
	e := &wire.Element{Payload: EncodeTransfer(t), Size: 100}
	e.ID[0] = byte(i)
	e.ID[1] = byte(i >> 8)
	return e
}

func epoch(n uint64, elems ...*wire.Element) *core.Epoch {
	return &core.Epoch{Number: n, Elements: elems}
}

func TestTransferRoundTrip(t *testing.T) {
	in := Transfer{From: "alice", To: "bob", Amount: 42}
	out, err := DecodeTransfer(EncodeTransfer(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestDecodeTransferErrors(t *testing.T) {
	if _, err := DecodeTransfer(nil); err != ErrNotTransfer {
		t.Fatalf("nil payload: %v", err)
	}
	if _, err := DecodeTransfer([]byte{0x00, 1, 2}); err != ErrNotTransfer {
		t.Fatalf("wrong magic: %v", err)
	}
	enc := EncodeTransfer(Transfer{From: "a", To: "b", Amount: 1})
	for _, cut := range []int{1, 3, 6, len(enc) - 1} {
		if _, err := DecodeTransfer(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestApplyEpochBasics(t *testing.T) {
	st := NewState(map[string]uint64{"alice": 100})
	receipts, err := st.ApplyEpoch(epoch(1,
		elemWithTransfer(1, Transfer{From: "alice", To: "bob", Amount: 60}),
		elemWithTransfer(2, Transfer{From: "bob", To: "carol", Amount: 10}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if receipts[0].Status != Applied || receipts[1].Status != Applied {
		t.Fatalf("receipts: %+v", receipts)
	}
	if st.Balance("alice") != 40 || st.Balance("bob") != 50 || st.Balance("carol") != 10 {
		t.Fatalf("balances wrong: a=%d b=%d c=%d",
			st.Balance("alice"), st.Balance("bob"), st.Balance("carol"))
	}
}

func TestVoidMarking(t *testing.T) {
	// Appendix G: a transaction invalid at its final position is marked
	// void, not dropped — and later transactions still execute.
	st := NewState(map[string]uint64{"alice": 50})
	receipts, err := st.ApplyEpoch(epoch(1,
		elemWithTransfer(1, Transfer{From: "alice", To: "bob", Amount: 80}), // void
		elemWithTransfer(2, Transfer{From: "alice", To: "bob", Amount: 30}), // applies
	))
	if err != nil {
		t.Fatal(err)
	}
	if receipts[0].Status != Void {
		t.Fatalf("overdraft status = %v, want void", receipts[0].Status)
	}
	if receipts[1].Status != Applied {
		t.Fatalf("second transfer = %v, want applied", receipts[1].Status)
	}
	if st.Balance("alice") != 20 || st.Balance("bob") != 30 {
		t.Fatal("void transaction affected balances")
	}
	_, voided, _ := st.Counters()
	if voided != 1 {
		t.Fatalf("voided = %d, want 1", voided)
	}
	if r, ok := st.Receipt(receipts[0].Element); !ok || r.Status != Void || r.Reason == "" {
		t.Fatalf("void receipt not queryable: %+v ok=%v", r, ok)
	}
}

func TestOrderWithinEpochMatters(t *testing.T) {
	// Sequential execution at final positions: the same two transfers in
	// opposite orders yield different void sets.
	mk := func(first, second Transfer) *State {
		st := NewState(map[string]uint64{"a": 10})
		st.ApplyEpoch(epoch(1,
			elemWithTransfer(1, first),
			elemWithTransfer(2, second),
		))
		return st
	}
	fund := Transfer{From: "a", To: "b", Amount: 10}
	spend := Transfer{From: "b", To: "c", Amount: 5}
	ok := mk(fund, spend)  // b funded before spending
	bad := mk(spend, fund) // b spends before funded -> void
	if _, v, _ := ok.Counters(); v != 0 {
		t.Fatal("fund-then-spend voided")
	}
	if _, v, _ := bad.Counters(); v != 1 {
		t.Fatal("spend-before-fund not voided")
	}
}

func TestRejectedPayloads(t *testing.T) {
	st := NewState(nil)
	junk := &wire.Element{Payload: []byte("not a transfer"), Size: 14}
	selfSend := elemWithTransfer(2, Transfer{From: "x", To: "x", Amount: 5})
	zero := elemWithTransfer(3, Transfer{From: "x", To: "y", Amount: 0})
	receipts, err := st.ApplyEpoch(epoch(1, junk, selfSend, zero))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range receipts {
		if r.Status != Rejected {
			t.Fatalf("receipt %d = %v, want rejected", i, r.Status)
		}
	}
}

func TestEpochOrderEnforced(t *testing.T) {
	st := NewState(nil)
	if _, err := st.ApplyEpoch(epoch(2)); err == nil {
		t.Fatal("epoch 2 applied before epoch 1")
	}
	if _, err := st.ApplyEpoch(epoch(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyEpoch(epoch(1)); err == nil {
		t.Fatal("epoch 1 applied twice")
	}
}

func TestReplayDeterminism(t *testing.T) {
	genesis := map[string]uint64{"a": 1000, "b": 500}
	var history []*core.Epoch
	for n := uint64(1); n <= 10; n++ {
		var elems []*wire.Element
		for k := 0; k < 20; k++ {
			from, to := "a", "b"
			if (int(n)+k)%3 == 0 {
				from, to = "b", "a"
			}
			elems = append(elems, elemWithTransfer(int(n)*100+k,
				Transfer{From: from, To: to, Amount: uint64(k%7) + 1}))
		}
		history = append(history, epoch(n, elems...))
	}
	s1, err := Replay(genesis, history)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Replay(genesis, history)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatal("replays diverge")
	}
	if s1.TotalSupply() != 1500 {
		t.Fatalf("supply = %d, want 1500 (conservation)", s1.TotalSupply())
	}
}

func TestValidateParallelMatchesSequential(t *testing.T) {
	var elems []*wire.Element
	for i := 0; i < 500; i++ {
		switch i % 4 {
		case 0:
			elems = append(elems, elemWithTransfer(i, Transfer{From: "a", To: "b", Amount: 1}))
		case 1:
			elems = append(elems, &wire.Element{Payload: []byte("garbage")})
		case 2:
			elems = append(elems, elemWithTransfer(i, Transfer{From: "a", To: "a", Amount: 1}))
		default:
			elems = append(elems, nil)
		}
	}
	seq := ValidateParallel(elems, 1)
	for _, workers := range []int{0, 2, 7, 64, 1000} {
		par := ValidateParallel(elems, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d differs from sequential", workers)
		}
	}
	for i, ok := range seq {
		want := i%4 == 0
		if ok != want {
			t.Fatalf("element %d validity = %v, want %v", i, ok, want)
		}
	}
}

func TestValidateParallelEmpty(t *testing.T) {
	if out := ValidateParallel(nil, 4); len(out) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}

func TestStatusString(t *testing.T) {
	if Applied.String() != "applied" || Void.String() != "void" || Rejected.String() != "rejected" {
		t.Fatal("status strings wrong")
	}
}

// Property: total supply is conserved by any transfer sequence, and void +
// applied + rejected receipts account for every transaction.
func TestQuickSupplyConservation(t *testing.T) {
	accounts := []string{"a", "b", "c", "d"}
	f := func(moves []uint16) bool {
		st := NewState(map[string]uint64{"a": 10_000, "b": 10_000})
		var elems []*wire.Element
		for i, m := range moves {
			from := accounts[int(m)%len(accounts)]
			to := accounts[int(m>>2)%len(accounts)]
			elems = append(elems, elemWithTransfer(i,
				Transfer{From: from, To: to, Amount: uint64(m%997) + 1}))
		}
		if _, err := st.ApplyEpoch(epoch(1, elems...)); err != nil {
			return false
		}
		ex, v, rej := st.Counters()
		return st.TotalSupply() == 20_000 && ex+v+rej == uint64(len(moves))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: replaying any prefix then the suffix equals replaying the whole
// history (state is a pure fold over epochs).
func TestQuickReplayComposition(t *testing.T) {
	f := func(seed uint8, split uint8) bool {
		genesis := map[string]uint64{"x": 5000, "y": 5000}
		var history []*core.Epoch
		for n := uint64(1); n <= 6; n++ {
			var elems []*wire.Element
			for k := 0; k < int(seed)%10+1; k++ {
				from, to := "x", "y"
				if (int(seed)+k)%2 == 0 {
					from, to = to, from
				}
				elems = append(elems, elemWithTransfer(int(n)*50+k,
					Transfer{From: from, To: to, Amount: uint64(seed)%100 + 1}))
			}
			history = append(history, epoch(n, elems...))
		}
		whole, err := Replay(genesis, history)
		if err != nil {
			return false
		}
		cut := int(split) % len(history)
		part := NewState(genesis)
		for _, ep := range history[:cut] {
			if _, err := part.ApplyEpoch(ep); err != nil {
				return false
			}
		}
		for _, ep := range history[cut:] {
			if _, err := part.ApplyEpoch(ep); err != nil {
				return false
			}
		}
		return whole.Equal(part)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkValidateParallel(b *testing.B) {
	var elems []*wire.Element
	for i := 0; i < 10_000; i++ {
		elems = append(elems, elemWithTransfer(i, Transfer{
			From: fmt.Sprintf("acct-%d", i%100), To: "sink", Amount: uint64(i + 1),
		}))
	}
	for _, workers := range []int{1, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ValidateParallel(elems, workers)
			}
		})
	}
}
