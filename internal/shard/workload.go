package shard

import (
	"time"

	"repro/internal/wire"
	"repro/internal/workload"
)

// The sharded workload generator IS internal/workload's injection shape
// — it schedules through workload.Ticks and builds elements through
// workload.BuildElement, so the timing and element construction cannot
// fork from the single-instance generator — with one difference: after a
// client creates an element, the ROUTER decides which shard commits it.
// The client then adds it to its local-index server on the owning shard
// (client i of any shard talks to server i of the target shard), and the
// owning shard's recorder books the injection. Ids are always tracked:
// the cross-shard checker needs the exact injected set.

// WorkloadConfig drives a sharded generation run; the fields mirror
// workload.Config.
type WorkloadConfig struct {
	// Rate is the aggregate sending rate in elements/second across ALL
	// shards; each of the S·n clients injects at Rate/(S·n).
	Rate float64
	// Duration is how long clients keep adding.
	Duration time.Duration
	// Sizes describes element sizes; zero value uses ArbitrumSizes.
	Sizes workload.SizeModel
	// Tick batches injection bookkeeping (0 = 10 ms).
	Tick time.Duration
	// FullPayloads creates real signed payloads (Full mode deployments).
	FullPayloads bool
}

// Generator injects a routed workload into a sharded deployment.
type Generator struct {
	cfg WorkloadConfig
	d   *Deployment

	injected uint64
	rejected uint64
	perShard []uint64
	ids      map[wire.ElementID]struct{}
	done     bool
}

// NewGenerator creates a generator for the sharded deployment.
func NewGenerator(d *Deployment, cfg WorkloadConfig) *Generator {
	if cfg.Sizes == (workload.SizeModel{}) {
		cfg.Sizes = workload.ArbitrumSizes()
	}
	if cfg.Tick == 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	return &Generator{
		cfg:      cfg,
		d:        d,
		perShard: make([]uint64, d.Count()),
		ids:      make(map[wire.ElementID]struct{}),
	}
}

// Start schedules the injection: every client of every shard adds from
// virtual time 0 until cfg.Duration, then the generator drains every
// shard's collectors. Flat client index c maps to shard c/n, local
// client c%n, so the schedule's random draws happen in shard-major
// order.
func (g *Generator) Start() {
	s := g.d.Sim
	clients := g.d.Count() * g.d.Servers
	perClient := g.cfg.Rate / float64(clients)
	workload.Ticks(s, clients, perClient, g.cfg.Duration, g.cfg.Tick, func(c int) {
		g.injectOne(c/g.d.Servers, c%g.d.Servers)
	})
	s.At(g.cfg.Duration, func() {
		g.done = true
		g.d.Drain()
	})
}

// injectOne creates one element on client i of shard k and adds it to the
// shard the router assigns.
func (g *Generator) injectOne(k, i int) {
	cl := g.d.Shards[k].Clients[i]
	e := workload.BuildElement(g.d.Sim, cl, g.cfg.Sizes, g.cfg.FullPayloads)
	target := Route(e.ID, g.d.Count())
	if err := g.d.Shards[target].Servers[i].Add(e); err != nil {
		g.rejected++
		return
	}
	g.injected++
	g.perShard[target]++
	g.ids[e.ID] = struct{}{}
	g.d.Recorders[target].Injected(e)
}

// Injected returns how many elements were accepted across all shards.
func (g *Generator) Injected() uint64 { return g.injected }

// Rejected returns how many adds the servers refused.
func (g *Generator) Rejected() uint64 { return g.rejected }

// PerShardInjected returns the accepted count per shard (the router's
// observed balance). The slice is live state; treat it as read-only.
func (g *Generator) PerShardInjected() []uint64 { return g.perShard }

// InjectedIDs returns the ids of every accepted element. The map is live
// state; treat it as read-only.
func (g *Generator) InjectedIDs() map[wire.ElementID]struct{} { return g.ids }

// Done reports whether the injection window has closed.
func (g *Generator) Done() bool { return g.done }
