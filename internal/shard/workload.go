package shard

import (
	"time"

	"repro/internal/workload"
)

// The sharded workload generator IS internal/workload's injection shape
// — it schedules through workload.Ticks (or workload.OpenTicks for
// open-system cells) and builds elements through workload.BuildElement,
// so the timing and element construction cannot fork from the
// single-instance generator — with one difference: after a client creates
// an element, the ROUTER decides which shard commits it. The client then
// adds it to its local-index server on the owning shard (client i of any
// shard talks to server i of the target shard), and the owning shard's
// recorder books the injection. Ids are always tracked: the cross-shard
// checker needs the exact injected set. All accounting — accepted,
// rejected, offered, fairness — goes through the same workload.Account
// the single-instance generator uses, so admission rejections surface
// identically on both executor paths.

// WorkloadConfig drives a sharded generation run; the fields mirror
// workload.Config.
type WorkloadConfig struct {
	// Rate is the aggregate sending rate in elements/second across ALL
	// shards; each of the S·n clients injects at Rate/(S·n).
	Rate float64
	// Duration is how long clients keep adding.
	Duration time.Duration
	// Sizes describes element sizes; zero value uses ArbitrumSizes.
	Sizes workload.SizeModel
	// Tick batches injection bookkeeping (0 = 10 ms).
	Tick time.Duration
	// FullPayloads creates real signed payloads (Full mode deployments).
	FullPayloads bool
	// Open adds open-system dynamics (workload.OpenConfig); the zero
	// value is the closed system.
	Open workload.OpenConfig
	// Seed keys the open extension's ChildSeed streams.
	Seed int64
}

// Generator injects a routed workload into a sharded deployment.
type Generator struct {
	cfg WorkloadConfig
	d   *Deployment

	// Account books every attempt; its accessors are promoted.
	*workload.Account
	perShard []uint64
	done     bool
}

// NewGenerator creates a generator for the sharded deployment.
func NewGenerator(d *Deployment, cfg WorkloadConfig) *Generator {
	if cfg.Sizes == (workload.SizeModel{}) {
		cfg.Sizes = workload.ArbitrumSizes()
	}
	if cfg.Tick == 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	return &Generator{
		cfg:      cfg,
		d:        d,
		perShard: make([]uint64, d.Count()),
		Account:  workload.NewAccount(d.Count()*d.Servers, true),
	}
}

// Start schedules the injection: every client of every shard adds from
// virtual time 0 until cfg.Duration, then the generator drains every
// shard's collectors. Flat client index c maps to shard c/n, local
// client c%n, so the schedule's random draws happen in shard-major
// order.
func (g *Generator) Start() {
	s := g.d.Sim
	clients := g.d.Count() * g.d.Servers
	inject := func(c int) { g.injectOne(c/g.d.Servers, c%g.d.Servers) }
	if g.cfg.Open.Enabled() {
		workload.OpenTicks(s, g.cfg.Seed, clients, g.cfg.Rate, g.cfg.Duration, g.cfg.Tick, g.cfg.Open, inject)
	} else {
		perClient := g.cfg.Rate / float64(clients)
		workload.Ticks(s, clients, perClient, g.cfg.Duration, g.cfg.Tick, inject)
	}
	s.At(g.cfg.Duration, func() {
		g.done = true
		g.d.Drain()
	})
}

// injectOne creates one element on client i of shard k and adds it to the
// shard the router assigns.
func (g *Generator) injectOne(k, i int) {
	cl := g.d.Shards[k].Clients[i]
	e := workload.BuildElement(g.d.Sim, cl, g.cfg.Sizes, g.cfg.FullPayloads)
	target := Route(e.ID, g.d.Count())
	if err := g.d.Shards[target].Servers[i].Add(e); err != nil {
		g.Account.Reject(e, k*g.d.Servers+i)
		return
	}
	g.Account.Accept(e, k*g.d.Servers+i)
	g.perShard[target]++
	g.d.Recorders[target].Injected(e)
}

// PerShardInjected returns the accepted count per shard (the router's
// observed balance). The slice is live state; treat it as read-only.
func (g *Generator) PerShardInjected() []uint64 { return g.perShard }

// Done reports whether the injection window has closed.
func (g *Generator) Done() bool { return g.done }
