package shard

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// epoch builds a test epoch with the given number and element ids.
func epoch(number uint64, ids ...byte) *core.Epoch {
	ep := &core.Epoch{Number: number, Hash: []byte{byte(number), 0xaa}}
	for _, id := range ids {
		ep.Elements = append(ep.Elements, &wire.Element{ID: wire.ElementID{id}})
	}
	return ep
}

func TestMergeSuperepochs(t *testing.T) {
	// Shard 0 has 3 epochs, shard 1 has 1, shard 2 has 2: superepochs 2
	// and 3 must carry only the shards that got that far, shard-ascending.
	histories := [][]*core.Epoch{
		{epoch(1, 1), epoch(2, 2), epoch(3, 3)},
		{epoch(1, 4)},
		{epoch(1, 5), epoch(2, 6)},
	}
	supers := Merge(histories)
	if len(supers) != 3 {
		t.Fatalf("got %d superepochs, want 3", len(supers))
	}
	wantParts := [][]int{{0, 1, 2}, {0, 2}, {0}}
	for i, se := range supers {
		if se.Number != uint64(i+1) {
			t.Errorf("superepoch %d numbered %d", i, se.Number)
		}
		if len(se.Parts) != len(wantParts[i]) {
			t.Fatalf("superepoch %d has %d parts, want %d", se.Number, len(se.Parts), len(wantParts[i]))
		}
		for j, p := range se.Parts {
			if p.Shard != wantParts[i][j] {
				t.Errorf("superepoch %d part %d from shard %d, want %d", se.Number, j, p.Shard, wantParts[i][j])
			}
			if p.Epoch.Number != se.Number {
				t.Errorf("superepoch %d carries epoch %d of shard %d", se.Number, p.Epoch.Number, p.Shard)
			}
		}
		if se.Digest == 0 {
			t.Errorf("superepoch %d has zero digest", se.Number)
		}
	}
	if supers[0].Elements() != 3 || supers[1].Elements() != 2 || supers[2].Elements() != 1 {
		t.Errorf("element counts wrong: %d %d %d",
			supers[0].Elements(), supers[1].Elements(), supers[2].Elements())
	}

	// The digest must be sensitive to content: change one epoch hash and
	// superepoch 2's digest (and only it) must move.
	histories[2][1].Hash[1] ^= 0x01
	again := Merge(histories)
	if again[1].Digest == supers[1].Digest {
		t.Error("digest unchanged after corrupting a contributing epoch hash")
	}
	if again[0].Digest != supers[0].Digest || again[2].Digest != supers[2].Digest {
		t.Error("unrelated superepoch digests moved")
	}
}

// deployTestWorld runs a small 2-shard deployment end to end and returns
// the deployment and its generator.
func deployTestWorld(t *testing.T, shards int, rate float64) (*Deployment, *Generator) {
	t.Helper()
	s := sim.New(7)
	d := Deploy(s, shards, 4, ledger.Config{
		Net:       netsim.DefaultLANConfig(),
		Consensus: consensus.PaperParams(),
		Mempool:   mempool.PaperConfig(),
	}, core.Options{
		Algorithm:      core.Hashchain,
		CollectorLimit: 100,
		Costs:          core.PaperCostModel(),
		F:              1,
	}, metrics.LevelThroughput)
	gen := NewGenerator(d, WorkloadConfig{Rate: rate, Duration: 6 * time.Second})
	d.Start()
	gen.Start()
	s.RunUntil(30 * time.Second)
	d.Stop()
	return d, gen
}

// TestDeploymentRoutesAndCommits drives a real 2-shard world: the world
// must commit, every committed element must sit on the shard the router
// owns it to, per-shard injection must sum to the total, and the view's
// superepoch sequence must be the merge of the observer histories.
func TestDeploymentRoutesAndCommits(t *testing.T) {
	d, gen := deployTestWorld(t, 2, 800)
	if gen.Injected() == 0 {
		t.Fatal("nothing injected")
	}
	var perShard uint64
	for _, n := range gen.PerShardInjected() {
		perShard += n
	}
	if perShard != gen.Injected() {
		t.Fatalf("per-shard injections sum to %d, total is %d", perShard, gen.Injected())
	}
	for k := range gen.PerShardInjected() {
		if gen.PerShardInjected()[k] == 0 {
			t.Fatalf("shard %d received no elements: router starved it", k)
		}
	}
	view := d.View()
	committed := 0
	for k, hist := range view.Histories {
		if len(hist) == 0 {
			t.Fatalf("shard %d committed no epochs", k)
		}
		for _, ep := range hist {
			for _, e := range ep.Elements {
				committed++
				if Route(e.ID, d.Count()) != k {
					t.Fatalf("element %v committed on shard %d, router owns shard %d",
						e.ID, k, Route(e.ID, d.Count()))
				}
			}
		}
	}
	if committed == 0 {
		t.Fatal("no elements committed")
	}
	if len(view.Supers) == 0 {
		t.Fatal("no superepochs")
	}
	recomputed := Merge(view.Histories)
	if len(recomputed) != len(view.Supers) {
		t.Fatalf("view has %d superepochs, merge yields %d", len(view.Supers), len(recomputed))
	}
	for i := range recomputed {
		if recomputed[i].Digest != view.Supers[i].Digest {
			t.Fatalf("superepoch %d digest drifts from the merge", i+1)
		}
	}
	// Observer ids and node id partitioning.
	for k, sd := range d.Shards {
		if got := d.Observer(k); got != wire.NodeID(k*4) {
			t.Fatalf("observer of shard %d is %d", k, got)
		}
		for i, srv := range sd.Servers {
			if srv.ID() != wire.NodeID(k*4+i) {
				t.Fatalf("shard %d server %d carries id %d", k, i, srv.ID())
			}
		}
	}
}

// MergeFrom with nil or all-zero bases must reproduce Merge bit for bit
// (Merge is defined as the zero-base special case), and with real bases —
// per-shard pruned prefixes — the merged suffix must carry the same
// numbers and digests as merging the full unpruned histories would. That
// equivalence is what lets the cross-shard checker keep verifying
// superepoch digests after checkpoint pruning dropped the prefix.
func TestMergeFromBasesAlignPrunedHistories(t *testing.T) {
	full := [][]*core.Epoch{
		{epoch(1, 1), epoch(2, 2), epoch(3, 3), epoch(4, 4)},
		{epoch(1, 5), epoch(2, 6), epoch(3, 7), epoch(4, 8)},
	}
	want := Merge(full)

	same := func(name string, got []*Superepoch, wantTail []*Superepoch) {
		t.Helper()
		if len(got) != len(wantTail) {
			t.Fatalf("%s: %d superepochs, want %d", name, len(got), len(wantTail))
		}
		for i := range got {
			if got[i].Number != wantTail[i].Number || got[i].Digest != wantTail[i].Digest {
				t.Fatalf("%s: superepoch %d = (num %d, digest %x), want (num %d, digest %x)",
					name, i, got[i].Number, got[i].Digest, wantTail[i].Number, wantTail[i].Digest)
			}
			if len(got[i].Parts) != len(wantTail[i].Parts) {
				t.Fatalf("%s: superepoch %d has %d parts, want %d",
					name, got[i].Number, len(got[i].Parts), len(wantTail[i].Parts))
			}
		}
	}
	same("nil bases", MergeFrom(full, nil), want)
	same("zero bases", MergeFrom(full, []uint64{0, 0}), want)
	// Short base slice: missing entries default to zero.
	same("short bases", MergeFrom(full, []uint64{0}), want)

	// Prune shard 0 below epoch 2 and shard 1 below epoch 3: the merge
	// must resume at superepoch 4 (the first number every shard can still
	// contribute to in full) and agree digest-for-digest with the
	// unpruned merge there.
	pruned := [][]*core.Epoch{full[0][2:], full[1][3:]}
	same("pruned suffix", MergeFrom(pruned, []uint64{2, 3}), want[3:])
}
