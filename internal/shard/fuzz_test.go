package shard

import (
	"encoding/binary"
	"testing"

	"repro/internal/wire"
)

// FuzzShardRouter throws arbitrary tx payload bytes at the router and
// asserts its contract for every shard count the scale_* family uses:
// the assignment is in range (every key maps to exactly one shard — the
// function is total and single-valued by construction, so "exactly one"
// reduces to "in [0, S)"), it is pure and stable across calls, and it is
// consistent with the digest it claims to reduce.
func FuzzShardRouter(f *testing.F) {
	// Seed corpus: the structured ids real clients produce (little-endian
	// client and seq words), the degenerate ones, and some spread bytes.
	// TestRouterReachesAllShards proves this corpus — extended with the
	// client/seq grid — reaches every shard at every S below.
	for _, c := range []uint64{0, 1, 2, 7, 8, 63, 1 << 20} {
		for _, seq := range []uint64{0, 1, 2, 3, 100, 1e6} {
			var b [16]byte
			binary.LittleEndian.PutUint64(b[0:8], c)
			binary.LittleEndian.PutUint64(b[8:16], seq)
			f.Add(b[:])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte("arbitrary tx payload bytes, longer than an element id"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		var id wire.ElementID
		copy(id[:], payload)
		digest := RouteDigest(id)
		for _, shards := range []int{1, 2, 3, 4, 8, 64} {
			got := Route(id, shards)
			if got < 0 || got >= shards {
				t.Fatalf("Route(%v, %d) = %d out of range", id, shards, got)
			}
			if again := Route(id, shards); again != got {
				t.Fatalf("Route(%v, %d) unstable: %d then %d", id, shards, got, again)
			}
			if shards > 1 && got != int(digest%uint64(shards)) {
				t.Fatalf("Route(%v, %d) = %d, digest %% %d = %d",
					id, shards, got, shards, digest%uint64(shards))
			}
		}
		if RouteDigest(id) != digest {
			t.Fatalf("RouteDigest(%v) unstable", id)
		}
		// shards <= 1 must always be shard 0 (the single-instance world).
		if Route(id, 1) != 0 || Route(id, 0) != 0 || Route(id, -3) != 0 {
			t.Fatalf("Route(%v, <=1) must be 0", id)
		}
	})
}

// TestRouterReachesAllShards proves the router has no unreachable shard:
// over the id shapes real workloads produce (dense client ids crossed
// with dense sequence numbers — exactly what Client.fillID emits), every
// shard of every deployment size receives keys.
func TestRouterReachesAllShards(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8, 16, 64} {
		hit := make([]int, shards)
		for c := 0; c < 32; c++ {
			for seq := uint64(1); seq <= 64; seq++ {
				var id wire.ElementID
				binary.LittleEndian.PutUint64(id[0:8], uint64(c))
				binary.LittleEndian.PutUint64(id[8:16], seq)
				hit[Route(id, shards)]++
			}
		}
		for s, n := range hit {
			if n == 0 {
				t.Errorf("S=%d: shard %d unreachable over the client/seq grid", shards, s)
			}
		}
	}
}

// TestRouterBalance sanity-checks the spread: over a large structured id
// population no shard may be starved or hold a gross majority (the FNV
// mix must break the little-endian id structure).
func TestRouterBalance(t *testing.T) {
	const shards, total = 8, 64 * 1024
	hit := make([]int, shards)
	for c := 0; c < 64; c++ {
		for seq := uint64(1); seq <= total/64; seq++ {
			var id wire.ElementID
			binary.LittleEndian.PutUint64(id[0:8], uint64(c))
			binary.LittleEndian.PutUint64(id[8:16], seq)
			hit[Route(id, shards)]++
		}
	}
	want := total / shards
	for s, n := range hit {
		if n < want/2 || n > want*2 {
			t.Errorf("shard %d holds %d of %d keys (expected ~%d): router is skewed", s, n, total, want)
		}
	}
}
