package shard

import "repro/internal/wire"

// The router is the contract the whole sharded layer rests on: a pure
// function from element identity to shard index. Injection, the
// cross-shard safety checker and client-side lookups must all agree on
// it, so it lives here alone and takes nothing but the id and the shard
// count — no deployment state, no randomness, no clocks.

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// RouteDigest returns the 64-bit routing digest of an element id: FNV-1a
// over the full 16 id bytes. Element ids embed (client, seq) as plain
// little-endian words, so reducing the raw id modulo S would glue each
// client to one shard; hashing first spreads every client's stream across
// the whole shard space. Zero-allocation: this runs once per injected
// element.
func RouteDigest(id wire.ElementID) uint64 {
	h := uint64(fnvOffset)
	for _, b := range id {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// Route returns the shard owning the element id in a deployment of S
// shards: RouteDigest(id) mod S. It is total, pure and stable — the same
// id maps to the same shard on every call, in every process — which is
// what makes "every id lands in exactly one shard" checkable after the
// fact (invariant.CheckCross). shards <= 1 always routes to shard 0.
func Route(id wire.ElementID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(RouteDigest(id) % uint64(shards))
}
