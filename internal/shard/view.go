package shard

import (
	"encoding/binary"

	"repro/internal/core"
)

// The aggregated view. A single Setchain exposes one totally-ordered
// epoch history; a sharded world exposes S of them. The superepoch merge
// re-imposes one deterministic global order without inventing cross-shard
// consensus: superepoch i is "epoch i of every shard that got that far",
// shard-ascending. The rule needs no clocks and no communication — it is
// a pure function of the per-shard histories, so any observer (and the
// cross-shard checker) recomputes the identical sequence from the same
// final state, and a seeded run's superepoch sequence is reproducible
// bit for bit.

// Part is one shard's contribution to a superepoch.
type Part struct {
	// Shard is the contributing shard's index.
	Shard int
	// Epoch is that shard's epoch with Number == the superepoch's.
	Epoch *core.Epoch
}

// Superepoch is one entry of the merged cross-shard history.
type Superepoch struct {
	// Number is the 1-based superepoch number; parts all carry the same
	// per-shard epoch number.
	Number uint64
	// Parts holds the contributing shards in ascending shard order. Shards
	// whose history is shorter than Number are absent.
	Parts []Part
	// Digest chains the superepoch's identity: number, contributing shard
	// indices and their epoch hashes (see superDigest). Two views agree on
	// a superepoch iff they agree on every contributing epoch.
	Digest uint64
}

// Elements returns the superepoch's total element count across parts.
func (se *Superepoch) Elements() int {
	n := 0
	for _, p := range se.Parts {
		n += len(p.Epoch.Elements)
	}
	return n
}

// View is the cross-shard aggregate over the per-shard observer
// histories: the input streams and their superepoch merge. The checker
// (invariant.CheckCross) treats the fields as the claim under test, so
// tests corrupt them freely.
type View struct {
	// Histories holds each shard observer's epoch history, indexed by
	// shard.
	Histories [][]*core.Epoch
	// Supers is the merged superepoch sequence, numbered 1..K contiguously
	// where K is the longest shard history.
	Supers []*Superepoch
}

// NewView merges per-shard histories into the superepoch sequence.
func NewView(histories [][]*core.Epoch) *View {
	return &View{Histories: histories, Supers: Merge(histories)}
}

// Merge builds the superepoch sequence: for i = 1..max(len(history)),
// superepoch i collects epoch i of every shard that has one, in shard
// order, and seals the set under a digest.
func Merge(histories [][]*core.Epoch) []*Superepoch {
	longest := 0
	for _, h := range histories {
		if len(h) > longest {
			longest = len(h)
		}
	}
	supers := make([]*Superepoch, 0, longest)
	for i := 0; i < longest; i++ {
		se := &Superepoch{Number: uint64(i + 1)}
		for k, h := range histories {
			if i < len(h) {
				se.Parts = append(se.Parts, Part{Shard: k, Epoch: h[i]})
			}
		}
		se.Digest = superDigest(se.Number, se.Parts)
		supers = append(supers, se)
	}
	return supers
}

// superDigest hashes a superepoch's identity: its number, then each
// part's shard index, epoch number and epoch hash, FNV-1a chained in part
// order. Fixed-width framing keeps the encoding unambiguous.
func superDigest(number uint64, parts []Part) uint64 {
	h := uint64(fnvOffset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	var w [8]byte
	mixWord := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		for _, b := range w {
			mix(b)
		}
	}
	mixWord(number)
	for _, p := range parts {
		mixWord(uint64(p.Shard))
		mixWord(p.Epoch.Number)
		mixWord(uint64(len(p.Epoch.Hash)))
		for _, b := range p.Epoch.Hash {
			mix(b)
		}
	}
	return h
}

// Digests returns the superepoch digest sequence — the compact fingerprint
// determinism tests pin ("same seed ⇒ same superepoch sequence").
func (v *View) Digests() []uint64 {
	out := make([]uint64, len(v.Supers))
	for i, se := range v.Supers {
		out[i] = se.Digest
	}
	return out
}
