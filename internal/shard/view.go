package shard

import (
	"repro/internal/checkpoint"
	"repro/internal/core"
)

// The aggregated view. A single Setchain exposes one totally-ordered
// epoch history; a sharded world exposes S of them. The superepoch merge
// re-imposes one deterministic global order without inventing cross-shard
// consensus: superepoch i is "epoch i of every shard that got that far",
// shard-ascending. The rule needs no clocks and no communication — it is
// a pure function of the per-shard histories, so any observer (and the
// cross-shard checker) recomputes the identical sequence from the same
// final state, and a seeded run's superepoch sequence is reproducible
// bit for bit.

// Part is one shard's contribution to a superepoch.
type Part struct {
	// Shard is the contributing shard's index.
	Shard int
	// Epoch is that shard's epoch with Number == the superepoch's.
	Epoch *core.Epoch
}

// Superepoch is one entry of the merged cross-shard history.
type Superepoch struct {
	// Number is the 1-based superepoch number; parts all carry the same
	// per-shard epoch number.
	Number uint64
	// Parts holds the contributing shards in ascending shard order. Shards
	// whose history is shorter than Number are absent.
	Parts []Part
	// Digest chains the superepoch's identity: number, contributing shard
	// indices and their epoch hashes (see superDigest). Two views agree on
	// a superepoch iff they agree on every contributing epoch.
	Digest uint64
}

// Elements returns the superepoch's total element count across parts.
func (se *Superepoch) Elements() int {
	n := 0
	for _, p := range se.Parts {
		n += len(p.Epoch.Elements)
	}
	return n
}

// View is the cross-shard aggregate over the per-shard observer
// histories: the input streams and their superepoch merge. The checker
// (invariant.CheckCross) treats the fields as the claim under test, so
// tests corrupt them freely.
type View struct {
	// Histories holds each shard observer's epoch history, indexed by
	// shard.
	Histories [][]*core.Epoch
	// Bases holds each shard's pruned-epoch base: shard k's history starts
	// at epoch Bases[k]+1 (all zero — and possibly nil — when no shard has
	// pruned).
	Bases []uint64
	// Checkpoints holds each shard observer's sealed checkpoint chain
	// (empty per shard when checkpointing is off). The cross-shard checker
	// uses it to account for the pruned prefix below Bases.
	Checkpoints [][]checkpoint.Checkpoint
	// Supers is the merged superepoch sequence, numbered contiguously from
	// max(Bases)+1 up to the longest shard history's last epoch (1..K when
	// nothing is pruned).
	Supers []*Superepoch
}

// NewView merges per-shard histories into the superepoch sequence
// (unpruned: all bases zero).
func NewView(histories [][]*core.Epoch) *View {
	return &View{Histories: histories, Supers: Merge(histories)}
}

// NewPrunedView merges per-shard histories whose settled prefixes may have
// been pruned below per-shard checkpoint horizons.
func NewPrunedView(histories [][]*core.Epoch, bases []uint64, cks [][]checkpoint.Checkpoint) *View {
	return &View{
		Histories:   histories,
		Bases:       bases,
		Checkpoints: cks,
		Supers:      MergeFrom(histories, bases),
	}
}

// Merge builds the superepoch sequence: for i = 1..max(len(history)),
// superepoch i collects epoch i of every shard that has one, in shard
// order, and seals the set under a digest.
func Merge(histories [][]*core.Epoch) []*Superepoch {
	return MergeFrom(histories, nil)
}

// MergeFrom is Merge for histories with per-shard pruned-epoch bases:
// shard k's history[j] is epoch bases[k]+j+1. Superepochs are built for
// every number above max(bases) — below that, at least one shard's part
// has been pruned and the prefix is covered by checkpoint digests instead.
// A nil (or all-zero) bases reproduces Merge bit for bit.
func MergeFrom(histories [][]*core.Epoch, bases []uint64) []*Superepoch {
	baseOf := func(k int) uint64 {
		if k < len(bases) {
			return bases[k]
		}
		return 0
	}
	start, longest := uint64(0), uint64(0)
	for k, h := range histories {
		b := baseOf(k)
		if b > start {
			start = b
		}
		if total := b + uint64(len(h)); total > longest {
			longest = total
		}
	}
	if longest < start {
		longest = start
	}
	supers := make([]*Superepoch, 0, longest-start)
	for i := start + 1; i <= longest; i++ {
		se := &Superepoch{Number: i}
		for k, h := range histories {
			if idx := i - baseOf(k); idx >= 1 && idx <= uint64(len(h)) {
				se.Parts = append(se.Parts, Part{Shard: k, Epoch: h[idx-1]})
			}
		}
		se.Digest = superDigest(se.Number, se.Parts)
		supers = append(supers, se)
	}
	return supers
}

// superDigest hashes a superepoch's identity: its number, then each
// part's shard index, epoch number and epoch hash, FNV-1a chained in part
// order via the shared checkpoint mixers. Fixed-width framing keeps the
// encoding unambiguous.
func superDigest(number uint64, parts []Part) uint64 {
	h := checkpoint.Seed()
	h = checkpoint.Mix64(h, number)
	for _, p := range parts {
		h = checkpoint.Mix64(h, uint64(p.Shard))
		h = checkpoint.Mix64(h, p.Epoch.Number)
		h = checkpoint.MixBytes(h, p.Epoch.Hash)
	}
	return h
}

// Digests returns the superepoch digest sequence — the compact fingerprint
// determinism tests pin ("same seed ⇒ same superepoch sequence").
func (v *View) Digests() []uint64 {
	out := make([]uint64, len(v.Supers))
	for i, se := range v.Supers {
		out[i] = se.Digest
	}
	return out
}
