// Package shard scales Setchain horizontally: it partitions the element
// space across S independent Setchain instances — each a complete
// deployment (ledger cluster + servers + clients) forming its own
// consensus group — living inside one shared simulated network, and
// aggregates their per-shard epoch streams into a single cross-shard
// "superepoch" sequence.
//
// The three load-bearing pieces:
//
//   - the router (router.go): a pure digest-based function from element
//     id to shard index. Every injected element lands on exactly one
//     shard, and anyone can recompute the assignment after the fact;
//   - the deployment (this file): S shard deployments on one simulator
//     and ONE netsim.Network, with node ids partitioned k·n..k·n+n-1 and
//     client ids kept globally unique. Sharing the fabric is what lets
//     scheduled faults (internal/faults) crash, partition and degrade
//     links across shard boundaries exactly as they do within one;
//   - the view (view.go): the merged cross-shard history. Superepoch i
//     collects epoch i of every shard (shard-ascending) with a digest
//     chaining the parts, so "same seed ⇒ same superepoch sequence" is a
//     byte-comparable statement and invariant.CheckCross can recompute
//     the merge independently.
//
// Shards never talk to each other: there is no cross-shard consensus and
// no cross-shard transaction, only deterministic routing at injection and
// deterministic merging at observation — the standard scale-out shape of
// multi-chain systems (one consensus group per shard, a global view
// derived above them). See DESIGN.md §10.
package shard

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Deployment is S independent Setchain instances on one simulator and one
// shared network.
type Deployment struct {
	Sim *sim.Simulator
	// Net is the single fabric all shards' nodes are registered on; fault
	// plans install here and may span shard boundaries.
	Net *netsim.Network
	// Shards are the per-shard deployments, shard k's nodes carrying
	// global ids k·Servers..k·Servers+Servers-1.
	Shards []*core.Deployment
	// Recorders are the per-shard metrics recorders; recorder k's observer
	// is shard k's first node (Observer(k)).
	Recorders []*metrics.Recorder
	// Servers is the per-shard server count n.
	Servers int
}

// Deploy builds a sharded world: a shared network from lcfg.Net, then one
// complete Setchain deployment per shard with disjoint node and client id
// ranges, each with its own recorder at the given metrics level. opts
// applies to every server of every shard. In Full crypto mode every
// client's key is registered in every shard's PKI, because the router may
// send any client's element to any shard.
func Deploy(s *sim.Simulator, shards, servers int, lcfg ledger.Config, opts core.Options, level metrics.Level) *Deployment {
	if shards < 1 {
		panic(fmt.Sprintf("shard: need at least one shard, got %d", shards))
	}
	if servers < 1 {
		panic(fmt.Sprintf("shard: need at least one server per shard, got %d", servers))
	}
	d := &Deployment{
		Sim:     s,
		Net:     netsim.New(s, lcfg.Net),
		Servers: servers,
	}
	// Partitioned runs (harness IntraWorkers > 1) give every shard its own
	// event queue: the resolver maps shard k's node ids to partition k. The
	// shared fabric then routes cross-shard traffic through partition
	// inboxes, and each shard's recorder lives on its observer's queue.
	if lcfg.SimFor != nil {
		d.Net.SetSimResolver(lcfg.SimFor)
	}
	f := (servers - 1) / 2
	for k := 0; k < shards; k++ {
		rsim := s
		if lcfg.SimFor != nil {
			if ps := lcfg.SimFor(d.Observer(k)); ps != nil {
				rsim = ps
			}
		}
		rec := metrics.New(rsim, level, servers, f, d.Observer(k))
		cfg := lcfg
		cfg.Network = d.Net
		cfg.FirstID = d.Observer(k)
		// Client ids start above the whole server id space and are disjoint
		// per shard, so element ids (which embed the client id) are globally
		// unique and the PKI slots of clients and servers never collide.
		cfg.ClientIDBase = shards*servers + k*servers
		d.Shards = append(d.Shards, core.Deploy(s, servers, cfg, opts, rec))
		d.Recorders = append(d.Recorders, rec)
	}
	// Cross-register client keys: server j of shard b must be able to
	// verify an element signed by any client of any shard a != b.
	for a, from := range d.Shards {
		for b, to := range d.Shards {
			if a == b {
				continue
			}
			for _, cl := range from.Clients {
				core.RegisterClientKey(to.Ledger.Registry, servers, cl.ID(), cl.PublicKey())
			}
		}
	}
	return d
}

// Observer returns shard k's observer node id — its first (lowest-id)
// server, the per-shard counterpart of the classic "server 0 observes".
func (d *Deployment) Observer(k int) wire.NodeID {
	return wire.NodeID(k * d.Servers)
}

// Count returns the number of shards S.
func (d *Deployment) Count() int { return len(d.Shards) }

// Start launches every shard's ledger.
func (d *Deployment) Start() {
	for _, sh := range d.Shards {
		sh.Start()
	}
}

// Stop freezes every shard.
func (d *Deployment) Stop() {
	for _, sh := range d.Shards {
		sh.Stop()
	}
}

// Drain flushes every server's collector on every shard.
func (d *Deployment) Drain() {
	for _, sh := range d.Shards {
		sh.Drain()
	}
}

// Stats is one shard's end-of-run summary, for per-shard columns next to
// the aggregated numbers.
type Stats struct {
	// Shard is the shard index.
	Shard int
	// Injected and Committed are the shard recorder's element totals.
	Injected  uint64
	Committed uint64
	// AvgTput is the shard's committed/second up to the send-end.
	AvgTput float64
	// Epochs is the shard observer's total epoch count (pruned + retained);
	// Blocks its ledger height (likewise including any pruned prefix).
	Epochs int
	Blocks int
}

// View snapshots every shard observer's history and merges it into the
// cross-shard superepoch sequence. Call after Stop; the histories are
// zero-copy views of live server state. Observers that pruned under a
// checkpoint horizon contribute their base and checkpoint chain, so the
// merge starts above the highest pruned prefix and the cross-shard
// checker can account for what was dropped.
func (d *Deployment) View() *View {
	hists := make([][]*core.Epoch, len(d.Shards))
	bases := make([]uint64, len(d.Shards))
	cks := make([][]checkpoint.Checkpoint, len(d.Shards))
	pruned := false
	for k, sh := range d.Shards {
		snap := sh.Server(d.Observer(k)).Get()
		hists[k] = snap.History
		bases[k] = snap.PrunedEpochs
		cks[k] = snap.Checkpoints
		pruned = pruned || snap.PrunedEpochs > 0
	}
	if !pruned {
		// Checkpoint chains still travel (the checker verifies them even
		// unpruned); nil bases keep the classic merge bit-identical.
		v := NewView(hists)
		v.Checkpoints = cks
		return v
	}
	return NewPrunedView(hists, bases, cks)
}
