// Package invariant machine-checks Setchain safety on a finished
// deployment: after every harness run — chaos or not — the final state of
// every correct server is compared against the injected workload and
// against the other correct servers. The checks are the paper's safety
// properties made executable:
//
//   - monotone epoch growth: a server's history is numbered 1..k with no
//     gaps or repeats (Setchain's epochs only ever grow);
//   - epoch-prefix consistency: any two correct servers agree on the
//     common prefix of their histories — same epoch hashes and the same
//     element sequences (Get-Global/Consistent-Sets: histories of correct
//     servers are prefixes of one common history);
//   - no duplication: an element is stamped with at most one epoch per
//     server (the_set is a set);
//   - no fabrication: every element in a correct history was injected by
//     the workload's clients and is valid — a Byzantine server cannot
//     smuggle elements into correct servers' histories;
//   - no loss: every epoch the experiment's observer saw commit (f+1
//     epoch-proofs on the ledger) is present in the observer's history
//     with exactly the element count recorded at creation.
//
// Prefix consistency is the load-bearing check: epochs are
// order-sensitive hashes of their element sequences, so two correct
// servers agreeing on epoch k's hash agree on every element (and order)
// up to k; combined with no-fabrication over the injected set, any
// committed element a run could lose or invent shows up as a finite-state
// difference the checker catches.
//
// The checker must not be vacuously green: harness tests corrupt a
// correct server's ledger on purpose and assert the checker fails
// (TestCheckerDetectsCorruption in this package's tests). Verdicts
// surface as harness.Result.Invariant, the Safety column of
// setchain-bench (nonzero exit on violation), and the per-cell
// invariant field of run artifacts rendered into RESULTS.md.
//
// See DESIGN.md §8 (fault model and the invariant checker, including
// the safety argument for epoch-prefix checking).
package invariant

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/wire"
)

// Config scopes a check to what the experiment knows.
type Config struct {
	// Correct lists the servers assumed correct. Byzantine servers are
	// excluded (their local state may be arbitrary); crashed-but-honest
	// servers belong here — a crash truncates a history, it must never
	// corrupt it.
	Correct []wire.NodeID
	// Injected is the set of element ids the workload's clients created
	// and servers accepted. Nil skips the fabrication check.
	Injected map[wire.ElementID]struct{}
	// Rejected is the set of element ids admission control refused
	// (workload.Account.RejectedIDs). A rejected element must never
	// appear in a committed epoch: the server returned an error to the
	// client, so letting it commit anyway would break the admission
	// contract. Rejected ids are deliberately NOT in Injected — they also
	// trip the fabrication check — but this check names the violation
	// precisely. Nil skips it.
	Rejected map[wire.ElementID]struct{}
	// CommittedEpochs maps epoch number → element count for every epoch
	// the observer saw gain f+1 epoch-proofs on the ledger
	// (metrics.Recorder.CommittedEpochSizes). Nil skips the loss check.
	CommittedEpochs map[uint64]int
	// Observer is the server whose observations defined commitment
	// (the harness uses server 0).
	Observer wire.NodeID
	// FoldedEpochs/FoldedCommitted mirror the recorder's checkpoint folds
	// (metrics.Recorder.FoldedEpochs/FoldedCommitted): committed epochs at
	// or below FoldedEpochs were dropped from CommittedEpochs when the
	// observer pruned, and their element total is FoldedCommitted. The
	// checker reconciles the total against the observer's checkpoint chain
	// instead of per-epoch history. Zero when nothing was pruned.
	FoldedEpochs    uint64
	FoldedCommitted uint64
}

// Check verifies every invariant against the deployment's final state and
// returns all violations joined into one error, or nil. Call it after the
// run stopped; it only reads server state.
func Check(d *core.Deployment, cfg Config) error {
	var errs []error
	snaps := make(map[wire.NodeID]core.Snapshot, len(cfg.Correct))
	for _, id := range cfg.Correct {
		// Resolve by node id, not slice index: sharded worlds offset every
		// shard's node ids, so a shard deployment's servers carry ids that
		// are not their positions.
		srv := d.Server(id)
		if srv == nil {
			errs = append(errs, fmt.Errorf("correct server %d not in deployment of %d", id, len(d.Servers)))
			continue
		}
		snaps[id] = srv.Get()
	}

	// Per-server checks: monotone numbering (base-offset when a checkpoint
	// pruned the prefix), no duplication, no fabrication — one pass over
	// each correct history — plus self-consistency of the server's sealed
	// checkpoint chain.
	for _, id := range cfg.Correct {
		snap, ok := snaps[id]
		if !ok {
			continue
		}
		for _, err := range checkCheckpoints(id, snap) {
			errs = append(errs, err)
		}
		seen := make(map[wire.ElementID]uint64, len(snap.TheSet))
		for i, ep := range snap.History {
			if ep.Number != snap.PrunedEpochs+uint64(i+1) {
				errs = append(errs, fmt.Errorf(
					"server %d: non-monotone history: epoch at position %d (base %d) is numbered %d",
					id, i, snap.PrunedEpochs, ep.Number))
			}
			for _, e := range ep.Elements {
				if prev, dup := seen[e.ID]; dup {
					errs = append(errs, fmt.Errorf(
						"server %d: element %v duplicated: epochs %d and %d",
						id, e.ID, prev, ep.Number))
				}
				seen[e.ID] = ep.Number
				if e.Bogus {
					errs = append(errs, fmt.Errorf(
						"server %d: invalid (bogus) element %v committed in epoch %d",
						id, e.ID, ep.Number))
				}
				if cfg.Rejected != nil {
					if _, rej := cfg.Rejected[e.ID]; rej {
						errs = append(errs, fmt.Errorf(
							"server %d: admission-rejected element %v committed in epoch %d",
							id, e.ID, ep.Number))
						continue // already flagged; skip the fabrication double-report
					}
				}
				if cfg.Injected != nil {
					if _, ok := cfg.Injected[e.ID]; !ok {
						errs = append(errs, fmt.Errorf(
							"server %d: fabricated element %v in epoch %d: never injected by the workload",
							id, e.ID, ep.Number))
					}
				}
			}
		}
		// The set itself, below the retained history: pruning drops settled
		// epochs but never the_set, and a forged state-sync snapshot is
		// exactly an attempt to smuggle elements in under the prune horizon
		// where the per-epoch scan above cannot see them. Every set entry not
		// accounted for by retained history must still be valid and injected.
		for eid, e := range snap.TheSet {
			if _, inHistory := seen[eid]; inHistory {
				continue
			}
			if e.Bogus {
				errs = append(errs, fmt.Errorf(
					"server %d: invalid (bogus) element %v in the set below the prune horizon",
					id, eid))
				continue
			}
			if cfg.Injected != nil {
				if _, ok := cfg.Injected[eid]; !ok {
					errs = append(errs, fmt.Errorf(
						"server %d: fabricated element %v in the set: never injected by the workload",
						id, eid))
				}
			}
		}
	}

	// Epoch-prefix consistency: compare every correct server against the
	// correct server with the longest history (by total epoch count —
	// pruned prefix included). Pairwise agreement follows transitively,
	// and one reference keeps the pass O(n·history) instead of
	// O(n²·history). Histories are aligned by absolute epoch number; where
	// a pruned prefix leaves no epochs to compare, the servers' checkpoint
	// chains stand in for them — seal points are deterministic, so correct
	// servers must have sealed bit-identical checkpoints, and a chain
	// entry's digest commits to every epoch hash in its range.
	var ref wire.NodeID
	refTotal := -1
	for _, id := range cfg.Correct {
		if snap, ok := snaps[id]; ok {
			if total := int(snap.PrunedEpochs) + len(snap.History); total > refTotal {
				ref, refTotal = id, total
			}
		}
	}
	if refTotal >= 0 {
		refSnap := snaps[ref]
		for _, id := range cfg.Correct {
			snap, ok := snaps[id]
			if !ok || id == ref {
				continue
			}
			// Checkpoint chains must agree entry for entry on the common
			// prefix — this is the only witness for epochs both sides pruned.
			cks, refCks := snap.Checkpoints, refSnap.Checkpoints
			for i := 0; i < len(cks) && i < len(refCks); i++ {
				// Content comparison (Same): seal heights are per-server
				// prune metadata and may legitimately trail under faults.
				if !cks[i].Same(refCks[i]) {
					errs = append(errs, fmt.Errorf(
						"servers %d and %d diverge: checkpoint %d is %+v vs %+v",
						id, ref, i+1, cks[i], refCks[i]))
				}
			}
			// Retained-epoch overlap, aligned by absolute number.
			lo := snap.PrunedEpochs
			if refSnap.PrunedEpochs > lo {
				lo = refSnap.PrunedEpochs
			}
			hi := snap.PrunedEpochs + uint64(len(snap.History))
			if top := refSnap.PrunedEpochs + uint64(len(refSnap.History)); top < hi {
				hi = top
			}
			for num := lo + 1; num <= hi; num++ {
				ep := snap.History[num-1-snap.PrunedEpochs]
				re := refSnap.History[num-1-refSnap.PrunedEpochs]
				if !bytes.Equal(ep.Hash, re.Hash) {
					errs = append(errs, fmt.Errorf(
						"servers %d and %d diverge: epoch %d hashes differ", id, ref, num))
				}
				if err := sameElements(ep, re); err != nil {
					errs = append(errs, fmt.Errorf("servers %d and %d diverge at epoch %d: %w",
						id, ref, num, err))
				}
			}
		}
	}

	// No committed element lost: every epoch the observer saw commit must
	// still be in the observer's history with the recorded element count.
	// (Prefix consistency then extends the guarantee to every correct
	// server whose history reaches that epoch.)
	if cfg.CommittedEpochs != nil {
		obs, ok := snaps[cfg.Observer]
		if !ok && (len(cfg.CommittedEpochs) > 0 || cfg.FoldedEpochs > 0) {
			errs = append(errs, fmt.Errorf(
				"observer %d not among correct servers; cannot verify %d committed epochs",
				cfg.Observer, len(cfg.CommittedEpochs)))
		} else if ok {
			total := obs.PrunedEpochs + uint64(len(obs.History))
			for epoch, count := range cfg.CommittedEpochs {
				if epoch == 0 || epoch > total {
					errs = append(errs, fmt.Errorf(
						"committed epoch %d lost: observer %d history ends at epoch %d",
						epoch, cfg.Observer, total))
					continue
				}
				if epoch <= obs.PrunedEpochs {
					// Pruned but not folded by the recorder: the per-epoch
					// count is unverifiable; the aggregate check below and
					// cross-server chain agreement cover it.
					continue
				}
				if got := len(obs.History[epoch-1-obs.PrunedEpochs].Elements); got != count {
					errs = append(errs, fmt.Errorf(
						"committed epoch %d on observer %d has %d elements, recorder saw %d at creation",
						epoch, cfg.Observer, got, count))
				}
			}
			// Committed epochs folded below the prune horizon: their element
			// total must match the observer's checkpoint for that horizon
			// exactly (every epoch at or below a checkpoint is settled, so
			// the folded commit total IS the checkpoint's cumulative count).
			if cfg.FoldedEpochs > 0 {
				found := false
				for _, ck := range obs.Checkpoints {
					if ck.Epoch == cfg.FoldedEpochs {
						found = true
						if ck.Elements != cfg.FoldedCommitted {
							errs = append(errs, fmt.Errorf(
								"folded committed elements through epoch %d: recorder saw %d, observer checkpoint holds %d",
								cfg.FoldedEpochs, cfg.FoldedCommitted, ck.Elements))
						}
					}
				}
				if !found {
					errs = append(errs, fmt.Errorf(
						"recorder folded epochs through %d but observer %d has no checkpoint there",
						cfg.FoldedEpochs, cfg.Observer))
				}
			}
		}
	}

	return errors.Join(errs...)
}

// checkCheckpoints verifies one server's sealed checkpoint chain against
// its own retained state: ascending seal points, digests that recompute
// from retained epochs wherever the covered range is still present, and
// pruned-prefix bookkeeping that matches the horizon checkpoint.
func checkCheckpoints(id wire.NodeID, snap core.Snapshot) []error {
	var errs []error
	total := snap.PrunedEpochs + uint64(len(snap.History))
	prev := checkpoint.Checkpoint{Digest: checkpoint.Seed()}
	for i, ck := range snap.Checkpoints {
		if ck.Epoch <= prev.Epoch || ck.Height < prev.Height || ck.Elements < prev.Elements {
			errs = append(errs, fmt.Errorf(
				"server %d: checkpoint %d (%+v) does not extend %+v", id, i+1, ck, prev))
			prev = ck
			continue
		}
		if ck.Epoch > total {
			errs = append(errs, fmt.Errorf(
				"server %d: checkpoint %d seals epoch %d beyond history end %d",
				id, i+1, ck.Epoch, total))
			prev = ck
			continue
		}
		// Recompute digest and cumulative count when the covered range
		// (prev.Epoch, ck.Epoch] survives in retained history — always true
		// when checkpointing runs without pruning, so full chains get full
		// digest verification there.
		if prev.Epoch >= snap.PrunedEpochs {
			d, elems := prev.Digest, prev.Elements
			for e := prev.Epoch + 1; e <= ck.Epoch; e++ {
				ep := snap.History[e-1-snap.PrunedEpochs]
				d = checkpoint.ChainEpoch(d, ep.Number, ep.Hash)
				elems += uint64(len(ep.Elements))
			}
			if d != ck.Digest {
				errs = append(errs, fmt.Errorf(
					"server %d: checkpoint at epoch %d: digest does not recompute from history",
					id, ck.Epoch))
			}
			if elems != ck.Elements {
				errs = append(errs, fmt.Errorf(
					"server %d: checkpoint at epoch %d: cumulative elements %d, history holds %d",
					id, ck.Epoch, ck.Elements, elems))
			}
		}
		prev = ck
	}
	if snap.PrunedEpochs > 0 {
		found := false
		for _, ck := range snap.Checkpoints {
			if ck.Epoch == snap.PrunedEpochs {
				found = true
				if ck.Elements != snap.PrunedElements {
					errs = append(errs, fmt.Errorf(
						"server %d: pruned %d elements but horizon checkpoint at epoch %d holds %d",
						id, snap.PrunedElements, ck.Epoch, ck.Elements))
				}
			}
		}
		if !found {
			errs = append(errs, fmt.Errorf(
				"server %d: history pruned to epoch %d with no checkpoint sealing it",
				id, snap.PrunedEpochs))
		}
	}
	return errs
}

// sameElements compares two epochs' element-id sequences (order matters:
// the epoch hash is order-sensitive).
func sameElements(a, b *core.Epoch) error {
	if len(a.Elements) != len(b.Elements) {
		return fmt.Errorf("%d vs %d elements", len(a.Elements), len(b.Elements))
	}
	for i := range a.Elements {
		if a.Elements[i].ID != b.Elements[i].ID {
			return fmt.Errorf("element %d: %v vs %v", i, a.Elements[i].ID, b.Elements[i].ID)
		}
	}
	return nil
}
