// Package invariant machine-checks Setchain safety on a finished
// deployment: after every harness run — chaos or not — the final state of
// every correct server is compared against the injected workload and
// against the other correct servers. The checks are the paper's safety
// properties made executable:
//
//   - monotone epoch growth: a server's history is numbered 1..k with no
//     gaps or repeats (Setchain's epochs only ever grow);
//   - epoch-prefix consistency: any two correct servers agree on the
//     common prefix of their histories — same epoch hashes and the same
//     element sequences (Get-Global/Consistent-Sets: histories of correct
//     servers are prefixes of one common history);
//   - no duplication: an element is stamped with at most one epoch per
//     server (the_set is a set);
//   - no fabrication: every element in a correct history was injected by
//     the workload's clients and is valid — a Byzantine server cannot
//     smuggle elements into correct servers' histories;
//   - no loss: every epoch the experiment's observer saw commit (f+1
//     epoch-proofs on the ledger) is present in the observer's history
//     with exactly the element count recorded at creation.
//
// Prefix consistency is the load-bearing check: epochs are
// order-sensitive hashes of their element sequences, so two correct
// servers agreeing on epoch k's hash agree on every element (and order)
// up to k; combined with no-fabrication over the injected set, any
// committed element a run could lose or invent shows up as a finite-state
// difference the checker catches.
//
// The checker must not be vacuously green: harness tests corrupt a
// correct server's ledger on purpose and assert the checker fails
// (TestCheckerDetectsCorruption in this package's tests). Verdicts
// surface as harness.Result.Invariant, the Safety column of
// setchain-bench (nonzero exit on violation), and the per-cell
// invariant field of run artifacts rendered into RESULTS.md.
//
// See DESIGN.md §8 (fault model and the invariant checker, including
// the safety argument for epoch-prefix checking).
package invariant

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/wire"
)

// Config scopes a check to what the experiment knows.
type Config struct {
	// Correct lists the servers assumed correct. Byzantine servers are
	// excluded (their local state may be arbitrary); crashed-but-honest
	// servers belong here — a crash truncates a history, it must never
	// corrupt it.
	Correct []wire.NodeID
	// Injected is the set of element ids the workload's clients created
	// and servers accepted. Nil skips the fabrication check.
	Injected map[wire.ElementID]struct{}
	// CommittedEpochs maps epoch number → element count for every epoch
	// the observer saw gain f+1 epoch-proofs on the ledger
	// (metrics.Recorder.CommittedEpochSizes). Nil skips the loss check.
	CommittedEpochs map[uint64]int
	// Observer is the server whose observations defined commitment
	// (the harness uses server 0).
	Observer wire.NodeID
}

// Check verifies every invariant against the deployment's final state and
// returns all violations joined into one error, or nil. Call it after the
// run stopped; it only reads server state.
func Check(d *core.Deployment, cfg Config) error {
	var errs []error
	snaps := make(map[wire.NodeID]core.Snapshot, len(cfg.Correct))
	for _, id := range cfg.Correct {
		// Resolve by node id, not slice index: sharded worlds offset every
		// shard's node ids, so a shard deployment's servers carry ids that
		// are not their positions.
		srv := d.Server(id)
		if srv == nil {
			errs = append(errs, fmt.Errorf("correct server %d not in deployment of %d", id, len(d.Servers)))
			continue
		}
		snaps[id] = srv.Get()
	}

	// Per-server checks: monotone numbering, no duplication, no
	// fabrication — one pass over each correct history.
	for _, id := range cfg.Correct {
		snap, ok := snaps[id]
		if !ok {
			continue
		}
		seen := make(map[wire.ElementID]uint64, len(snap.TheSet))
		for i, ep := range snap.History {
			if ep.Number != uint64(i+1) {
				errs = append(errs, fmt.Errorf(
					"server %d: non-monotone history: epoch at position %d is numbered %d",
					id, i, ep.Number))
			}
			for _, e := range ep.Elements {
				if prev, dup := seen[e.ID]; dup {
					errs = append(errs, fmt.Errorf(
						"server %d: element %v duplicated: epochs %d and %d",
						id, e.ID, prev, ep.Number))
				}
				seen[e.ID] = ep.Number
				if e.Bogus {
					errs = append(errs, fmt.Errorf(
						"server %d: invalid (bogus) element %v committed in epoch %d",
						id, e.ID, ep.Number))
				}
				if cfg.Injected != nil {
					if _, ok := cfg.Injected[e.ID]; !ok {
						errs = append(errs, fmt.Errorf(
							"server %d: fabricated element %v in epoch %d: never injected by the workload",
							id, e.ID, ep.Number))
					}
				}
			}
		}
	}

	// Epoch-prefix consistency: compare every correct server against the
	// correct server with the longest history. Pairwise agreement follows
	// transitively, and one reference keeps the pass O(n·history) instead
	// of O(n²·history).
	var ref wire.NodeID
	refLen := -1
	for _, id := range cfg.Correct {
		if snap, ok := snaps[id]; ok && len(snap.History) > refLen {
			ref, refLen = id, len(snap.History)
		}
	}
	if refLen >= 0 {
		refHist := snaps[ref].History
		for _, id := range cfg.Correct {
			snap, ok := snaps[id]
			if !ok || id == ref {
				continue
			}
			for i, ep := range snap.History {
				re := refHist[i]
				if !bytes.Equal(ep.Hash, re.Hash) {
					errs = append(errs, fmt.Errorf(
						"servers %d and %d diverge: epoch %d hashes differ", id, ref, i+1))
				}
				if err := sameElements(ep, re); err != nil {
					errs = append(errs, fmt.Errorf("servers %d and %d diverge at epoch %d: %w",
						id, ref, i+1, err))
				}
			}
		}
	}

	// No committed element lost: every epoch the observer saw commit must
	// still be in the observer's history with the recorded element count.
	// (Prefix consistency then extends the guarantee to every correct
	// server whose history reaches that epoch.)
	if cfg.CommittedEpochs != nil {
		obs, ok := snaps[cfg.Observer]
		if !ok && len(cfg.CommittedEpochs) > 0 {
			errs = append(errs, fmt.Errorf(
				"observer %d not among correct servers; cannot verify %d committed epochs",
				cfg.Observer, len(cfg.CommittedEpochs)))
		} else {
			for epoch, count := range cfg.CommittedEpochs {
				if epoch == 0 || epoch > uint64(len(obs.History)) {
					errs = append(errs, fmt.Errorf(
						"committed epoch %d lost: observer %d history ends at epoch %d",
						epoch, cfg.Observer, len(obs.History)))
					continue
				}
				if got := len(obs.History[epoch-1].Elements); got != count {
					errs = append(errs, fmt.Errorf(
						"committed epoch %d on observer %d has %d elements, recorder saw %d at creation",
						epoch, cfg.Observer, got, count))
				}
			}
		}
	}

	return errors.Join(errs...)
}

// sameElements compares two epochs' element-id sequences (order matters:
// the epoch hash is order-sensitive).
func sameElements(a, b *core.Epoch) error {
	if len(a.Elements) != len(b.Elements) {
		return fmt.Errorf("%d vs %d elements", len(a.Elements), len(b.Elements))
	}
	for i := range a.Elements {
		if a.Elements[i].ID != b.Elements[i].ID {
			return fmt.Errorf("element %d: %v vs %v", i, a.Elements[i].ID, b.Elements[i].ID)
		}
	}
	return nil
}
