package invariant

import (
	"errors"
	"fmt"

	"repro/internal/shard"
	"repro/internal/wire"
)

// Cross-shard safety. Per-shard Check proves each shard is a correct
// Setchain; CheckCross proves the shards compose into one correct sharded
// set. The properties are the router's and the merge rule's contracts
// made executable:
//
//   - router completeness: every element committed by shard s is owned by
//     s under the deterministic router (no misrouting), so each id has
//     exactly one home;
//   - no cross-shard duplication: an element appears in at most one
//     shard's history (the global structure is still a set);
//   - no cross-shard fabrication: every committed element across all
//     shards was injected by the workload;
//   - superepoch integrity: the view's superepoch sequence is exactly the
//     deterministic merge of the per-shard histories — contiguous 1..K
//     numbering, the right parts in shard order, matching digests — so
//     dropping a shard's epoch, reordering superepochs or fabricating one
//     is a finite-state difference this check catches.
//
// Like Check, CheckCross must not be vacuously green: its mutation tests
// corrupt a merged ledger five ways (cross-shard duplicate, dropped shard
// epoch, misrouted id, fabricated element, reordered superepochs) and
// assert each corruption fails. See DESIGN.md §10.

// CrossConfig scopes a cross-shard check.
type CrossConfig struct {
	// Shards is the deployment's shard count S the router ran with.
	Shards int
	// Injected is the set of element ids the workload's clients created
	// and servers accepted, across all shards. Nil skips the fabrication
	// check.
	Injected map[wire.ElementID]struct{}
}

// CheckCross verifies the cross-shard invariants against a deployment's
// aggregated view and returns all violations joined into one error, or
// nil. The view's Histories are each shard observer's final history (per
// shard correctness is Check's job, run per shard); Supers is the merged
// sequence under test.
func CheckCross(v *shard.View, cfg CrossConfig) error {
	var errs []error
	if len(v.Histories) != cfg.Shards {
		errs = append(errs, fmt.Errorf(
			"view has %d shard histories, deployment ran %d shards", len(v.Histories), cfg.Shards))
	}

	// Router completeness, cross-shard duplication and fabrication: one
	// pass over every shard's every epoch.
	owner := make(map[wire.ElementID]int)
	for s, hist := range v.Histories {
		for _, ep := range hist {
			for _, e := range ep.Elements {
				if want := shard.Route(e.ID, cfg.Shards); want != s {
					errs = append(errs, fmt.Errorf(
						"misrouted element %v: committed by shard %d, router owns it to shard %d",
						e.ID, s, want))
				}
				if prev, dup := owner[e.ID]; dup && prev != s {
					errs = append(errs, fmt.Errorf(
						"element %v duplicated across shards %d and %d", e.ID, prev, s))
				} else {
					owner[e.ID] = s
				}
				if cfg.Injected != nil {
					if _, ok := cfg.Injected[e.ID]; !ok {
						errs = append(errs, fmt.Errorf(
							"shard %d: fabricated element %v in epoch %d: never injected by the workload",
							s, e.ID, ep.Number))
					}
				}
			}
		}
	}

	// Pruned-prefix coverage: when a shard's history was pruned under a
	// checkpoint horizon, the dropped epochs must be sealed by that shard's
	// checkpoint chain — the digests are the only remaining witness for
	// the prefix, and the per-shard Check has already verified them against
	// every correct server of the shard.
	for s, hist := range v.Histories {
		base := uint64(0)
		if s < len(v.Bases) {
			base = v.Bases[s]
		}
		if base == 0 {
			continue
		}
		sealed := uint64(0)
		if s < len(v.Checkpoints) {
			for _, ck := range v.Checkpoints[s] {
				if ck.Epoch > sealed {
					sealed = ck.Epoch
				}
			}
		}
		if sealed < base {
			errs = append(errs, fmt.Errorf(
				"shard %d: history pruned below epoch %d but checkpoints only seal through %d",
				s, base+1, sealed))
		}
		if len(hist) > 0 && hist[0].Number != base+1 {
			errs = append(errs, fmt.Errorf(
				"shard %d: retained history starts at epoch %d, base says %d",
				s, hist[0].Number, base+1))
		}
	}

	// Superepoch integrity: the claimed sequence must be exactly the
	// deterministic merge of the histories above the pruned bases.
	want := shard.MergeFrom(v.Histories, v.Bases)
	if len(v.Supers) != len(want) {
		errs = append(errs, fmt.Errorf(
			"superepoch sequence has %d entries, merge of the shard histories yields %d",
			len(v.Supers), len(want)))
	}
	for i := 0; i < len(v.Supers) && i < len(want); i++ {
		got, exp := v.Supers[i], want[i]
		if got.Number != exp.Number {
			errs = append(errs, fmt.Errorf(
				"superepoch at position %d is numbered %d, want %d (sequence must be contiguous 1..K)",
				i, got.Number, exp.Number))
		}
		if len(got.Parts) != len(exp.Parts) {
			errs = append(errs, fmt.Errorf(
				"superepoch %d has %d shard parts, merge yields %d (a shard's epoch was dropped or invented)",
				exp.Number, len(got.Parts), len(exp.Parts)))
			continue
		}
		for j := range got.Parts {
			if got.Parts[j].Shard != exp.Parts[j].Shard {
				errs = append(errs, fmt.Errorf(
					"superepoch %d part %d comes from shard %d, want shard %d (parts are shard-ascending)",
					exp.Number, j, got.Parts[j].Shard, exp.Parts[j].Shard))
			}
		}
		if got.Digest != exp.Digest {
			errs = append(errs, fmt.Errorf(
				"superepoch %d digest %016x does not match the merge's %016x",
				exp.Number, got.Digest, exp.Digest))
		}
	}

	return errors.Join(errs...)
}
