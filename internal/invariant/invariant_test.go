package invariant

import (
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/workload"
)

// runSmall executes a small fault-free Hashchain run and returns the
// deployment plus the checker Config describing it.
func runSmall(t *testing.T) (*core.Deployment, Config) {
	t.Helper()
	s := sim.New(1)
	const n = 4
	f := (n - 1) / 2
	rec := metrics.New(s, metrics.LevelThroughput, n, f, 0)
	d := core.Deploy(s, n, ledger.Config{
		Net:       netsim.DefaultLANConfig(),
		Consensus: consensus.PaperParams(),
		Mempool:   mempool.PaperConfig(),
	}, core.Options{
		Algorithm:      core.Hashchain,
		CollectorLimit: 100,
		Costs:          core.PaperCostModel(),
		F:              f,
	}, rec)
	gen := workload.New(d, rec, workload.Config{
		Rate: 400, Duration: 6 * time.Second, TrackIDs: true,
	})
	d.Start()
	gen.Start()
	s.RunUntil(25 * time.Second)
	d.Stop()
	if rec.TotalCommitted() == 0 {
		t.Fatal("small run committed nothing; checker would be vacuous")
	}
	return d, Config{
		Correct:         []wire.NodeID{0, 1, 2, 3},
		Injected:        gen.InjectedIDs(),
		CommittedEpochs: rec.CommittedEpochSizes(),
		Observer:        0,
	}
}

func TestCheckerPassesOnCorrectRun(t *testing.T) {
	d, cfg := runSmall(t)
	if err := Check(d, cfg); err != nil {
		t.Fatalf("correct run violates invariants: %v", err)
	}
}

// lastEpoch returns a server's last epoch with at least one element.
func lastEpoch(t *testing.T, d *core.Deployment, id int) *core.Epoch {
	t.Helper()
	hist := d.Servers[id].Get().History
	for i := len(hist) - 1; i >= 0; i-- {
		if len(hist[i].Elements) > 0 {
			return hist[i]
		}
	}
	t.Fatalf("server %d has no non-empty epoch", id)
	return nil
}

// The mutation smoke tests: the checker must detect a deliberately
// corrupted ledger, proving it is not vacuously green.
func TestCheckerDetectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, d *core.Deployment)
		want   string
	}{
		{
			name: "element dropped from one server's epoch",
			mutate: func(t *testing.T, d *core.Deployment) {
				ep := lastEpoch(t, d, 1)
				ep.Elements = ep.Elements[:len(ep.Elements)-1]
			},
			want: "diverge",
		},
		{
			name: "fabricated element swapped into one server's epoch",
			mutate: func(t *testing.T, d *core.Deployment) {
				ep := lastEpoch(t, d, 2)
				forged := *ep.Elements[0]
				forged.ID = wire.ElementID{0xDE, 0xAD, 0xBE, 0xEF}
				ep.Elements[0] = &forged
			},
			want: "fabricated",
		},
		{
			name: "epoch renumbered",
			mutate: func(t *testing.T, d *core.Deployment) {
				lastEpoch(t, d, 3).Number += 7
			},
			want: "non-monotone",
		},
		{
			name: "committed epoch emptied on the observer",
			mutate: func(t *testing.T, d *core.Deployment) {
				// Find a committed epoch the recorder saw with elements and
				// erase its contents on the observer: the loss check must
				// notice the count no longer matches what committed.
				hist := d.Servers[0].Get().History
				for i := len(hist) - 1; i >= 0; i-- {
					if len(hist[i].Elements) > 0 {
						hist[i].Elements = nil
						return
					}
				}
				t.Skip("no non-empty epoch on the observer")
			},
			want: "",
		},
		{
			name: "element duplicated across epochs",
			mutate: func(t *testing.T, d *core.Deployment) {
				hist := d.Servers[1].Get().History
				var nonEmpty []*core.Epoch
				for _, ep := range hist {
					if len(ep.Elements) > 0 {
						nonEmpty = append(nonEmpty, ep)
					}
				}
				if len(nonEmpty) < 2 {
					t.Skip("need two non-empty epochs")
				}
				last := nonEmpty[len(nonEmpty)-1]
				last.Elements[0] = nonEmpty[0].Elements[0]
			},
			want: "duplicated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, cfg := runSmall(t)
			tc.mutate(t, d)
			err := Check(d, cfg)
			if err == nil {
				t.Fatal("checker stayed green on a corrupted ledger")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("violation %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckerFlagsMissingObserver(t *testing.T) {
	d, cfg := runSmall(t)
	cfg.Correct = []wire.NodeID{1, 2, 3} // observer 0 excluded
	err := Check(d, cfg)
	if err == nil || !strings.Contains(err.Error(), "observer") {
		t.Fatalf("want observer error, got %v", err)
	}
}

func TestCheckerNilSetsSkipOptionalChecks(t *testing.T) {
	d, cfg := runSmall(t)
	cfg.Injected = nil
	cfg.CommittedEpochs = nil
	if err := Check(d, cfg); err != nil {
		t.Fatalf("structural checks alone should pass: %v", err)
	}
}

// runSmallAdmission is runSmall with a reject-policy admission gate
// squeezed (30-tx pool) until the generator observes real rejections, and
// the rejected-ID set handed to the checker.
func runSmallAdmission(t *testing.T) (*core.Deployment, Config) {
	t.Helper()
	s := sim.New(1)
	const n = 4
	f := (n - 1) / 2
	rec := metrics.New(s, metrics.LevelThroughput, n, f, 0)
	mcfg := mempool.PaperConfig()
	mcfg.MaxTxs = 30
	mcfg.Admission = mempool.AdmissionConfig{Policy: mempool.AdmissionReject}
	d := core.Deploy(s, n, ledger.Config{
		Net:       netsim.DefaultLANConfig(),
		Consensus: consensus.PaperParams(),
		Mempool:   mcfg,
	}, core.Options{
		Algorithm:      core.Hashchain,
		CollectorLimit: 100,
		Costs:          core.PaperCostModel(),
		F:              f,
	}, rec)
	gen := workload.New(d, rec, workload.Config{
		Rate: 2000, Duration: 6 * time.Second, TrackIDs: true,
	})
	d.Start()
	gen.Start()
	s.RunUntil(25 * time.Second)
	d.Stop()
	if rec.TotalCommitted() == 0 {
		t.Fatal("admission run committed nothing; checker would be vacuous")
	}
	if gen.Rejected() == 0 {
		t.Fatal("admission run rejected nothing; the rejected-ID check would be vacuous")
	}
	return d, Config{
		Correct:         []wire.NodeID{0, 1, 2, 3},
		Injected:        gen.InjectedIDs(),
		Rejected:        gen.RejectedIDs(),
		CommittedEpochs: rec.CommittedEpochSizes(),
		Observer:        0,
	}
}

// The admission arm of the checker: a rejected element must not appear in
// any committed epoch, and — the satellite's bookkeeping contract — the
// rejected-ID set is disjoint from the injected one, so a committed
// rejected element would also read as fabricated.
func TestCheckerDetectsCommittedRejectedElement(t *testing.T) {
	d, cfg := runSmallAdmission(t)
	if err := Check(d, cfg); err != nil {
		t.Fatalf("correct admission run violates invariants: %v", err)
	}
	for id := range cfg.Rejected {
		if _, ok := cfg.Injected[id]; ok {
			t.Fatalf("id %v booked both injected and rejected", id)
		}
	}
	// Splice a rejected element into a committed epoch on one server: the
	// checker must name the admission violation precisely.
	var rejID wire.ElementID
	for id := range cfg.Rejected {
		rejID = id
		break
	}
	ep := lastEpoch(t, d, 2)
	forged := *ep.Elements[0]
	forged.ID = rejID
	ep.Elements[0] = &forged
	err := Check(d, cfg)
	if err == nil {
		t.Fatal("checker stayed green with a rejected element committed")
	}
	if !strings.Contains(err.Error(), "admission-rejected") {
		t.Fatalf("violation %q does not mention the admission rejection", err)
	}
	// Without the rejected set the same splice must still trip the
	// fabrication check — rejected ids are deliberately NOT injected ids.
	cfg.Rejected = nil
	err = Check(d, cfg)
	if err == nil || !strings.Contains(err.Error(), "fabricated") {
		t.Fatalf("want fabrication fallback, got %v", err)
	}
}

// runSmallCkpt is runSmall with checkpoint sealing enabled (every 2
// epochs) and full history retained, so every digest recomputes end to
// end and the checkpoint checker runs in its strictest mode.
func runSmallCkpt(t *testing.T) (*core.Deployment, Config) {
	t.Helper()
	s := sim.New(1)
	const n = 4
	f := (n - 1) / 2
	rec := metrics.New(s, metrics.LevelThroughput, n, f, 0)
	d := core.Deploy(s, n, ledger.Config{
		Net:       netsim.DefaultLANConfig(),
		Consensus: consensus.PaperParams(),
		Mempool:   mempool.PaperConfig(),
	}, core.Options{
		Algorithm:          core.Hashchain,
		CollectorLimit:     100,
		Costs:              core.PaperCostModel(),
		F:                  f,
		CheckpointInterval: 2,
	}, rec)
	gen := workload.New(d, rec, workload.Config{
		Rate: 400, Duration: 6 * time.Second, TrackIDs: true,
	})
	d.Start()
	gen.Start()
	s.RunUntil(25 * time.Second)
	d.Stop()
	if len(d.Servers[0].Get().Checkpoints) == 0 {
		t.Fatal("run sealed no checkpoints; checkpoint checks would be vacuous")
	}
	return d, Config{
		Correct:         []wire.NodeID{0, 1, 2, 3},
		Injected:        gen.InjectedIDs(),
		CommittedEpochs: rec.CommittedEpochSizes(),
		Observer:        0,
	}
}

// The checkpoint arm of the checker must catch corrupted chains — and,
// the regression half of the contract, must NOT flag a seal-height skew:
// heights are per-server prune metadata that legitimately trail by a
// block under faults, so only content (epoch, elements, digest) is part
// of the cross-server agreement.
func TestCheckerDetectsCheckpointCorruption(t *testing.T) {
	// Snapshot slices share the server's backing arrays, so writing
	// through Get().Checkpoints mutates live server state.
	cases := []struct {
		name   string
		mutate func(t *testing.T, d *core.Deployment)
		want   string // "" = checker must STAY green
	}{
		{
			name: "digest corrupted",
			mutate: func(t *testing.T, d *core.Deployment) {
				cks := d.Servers[1].Get().Checkpoints
				cks[len(cks)-1].Digest ^= 1
			},
			want: "does not recompute",
		},
		{
			name: "cumulative element count inflated",
			mutate: func(t *testing.T, d *core.Deployment) {
				cks := d.Servers[2].Get().Checkpoints
				cks[len(cks)-1].Elements += 5
			},
			want: "cumulative elements",
		},
		{
			name: "chain regresses: seal point repeated",
			mutate: func(t *testing.T, d *core.Deployment) {
				cks := d.Servers[1].Get().Checkpoints
				if len(cks) < 2 {
					t.Skip("need two checkpoints")
				}
				cks[1].Epoch = cks[0].Epoch
			},
			want: "does not extend",
		},
		{
			name: "seal beyond history end",
			mutate: func(t *testing.T, d *core.Deployment) {
				cks := d.Servers[3].Get().Checkpoints
				cks[len(cks)-1].Epoch += 1000
			},
			want: "beyond history end",
		},
		{
			name: "seal height skew is NOT a violation",
			mutate: func(t *testing.T, d *core.Deployment) {
				cks := d.Servers[1].Get().Checkpoints
				cks[len(cks)-1].Height++
			},
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, cfg := runSmallCkpt(t)
			tc.mutate(t, d)
			err := Check(d, cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("checker flagged an advisory-height skew: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("checker stayed green on a corrupted checkpoint chain")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("violation %q does not mention %q", err, tc.want)
			}
		})
	}
}
