package invariant

import (
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/wire"
)

// runSharded executes a small fault-free 2-shard Hashchain run and
// returns its aggregated view, the injected-id set and the cross config.
func runSharded(t *testing.T) (*shard.View, CrossConfig) {
	t.Helper()
	s := sim.New(3)
	const shards, n = 2, 4
	d := shard.Deploy(s, shards, n, ledger.Config{
		Net:       netsim.DefaultLANConfig(),
		Consensus: consensus.PaperParams(),
		Mempool:   mempool.PaperConfig(),
	}, core.Options{
		Algorithm:      core.Hashchain,
		CollectorLimit: 100,
		Costs:          core.PaperCostModel(),
		F:              (n - 1) / 2,
	}, metrics.LevelThroughput)
	gen := shard.NewGenerator(d, shard.WorkloadConfig{Rate: 800, Duration: 6 * time.Second})
	d.Start()
	gen.Start()
	s.RunUntil(30 * time.Second)
	d.Stop()
	view := d.View()
	for k, hist := range view.Histories {
		if len(hist) == 0 {
			t.Fatalf("shard %d committed nothing; mutation tests would be vacuous", k)
		}
	}
	return view, CrossConfig{Shards: shards, Injected: gen.InjectedIDs()}
}

// cloneView deep-copies the epoch structure (sharing elements) so a
// mutation cannot leak into the next subtest.
func cloneView(v *shard.View) *shard.View {
	hists := make([][]*core.Epoch, len(v.Histories))
	for k, h := range v.Histories {
		hists[k] = make([]*core.Epoch, len(h))
		for i, ep := range h {
			cp := &core.Epoch{
				Number:   ep.Number,
				Elements: append([]*wire.Element(nil), ep.Elements...),
				Hash:     append([]byte(nil), ep.Hash...),
			}
			hists[k][i] = cp
		}
	}
	return shard.NewView(hists)
}

// TestCheckCrossPassesOnCorrectRun pins the baseline: a real sharded run
// passes, non-vacuously.
func TestCheckCrossPassesOnCorrectRun(t *testing.T) {
	view, cfg := runSharded(t)
	if err := CheckCross(view, cfg); err != nil {
		t.Fatalf("correct sharded run fails the cross-shard check: %v", err)
	}
}

// TestCheckCrossDetectsCorruption corrupts the merged ledger five ways
// and proves the checker fails each one. Every mutation first asserts the
// state it corrupts exists, so no case can pass vacuously.
func TestCheckCrossDetectsCorruption(t *testing.T) {
	view, cfg := runSharded(t)

	// pick returns an epoch of the shard with a committed element.
	firstEpochWithElements := func(v *shard.View, k int) *core.Epoch {
		for _, ep := range v.Histories[k] {
			if len(ep.Elements) > 0 {
				return ep
			}
		}
		t.Fatalf("shard %d has no committed elements", k)
		return nil
	}

	cases := []struct {
		name   string
		mutate func(v *shard.View)
		want   string
	}{
		{
			name: "duplicate-across-shards",
			mutate: func(v *shard.View) {
				// Copy a committed element of shard 0 into a shard 1 epoch:
				// the element now exists on two shards.
				src := firstEpochWithElements(v, 0)
				dst := firstEpochWithElements(v, 1)
				dst.Elements = append(dst.Elements, src.Elements[0])
				v.Supers = shard.Merge(v.Histories)
			},
			want: "duplicated across shards",
		},
		{
			name: "drop-shard-epoch",
			mutate: func(v *shard.View) {
				// Remove shard 1's contribution from a superepoch the merge
				// says it participates in: cross-shard loss.
				se := v.Supers[0]
				if len(se.Parts) != 2 {
					t.Fatalf("superepoch 1 has %d parts, want both shards", len(se.Parts))
				}
				se.Parts = se.Parts[:1]
			},
			want: "shard's epoch was dropped",
		},
		{
			name: "misroute",
			mutate: func(v *shard.View) {
				// Move an element from its owning shard into the other
				// shard's epoch: commitment disobeys the router.
				src := firstEpochWithElements(v, 0)
				dst := firstEpochWithElements(v, 1)
				e := src.Elements[0]
				src.Elements = src.Elements[1:]
				dst.Elements = append(dst.Elements, e)
				v.Supers = shard.Merge(v.Histories)
			},
			want: "misrouted element",
		},
		{
			name: "fabricate",
			mutate: func(v *shard.View) {
				// Insert an element the workload never injected, with an id
				// the router does own to the shard so only the fabrication
				// check can catch it.
				var e wire.Element
				for b := 0; b < 256; b++ {
					e.ID = wire.ElementID{0xfb, byte(b)}
					if shard.Route(e.ID, cfg.Shards) == 1 {
						break
					}
				}
				if _, injected := cfg.Injected[e.ID]; injected {
					t.Fatal("fabricated id collides with an injected one")
				}
				ep := firstEpochWithElements(v, 1)
				ep.Elements = append(ep.Elements, &e)
				v.Supers = shard.Merge(v.Histories)
			},
			want: "fabricated element",
		},
		{
			name: "reorder-superepochs",
			mutate: func(v *shard.View) {
				if len(v.Supers) < 2 {
					t.Fatalf("need at least 2 superepochs, have %d", len(v.Supers))
				}
				v.Supers[0], v.Supers[1] = v.Supers[1], v.Supers[0]
			},
			want: "contiguous 1..K",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := cloneView(view)
			if err := CheckCross(mutated, cfg); err != nil {
				t.Fatalf("clone fails before mutation: %v", err)
			}
			tc.mutate(mutated)
			err := CheckCross(mutated, cfg)
			if err == nil {
				t.Fatalf("checker passed a ledger corrupted by %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("corruption %q detected with the wrong message:\n%v", tc.name, err)
			}
		})
	}
}
