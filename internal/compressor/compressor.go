// Package compressor provides the batch compression used by Compresschain.
//
// The paper compresses batches with Brotli (RFC 7932) and reports measured
// compression ratios of ~2.7 (collector size 100) to ~3.5 (collector size
// 500) on Arbitrum transactions. Brotli is not in the Go standard library,
// so this repo substitutes:
//
//   - Deflate: real compression via compress/flate. Exercises the true
//     compress → ledger → decompress → validate code path; ratios depend on
//     payload entropy.
//   - Modeled: no byte-level work; the compressed size is computed from the
//     paper's measured ratio for the batch's collector size, and the
//     original batch rides alongside for the "decompression" step. Used by
//     the large virtual-time simulations, where the byte-accounting (not
//     the codec) is what the evaluation measures. CPU cost of compression
//     and decompression is charged separately via the cost model.
//
// The substitution is documented in DESIGN.md §1 (fidelity substitutions).
package compressor

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt reports undecodable compressed input.
var ErrCorrupt = errors.New("compressor: corrupt input")

// Compressor turns raw batch bytes into a smaller blob and back.
type Compressor interface {
	// Compress returns the compressed form of data.
	Compress(data []byte) ([]byte, error)
	// Decompress reverses Compress.
	Decompress(blob []byte) ([]byte, error)
	// Name identifies the compressor in experiment metadata.
	Name() string
}

// Deflate is the real, stdlib compressor.
type Deflate struct {
	// Level is the flate compression level; 0 means flate.DefaultCompression.
	Level int
}

// Name implements Compressor.
func (Deflate) Name() string { return "deflate" }

// Compress implements Compressor.
func (d Deflate) Compress(data []byte) ([]byte, error) {
	level := d.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress implements Compressor.
func (Deflate) Decompress(blob []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(blob))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// RatioModel maps a batch's raw size to its modeled compressed size using
// the paper's measured ratios (§4: r ≈ 2.7 at c=100 growing to ≈ 3.5 at
// c=500, because larger batches give the compressor more shared context).
type RatioModel struct {
	// RatioAt100 and RatioAt500 anchor a linear interpolation in the
	// collector size; outside [100,500] the nearest anchor is used.
	RatioAt100 float64
	RatioAt500 float64
}

// PaperRatioModel returns the model fitted to the paper's measurements.
func PaperRatioModel() RatioModel {
	return RatioModel{RatioAt100: 2.7, RatioAt500: 3.5}
}

// Ratio returns the modeled compression ratio for a batch of n items.
func (m RatioModel) Ratio(n int) float64 {
	switch {
	case n <= 100:
		return m.RatioAt100
	case n >= 500:
		return m.RatioAt500
	default:
		frac := float64(n-100) / 400.0
		return m.RatioAt100 + frac*(m.RatioAt500-m.RatioAt100)
	}
}

// CompressedSize returns the modeled on-ledger size for a batch of n items
// with the given raw byte size. A minimum of 64 bytes models framing
// overhead on tiny batches.
func (m RatioModel) CompressedSize(n, rawSize int) int {
	r := m.Ratio(n)
	size := int(float64(rawSize) / r)
	if size < 64 {
		size = 64
	}
	return size
}
