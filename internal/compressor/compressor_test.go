package compressor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeflateRoundTrip(t *testing.T) {
	d := Deflate{}
	data := bytes.Repeat([]byte("setchain element payload "), 100)
	blob, err := d.Compress(data)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if len(blob) >= len(data) {
		t.Fatalf("repetitive data did not compress: %d >= %d", len(blob), len(data))
	}
	out, err := d.Decompress(blob)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestDeflateEmptyInput(t *testing.T) {
	d := Deflate{}
	blob, err := d.Compress(nil)
	if err != nil {
		t.Fatalf("Compress(nil): %v", err)
	}
	out, err := d.Decompress(blob)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("decompressed %d bytes from empty input", len(out))
	}
}

func TestDeflateCorruptInput(t *testing.T) {
	d := Deflate{}
	if _, err := d.Decompress([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err == nil {
		t.Fatal("corrupt blob decompressed without error")
	}
}

func TestDeflateLevels(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 500)
	fast := Deflate{Level: 1}
	best := Deflate{Level: 9}
	bf, err := fast.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := best.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, blob := range [][]byte{bf, bb} {
		out, err := Deflate{}.Decompress(blob)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatal("level variant failed round trip")
		}
	}
}

// Property: any byte string round-trips through deflate.
func TestQuickDeflateRoundTrip(t *testing.T) {
	d := Deflate{}
	f := func(data []byte) bool {
		blob, err := d.Compress(data)
		if err != nil {
			return false
		}
		out, err := d.Decompress(blob)
		if err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioModelAnchors(t *testing.T) {
	m := PaperRatioModel()
	if r := m.Ratio(100); r != 2.7 {
		t.Fatalf("Ratio(100) = %v, want 2.7", r)
	}
	if r := m.Ratio(500); r != 3.5 {
		t.Fatalf("Ratio(500) = %v, want 3.5", r)
	}
	if r := m.Ratio(50); r != 2.7 {
		t.Fatalf("Ratio(50) = %v, want clamp to 2.7", r)
	}
	if r := m.Ratio(1000); r != 3.5 {
		t.Fatalf("Ratio(1000) = %v, want clamp to 3.5", r)
	}
	mid := m.Ratio(300)
	if mid <= 2.7 || mid >= 3.5 {
		t.Fatalf("Ratio(300) = %v, want strictly between anchors", mid)
	}
}

func TestRatioModelMatchesPaperBatchSizes(t *testing.T) {
	// Paper §4: c=100 batches average ~16,000 compressed bytes from ~100
	// elements of ~438 B; c=500 averages ~66,000 bytes. Check the model
	// lands in the right neighborhood (±25%).
	m := PaperRatioModel()
	raw100 := 100 * 438
	got100 := m.CompressedSize(100, raw100)
	if got100 < 12000 || got100 > 20000 {
		t.Fatalf("modeled c=100 compressed size = %d, want ~16000", got100)
	}
	raw500 := 500 * 438
	got500 := m.CompressedSize(500, raw500)
	if got500 < 50000 || got500 > 82000 {
		t.Fatalf("modeled c=500 compressed size = %d, want ~66000", got500)
	}
}

func TestCompressedSizeFloor(t *testing.T) {
	m := PaperRatioModel()
	if got := m.CompressedSize(1, 10); got != 64 {
		t.Fatalf("tiny batch compressed size = %d, want floor 64", got)
	}
}

// Property: modeled compression is monotone in raw size and always positive.
func TestQuickRatioModelMonotone(t *testing.T) {
	m := PaperRatioModel()
	f := func(n uint16, raw uint32) bool {
		nn := int(n)%600 + 1
		r1 := m.CompressedSize(nn, int(raw)%1_000_000)
		r2 := m.CompressedSize(nn, int(raw)%1_000_000+1000)
		return r1 > 0 && r2 >= r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeflateCompressBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	// Semi-compressible payload shaped like transaction data.
	data := make([]byte, 100*438)
	for i := range data {
		if i%3 == 0 {
			data[i] = byte(rng.Intn(16))
		} else {
			data[i] = byte(i % 251)
		}
	}
	d := Deflate{}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}
