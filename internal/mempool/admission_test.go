package mempool

import (
	"testing"
	"time"

	"repro/internal/wire"
)

func admCfg(policy string, maxTxs int) Config {
	return Config{MaxTxs: maxTxs, Admission: AdmissionConfig{Policy: policy}}
}

func fillPool(t *testing.T, p *Mempool, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !p.add(elemTx(base+i, 100), false) {
			t.Fatalf("fill tx %d not pooled", base+i)
		}
	}
}

func TestSaturatedWatermark(t *testing.T) {
	_, pools := newTestPools(t, 1, admCfg(AdmissionReject, 10))
	p := pools[0]
	fillPool(t, p, 1000, 8) // below 0.9*10
	if p.Saturated() {
		t.Fatal("saturated below the watermark")
	}
	fillPool(t, p, 2000, 1) // 9 = 0.9*10
	if !p.Saturated() {
		t.Fatal("not saturated at the watermark")
	}
}

func TestAdmissionOffNeverSaturates(t *testing.T) {
	_, pools := newTestPools(t, 1, Config{MaxTxs: 10})
	p := pools[0]
	fillPool(t, p, 1000, 10)
	if p.Saturated() {
		t.Fatal("closed-system pool reports saturation")
	}
	if !p.AdmitElement() {
		t.Fatal("closed-system pool refused an element")
	}
}

func TestRejectPolicyRefusesElements(t *testing.T) {
	_, pools := newTestPools(t, 1, admCfg(AdmissionReject, 10))
	p := pools[0]
	fillPool(t, p, 1000, 9)
	if p.AdmitElement() {
		t.Fatal("saturated reject-policy pool admitted an element")
	}
	rej, def, exp := p.AdmissionStats()
	if rej != 1 || def != 0 || exp != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1/0/0", rej, def, exp)
	}
	// The headroom above the watermark still takes carrier transactions:
	// AddTx is not gated under the reject policy.
	if !p.AddTx(elemTx(1, 100)) {
		t.Fatal("carrier tx refused inside the watermark headroom")
	}
}

func TestBreakAdmissionForTest(t *testing.T) {
	_, pools := newTestPools(t, 1, admCfg(AdmissionReject, 10))
	p := pools[0]
	fillPool(t, p, 1000, 9)
	BreakAdmissionForTest = true
	defer func() { BreakAdmissionForTest = false }()
	if p.Saturated() {
		t.Fatal("sabotaged gate still reports saturation")
	}
	if !p.AdmitElement() {
		t.Fatal("sabotaged gate still rejects")
	}
}

func TestDelayPolicyDefersAndDrains(t *testing.T) {
	s, pools := newTestPools(t, 1, admCfg(AdmissionDelay, 10))
	p := pools[0]
	var parked *wire.Tx
	s.After(0, func() {
		fillPool(t, p, 1000, 9)
		// Elements stay admitted under the delay promise...
		if !p.AdmitElement() {
			t.Error("delay policy refused an element with queue room")
		}
		// ...and the saturated submission parks instead of entering.
		parked = elemTx(1, 100)
		if !p.AddTx(parked) {
			t.Error("delay policy refused a deferrable tx")
		}
		if p.DeferredLen() != 1 {
			t.Errorf("deferred len = %d, want 1", p.DeferredLen())
		}
		if p.Has(parked.MapKey()) {
			t.Error("deferred tx entered the pool immediately")
		}
	})
	s.After(time.Second, func() {
		// A commit frees space; the drain must move the parked tx in.
		committed := p.Reap(1 << 20)[:5]
		p.RemoveCommitted(1, committed)
		if p.DeferredLen() != 0 {
			t.Errorf("deferred len after drain = %d, want 0", p.DeferredLen())
		}
		if !p.Has(parked.MapKey()) {
			t.Error("deferred tx missing from the pool after the drain")
		}
		_, def, exp := p.AdmissionStats()
		if def != 1 || exp != 0 {
			t.Errorf("stats deferred/expired = %d/%d, want 1/0", def, exp)
		}
	})
	s.RunUntil(10 * time.Second)
}

func TestDelayPolicyExpiresAtDeadline(t *testing.T) {
	s, pools := newTestPools(t, 1, admCfg(AdmissionDelay, 10))
	p := pools[0]
	tx := elemTx(1, 100)
	s.After(0, func() {
		fillPool(t, p, 1000, 9)
		if !p.AddTx(tx) {
			t.Error("deferrable tx refused")
		}
	})
	// No commit ever frees space: the default 5 s MaxDelay must drop it.
	s.RunUntil(time.Minute)
	if p.DeferredLen() != 0 {
		t.Fatalf("deferred len = %d after the deadline, want 0", p.DeferredLen())
	}
	if p.Has(tx.MapKey()) {
		t.Fatal("expired tx entered the pool")
	}
	_, def, exp := p.AdmissionStats()
	if def != 1 || exp != 1 {
		t.Fatalf("stats deferred/expired = %d/%d, want 1/1", def, exp)
	}
}

func TestDelayQueueBounded(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{MaxTxs: 10,
		Admission: AdmissionConfig{Policy: AdmissionDelay, MaxDeferred: 2}})
	p := pools[0]
	s.After(0, func() {
		fillPool(t, p, 1000, 9)
		if !p.AddTx(elemTx(1, 100)) || !p.AddTx(elemTx(2, 100)) {
			t.Error("first two deferrable txs refused")
		}
		if p.AddTx(elemTx(3, 100)) {
			t.Error("third tx accepted past MaxDeferred")
		}
		// With the queue full the element gate must close too.
		if p.AdmitElement() {
			t.Error("element admitted with the deferred queue full")
		}
		rej, def, _ := p.AdmissionStats()
		if rej != 2 || def != 2 {
			t.Errorf("stats rejected/deferred = %d/%d, want 2/2", rej, def)
		}
	})
	s.RunUntil(time.Second)
}

func TestAdmissionDefaults(t *testing.T) {
	_, pools := newTestPools(t, 1, admCfg(AdmissionDelay, 100))
	cfg := pools[0].cfg.Admission
	if cfg.Watermark != 0.9 || cfg.MaxDelay != 5*time.Second || cfg.MaxDeferred != 1024 {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Admission off: nothing defaulted, the zero config stays zero.
	_, off := newTestPools(t, 1, Config{MaxTxs: 100})
	if off[0].cfg.Admission != (AdmissionConfig{}) {
		t.Fatalf("closed-system admission config = %+v", off[0].cfg.Admission)
	}
}
