package mempool

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

func elemTx(i int, size int) *wire.Tx {
	e := &wire.Element{Size: size}
	e.ID[0] = byte(i)
	e.ID[1] = byte(i >> 8)
	e.ID[2] = byte(i >> 16)
	return &wire.Tx{Kind: wire.TxElement, Element: e}
}

func newTestPools(t *testing.T, n int, cfg Config) (*sim.Simulator, []*Mempool) {
	t.Helper()
	s := sim.New(1)
	net := netsim.New(s, netsim.Config{BaseLatency: time.Millisecond})
	pools := make([]*Mempool, n)
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		var peers []wire.NodeID
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		pools[i] = New(id, s, net, peers, cfg, nil, nil)
	}
	for i := 0; i < n; i++ {
		i := i
		net.AddNode(wire.NodeID(i), func(from wire.NodeID, payload any, size int) {
			if msg, ok := payload.(*GossipMsg); ok {
				pools[i].ReceiveGossip(msg)
			}
		})
	}
	return s, pools
}

func TestAddAndReap(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{})
	p := pools[0]
	s.After(0, func() {
		for i := 0; i < 10; i++ {
			if !p.AddTx(elemTx(i, 100)) {
				t.Errorf("tx %d rejected", i)
			}
		}
	})
	s.Run()
	if p.Size() != 10 || p.Bytes() != 1000 {
		t.Fatalf("size=%d bytes=%d, want 10/1000", p.Size(), p.Bytes())
	}
	got := p.Reap(450)
	if len(got) != 4 {
		t.Fatalf("reaped %d txs within 450 bytes, want 4", len(got))
	}
	// Reap is FIFO.
	for i, tx := range got {
		if tx.Element.ID[0] != byte(i) {
			t.Fatalf("reap not FIFO at %d", i)
		}
	}
	// Reap does not remove.
	if p.Size() != 10 {
		t.Fatal("reap removed transactions")
	}
}

func TestDuplicateRejected(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{})
	p := pools[0]
	s.After(0, func() {
		tx := elemTx(1, 100)
		if !p.AddTx(tx) {
			t.Error("first add rejected")
		}
		if p.AddTx(tx) {
			t.Error("duplicate admitted")
		}
	})
	s.Run()
	_, _, _, dup := p.Stats()
	if dup != 1 {
		t.Fatalf("duplicate count = %d, want 1", dup)
	}
}

func TestCheckTxRejection(t *testing.T) {
	s := sim.New(1)
	net := netsim.New(s, netsim.Config{})
	net.AddNode(0, nil)
	p := New(0, s, net, nil, Config{}, func(tx *wire.Tx) bool {
		return tx.Element.Size < 500 // "validity" rule
	}, nil)
	s.After(0, func() {
		if !p.AddTx(elemTx(1, 100)) {
			t.Error("valid tx rejected")
		}
		if p.AddTx(elemTx(2, 1000)) {
			t.Error("invalid tx admitted")
		}
	})
	s.Run()
	_, rejected, _, _ := p.Stats()
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
}

func TestCapacityLimits(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{MaxTxs: 3, MaxBytes: 1 << 20})
	p := pools[0]
	s.After(0, func() {
		for i := 0; i < 5; i++ {
			p.AddTx(elemTx(i, 10))
		}
	})
	s.Run()
	if p.Size() != 3 {
		t.Fatalf("size = %d, want capped at 3", p.Size())
	}
	_, _, dropped, _ := p.Stats()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
}

func TestByteCapacity(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{MaxTxs: 100, MaxBytes: 250})
	p := pools[0]
	s.After(0, func() {
		for i := 0; i < 5; i++ {
			p.AddTx(elemTx(i, 100))
		}
	})
	s.Run()
	if p.Size() != 2 {
		t.Fatalf("size = %d, want 2 within 250 bytes", p.Size())
	}
}

func TestGossipReplication(t *testing.T) {
	s, pools := newTestPools(t, 4, Config{GossipInterval: 5 * time.Millisecond})
	s.After(0, func() {
		for i := 0; i < 20; i++ {
			pools[0].AddTx(elemTx(i, 100))
		}
	})
	s.Run()
	for i, p := range pools {
		if p.Size() != 20 {
			t.Fatalf("pool %d has %d txs, want 20 after gossip", i, p.Size())
		}
	}
}

func TestGossipDoesNotLoopForever(t *testing.T) {
	s, pools := newTestPools(t, 3, Config{GossipInterval: time.Millisecond})
	s.After(0, func() { pools[0].AddTx(elemTx(1, 50)) })
	s.Run() // termination itself is the assertion: re-gossip of known txs stops
	for i, p := range pools {
		if p.Size() != 1 {
			t.Fatalf("pool %d size = %d, want 1", i, p.Size())
		}
	}
}

func TestRemoveCommittedBlocksReentry(t *testing.T) {
	s, pools := newTestPools(t, 2, Config{GossipInterval: time.Millisecond})
	tx := elemTx(7, 100)
	s.After(0, func() { pools[0].AddTx(tx) })
	s.RunUntil(time.Second)
	if pools[1].Size() != 1 {
		t.Fatal("gossip did not replicate")
	}
	pools[0].RemoveCommitted(1, []*wire.Tx{tx})
	pools[1].RemoveCommitted(1, []*wire.Tx{tx})
	if pools[0].Size() != 0 || pools[1].Size() != 0 {
		t.Fatal("committed tx not removed")
	}
	// Late (re)gossip of the committed tx must not re-enter.
	s.After(0, func() { pools[1].ReceiveGossip(&GossipMsg{Txs: []*wire.Tx{tx}}) })
	s.Run()
	if pools[1].Size() != 0 {
		t.Fatal("committed tx re-entered pool")
	}
}

func TestRemoveCommittedNeverSeen(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{})
	p := pools[0]
	tx := elemTx(9, 100)
	p.RemoveCommitted(1, []*wire.Tx{tx}) // seen-marking path
	s.After(0, func() {
		if p.AddTx(tx) {
			t.Error("committed-elsewhere tx admitted")
		}
	})
	s.Run()
}

func TestReapRespectsRemoval(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{})
	p := pools[0]
	var txs []*wire.Tx
	s.After(0, func() {
		for i := 0; i < 10; i++ {
			tx := elemTx(i, 100)
			txs = append(txs, tx)
			p.AddTx(tx)
		}
	})
	s.Run()
	p.RemoveCommitted(1, txs[:5])
	got := p.Reap(1 << 20)
	if len(got) != 5 {
		t.Fatalf("reaped %d, want 5 after removal", len(got))
	}
	if got[0].Element.ID[0] != 5 {
		t.Fatal("reap did not skip removed txs")
	}
}

func TestCompactKeepsOrder(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{})
	p := pools[0]
	var txs []*wire.Tx
	s.After(0, func() {
		for i := 0; i < 200; i++ {
			tx := elemTx(i, 10)
			txs = append(txs, tx)
			p.AddTx(tx)
		}
	})
	s.Run()
	p.RemoveCommitted(1, txs[:150]) // triggers compaction
	got := p.Reap(1 << 20)
	if len(got) != 50 {
		t.Fatalf("reaped %d, want 50", len(got))
	}
	for i, tx := range got {
		if want := byte(150 + i); tx.Element.ID[0] != want {
			t.Fatalf("order broken after compact at %d", i)
		}
	}
}

func TestHas(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{})
	p := pools[0]
	tx := elemTx(1, 10)
	s.After(0, func() { p.AddTx(tx) })
	s.Run()
	if !p.Has(tx.MapKey()) {
		t.Fatal("Has = false for pooled tx")
	}
	if p.Has(wire.TxKey{}) {
		t.Fatal("Has = true for unknown key")
	}
}

func TestGossipBatchesManyTxsIntoFewMessages(t *testing.T) {
	s := sim.New(1)
	net := netsim.New(s, netsim.Config{BaseLatency: time.Millisecond})
	var delivered int
	net.AddNode(0, nil)
	net.AddNode(1, func(from wire.NodeID, payload any, size int) { delivered++ })
	p := New(0, s, net, []wire.NodeID{1}, Config{GossipInterval: 10 * time.Millisecond}, nil, nil)
	s.After(0, func() {
		for i := 0; i < 100; i++ {
			p.AddTx(elemTx(i, 10))
		}
	})
	s.Run()
	if delivered != 1 {
		t.Fatalf("gossip messages = %d, want 1 (batched)", delivered)
	}
}

func TestEnterHookFires(t *testing.T) {
	s := sim.New(1)
	net := netsim.New(s, netsim.Config{})
	net.AddNode(0, nil)
	var entered []string
	p := New(0, s, net, nil, Config{}, nil, func(node wire.NodeID, tx *wire.Tx) {
		entered = append(entered, fmt.Sprintf("%d:%s", node, tx.Key()))
	})
	s.After(0, func() { p.AddTx(elemTx(1, 10)) })
	s.Run()
	if len(entered) != 1 {
		t.Fatalf("enter hook fired %d times, want 1", len(entered))
	}
}

func BenchmarkAddReapRemove(b *testing.B) {
	s := sim.New(1)
	net := netsim.New(s, netsim.Config{})
	net.AddNode(0, nil)
	p := New(0, s, net, nil, Config{}, nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := elemTx(i, 438)
		p.AddTx(tx)
		if i%1000 == 999 {
			batch := p.Reap(1 << 20)
			p.RemoveCommitted(1, batch)
		}
	}
}

// Tombstones below the checkpoint horizon are dropped, tombstones above
// it retained, and the retained ones keep blocking re-entry. A pruned
// key CAN re-enter — the documented worst case, which the application
// layers neutralize because everything it carried is settled below the
// checkpoint.
func TestPruneTombstonesBelow(t *testing.T) {
	s, pools := newTestPools(t, 1, Config{})
	p := pools[0]
	var batches [][]*wire.Tx
	s.After(0, func() {
		for h := 0; h < 3; h++ {
			var txs []*wire.Tx
			for i := 0; i < 4; i++ {
				tx := elemTx(h*4+i, 100)
				txs = append(txs, tx)
				p.AddTx(tx)
			}
			batches = append(batches, txs)
		}
	})
	s.Run()
	for h, txs := range batches {
		p.RemoveCommitted(uint64(h+1), txs)
	}
	if got := p.TombstonedKeys(); got != 12 {
		t.Fatalf("tombstones = %d, want 12", got)
	}

	p.PruneTombstonesBelow(2) // drops heights 1 and 2
	if got := p.TombstonedKeys(); got != 4 {
		t.Fatalf("tombstones after prune = %d, want 4 (height 3 only)", got)
	}
	if got := p.TombstonesPruned(); got != 8 {
		t.Fatalf("pruned counter = %d, want 8", got)
	}
	// Height-3 tombstones still block re-entry; pruned keys re-admit.
	s.After(0, func() {
		if p.AddTx(batches[2][0]) {
			t.Error("retained tombstone failed to block re-entry")
		}
		if !p.AddTx(batches[0][0]) {
			t.Error("pruned key blocked — tombstone survived pruning")
		}
	})
	s.Run()

	// Pruning is idempotent and monotone: a lower horizon is a no-op.
	p.PruneTombstonesBelow(2)
	if got := p.TombstonesPruned(); got != 8 {
		t.Fatalf("re-prune moved the counter: %d, want 8", got)
	}
}
