// Admission control: the open-system backpressure seam (DESIGN.md §14).
// When the pool climbs past a watermark BELOW its hard MaxTxs/MaxBytes
// caps, the node stops taking new client elements — either refusing them
// outright ("reject", the CAC blocking-probability model) or parking new
// transactions in a bounded deferred queue that drains as commits free
// pool space ("delay"). The gap between the watermark and the hard caps
// is deliberate headroom: transactions that carry ALREADY-admitted
// elements (a collector's batch, a proof) must still enter, or admitted
// elements would silently vanish. Everything here runs on the node's own
// simulator timers and pool state, so rejection is as deterministic as
// any other simulated behavior.

package mempool

import (
	"time"

	"repro/internal/wire"
)

// Admission policies (AdmissionConfig.Policy).
const (
	// AdmissionReject refuses new elements while the pool is saturated;
	// the client observes an error and the element is never retried.
	AdmissionReject = "reject"
	// AdmissionDelay keeps admitting elements while the bounded deferred
	// queue has room: their transactions wait out the saturation and
	// enter when commits free space, unless MaxDelay expires first.
	AdmissionDelay = "delay"
)

// AdmissionConfig enables and tunes the admission policy; the zero value
// (empty Policy) leaves admission off — the closed-system behavior.
type AdmissionConfig struct {
	// Policy is AdmissionReject or AdmissionDelay ("" = off).
	Policy string
	// Watermark is the saturation threshold as a fraction of MaxTxs and
	// MaxBytes (default 0.9). It must stay below 1: the remainder is
	// headroom for carriers of already-admitted elements.
	Watermark float64
	// MaxDelay bounds how long a deferred transaction may wait before it
	// is dropped (delay policy; default 5s of virtual time).
	MaxDelay time.Duration
	// MaxDeferred caps the deferred queue (delay policy; default 1024).
	MaxDeferred int
}

// BreakAdmissionForTest disables the admission gate process-wide. It is
// the sabotage hook proving the open-system tests non-vacuous: with the
// gate broken, a saturating run must report ZERO rejections and a
// different fingerprint, or the rejection assertions were never testing
// anything. Set only from tests, never mid-run.
var BreakAdmissionForTest bool

// deferredTx is one transaction parked by the delay policy.
type deferredTx struct {
	tx       *wire.Tx
	deadline time.Duration // virtual-time deadline (sim.Now() + MaxDelay)
}

// Saturated reports whether the pool sits at or above the admission
// watermark. Always false with admission off (or sabotaged): the closed
// system never observes the gate.
func (m *Mempool) Saturated() bool {
	if m.cfg.Admission.Policy == "" || BreakAdmissionForTest {
		return false
	}
	wm := m.cfg.Admission.Watermark
	return float64(m.live) >= wm*float64(m.cfg.MaxTxs) ||
		float64(m.bytes) >= wm*float64(m.cfg.MaxBytes)
}

// AdmitElement is the element-level admission gate, consulted by
// core.Server.Add BEFORE an element enters the set or any collector —
// one door for all three algorithms. Under the reject policy a saturated
// pool turns the element away; under the delay policy it is admitted as
// long as the deferred queue has room to eventually carry it.
func (m *Mempool) AdmitElement() bool {
	if !m.Saturated() {
		return true
	}
	if m.cfg.Admission.Policy == AdmissionDelay &&
		len(m.deferred) < m.cfg.Admission.MaxDeferred {
		return true
	}
	m.admRejected++
	return false
}

// deferTx parks a locally originated transaction until saturation
// clears. Returns false (and counts a rejection) when the queue is full.
func (m *Mempool) deferTx(tx *wire.Tx) bool {
	if len(m.deferred) >= m.cfg.Admission.MaxDeferred {
		m.admRejected++
		return false
	}
	m.deferred = append(m.deferred, deferredTx{tx: tx, deadline: m.sim.Now() + m.cfg.Admission.MaxDelay})
	m.deferredTotal++
	m.armDeferExpiry()
	return true
}

// drainDeferred moves deferred transactions into the pool in FIFO order
// while space below the watermark lasts, dropping entries whose deadline
// passed. Called whenever commits free pool space.
func (m *Mempool) drainDeferred() {
	for len(m.deferred) > 0 && !m.Saturated() {
		d := m.deferred[0]
		m.deferred = m.deferred[1:]
		if d.deadline < m.sim.Now() {
			m.expired++
			continue
		}
		m.add(d.tx, true)
	}
	if len(m.deferred) == 0 {
		m.deferred = nil // release the drained backing array
	}
}

// armDeferExpiry schedules the deadline sweep for the queue's head; one
// timer is outstanding at a time, re-armed from the sweep itself.
func (m *Mempool) armDeferExpiry() {
	if m.deferArmed || len(m.deferred) == 0 {
		return
	}
	m.deferArmed = true
	wait := m.deferred[0].deadline - m.sim.Now()
	if wait < 0 {
		wait = 0
	}
	m.sim.After(wait, m.expireDeferred)
}

// expireDeferred drops deferred transactions whose bounded delay ran out
// without a drain. Their elements (if any were admitted under the delay
// promise) never reach the ledger — that is the "bounded" in
// bounded-delay, and it costs efficiency, never safety.
func (m *Mempool) expireDeferred() {
	m.deferArmed = false
	now := m.sim.Now()
	for len(m.deferred) > 0 && m.deferred[0].deadline <= now {
		m.expired++
		m.deferred = m.deferred[1:]
	}
	m.armDeferExpiry()
}

// DeferredLen returns how many transactions currently wait in the
// deferred queue.
func (m *Mempool) DeferredLen() int { return len(m.deferred) }

// AdmissionStats returns the admission counters: elements/transactions
// refused by the gate, transactions that went through the deferred
// queue, and deferred transactions dropped at their deadline.
func (m *Mempool) AdmissionStats() (rejected, deferred, expired uint64) {
	return m.admRejected, m.deferredTotal, m.expired
}
