// Package mempool implements the CometBFT-style transaction pool: local
// submission (BroadcastTxAsync in the paper's mapping), CheckTx validation,
// deduplication, capacity limits (the paper raises CometBFT's default to
// 10,000,000 transactions or 2 GB), gossip replication to peers, and
// reaping for block proposals.
//
// See DESIGN.md §4 (ledger stack).
package mempool

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config sets pool limits and gossip behavior.
type Config struct {
	// MaxTxs caps the number of pooled transactions (paper: 10,000,000).
	MaxTxs int
	// MaxBytes caps pooled bytes (paper: 2 GB).
	MaxBytes int
	// GossipInterval batches first-seen transactions and forwards them to
	// all peers once per interval, approximating CometBFT's continuous
	// per-peer gossip without per-transaction message explosion.
	GossipInterval time.Duration
	// Admission enables backpressure below the hard caps (admission.go);
	// the zero value leaves admission off.
	Admission AdmissionConfig
}

// PaperConfig returns the evaluation's mempool settings.
func PaperConfig() Config {
	return Config{
		MaxTxs:         10_000_000,
		MaxBytes:       2 << 30,
		GossipInterval: 10 * time.Millisecond,
	}
}

// CheckFunc validates a transaction for admission (ABCI CheckTx).
type CheckFunc func(tx *wire.Tx) bool

// EnterFunc observes a transaction entering this node's pool; used by the
// metrics layer to timestamp the paper's mempool latency stages.
type EnterFunc func(node wire.NodeID, tx *wire.Tx)

// GossipMsg is the network payload carrying batched transactions to peers.
type GossipMsg struct {
	Txs []*wire.Tx
}

// Mempool is one node's transaction pool.
type Mempool struct {
	id    wire.NodeID
	sim   *sim.Simulator
	net   *netsim.Network
	cfg   Config
	check CheckFunc
	enter EnterFunc

	// entries is pool ∪ committed in one map: a non-nil value is a pooled
	// transaction, a nil value is a tombstone for a committed (or evicted)
	// key that must never re-enter. One map instead of a pool map plus a
	// seen-set halves the hot-path key inserts.
	entries map[wire.TxKey]*wire.Tx
	order   []wire.TxKey // admission order for reaping
	live    int          // entries with non-nil value
	bytes   int

	// tombstones logs committed keys by commit height so checkpointing can
	// drop tombstones below the prune horizon (PruneTombstonesBelow).
	// Without pruning the log — like the tombstones themselves — grows with
	// total committed transactions, which is exactly the unbounded growth
	// soak runs must not have.
	tombstones []tombstoneBatch

	pendingGossip []*wire.Tx
	flushArmed    bool
	peers         []wire.NodeID

	// bcast, when set, replaces the per-peer gossip send loop (the mesh
	// transport seam, DESIGN.md §13). The mesh relays envelopes itself, so
	// with bcast installed, received transactions are NOT re-originated.
	bcast func(payload any, size int)

	// Admission-control state (admission.go): transactions parked by the
	// delay policy, the single outstanding deadline timer, and counters.
	deferred      []deferredTx
	deferArmed    bool
	admRejected   uint64
	deferredTotal uint64
	expired       uint64

	// Stats.
	admitted         uint64
	rejected         uint64
	dropped          uint64 // capacity drops
	duplicate        uint64
	tombstonesPruned uint64
}

// tombstoneBatch records the keys tombstoned by one committed block.
type tombstoneBatch struct {
	height uint64
	keys   []wire.TxKey
}

// New creates a mempool for a node. peers is the set of other nodes gossip
// reaches. check may be nil (accept all); enter may be nil.
func New(id wire.NodeID, s *sim.Simulator, net *netsim.Network, peers []wire.NodeID, cfg Config, check CheckFunc, enter EnterFunc) *Mempool {
	if cfg.MaxTxs == 0 {
		cfg.MaxTxs = PaperConfig().MaxTxs
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = PaperConfig().MaxBytes
	}
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = PaperConfig().GossipInterval
	}
	if cfg.Admission.Policy != "" {
		if cfg.Admission.Watermark == 0 {
			cfg.Admission.Watermark = 0.9
		}
		if cfg.Admission.MaxDelay == 0 {
			cfg.Admission.MaxDelay = 5 * time.Second
		}
		if cfg.Admission.MaxDeferred == 0 {
			cfg.Admission.MaxDeferred = 1024
		}
	}
	return &Mempool{
		id:      id,
		sim:     s,
		net:     net,
		cfg:     cfg,
		check:   check,
		enter:   enter,
		entries: make(map[wire.TxKey]*wire.Tx),
		peers:   peers,
	}
}

// SetCheck replaces the admission filter. Intended for wiring the
// application's CheckTx after construction; not for use mid-run.
func (m *Mempool) SetCheck(check CheckFunc) { m.check = check }

// SetBroadcaster installs the transport used to fan gossip batches out.
// nil (the default) keeps the classic per-peer send loop; the mesh
// transport installs its Gossip publish here, and transitive re-gossip of
// received transactions is then suppressed — the mesh's own relay already
// floods every envelope to not-yet-seen nodes, so re-originating would
// send each transaction O(n) extra times.
func (m *Mempool) SetBroadcaster(b func(payload any, size int)) { m.bcast = b }

// AddTx submits a transaction locally (the paper's BroadcastTxAsync path).
// It validates, pools, and schedules gossip. Returns true if admitted.
// Under the delay admission policy, submissions against a saturated pool
// are parked in the bounded deferred queue instead (admission.go); under
// the reject policy, saturation was already refused at the element gate,
// and the transactions that still arrive here carry admitted elements
// and enter using the watermark headroom.
func (m *Mempool) AddTx(tx *wire.Tx) bool {
	if m.cfg.Admission.Policy == AdmissionDelay && m.Saturated() {
		return m.deferTx(tx)
	}
	return m.add(tx, true)
}

// ReceiveGossip ingests transactions forwarded by a peer. On the classic
// transport, first-seen valid transactions are pooled and re-forwarded
// (flooding, as CometBFT's gossip effectively achieves on a full mesh);
// under a mesh broadcaster the overlay's relay already floods them, so
// they are pooled without re-origination.
func (m *Mempool) ReceiveGossip(msg *GossipMsg) {
	for _, tx := range msg.Txs {
		m.add(tx, m.bcast == nil)
	}
}

func (m *Mempool) add(tx *wire.Tx, gossip bool) bool {
	key := tx.MapKey()
	if _, ok := m.entries[key]; ok {
		m.duplicate++
		return false
	}
	if m.check != nil && !m.check(tx) {
		m.rejected++
		return false
	}
	if m.live >= m.cfg.MaxTxs || m.bytes+tx.WireSize() > m.cfg.MaxBytes {
		m.dropped++
		return false
	}
	m.entries[key] = tx
	m.live++
	m.order = append(m.order, key)
	m.bytes += tx.WireSize()
	m.admitted++
	if m.enter != nil {
		m.enter(m.id, tx)
	}
	if gossip && (len(m.peers) > 0 || m.bcast != nil) {
		m.pendingGossip = append(m.pendingGossip, tx)
		m.armFlush()
	}
	return true
}

func (m *Mempool) armFlush() {
	if m.flushArmed {
		return
	}
	m.flushArmed = true
	m.sim.After(m.cfg.GossipInterval, m.flush)
}

func (m *Mempool) flush() {
	m.flushArmed = false
	if len(m.pendingGossip) == 0 {
		return
	}
	msg := &GossipMsg{Txs: m.pendingGossip}
	size := 0
	for _, tx := range msg.Txs {
		size += tx.WireSize()
	}
	m.pendingGossip = nil
	if m.bcast != nil {
		m.bcast(msg, size)
		return
	}
	for _, p := range m.peers {
		m.net.Send(m.id, p, msg, size)
	}
}

// Reap returns pooled transactions in admission order up to maxBytes total,
// without removing them (they leave the pool when their block commits).
func (m *Mempool) Reap(maxBytes int) []*wire.Tx {
	var out []*wire.Tx
	total := 0
	for _, key := range m.order {
		tx := m.entries[key]
		if tx == nil {
			continue
		}
		sz := tx.WireSize()
		if total+sz > maxBytes {
			// Txs are admitted in arbitrary size order; stop at the first
			// overflow to keep reaping O(block size) and FIFO-fair.
			break
		}
		out = append(out, tx)
		total += sz
	}
	return out
}

// RemoveCommitted evicts transactions included in the block committed at
// the given height and compacts the admission order lazily. The keys stay
// as tombstones, so committed transactions can never re-enter this pool —
// until PruneTombstonesBelow drops tombstones the checkpoint horizon has
// made redundant.
func (m *Mempool) RemoveCommitted(height uint64, txs []*wire.Tx) {
	keys := make([]wire.TxKey, 0, len(txs))
	for _, tx := range txs {
		key := tx.MapKey()
		// A committed tx may have never reached this pool (e.g. it was
		// proposed by another node before gossip arrived). Tombstone it so
		// late gossip is dropped.
		if old := m.entries[key]; old != nil {
			m.bytes -= old.WireSize()
			m.live--
		}
		m.entries[key] = nil
		keys = append(keys, key)
	}
	if len(keys) > 0 {
		m.tombstones = append(m.tombstones, tombstoneBatch{height: height, keys: keys})
	}
	m.compact()
	// Commits free pool space: let deferred transactions in.
	m.drainDeferred()
}

// PruneTombstonesBelow deletes tombstones for transactions committed at or
// below the given height (the latest checkpoint's seal height). Safe
// because everything those transactions carried is settled below the
// checkpoint: if impossibly late gossip re-admits one, the application
// layers drop its content as stale (elements via the membership index,
// proofs and hash-batch signatures via their own horizons), so the worst
// case is a few wasted block bytes — the price of bounded memory.
func (m *Mempool) PruneTombstonesBelow(height uint64) {
	cut := 0
	for cut < len(m.tombstones) && m.tombstones[cut].height <= height {
		for _, key := range m.tombstones[cut].keys {
			if tx, ok := m.entries[key]; ok && tx == nil {
				delete(m.entries, key)
				m.tombstonesPruned++
			}
		}
		cut++
	}
	if cut > 0 {
		m.tombstones = append([]tombstoneBatch(nil), m.tombstones[cut:]...)
	}
}

// TombstonedKeys returns how many committed-key tombstones the pool holds
// (soak assertions pin this as bounded under pruning).
func (m *Mempool) TombstonedKeys() int { return len(m.entries) - m.live }

// TombstonesPruned returns how many tombstones pruning has dropped.
func (m *Mempool) TombstonesPruned() uint64 { return m.tombstonesPruned }

func (m *Mempool) compact() {
	// Rebuild order only when it is mostly tombstones to keep Reap cheap.
	if len(m.order) < 64 || m.live*2 > len(m.order) {
		return
	}
	liveOrder := m.order[:0]
	for _, key := range m.order {
		if m.entries[key] != nil {
			liveOrder = append(liveOrder, key)
		}
	}
	m.order = liveOrder
}

// Size returns the number of pooled transactions.
func (m *Mempool) Size() int { return m.live }

// Bytes returns the pooled byte total.
func (m *Mempool) Bytes() int { return m.bytes }

// Has reports whether the pool currently holds the given tx key.
func (m *Mempool) Has(key wire.TxKey) bool {
	return m.entries[key] != nil
}

// Stats returns counters (admitted, rejected by CheckTx, dropped by
// capacity, duplicates ignored).
func (m *Mempool) Stats() (admitted, rejected, dropped, duplicate uint64) {
	return m.admitted, m.rejected, m.dropped, m.duplicate
}
