// Package codec provides the deterministic binary encoding of Setchain
// wire objects. The full-fidelity code path uses it to turn batches into
// the byte strings that get compressed (Compresschain) or hashed
// (Hashchain), and to reconstruct them on the receiving side. Encodings are
// length-prefixed, little-endian, and contain no maps, so they are
// byte-for-byte reproducible — a requirement for hashing batches and
// epochs consistently across servers.
//
// See DESIGN.md §1 (fidelity substitutions).
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Encoding errors.
var (
	ErrTruncated = errors.New("codec: truncated input")
	ErrBadKind   = errors.New("codec: unknown object kind")
	ErrTooLarge  = errors.New("codec: length prefix exceeds limit")
)

// maxLen bounds any single length prefix to defend against corrupt or
// hostile inputs blowing up allocations.
const maxLen = 1 << 28 // 256 MiB

type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > maxLen {
		return nil, ErrTooLarge
	}
	if r.remaining() < n {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) uint64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) uint32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) lenBytes() ([]byte, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	return r.bytes(int(n))
}

func appendLenBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// AppendElement encodes e onto buf.
func AppendElement(buf []byte, e *wire.Element) []byte {
	buf = append(buf, e.ID[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Client))
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Size))
	buf = appendLenBytes(buf, e.Payload)
	buf = appendLenBytes(buf, e.Sig)
	return buf
}

func decodeElement(r *reader) (*wire.Element, error) {
	idb, err := r.bytes(16)
	if err != nil {
		return nil, err
	}
	var e wire.Element
	copy(e.ID[:], idb)
	client, err := r.uint64()
	if err != nil {
		return nil, err
	}
	e.Client = wire.ClientID(client)
	if e.Seq, err = r.uint64(); err != nil {
		return nil, err
	}
	size, err := r.uint32()
	if err != nil {
		return nil, err
	}
	e.Size = int(size)
	payload, err := r.lenBytes()
	if err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		e.Payload = append([]byte(nil), payload...)
	}
	sig, err := r.lenBytes()
	if err != nil {
		return nil, err
	}
	if len(sig) > 0 {
		e.Sig = append([]byte(nil), sig...)
	}
	return &e, nil
}

// AppendProof encodes an epoch-proof onto buf.
func AppendProof(buf []byte, p *wire.EpochProof) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, p.Epoch)
	buf = appendLenBytes(buf, p.EpochHash)
	buf = appendLenBytes(buf, p.Sig)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Signer))
	return buf
}

func decodeProof(r *reader) (*wire.EpochProof, error) {
	var p wire.EpochProof
	var err error
	if p.Epoch, err = r.uint64(); err != nil {
		return nil, err
	}
	h, err := r.lenBytes()
	if err != nil {
		return nil, err
	}
	p.EpochHash = append([]byte(nil), h...)
	sig, err := r.lenBytes()
	if err != nil {
		return nil, err
	}
	p.Sig = append([]byte(nil), sig...)
	signer, err := r.uint64()
	if err != nil {
		return nil, err
	}
	p.Signer = wire.NodeID(signer)
	return &p, nil
}

// EncodeBatch serializes a batch (elements then proofs) deterministically.
// This is the byte string Compresschain compresses and Hashchain hashes.
func EncodeBatch(b *wire.Batch) []byte {
	buf := make([]byte, 0, b.RawSize()+16)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Elements)))
	for _, e := range b.Elements {
		buf = AppendElement(buf, e)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Proofs)))
	for _, p := range b.Proofs {
		buf = AppendProof(buf, p)
	}
	return buf
}

// DecodeBatch reverses EncodeBatch.
func DecodeBatch(data []byte) (*wire.Batch, error) {
	r := &reader{buf: data}
	nel, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if int(nel) > maxLen {
		return nil, ErrTooLarge
	}
	b := &wire.Batch{}
	for i := 0; i < int(nel); i++ {
		e, err := decodeElement(r)
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		b.Elements = append(b.Elements, e)
	}
	np, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if int(np) > maxLen {
		return nil, ErrTooLarge
	}
	for i := 0; i < int(np); i++ {
		p, err := decodeProof(r)
		if err != nil {
			return nil, fmt.Errorf("proof %d: %w", i, err)
		}
		b.Proofs = append(b.Proofs, p)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("codec: %d trailing bytes", r.remaining())
	}
	return b, nil
}

// EncodeTx serializes a ledger transaction envelope.
func EncodeTx(tx *wire.Tx) ([]byte, error) {
	buf := []byte{byte(tx.Kind)}
	switch tx.Kind {
	case wire.TxElement:
		buf = AppendElement(buf, tx.Element)
	case wire.TxProof:
		buf = AppendProof(buf, tx.Proof)
	case wire.TxCompressedBatch:
		cb := tx.Compressed
		buf = appendLenBytes(buf, cb.Data)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(cb.CompSize))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cb.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, cb.Seq)
	case wire.TxHashBatch:
		hb := tx.HashBatch
		buf = appendLenBytes(buf, hb.Hash)
		buf = appendLenBytes(buf, hb.Sig)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(hb.Signer))
	default:
		return nil, ErrBadKind
	}
	return buf, nil
}

// DecodeTx reverses EncodeTx.
func DecodeTx(data []byte) (*wire.Tx, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	r := &reader{buf: data, off: 1}
	tx := &wire.Tx{Kind: wire.TxKind(data[0])}
	switch tx.Kind {
	case wire.TxElement:
		e, err := decodeElement(r)
		if err != nil {
			return nil, err
		}
		tx.Element = e
	case wire.TxProof:
		p, err := decodeProof(r)
		if err != nil {
			return nil, err
		}
		tx.Proof = p
	case wire.TxCompressedBatch:
		data, err := r.lenBytes()
		if err != nil {
			return nil, err
		}
		cb := &wire.CompressedBatch{Data: append([]byte(nil), data...)}
		size, err := r.uint32()
		if err != nil {
			return nil, err
		}
		cb.CompSize = int(size)
		origin, err := r.uint64()
		if err != nil {
			return nil, err
		}
		cb.Origin = wire.NodeID(origin)
		if cb.Seq, err = r.uint64(); err != nil {
			return nil, err
		}
		tx.Compressed = cb
	case wire.TxHashBatch:
		h, err := r.lenBytes()
		if err != nil {
			return nil, err
		}
		hb := &wire.HashBatch{Hash: append([]byte(nil), h...)}
		sig, err := r.lenBytes()
		if err != nil {
			return nil, err
		}
		hb.Sig = append([]byte(nil), sig...)
		signer, err := r.uint64()
		if err != nil {
			return nil, err
		}
		hb.Signer = wire.NodeID(signer)
		tx.HashBatch = hb
	default:
		return nil, ErrBadKind
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("codec: %d trailing bytes", r.remaining())
	}
	return tx, nil
}
