package codec

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func randElement(rng *rand.Rand) *wire.Element {
	e := &wire.Element{
		Client: wire.ClientID(rng.Intn(100)),
		Seq:    rng.Uint64(),
	}
	rng.Read(e.ID[:])
	n := rng.Intn(599) + 1 // decode normalizes empty payloads to nil
	e.Payload = make([]byte, n)
	rng.Read(e.Payload)
	e.Sig = make([]byte, 64)
	rng.Read(e.Sig)
	e.Size = wire.ElementHeaderSize + n + 64
	return e
}

func randProof(rng *rand.Rand) *wire.EpochProof {
	p := &wire.EpochProof{
		Epoch:  rng.Uint64() % 10000,
		Signer: wire.NodeID(rng.Intn(10)),
	}
	p.EpochHash = make([]byte, 64)
	rng.Read(p.EpochHash)
	p.Sig = make([]byte, 64)
	rng.Read(p.Sig)
	return p
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := &wire.Batch{}
	for i := 0; i < 50; i++ {
		b.Elements = append(b.Elements, randElement(rng))
	}
	for i := 0; i < 10; i++ {
		b.Proofs = append(b.Proofs, randProof(rng))
	}
	enc := EncodeBatch(b)
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if !reflect.DeepEqual(b, dec) {
		t.Fatal("batch did not round-trip")
	}
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	enc := EncodeBatch(&wire.Batch{})
	dec, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if !dec.Empty() {
		t.Fatal("empty batch decoded non-empty")
	}
}

func TestBatchEncodingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := &wire.Batch{Elements: []*wire.Element{randElement(rng), randElement(rng)}}
	if !bytes.Equal(EncodeBatch(b), EncodeBatch(b)) {
		t.Fatal("EncodeBatch is not deterministic")
	}
}

func TestDecodeBatchTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := &wire.Batch{Elements: []*wire.Element{randElement(rng)}}
	enc := EncodeBatch(b)
	for _, cut := range []int{0, 1, 3, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecodeBatchTrailingGarbage(t *testing.T) {
	enc := EncodeBatch(&wire.Batch{})
	if _, err := DecodeBatch(append(enc, 0xAA)); err == nil {
		t.Fatal("trailing garbage not detected")
	}
}

func TestDecodeBatchHostileLengths(t *testing.T) {
	// A batch claiming 2^31 elements must fail fast, not allocate.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := DecodeBatch(hostile); err == nil {
		t.Fatal("hostile element count accepted")
	}
}

func TestTxRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	txs := []*wire.Tx{
		{Kind: wire.TxElement, Element: randElement(rng)},
		{Kind: wire.TxProof, Proof: randProof(rng)},
		{Kind: wire.TxCompressedBatch, Compressed: &wire.CompressedBatch{
			Data: []byte{1, 2, 3, 4}, CompSize: 4, Origin: 3, Seq: 17,
		}},
		{Kind: wire.TxHashBatch, HashBatch: &wire.HashBatch{
			Hash: bytes.Repeat([]byte{7}, 64), Sig: bytes.Repeat([]byte{9}, 64), Signer: 2,
		}},
	}
	for _, tx := range txs {
		enc, err := EncodeTx(tx)
		if err != nil {
			t.Fatalf("EncodeTx(%v): %v", tx.Kind, err)
		}
		dec, err := DecodeTx(enc)
		if err != nil {
			t.Fatalf("DecodeTx(%v): %v", tx.Kind, err)
		}
		if !reflect.DeepEqual(tx, dec) {
			t.Fatalf("tx kind %v did not round-trip", tx.Kind)
		}
	}
}

func TestTxBadKind(t *testing.T) {
	if _, err := EncodeTx(&wire.Tx{Kind: 99}); err == nil {
		t.Fatal("unknown kind encoded")
	}
	if _, err := DecodeTx([]byte{99, 0, 0}); err == nil {
		t.Fatal("unknown kind decoded")
	}
	if _, err := DecodeTx(nil); err == nil {
		t.Fatal("empty input decoded")
	}
}

// Property: any batch built from generated parts round-trips exactly.
func TestQuickBatchRoundTrip(t *testing.T) {
	f := func(seed int64, nel, np uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &wire.Batch{}
		for i := 0; i < int(nel)%20; i++ {
			b.Elements = append(b.Elements, randElement(rng))
		}
		for i := 0; i < int(np)%8; i++ {
			b.Proofs = append(b.Proofs, randProof(rng))
		}
		dec, err := DecodeBatch(EncodeBatch(b))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(b, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte strings never panic the decoder (they may error).
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeBatch(data)
		_, _ = DecodeTx(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeBatch500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	batch := &wire.Batch{}
	for i := 0; i < 500; i++ {
		batch.Elements = append(batch.Elements, randElement(rng))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeBatch(batch)
	}
}

func BenchmarkDecodeBatch500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	batch := &wire.Batch{}
	for i := 0; i < 500; i++ {
		batch.Elements = append(batch.Elements, randElement(rng))
	}
	enc := EncodeBatch(batch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(enc); err != nil {
			b.Fatal(err)
		}
	}
}
