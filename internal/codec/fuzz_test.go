package codec

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeBatch throws arbitrary bytes at the batch decoder; it must
// never panic, and anything it accepts must re-encode to the same bytes
// (decode-encode fixpoint on valid inputs).
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	rng := rand.New(rand.NewSource(1))
	b := &wire.Batch{Elements: []*wire.Element{randElement(rng)},
		Proofs: []*wire.EpochProof{randProof(rng)}}
	f.Add(EncodeBatch(b))
	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeBatch(batch), data) {
			t.Fatalf("accepted input is not an encode fixpoint")
		}
	})
}

// FuzzTxCodecRoundTrip drives the encoder from structured inputs: every
// transaction kind, built from arbitrary field values, must encode, decode
// back to a semantically identical object, and re-encode to the same
// bytes. This is the constructive complement of the random-bytes decoders
// below — it explores the valid-input space (huge payloads, zero-length
// signatures, extreme ids) instead of the rejection paths.
func FuzzTxCodecRoundTrip(f *testing.F) {
	f.Add(uint8(wire.TxElement), int64(3), uint64(9), 438, []byte("payload"), []byte("sig"))
	f.Add(uint8(wire.TxProof), int64(-1), uint64(0), 0, []byte{}, []byte{})
	f.Add(uint8(wire.TxCompressedBatch), int64(2), uint64(7), 139, []byte("deflate"), []byte(nil))
	f.Add(uint8(wire.TxHashBatch), int64(5), uint64(1), 64, []byte("hash"), []byte("s"))
	f.Fuzz(func(t *testing.T, kind uint8, id int64, seq uint64, size int, blobA, blobB []byte) {
		var tx *wire.Tx
		switch wire.TxKind(kind) {
		case wire.TxElement:
			e := &wire.Element{Client: wire.ClientID(id), Seq: seq, Size: size,
				Payload: blobA, Sig: blobB}
			binary.LittleEndian.PutUint64(e.ID[:], seq)
			tx = &wire.Tx{Kind: wire.TxElement, Element: e}
		case wire.TxProof:
			tx = &wire.Tx{Kind: wire.TxProof, Proof: &wire.EpochProof{
				Epoch: seq, EpochHash: blobA, Sig: blobB, Signer: wire.NodeID(id)}}
		case wire.TxCompressedBatch:
			tx = &wire.Tx{Kind: wire.TxCompressedBatch, Compressed: &wire.CompressedBatch{
				Data: blobA, CompSize: size, Origin: wire.NodeID(id), Seq: seq}}
		case wire.TxHashBatch:
			tx = &wire.Tx{Kind: wire.TxHashBatch, HashBatch: &wire.HashBatch{
				Hash: blobA, Sig: blobB, Signer: wire.NodeID(id)}}
		default:
			return // not a valid kind; EncodeTx rejecting it is tested elsewhere
		}
		enc, err := EncodeTx(tx)
		if err != nil {
			t.Fatalf("valid tx failed to encode: %v", err)
		}
		dec, err := DecodeTx(enc)
		if err != nil {
			t.Fatalf("encoded tx failed to decode: %v", err)
		}
		re, err := EncodeTx(dec)
		if err != nil {
			t.Fatalf("decoded tx failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("round trip not stable:\nfirst:  %x\nsecond: %x", enc, re)
		}
		if dec.Kind != tx.Kind {
			t.Fatalf("kind changed: %d -> %d", tx.Kind, dec.Kind)
		}
	})
}

// FuzzDecodeTx does the same for the transaction envelope.
func FuzzDecodeTx(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	enc, _ := EncodeTx(&wire.Tx{Kind: wire.TxElement, Element: randElement(rng)})
	f.Add(enc)
	f.Add([]byte{byte(wire.TxHashBatch)})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := DecodeTx(data)
		if err != nil {
			return
		}
		re, err := EncodeTx(tx)
		if err != nil {
			t.Fatalf("decoded tx failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not an encode fixpoint")
		}
	})
}
