package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeBatch throws arbitrary bytes at the batch decoder; it must
// never panic, and anything it accepts must re-encode to the same bytes
// (decode-encode fixpoint on valid inputs).
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	rng := rand.New(rand.NewSource(1))
	b := &wire.Batch{Elements: []*wire.Element{randElement(rng)},
		Proofs: []*wire.EpochProof{randProof(rng)}}
	f.Add(EncodeBatch(b))
	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeBatch(batch), data) {
			t.Fatalf("accepted input is not an encode fixpoint")
		}
	})
}

// FuzzDecodeTx does the same for the transaction envelope.
func FuzzDecodeTx(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	enc, _ := EncodeTx(&wire.Tx{Kind: wire.TxElement, Element: randElement(rng)})
	f.Add(enc)
	f.Add([]byte{byte(wire.TxHashBatch)})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := DecodeTx(data)
		if err != nil {
			return
		}
		re, err := EncodeTx(tx)
		if err != nil {
			t.Fatalf("decoded tx failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not an encode fixpoint")
		}
	})
}
