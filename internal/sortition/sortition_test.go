package sortition

import (
	"testing"
	"testing/quick"

	"repro/internal/setcrypto"
)

func selector(t *testing.T, size int, term uint64, stakes []Stake) *Selector {
	t.Helper()
	s, err := NewSelector(setcrypto.FastSuite{}, Params{CommitteeSize: size, TermLength: term}, stakes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func uniformStakes(n int) []Stake {
	out := make([]Stake, n)
	for i := range out {
		out[i] = Stake{ID: i, Weight: 100}
	}
	return out
}

func TestCommitteeDeterministic(t *testing.T) {
	s1 := selector(t, 4, 10, uniformStakes(20))
	s2 := selector(t, 4, 10, uniformStakes(20))
	c1, c2 := s1.Committee(3), s2.Committee(3)
	if len(c1.Members) != 4 || len(c2.Members) != 4 {
		t.Fatalf("committee sizes %d/%d", len(c1.Members), len(c2.Members))
	}
	for i := range c1.Members {
		if c1.Members[i] != c2.Members[i] {
			t.Fatalf("committees diverge: %v vs %v", c1.Members, c2.Members)
		}
	}
}

func TestCommitteeMembersDistinctAndSorted(t *testing.T) {
	s := selector(t, 7, 10, uniformStakes(10))
	c := s.Committee(0)
	for i := 1; i < len(c.Members); i++ {
		if c.Members[i] <= c.Members[i-1] {
			t.Fatalf("members not strictly increasing: %v", c.Members)
		}
	}
	if c.F() != 3 {
		t.Fatalf("f = %d for 7 members, want 3", c.F())
	}
}

func TestCommitteesRotateAcrossTerms(t *testing.T) {
	s := selector(t, 4, 10, uniformStakes(50))
	same := 0
	prev := s.Committee(0)
	for term := uint64(1); term <= 20; term++ {
		cur := s.Committee(term)
		identical := true
		for i := range cur.Members {
			if cur.Members[i] != prev.Members[i] {
				identical = false
				break
			}
		}
		if identical {
			same++
		}
		prev = cur
	}
	if same > 2 {
		t.Fatalf("%d of 20 consecutive terms had identical committees", same)
	}
}

func TestStakeWeighting(t *testing.T) {
	// A whale with 100x the stake of everyone else should be selected in
	// nearly every term.
	stakes := uniformStakes(30)
	stakes = append(stakes, Stake{ID: 999, Weight: 100 * 100 * 30})
	s := selector(t, 3, 10, stakes)
	hits := 0
	for term := uint64(0); term < 50; term++ {
		if s.Committee(term).Contains(999) {
			hits++
		}
	}
	if hits < 45 {
		t.Fatalf("whale selected in %d/50 terms, want nearly all", hits)
	}
}

func TestZeroWeightNeverSelected(t *testing.T) {
	stakes := uniformStakes(10)
	stakes = append(stakes, Stake{ID: 77, Weight: 0})
	s := selector(t, 10, 10, stakes)
	for term := uint64(0); term < 10; term++ {
		if s.Committee(term).Contains(77) {
			t.Fatal("zero-stake participant selected")
		}
	}
}

func TestTermOf(t *testing.T) {
	s := selector(t, 2, 10, uniformStakes(4))
	cases := map[uint64]uint64{0: 0, 1: 0, 10: 0, 11: 1, 20: 1, 21: 2}
	for epoch, want := range cases {
		if got := s.TermOf(epoch); got != want {
			t.Fatalf("TermOf(%d) = %d, want %d", epoch, got, want)
		}
	}
	c := s.CommitteeForEpoch(11)
	if c.Term != 1 {
		t.Fatalf("epoch 11 term = %d, want 1", c.Term)
	}
}

func TestValidation(t *testing.T) {
	suite := setcrypto.FastSuite{}
	if _, err := NewSelector(suite, Params{CommitteeSize: 0}, uniformStakes(3)); err == nil {
		t.Fatal("zero committee size accepted")
	}
	if _, err := NewSelector(suite, Params{CommitteeSize: 5}, uniformStakes(3)); err != ErrCommitteeSize {
		t.Fatalf("oversized committee: %v", err)
	}
	if _, err := NewSelector(suite, Params{CommitteeSize: 1}, nil); err != ErrNoStake {
		t.Fatalf("empty stake: %v", err)
	}
	if _, err := NewSelector(suite, Params{CommitteeSize: 1},
		[]Stake{{ID: 1, Weight: 0}}); err != ErrNoStake {
		t.Fatal("zero-weight table accepted")
	}
}

func TestContains(t *testing.T) {
	c := &Committee{Members: []int{2, 5, 9}}
	for _, id := range []int{2, 5, 9} {
		if !c.Contains(id) {
			t.Fatalf("member %d not found", id)
		}
	}
	for _, id := range []int{0, 3, 10} {
		if c.Contains(id) {
			t.Fatalf("non-member %d found", id)
		}
	}
}

// Property: every committee for any term and stake distribution has exactly
// CommitteeSize distinct members, all with positive stake.
func TestQuickCommitteeWellFormed(t *testing.T) {
	f := func(weights []uint8, term uint8) bool {
		var stakes []Stake
		positive := 0
		for i, w := range weights {
			stakes = append(stakes, Stake{ID: i, Weight: uint64(w)})
			if w > 0 {
				positive++
			}
		}
		if positive < 3 {
			return true // not enough participants; skip
		}
		s, err := NewSelector(setcrypto.FastSuite{}, Params{CommitteeSize: 3, TermLength: 5}, stakes)
		if err != nil {
			return false
		}
		c := s.Committee(uint64(term))
		if len(c.Members) != 3 {
			return false
		}
		seen := map[int]bool{}
		for _, m := range c.Members {
			if seen[m] {
				return false
			}
			seen[m] = true
			found := false
			for _, st := range stakes {
				if st.ID == m && st.Weight > 0 {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
