// Package sortition sketches the paper's §2 remark that the open
// permissioned model "can also be adapted to a permissionless setting with
// committee sortition [Algorand] without significant modifications": a
// deterministic, stake-weighted committee is drawn per term (a range of
// epochs) from a verifiable seed, and that committee plays the role of the
// n known servers for the term.
//
// The selection is a simplified follow-the-satoshi over a stake table,
// seeded by hashing (previous seed, term number): every participant can
// recompute the committee and its f bound, so clients know whose
// epoch-proof signatures to require during the term. Real VRF-based
// private sortition (as in Algorand) is out of scope; what matters for
// Setchain is that the committee is deterministic, stake-weighted and
// rotates.
//
// See DESIGN.md §2 (layering).
package sortition

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/setcrypto"
)

// Stake is one participant's weight.
type Stake struct {
	ID     int
	Weight uint64
}

// Params configures committee selection.
type Params struct {
	// CommitteeSize is the number of distinct members drawn per term (the
	// Setchain's n for that term).
	CommitteeSize int
	// TermLength is how many epochs a committee serves before rotation.
	TermLength uint64
}

// Errors.
var (
	ErrNoStake       = errors.New("sortition: empty or zero-weight stake table")
	ErrCommitteeSize = errors.New("sortition: committee larger than participant set")
)

// Committee is one term's selected server set.
type Committee struct {
	Term    uint64
	Members []int // distinct participant ids, sorted
	Seed    []byte
}

// F returns the Setchain fault bound for this committee (f < n/2).
func (c *Committee) F() int { return (len(c.Members) - 1) / 2 }

// Contains reports whether a participant serves in this committee.
func (c *Committee) Contains(id int) bool {
	i := sort.SearchInts(c.Members, id)
	return i < len(c.Members) && c.Members[i] == id
}

// Selector draws committees deterministically from a stake table.
type Selector struct {
	suite  setcrypto.Suite
	params Params
	stakes []Stake
	total  uint64
}

// NewSelector validates the stake table and prepares cumulative weights.
// The stake slice is copied and sorted by id for determinism.
func NewSelector(suite setcrypto.Suite, params Params, stakes []Stake) (*Selector, error) {
	if params.CommitteeSize <= 0 {
		return nil, fmt.Errorf("sortition: committee size %d", params.CommitteeSize)
	}
	if params.TermLength == 0 {
		params.TermLength = 100
	}
	ss := append([]Stake(nil), stakes...)
	sort.Slice(ss, func(i, j int) bool { return ss[i].ID < ss[j].ID })
	var total uint64
	distinct := 0
	for _, s := range ss {
		if s.Weight > 0 {
			distinct++
		}
		total += s.Weight
	}
	if total == 0 {
		return nil, ErrNoStake
	}
	if params.CommitteeSize > distinct {
		return nil, ErrCommitteeSize
	}
	return &Selector{suite: suite, params: params, stakes: ss, total: total}, nil
}

// TermOf maps an epoch number to its committee term.
func (s *Selector) TermOf(epoch uint64) uint64 {
	if epoch == 0 {
		return 0
	}
	return (epoch - 1) / s.params.TermLength
}

// seedFor derives the term seed: Hash(genesis ‖ term), chained so future
// seeds cannot be ground without re-deriving the whole chain.
func (s *Selector) seedFor(term uint64) []byte {
	seed := s.suite.HashData([]byte("setchain-sortition-genesis"))
	for t := uint64(0); t <= term; t++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], t)
		seed = s.suite.HashData(seed, buf[:])
	}
	return seed
}

// Committee draws the committee for a term: CommitteeSize distinct members
// via stake-weighted sampling without replacement (follow-the-satoshi over
// the remaining weight).
func (s *Selector) Committee(term uint64) *Committee {
	seed := s.seedFor(term)
	remaining := append([]Stake(nil), s.stakes...)
	total := s.total
	var members []int
	for draw := 0; len(members) < s.params.CommitteeSize; draw++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(draw))
		digest := s.suite.HashData(seed, buf[:])
		ticket := binary.LittleEndian.Uint64(digest) % total
		// Walk the cumulative stake to the ticket's owner.
		var acc uint64
		for i := range remaining {
			if remaining[i].Weight == 0 {
				continue
			}
			acc += remaining[i].Weight
			if ticket < acc {
				members = append(members, remaining[i].ID)
				total -= remaining[i].Weight
				remaining[i].Weight = 0
				break
			}
		}
	}
	sort.Ints(members)
	return &Committee{Term: term, Members: members, Seed: seed}
}

// CommitteeForEpoch is a convenience wrapper.
func (s *Selector) CommitteeForEpoch(epoch uint64) *Committee {
	return s.Committee(s.TermOf(epoch))
}
