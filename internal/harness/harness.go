// Package harness runs the paper's evaluation scenarios (§4, Table 1) on
// the virtual-time simulator and extracts the measurements behind every
// table and figure: throughput-over-time curves (Fig. 1), the limit study
// (Fig. 2 left), efficiency bars (Fig. 3), latency CDFs (Fig. 4), the
// Table 2 averages and the Appendix F commit-time charts (Fig. 5).
//
// Scenarios are data: the study functions expand entries of the
// internal/spec registry into Scenario lists and fan them across the
// RunMany worker pool. See DESIGN.md §2 (layering), §6 (the parallel
// executor) and §7 (the spec/registry layer).
package harness

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/checkpoint"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/invariant"
	"repro/internal/ledger"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/setcrypto"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/wire"
	"repro/internal/workload"
)

// AlgSpec names an algorithm variant as the paper's legends do.
type AlgSpec struct {
	Alg       core.Algorithm
	Collector int // collector size c; ignored by Vanilla
	Light     bool
}

// Label renders the paper's legend label ("Hashchain c=500", "Vanilla",
// "Compresschain Light c=500").
func (a AlgSpec) Label() string {
	s := a.Alg.String()
	if a.Light {
		s += " Light"
	}
	if a.Alg != core.Vanilla {
		s += fmt.Sprintf(" c=%d", a.Collector)
	}
	return s
}

// The evaluation's standard variants.
var (
	SpecVanilla     = AlgSpec{Alg: core.Vanilla}
	SpecCompress100 = AlgSpec{Alg: core.Compresschain, Collector: 100}
	SpecCompress500 = AlgSpec{Alg: core.Compresschain, Collector: 500}
	SpecHash100     = AlgSpec{Alg: core.Hashchain, Collector: 100}
	SpecHash500     = AlgSpec{Alg: core.Hashchain, Collector: 500}
)

// AnalyticalThroughput returns the Appendix D model value for this variant
// with n servers (the dotted reference lines in Figs. 1-2).
func (a AlgSpec) AnalyticalThroughput(n int) float64 {
	p := analysis.PaperParams()
	p.N = n
	p.CollectorSize = a.Collector
	switch a.Alg {
	case core.Vanilla:
		return analysis.VanillaThroughput(p)
	case core.Compresschain:
		return analysis.CompresschainThroughput(p)
	default:
		return analysis.HashchainThroughput(p)
	}
}

// Scenario is one experiment cell: an algorithm variant under a workload
// and deployment configuration (one combination from Table 1, or any
// spec.ScenarioSpec via FromSpec). Zero values select the paper's
// defaults, so a Scenario built by hand and one decoded from a sparse
// JSON spec run identically.
type Scenario struct {
	Name         string
	Spec         AlgSpec
	Servers      int           // server_count: 4, 7, 10
	Rate         float64       // sending_rate in el/s (aggregate)
	SendFor      time.Duration // how long clients add (paper: 50 s)
	Horizon      time.Duration // total virtual time simulated
	NetworkDelay time.Duration // network_delay: 0, 30, 100 ms
	Seed         int64
	Level        metrics.Level
	// Scale multiplies Rate and SendFor and shrinks the Faults timeline
	// (and leaves ceilings untouched); used to shrink the largest runs for
	// quick regression passes. 0 = 1.
	Scale float64
	// Shards splits the element space across this many independent
	// Setchain instances — each a Servers-sized consensus group — inside
	// one shared network, with elements routed by id digest and Rate the
	// aggregate across all shards (internal/shard, DESIGN.md §10). 0 or 1
	// runs the classic single instance.
	Shards int
	// IntraWorkers runs the scenario's own event population on this many
	// concurrent workers via lookahead-bounded partitioned execution
	// (DESIGN.md §12): one partition per server node single-instance, one
	// per shard when Shards > 1. Results are byte-identical to the
	// sequential schedule — this knob may only change wall-clock time.
	// 0 or 1 runs exactly today's single-queue path; configurations the
	// partitioned executor cannot preserve bit-for-bit (LevelStages
	// metrics, Hashchain Light's shared store) silently degrade to it.
	IntraWorkers int
	// Transport selects the fan-out path for consensus and mempool
	// traffic: "" or spec.TransportBroadcast is the classic direct
	// per-validator send loop; spec.TransportMesh routes it over the
	// bounded-fanout gossip overlay (DESIGN.md §13).
	Transport string
	// Fanout is the mesh overlay's target node degree (default 8 when
	// Transport is mesh, ignored otherwise).
	Fanout int
	// Mode selects crypto fidelity: Modeled (default, the evaluation) or
	// Full (real ed25519/SHA-512/Deflate over real payloads).
	Mode core.Mode
	// Bandwidth overrides per-node egress bandwidth in bytes/second;
	// 0 keeps netsim's 1 Gbit/s LAN default.
	Bandwidth float64
	// Sizes shapes element sizes; the zero value is the paper's Arbitrum
	// distribution. Tick batches injection bookkeeping (0 = 10 ms).
	Sizes workload.SizeModel
	Tick  time.Duration
	// Open adds open-system workload dynamics — Zipf source skew, session
	// churn, rate envelopes (workload.OpenConfig, DESIGN.md §14). The
	// zero value is the closed system; time axes scale with Scale like
	// the send window does.
	Open workload.OpenConfig
	// Admission enables mempool admission control; the zero value keeps
	// admission off.
	Admission AdmissionCfg
	// Byzantine makes the highest-indexed servers faulty.
	Byzantine ByzantineCfg
	// Faults schedules deterministic network fault injection (crashes,
	// partitions, link loss) as simulator events; the zero Plan is
	// fault-free. Usually built from a spec.FaultSpec by FromSpec.
	Faults faults.Plan
	// CheckpointInterval seals a pruning checkpoint on every server each
	// time this many further epochs settle (core.Options.CheckpointInterval;
	// DESIGN.md §11). 0 disables checkpointing entirely.
	CheckpointInterval int
	// Prune drops settled history, ledger blocks and mempool tombstones
	// below each sealed checkpoint (core.Options.Prune); restarted servers
	// then recover via checkpoint state-sync instead of full replay.
	Prune bool
	// HeapCeilingMB asserts the process's live heap at the end of the run
	// stays at or under this many MiB (the soak family's bounded-memory
	// check); 0 skips the measurement. The measurement is process-wide, so
	// concurrently-running cells share one heap — soak cells are meant to
	// run alone or treat the combined figure as the (sound) upper bound.
	HeapCeilingMB int
	// SyncChunkBytes sets the chunk size of the state-sync transfer
	// protocol (consensus.Params.SyncChunkBytes); 0 keeps the 64 KiB
	// default.
	SyncChunkBytes int
}

// AdmissionCfg configures mempool admission control for a scenario: the
// mempool.AdmissionConfig knobs plus pool-cap overrides (the paper's
// 10M-tx/2GB caps are unreachable; an admission experiment picks caps
// the workload can actually saturate). The zero value keeps admission
// off. Behavior names are the spec package's (spec.AdmissionReject,
// spec.AdmissionDelay).
type AdmissionCfg struct {
	// Policy is spec.AdmissionReject or spec.AdmissionDelay ("" = off).
	Policy string
	// Watermark is the saturation threshold as a fraction of the caps
	// (0 = 0.9).
	Watermark float64
	// MaxDelay / MaxDeferred tune the delay policy's bounded queue.
	MaxDelay    time.Duration
	MaxDeferred int
	// MaxTxs / MaxBytes override the mempool caps (0 keeps the paper's).
	MaxTxs   int
	MaxBytes int
}

// ByzantineCfg configures faulty servers for a scenario. The zero value
// means all servers are correct. Behavior names are the spec package's
// (spec.BehaviorSilent etc.); server 0, the metrics observer, is never
// made faulty.
type ByzantineCfg struct {
	// Faulty is how many of the highest-indexed servers misbehave.
	Faulty int
	// Behaviors lists the preset fault behaviors every faulty server runs.
	Behaviors []string
	// InjectCount is the bogus-element count for "inject-invalid".
	InjectCount int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Servers == 0 {
		sc.Servers = 10
	}
	if sc.SendFor == 0 {
		sc.SendFor = 50 * time.Second
	}
	if sc.Horizon == 0 {
		sc.Horizon = sc.SendFor + 100*time.Second
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Scale == 0 {
		sc.Scale = 1
	}
	sc.Rate *= sc.Scale
	sc.SendFor = time.Duration(float64(sc.SendFor) * sc.Scale)
	if sc.Transport == spec.TransportMesh && sc.Fanout == 0 {
		sc.Fanout = 8
	}
	if sc.Name == "" {
		sc.Name = fmt.Sprintf("%s n=%d rate=%.0f delay=%v",
			sc.Spec.Label(), sc.Servers, sc.Rate, sc.NetworkDelay)
		if sc.Shards > 1 {
			sc.Name += fmt.Sprintf(" shards=%d", sc.Shards)
		}
		if sc.Transport == spec.TransportMesh {
			sc.Name += fmt.Sprintf(" mesh f=%d", sc.Fanout)
		}
	}
	return sc
}

// Result holds a completed scenario's measurements.
type Result struct {
	Scenario  Scenario
	Injected  uint64
	Committed uint64
	// Efficiency at the paper's three checkpoints (relative to SendFor:
	// the checkpoints scale with a scaled send window).
	Eff50, Eff75, Eff100 float64
	// AvgTput is Table 2's metric: committed/second up to end-of-sending.
	AvgTput float64
	// Series is the committed-rate rolling average (9 s window).
	Series []metrics.SeriesPoint
	// CommitFrac maps percent (0 = first element, 10..50) to the time that
	// fraction of all added elements had committed; missing = never.
	CommitFrac map[int]time.Duration
	// Analytical is the Appendix D model value for the variant.
	Analytical float64
	// Recorder allows stage-latency queries when Level = LevelStages.
	Recorder *metrics.Recorder
	// Blocks is the ledger height reached (base + retained blocks, so
	// checkpoint pruning does not shrink it); Events the simulator events.
	Blocks int
	Events uint64
	// Invariant is the end-of-run safety verdict: nil when every Setchain
	// safety invariant held across the correct servers (internal/invariant;
	// checked on every scenario, faulted or not). For sharded scenarios it
	// joins every shard's per-shard check with the cross-shard check
	// (router completeness, no cross-shard duplication or fabrication,
	// superepoch integrity). A non-nil value is a safety violation — a bug
	// in the system under test or the checker — and also increments the
	// package-wide InvariantViolations counter.
	Invariant error
	// PerShard holds per-shard summaries when the scenario ran sharded
	// (Shards > 1); nil otherwise.
	PerShard []shard.Stats
	// SuperDigests is the sharded run's cross-shard superepoch digest
	// sequence (internal/shard.View.Digests): the compact fingerprint
	// "same seed ⇒ same superepoch sequence" pins. Nil for single-instance
	// runs.
	SuperDigests []uint64
	// CheckpointSeals counts pruning checkpoints the observer(s) sealed
	// (summed across shards in a sharded run); 0 when checkpointing is off.
	CheckpointSeals uint64
	// SyncInstalls counts checkpoint state-sync installs across every
	// server of the deployment: each is a restarted or lagging node that
	// recovered from a peer's checkpoint snapshot instead of replaying the
	// full chain.
	SyncInstalls uint64
	// SyncRejected counts state-sync offers consensus rejected for failing
	// certified-header verification — a nonzero value means a peer served
	// a snapshot that did not fold to a 2f+1-certified header commitment
	// (e.g. the forge-snapshot Byzantine preset). Deterministic, so part
	// of the run fingerprint.
	SyncRejected uint64
	// CkptDigest folds every server's sealed checkpoint chain
	// (checkpoint.FoldChain, observer first, ascending node id) into one
	// word: the compact cross-server witness that all chains agree. 0 when
	// checkpointing is off.
	CkptDigest uint64
	// HeapLiveMB is the process's live heap in MiB after a forced GC at
	// the end of the run (deployment still reachable), measured only when
	// the scenario sets HeapCeilingMB; -1 otherwise. HeapViolation is true
	// when it exceeded the ceiling (also counted process-wide by
	// HeapViolations).
	HeapLiveMB    float64
	HeapViolation bool
	// NetMsgs/NetBytes are the fabric's total sent messages and bytes
	// (summed across shards' shared network in a sharded run). Fully
	// deterministic, so part of the run fingerprint; NetMsgs/Committed is
	// the msgs_per_commit metric the mesh transport is gated on.
	NetMsgs  uint64
	NetBytes uint64
	// Gossip aggregates the mesh overlay's counters (zero value on the
	// broadcast transport).
	Gossip netsim.MeshStats
	// Open-system measurements (DESIGN.md §14), identical on both
	// executor paths: Offered counts every add attempted (accepted +
	// rejected), Rejected the adds admission control (or validation)
	// refused, Fairness is Jain's index over per-client acceptance
	// ratios (1.0 when nothing was refused or all clients are served
	// equally). DeferredTxs/ExpiredTxs sum the delay policy's deferred
	// queue traffic across every node's mempool.
	Offered     uint64
	Rejected    uint64
	Fairness    float64
	DeferredTxs uint64
	ExpiredTxs  uint64
}

// deployConfig derives the server options and ledger config a defaulted
// scenario prescribes — the one definition both the single-instance and
// the sharded executor paths build their deployments from, so a
// scale_tput entry's S=1 and S=4 cells cannot silently run different
// configurations.
func deployConfig(sc Scenario) (core.Options, ledger.Config) {
	netCfg := netsim.DefaultLANConfig()
	netCfg.ExtraDelay = sc.NetworkDelay
	if sc.Bandwidth > 0 {
		netCfg.Bandwidth = sc.Bandwidth
	}
	opts := core.Options{
		Algorithm:          sc.Spec.Alg,
		Mode:               sc.Mode,
		Light:              sc.Spec.Light,
		CollectorLimit:     sc.Spec.Collector,
		Costs:              core.PaperCostModel(),
		F:                  (sc.Servers - 1) / 2,
		CheckpointInterval: sc.CheckpointInterval,
		Prune:              sc.Prune,
	}
	lcfg := ledger.Config{
		Net:       netCfg,
		Consensus: consensus.PaperParams(),
		Mempool:   mempool.PaperConfig(),
		Transport: sc.Transport,
		Fanout:    sc.Fanout,
	}
	if sc.SyncChunkBytes > 0 {
		lcfg.Consensus.SyncChunkBytes = sc.SyncChunkBytes
	}
	if sc.Admission.Policy != "" {
		lcfg.Mempool.Admission = mempool.AdmissionConfig{
			Policy:      sc.Admission.Policy,
			Watermark:   sc.Admission.Watermark,
			MaxDelay:    sc.Admission.MaxDelay,
			MaxDeferred: sc.Admission.MaxDeferred,
		}
		if sc.Admission.MaxTxs > 0 {
			lcfg.Mempool.MaxTxs = sc.Admission.MaxTxs
		}
		if sc.Admission.MaxBytes > 0 {
			lcfg.Mempool.MaxBytes = sc.Admission.MaxBytes
		}
	}
	if sc.Mode == core.Full {
		lcfg.Suite = setcrypto.Ed25519Suite{}
	}
	return opts, lcfg
}

// Run executes one scenario to its horizon and gathers measurements.
func Run(sc Scenario) *Result {
	// Large scenarios allocate multi-GB transient state (per-server
	// the_set over millions of elements); reclaim the previous run's
	// before building the next deployment. RunMany's workers skip the
	// forced collection (it is global and would serialize them) and call
	// runScenario directly.
	runtime.GC()
	return runScenario(sc)
}

// runScenario is the side-effect-free core of Run: it builds a fresh
// simulator and deployment from the scenario alone, so concurrent calls
// never share state and a scenario's result is a pure function of its
// configuration (see RunMany).
func runScenario(sc Scenario) *Result {
	sc = sc.withDefaults()
	if sc.Shards > 1 {
		return runShardedScenario(sc)
	}
	n := sc.Servers
	opts, lcfg := deployConfig(sc)

	// Partitioned execution (IntraWorkers > 1): every server node owns its
	// own event queue, advanced concurrently in lookahead-bounded rounds;
	// client injection, fault plans and the drain run on the home queue at
	// round barriers. Byte-identical to the sequential path (DESIGN.md §12).
	var world *sim.World
	var s *sim.Simulator
	if iw := effectiveIntraWorkers(sc, opts); iw > 1 {
		world, lcfg.SimFor = newIntraWorld(sc.Seed, n, iw, func(id wire.NodeID) int { return int(id) })
		s = world.Home()
	} else {
		s = sim.New(sc.Seed)
	}
	var engine runner = s
	recSim := s
	if world != nil {
		engine = world
		recSim = world.Part(0) // the observer's partition clock
	}

	rec := metrics.New(recSim, sc.Level, n, opts.F, 0)
	d := core.Deploy(s, n, lcfg, opts, rec)
	applyByzantine(d, sc.Byzantine)
	sc.Faults.Scaled(sc.Scale).Install(s, d.Ledger.Net)
	if world != nil {
		world.SetLookahead(d.Ledger.Net.Lookahead)
	}

	gen := workload.New(d, rec, workload.Config{
		Rate:         sc.Rate,
		Duration:     sc.SendFor,
		Sizes:        sc.Sizes,
		Tick:         sc.Tick,
		FullPayloads: sc.Mode == core.Full,
		TrackIDs:     true, // the invariant checker compares against these
		Open:         sc.Open.Scaled(sc.Scale),
		Seed:         sc.Seed,
	})
	d.Start()
	gen.Start()
	engine.RunUntil(sc.Horizon)
	d.Stop()

	res := &Result{
		Scenario:   sc,
		Injected:   rec.TotalInjected(),
		Committed:  rec.TotalCommitted(),
		Eff50:      rec.Efficiency(sc.SendFor),
		Eff75:      rec.Efficiency(sc.SendFor * 3 / 2),
		Eff100:     rec.Efficiency(sc.SendFor * 2),
		AvgTput:    rec.AvgThroughputUpTo(sc.SendFor),
		Series:     rec.ThroughputSeries(9 * time.Second),
		CommitFrac: make(map[int]time.Duration),
		Analytical: sc.Spec.AnalyticalThroughput(n),
		Blocks:     int(d.Ledger.Nodes[0].Cons.HeightCommitted()),
		Events:     engine.Executed(),
		Recorder:   rec,
	}
	fracs := map[int]float64{0: 0, 10: 0.10, 20: 0.20, 30: 0.30, 40: 0.40, 50: 0.50}
	for pct, frac := range fracs {
		if t, ok := rec.CommitTimeAtFraction(frac); ok {
			res.CommitFrac[pct] = t
		}
	}
	res.CheckpointSeals = rec.CheckpointSeals()
	ckd := checkpoint.Seed()
	for _, srv := range d.Servers {
		res.SyncInstalls += srv.SyncInstalls()
		ckd = checkpoint.Mix64(ckd, checkpoint.FoldChain(srv.Checkpoints()))
	}
	if sc.CheckpointInterval > 0 {
		res.CkptDigest = ckd
	}
	for _, node := range d.Ledger.Nodes {
		res.SyncRejected += node.Cons.SyncRejects()
	}
	res.NetMsgs = d.Ledger.Net.Messages()
	res.NetBytes = d.Ledger.Net.BytesSent()
	if d.Ledger.Mesh != nil {
		res.Gossip = d.Ledger.Mesh.Stats()
	}
	res.Offered = gen.Offered()
	res.Rejected = gen.Rejected()
	res.Fairness = gen.Fairness()
	for _, node := range d.Ledger.Nodes {
		_, deferred, expired := node.Pool.AdmissionStats()
		res.DeferredTxs += deferred
		res.ExpiredTxs += expired
	}
	// Safety invariants are checked on EVERY scenario — chaos or not — so
	// any run of any study doubles as a machine-checked safety argument.
	res.Invariant = invariant.Check(d, invariant.Config{
		Correct:         correctServerIDs(sc.Servers, sc.Byzantine),
		Injected:        gen.InjectedIDs(),
		Rejected:        gen.RejectedIDs(),
		CommittedEpochs: rec.CommittedEpochSizes(),
		Observer:        0,
		FoldedEpochs:    rec.FoldedEpochs(),
		FoldedCommitted: rec.FoldedCommitted(),
	})
	if res.Invariant != nil {
		invariantViolations.Add(1)
	}
	measureHeap(res, d)
	return res
}

// measureHeap enforces a scenario's heap ceiling: a forced GC followed by
// ReadMemStats measures the live heap with the deployment pinned live (a
// KeepAlive — liveness analysis would otherwise let the GC collect it
// mid-measurement), so what is counted includes exactly the state the run
// retains — the soak family's bounded-memory assertion. Skipped
// (HeapLiveMB = -1) unless the scenario sets HeapCeilingMB.
func measureHeap(res *Result, deployment any) {
	res.HeapLiveMB = -1
	if res.Scenario.HeapCeilingMB <= 0 {
		return
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(deployment)
	res.HeapLiveMB = float64(ms.HeapAlloc) / (1 << 20)
	if res.HeapLiveMB > float64(res.Scenario.HeapCeilingMB) {
		res.HeapViolation = true
		heapViolations.Add(1)
	}
}

// heapViolations counts scenarios whose live heap exceeded their declared
// ceiling, process-wide, mirroring invariantViolations so batch drivers
// fail loudly on unbounded-memory regressions.
var heapViolations atomic.Uint64

// HeapViolations reports how many scenarios exceeded their heap ceiling
// since process start.
func HeapViolations() uint64 { return heapViolations.Load() }

// invariantViolations counts scenarios whose end-of-run invariant check
// failed, process-wide, so batch drivers (setchain-bench) can fail loudly
// even when a study's renderer ignores individual Results.
var invariantViolations atomic.Uint64

// InvariantViolations reports how many scenarios failed the end-of-run
// safety check since process start.
func InvariantViolations() uint64 { return invariantViolations.Load() }

// correctServerIDs lists the servers applyByzantine left correct: all of
// them, minus the Faulty highest-indexed ones (server 0, the metrics
// observer, is never made faulty). Plan-scheduled crashes do NOT remove a
// server from this list — a crashed-but-honest server's history must still
// be a consistent prefix.
func correctServerIDs(n int, cfg ByzantineCfg) []wire.NodeID {
	firstFaulty := n
	if cfg.Faulty > 0 && len(cfg.Behaviors) > 0 {
		firstFaulty = n - cfg.Faulty
		if firstFaulty < 1 {
			firstFaulty = 1 // mirror applyByzantine: server 0 stays correct
		}
	}
	ids := make([]wire.NodeID, 0, firstFaulty)
	for i := 0; i < firstFaulty; i++ {
		ids = append(ids, wire.NodeID(i))
	}
	return ids
}

// ParameterGrid reproduces Table 1: the evaluation's parameter space.
type ParameterGrid struct {
	SendingRates  []float64
	Collectors    []int
	ServerCounts  []int
	NetworkDelays []time.Duration
}

// PaperGrid returns Table 1's values.
func PaperGrid() ParameterGrid {
	return ParameterGrid{
		SendingRates:  []float64{10000, 5000, 1000, 500},
		Collectors:    []int{100, 500},
		ServerCounts:  []int{4, 7, 10},
		NetworkDelays: []time.Duration{0, 30 * time.Millisecond, 100 * time.Millisecond},
	}
}
