package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// ckptRecoveryScenario is the recovery-equivalence cell: pruning
// checkpoints every 4 epochs while node 3 is crashed long enough that its
// peers seal and prune past its gap — on restart the missing blocks are
// unservable and the node must recover via checkpoint state-sync.
func ckptRecoveryScenario(seed int64) Scenario {
	return Scenario{
		Name: fmt.Sprintf("ckpt-recovery seed=%d", seed),
		Spec: SpecHash100, Servers: 4, Rate: 400,
		SendFor: 20 * time.Second, Horizon: 60 * time.Second,
		Seed:               seed,
		CheckpointInterval: 4,
		Prune:              true,
		Faults: FaultPlanFromSpec(&spec.FaultSpec{Events: []spec.FaultEventSpec{
			{At: spec.Duration(3 * time.Second), Action: spec.FaultCrash, Nodes: []int{3}},
			{At: spec.Duration(13 * time.Second), Action: spec.FaultRestart, Nodes: []int{3}},
		}}),
	}
}

// Crash + restart + checkpoint state-sync is deterministic: across seeds,
// sequentially and on any worker count, the run is byte-identical — and
// non-vacuous: every seed must actually exercise a state-sync install
// (the crashed node's gap was pruned everywhere) under active pruning.
func TestCheckpointRecoveryDeterminism(t *testing.T) {
	seeds := []int64{1, 2, 3}
	scs := make([]Scenario, len(seeds))
	for i, seed := range seeds {
		scs[i] = ckptRecoveryScenario(seed)
	}
	sequential := make([][]byte, len(scs))
	for i, sc := range scs {
		res := Run(sc)
		if res.Invariant != nil {
			t.Fatalf("seed %d violates safety invariants: %v", sc.Seed, res.Invariant)
		}
		if res.Committed == 0 {
			t.Fatalf("seed %d committed nothing", sc.Seed)
		}
		if res.CheckpointSeals == 0 {
			t.Fatalf("seed %d sealed no checkpoints — pruning never ran", sc.Seed)
		}
		if res.SyncInstalls == 0 {
			t.Fatalf("seed %d: restarted node recovered without state-sync — "+
				"the recovery path was not exercised", sc.Seed)
		}
		sequential[i] = resultFingerprint(t, res)
	}
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		parallel := RunMany(scs)
		SetWorkers(0)
		for i, res := range parallel {
			if got := resultFingerprint(t, res); string(got) != string(sequential[i]) {
				t.Fatalf("workers=%d: seed %d diverges from sequential run\nseq: %s\npar: %s",
					workers, scs[i].Seed, sequential[i], got)
			}
		}
	}
}

// The recovery-equivalence claim, stated on raw server state: after a
// crash, a restart and a checkpoint state-sync, the recovered node's
// Setchain state is identical to a peer that never crashed — same epoch
// history (hash for hash over the retained overlap), same checkpoint
// chain content, same replicated set. The harness-level invariant check
// asserts this too; this test pins it directly against the deployment so
// a checker regression cannot mask a recovery bug.
func TestRecoveredNodeMatchesNeverCrashedPeer(t *testing.T) {
	sc := ckptRecoveryScenario(7).withDefaults()
	s := sim.New(sc.Seed)
	opts, lcfg := deployConfig(sc)
	rec := metrics.New(s, sc.Level, sc.Servers, opts.F, 0)
	d := core.Deploy(s, sc.Servers, lcfg, opts, rec)
	sc.Faults.Install(s, d.Ledger.Net)
	gen := workload.New(d, rec, workload.Config{
		Rate: sc.Rate, Duration: sc.SendFor, TrackIDs: true,
	})
	d.Start()
	gen.Start()
	s.RunUntil(sc.Horizon)
	d.Stop()

	crashed, peer := d.Servers[3], d.Servers[0]
	if crashed.SyncInstalls() == 0 {
		t.Fatal("node 3 never state-synced; the scenario does not exercise recovery")
	}
	if peer.SyncInstalls() != 0 {
		t.Fatal("never-crashed peer state-synced; comparison baseline is not clean")
	}

	cs, ps := crashed.Get(), peer.Get()
	if got, want := cs.PrunedEpochs+uint64(len(cs.History)), ps.PrunedEpochs+uint64(len(ps.History)); got != want {
		t.Fatalf("recovered node reached epoch %d, peer %d", got, want)
	}
	// Epoch-by-epoch equality over the retained overlap, aligned by
	// absolute number.
	lo, hi := max(cs.PrunedEpochs, ps.PrunedEpochs), cs.PrunedEpochs+uint64(len(cs.History))
	for num := lo + 1; num <= hi; num++ {
		ce := cs.History[num-1-cs.PrunedEpochs]
		pe := ps.History[num-1-ps.PrunedEpochs]
		if string(ce.Hash) != string(pe.Hash) {
			t.Fatalf("epoch %d hash differs between recovered node and peer", num)
		}
	}
	// Checkpoint chains: same length, same content (seal heights may
	// legitimately differ — checkpoint.Same ignores them).
	ccks, pcks := cs.Checkpoints, ps.Checkpoints
	if len(ccks) != len(pcks) {
		t.Fatalf("recovered node sealed %d checkpoints, peer %d", len(ccks), len(pcks))
	}
	for i := range ccks {
		if !ccks[i].Same(pcks[i]) {
			t.Fatalf("checkpoint %d content diverges: %+v vs %+v", i+1, ccks[i], pcks[i])
		}
	}
	// The replicated set: identical membership.
	if len(cs.TheSet) != len(ps.TheSet) {
		t.Fatalf("set sizes differ: recovered %d, peer %d", len(cs.TheSet), len(ps.TheSet))
	}
	for id := range ps.TheSet {
		if _, ok := cs.TheSet[id]; !ok {
			t.Fatalf("element %x missing from recovered node's set", id[:4])
		}
	}
	// Bounded memory under pruning: tombstones were actually dropped and
	// the retained tombstone count is a small fraction of everything ever
	// committed (without pruning every committed tx key lingers forever).
	for i, node := range d.Ledger.Nodes {
		pool := node.Pool
		if pool.TombstonesPruned() == 0 {
			t.Fatalf("node %d pruned no mempool tombstones", i)
		}
		if kept, pruned := pool.TombstonedKeys(), pool.TombstonesPruned(); uint64(kept) > pruned {
			t.Fatalf("node %d keeps %d tombstones but pruned only %d — retention is not bounded",
				i, kept, pruned)
		}
	}
}

// With no faults, pruning is purely an internal memory optimization: a
// run with Prune on must produce identical measurements — every
// throughput/efficiency/latency figure, the ledger height metric, the
// seal count — as the same run retaining full history. (Checkpoint
// sealing itself stays enabled in both so the seal CPU charges line up;
// only the retention policy differs.) The simulator's raw event count is
// the one place the runs may legitimately part: a pruned server drops
// stale proofs at or below its horizon BEFORE charging signature
// verification, so a pruned run can schedule fewer CPU events (never
// more) when proofs straggle in after their epoch's seal.
func TestPruneIsObservationallyIdentical(t *testing.T) {
	base := Scenario{
		Name: "prune-equiv", Spec: SpecHash100, Servers: 4, Rate: 400,
		SendFor: 10 * time.Second, Horizon: 30 * time.Second, Seed: 5,
		CheckpointInterval: 4,
	}
	keep := Run(base)
	pruned := base
	pruned.Prune = true
	prunedRes := Run(pruned)

	if keep.Invariant != nil || prunedRes.Invariant != nil {
		t.Fatalf("invariants violated: keep=%v pruned=%v", keep.Invariant, prunedRes.Invariant)
	}
	if keep.CheckpointSeals == 0 || keep.CheckpointSeals != prunedRes.CheckpointSeals {
		t.Fatalf("seal counts differ: keep=%d pruned=%d", keep.CheckpointSeals, prunedRes.CheckpointSeals)
	}
	if prunedRes.Events > keep.Events {
		t.Fatalf("pruning ADDED simulator work: %d events vs %d retained",
			prunedRes.Events, keep.Events)
	}
	// Blank out the permitted differences before fingerprinting: the Prune
	// flag itself and the event-count saving explained above.
	prunedRes.Scenario.Prune = false
	prunedRes.Events = keep.Events
	if a, b := resultFingerprint(t, keep), resultFingerprint(t, prunedRes); string(a) != string(b) {
		t.Fatalf("pruning changed observable results\nkeep:   %s\npruned: %s", a, b)
	}
}

// The soak_* registry family runs end to end (smoke at full scale, the
// long cells reduced), commits, seals checkpoints, recovers where its
// fault plan crashes nodes, and holds every invariant with the heap under
// the declared ceiling.
func TestSoakRegistryEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("soak entries simulate long horizons; skipped under -short")
	}
	cases := []struct {
		entry string
		scale float64
	}{
		{"soak_smoke", 1},
		{"soak_steady", 0.1},
		{"soak_chaos", 0.1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.entry, func(t *testing.T) {
			scs, err := EntryScenarios(tc.entry, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range RunMany(scs) {
				if res.Invariant != nil {
					t.Fatalf("%s violates safety invariants: %v", tc.entry, res.Invariant)
				}
				if res.Committed == 0 {
					t.Fatalf("%s committed nothing", tc.entry)
				}
				if res.CheckpointSeals == 0 {
					t.Fatalf("%s sealed no checkpoints", tc.entry)
				}
				if res.HeapLiveMB < 0 {
					t.Fatalf("%s skipped the heap measurement despite a ceiling", tc.entry)
				}
				if res.HeapViolation {
					t.Fatalf("%s live heap %.0f MiB exceeds its %d MiB ceiling",
						tc.entry, res.HeapLiveMB, res.Scenario.HeapCeilingMB)
				}
				if tc.entry == "soak_smoke" && res.SyncInstalls == 0 {
					t.Fatal("soak_smoke: crashed node recovered without state-sync")
				}
			}
		})
	}
}
