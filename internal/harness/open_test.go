package harness

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/mempool"
	"repro/internal/workload"
)

// The open-system battery (DESIGN.md §14). The registry's open_* cells run
// below the saturation knee at the reduced CI scale (their knee lives at
// paper scale, pinned by RESULTS.md refs), so the rejection-path tests
// here build their own saturating scenarios: full rate, short window,
// tight pool cap — CI-sized but decisively past the watermark.

// saturatingScenario offers ~3.2x the Compresschain c=100 ceiling against
// a 400-tx pool, so the admission gate MUST reject a large fraction.
func saturatingScenario() Scenario {
	return Scenario{
		Name: "open-saturate", Spec: SpecCompress100, Servers: 4,
		Rate: 8000, SendFor: 10 * time.Second, Horizon: 40 * time.Second,
		Admission: AdmissionCfg{Policy: mempool.AdmissionReject, MaxTxs: 400},
	}
}

func TestAdmissionRejectsUnderSaturation(t *testing.T) {
	res := Run(saturatingScenario())
	if res.Rejected == 0 {
		t.Fatal("saturating run rejected nothing — the admission gate never closed")
	}
	if res.Offered != res.Injected+res.Rejected {
		t.Fatalf("offered %d != injected %d + rejected %d",
			res.Offered, res.Injected, res.Rejected)
	}
	if res.Invariant != nil {
		t.Fatalf("safety violated under admission control: %v", res.Invariant)
	}
	if res.Committed != res.Injected {
		t.Fatalf("committed %d of %d admitted — admitted elements may not be lost",
			res.Committed, res.Injected)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Fatalf("fairness = %g outside (0, 1]", res.Fairness)
	}
}

// TestBreakAdmissionForTest proves the rejection assertions non-vacuous:
// with the gate sabotaged the same scenario must reject NOTHING and
// produce a different fingerprint — so a silently broken gate cannot pass
// TestAdmissionRejectsUnderSaturation, and a fingerprint comparison
// would notice the behavioral change.
func TestBreakAdmissionForTest(t *testing.T) {
	intact := Run(saturatingScenario())
	mempool.BreakAdmissionForTest = true
	broken := Run(saturatingScenario())
	mempool.BreakAdmissionForTest = false
	if intact.Rejected == 0 {
		t.Fatal("intact gate rejected nothing")
	}
	if broken.Rejected != 0 {
		t.Fatalf("sabotaged gate still rejected %d elements", broken.Rejected)
	}
	if bytes.Equal(Fingerprint(intact), Fingerprint(broken)) {
		t.Fatal("sabotaged run fingerprints identical to the intact run")
	}
}

// TestShardedAdmissionRejects pins the satellite fix: admission rejections
// route through the shared Account on the SHARDED executor path too, so
// Generator.Rejected() counts on both paths.
func TestShardedAdmissionRejects(t *testing.T) {
	sc := saturatingScenario()
	sc.Name = "open-saturate-sharded"
	sc.Shards = 2
	sc.Rate = 16000 // keep each shard's 8,000 el/s share past its knee
	res := Run(sc)
	if res.Rejected == 0 {
		t.Fatal("sharded saturating run rejected nothing — the sharded path drops rejections")
	}
	if res.Offered != res.Injected+res.Rejected {
		t.Fatalf("offered %d != injected %d + rejected %d",
			res.Offered, res.Injected, res.Rejected)
	}
	if res.Invariant != nil {
		t.Fatalf("safety violated: %v", res.Invariant)
	}
}

// TestDelayPolicyDefersInRun drives the delay policy end to end: a burst
// against a tight pool parks transactions in the deferred queue, commits
// drain them, and everything still commits by the horizon.
func TestDelayPolicyDefersInRun(t *testing.T) {
	res := Run(Scenario{
		Name: "open-delay", Spec: SpecHash100, Servers: 4,
		Rate: 3000, SendFor: 10 * time.Second, Horizon: 40 * time.Second,
		Admission: AdmissionCfg{Policy: mempool.AdmissionDelay, MaxTxs: 12},
	})
	if res.DeferredTxs == 0 {
		t.Fatal("no transactions deferred — the delay policy never engaged")
	}
	if res.Invariant != nil {
		t.Fatalf("safety violated under the delay policy: %v", res.Invariant)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

// TestOpenScenarioDeterminism pins the tentpole's determinism claim: an
// open-system run — churn timers, zipf draws, envelope phases, admission
// rejections — is a pure function of the Scenario, fingerprint-identical
// across fresh runs.
func TestOpenScenarioDeterminism(t *testing.T) {
	sc := saturatingScenario()
	// Churn and the half-rate opening phase thin the offered load, so a
	// tighter cap keeps the burst phase decisively past the watermark.
	sc.Admission.MaxTxs = 100
	sc.Open = workload.OpenConfig{
		Zipf:    1.1,
		ChurnOn: 3 * time.Second, ChurnOff: 2 * time.Second,
		Envelope: []workload.RatePhase{
			{From: 0, Mult: 0.5}, {From: 5 * time.Second, Mult: 2},
		},
	}
	a, b := Run(sc), Run(sc)
	if a.Offered == 0 || a.Rejected == 0 {
		t.Fatalf("open run offered %d / rejected %d — dynamics not engaged", a.Offered, a.Rejected)
	}
	if !bytes.Equal(Fingerprint(a), Fingerprint(b)) {
		t.Fatal("two fresh open-system runs differ")
	}
}

// The open_* registry entries run end to end at the reduced scale with
// safety holding and everything the gate admitted committing.
func TestOpenRegistryEntries(t *testing.T) {
	for _, entry := range []string{"open_ramp", "open_skew", "open_churn"} {
		for _, res := range RunMany(mustEntryScenarios(entry, 0.1)) {
			if res.Invariant != nil {
				t.Errorf("%s %s: safety violated: %v", entry, res.Scenario.Name, res.Invariant)
			}
			if res.Committed == 0 {
				t.Errorf("%s %s: committed nothing", entry, res.Scenario.Name)
			}
			if res.Offered != res.Injected+res.Rejected {
				t.Errorf("%s %s: offered %d != injected %d + rejected %d",
					entry, res.Scenario.Name, res.Offered, res.Injected, res.Rejected)
			}
		}
	}
}
