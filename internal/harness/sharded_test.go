package harness

import (
	"testing"

	"repro/internal/spec"
)

// shardedFingerprint delegates to the production Fingerprint, which covers
// the sharded fields (per-shard summaries, superepoch digests) as well.
func shardedFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	return Fingerprint(res)
}

// scaleCells expands the scale_* registry families at a reduced scale.
func scaleCells(t *testing.T, scale float64) []Scenario {
	t.Helper()
	var scs []Scenario
	// mesh_shards rides along: per-shard gossip overlays must be exactly
	// as deterministic as the classic transport under fresh reruns and
	// worker-pool widths.
	// open_skew rides along too: the zipf stream's draws must land
	// identically however the executor schedules the shards.
	for _, entry := range []string{"scale_tput", "scale_chaos", "mesh_shards", "open_skew"} {
		cells, err := EntryScenarios(entry, scale)
		if err != nil {
			t.Fatal(err)
		}
		scs = append(scs, cells...)
	}
	return scs
}

// Same seed ⇒ same superepoch sequence: a sharded cell's metrics AND its
// cross-shard superepoch digests must be byte-identical across two fresh
// sequential runs and across worker counts 1 and 4 — the sharded
// extension of TestFaultScenarioDeterminism. All shards share one
// simulator, so the guarantee is exactly the single-instance one: a
// result is a pure function of the Scenario.
func TestShardedScenarioDeterminism(t *testing.T) {
	scs := scaleCells(t, 0.1)
	first := make([][]byte, len(scs))
	for i, sc := range scs {
		res := Run(sc)
		if res.Invariant != nil {
			t.Fatalf("cell %d (%s) violates safety invariants: %v", i, sc.Name, res.Invariant)
		}
		if res.Committed == 0 {
			t.Fatalf("cell %d (%s) committed nothing", i, sc.Name)
		}
		if sc.Shards > 1 {
			if len(res.SuperDigests) == 0 {
				t.Fatalf("cell %d (%s) has no superepoch sequence", i, sc.Name)
			}
			if len(res.PerShard) != sc.Shards {
				t.Fatalf("cell %d (%s) has %d per-shard summaries, want %d",
					i, sc.Name, len(res.PerShard), sc.Shards)
			}
		}
		first[i] = shardedFingerprint(t, res)
	}
	// A second fresh sequential pass must reproduce every byte.
	for i, sc := range scs {
		if got := shardedFingerprint(t, Run(sc)); string(got) != string(first[i]) {
			t.Fatalf("fresh rerun of cell %d (%s) diverges\nfirst: %s\nagain: %s",
				i, sc.Name, first[i], got)
		}
	}
	// And so must the worker pool at any width.
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		parallel := RunMany(scs)
		SetWorkers(0)
		for i, res := range parallel {
			if got := shardedFingerprint(t, res); string(got) != string(first[i]) {
				t.Fatalf("workers=%d: cell %d (%s) diverges from sequential run",
					workers, i, scs[i].Name)
			}
		}
	}
}

// The scale_* registry entries run end to end at reduced scale, commit on
// every shard, and hold both the per-shard and the cross-shard
// invariants.
func TestScaleRegistryEntries(t *testing.T) {
	for _, res := range RunMany(scaleCells(t, 0.1)) {
		if res.Invariant != nil {
			t.Errorf("%s: safety violated: %v", res.Scenario.Name, res.Invariant)
		}
		if res.Committed == 0 {
			t.Errorf("%s: committed nothing", res.Scenario.Name)
		}
		var sum uint64
		for _, st := range res.PerShard {
			if st.Committed == 0 {
				t.Errorf("%s: shard %d committed nothing", res.Scenario.Name, st.Shard)
			}
			sum += st.Injected
		}
		if res.Scenario.Shards > 1 && sum != res.Injected {
			t.Errorf("%s: per-shard injections sum to %d, total %d",
				res.Scenario.Name, sum, res.Injected)
		}
	}
}

// The acceptance headline at paper scale: the scale_tput cell at S=4 must
// sustain at least 2.5x the S=1 committed-elements/s — the whole point of
// sharding an overloaded instance. The scaling effect only exists at
// scale 1 (reduced-scale rates fall below the per-shard ceiling, so
// nothing saturates), so this test runs the two full cells even under
// -short: ~2.5 s is the price of CI actually enforcing the claim instead
// of only rendering it.
func TestShardedThroughputScaling(t *testing.T) {
	cells, err := EntryScenarios("scale_tput", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cells are S=1/2/4/8 in order; run the first and third.
	s1, s4 := Run(cells[0]), Run(cells[2])
	if s1.Invariant != nil || s4.Invariant != nil {
		t.Fatalf("safety violated: S=1 %v, S=4 %v", s1.Invariant, s4.Invariant)
	}
	if s4.AvgTput < 2.5*s1.AvgTput {
		t.Fatalf("S=4 avg throughput %.0f el/s is below 2.5x the S=1 %.0f el/s",
			s4.AvgTput, s1.AvgTput)
	}
}

// Byzantine configs compose with sharding: the highest-indexed servers of
// every shard misbehave, every shard's observer stays correct, and both
// safety checkers still pass non-vacuously.
func TestShardedByzantine(t *testing.T) {
	sp := spec.ScenarioSpec{
		Algorithm: spec.AlgHashchain, Collector: 100,
		Servers: 4, Shards: 2, Rate: 800,
		SendFor: spec.Duration(6e9), Horizon: spec.Duration(30e9),
		Byzantine: &spec.ByzantineSpec{Faulty: 1, Behaviors: []string{spec.BehaviorCorruptProofs}},
	}
	sc, err := FromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(sc)
	if res.Invariant != nil {
		t.Fatalf("sharded Byzantine run violates safety: %v", res.Invariant)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed — the check is vacuous")
	}
}
