package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Fig1Panel describes one panel of Fig. 1 (throughput over time).
type Fig1Panel struct {
	Name      string
	Rate      float64
	Collector int
	Specs     []AlgSpec
	Horizon   time.Duration
}

// Fig1Panels returns the three panels of Fig. 1: (left) 5,000 el/s with
// c=100 and all three algorithms; (center) 10,000 el/s with c=100,
// Compresschain vs Hashchain; (right) 10,000 el/s with c=500.
func Fig1Panels() []Fig1Panel {
	return []Fig1Panel{
		{
			Name: "left", Rate: 5000, Collector: 100,
			Specs: []AlgSpec{
				SpecVanilla,
				{Alg: core.Compresschain, Collector: 100},
				{Alg: core.Hashchain, Collector: 100},
			},
			Horizon: 350 * time.Second,
		},
		{
			Name: "center", Rate: 10000, Collector: 100,
			Specs: []AlgSpec{
				{Alg: core.Compresschain, Collector: 100},
				{Alg: core.Hashchain, Collector: 100},
			},
			Horizon: 350 * time.Second,
		},
		{
			Name: "right", Rate: 10000, Collector: 500,
			Specs: []AlgSpec{
				{Alg: core.Compresschain, Collector: 500},
				{Alg: core.Hashchain, Collector: 500},
			},
			Horizon: 250 * time.Second,
		},
	}
}

// RunFig1Panel runs every algorithm of one panel (10 servers, no extra
// delay) and returns the results in spec order. scale shrinks the run for
// quick passes (1 = paper scale). Cells run on the RunMany worker pool.
func RunFig1Panel(p Fig1Panel, scale float64) []*Result {
	var cells []Scenario
	for _, spec := range p.Specs {
		cells = append(cells, Scenario{
			Spec:    spec,
			Rate:    p.Rate,
			Horizon: time.Duration(float64(p.Horizon) * scaleOr1(scale)),
			Scale:   scale,
		})
	}
	return RunMany(cells)
}

func scaleOr1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// LimitResult is one curve of Fig. 2 (left): pushing an algorithm to its
// implementation limit.
type LimitResult struct {
	Label  string
	Result *Result
}

// RunLimitStudy reproduces Fig. 2 (left): the highest throughput each
// variant sustains with collector size 500 on 10 servers. The paper sends
// 25,000 el/s at Hashchain with hash-reversal (bottlenecked near 20k el/s
// by per-element validation) and 150,000 el/s at Hashchain Light (reaching
// ~134k el/s), and compares Compresschain with and without
// decompression+validation plus Vanilla.
func RunLimitStudy(scale float64) []LimitResult {
	scale = scaleOr1(scale)
	type cell struct {
		label string
		spec  AlgSpec
		rate  float64
	}
	cells := []cell{
		{"Hashchain c=500 (hash-reversal on)", SpecHash500, 25000},
		{"Hashchain Light c=500 (no hash-reversal)",
			AlgSpec{Alg: core.Hashchain, Collector: 500, Light: true}, 150000},
		{"Compresschain c=500", SpecCompress500, 25000},
		{"Compresschain Light c=500",
			AlgSpec{Alg: core.Compresschain, Collector: 500, Light: true}, 25000},
		{"Vanilla", SpecVanilla, 5000},
	}
	scs := make([]Scenario, len(cells))
	for i, c := range cells {
		scs[i] = Scenario{
			Spec:    c.spec,
			Rate:    c.rate,
			Horizon: time.Duration(90 * float64(time.Second) * scale),
			Scale:   scale,
		}
	}
	results := RunMany(scs)
	out := make([]LimitResult, len(cells))
	for i, c := range cells {
		out[i] = LimitResult{Label: c.label, Result: results[i]}
	}
	return out
}

// EfficiencyCell is one bar group of Fig. 3: a variant's efficiency at the
// three checkpoints.
type EfficiencyCell struct {
	Spec   AlgSpec
	Param  string // the varied parameter's value, rendered
	Result *Result
}

// EfficiencySpecs is the variant set of Fig. 3's legends.
func EfficiencySpecs() []AlgSpec {
	return []AlgSpec{SpecVanilla, SpecCompress100, SpecCompress500, SpecHash100, SpecHash500}
}

// runEfficiencyGrid fans one Fig. 3 grid (scenarios × EfficiencySpecs)
// across the worker pool and labels each cell with the varied parameter.
func runEfficiencyGrid(scs []Scenario, params []string, specs []AlgSpec) []EfficiencyCell {
	results := RunMany(scs)
	out := make([]EfficiencyCell, len(scs))
	for i, res := range results {
		out[i] = EfficiencyCell{Spec: specs[i], Param: params[i], Result: res}
	}
	return out
}

// RunEfficiencyVsRate reproduces Fig. 3a: efficiency for sending rates
// 500/1000/5000/10000 el/s (10 servers, no delay).
func RunEfficiencyVsRate(scale float64) []EfficiencyCell {
	var scs []Scenario
	var params []string
	var specs []AlgSpec
	for _, rate := range []float64{500, 1000, 5000, 10000} {
		for _, spec := range EfficiencySpecs() {
			scs = append(scs, Scenario{Spec: spec, Rate: rate, Scale: scale})
			params = append(params, fmt.Sprintf("%.0f el/s", rate))
			specs = append(specs, spec)
		}
	}
	return runEfficiencyGrid(scs, params, specs)
}

// RunEfficiencyVsServers reproduces Fig. 3b: efficiency for 4/7/10 servers
// (10,000 el/s, no delay).
func RunEfficiencyVsServers(scale float64) []EfficiencyCell {
	var scs []Scenario
	var params []string
	var specs []AlgSpec
	for _, n := range []int{4, 7, 10} {
		for _, spec := range EfficiencySpecs() {
			scs = append(scs, Scenario{Spec: spec, Rate: 10000, Servers: n, Scale: scale})
			params = append(params, fmt.Sprintf("%d servers", n))
			specs = append(specs, spec)
		}
	}
	return runEfficiencyGrid(scs, params, specs)
}

// RunEfficiencyVsDelay reproduces Fig. 3c: efficiency for network delays
// 0/30/100 ms (10 servers, 10,000 el/s).
func RunEfficiencyVsDelay(scale float64) []EfficiencyCell {
	var scs []Scenario
	var params []string
	var specs []AlgSpec
	for _, delay := range []time.Duration{0, 30 * time.Millisecond, 100 * time.Millisecond} {
		for _, spec := range EfficiencySpecs() {
			scs = append(scs, Scenario{Spec: spec, Rate: 10000, NetworkDelay: delay, Scale: scale})
			params = append(params, delay.String())
			specs = append(specs, spec)
		}
	}
	return runEfficiencyGrid(scs, params, specs)
}

// LatencyCurves holds Fig. 4's five CDFs for one algorithm.
type LatencyCurves struct {
	Spec   AlgSpec
	Stages map[metrics.Stage][]time.Duration // sorted latencies
	Reach  map[metrics.Stage]float64         // CDF terminal value
	Result *Result
}

// RunLatencyStudy reproduces Fig. 4: stage latency CDFs for the three
// algorithms with collector size 100, 10 servers, 1,250 el/s, no delay.
func RunLatencyStudy(scale float64) []LatencyCurves {
	specs := []AlgSpec{
		SpecVanilla,
		{Alg: core.Compresschain, Collector: 100},
		{Alg: core.Hashchain, Collector: 100},
	}
	scs := make([]Scenario, len(specs))
	for i, spec := range specs {
		scs[i] = Scenario{
			Spec:  spec,
			Rate:  1250,
			Level: metrics.LevelStages,
			Scale: scale,
		}
	}
	results := RunMany(scs)
	var out []LatencyCurves
	for i, spec := range specs {
		res := results[i]
		lc := LatencyCurves{
			Spec:   spec,
			Stages: make(map[metrics.Stage][]time.Duration),
			Reach:  make(map[metrics.Stage]float64),
			Result: res,
		}
		for st := metrics.StageFirstMempool; st <= metrics.StageCommitted; st++ {
			lats, frac := res.Recorder.LatencyCDF(st)
			lc.Stages[st] = lats
			lc.Reach[st] = frac
		}
		out = append(out, lc)
	}
	return out
}

// CommitTimeStudy reproduces Fig. 5 (Appendix F): commit times of the
// first element and the 10..50% fractions, across the same grids as
// Fig. 3. The dimension selects a/b/c.
type CommitTimeStudyDim int

// Fig. 5 sub-figures.
const (
	CommitVsRate CommitTimeStudyDim = iota
	CommitVsServers
	CommitVsDelay
)

// RunCommitTimeStudy runs the selected Fig. 5 grid.
func RunCommitTimeStudy(dim CommitTimeStudyDim, scale float64) []EfficiencyCell {
	switch dim {
	case CommitVsRate:
		return RunEfficiencyVsRate(scale)
	case CommitVsServers:
		return RunEfficiencyVsServers(scale)
	default:
		return RunEfficiencyVsDelay(scale)
	}
}
