package harness

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/spec"
)

// The study functions reproduce the paper's figures by expanding entries
// of the spec registry (internal/spec, DESIGN.md §7) into scenario lists
// for RunMany. The registry is the single source of truth for every
// cell's parameters: cmd/specdoc renders the same entries into
// EXPERIMENTS.md, and TestRegistryExpansionMatchesLegacyStudies pins the
// expansions to the hand-written scenario lists they replaced.

// mustAlgSpec converts a registry cell's variant fields; registry cells
// always carry a valid algorithm.
func mustAlgSpec(c spec.ScenarioSpec) AlgSpec {
	c = c.WithDefaults()
	alg, err := ParseAlgorithm(c.Algorithm)
	if err != nil {
		panic("harness: " + err.Error())
	}
	return AlgSpec{Alg: alg, Collector: c.Collector, Light: c.Light}
}

// Fig1Panel describes one panel of Fig. 1 (throughput over time). Name,
// Rate, Collector, Specs and Horizon summarize the panel for renderers;
// Cells are the registry cells behind it, and RunFig1Panel executes those
// (so registry edits — a per-cell delay, rate or seed — run faithfully
// even where the summary fields cannot express them).
type Fig1Panel struct {
	Name      string
	Rate      float64
	Collector int
	Specs     []AlgSpec
	Horizon   time.Duration
	Cells     []spec.ScenarioSpec
}

// Fig1Panels expands the "fig1" registry entry into its three panels:
// (left) 5,000 el/s with c=100 and all three algorithms; (center)
// 10,000 el/s with c=100, Compresschain vs Hashchain; (right)
// 10,000 el/s with c=500. Cells sharing a Group form one panel.
func Fig1Panels() []Fig1Panel {
	var panels []Fig1Panel
	for _, c := range spec.MustGet("fig1").Cells {
		if len(panels) == 0 || panels[len(panels)-1].Name != c.Group {
			panels = append(panels, Fig1Panel{
				Name:    c.Group,
				Rate:    c.Rate,
				Horizon: c.Horizon.Std(),
			})
		}
		p := &panels[len(panels)-1]
		if c.Collector > p.Collector {
			p.Collector = c.Collector
		}
		p.Specs = append(p.Specs, mustAlgSpec(c))
		p.Cells = append(p.Cells, c)
	}
	return panels
}

// RunFig1Panel runs every algorithm of one panel and returns the results
// in spec order. scale shrinks the run for quick passes (1 = paper
// scale). Cells run on the RunMany worker pool.
func RunFig1Panel(p Fig1Panel, scale float64) []*Result {
	return RunMany(panelScenarios(p, scale))
}

// panelScenarios expands a panel into executable scenarios: from its
// registry cells when it has them, otherwise (hand-built panels) from
// the summary fields, which is exactly what the cell conversion yields
// for the registry's own panels.
func panelScenarios(p Fig1Panel, scale float64) []Scenario {
	if len(p.Cells) > 0 {
		scs, err := FromSpecs(p.Cells, scale)
		if err != nil {
			panic("harness: invalid Fig1Panel cells: " + err.Error())
		}
		return scs
	}
	var scs []Scenario
	for _, spec := range p.Specs {
		scs = append(scs, Scenario{
			Spec:    spec,
			Rate:    p.Rate,
			Horizon: time.Duration(float64(p.Horizon) * scaleOr1(scale)),
			Scale:   scale,
		})
	}
	return scs
}

func scaleOr1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// LimitResult is one curve of Fig. 2 (left): pushing an algorithm to its
// implementation limit.
type LimitResult struct {
	Label  string
	Result *Result
}

// RunLimitStudy reproduces Fig. 2 (left) by expanding the "fig2left"
// registry entry: the highest throughput each variant sustains with
// collector size 500 on 10 servers. The paper sends 25,000 el/s at
// Hashchain with hash-reversal (bottlenecked near 20k el/s by per-element
// validation) and 150,000 el/s at Hashchain Light (reaching ~134k el/s),
// and compares Compresschain with and without decompression+validation
// plus Vanilla.
func RunLimitStudy(scale float64) []LimitResult {
	e := spec.MustGet("fig2left")
	results := RunMany(mustEntryScenarios("fig2left", scale))
	out := make([]LimitResult, len(results))
	for i, res := range results {
		out[i] = LimitResult{Label: e.Cells[i].Label(), Result: res}
	}
	return out
}

// EfficiencyCell is one bar group of Fig. 3: a variant's efficiency at the
// three checkpoints.
type EfficiencyCell struct {
	Spec   AlgSpec
	Param  string // the varied parameter's value, rendered
	Result *Result
}

// EfficiencySpecs is the variant set of Fig. 3's legends.
func EfficiencySpecs() []AlgSpec {
	return []AlgSpec{SpecVanilla, SpecCompress100, SpecCompress500, SpecHash100, SpecHash500}
}

// runEfficiencyEntry fans one Fig. 3/5 registry grid across the worker
// pool and labels each cell with its group (the varied parameter).
func runEfficiencyEntry(name string, scale float64) []EfficiencyCell {
	e := spec.MustGet(name)
	scs := mustEntryScenarios(name, scale)
	results := RunMany(scs)
	out := make([]EfficiencyCell, len(scs))
	for i, res := range results {
		out[i] = EfficiencyCell{Spec: scs[i].Spec, Param: e.Cells[i].Group, Result: res}
	}
	return out
}

// RunEfficiencyVsRate reproduces Fig. 3a (registry entry "fig3a"):
// efficiency for sending rates 500/1000/5000/10000 el/s (10 servers, no
// delay).
func RunEfficiencyVsRate(scale float64) []EfficiencyCell {
	return runEfficiencyEntry("fig3a", scale)
}

// RunEfficiencyVsServers reproduces Fig. 3b (registry entry "fig3b"):
// efficiency for 4/7/10 servers (10,000 el/s, no delay).
func RunEfficiencyVsServers(scale float64) []EfficiencyCell {
	return runEfficiencyEntry("fig3b", scale)
}

// RunEfficiencyVsDelay reproduces Fig. 3c (registry entry "fig3c"):
// efficiency for network delays 0/30/100 ms (10 servers, 10,000 el/s).
func RunEfficiencyVsDelay(scale float64) []EfficiencyCell {
	return runEfficiencyEntry("fig3c", scale)
}

// LatencyCurves holds Fig. 4's five CDFs for one algorithm.
type LatencyCurves struct {
	Spec   AlgSpec
	Stages map[metrics.Stage][]time.Duration // sorted latencies
	Reach  map[metrics.Stage]float64         // CDF terminal value
	Result *Result
}

// RunLatencyStudy reproduces Fig. 4 (registry entry "fig4"): stage
// latency CDFs for the three algorithms with collector size 100,
// 10 servers, 1,250 el/s, no delay.
func RunLatencyStudy(scale float64) []LatencyCurves {
	scs := mustEntryScenarios("fig4", scale)
	results := RunMany(scs)
	var out []LatencyCurves
	for i, sc := range scs {
		res := results[i]
		lc := LatencyCurves{
			Spec:   sc.Spec,
			Stages: make(map[metrics.Stage][]time.Duration),
			Reach:  make(map[metrics.Stage]float64),
			Result: res,
		}
		for st := metrics.StageFirstMempool; st <= metrics.StageCommitted; st++ {
			lats, frac := res.Recorder.LatencyCDF(st)
			lc.Stages[st] = lats
			lc.Reach[st] = frac
		}
		out = append(out, lc)
	}
	return out
}

// CommitTimeStudy reproduces Fig. 5 (Appendix F): commit times of the
// first element and the 10..50% fractions, across the same grids as
// Fig. 3. The dimension selects a/b/c.
type CommitTimeStudyDim int

// Fig. 5 sub-figures.
const (
	CommitVsRate CommitTimeStudyDim = iota
	CommitVsServers
	CommitVsDelay
)

// RunCommitTimeStudy runs the selected Fig. 5 grid (registry entries
// "fig5a"/"fig5b"/"fig5c", which share their cells with Fig. 3's).
func RunCommitTimeStudy(dim CommitTimeStudyDim, scale float64) []EfficiencyCell {
	switch dim {
	case CommitVsRate:
		return runEfficiencyEntry("fig5a", scale)
	case CommitVsServers:
		return runEfficiencyEntry("fig5b", scale)
	default:
		return runEfficiencyEntry("fig5c", scale)
	}
}
