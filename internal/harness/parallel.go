package harness

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// The paper-scale studies are embarrassingly parallel: every cell of
// Fig. 1/2/3/5 and Table 2 is an independent single-threaded simulation
// with its own Simulator, deployment and recorder. RunMany fans the cells
// of a study across a worker pool so a sweep finishes ~GOMAXPROCS faster,
// while each individual simulation stays sequential and deterministic.
//
// Determinism: a cell's result is a pure function of its Scenario (the
// virtual-time kernel draws randomness only from the scenario seed), so
// results are byte-identical regardless of worker count or scheduling
// order — TestRunManyMatchesSequential asserts this.

// workersOverride, when positive, fixes the worker count. 0 = automatic.
var workersOverride atomic.Int64

// SetWorkers overrides the RunMany worker count. n <= 0 restores the
// default (GOMAXPROCS, or the SETCHAIN_WORKERS environment variable).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workersOverride.Store(int64(n))
}

// Workers reports the configured worker count RunMany starts from. When
// neither SetWorkers nor SETCHAIN_WORKERS pins a count, RunMany may lower
// this automatically for memory-heavy cells (see autoWorkers).
func Workers() int {
	if n := workersConfigured(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// workersConfigured returns the explicitly requested worker count, or 0
// when the choice is left to RunMany.
func workersConfigured() int {
	if n := int(workersOverride.Load()); n > 0 {
		return n
	}
	if v := os.Getenv("SETCHAIN_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// inFlightElementBudget bounds the elements materialized by concurrently
// running cells when the worker count is chosen automatically. A paper-scale
// cell keeps every element in per-server sets across 10 servers (roughly a
// kilobyte per element all-in), so ~4M in-flight elements keeps peak memory
// in the single-digit-GB range that the previously sequential studies
// already needed for their largest single cell. Explicit SetWorkers /
// SETCHAIN_WORKERS / -workers settings bypass this cap.
const inFlightElementBudget = 4e6

// estimatedElements approximates how many elements a cell materializes:
// the send rate times the send window (after scaling and defaulting).
func estimatedElements(sc Scenario) float64 {
	sc = sc.withDefaults()
	return sc.Rate * sc.SendFor.Seconds()
}

// autoWorkers picks the automatic worker count for a batch: GOMAXPROCS,
// lowered so the largest cells cannot blow peak memory when run abreast.
func autoWorkers(scs []Scenario) int {
	w := runtime.GOMAXPROCS(0)
	var maxEl float64
	for _, sc := range scs {
		if e := estimatedElements(sc); e > maxEl {
			maxEl = e
		}
	}
	if maxEl > 0 {
		if byMem := int(inFlightElementBudget / maxEl); byMem < w {
			w = byMem
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunMany executes every scenario and returns the results in input order.
// Scenarios run concurrently: on the explicitly configured worker count if
// one was set, otherwise on GOMAXPROCS workers lowered automatically so the
// batch's largest cells cannot multiply peak memory past what the biggest
// single cell already needs (autoWorkers). Pass a single scenario (or
// SetWorkers(1)) for strictly sequential execution. Seeds are never
// rewritten: each cell keeps the seed its Scenario carries (default 1 via
// withDefaults), exactly as a sequential Run loop would.
func RunMany(scs []Scenario) []*Result {
	results := make([]*Result, len(scs))
	if len(scs) == 0 {
		return results
	}
	workers := workersConfigured()
	if workers == 0 {
		workers = autoWorkers(scs)
	}
	if workers > len(scs) {
		workers = len(scs)
	}
	if workers <= 1 {
		for i, sc := range scs {
			results[i] = Run(sc)
		}
		return results
	}
	// One forced collection up front instead of one per cell: the workers
	// themselves must not call runtime.GC (it is global and would act as a
	// barrier across the pool).
	runtime.GC()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scs) {
					return
				}
				results[i] = runScenario(scs[i])
			}
		}()
	}
	wg.Wait()
	return results
}
