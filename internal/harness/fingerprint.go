package harness

import (
	"encoding/json"
	"fmt"
	"time"
)

// Fingerprint serializes every deterministic field of a Result — scenario,
// totals, efficiency checkpoints, time series, commit fractions, per-shard
// summaries, superepoch digest sequence, checkpoint counters, event count,
// network message/byte totals, gossip-relay counters, and the invariant
// verdict — into a canonical byte string. Two runs are
// "byte-identical" exactly when their fingerprints are equal.
//
// Scenario.IntraWorkers is normalized away before serializing: it is an
// executor knob, never a semantics knob, and the intra-run parallel PDES
// contract (DESIGN.md §12) is precisely that fingerprints are invariant
// under it. Host-dependent measurements (live-heap peaks, wall time) are
// excluded for the same reason.
func Fingerprint(res *Result) []byte {
	clone := *res
	clone.Scenario.IntraWorkers = 0
	b, err := json.Marshal(struct {
		Scenario        Scenario
		Injected        uint64
		Committed       uint64
		Eff50           float64
		Eff75           float64
		Eff100          float64
		AvgTput         float64
		Series          any
		CommitFrac      map[int]time.Duration
		Analytical      float64
		Blocks          int
		Events          uint64
		CheckpointSeals uint64
		SyncInstalls    uint64
		SyncRejected    uint64
		CkptDigest      uint64
		PerShard        any
		SuperSeq        []uint64
		NetMsgs         uint64
		NetBytes        uint64
		Gossip          any
		Offered         uint64
		Rejected        uint64
		Fairness        float64
		DeferredTxs     uint64
		ExpiredTxs      uint64
		Invariant       bool
	}{clone.Scenario, clone.Injected, clone.Committed, clone.Eff50, clone.Eff75,
		clone.Eff100, clone.AvgTput, clone.Series, clone.CommitFrac, clone.Analytical,
		clone.Blocks, clone.Events, clone.CheckpointSeals, clone.SyncInstalls,
		clone.SyncRejected, clone.CkptDigest,
		clone.PerShard, clone.SuperDigests, clone.NetMsgs, clone.NetBytes,
		clone.Gossip, clone.Offered, clone.Rejected, clone.Fairness,
		clone.DeferredTxs, clone.ExpiredTxs, clone.Invariant != nil})
	if err != nil {
		// Every field above is a plain value type; a marshal failure is a
		// programming error in this function, not a data condition.
		panic(fmt.Sprintf("harness: fingerprint marshal: %v", err))
	}
	return b
}
