package harness

import (
	"errors"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/wire"
)

// The sharded executor path (Scenario.Shards > 1): S independent
// Setchain instances in one shared network, a digest-routed workload, and
// aggregated metrics. The single-instance path in harness.go is untouched
// — a Shards <= 1 scenario runs exactly the code it always did, so every
// pre-sharding result stays byte-identical. See DESIGN.md §10.

// runShardedScenario executes one sharded scenario. sc is already
// defaulted; Rate/SendFor carry the scale.
func runShardedScenario(sc Scenario) *Result {
	n := sc.Servers
	opts, lcfg := deployConfig(sc)

	// Partitioned execution (IntraWorkers > 1): one partition per shard —
	// shards interact only through the shared fabric, whose minimum
	// cross-shard link delay bounds each round (DESIGN.md §12).
	var world *sim.World
	var s *sim.Simulator
	if iw := effectiveIntraWorkers(sc, opts); iw > 1 {
		world, lcfg.SimFor = newIntraWorld(sc.Seed, sc.Shards, iw,
			func(id wire.NodeID) int { return int(id) / n })
		s = world.Home()
	} else {
		s = sim.New(sc.Seed)
	}
	var engine runner = s
	if world != nil {
		engine = world
	}

	d := shard.Deploy(s, sc.Shards, n, lcfg, opts, sc.Level)
	if world != nil {
		world.SetLookahead(d.Net.Lookahead)
	}
	for _, sd := range d.Shards {
		// The highest-indexed servers of EVERY shard misbehave; each
		// shard's observer (its first server) stays correct, mirroring the
		// single-instance rule.
		applyByzantine(sd, sc.Byzantine)
	}
	// One shared fault controller: plan node ids are global, so a
	// partition can just as well split a shard internally as cut across
	// shard boundaries.
	sc.Faults.Scaled(sc.Scale).Install(s, d.Net)

	gen := shard.NewGenerator(d, shard.WorkloadConfig{
		Rate:         sc.Rate,
		Duration:     sc.SendFor,
		Sizes:        sc.Sizes,
		Tick:         sc.Tick,
		FullPayloads: sc.Mode == core.Full,
		Open:         sc.Open.Scaled(sc.Scale),
		Seed:         sc.Seed,
	})
	d.Start()
	gen.Start()
	engine.RunUntil(sc.Horizon)
	d.Stop()

	res := &Result{
		Scenario:   sc,
		CommitFrac: make(map[int]time.Duration),
		// Shards are independent instances, so the Appendix D model value
		// for the aggregate is S times the per-instance one.
		Analytical: sc.Spec.AnalyticalThroughput(n) * float64(sc.Shards),
		Events:     engine.Executed(),
	}

	// Aggregate the per-shard recorders. Totals and checkpoint counts sum;
	// series and commit fractions come from the merged time buckets, so
	// they keep exactly the bucket semantics of a single recorder (widths
	// are reconciled by MergeBuckets when a long run coarsened a shard).
	var buckets []uint64
	var bw time.Duration
	for k, rec := range d.Recorders {
		res.Injected += rec.TotalInjected()
		res.Committed += rec.TotalCommitted()
		res.AvgTput += rec.AvgThroughputUpTo(sc.SendFor)
		snap := d.Shards[k].Server(d.Observer(k)).Get()
		res.PerShard = append(res.PerShard, shard.Stats{
			Shard:     k,
			Injected:  rec.TotalInjected(),
			Committed: rec.TotalCommitted(),
			AvgTput:   rec.AvgThroughputUpTo(sc.SendFor),
			Epochs:    int(snap.PrunedEpochs) + len(snap.History),
			Blocks:    int(d.Shards[k].Ledger.Nodes[0].Cons.HeightCommitted()),
		})
		res.Blocks += res.PerShard[k].Blocks
		bw, buckets = metrics.MergeBuckets(bw, buckets, rec.BucketWidth(), rec.CommittedPerSecond())
	}
	res.Eff50 = bucketEfficiency(bw, buckets, res.Injected, sc.SendFor)
	res.Eff75 = bucketEfficiency(bw, buckets, res.Injected, sc.SendFor*3/2)
	res.Eff100 = bucketEfficiency(bw, buckets, res.Injected, sc.SendFor*2)
	res.Series = metrics.BucketSeries(bw, buckets, 9*time.Second)
	fracs := map[int]float64{0: 0, 10: 0.10, 20: 0.20, 30: 0.30, 40: 0.40, 50: 0.50}
	for pct, frac := range fracs {
		if t, ok := metrics.BucketTimeAtFraction(bw, buckets, res.Injected, frac); ok {
			res.CommitFrac[pct] = t
		}
	}

	// Safety: every shard must be a correct Setchain on its own, and the
	// shards must compose — router completeness, no cross-shard
	// duplication or fabrication, superepoch integrity.
	view := d.View()
	res.SuperDigests = view.Digests()
	var errs []error
	ckd := checkpoint.Seed()
	for k, sd := range d.Shards {
		res.CheckpointSeals += d.Recorders[k].CheckpointSeals()
		for _, srv := range sd.Servers {
			res.SyncInstalls += srv.SyncInstalls()
			ckd = checkpoint.Mix64(ckd, checkpoint.FoldChain(srv.Checkpoints()))
		}
		for _, node := range sd.Ledger.Nodes {
			res.SyncRejected += node.Cons.SyncRejects()
		}
		if err := invariant.Check(sd, invariant.Config{
			Correct:         shardCorrectIDs(k, n, sc.Byzantine),
			Injected:        gen.InjectedIDs(),
			Rejected:        gen.RejectedIDs(),
			CommittedEpochs: d.Recorders[k].CommittedEpochSizes(),
			Observer:        d.Observer(k),
			FoldedEpochs:    d.Recorders[k].FoldedEpochs(),
			FoldedCommitted: d.Recorders[k].FoldedCommitted(),
		}); err != nil {
			errs = append(errs, err)
		}
	}
	if err := invariant.CheckCross(view, invariant.CrossConfig{
		Shards:   sc.Shards,
		Injected: gen.InjectedIDs(),
	}); err != nil {
		errs = append(errs, err)
	}
	if sc.CheckpointInterval > 0 {
		res.CkptDigest = ckd
	}
	res.Invariant = errors.Join(errs...)
	if res.Invariant != nil {
		invariantViolations.Add(1)
	}
	res.NetMsgs = d.Net.Messages()
	res.NetBytes = d.Net.BytesSent()
	res.Offered = gen.Offered()
	res.Rejected = gen.Rejected()
	res.Fairness = gen.Fairness()
	for _, sd := range d.Shards {
		if sd.Ledger.Mesh != nil {
			res.Gossip.Add(sd.Ledger.Mesh.Stats())
		}
		for _, node := range sd.Ledger.Nodes {
			_, deferred, expired := node.Pool.AdmissionStats()
			res.DeferredTxs += deferred
			res.ExpiredTxs += expired
		}
	}
	measureHeap(res, d)
	return res
}

// shardCorrectIDs maps the single-instance correct-server rule onto shard
// k's global id range: all of the shard's servers minus the Faulty
// highest-indexed ones, with the shard's observer (local index 0) always
// correct.
func shardCorrectIDs(k, n int, cfg ByzantineCfg) []wire.NodeID {
	local := correctServerIDs(n, cfg)
	ids := make([]wire.NodeID, len(local))
	for i, id := range local {
		ids[i] = wire.NodeID(k*n) + id
	}
	return ids
}

// bucketEfficiency is Recorder.Efficiency over merged buckets: committed
// by t divided by total injected. The bucket math itself is the metrics
// package's (BucketCommittedBy and friends), so sharded checkpoints
// cannot drift from single-instance semantics.
func bucketEfficiency(width time.Duration, buckets []uint64, injected uint64, t time.Duration) float64 {
	if injected == 0 {
		return 0
	}
	return float64(metrics.BucketCommittedBy(width, buckets, t)) / float64(injected)
}
