package harness

import (
	"runtime"
	"testing"
	"time"
)

type timedResult struct {
	res  *Result
	wall time.Duration
}

func timedRun(t *testing.T, sc Scenario, iw int) timedResult {
	t.Helper()
	start := time.Now()
	res := runAtWorkers(sc, iw)
	wall := time.Since(start)
	if res.Invariant != nil {
		t.Fatalf("%s (IntraWorkers=%d) violates safety: %v", sc.Name, iw, res.Invariant)
	}
	return timedResult{res: res, wall: wall}
}

// The byte-identity contract of partitioned execution (DESIGN.md §12):
// IntraWorkers is an executor knob, never a semantics knob. The sweep below
// runs every scale_*, chaos_*, and soak_smoke registry cell at worker
// counts 1, 2, and NumCPU and requires byte-identical fingerprints —
// metrics (totals, efficiency checkpoints, series, commit fractions),
// superepoch digest sequences, checkpoint seals, event counts, and
// invariant verdicts. The mutation tests at the bottom sabotage the
// executor on purpose to prove the comparison would catch a real bug.

// pdesCells expands the families the equivalence contract covers, at a
// reduced scale so the whole sweep stays CI-sized. soak cells keep their
// heap ceilings; the sweep runs cells one at a time, so the process-wide
// measurement stays meaningful. The mesh_* families are covered because
// the gossip overlay's dedup caches and relay queues are per-node state
// the partitioned executor must not perturb (DESIGN.md §13) — and the
// fingerprint includes message totals and gossip counters, so a
// transport-level divergence cannot hide behind equal commit metrics.
func pdesCells(t *testing.T, scale float64) []Scenario {
	t.Helper()
	var scs []Scenario
	for _, entry := range []string{
		"scale_tput", "scale_chaos",
		"chaos_crash", "chaos_partition", "chaos_majority", "chaos_lossy",
		"soak_smoke",
		"mesh_scale", "mesh_vs_broadcast", "mesh_chaos", "mesh_shards",
		// The open_* families matter here because their extra randomness
		// (zipf draws, churn timers) and the admission gate's pool-state
		// reads are exactly the kind of order-sensitive state a partitioned
		// executor could perturb (DESIGN.md §14).
		"open_ramp", "open_skew", "open_churn",
		// The sync_* families exercise the chunked state-sync transfer and
		// the catch-up retry backoff — per-node protocol state (chunk
		// bitmaps, retry counters, the jitter RNG) that must be
		// partition-invariant (DESIGN.md §15).
		"sync_transfer", "sync_forged",
	} {
		cells, err := EntryScenarios(entry, scale)
		if err != nil {
			t.Fatal(err)
		}
		scs = append(scs, cells...)
	}
	return scs
}

// pdesFingerprint is the byte-identity key of the sweep: the production
// Fingerprint, which already normalizes IntraWorkers away — the one
// Scenario field allowed (required, even) to differ between the runs
// being compared.
func pdesFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	return Fingerprint(res)
}

// runAtWorkers runs the cell with the given IntraWorkers setting.
func runAtWorkers(sc Scenario, iw int) *Result {
	sc.IntraWorkers = iw
	return Run(sc)
}

// TestIntraRunEquivalenceSweep is the headline test: every covered registry
// cell, IntraWorkers 1 vs 2 vs NumCPU, byte-identical results. It is NOT
// -short-skipped — CI's race job runs it at full worker width, because this
// is the first shared-memory concurrency inside a single run.
func TestIntraRunEquivalenceSweep(t *testing.T) {
	widths := []int{2, runtime.NumCPU()}
	for i, sc := range pdesCells(t, 0.1) {
		seq := runAtWorkers(sc, 1)
		if seq.Invariant != nil {
			t.Fatalf("cell %d (%s): sequential run violates safety: %v", i, sc.Name, seq.Invariant)
		}
		if seq.Committed == 0 {
			t.Fatalf("cell %d (%s): sequential run committed nothing", i, sc.Name)
		}
		want := pdesFingerprint(t, seq)
		for _, iw := range widths {
			if iw < 2 {
				continue
			}
			res := runAtWorkers(sc, iw)
			if got := pdesFingerprint(t, res); string(got) != string(want) {
				t.Fatalf("cell %d (%s): IntraWorkers=%d diverges from sequential\nseq: %s\ngot: %s",
					i, sc.Name, iw, want, got)
			}
			if res.Events != seq.Events {
				t.Fatalf("cell %d (%s): IntraWorkers=%d executed %d events, sequential %d",
					i, sc.Name, iw, res.Events, seq.Events)
			}
		}
	}
}

// A deliberately broken home fence — partitions running past pending
// injections and fault events — must be caught by the fingerprint
// comparison, or the sweep above is vacuous. The run still terminates and
// still passes safety (it is a valid schedule of a DIFFERENT scenario
// interleaving); only byte-identity breaks.
func TestIntraRunBrokenFenceDiverges(t *testing.T) {
	cells, err := EntryScenarios("scale_tput", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sc := cells[1] // S=2: sharded, cross-partition traffic, two partitions
	want := pdesFingerprint(t, runAtWorkers(sc, 1))

	breakHomeFence = true
	defer func() { breakHomeFence = false }()
	broken := runAtWorkers(sc, 2)
	if got := pdesFingerprint(t, broken); string(got) == string(want) {
		t.Fatalf("sabotaged executor (home fence removed) still matches the sequential fingerprint — the equivalence sweep is vacuous")
	}
}

// The speedup claim at paper scale: the S=8 scale_tput cell at
// IntraWorkers=8 vs 1. Byte-identity is asserted unconditionally; the
// >=4x wall-clock ratio needs 8 real cores, so hosts with fewer skip.
func TestIntraRunSpeedupPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale cell; skipped under -short")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("have %d CPUs, need 8 for the wall-clock claim", runtime.NumCPU())
	}
	cells, err := EntryScenarios("scale_tput", 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := cells[3] // S=8
	w1 := timedRun(t, sc, 1)
	w8 := timedRun(t, sc, 8)
	if got, want := pdesFingerprint(t, w8.res), pdesFingerprint(t, w1.res); string(got) != string(want) {
		t.Fatalf("IntraWorkers=8 diverges from sequential at paper scale\nseq: %s\ngot: %s", want, got)
	}
	speedup := w1.wall.Seconds() / w8.wall.Seconds()
	t.Logf("S=8 paper-scale wall-clock: IW=1 %.2fs, IW=8 %.2fs, speedup %.2fx", w1.wall.Seconds(), w8.wall.Seconds(), speedup)
	if speedup < 4 {
		t.Fatalf("IntraWorkers=8 speedup %.2fx < 4x on %d CPUs", speedup, runtime.NumCPU())
	}
}
