package harness

import (
	"fmt"
	"time"

	"repro/internal/byzantine"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/spec"
	"repro/internal/wire"
	"repro/internal/workload"
)

// This file maps the declarative spec layer (internal/spec, DESIGN.md §7)
// onto the executor's types: a ScenarioSpec — hand-written JSON or a
// registry cell — becomes a Scenario, and the study functions become thin
// expansions of registry entries through these helpers.

// ParseAlgorithm maps a spec algorithm name onto the core constant.
func ParseAlgorithm(name string) (core.Algorithm, error) {
	switch name {
	case spec.AlgVanilla:
		return core.Vanilla, nil
	case spec.AlgCompresschain:
		return core.Compresschain, nil
	case spec.AlgHashchain:
		return core.Hashchain, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

// FromSpec converts a ScenarioSpec into the Scenario the executor runs.
// The spec is defaulted and validated first, so a sparse spec and its
// defaulted form produce identical scenarios.
func FromSpec(sp spec.ScenarioSpec) (Scenario, error) {
	sp = sp.WithDefaults()
	if err := sp.Validate(); err != nil {
		return Scenario{}, err
	}
	alg, err := ParseAlgorithm(sp.Algorithm)
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Name:               sp.Name,
		Spec:               AlgSpec{Alg: alg, Collector: sp.Collector, Light: sp.Light},
		Servers:            sp.Servers,
		Shards:             sp.Shards,
		IntraWorkers:       sp.IntraWorkers,
		Transport:          sp.Transport,
		Fanout:             sp.Fanout,
		Rate:               sp.Rate,
		SendFor:            sp.SendFor.Std(),
		Horizon:            sp.Horizon.Std(),
		NetworkDelay:       sp.NetworkDelay.Std(),
		Bandwidth:          sp.Bandwidth,
		Seed:               sp.Seed,
		Scale:              sp.Scale,
		CheckpointInterval: sp.CheckpointInterval,
		Prune:              sp.Prune,
		HeapCeilingMB:      sp.HeapCeilingMB,
		SyncChunkBytes:     sp.SyncChunkBytes,
	}
	if sp.Metrics == spec.MetricsStages {
		sc.Level = metrics.LevelStages
	}
	if sp.Crypto == spec.CryptoFull {
		sc.Mode = core.Full
	}
	if w := sp.Workload; w != nil {
		sc.Sizes = workload.SizeModel{
			Mean: w.SizeMean, StdDev: w.SizeStdDev,
			Min: w.SizeMin, Max: w.SizeMax,
		}
		sc.Tick = w.Tick.Std()
	}
	if o := sp.Open; o != nil {
		sc.Open = workload.OpenConfig{
			Zipf:     o.Zipf,
			ChurnOn:  o.ChurnOn.Std(),
			ChurnOff: o.ChurnOff.Std(),
		}
		for _, ph := range o.Envelope {
			sc.Open.Envelope = append(sc.Open.Envelope, workload.RatePhase{
				From: ph.From.Std(), Mult: ph.Mult,
			})
		}
	}
	if a := sp.Admission; a != nil {
		sc.Admission = AdmissionCfg{
			Policy:      a.Policy,
			Watermark:   a.Watermark,
			MaxTxs:      a.MaxTxs,
			MaxBytes:    a.MaxBytes,
			MaxDelay:    a.MaxDelay.Std(),
			MaxDeferred: a.MaxDeferred,
		}
	}
	if b := sp.Byzantine; b != nil {
		sc.Byzantine = ByzantineCfg{
			Faulty:      b.Faulty,
			Behaviors:   append([]string(nil), b.Behaviors...),
			InjectCount: b.InjectCount,
		}
	}
	sc.Faults = FaultPlanFromSpec(sp.Faults)
	return sc, nil
}

// FaultPlanFromSpec converts the declarative fault schedule into the
// executable plan the simulator installs. The spec's action names are the
// plan's Kind strings, so the mapping is mechanical; spec.Validate has
// already checked ranges and probabilities by the time FromSpec calls this.
func FaultPlanFromSpec(fs *spec.FaultSpec) faults.Plan {
	if fs == nil || len(fs.Events) == 0 {
		return faults.Plan{}
	}
	plan := faults.Plan{Events: make([]faults.Event, len(fs.Events))}
	for i, ev := range fs.Events {
		plan.Events[i] = faults.Event{
			At:     ev.At.Std(),
			Kind:   faults.Kind(ev.Action),
			Nodes:  nodeIDs(ev.Nodes),
			Groups: nodeGroups(ev.Groups),
			From:   nodeIDs(ev.From),
			To:     nodeIDs(ev.To),
			Fault: netsim.LinkFault{
				Drop:         ev.Drop,
				Duplicate:    ev.Duplicate,
				Reorder:      ev.Reorder,
				ReorderDelay: ev.ReorderDelay.Std(),
				ExtraDelay:   ev.Delay.Std(),
			},
		}
	}
	return plan
}

func nodeIDs(ids []int) []wire.NodeID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]wire.NodeID, len(ids))
	for i, id := range ids {
		out[i] = wire.NodeID(id)
	}
	return out
}

func nodeGroups(groups [][]int) [][]wire.NodeID {
	if len(groups) == 0 {
		return nil
	}
	out := make([][]wire.NodeID, len(groups))
	for i, g := range groups {
		out[i] = nodeIDs(g)
	}
	return out
}

// FromSpecScaled converts the spec and applies a run-time scale factor on
// top of the spec's own: Scale multiplies (shrinking rate and send window
// at run time), and an explicitly-set horizon shrinks with it — exactly
// the scaling rule the study functions have always used. scale 0 means 1.
func FromSpecScaled(sp spec.ScenarioSpec, scale float64) (Scenario, error) {
	sc, err := FromSpec(sp)
	if err != nil {
		return Scenario{}, err
	}
	scale = scaleOr1(scale)
	sc.Scale *= scale
	if sc.Horizon != 0 {
		sc.Horizon = time.Duration(float64(sc.Horizon) * scale)
	}
	return sc, nil
}

// FromSpecs converts a whole scenario document, failing on the first bad
// cell.
func FromSpecs(sps []spec.ScenarioSpec, scale float64) ([]Scenario, error) {
	out := make([]Scenario, len(sps))
	for i, sp := range sps {
		sc, err := FromSpecScaled(sp, scale)
		if err != nil {
			return nil, fmt.Errorf("cell %d (%s): %w", i, sp.Label(), err)
		}
		out[i] = sc
	}
	return out, nil
}

// EntryScenarios expands a registry entry into its executable scenarios
// at the given scale.
func EntryScenarios(name string, scale float64) ([]Scenario, error) {
	e, ok := spec.Get(name)
	if !ok {
		return nil, fmt.Errorf("no registry entry %q", name)
	}
	if len(e.Cells) == 0 {
		return nil, fmt.Errorf("entry %q is analytic: it has no simulation cells", name)
	}
	return FromSpecs(e.Cells, scale)
}

// mustEntryScenarios expands a compile-time-known registry entry; every
// registered cell validates (Register panics otherwise), so conversion
// cannot fail.
func mustEntryScenarios(name string, scale float64) []Scenario {
	scs, err := EntryScenarios(name, scale)
	if err != nil {
		panic(fmt.Sprintf("harness: registry entry %q: %v", name, err))
	}
	return scs
}

// RunSpecs converts and executes a scenario document on the worker pool,
// returning results in input order.
func RunSpecs(sps []spec.ScenarioSpec, scale float64) ([]*Result, error) {
	scs, err := FromSpecs(sps, scale)
	if err != nil {
		return nil, err
	}
	return RunMany(scs), nil
}

// applyByzantine installs the configured fault behaviors on the
// deployment's highest-indexed servers. Called between Deploy and Start;
// a zero config is a no-op.
func applyByzantine(d *core.Deployment, cfg ByzantineCfg) {
	if cfg.Faulty <= 0 || len(cfg.Behaviors) == 0 {
		return
	}
	var parts []*core.Behavior
	silent := false
	for _, name := range cfg.Behaviors {
		switch name {
		case spec.BehaviorSilent:
			silent = true
		case spec.BehaviorInjectInvalid:
			n := cfg.InjectCount
			if n == 0 {
				n = spec.DefaultInjectCount
			}
			parts = append(parts, byzantine.InjectInvalid(n))
		case spec.BehaviorWithholdBatches:
			parts = append(parts, byzantine.WithholdBatches())
		case spec.BehaviorWrongBatches:
			parts = append(parts, byzantine.WrongBatches())
		case spec.BehaviorCorruptProofs:
			parts = append(parts, byzantine.CorruptProofs())
		case spec.BehaviorForgeSnapshot:
			parts = append(parts, byzantine.ForgeSnapshot())
		default:
			// Unknown names are caught by spec.Validate before any
			// scenario reaches the executor.
			panic(fmt.Sprintf("harness: unknown byzantine behavior %q", name))
		}
	}
	n := len(d.Servers)
	for i := n - cfg.Faulty; i < n; i++ {
		if i <= 0 {
			continue // server 0 is the metrics observer; keep it correct
		}
		if len(parts) > 0 {
			d.Servers[i].SetBehavior(byzantine.Combine(parts...))
		}
		if silent {
			byzantine.Silent(d.Ledger.Net, d.Ledger.Nodes[i].ID, true)
		}
	}
}
