package harness

// Intra-run parallel execution (Scenario.IntraWorkers > 1): the scenario's
// event population is split across per-partition event queues — one
// partition per server node for a single-instance run, one per shard for a
// sharded run — advanced concurrently in lookahead-bounded rounds by a
// sim.World (DESIGN.md §12). Results are byte-identical to IntraWorkers=1:
// same metrics fingerprints, superepoch digests, checkpoint seals, and
// event counts, which the equivalence sweep in pdes_test.go enforces over
// the whole registry.

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wire"
)

// runner abstracts the two execution engines: a lone Simulator (the
// sequential path, exactly as it always ran) or a World of partitions.
type runner interface {
	RunUntil(deadline time.Duration)
	Executed() uint64
}

// effectiveIntraWorkers resolves the worker count a scenario actually runs
// with. Anything that would break the byte-identity contract degrades to
// the sequential path rather than erroring:
//
//   - LevelStages metrics mutate recorder state from every node, so the
//     recorder is only partition-confined at LevelThroughput;
//   - Hashchain Light shares one batch store across all servers
//     (core.Options.SharedStore) — cross-partition mutable state;
//   - a single-server, single-shard run has one partition and nothing to
//     overlap.
func effectiveIntraWorkers(sc Scenario, opts core.Options) int {
	iw := sc.IntraWorkers
	if iw <= 1 {
		return 1
	}
	if sc.Level >= metrics.LevelStages {
		return 1
	}
	if opts.Algorithm == core.Hashchain && opts.Light {
		return 1
	}
	if sc.Shards <= 1 && sc.Servers < 2 {
		return 1
	}
	return iw
}

// newIntraWorld builds the World for a partitioned run: partitions
// partition queues plus the home queue (workload ticks, fault plans, the
// end-of-send drain), and a resolver mapping each server node id to its
// partition via idx. The test-only sabotage switches below are applied
// here so the mutation tests exercise the real executor path end to end.
func newIntraWorld(seed int64, partitions, workers int, idx func(wire.NodeID) int) (*sim.World, func(wire.NodeID) *sim.Simulator) {
	w := sim.NewWorld(seed, partitions, workers)
	if breakMergeOrder {
		w.BreakMergeOrderForTest()
	}
	if breakHomeFence {
		w.BreakHomeFenceForTest()
	}
	simFor := func(id wire.NodeID) *sim.Simulator {
		if k := idx(id); k >= 0 && k < partitions {
			return w.Part(k)
		}
		return nil
	}
	return w, simFor
}

// Test-only sabotage switches (set by pdes_test.go under its own cleanup):
// deliberately break the inbox merge order / the home-event round fence so
// the equivalence sweep's fingerprint comparison is proven non-vacuous.
var (
	breakMergeOrder bool
	breakHomeFence  bool
)
