package harness

import (
	"testing"
	"time"
)

// resultFingerprint delegates to the production Fingerprint (which the
// intra-run PDES probe in cmd/setchain-bench also uses), keeping one
// definition of the byte-identity contract.
func resultFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	return Fingerprint(res)
}

// The parallel executor must yield byte-identical results to the
// sequential path for a fixed seed, regardless of worker count.
func TestRunManyMatchesSequential(t *testing.T) {
	scs := []Scenario{
		{Spec: SpecHash100, Rate: 600, SendFor: 8 * time.Second, Horizon: 30 * time.Second, Seed: 7},
		{Spec: SpecCompress100, Rate: 600, SendFor: 8 * time.Second, Horizon: 30 * time.Second, Seed: 7},
		{Spec: SpecVanilla, Rate: 300, SendFor: 8 * time.Second, Horizon: 30 * time.Second, Seed: 7},
		{Spec: SpecHash100, Rate: 600, SendFor: 8 * time.Second, Horizon: 30 * time.Second, Seed: 8},
	}
	sequential := make([][]byte, len(scs))
	for i, sc := range scs {
		sequential[i] = resultFingerprint(t, Run(sc))
	}
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		parallel := RunMany(scs)
		SetWorkers(0)
		if len(parallel) != len(scs) {
			t.Fatalf("workers=%d: results = %d, want %d", workers, len(parallel), len(scs))
		}
		for i, res := range parallel {
			if got := resultFingerprint(t, res); string(got) != string(sequential[i]) {
				t.Fatalf("workers=%d: cell %d diverges from sequential run\nseq: %s\npar: %s",
					workers, i, sequential[i], got)
			}
		}
	}
}

// Re-running the same scenario must be deterministic (the simulator draws
// randomness only from the scenario seed), and different seeds must
// actually change the event schedule.
func TestRunDeterministicPerSeed(t *testing.T) {
	sc := Scenario{Spec: SpecHash100, Rate: 500, SendFor: 6 * time.Second,
		Horizon: 20 * time.Second, Seed: 42}
	a, b := Run(sc), Run(sc)
	if a.Events != b.Events || a.Committed != b.Committed {
		t.Fatalf("same seed diverged: events %d vs %d, committed %d vs %d",
			a.Events, b.Events, a.Committed, b.Committed)
	}
	sc.Seed = 43
	c := Run(sc)
	if c.Events == a.Events && c.Committed == a.Committed && c.Blocks == a.Blocks {
		t.Log("seed change produced identical counters (possible but unlikely); not failing")
	}
}

func TestWorkersOverride(t *testing.T) {
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", Workers())
	}
	t.Setenv("SETCHAIN_WORKERS", "5")
	if Workers() != 5 {
		t.Fatalf("Workers() = %d with SETCHAIN_WORKERS=5", Workers())
	}
}

// The automatic worker count must shrink for memory-heavy cells (a
// paper-scale cell materializes millions of elements) and stay at the
// CPU-derived default for small ones; explicit overrides bypass the cap.
func TestAutoWorkersCapsMemoryHeavyCells(t *testing.T) {
	small := []Scenario{{Spec: SpecHash100, Rate: 500, SendFor: 10 * time.Second}}
	if got := autoWorkers(small); got < 1 {
		t.Fatalf("autoWorkers(small) = %d, want >= 1", got)
	}
	// 150k el/s for 50 s = 7.5M elements: above the whole in-flight
	// budget, so only one such cell may run at a time.
	huge := []Scenario{
		{Spec: SpecHash500, Rate: 150000},
		{Spec: SpecHash500, Rate: 150000},
	}
	if got := autoWorkers(huge); got != 1 {
		t.Fatalf("autoWorkers(huge) = %d, want 1 (7.5M-element cells exceed the budget)", got)
	}
}
