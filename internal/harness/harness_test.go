package harness

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Harness tests run at reduced scale: rates and send windows shrink
// together, which preserves saturation relationships against the ledger
// capacity (a rate above an algorithm's ceiling remains above it).
//
// Under -short the slowest stress tests shrink their send window further
// (sending rates stay put, so every above-ceiling relationship the
// assertions rely on is preserved) and the whole package finishes in a few
// seconds.

// shortWindow returns the full window, or the reduced one under -short.
func shortWindow(full, short time.Duration) time.Duration {
	if testing.Short() {
		return short
	}
	return full
}

func TestAlgSpecLabels(t *testing.T) {
	cases := map[string]AlgSpec{
		"Vanilla":                 SpecVanilla,
		"Compresschain c=100":     SpecCompress100,
		"Hashchain c=500":         SpecHash500,
		"Hashchain Light c=500":   {Alg: core.Hashchain, Collector: 500, Light: true},
		"Compresschain Light c=5": {Alg: core.Compresschain, Collector: 5, Light: true},
	}
	for want, spec := range cases {
		if got := spec.Label(); got != want {
			t.Fatalf("label = %q, want %q", got, want)
		}
	}
}

func TestAnalyticalThroughputMatchesModel(t *testing.T) {
	if v := SpecVanilla.AnalyticalThroughput(10); v < 950 || v > 960 {
		t.Fatalf("Vanilla analytic = %v, want ~955", v)
	}
	if v := SpecHash500.AnalyticalThroughput(10); v < 147000 || v > 149000 {
		t.Fatalf("Hashchain c=500 analytic = %v, want ~147857", v)
	}
}

func TestRunUnstressedReachesFullEfficiency(t *testing.T) {
	// 300 el/s Hashchain c=100 is far below every ceiling: everything must
	// commit within the 2×SendFor window.
	res := Run(Scenario{Spec: SpecHash100, Rate: 300, SendFor: 20 * time.Second,
		Horizon: 80 * time.Second, Servers: 4})
	if res.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if res.Committed != res.Injected {
		t.Fatalf("committed %d of %d", res.Committed, res.Injected)
	}
	if res.Eff100 < 0.999 {
		t.Fatalf("eff@2x = %v, want 1.0", res.Eff100)
	}
	if len(res.Series) == 0 {
		t.Fatal("no throughput series")
	}
	if _, ok := res.CommitFrac[50]; !ok {
		t.Fatal("50% commit time missing despite full commit")
	}
}

func TestRunStressedVanillaShowsLowEfficiency(t *testing.T) {
	// 5000 el/s against Vanilla's ~955 el/s capacity: the paper's Fig. 3a
	// "very low efficiency" case. Scaled to a 15 s window (8 s under
	// -short; the 5x overload makes the assertion insensitive to it).
	send := shortWindow(15*time.Second, 8*time.Second)
	res := Run(Scenario{Spec: SpecVanilla, Rate: 5000, SendFor: send,
		Horizon: 3 * send})
	if res.Eff50 > 0.3 {
		t.Fatalf("stressed Vanilla eff@send-end = %v, want << 1", res.Eff50)
	}
	if res.Committed == 0 {
		t.Fatal("stressed Vanilla committed nothing at all")
	}
}

func TestAlgorithmOrderingUnderLoad(t *testing.T) {
	// The paper's central result at 5,000 el/s (Fig. 1 left / Table 2):
	// Vanilla << Compresschain << Hashchain in average throughput to the
	// end of sending.
	send := shortWindow(20*time.Second, 10*time.Second)
	common := Scenario{Rate: 5000, SendFor: send, Horizon: 3 * send}
	v := common
	v.Spec = SpecVanilla
	c := common
	c.Spec = SpecCompress100
	h := common
	h.Spec = SpecHash100
	rv, rc, rh := Run(v), Run(c), Run(h)
	if !(rv.AvgTput < rc.AvgTput && rc.AvgTput < rh.AvgTput) {
		t.Fatalf("ordering violated: V=%.0f C=%.0f H=%.0f", rv.AvgTput, rc.AvgTput, rh.AvgTput)
	}
	// Hashchain should be at least 4x Compresschain here (paper: 4183 vs
	// 996) and Compresschain at least 3x Vanilla (996 vs 171).
	if rh.AvgTput < 3*rc.AvgTput {
		t.Fatalf("Hashchain %f not >> Compresschain %f", rh.AvgTput, rc.AvgTput)
	}
	if rc.AvgTput < 2*rv.AvgTput {
		t.Fatalf("Compresschain %f not >> Vanilla %f", rc.AvgTput, rv.AvgTput)
	}
}

func TestNetworkDelayReducesEfficiency(t *testing.T) {
	// Fig. 3c: adding 100 ms to every message slows consensus and reduces
	// efficiency under stress.
	send := shortWindow(15*time.Second, 8*time.Second)
	base := Run(Scenario{Spec: SpecCompress100, Rate: 5000, SendFor: send,
		Horizon: 3 * send})
	delayed := Run(Scenario{Spec: SpecCompress100, Rate: 5000, SendFor: send,
		Horizon: 3 * send, NetworkDelay: 100 * time.Millisecond})
	if delayed.Eff100 >= base.Eff100 {
		t.Fatalf("delay did not hurt efficiency: %v vs %v", delayed.Eff100, base.Eff100)
	}
	if delayed.Blocks >= base.Blocks {
		t.Fatalf("delay did not slow the ledger: %d vs %d blocks", delayed.Blocks, base.Blocks)
	}
}

func TestHashchainCeilingAblation(t *testing.T) {
	// Fig. 2 (left) in miniature: with hash-reversal on, Hashchain commits
	// near its CPU ceiling; the Light variant far exceeds it at the same
	// (high) sending rate.
	// 40k el/s is 2x the ~20k validation ceiling but well below the Light
	// variant's ~150k ceiling, so the gap is unambiguous even with a short
	// send window.
	send := shortWindow(15*time.Second, 8*time.Second)
	heavy := Run(Scenario{Spec: SpecHash500, Rate: 40000, SendFor: send,
		Horizon: 4 * send})
	light := Run(Scenario{Spec: AlgSpec{Alg: core.Hashchain, Collector: 500, Light: true},
		Rate: 40000, SendFor: send, Horizon: 4 * send})
	if light.Eff50 <= heavy.Eff50 {
		t.Fatalf("Light (%.2f) not better than full (%.2f) at 25k el/s",
			light.Eff50, heavy.Eff50)
	}
	// In a short window the ~4 s commit pipeline dominates eff@send-end;
	// the ceiling-free variant must still clear everything by 1.5x.
	if light.Eff75 < 0.99 {
		t.Fatalf("Light eff@1.5x = %v, want ~1 (no validation ceiling)", light.Eff75)
	}
	// The validation ceiling (~20k el/s < the 25k send rate) must visibly
	// depress the full variant at send-end even at this small scale.
	if heavy.Eff50 > 0.8*light.Eff50 {
		t.Fatalf("full Hashchain eff@send-end %.2f not depressed vs Light %.2f",
			heavy.Eff50, light.Eff50)
	}
}

func TestScaleShrinksRun(t *testing.T) {
	res := Run(Scenario{Spec: SpecHash100, Rate: 1000, Scale: 0.1, Horizon: 30 * time.Second})
	// 1000 el/s * 0.1 for 5 s => ~500 elements.
	if res.Injected < 400 || res.Injected > 600 {
		t.Fatalf("scaled injection = %d, want ~500", res.Injected)
	}
}

func TestLatencyStudySmall(t *testing.T) {
	curves := RunLatencyStudy(0.2)
	if len(curves) != 3 {
		t.Fatalf("curves = %d, want 3 algorithms", len(curves))
	}
	for _, lc := range curves {
		// Commit latency must be populated and the commit CDF must reach
		// (nearly) everything at this low rate.
		lats := lc.Stages[metrics.StageCommitted]
		if len(lats) == 0 {
			t.Fatalf("%s: no commit latencies", lc.Spec.Label())
		}
		if lc.Reach[metrics.StageCommitted] < 0.99 {
			t.Fatalf("%s: commit CDF reaches only %.2f", lc.Spec.Label(),
				lc.Reach[metrics.StageCommitted])
		}
		// Stage ordering: median first-mempool <= median ledger <= median
		// committed.
		med := func(st metrics.Stage) time.Duration {
			return metrics.LatencyQuantile(lc.Stages[st], 0.5)
		}
		if !(med(metrics.StageFirstMempool) <= med(metrics.StageLedger) &&
			med(metrics.StageLedger) <= med(metrics.StageCommitted)) {
			t.Fatalf("%s: stage medians out of order: %v %v %v", lc.Spec.Label(),
				med(metrics.StageFirstMempool), med(metrics.StageLedger),
				med(metrics.StageCommitted))
		}
	}
	// Commit latency below 4 s with probability ~1 for Compresschain and
	// Hashchain (the paper's headline finality claim).
	for _, lc := range curves[1:] {
		lats := lc.Stages[metrics.StageCommitted]
		p95 := metrics.LatencyQuantile(lats, 0.95)
		if p95 > 6*time.Second {
			t.Fatalf("%s: p95 commit latency %v, want within seconds", lc.Spec.Label(), p95)
		}
	}
}

func TestPaperGridMatchesTable1(t *testing.T) {
	g := PaperGrid()
	if len(g.SendingRates) != 4 || len(g.Collectors) != 2 ||
		len(g.ServerCounts) != 3 || len(g.NetworkDelays) != 3 {
		t.Fatalf("grid dimensions wrong: %+v", g)
	}
}

func TestFig1PanelsShape(t *testing.T) {
	panels := Fig1Panels()
	if len(panels) != 3 {
		t.Fatalf("panels = %d, want 3", len(panels))
	}
	if len(panels[0].Specs) != 3 {
		t.Fatal("left panel must include all three algorithms")
	}
	if panels[1].Rate != 10000 || panels[2].Collector != 500 {
		t.Fatal("panel parameters do not match Fig. 1")
	}
}
