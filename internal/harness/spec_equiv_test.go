package harness

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/spec"
)

// This file pins the registry-expansion refactor: the scenario lists the
// study functions now expand from internal/spec must match, cell for
// cell, the hand-written lists the pre-registry implementations built
// (reproduced below verbatim as legacy* fixtures), and running a spec
// must produce metrics identical to the equivalent hand-built Scenario.

// normalize strips presentation-only differences (the registry names
// cells, the legacy code did not) and applies the run-time defaulting
// both paths share.
func normalize(scs []Scenario) []Scenario {
	out := make([]Scenario, len(scs))
	for i, sc := range scs {
		sc = sc.withDefaults()
		sc.Name = ""
		out[i] = sc
	}
	return out
}

// legacyFig1Panels is the pre-registry Fig1Panels body.
func legacyFig1Panels() []Fig1Panel {
	return []Fig1Panel{
		{
			Name: "left", Rate: 5000, Collector: 100,
			Specs: []AlgSpec{
				SpecVanilla,
				{Alg: core.Compresschain, Collector: 100},
				{Alg: core.Hashchain, Collector: 100},
			},
			Horizon: 350 * time.Second,
		},
		{
			Name: "center", Rate: 10000, Collector: 100,
			Specs: []AlgSpec{
				{Alg: core.Compresschain, Collector: 100},
				{Alg: core.Hashchain, Collector: 100},
			},
			Horizon: 350 * time.Second,
		},
		{
			Name: "right", Rate: 10000, Collector: 500,
			Specs: []AlgSpec{
				{Alg: core.Compresschain, Collector: 500},
				{Alg: core.Hashchain, Collector: 500},
			},
			Horizon: 250 * time.Second,
		},
	}
}

// legacyLimitScenarios is the pre-registry RunLimitStudy cell list.
func legacyLimitScenarios(scale float64) ([]string, []Scenario) {
	scale = scaleOr1(scale)
	type cell struct {
		label string
		spec  AlgSpec
		rate  float64
	}
	cells := []cell{
		{"Hashchain c=500 (hash-reversal on)", SpecHash500, 25000},
		{"Hashchain Light c=500 (no hash-reversal)",
			AlgSpec{Alg: core.Hashchain, Collector: 500, Light: true}, 150000},
		{"Compresschain c=500", SpecCompress500, 25000},
		{"Compresschain Light c=500",
			AlgSpec{Alg: core.Compresschain, Collector: 500, Light: true}, 25000},
		{"Vanilla", SpecVanilla, 5000},
	}
	labels := make([]string, len(cells))
	scs := make([]Scenario, len(cells))
	for i, c := range cells {
		labels[i] = c.label
		scs[i] = Scenario{
			Spec:    c.spec,
			Rate:    c.rate,
			Horizon: time.Duration(90 * float64(time.Second) * scale),
			Scale:   scale,
		}
	}
	return labels, scs
}

// legacyEfficiencyScenarios rebuilds the pre-registry Fig. 3 grids.
func legacyEfficiencyScenarios(dim string, scale float64) ([]Scenario, []string) {
	var scs []Scenario
	var params []string
	switch dim {
	case "rate":
		for _, rate := range []float64{500, 1000, 5000, 10000} {
			for _, spec := range EfficiencySpecs() {
				scs = append(scs, Scenario{Spec: spec, Rate: rate, Scale: scale})
				params = append(params, fmt.Sprintf("%.0f el/s", rate))
			}
		}
	case "servers":
		for _, n := range []int{4, 7, 10} {
			for _, spec := range EfficiencySpecs() {
				scs = append(scs, Scenario{Spec: spec, Rate: 10000, Servers: n, Scale: scale})
				params = append(params, fmt.Sprintf("%d servers", n))
			}
		}
	case "delay":
		for _, delay := range []time.Duration{0, 30 * time.Millisecond, 100 * time.Millisecond} {
			for _, spec := range EfficiencySpecs() {
				scs = append(scs, Scenario{Spec: spec, Rate: 10000, NetworkDelay: delay, Scale: scale})
				params = append(params, delay.String())
			}
		}
	}
	return scs, params
}

// legacyLatencyScenarios is the pre-registry RunLatencyStudy cell list.
func legacyLatencyScenarios(scale float64) []Scenario {
	specs := []AlgSpec{
		SpecVanilla,
		{Alg: core.Compresschain, Collector: 100},
		{Alg: core.Hashchain, Collector: 100},
	}
	scs := make([]Scenario, len(specs))
	for i, spec := range specs {
		scs[i] = Scenario{
			Spec:  spec,
			Rate:  1250,
			Level: metrics.LevelStages,
			Scale: scale,
		}
	}
	return scs
}

func TestRegistryExpansionMatchesLegacyStudies(t *testing.T) {
	for _, scale := range []float64{0, 0.2, 1} {
		got := Fig1Panels()
		summaries := make([]Fig1Panel, len(got))
		for i, p := range got {
			p.Cells = nil // presentation summary only; cells checked below
			summaries[i] = p
		}
		if want := legacyFig1Panels(); !reflect.DeepEqual(summaries, want) {
			t.Fatalf("Fig1Panels diverged from legacy:\n got: %+v\nwant: %+v", summaries, want)
		}
		// The scenarios RunFig1Panel executes (built from registry cells)
		// must match what the legacy summary-field construction built.
		for i, p := range got {
			legacy := legacyFig1Panels()[i]
			var want []Scenario
			for _, s := range legacy.Specs {
				want = append(want, Scenario{
					Spec:    s,
					Rate:    legacy.Rate,
					Horizon: time.Duration(float64(legacy.Horizon) * scaleOr1(scale)),
					Scale:   scale,
				})
			}
			if gotScs := normalize(panelScenarios(p, scale)); !reflect.DeepEqual(gotScs, normalize(want)) {
				t.Fatalf("scale %v: panel %s scenarios diverged:\n got: %+v\nwant: %+v",
					scale, p.Name, gotScs, normalize(want))
			}
		}

		gotLabels := make([]string, 0, 5)
		for _, c := range spec.MustGet("fig2left").Cells {
			gotLabels = append(gotLabels, c.Label())
		}
		wantLabels, wantScs := legacyLimitScenarios(scale)
		if !reflect.DeepEqual(gotLabels, wantLabels) {
			t.Fatalf("fig2left labels diverged: %v vs %v", gotLabels, wantLabels)
		}
		if got := normalize(mustEntryScenarios("fig2left", scale)); !reflect.DeepEqual(got, normalize(wantScs)) {
			t.Fatalf("scale %v: fig2left scenarios diverged:\n got: %+v\nwant: %+v",
				scale, got, normalize(wantScs))
		}

		for entry, dim := range map[string]string{
			"fig3a": "rate", "fig3b": "servers", "fig3c": "delay",
			"fig5a": "rate", "fig5b": "servers", "fig5c": "delay",
		} {
			wantScs, wantParams := legacyEfficiencyScenarios(dim, scale)
			got := normalize(mustEntryScenarios(entry, scale))
			if !reflect.DeepEqual(got, normalize(wantScs)) {
				t.Fatalf("scale %v: %s scenarios diverged from legacy %s grid:\n got: %+v\nwant: %+v",
					scale, entry, dim, got, normalize(wantScs))
			}
			e := spec.MustGet(entry)
			for i, c := range e.Cells {
				if c.Group != wantParams[i] {
					t.Fatalf("%s cell %d group = %q, want %q", entry, i, c.Group, wantParams[i])
				}
			}
		}

		if got := normalize(mustEntryScenarios("fig4", scale)); !reflect.DeepEqual(got, normalize(legacyLatencyScenarios(scale))) {
			t.Fatalf("scale %v: fig4 scenarios diverged:\n got: %+v\nwant: %+v",
				scale, got, normalize(legacyLatencyScenarios(scale)))
		}
	}

	// table2 shares Fig. 1's cells; fig5 grids share Fig. 3's.
	if !reflect.DeepEqual(spec.MustGet("table2").Cells, spec.MustGet("fig1").Cells) {
		t.Fatal("table2 cells diverged from fig1")
	}
}

// metricsOf projects a Result onto its measurement fields (everything
// except the input scenario and the recorder handle).
func metricsOf(r *Result) map[string]any {
	return map[string]any{
		"injected":   r.Injected,
		"committed":  r.Committed,
		"eff50":      r.Eff50,
		"eff75":      r.Eff75,
		"eff100":     r.Eff100,
		"avgTput":    r.AvgTput,
		"series":     r.Series,
		"commitFrac": r.CommitFrac,
		"analytical": r.Analytical,
		"blocks":     r.Blocks,
		"events":     r.Events,
	}
}

func TestSpecFileMatchesRegistryFig4(t *testing.T) {
	cells, err := spec.LoadFile("../../examples/specs/fig4.json")
	if err != nil {
		t.Fatal(err)
	}
	want := spec.MustGet("fig4").Cells
	if len(cells) != len(want) {
		t.Fatalf("file has %d cells, registry %d", len(cells), len(want))
	}
	for i := range cells {
		if !reflect.DeepEqual(cells[i], want[i].WithDefaults()) {
			t.Fatalf("cell %d diverged:\nfile:     %+v\nregistry: %+v",
				i, cells[i], want[i].WithDefaults())
		}
	}
}

func TestSpecRunMatchesRegistryAndLegacyRun(t *testing.T) {
	// The acceptance check behind `setchain-bench -spec examples/specs/
	// fig4.json`: running the file-loaded spec, the registry entry and a
	// hand-built pre-refactor Scenario must yield identical metrics.
	const scale = 0.02
	cells, err := spec.LoadFile("../../examples/specs/fig4.json")
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := RunSpecs(cells, scale)
	if err != nil {
		t.Fatal(err)
	}
	fromRegistry := RunMany(mustEntryScenarios("fig4", scale))
	fromLegacy := RunMany(legacyLatencyScenarios(scale))
	for i := range fromFile {
		if !reflect.DeepEqual(metricsOf(fromFile[i]), metricsOf(fromRegistry[i])) {
			t.Fatalf("cell %d: spec-file metrics diverged from registry run:\nfile:     %+v\nregistry: %+v",
				i, metricsOf(fromFile[i]), metricsOf(fromRegistry[i]))
		}
		if !reflect.DeepEqual(metricsOf(fromRegistry[i]), metricsOf(fromLegacy[i])) {
			t.Fatalf("cell %d: registry metrics diverged from legacy hand-built run:\nregistry: %+v\nlegacy:   %+v",
				i, metricsOf(fromRegistry[i]), metricsOf(fromLegacy[i]))
		}
		// Stage CDFs come from the recorder; spot-check the commit stage.
		a, af := fromFile[i].Recorder.LatencyCDF(metrics.StageCommitted)
		b, bf := fromLegacy[i].Recorder.LatencyCDF(metrics.StageCommitted)
		if !reflect.DeepEqual(a, b) || af != bf {
			t.Fatalf("cell %d: commit-stage CDF diverged", i)
		}
	}
}

func TestFromSpecMapsEveryField(t *testing.T) {
	sp := spec.ScenarioSpec{
		Name:         "mapped",
		Algorithm:    spec.AlgHashchain,
		Collector:    500,
		Light:        true,
		Servers:      16,
		Rate:         25000,
		SendFor:      spec.Duration(40 * time.Second),
		Horizon:      spec.Duration(200 * time.Second),
		NetworkDelay: spec.Duration(30 * time.Millisecond),
		Bandwidth:    12.5e6,
		Seed:         7,
		Scale:        0.5,
		Metrics:      spec.MetricsStages,
		Crypto:       spec.CryptoFull,
		Workload:     &spec.WorkloadSpec{SizeMean: 438, SizeStdDev: 753.5, SizeMin: 96, SizeMax: 16384, Tick: spec.Duration(5 * time.Millisecond)},
		Byzantine:    &spec.ByzantineSpec{Faulty: 2, Behaviors: []string{spec.BehaviorWithholdBatches}},
	}
	sc, err := FromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Spec.Alg != core.Hashchain || sc.Spec.Collector != 500 || !sc.Spec.Light ||
		sc.Servers != 16 || sc.Rate != 25000 || sc.SendFor != 40*time.Second ||
		sc.Horizon != 200*time.Second || sc.NetworkDelay != 30*time.Millisecond ||
		sc.Bandwidth != 12.5e6 || sc.Seed != 7 || sc.Scale != 0.5 ||
		sc.Level != metrics.LevelStages || sc.Mode != core.Full ||
		sc.Sizes.Mean != 438 || sc.Tick != 5*time.Millisecond ||
		sc.Byzantine.Faulty != 2 || len(sc.Byzantine.Behaviors) != 1 {
		t.Fatalf("FromSpec dropped fields: %+v", sc)
	}
	// Run-time scaling shrinks explicit horizons.
	scaled, err := FromSpecScaled(sp, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Scale != 0.05 || scaled.Horizon != 20*time.Second {
		t.Fatalf("FromSpecScaled wrong: scale=%v horizon=%v", scaled.Scale, scaled.Horizon)
	}
	if _, err := FromSpec(spec.ScenarioSpec{Algorithm: "nope", Rate: 1}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestByzantineScenariosRun(t *testing.T) {
	// Withholding servers sign hashes but never serve batch data, so
	// elements added through them never consolidate: the run must still
	// commit the honest servers' elements.
	withhold := Run(Scenario{
		Spec: SpecHash100, Servers: 7, Rate: 210,
		SendFor: 10 * time.Second, Horizon: 60 * time.Second,
		Byzantine: ByzantineCfg{Faulty: 1, Behaviors: []string{spec.BehaviorWithholdBatches}},
	})
	if withhold.Committed == 0 {
		t.Fatal("withholding server stalled the whole system")
	}
	if withhold.Committed >= withhold.Injected {
		t.Fatalf("withheld batches still committed: %d of %d",
			withhold.Committed, withhold.Injected)
	}

	// A silent (network-down) server is a crash fault well inside the
	// consensus bound for 7 nodes; the system keeps committing.
	silent := Run(Scenario{
		Spec: SpecHash100, Servers: 7, Rate: 210,
		SendFor: 10 * time.Second, Horizon: 60 * time.Second,
		Byzantine: ByzantineCfg{Faulty: 1, Behaviors: []string{spec.BehaviorSilent}},
	})
	if silent.Committed == 0 {
		t.Fatal("one silent server of seven stalled the system")
	}

	// The same scenario through the spec layer runs identically.
	sp := spec.ScenarioSpec{
		Algorithm: spec.AlgHashchain, Collector: 100, Servers: 7, Rate: 210,
		SendFor: spec.Duration(10 * time.Second), Horizon: spec.Duration(60 * time.Second),
		Byzantine: &spec.ByzantineSpec{Faulty: 1, Behaviors: []string{spec.BehaviorWithholdBatches}},
	}
	results, err := RunSpecs([]spec.ScenarioSpec{sp}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(metricsOf(results[0]), metricsOf(withhold)) {
		t.Fatalf("spec-layer byzantine run diverged:\nspec:   %+v\ndirect: %+v",
			metricsOf(results[0]), metricsOf(withhold))
	}
}
