package harness

import (
	"testing"
	"time"

	"repro/internal/spec"
)

// faultSpecCells builds a small scenario document that exercises every
// fault mechanism: crash/restart, partition/heal, and lossy links.
func faultSpecCells(t *testing.T) []spec.ScenarioSpec {
	t.Helper()
	base := func(name string, fs *spec.FaultSpec) spec.ScenarioSpec {
		return spec.ScenarioSpec{
			Name: name, Algorithm: spec.AlgHashchain, Collector: 100,
			Servers: 4, Rate: 400,
			SendFor: spec.Duration(8 * time.Second),
			Horizon: spec.Duration(40 * time.Second),
			Seed:    7,
			Faults:  fs,
		}
	}
	return []spec.ScenarioSpec{
		base("crash-restart", &spec.FaultSpec{Events: []spec.FaultEventSpec{
			{At: spec.Duration(2 * time.Second), Action: spec.FaultCrash, Nodes: []int{3}},
			{At: spec.Duration(5 * time.Second), Action: spec.FaultRestart, Nodes: []int{3}},
		}}),
		base("partition-heal", &spec.FaultSpec{Events: []spec.FaultEventSpec{
			{At: spec.Duration(2 * time.Second), Action: spec.FaultPartition,
				Groups: [][]int{{0, 1, 2}, {3}}},
			{At: spec.Duration(6 * time.Second), Action: spec.FaultHeal},
		}}),
		base("lossy-links", &spec.FaultSpec{Events: []spec.FaultEventSpec{
			{Action: spec.FaultLink, Drop: 0.05, Duplicate: 0.02, Reorder: 0.3,
				ReorderDelay: spec.Duration(15 * time.Millisecond)},
		}}),
	}
}

// Same seed + same FaultSpec ⇒ byte-identical metrics, sequentially and on
// any worker count: fault injection must not cost the executor its
// determinism guarantee (the fault-scenario extension of
// TestRunManyMatchesSequential).
func TestFaultScenarioDeterminism(t *testing.T) {
	scs, err := FromSpecs(faultSpecCells(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	sequential := make([][]byte, len(scs))
	for i, sc := range scs {
		res := Run(sc)
		if res.Invariant != nil {
			t.Fatalf("cell %d (%s) violates safety invariants: %v",
				i, sc.Name, res.Invariant)
		}
		if res.Committed == 0 {
			t.Fatalf("cell %d (%s) committed nothing", i, sc.Name)
		}
		sequential[i] = resultFingerprint(t, res)
	}
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		parallel := RunMany(scs)
		SetWorkers(0)
		for i, res := range parallel {
			if got := resultFingerprint(t, res); string(got) != string(sequential[i]) {
				t.Fatalf("workers=%d: fault cell %d (%s) diverges from sequential run\nseq: %s\npar: %s",
					workers, i, scs[i].Name, sequential[i], got)
			}
		}
	}
}

// Every Byzantine behavior preset, run with f faulty of 3f+1 servers, must
// leave the correct servers' state satisfying every safety invariant —
// and the system must actually commit (the check cannot pass vacuously).
func TestByzantinePresetsSatisfyInvariants(t *testing.T) {
	behaviors := append(append([]string(nil), spec.Behaviors...), "all-combined")
	for _, name := range behaviors {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := ByzantineCfg{Faulty: 1, Behaviors: []string{name}}
			if name == "all-combined" {
				cfg.Behaviors = append([]string(nil), spec.Behaviors...)
			}
			res := Run(Scenario{
				Spec: SpecHash100, Servers: 4, Rate: 400,
				SendFor: 8 * time.Second, Horizon: 40 * time.Second,
				Byzantine: cfg,
			})
			if res.Invariant != nil {
				t.Fatalf("invariants violated with behavior %q: %v", name, res.Invariant)
			}
			if res.Committed == 0 {
				t.Fatalf("behavior %q: nothing committed — invariant pass is vacuous", name)
			}
		})
	}
}

// The chaos_* registry entries run end to end at reduced scale, commit,
// and hold every invariant.
func TestChaosRegistryEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos entries simulate long horizons; skipped under -short")
	}
	for _, entry := range []string{"chaos_crash", "chaos_partition", "chaos_majority", "chaos_lossy"} {
		entry := entry
		t.Run(entry, func(t *testing.T) {
			scs, err := EntryScenarios(entry, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range RunMany(scs) {
				if res.Invariant != nil {
					t.Fatalf("%s violates safety invariants: %v", entry, res.Invariant)
				}
				if res.Committed == 0 {
					t.Fatalf("%s committed nothing", entry)
				}
			}
		})
	}
}

// Composition regression: a Byzantine-silent server that a fault plan
// also crashes and restarts must stay silent — the plan's restart retracts
// only the plan's own crash. With the old single-flag SetDown, the restart
// would revive the server and the run would commit measurably more.
func TestSilentByzantineSurvivesPlanRestart(t *testing.T) {
	base := Scenario{
		Spec: SpecHash100, Servers: 7, Rate: 280,
		SendFor: 8 * time.Second, Horizon: 40 * time.Second,
		Byzantine: ByzantineCfg{Faulty: 1, Behaviors: []string{spec.BehaviorSilent}},
	}
	silentOnly := Run(base)

	withPlan := base
	withPlan.Faults = FaultPlanFromSpec(&spec.FaultSpec{Events: []spec.FaultEventSpec{
		{At: spec.Duration(2 * time.Second), Action: spec.FaultCrash, Nodes: []int{6}},
		{At: spec.Duration(4 * time.Second), Action: spec.FaultRestart, Nodes: []int{6}},
	}})
	withPlanRes := Run(withPlan)

	// The plan's crash+restart of an already-silent server is a no-op on
	// message flow: injection and commitment must match the silent-only
	// run exactly (only the two plan events themselves differ).
	if silentOnly.Injected != withPlanRes.Injected || silentOnly.Committed != withPlanRes.Committed {
		t.Fatalf("plan restart changed a Byzantine-silent run: injected %d vs %d, committed %d vs %d",
			silentOnly.Injected, withPlanRes.Injected,
			silentOnly.Committed, withPlanRes.Committed)
	}
	if withPlanRes.Invariant != nil {
		t.Fatalf("composition run violates invariants: %v", withPlanRes.Invariant)
	}
}

// FromSpec maps the declarative fault schedule onto the executable plan.
func TestFromSpecMapsFaults(t *testing.T) {
	sp := faultSpecCells(t)[1] // partition-heal
	sc, err := FromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults.Events) != 2 {
		t.Fatalf("plan has %d events, want 2", len(sc.Faults.Events))
	}
	part := sc.Faults.Events[0]
	if part.At != 2*time.Second || string(part.Kind) != spec.FaultPartition ||
		len(part.Groups) != 2 || len(part.Groups[0]) != 3 {
		t.Fatalf("partition event mapped wrong: %+v", part)
	}

	// Link fields map onto netsim.LinkFault, with the reorder-delay
	// default filled by WithDefaults.
	lossy, err := FromSpec(faultSpecCells(t)[2])
	if err != nil {
		t.Fatal(err)
	}
	lf := lossy.Faults.Events[0].Fault
	if lf.Drop != 0.05 || lf.Duplicate != 0.02 || lf.Reorder != 0.3 ||
		lf.ReorderDelay != 15*time.Millisecond {
		t.Fatalf("link fault mapped wrong: %+v", lf)
	}
}
