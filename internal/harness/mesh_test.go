package harness

import (
	"testing"

	"repro/internal/gossip"
	"repro/internal/spec"
)

// The mesh-transport acceptance gates (ISSUE 8 / DESIGN.md §13). The
// headline claims — >=2x fewer messages per committed element than
// broadcast at n=50, and liveness under the lossy fault plan — are
// enforced here at a non-trivial scale, NOT -short-skipped; the sabotage
// test at the bottom proves the liveness checks would catch a starved
// overlay.

// TestMeshMessageReduction runs the mesh_vs_broadcast entry's two cells —
// the identical n=50 workload on broadcast and on the fanout-8 mesh — and
// requires the mesh to commit with safety intact at no more than half the
// messages per committed element.
func TestMeshMessageReduction(t *testing.T) {
	cells, err := EntryScenarios("mesh_vs_broadcast", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("mesh_vs_broadcast has %d cells, want 2", len(cells))
	}
	results := make([]*Result, len(cells))
	for i, sc := range cells {
		res := Run(sc)
		if res.Invariant != nil {
			t.Fatalf("%s violates safety: %v", sc.Name, res.Invariant)
		}
		if res.Committed == 0 {
			t.Fatalf("%s committed nothing", sc.Name)
		}
		results[i] = res
	}
	bcast, mesh := results[0], results[1]
	if mesh.Gossip.Originated == 0 || mesh.Gossip.Delivered == 0 {
		t.Fatalf("mesh cell shows no gossip traffic (%+v) — transport not wired", mesh.Gossip)
	}
	bcastPer := float64(bcast.NetMsgs) / float64(bcast.Committed)
	meshPer := float64(mesh.NetMsgs) / float64(mesh.Committed)
	t.Logf("msgs/commit: broadcast %.1f (%d msgs, %d committed), mesh %.1f (%d msgs, %d committed), ratio %.2fx",
		bcastPer, bcast.NetMsgs, bcast.Committed, meshPer, mesh.NetMsgs, mesh.Committed, bcastPer/meshPer)
	if meshPer > bcastPer/2 {
		t.Fatalf("mesh uses %.1f msgs/commit, broadcast %.1f — reduction %.2fx is under the required 2x",
			meshPer, bcastPer, bcastPer/meshPer)
	}
	// The workloads must actually be comparable: same committed ballpark.
	if mesh.Committed < bcast.Committed*8/10 {
		t.Fatalf("mesh committed %d vs broadcast %d — the transports are not running the same workload",
			mesh.Committed, bcast.Committed)
	}
}

// TestMeshLivenessUnderLoss pins 3 seeds of the mesh_chaos lossy cell
// (2% drop, duplication, reordering, a mid-run delay spike — over the
// bounded-fanout overlay): every seed must keep committing with safety
// intact. Digest redundancy (~fanout disjoint paths per message) plus
// point-to-point consensus catch-up is the liveness argument.
func TestMeshLivenessUnderLoss(t *testing.T) {
	cells, err := EntryScenarios("mesh_chaos", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	lossy := cells[0]
	for _, seed := range []int64{1, 2, 3} {
		sc := lossy
		sc.Seed = seed
		sc.Name = ""
		res := Run(sc)
		if res.Invariant != nil {
			t.Fatalf("seed %d: lossy mesh run violates safety: %v", seed, res.Invariant)
		}
		if res.Committed == 0 {
			t.Fatalf("seed %d: lossy mesh run committed nothing — gossip did not survive loss", seed)
		}
		t.Logf("seed %d: injected %d committed %d, gossip %+v", seed, res.Injected, res.Committed, res.Gossip)
	}
}

// TestMeshRegistryEntries is the mesh counterpart of
// TestScaleRegistryEntries: every mesh_* cell runs end to end at reduced
// scale, commits, passes safety, and actually exercises the overlay.
func TestMeshRegistryEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole mesh_* family; skipped under -short")
	}
	for _, entry := range []string{"mesh_scale", "mesh_vs_broadcast", "mesh_chaos", "mesh_shards"} {
		cells, err := EntryScenarios(entry, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i, sc := range cells {
			res := Run(sc)
			if res.Invariant != nil {
				t.Fatalf("%s cell %d (%s) violates safety: %v", entry, i, sc.Name, res.Invariant)
			}
			if res.Committed == 0 {
				t.Fatalf("%s cell %d (%s) committed nothing", entry, i, sc.Name)
			}
			if sc.Transport == spec.TransportMesh && res.Gossip.Delivered == 0 {
				t.Fatalf("%s cell %d (%s) shows no gossip deliveries — overlay not in the path", entry, i, sc.Name)
			}
		}
	}
}

// TestMeshBrokenExpiryStallsCommits sabotages the relay queue expiry so
// every flush drains nothing: the overlay starves, consensus can make no
// progress, and the Committed>0 checks the sweeps rely on must trip. If
// this run still commits, those checks are vacuous for mesh cells.
func TestMeshBrokenExpiryStallsCommits(t *testing.T) {
	cells, err := EntryScenarios("mesh_vs_broadcast", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mesh := cells[1]
	gossip.SetBreakExpiryForTest(true)
	defer gossip.SetBreakExpiryForTest(false)
	res := Run(mesh)
	if res.Committed != 0 {
		t.Fatalf("starved overlay still committed %d elements — the Committed>0 liveness checks are vacuous for mesh cells", res.Committed)
	}
}
