package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/spec"
)

// The sync_* registry family end to end: chunked checkpoint state-sync
// under constrained bandwidth and small chunks still recovers the crashed
// server and commits everything; the forged-snapshot cells reject every
// Byzantine offer and recover from honest peers with safety intact.
func TestSyncRegistryEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("sync entries simulate 120 s horizons; skipped under -short")
	}
	for _, entry := range []string{"sync_transfer", "sync_forged"} {
		entry := entry
		t.Run(entry, func(t *testing.T) {
			scs, err := EntryScenarios(entry, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range RunMany(scs) {
				if res.Invariant != nil {
					t.Fatalf("%s (%s) violates safety invariants: %v",
						entry, res.Scenario.Name, res.Invariant)
				}
				if res.Committed == 0 {
					t.Fatalf("%s (%s) committed nothing", entry, res.Scenario.Name)
				}
				if res.CheckpointSeals == 0 {
					t.Fatalf("%s (%s) sealed no checkpoints", entry, res.Scenario.Name)
				}
				if res.SyncInstalls == 0 {
					t.Fatalf("%s (%s): crashed server recovered without state-sync — "+
						"the transfer path was not exercised", entry, res.Scenario.Name)
				}
				if res.CkptDigest == 0 {
					t.Fatalf("%s (%s): no cross-server checkpoint digest", entry, res.Scenario.Name)
				}
			}
		})
	}
}

// syncForgedScenario surrounds a recovering honest server with
// forge-snapshot Byzantine peers: servers 2..4 of 5 corrupt every snapshot
// they serve, honest server 1 is crashed until its gap is pruned
// everywhere, so its recovery MUST go through state-sync and its offers
// overwhelmingly come from forgers. Used by both the post-fix test (every
// forged offer rejected, recovery completes honestly) and the sabotage
// test (with the header-bind check disabled the forgery installs and the
// safety checker must catch it).
func syncForgedScenario(seed int64) Scenario {
	return Scenario{
		Name: fmt.Sprintf("sync-forged-gauntlet seed=%d", seed),
		Spec: SpecHash100, Servers: 5, Rate: 400,
		SendFor: 20 * time.Second, Horizon: 60 * time.Second,
		Seed:               seed,
		CheckpointInterval: 4,
		Prune:              true,
		Byzantine: ByzantineCfg{
			Faulty:    3,
			Behaviors: []string{spec.BehaviorForgeSnapshot},
		},
		Faults: FaultPlanFromSpec(&spec.FaultSpec{Events: []spec.FaultEventSpec{
			{At: spec.Duration(3 * time.Second), Action: spec.FaultCrash, Nodes: []int{1}},
			{At: spec.Duration(13 * time.Second), Action: spec.FaultRestart, Nodes: []int{1}},
		}}),
	}
}

// Post-fix behavior on the forged gauntlet: the recovering server verifies
// every snapshot offer against the checkpoint commitment bound into the
// 2f+1-certified block header, rejects the forgeries (SyncRejected > 0 —
// the seed is pinned so a forger demonstrably served it first), completes
// recovery from an honest peer, and no safety invariant breaks.
func TestSyncForgedSnapshotRejected(t *testing.T) {
	res := Run(syncForgedScenario(1))
	if res.Invariant != nil {
		t.Fatalf("safety violated despite header binding: %v", res.Invariant)
	}
	if res.Committed == 0 {
		t.Fatal("committed nothing")
	}
	if res.SyncInstalls == 0 {
		t.Fatal("recovering server never state-synced; the gauntlet is vacuous")
	}
	if res.SyncRejected == 0 {
		t.Fatal("no forged offer was rejected — the recovering server never " +
			"contacted a forger, so this scenario does not prove the defense")
	}
}

// Non-vacuity: with the requester-side header-bind verification sabotaged
// (exactly the pre-fix trust model — install whatever a peer serves), the
// SAME run installs a forged snapshot and the invariant checker flags the
// smuggled bogus elements. If this test fails, either the forgery preset
// no longer produces locally-installable snapshots or the safety checker
// went blind below the prune horizon.
func TestSyncSabotagedHeaderBindInstallsForgery(t *testing.T) {
	consensus.BreakHeaderBindForTest = true
	defer func() { consensus.BreakHeaderBindForTest = false }()
	res := Run(syncForgedScenario(1))
	if res.SyncInstalls == 0 {
		t.Fatal("recovering server never state-synced; the sabotage run is vacuous")
	}
	if res.SyncRejected != 0 {
		t.Fatalf("sabotaged requester still rejected %d offers — the sabotage hook is dead",
			res.SyncRejected)
	}
	if res.Invariant == nil {
		t.Fatal("forged snapshot installed without tripping any safety invariant — " +
			"the vulnerability this PR closes would be invisible")
	}
	if msg := res.Invariant.Error(); !strings.Contains(msg, "bogus") {
		t.Fatalf("violation does not mention the smuggled bogus elements: %v", res.Invariant)
	}
}
