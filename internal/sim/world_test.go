package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestWorldTieBreaksByCreationOrder pins the at-tie contract that makes
// partitioned runs byte-identical to the single-queue schedule: events with
// the same timestamp run in creation order even when they live on different
// queues. The same schedule is built on a plain Simulator and on a World
// (the plain path is the spec; the World must match it), in both creation
// orders.
func TestWorldTieBreaksByCreationOrder(t *testing.T) {
	build := func(first, second func(at time.Duration, fn func())) func() []string {
		var log []string
		first(100, func() { log = append(log, "first") })
		second(100, func() { log = append(log, "second") })
		return func() []string { return log }
	}

	for _, homeFirst := range []bool{false, true} {
		// Spec: plain single-queue simulator.
		s := New(1)
		wantLog := build(
			func(at time.Duration, fn func()) { s.At(at, fn) },
			func(at time.Duration, fn func()) { s.At(at, fn) },
		)
		s.RunUntil(200)
		want := fmt.Sprint(wantLog())

		// World: one of the two events lives on a partition queue. The home
		// event bounds the round (H == W == 100), so both sides meet at the
		// barrier merge.
		w := NewWorld(1, 2, 2)
		onHome := func(at time.Duration, fn func()) { w.Home().At(at, fn) }
		onPart := func(at time.Duration, fn func()) { w.Part(1).At(at, fn) }
		var gotLog func() []string
		if homeFirst {
			gotLog = build(onHome, onPart)
		} else {
			gotLog = build(onPart, onHome)
		}
		w.RunUntil(200)
		if got := fmt.Sprint(gotLog()); got != want {
			t.Fatalf("homeFirst=%v: World ran %s, single queue ran %s", homeFirst, got, want)
		}
	}
}

// TestWorldMergeRunsNewSameTimeEvents: an event at the barrier timestamp
// that creates another event at the same timestamp (a zero-delay follow-up,
// like a zero-cost CPU grant) must see it run in the same merge, after every
// older event at that timestamp — exactly the single-queue order.
func TestWorldMergeRunsNewSameTimeEvents(t *testing.T) {
	w := NewWorld(1, 2, 1)
	var log []string
	w.Part(0).At(50, func() { log = append(log, "older-part") })
	w.Home().At(50, func() {
		log = append(log, "home")
		w.Part(0).At(50, func() { log = append(log, "grant") })
	})
	w.RunUntil(100)
	if got := fmt.Sprint(log); got != "[older-part home grant]" {
		t.Fatalf("merge order %s, want [older-part home grant]", got)
	}
	if w.Executed() != 3 {
		t.Fatalf("Executed = %d, want 3", w.Executed())
	}
}

// TestWorldInboxMergeOrder: same-timestamp cross-partition arrivals merge in
// (at, srcPart, srcSeq) order regardless of arrival order, and the
// BreakMergeOrderForTest sabotage switch visibly reverts to arrival order —
// proving the sort is load-bearing, not decorative.
func TestWorldInboxMergeOrder(t *testing.T) {
	run := func(breakOrder bool) []string {
		w := NewWorld(1, 3, 1)
		if breakOrder {
			w.BreakMergeOrderForTest()
		}
		var log []string
		// Arrival order deliberately reversed from the merge key order:
		// partition 1's send lands in the inbox first, then partition 0's,
		// both for the same destination timestamp.
		w.Part(1).SendCross(w.Part(2), 10, func() { log = append(log, "from-p1") })
		w.Part(0).SendCross(w.Part(2), 10, func() { log = append(log, "from-p0") })
		w.RunUntil(20)
		return log
	}
	if got := fmt.Sprint(run(false)); got != "[from-p0 from-p1]" {
		t.Fatalf("sorted merge ran %s, want [from-p0 from-p1]", got)
	}
	if got := fmt.Sprint(run(true)); got != "[from-p1 from-p0]" {
		t.Fatalf("arrival-order merge ran %s, want [from-p1 from-p0]", got)
	}
}

// TestWorldCrossTrafficDeterministicAcrossWorkers runs a cross-partition
// ping-pong workload — each partition forwards a token to the next with the
// lookahead delay, and home injects new tokens on a fixed cadence — at
// several worker widths and requires identical per-partition execution
// traces. Traces are recorded partition-locally (only that partition's
// events append), so recording is race-free by the same argument that makes
// the execution correct.
func TestWorldCrossTrafficDeterministicAcrossWorkers(t *testing.T) {
	const (
		parts    = 4
		L        = 7 * time.Millisecond
		deadline = 500 * time.Millisecond
	)
	run := func(workers int) []string {
		w := NewWorld(42, parts, workers)
		w.SetLookahead(func() time.Duration { return L })
		logs := make([][]string, parts)
		var hop func(p int, token int) func()
		hop = func(p, token int) func() {
			return func() {
				self := w.Part(p)
				logs[p] = append(logs[p], fmt.Sprintf("%d@%v", token, self.Now()))
				next := (p + 1) % parts
				self.SendCross(w.Part(next), self.Now()+L, hop(next, token))
			}
		}
		for token := 0; token < 3; token++ {
			token := token
			at := time.Duration(token+1) * 10 * time.Millisecond
			w.Home().At(at, func() {
				w.Part(token%parts).At(at, hop(token%parts, token))
			})
		}
		w.RunUntil(deadline)
		if w.Home().Now() != deadline {
			t.Fatalf("home clock %v, want %v", w.Home().Now(), deadline)
		}
		return []string{fmt.Sprint(logs)}
	}
	want := run(1)[0]
	for _, workers := range []int{2, 3, 4, 8} {
		if got := run(workers)[0]; got != want {
			t.Fatalf("workers=%d trace diverges\nwant %s\ngot  %s", workers, want, got)
		}
	}
}

// TestWorldExecutionMonotonicPerQueue: lookahead-bounded rounds must never
// run a partition past an incoming cross event — observable as a timestamp
// regression on the destination queue, which step() turns into a panic.
// This drives dense local events against slower cross sends and succeeding
// is the absence of that panic plus full delivery.
func TestWorldExecutionMonotonicPerQueue(t *testing.T) {
	const L = time.Millisecond
	w := NewWorld(7, 2, 2)
	w.SetLookahead(func() time.Duration { return L })
	delivered := 0
	// Partition 1: dense local ticks, eager to run ahead.
	var tick func()
	tick = func() {
		if w.Part(1).Now() < 80*time.Millisecond {
			w.Part(1).After(10*time.Microsecond, tick)
		}
	}
	w.Part(1).At(0, tick)
	// Partition 0: a stream of cross sends at exactly the lookahead bound.
	var send func(i int)
	send = func(i int) {
		if i >= 50 {
			return
		}
		src := w.Part(0)
		src.SendCross(w.Part(1), src.Now()+L, func() { delivered++ })
		src.After(time.Millisecond, func() { send(i + 1) })
	}
	w.Part(0).At(0, func() { send(0) })
	w.RunUntil(100 * time.Millisecond)
	if delivered != 50 {
		t.Fatalf("delivered %d cross events, want 50", delivered)
	}
}

// TestWorldRejectsNonPositiveLookahead: a zero or negative window cannot
// bound a round; the World must fail loudly instead of deadlocking or
// silently serializing.
func TestWorldRejectsNonPositiveLookahead(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil accepted a non-positive lookahead")
		}
	}()
	w := NewWorld(1, 2, 1)
	w.SetLookahead(func() time.Duration { return 0 })
	w.Part(0).At(10, func() {})
	w.RunUntil(20)
}
