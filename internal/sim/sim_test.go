package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.After(time.Second, func() { fired = true })
	ev.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	ev.Cancel()
	var zero Event
	zero.Cancel()
}

func TestCancelRemovesFromQueue(t *testing.T) {
	s := New(1)
	var evs []Event
	for i := 0; i < 10; i++ {
		evs = append(evs, s.After(time.Duration(i+1)*time.Second, func() {}))
	}
	if s.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", s.Pending())
	}
	// Cancel from the middle, the head, and the tail of the queue.
	for _, i := range []int{5, 0, 9} {
		evs[i].Cancel()
	}
	if s.Pending() != 7 {
		t.Fatalf("pending after 3 cancels = %d, want 7 (canceled events must leave the queue)", s.Pending())
	}
	for _, i := range []int{5, 0, 9} {
		if evs[i].Scheduled() {
			t.Fatalf("event %d still scheduled after cancel", i)
		}
	}
	fired := 0
	s.Run()
	if fired = int(s.Executed()); fired != 7 {
		t.Fatalf("executed = %d, want 7", fired)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", s.Pending())
	}
}

// A handle whose event already fired must stay inert even after its
// internal slot is recycled for a newer event.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	s := New(1)
	first := s.After(time.Second, func() {})
	s.Run() // first fires; its slot returns to the free list
	fired := false
	second := s.After(time.Second, func() { fired = true })
	first.Cancel() // stale: must not touch the recycled slot
	if !second.Scheduled() {
		t.Fatal("stale Cancel removed a newer event occupying the recycled slot")
	}
	s.Run()
	if !fired {
		t.Fatal("second event did not fire")
	}
}

// Canceling some same-time events must not disturb FIFO order among the
// survivors.
func TestCancelPreservesSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	var evs []Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, s.At(time.Second, func() { got = append(got, i) }))
	}
	for i := 0; i < 20; i += 3 {
		evs[i].Cancel()
	}
	s.Run()
	prev := -1
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("canceled event %d fired", v)
		}
		if v <= prev {
			t.Fatalf("FIFO order broken after cancels: %v", got)
		}
		prev = v
	}
	if len(got) != 13 {
		t.Fatalf("survivors = %d, want 13", len(got))
	}
}

// Property: with an arbitrary schedule/cancel interleaving, surviving
// events fire in exact (time, insertion) order.
func TestQuickCancelOrderInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(11)
		type rec struct {
			at  time.Duration
			seq int
		}
		var fired []rec
		var live []Event
		seq := 0
		for _, op := range ops {
			if op%5 == 0 && len(live) > 0 {
				idx := int(op/5) % len(live)
				live[idx].Cancel()
				live = append(live[:idx], live[idx+1:]...)
				continue
			}
			d := time.Duration(op%1000) * time.Millisecond
			n := seq
			seq++
			live = append(live, s.After(d, func() {
				fired = append(fired, rec{at: s.Now(), seq: n})
			}))
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The schedule/pop path must not allocate (amortized): event state is
// recycled through the slab free list and the heap holds plain values.
// The closure passed to After is hoisted outside the measured region so
// only kernel allocations are counted.
func TestScheduleRunAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm up the slab and heap capacity.
	for i := 0; i < 4096; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			s.After(time.Duration(i%16)*time.Microsecond, fn)
		}
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("schedule/pop path allocates %.2f/run, want 0", avg)
	}
}

// Cancel must also be allocation-free.
func TestCancelAllocFree(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run()
	avg := testing.AllocsPerRun(200, func() {
		evs := [8]Event{}
		for i := range evs {
			evs[i] = s.After(time.Duration(i)*time.Microsecond, fn)
		}
		for i := range evs {
			evs[i].Cancel()
		}
	})
	if avg != 0 {
		t.Fatalf("schedule/cancel path allocates %.2f/run, want 0", avg)
	}
}

func TestScheduleInPastRunsNow(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.After(5*time.Second, func() {
		s.At(time.Second, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 5*time.Second {
		t.Fatalf("past-scheduled event ran at %v, want 5s", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(4 * time.Second)
	if count != 4 {
		t.Fatalf("events run = %d, want 4", count)
	}
	if s.Now() != 4*time.Second {
		t.Fatalf("Now = %v, want 4s", s.Now())
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", s.Pending())
	}
	s.RunUntil(20 * time.Second)
	if count != 10 {
		t.Fatalf("events run = %d, want 10", count)
	}
	if s.Now() != 20*time.Second {
		t.Fatalf("Now advanced to %v, want 20s", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Halt", count)
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestRecursiveScheduling(t *testing.T) {
	s := New(1)
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			s.After(10*time.Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
	if want := 990 * time.Millisecond; s.Now() != want {
		t.Fatalf("Now = %v, want %v", s.Now(), want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var trace []int64
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.After(d, func() { trace = append(trace, int64(s.Now())) })
		}
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different trace lengths for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil event fn")
		}
	}()
	New(1).After(0, nil)
}

func TestResourceSerialization(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	var done []time.Duration
	// Three jobs submitted simultaneously must run back to back.
	s.After(0, func() {
		r.Submit(100*time.Millisecond, func() { done = append(done, s.Now()) })
		r.Submit(200*time.Millisecond, func() { done = append(done, s.Now()) })
		r.Submit(300*time.Millisecond, func() { done = append(done, s.Now()) })
	})
	s.Run()
	want := []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, 600 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if r.Jobs() != 3 {
		t.Fatalf("jobs = %d, want 3", r.Jobs())
	}
	if r.BusyTime() != 600*time.Millisecond {
		t.Fatalf("busy = %v, want 600ms", r.BusyTime())
	}
}

func TestResourceIdleGap(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	var second time.Duration
	s.After(0, func() { r.Submit(50*time.Millisecond, nil) })
	// Submitted after the first completes: starts at its submit time.
	s.After(time.Second, func() {
		r.Submit(50*time.Millisecond, func() { second = s.Now() })
	})
	s.Run()
	if want := 1050 * time.Millisecond; second != want {
		t.Fatalf("second completion = %v, want %v", second, want)
	}
	if r.Backlog() != 0 {
		t.Fatalf("backlog = %v, want 0 at end", r.Backlog())
	}
}

func TestResourceNegativeCost(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	fired := false
	s.After(time.Second, func() { r.Submit(-5, func() { fired = true }) })
	s.Run()
	if !fired {
		t.Fatal("zero-cost job did not complete")
	}
	if s.Now() != time.Second {
		t.Fatalf("negative cost advanced time: %v", s.Now())
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	s.After(0, func() { r.Submit(time.Second, nil) })
	s.At(2*time.Second, func() {})
	s.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the clock ends at the maximum delay.
func TestQuickEventOrderInvariant(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		s := New(7)
		var fired []time.Duration
		var maxD time.Duration
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			if d > maxD {
				maxD = d
			}
			s.After(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a serial resource never overlaps jobs — total completion time of
// simultaneously submitted jobs equals the sum of costs.
func TestQuickResourceSerialInvariant(t *testing.T) {
	f := func(costsMs []uint8) bool {
		s := New(3)
		r := s.NewResource("cpu")
		var total time.Duration
		var last time.Duration
		s.After(0, func() {
			for _, c := range costsMs {
				d := time.Duration(c) * time.Millisecond
				total += d
				r.Submit(d, func() { last = s.Now() })
			}
		})
		s.Run()
		if len(costsMs) == 0 {
			return true
		}
		return last == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandStreamIsSeeded(t *testing.T) {
	a := New(99).Rand().Int63()
	b := New(99).Rand().Int63()
	if a != b {
		t.Fatal("same seed produced different random streams")
	}
	c := rand.New(rand.NewSource(100)).Int63()
	_ = c // different seeds almost surely differ; no assertion needed
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.Pending() > 10000 {
			s.Run()
		}
	}
	s.Run()
}
