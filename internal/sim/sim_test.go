package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.After(time.Second, func() { fired = true })
	ev.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double-cancel and nil-cancel are no-ops.
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel()
}

func TestScheduleInPastRunsNow(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.After(5*time.Second, func() {
		s.At(time.Second, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 5*time.Second {
		t.Fatalf("past-scheduled event ran at %v, want 5s", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(4 * time.Second)
	if count != 4 {
		t.Fatalf("events run = %d, want 4", count)
	}
	if s.Now() != 4*time.Second {
		t.Fatalf("Now = %v, want 4s", s.Now())
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", s.Pending())
	}
	s.RunUntil(20 * time.Second)
	if count != 10 {
		t.Fatalf("events run = %d, want 10", count)
	}
	if s.Now() != 20*time.Second {
		t.Fatalf("Now advanced to %v, want 20s", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Halt", count)
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestRecursiveScheduling(t *testing.T) {
	s := New(1)
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			s.After(10*time.Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
	if want := 990 * time.Millisecond; s.Now() != want {
		t.Fatalf("Now = %v, want %v", s.Now(), want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var trace []int64
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.After(d, func() { trace = append(trace, int64(s.Now())) })
		}
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different trace lengths for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil event fn")
		}
	}()
	New(1).After(0, nil)
}

func TestResourceSerialization(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	var done []time.Duration
	// Three jobs submitted simultaneously must run back to back.
	s.After(0, func() {
		r.Submit(100*time.Millisecond, func() { done = append(done, s.Now()) })
		r.Submit(200*time.Millisecond, func() { done = append(done, s.Now()) })
		r.Submit(300*time.Millisecond, func() { done = append(done, s.Now()) })
	})
	s.Run()
	want := []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, 600 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if r.Jobs() != 3 {
		t.Fatalf("jobs = %d, want 3", r.Jobs())
	}
	if r.BusyTime() != 600*time.Millisecond {
		t.Fatalf("busy = %v, want 600ms", r.BusyTime())
	}
}

func TestResourceIdleGap(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	var second time.Duration
	s.After(0, func() { r.Submit(50*time.Millisecond, nil) })
	// Submitted after the first completes: starts at its submit time.
	s.After(time.Second, func() {
		r.Submit(50*time.Millisecond, func() { second = s.Now() })
	})
	s.Run()
	if want := 1050 * time.Millisecond; second != want {
		t.Fatalf("second completion = %v, want %v", second, want)
	}
	if r.Backlog() != 0 {
		t.Fatalf("backlog = %v, want 0 at end", r.Backlog())
	}
}

func TestResourceNegativeCost(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	fired := false
	s.After(time.Second, func() { r.Submit(-5, func() { fired = true }) })
	s.Run()
	if !fired {
		t.Fatal("zero-cost job did not complete")
	}
	if s.Now() != time.Second {
		t.Fatalf("negative cost advanced time: %v", s.Now())
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New(1)
	r := s.NewResource("cpu")
	s.After(0, func() { r.Submit(time.Second, nil) })
	s.At(2*time.Second, func() {})
	s.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the clock ends at the maximum delay.
func TestQuickEventOrderInvariant(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		s := New(7)
		var fired []time.Duration
		var maxD time.Duration
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			if d > maxD {
				maxD = d
			}
			s.After(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a serial resource never overlaps jobs — total completion time of
// simultaneously submitted jobs equals the sum of costs.
func TestQuickResourceSerialInvariant(t *testing.T) {
	f := func(costsMs []uint8) bool {
		s := New(3)
		r := s.NewResource("cpu")
		var total time.Duration
		var last time.Duration
		s.After(0, func() {
			for _, c := range costsMs {
				d := time.Duration(c) * time.Millisecond
				total += d
				r.Submit(d, func() { last = s.Now() })
			}
		})
		s.Run()
		if len(costsMs) == 0 {
			return true
		}
		return last == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandStreamIsSeeded(t *testing.T) {
	a := New(99).Rand().Int63()
	b := New(99).Rand().Int63()
	if a != b {
		t.Fatal("same seed produced different random streams")
	}
	c := rand.New(rand.NewSource(100)).Int63()
	_ = c // different seeds almost surely differ; no assertion needed
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if s.Pending() > 10000 {
			s.Run()
		}
	}
	s.Run()
}
