// Package sim provides a deterministic discrete-event simulator with a
// virtual clock. All Setchain evaluation scenarios run on this kernel so
// that a 100-virtual-second experiment completes in milliseconds of wall
// time and is exactly reproducible for a given seed.
//
// The simulator is single-threaded by design: every event handler runs to
// completion before the next event fires, which gives the actor-style
// components built on top (network, consensus, Setchain servers) atomic
// per-event semantics without locks. CPU-bound work is modeled explicitly
// with Resource (see resource.go) rather than by burning wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	halted bool

	// Executed counts events run since creation; useful for budget checks
	// and for asserting determinism across runs.
	executed uint64
}

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// New creates a simulator whose random stream is derived from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random stream. Components must
// draw randomness only from here to preserve reproducibility.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// At schedules fn at absolute virtual time t. Scheduling in the past (or at
// the present) runs the event at the current time, after already-pending
// events for that time, preserving FIFO order among same-time events.
func (s *Simulator) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn d from now. Negative d behaves like d == 0.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Halt stops the run loop after the current event completes. Pending events
// remain queued; a subsequent Run or RunUntil resumes them.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events until the queue is empty or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		s.step()
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	s.halted = false
	for len(s.queue) > 0 && !s.halted && s.queue[0].at <= deadline {
		s.step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued (possibly canceled) events.
func (s *Simulator) Pending() int { return len(s.queue) }

func (s *Simulator) step() {
	ev := heap.Pop(&s.queue).(*Event)
	if ev.canceled {
		return
	}
	if ev.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, s.now))
	}
	s.now = ev.at
	s.executed++
	ev.fn()
}

// eventQueue is a binary heap ordered by (time, insertion sequence) so that
// simultaneous events fire in the order they were scheduled.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
