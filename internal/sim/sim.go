// Package sim provides a deterministic discrete-event simulator with a
// virtual clock. All Setchain evaluation scenarios run on this kernel so
// that a 100-virtual-second experiment completes in milliseconds of wall
// time and is exactly reproducible for a given seed.
//
// The simulator is single-threaded by design: every event handler runs to
// completion before the next event fires, which gives the actor-style
// components built on top (network, consensus, Setchain servers) atomic
// per-event semantics without locks. CPU-bound work is modeled explicitly
// with Resource (see resource.go) rather than by burning wall-clock time.
//
// The event queue is built for the allocation budget of multi-million-event
// sweeps (DESIGN.md §6): event state lives in a slab recycled through a
// free list, the priority queue is a 4-ary heap of plain values (no
// interface boxing, no per-event pointer), and Cancel removes the event
// from the heap immediately instead of leaving a tombstone to surface at
// its timestamp. The steady-state schedule/pop path performs zero heap
// allocations.
//
// See DESIGN.md §6 (performance engineering).
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now    time.Duration
	heap   []heapEntry // 4-ary min-heap ordered by (at, seq)
	nodes  []eventNode // slab of event state, indexed by slot
	free   []int32     // recycled slots
	seq    uint64      // standalone: next-seq counter; in a World: per-round creation count (see nextSeq)
	rng    *rand.Rand
	seed   int64
	halted bool

	// Executed counts events run since creation; useful for budget checks
	// and for asserting determinism across runs.
	executed uint64

	// Partition identity when this simulator is one partition of a World
	// (world.go). pidx is -1 for standalone simulators and the World's home
	// queue. crossSeq numbers this partition's outgoing cross-partition
	// events so inbox merges have a deterministic per-source order.
	world    *World
	pidx     int
	crossSeq uint64

	// inbox holds cross-partition events sent to this partition during a
	// round. It is the ONLY concurrently touched state of a Simulator:
	// source partitions append under the mutex while this partition runs,
	// and the World drains it into the heap at the next round barrier.
	inboxMu sync.Mutex
	inbox   []inboxEntry
}

// inboxEntry is one cross-partition event awaiting the round barrier.
// (srcPart, srcSeq) is the deterministic merge key: srcSeq is assigned in
// the source partition's execution order, which does not depend on how
// partitions are scheduled onto workers.
type inboxEntry struct {
	at      time.Duration
	srcPart int
	srcSeq  uint64
	fn      func()
}

// heapEntry is one queue position. Keeping the ordering key inline (rather
// than chasing a pointer into the slab) keeps sift comparisons cache-local.
type heapEntry struct {
	at   time.Duration
	seq  uint64
	slot int32
}

// eventNode is the slab-resident state of one scheduled event. gen
// increments every time the slot is recycled, which lets stale Event
// handles detect that their event already fired or was canceled.
type eventNode struct {
	fn      func()
	at      time.Duration
	gen     uint32
	heapIdx int32 // position in Simulator.heap, -1 when not queued
}

// Event is a cancelable handle to a scheduled callback. It is a small
// value (not a pointer): copies refer to the same underlying event, and the
// zero Event is inert. Handles remain safe after the event fires or is
// canceled — Cancel on a spent handle is a no-op even if the internal slot
// has been recycled for a newer event.
type Event struct {
	s    *Simulator
	at   time.Duration
	slot int32
	gen  uint32
}

// Cancel prevents the event from firing and removes it from the queue.
// Canceling an already-fired or already-canceled event (or the zero Event)
// is a no-op.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	n := &e.s.nodes[e.slot]
	if n.gen != e.gen || n.heapIdx < 0 {
		return // already fired, canceled, or slot recycled
	}
	e.s.removeAt(int(n.heapIdx))
	e.s.release(e.slot)
}

// At returns the virtual time the event was scheduled for.
func (e Event) At() time.Duration { return e.at }

// Scheduled reports whether the handle refers to an event still pending in
// the queue.
func (e Event) Scheduled() bool {
	if e.s == nil {
		return false
	}
	n := &e.s.nodes[e.slot]
	return n.gen == e.gen && n.heapIdx >= 0
}

// New creates a simulator whose random stream is derived from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), seed: seed, pidx: -1}
}

// Seed returns the seed the simulator (or its World) was created with.
// Components that need their own decorrelated random streams (e.g. the
// per-node streams in netsim) derive them from this value so the streams
// are identical whether or not the run is partitioned.
func (s *Simulator) Seed() int64 { return s.seed }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random stream. Components must
// draw randomness only from here to preserve reproducibility.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// At schedules fn at absolute virtual time t. Scheduling in the past (or at
// the present) runs the event at the current time, after already-pending
// events for that time, preserving FIFO order among same-time events.
func (s *Simulator) At(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < s.now {
		t = s.now
	}
	seq := s.nextSeq()
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.nodes = append(s.nodes, eventNode{})
		slot = int32(len(s.nodes) - 1)
	}
	n := &s.nodes[slot]
	n.fn = fn
	n.at = t
	n.heapIdx = int32(len(s.heap))
	s.heap = append(s.heap, heapEntry{at: t, seq: seq, slot: slot})
	s.siftUp(len(s.heap) - 1)
	return Event{s: s, at: t, slot: slot, gen: n.gen}
}

// nextSeq allocates the event's position in the (at, seq) total order. A
// standalone simulator numbers from its own counter. Simulators belonging
// to a World share ONE counter, so an event created later in the run's
// sequential order sorts later at timestamp ties no matter which queue it
// lands on — this is what makes a barrier's merged execution byte-identical
// to the single-queue schedule. During a concurrent round each partition
// allocates from a private window above the shared base (base + its own
// creation count); the values are deterministic because each partition's
// creation order is, and windows of different partitions may overlap only
// for events that never share a queue (the barrier merge breaks the
// residual cross-queue tie by partition index).
func (s *Simulator) nextSeq() uint64 {
	if w := s.world; w != nil {
		if w.inRound {
			s.seq++
			return w.seqBase + s.seq
		}
		w.seqBase++
		return w.seqBase
	}
	s.seq++
	return s.seq
}

// After schedules fn d from now. Negative d behaves like d == 0.
func (s *Simulator) After(d time.Duration, fn func()) Event {
	return s.At(s.now+d, fn)
}

// Halt stops the run loop after the current event completes. Pending events
// remain queued; a subsequent Run or RunUntil resumes them.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events until the queue is empty or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		s.step()
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	s.halted = false
	for len(s.heap) > 0 && !s.halted && s.heap[0].at <= deadline {
		s.step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events. Canceled events are removed
// eagerly and never counted.
func (s *Simulator) Pending() int { return len(s.heap) }

func (s *Simulator) step() {
	top := s.heap[0]
	s.removeAt(0)
	n := &s.nodes[top.slot]
	if top.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", top.at, s.now))
	}
	fn := n.fn
	s.release(top.slot)
	s.now = top.at
	s.executed++
	fn()
}

// release recycles a slot: the generation bump invalidates outstanding
// handles and the fn reference is dropped so the closure can be collected.
func (s *Simulator) release(slot int32) {
	n := &s.nodes[slot]
	n.fn = nil
	n.gen++
	n.heapIdx = -1
	s.free = append(s.free, slot)
}

// --- 4-ary heap ordered by (at, seq) ---
//
// A 4-ary layout halves tree depth versus binary, trading slightly wider
// sift-down scans for fewer cache-missing levels — the standard choice for
// simulation event queues where pops dominate.

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(e, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.nodes[s.heap[i].slot].heapIdx = int32(i)
		i = parent
	}
	s.heap[i] = e
	s.nodes[e.slot].heapIdx = int32(i)
}

func (s *Simulator) siftDown(i int) {
	e := s.heap[i]
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if !entryLess(s.heap[min], e) {
			break
		}
		s.heap[i] = s.heap[min]
		s.nodes[s.heap[i].slot].heapIdx = int32(i)
		i = min
	}
	s.heap[i] = e
	s.nodes[e.slot].heapIdx = int32(i)
}

// removeAt deletes the heap entry at index i, restoring heap order.
func (s *Simulator) removeAt(i int) {
	n := len(s.heap) - 1
	moved := s.heap[n]
	s.heap = s.heap[:n]
	if i == n {
		return
	}
	s.heap[i] = moved
	s.nodes[moved.slot].heapIdx = int32(i)
	// The moved entry may need to travel either direction.
	s.siftDown(i)
	s.siftUp(s.int32HeapIdx(moved.slot))
}

func (s *Simulator) int32HeapIdx(slot int32) int {
	return int(s.nodes[slot].heapIdx)
}

// --- partitioned execution (see world.go) ---

// Partition returns the index of this simulator within its World, or -1 for
// standalone simulators and a World's home queue.
func (s *Simulator) Partition() int { return s.pidx }

// SendCross schedules fn at absolute time at on the destination partition's
// queue. It must be called from an event executing on s (the source
// partition); the destination only sees the event after the next round
// barrier, which is safe as long as at is at least the World's lookahead
// ahead of the source clock — the caller (netsim) guarantees that by
// construction, since at includes the cross-partition link delay.
//
// The (source partition, source sequence) pair recorded here is the merge
// key: inboxes are drained in (at, srcPart, srcSeq) order at barriers, so
// the destination's schedule is independent of worker interleaving.
func (s *Simulator) SendCross(dst *Simulator, at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	s.crossSeq++
	e := inboxEntry{at: at, srcPart: s.pidx, srcSeq: s.crossSeq, fn: fn}
	dst.inboxMu.Lock()
	dst.inbox = append(dst.inbox, e)
	dst.inboxMu.Unlock()
}

// nextAt returns the timestamp of the earliest pending event, or maxDuration
// when the queue is empty. Inbox entries are not visible until drained.
func (s *Simulator) nextAt() time.Duration {
	if len(s.heap) == 0 {
		return maxDuration
	}
	return s.heap[0].at
}

// runBefore executes every pending event with timestamp strictly below
// limit. Unlike RunUntil it leaves the clock at the last executed event
// (the partition's local clock only advances through events; the round
// barrier uses nextAt, not the clock, to bound the next window).
func (s *Simulator) runBefore(limit time.Duration) {
	s.halted = false
	for len(s.heap) > 0 && !s.halted && s.heap[0].at < limit {
		s.step()
	}
}

// finishAt advances the clock to deadline without executing anything, used
// once at the end of a partitioned run so post-run reads of Now() match the
// sequential path.
func (s *Simulator) finishAt(deadline time.Duration) {
	if s.now < deadline {
		s.now = deadline
	}
}
