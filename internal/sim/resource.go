package sim

import "time"

// Resource models a serial processing resource (one CPU core, a disk, a
// NIC transmit path) in virtual time. Jobs submitted to a Resource execute
// FIFO: each job occupies the resource for its declared cost and its
// completion callback fires when the job finishes. This is the mechanism
// that reproduces the paper's CPU-bound ceilings (e.g. Hashchain's ~20k el/s
// limit from per-element validation during hash reversal).
type Resource struct {
	sim  *Simulator
	name string

	busyUntil time.Duration

	// Accounting.
	busyTime  time.Duration
	jobs      uint64
	maxQueued time.Duration // largest backlog observed (busyUntil - now at submit)
}

// NewResource creates a serial resource attached to the simulator.
func (s *Simulator) NewResource(name string) *Resource {
	return &Resource{sim: s, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Submit enqueues a job of the given cost; done fires when the job
// completes (after all previously submitted jobs). A nil done is allowed
// when only the time occupancy matters. Negative costs are treated as zero.
func (r *Resource) Submit(cost time.Duration, done func()) Event {
	if cost < 0 {
		cost = 0
	}
	now := r.sim.Now()
	start := r.busyUntil
	if start < now {
		start = now
	}
	if backlog := start - now; backlog > r.maxQueued {
		r.maxQueued = backlog
	}
	finish := start + cost
	r.busyUntil = finish
	r.busyTime += cost
	r.jobs++
	if done == nil {
		done = func() {}
	}
	return r.sim.At(finish, done)
}

// Backlog returns how far in the future the resource is currently booked.
func (r *Resource) Backlog() time.Duration {
	b := r.busyUntil - r.sim.Now()
	if b < 0 {
		return 0
	}
	return b
}

// BusyTime returns the total virtual time spent executing jobs.
func (r *Resource) BusyTime() time.Duration { return r.busyTime }

// Jobs returns the number of jobs submitted.
func (r *Resource) Jobs() uint64 { return r.jobs }

// MaxBacklog returns the largest backlog observed at submission time.
func (r *Resource) MaxBacklog() time.Duration { return r.maxQueued }

// Utilization returns busy time divided by elapsed virtual time, in [0, 1]
// (it can exceed 1 transiently if the resource is booked into the future).
func (r *Resource) Utilization() float64 {
	if r.sim.Now() == 0 {
		return 0
	}
	return float64(r.busyTime) / float64(r.sim.Now())
}
