// Conservative parallel discrete-event execution (PDES) for partitioned
// runs. A World owns one home queue plus P partition queues; partitions
// advance concurrently in lookahead-bounded rounds and exchange events only
// through per-partition inboxes drained at round barriers, in a fixed
// (timestamp, source partition, source sequence) order. The result is
// byte-identical to running the same event population on one queue.
//
// Safety argument (DESIGN.md §12): a partition may execute every event with
// timestamp strictly below W = min(T + L, H), where T is the earliest
// pending event across all partitions, H the earliest home event, and L the
// lookahead — the minimum delay any cross-partition message can experience.
// Any event a partition creates while executing at time t >= T lands on a
// remote queue no earlier than t + L >= T + L >= W, so nothing executed this
// round can be invalidated by a message still in flight. Home events (client
// injection, fault plans, workload ticks) run only at barriers, with no
// partition in flight, so they may touch any partition's state directly.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

const maxDuration = time.Duration(math.MaxInt64)

// World coordinates one home queue and P partition queues. The home queue
// holds events that must observe or mutate cross-partition state (workload
// ticks, fault-plan application, the drain at the end of the send window);
// each partition queue holds the events of the nodes it owns.
type World struct {
	home    *Simulator
	parts   []*Simulator
	workers int

	// lookahead returns the current minimum cross-partition delivery delay.
	// It is re-read every round, so fault events that change link delays
	// (and invalidate netsim's cached window) take effect at the next round
	// boundary — which is exactly when fault events run.
	lookahead func() time.Duration

	// Test-only sabotage switches proving the equivalence sweep is
	// non-vacuous: see BreakMergeOrderForTest / BreakHomeFenceForTest.
	unsafeArrivalOrder bool
	unsafeIgnoreHome   bool

	window time.Duration // bound for the in-flight round's runBefore calls

	// Shared event-sequence state (see Simulator.nextSeq). seqBase is the
	// world-wide creation counter, advanced only in sequential contexts
	// (setup, inbox drains, barriers); inRound is true exactly while
	// partitions execute concurrently, when each allocates privately above
	// seqBase. Both are published to workers by the work-channel send.
	seqBase uint64
	inRound bool
}

// NewWorld creates a home queue plus partitions partition queues, all
// sharing one root random stream (the home queue's) and one seed. workers
// bounds how many partitions execute concurrently; it is clamped to
// [1, partitions].
func NewWorld(seed int64, partitions, workers int) *World {
	if partitions < 1 {
		panic("sim: World needs at least one partition")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > partitions {
		workers = partitions
	}
	w := &World{home: New(seed), workers: workers}
	w.home.world = w
	for i := 0; i < partitions; i++ {
		p := &Simulator{rng: w.home.rng, seed: seed, world: w, pidx: i}
		w.parts = append(w.parts, p)
	}
	return w
}

// Home returns the home queue. Setup code, workload generators, and fault
// plans schedule here; it is also the queue whose Rand() is the run's root
// random stream.
func (w *World) Home() *Simulator { return w.home }

// Part returns partition i's queue.
func (w *World) Part(i int) *Simulator { return w.parts[i] }

// Parts returns the number of partitions.
func (w *World) Parts() int { return len(w.parts) }

// SetLookahead installs the lookahead source, typically
// (*netsim.Network).Lookahead. Until one is installed the World assumes no
// cross-partition traffic exists and runs rounds bounded only by home
// events — callers that route messages between partitions must install it
// before RunUntil.
func (w *World) SetLookahead(fn func() time.Duration) { w.lookahead = fn }

// Executed reports events run across the home queue and all partitions.
// A partitioned run executes exactly the event population of the sequential
// schedule, so this matches (*Simulator).Executed of an IntraWorkers=1 run.
func (w *World) Executed() uint64 {
	total := w.home.executed
	for _, p := range w.parts {
		total += p.executed
	}
	return total
}

// BreakMergeOrderForTest makes inbox drains keep arrival order instead of
// sorting by (at, srcPart, srcSeq). Used by the equivalence sweep's
// mutation test to prove fingerprint comparison catches merge-order bugs.
func (w *World) BreakMergeOrderForTest() { w.unsafeArrivalOrder = true }

// BreakHomeFenceForTest removes home events from the round-window bound, so
// partitions run past pending injections and observe them late. Used by the
// mutation test to prove the sweep catches synchronization bugs.
func (w *World) BreakHomeFenceForTest() { w.unsafeIgnoreHome = true }

// RunUntil executes all events (home and partition) with timestamps up to
// and including deadline, then advances every clock to deadline, mirroring
// (*Simulator).RunUntil on the sequential path.
func (w *World) RunUntil(deadline time.Duration) {
	limit := deadline + 1 // strict upper bound: run events with at <= deadline

	// Persistent workers for this run: rounds are short (often a handful of
	// events per partition), so dispatch must be a channel send, not a
	// goroutine spawn. The window bound travels via w.window — the write
	// happens before the send on work, and the worker's done send happens
	// before the coordinator's receive, so rounds are data-race-free.
	work := make(chan *Simulator, len(w.parts))
	done := make(chan struct{}, len(w.parts))
	for i := 0; i < w.workers; i++ {
		go func() {
			for p := range work {
				p.runBefore(w.window)
				done <- struct{}{}
			}
		}()
	}
	defer close(work)

	for {
		w.drainInboxes()
		T := maxDuration
		for _, p := range w.parts {
			if at := p.nextAt(); at < T {
				T = at
			}
		}
		H := w.home.nextAt()
		if T >= limit && H >= limit {
			break
		}
		L := maxDuration
		if w.lookahead != nil {
			L = w.lookahead()
			if L <= 0 {
				panic(fmt.Sprintf("sim: non-positive lookahead %v cannot bound a round", L))
			}
		}
		W := limit
		if T < limit {
			if b := satAdd(T, L); b < W {
				W = b
			}
		}
		if H < W && !w.unsafeIgnoreHome {
			W = H
		}

		w.window = W
		dispatched := 0
		for _, p := range w.parts {
			p.seq = 0 // reset per-round private allocation count
		}
		w.inRound = true
		for _, p := range w.parts {
			if p.nextAt() < W {
				work <- p
				dispatched++
			}
		}
		for i := 0; i < dispatched; i++ {
			<-done
		}
		w.inRound = false
		// Advance the shared counter past every private window the round
		// used, so later (sequential) creations sort after the round's.
		var maxLocal uint64
		for _, p := range w.parts {
			if p.seq > maxLocal {
				maxLocal = p.seq
			}
		}
		w.seqBase += maxLocal
		w.drainInboxes()

		// With no partition in flight, run the events AT the barrier
		// timestamp W — the home events that bounded the round plus any
		// partition events that landed exactly on it — merged across queues
		// in creation order, exactly as the single-queue schedule would
		// interleave them. Home events may touch any partition directly, and
		// they read partition clocks (e.g. a client injection submits to a
		// server's CPU resource, whose grant is floored at that queue's
		// Now), so first park every partition clock AT the barrier time.
		// Safe: every partition event below W has already executed.
		if w.unsafeIgnoreHome {
			w.home.runBefore(W)
		} else if H == W && W < limit {
			for _, p := range w.parts {
				p.finishAt(W)
			}
			w.mergeRunAt(W)
		}
	}

	w.home.finishAt(deadline)
	for _, p := range w.parts {
		p.finishAt(deadline)
	}
}

// mergeRunAt executes every event with timestamp t, across the home queue
// and all partitions, one at a time in global creation order — smallest
// (seq, partition) first, re-selecting after each event because an event at
// t may create more events at t (zero-cost CPU grants, collector flushes).
// This is the sequential tail of a barrier: the single-queue schedule runs
// same-timestamp events in creation order, and timestamp collisions between
// home and partition events are systematic, not rare (a collector's timeout
// flush timer, seeded by an injection, fires exactly on a later injection
// tick whenever the timeout is a multiple of the tick).
func (w *World) mergeRunAt(t time.Duration) {
	for {
		var best *Simulator
		var bestSeq uint64
		bestPart := 0
		consider := func(q *Simulator, pidx int) {
			if len(q.heap) == 0 || q.heap[0].at > t {
				return
			}
			s0 := q.heap[0].seq
			if best == nil || s0 < bestSeq || (s0 == bestSeq && pidx < bestPart) {
				best, bestSeq, bestPart = q, s0, pidx
			}
		}
		consider(w.home, -1)
		for i, p := range w.parts {
			consider(p, i)
		}
		if best == nil {
			return
		}
		best.step()
	}
}

// drainInboxes merges every partition's inbox into its heap in the fixed
// (at, srcPart, srcSeq) order, assigning destination-local sequence numbers
// in that order — so tie-breaking among same-timestamp arrivals is
// independent of which worker delivered first.
func (w *World) drainInboxes() {
	for _, p := range w.parts {
		p.inboxMu.Lock()
		batch := p.inbox
		p.inbox = nil
		p.inboxMu.Unlock()
		if len(batch) == 0 {
			continue
		}
		if !w.unsafeArrivalOrder {
			sort.Slice(batch, func(i, j int) bool {
				a, b := batch[i], batch[j]
				if a.at != b.at {
					return a.at < b.at
				}
				if a.srcPart != b.srcPart {
					return a.srcPart < b.srcPart
				}
				return a.srcSeq < b.srcSeq
			})
		}
		for _, e := range batch {
			p.At(e.at, e.fn)
		}
	}
	// Home never receives cross-partition sends today (injection and fault
	// application are direct calls at barriers), but drain defensively so a
	// future sender cannot silently drop events.
	w.home.inboxMu.Lock()
	batch := w.home.inbox
	w.home.inbox = nil
	w.home.inboxMu.Unlock()
	for _, e := range batch {
		w.home.At(e.at, e.fn)
	}
}

func satAdd(a, b time.Duration) time.Duration {
	c := a + b
	if c < a {
		return maxDuration
	}
	return c
}

// ChildSeed derives a decorrelated child seed from a root seed and a small
// integer identity (splitmix64 finalizer). netsim uses this for per-node
// random streams that are identical across IntraWorkers settings.
func ChildSeed(seed int64, id uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(id+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ChildRand returns a rand.Rand seeded with ChildSeed.
func ChildRand(seed int64, id uint64) *rand.Rand {
	return rand.New(rand.NewSource(ChildSeed(seed, id)))
}
