// Package gossip implements the votepool-style relay that backs the mesh
// transport (DESIGN.md §13): a digest-keyed dedup cache with TTL expiry
// plus bounded, expiring per-peer relay queues. The design follows
// CometBFT's votepool — entries carry a digest, a relay remembers which
// digests it has seen, fresh entries are re-queued to every peer except
// the one they arrived from, and both the memory of seen digests and the
// queued entries expire — with the CAC framing from PAPERS.md: a relay
// queue is a finite, droppable resource, never an unbounded mailbox.
//
// The package is pure bookkeeping over virtual timestamps: no timers, no
// simulator, no network. All expiry happens lazily against the caller's
// clock, which is what makes a relay partition-safe under intra-run PDES
// (DESIGN.md §12) — it is only ever touched by its own node's events, and
// it never observes time except through those events.
package gossip

import (
	"time"

	"repro/internal/wire"
)

// Digest identifies a gossiped message. The simulated fabric is trusted
// (netsim delivers what was sent; Byzantine behavior lives at the protocol
// layer), so an (origin, sequence) pair is a sound identity — no hashing.
type Digest struct {
	Origin wire.NodeID
	Seq    uint64
}

// Entry is one gossiped message as it travels the mesh: the digest that
// names it, the hop count it has accumulated, and the opaque payload with
// its accounted wire size.
type Entry struct {
	Digest  Digest
	Hops    int
	Payload any
	Size    int

	// enqueued is the virtual time the entry entered a relay queue; the
	// queue's drain uses it to expire stale entries. Queue-local, never
	// serialized.
	enqueued time.Duration
}

// Config bounds a relay's resources.
type Config struct {
	// QueueCap caps each per-peer queue; a push to a full queue drops the
	// NEW entry (the queued backlog is older and closer to expiring anyway,
	// and dropping the newcomer keeps the operation O(1)).
	QueueCap int
	// EntryTTL expires queued entries that waited too long for a flush:
	// relaying them would spend bandwidth on messages every correct node
	// has long since seen.
	EntryTTL time.Duration
	// DedupTTL is how long a seen digest is remembered. After it lapses the
	// digest counts as fresh again; MaxHops bounds the re-circulation that
	// permits.
	DedupTTL time.Duration
	// MaxHops stops forwarding entries that have already crossed this many
	// links. Any connected overlay has diameter < n, so MaxHops = n is a
	// pure backstop against re-circulation, not a reachability limit.
	MaxHops int
}

// Sabotage switches for the deliberate-failure tests (DESIGN.md §12
// pattern): prove the equivalence/safety sweeps would catch a broken
// relay by breaking it on purpose. Exported because the harness-level
// sabotage tests live outside this package. Never set in production code.
var (
	breakDedup  bool
	breakExpiry bool
)

// SetBreakDedupForTest makes every digest look fresh: the dedup cache
// records nothing, so gossip storms until the hop backstop. Test-only.
func SetBreakDedupForTest(v bool) { breakDedup = v }

// SetBreakExpiryForTest makes every queued entry look expired: flushes
// drain nothing, so gossip starves completely. Test-only.
func SetBreakExpiryForTest(v bool) { breakExpiry = v }

// Relay is one node's gossip state: the dedup cache of seen digests and a
// bounded queue of entries awaiting relay toward each peer. It is not
// safe for concurrent use — by design, since under PDES it must only be
// touched by its owning node's events.
type Relay struct {
	cfg    Config
	peers  []wire.NodeID
	dedup  dedupCache
	queues map[wire.NodeID]*relayQueue

	// Stats counters, all monotone.
	relayed    uint64 // fresh entries fanned out to peer queues
	dedupDrops uint64 // ingested entries discarded as already-seen
	queueDrops uint64 // entries dropped because a peer queue was full
	expired    uint64 // queued entries discarded past EntryTTL
}

// Stats is a point-in-time snapshot of a relay's counters.
type Stats struct {
	Relayed    uint64
	DedupDrops uint64
	QueueDrops uint64
	Expired    uint64
}

// NewRelay builds a relay with one queue per peer.
func NewRelay(peers []wire.NodeID, cfg Config) *Relay {
	r := &Relay{
		cfg:    cfg,
		peers:  peers,
		dedup:  dedupCache{seen: make(map[Digest]time.Duration)},
		queues: make(map[wire.NodeID]*relayQueue, len(peers)),
	}
	for _, p := range peers {
		r.queues[p] = &relayQueue{cap: cfg.QueueCap}
	}
	return r
}

// Observe marks a digest as seen without relaying anything, reporting
// whether it was fresh. Originators call it so their own message, looped
// back by a peer, is not re-delivered to them.
func (r *Relay) Observe(d Digest, now time.Duration) bool {
	return r.dedup.mark(d, now, r.cfg.DedupTTL)
}

// Ingest processes an entry received from a peer. A stale digest is
// counted and discarded. A fresh one is remembered and — if the entry has
// hops left — re-queued, with one more hop, toward every peer except the
// link it arrived on and its origin (both have it by construction). The
// caller delivers the payload locally exactly when Ingest returns true.
func (r *Relay) Ingest(from wire.NodeID, e Entry, now time.Duration) bool {
	if !r.dedup.mark(e.Digest, now, r.cfg.DedupTTL) {
		r.dedupDrops++
		return false
	}
	if e.Hops < r.cfg.MaxHops {
		fwd := e
		fwd.Hops++
		for _, p := range r.peers {
			if p == from || p == e.Digest.Origin {
				continue
			}
			r.push(p, fwd, now)
		}
		r.relayed++
	}
	return true
}

// Enqueue queues an entry toward one peer, for originators fanning out a
// new message (hop 0) to their whole neighborhood.
func (r *Relay) Enqueue(peer wire.NodeID, e Entry, now time.Duration) {
	r.push(peer, e, now)
}

func (r *Relay) push(peer wire.NodeID, e Entry, now time.Duration) {
	q, ok := r.queues[peer]
	if !ok {
		panic("gossip: enqueue to unknown peer")
	}
	e.enqueued = now
	if !q.push(e) {
		r.queueDrops++
	}
}

// Flush drains the non-expired backlog queued toward one peer, in FIFO
// order. Entries past EntryTTL are counted and discarded.
func (r *Relay) Flush(peer wire.NodeID, now time.Duration) []Entry {
	q, ok := r.queues[peer]
	if !ok {
		return nil
	}
	out, exp := q.drain(now, r.cfg.EntryTTL)
	r.expired += exp
	return out
}

// Stats snapshots the relay's counters.
func (r *Relay) Stats() Stats {
	return Stats{
		Relayed:    r.relayed,
		DedupDrops: r.dedupDrops,
		QueueDrops: r.queueDrops,
		Expired:    r.expired,
	}
}

// dedupCache remembers seen digests until their expiry. Expiry is lazy: a
// FIFO of (digest, expiry) pairs is scanned from the head on every mark,
// so the cache needs no timers and its state advances only on its owning
// node's events — the PDES-safety property. Amortized O(1) per mark.
type dedupCache struct {
	seen map[Digest]time.Duration // digest -> expiry
	fifo []dedupSlot
	head int
}

type dedupSlot struct {
	d   Digest
	exp time.Duration
}

// mark records the digest as seen until now+ttl and reports whether it
// was fresh (not present, or present but expired).
func (c *dedupCache) mark(d Digest, now, ttl time.Duration) bool {
	if breakDedup {
		return true
	}
	c.expire(now)
	if _, ok := c.seen[d]; ok {
		return false
	}
	exp := now + ttl
	c.seen[d] = exp
	c.fifo = append(c.fifo, dedupSlot{d: d, exp: exp})
	return true
}

// expire pops lapsed slots off the FIFO head. A digest re-marked after
// expiry gets a new slot, so a slot's digest is deleted from the map only
// while the map still holds the slot's own (lapsed) expiry.
func (c *dedupCache) expire(now time.Duration) {
	for c.head < len(c.fifo) && c.fifo[c.head].exp <= now {
		s := c.fifo[c.head]
		if exp, ok := c.seen[s.d]; ok && exp <= now {
			delete(c.seen, s.d)
		}
		c.head++
	}
	if c.head > len(c.fifo)/2 && c.head > 32 {
		c.fifo = append(c.fifo[:0:0], c.fifo[c.head:]...)
		c.head = 0
	}
}

// relayQueue is one bounded FIFO of entries awaiting flush toward a peer.
type relayQueue struct {
	cap     int
	entries []Entry
	head    int
}

func (q *relayQueue) len() int { return len(q.entries) - q.head }

// push appends an entry, reporting false (drop) when the queue is full.
func (q *relayQueue) push(e Entry) bool {
	if q.cap > 0 && q.len() >= q.cap {
		return false
	}
	q.entries = append(q.entries, e)
	return true
}

// drain removes and returns every queued entry still inside ttl, plus the
// count it expired.
func (q *relayQueue) drain(now, ttl time.Duration) ([]Entry, uint64) {
	var out []Entry
	var expired uint64
	for ; q.head < len(q.entries); q.head++ {
		e := q.entries[q.head]
		if breakExpiry || (ttl > 0 && e.enqueued+ttl <= now) {
			expired++
			continue
		}
		out = append(out, e)
	}
	q.entries = q.entries[:0]
	q.head = 0
	return out, expired
}
