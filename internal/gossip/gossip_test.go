package gossip

import (
	"testing"
	"time"

	"repro/internal/wire"
)

func testConfig() Config {
	return Config{
		QueueCap: 4,
		EntryTTL: 100 * time.Millisecond,
		DedupTTL: time.Second,
		MaxHops:  8,
	}
}

func entry(origin wire.NodeID, seq uint64) Entry {
	return Entry{Digest: Digest{Origin: origin, Seq: seq}, Payload: "x", Size: 10}
}

func TestIngestDedup(t *testing.T) {
	r := NewRelay([]wire.NodeID{1, 2, 3}, testConfig())
	e := entry(0, 7)
	if !r.Ingest(1, e, 0) {
		t.Fatal("first ingest not fresh")
	}
	if r.Ingest(2, e, time.Millisecond) {
		t.Fatal("second ingest of same digest reported fresh")
	}
	st := r.Stats()
	if st.DedupDrops != 1 || st.Relayed != 1 {
		t.Fatalf("stats = %+v, want 1 dedup drop and 1 relayed", st)
	}
}

func TestIngestSkipsSourceAndOrigin(t *testing.T) {
	r := NewRelay([]wire.NodeID{0, 1, 2, 3}, testConfig())
	r.Ingest(1, entry(0, 7), 0) // arrived from 1, originated at 0
	for _, p := range []wire.NodeID{0, 1} {
		if got := r.Flush(p, 0); len(got) != 0 {
			t.Fatalf("entry re-queued toward %d (origin/source)", p)
		}
	}
	for _, p := range []wire.NodeID{2, 3} {
		got := r.Flush(p, 0)
		if len(got) != 1 || got[0].Hops != 1 {
			t.Fatalf("peer %d: got %v, want one entry at hop 1", p, got)
		}
	}
}

func TestDedupTTLExpiry(t *testing.T) {
	cfg := testConfig()
	r := NewRelay([]wire.NodeID{1}, cfg)
	d := Digest{Origin: 0, Seq: 1}
	if !r.Observe(d, 0) {
		t.Fatal("first observe not fresh")
	}
	if r.Observe(d, cfg.DedupTTL-1) {
		t.Fatal("observe inside TTL reported fresh")
	}
	if !r.Observe(d, cfg.DedupTTL) {
		t.Fatal("observe after TTL lapse not fresh again")
	}
}

func TestQueueCapDropsNewest(t *testing.T) {
	cfg := testConfig()
	r := NewRelay([]wire.NodeID{1}, cfg)
	for seq := uint64(0); seq < uint64(cfg.QueueCap)+3; seq++ {
		r.Enqueue(1, entry(0, seq), 0)
	}
	if got := r.Stats().QueueDrops; got != 3 {
		t.Fatalf("queueDrops = %d, want 3", got)
	}
	out := r.Flush(1, 0)
	if len(out) != cfg.QueueCap {
		t.Fatalf("flushed %d entries, want %d", len(out), cfg.QueueCap)
	}
	for i, e := range out {
		if e.Digest.Seq != uint64(i) {
			t.Fatalf("entry %d has seq %d: queue dropped old entries instead of new", i, e.Digest.Seq)
		}
	}
}

func TestEntryTTLExpiry(t *testing.T) {
	cfg := testConfig()
	r := NewRelay([]wire.NodeID{1}, cfg)
	r.Enqueue(1, entry(0, 1), 0)
	r.Enqueue(1, entry(0, 2), cfg.EntryTTL/2)
	out := r.Flush(1, cfg.EntryTTL)
	if len(out) != 1 || out[0].Digest.Seq != 2 {
		t.Fatalf("flush = %v, want only the young entry (seq 2)", out)
	}
	if got := r.Stats().Expired; got != 1 {
		t.Fatalf("expired = %d, want 1", got)
	}
}

func TestMaxHopsBackstop(t *testing.T) {
	cfg := testConfig()
	r := NewRelay([]wire.NodeID{1, 2}, cfg)
	e := entry(0, 1)
	e.Hops = cfg.MaxHops
	if !r.Ingest(3, e, 0) {
		t.Fatal("entry at hop cap should still be fresh (delivered locally)")
	}
	if got := r.Flush(1, 0); len(got) != 0 {
		t.Fatalf("entry at hop cap was re-queued: %v", got)
	}
	if got := r.Stats().Relayed; got != 0 {
		t.Fatalf("relayed = %d, want 0", got)
	}
}

func TestSabotageHooks(t *testing.T) {
	cfg := testConfig()

	SetBreakDedupForTest(true)
	r := NewRelay([]wire.NodeID{1}, cfg)
	e := entry(0, 1)
	if !r.Ingest(2, e, 0) || !r.Ingest(2, e, 0) {
		t.Fatal("broken dedup should report every ingest fresh")
	}
	SetBreakDedupForTest(false)

	SetBreakExpiryForTest(true)
	r = NewRelay([]wire.NodeID{1}, cfg)
	r.Enqueue(1, entry(0, 2), 0)
	if got := r.Flush(1, 0); len(got) != 0 {
		t.Fatalf("broken expiry should drain nothing, got %v", got)
	}
	SetBreakExpiryForTest(false)
}

// FuzzGossipDedup drives a relay with an arbitrary stream of
// (origin, seq, from, time-delta) events decoded from the fuzz input and
// checks the two invariants the mesh depends on: a digest is never
// reported fresh twice inside a dedup-TTL window (no double delivery to
// one node), and no flushed queue contains a duplicate digest or an entry
// queued toward the peer it arrived from or its origin.
func FuzzGossipDedup(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 9, 9, 9})
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		peers := []wire.NodeID{0, 1, 2, 3}
		cfg := Config{
			QueueCap: 16,
			EntryTTL: 50 * time.Millisecond,
			DedupTTL: 200 * time.Millisecond,
			MaxHops:  6,
		}
		r := NewRelay(peers, cfg)
		now := time.Duration(0)
		// freshUntil tracks, per digest, the end of its dedup window as of
		// the last time the relay reported it fresh.
		freshUntil := map[Digest]time.Duration{}
		for i := 0; i+3 < len(data); i += 4 {
			d := Digest{Origin: wire.NodeID(data[i] % 6), Seq: uint64(data[i+1] % 8)}
			from := wire.NodeID(data[i+2] % 6)
			now += time.Duration(data[i+3]) * time.Millisecond
			e := Entry{Digest: d, Hops: int(data[i+2] % 4), Payload: "p", Size: 1}
			fresh := r.Ingest(from, e, now)
			if fresh {
				if until, ok := freshUntil[d]; ok && now < until {
					t.Fatalf("digest %v fresh twice inside its dedup window (now %v < until %v)", d, now, until)
				}
				freshUntil[d] = now + cfg.DedupTTL
			}
		}
		// Every queued backlog must be duplicate-free and must not target
		// the entry's own origin.
		for _, p := range peers {
			seen := map[Digest]bool{}
			for _, e := range r.Flush(p, now) {
				if seen[e.Digest] {
					t.Fatalf("peer %d queue holds digest %v twice", p, e.Digest)
				}
				seen[e.Digest] = true
				if e.Digest.Origin == p {
					t.Fatalf("entry from origin %d queued back toward its origin", p)
				}
			}
		}
	})
}
