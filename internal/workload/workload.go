// Package workload generates the evaluation's element stream: synthetic
// Arbitrum-like transactions (the paper downloads real Arbitrum
// transactions; their only property the evaluation depends on is the size
// distribution — mean ≈ 438 bytes, σ ≈ 753.5) injected at a controlled
// aggregate sending rate split evenly across clients, each client adding to
// its local server (paper §4, Experiment Scenarios).
//
// See DESIGN.md §2 (layering).
package workload

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wire"
)

// SizeModel samples element wire sizes.
type SizeModel struct {
	// Mean and StdDev of the element size in bytes.
	Mean   float64
	StdDev float64
	// Min clamps the smallest element (a signed envelope cannot be empty).
	Min int
	// Max clamps the largest element.
	Max int
}

// ArbitrumSizes returns the paper's measured distribution: mean 438 B,
// σ 753.5. Sizes are drawn log-normally (transaction sizes are heavy
// tailed: most transfers are small, contract deployments are huge), with
// the log-normal parameters derived from the target mean and variance.
func ArbitrumSizes() SizeModel {
	return SizeModel{Mean: 438, StdDev: 753.5, Min: 96, Max: 16384}
}

// lognormalParams converts the target mean m and stddev s into the
// underlying normal's (mu, sigma): for X ~ LogNormal(mu, sigma),
// E[X] = exp(mu + sigma²/2) and Var[X] = (exp(sigma²)-1)·exp(2mu+sigma²).
func (m SizeModel) lognormalParams() (mu, sigma float64) {
	if m.Mean <= 0 {
		return 0, 0
	}
	cv2 := (m.StdDev * m.StdDev) / (m.Mean * m.Mean)
	sigma2 := math.Log(1 + cv2)
	mu = math.Log(m.Mean) - sigma2/2
	return mu, math.Sqrt(sigma2)
}

// Sample draws one element size.
func (m SizeModel) Sample(rng interface{ NormFloat64() float64 }) int {
	mu, sigma := m.lognormalParams()
	size := int(math.Exp(mu + sigma*rng.NormFloat64()))
	if size < m.Min {
		size = m.Min
	}
	if m.Max > 0 && size > m.Max {
		size = m.Max
	}
	return size
}

// Config drives a generation run.
type Config struct {
	// Rate is the aggregate sending rate in elements/second across all
	// clients (the paper's sending_rate). Each client injects at
	// Rate/len(clients) to its local server.
	Rate float64
	// Duration is how long clients keep adding (the paper: 50 s).
	Duration time.Duration
	// Sizes describes element sizes; zero value uses ArbitrumSizes.
	Sizes SizeModel
	// Tick batches injection bookkeeping: each client converts its rate
	// into ⌈rate·tick⌉-element bursts per tick, which keeps the event count
	// manageable at 6-figure rates without changing per-second totals.
	Tick time.Duration
	// FullPayloads creates real signed payloads (Full mode deployments).
	FullPayloads bool
	// TrackIDs records the id of every accepted element so the invariant
	// checker can compare the servers' final histories against exactly
	// what was injected (no fabrication, no loss). Costs one map insert
	// per element; the harness always enables it.
	TrackIDs bool
	// Open adds open-system dynamics — Zipf source skew, session churn,
	// rate envelopes (open.go). The zero value is the closed system.
	Open OpenConfig
	// Seed keys the open extension's dedicated ChildSeed streams; only
	// consulted when Open is enabled.
	Seed int64
}

// Generator injects the workload into a deployment.
type Generator struct {
	cfg Config
	d   *core.Deployment
	rec *metrics.Recorder

	// Account books every attempt (accepted/rejected/offered, ids,
	// fairness); its accessors are promoted onto the generator.
	*Account
	done bool
}

// New creates a generator for the deployment; rec may be nil.
func New(d *core.Deployment, rec *metrics.Recorder, cfg Config) *Generator {
	if cfg.Sizes == (SizeModel{}) {
		cfg.Sizes = ArbitrumSizes()
	}
	if cfg.Tick == 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	return &Generator{cfg: cfg, d: d, rec: rec,
		Account: NewAccount(len(d.Clients), cfg.TrackIDs)}
}

// Start schedules the injection. Clients add elements from virtual time 0
// until cfg.Duration, then the generator drains the servers' collectors.
// Open-system dynamics, when configured, route through OpenTicks — the
// same staggered-slot loop with the envelope/skew/churn seams opened.
func (g *Generator) Start() {
	s := g.d.Sim
	if g.cfg.Open.Enabled() {
		OpenTicks(s, g.cfg.Seed, len(g.d.Clients), g.cfg.Rate, g.cfg.Duration, g.cfg.Tick, g.cfg.Open, g.injectOne)
	} else {
		perClient := g.cfg.Rate / float64(len(g.d.Clients))
		Ticks(s, len(g.d.Clients), perClient, g.cfg.Duration, g.cfg.Tick, g.injectOne)
	}
	s.At(g.cfg.Duration, func() {
		g.done = true
		g.d.Drain()
	})
}

// Ticks schedules the canonical staggered injection loop — the ONE
// definition of the workload's timing shape, shared with the sharded
// generator (internal/shard) so sharded and single-instance runs inject
// identically: each of n clients starts at a random offset within one
// tick (no lockstep bursts) and converts its per-client rate into
// integer bursts per tick with a fractional carry, preserving per-second
// totals at any rate.
func Ticks(s *sim.Simulator, n int, perClient float64, duration, tick time.Duration, inject func(client int)) {
	RatedTicks(s, n, func(int, time.Duration) float64 { return perClient }, duration, tick, inject)
}

// RatedTicks is Ticks with a time-varying per-client rate: each tick asks
// rate(client, now) for the current el/s before updating the carry. With
// a constant-rate closure the arithmetic is bit-for-bit the closed loop
// (same offsets, same carry sequence), which is what keeps the open
// extension from forking the workload's timing definition.
func RatedTicks(s *sim.Simulator, n int, rate func(client int, now time.Duration) float64, duration, tick time.Duration, inject func(client int)) {
	if tick <= 0 {
		// A zero tick would re-arm at the current instant forever; fall
		// back to the generators' default instead of wedging the simulator.
		tick = 10 * time.Millisecond
	}
	for i := 0; i < n; i++ {
		i := i
		offset := time.Duration(s.Rand().Int63n(int64(tick) + 1))
		var carry float64
		var fire func()
		fire = func() {
			if s.Now() >= duration {
				return
			}
			carry += rate(i, s.Now()) * tick.Seconds()
			burst := int(carry)
			carry -= float64(burst)
			for k := 0; k < burst; k++ {
				inject(i)
			}
			s.After(tick, fire)
		}
		s.At(offset, fire)
	}
}

// BuildElement draws one element of the canonical workload shape on the
// given client — a log-normally sampled wire size, realized as a real
// signed payload in full mode or a modeled-size element otherwise — and
// stamps its injection time. Shared with the sharded generator for the
// same reason as Ticks: element construction must not fork.
func BuildElement(s *sim.Simulator, cl *core.Client, sizes SizeModel, fullPayloads bool) *wire.Element {
	size := sizes.Sample(s.Rand())
	var e *wire.Element
	if fullPayloads {
		plen := size - wire.ElementHeaderSize - 64 // header + ed25519 signature
		if plen < 1 {
			plen = 1
		}
		payload := make([]byte, plen)
		s.Rand().Read(payload)
		e = cl.NewElement(payload)
	} else {
		e = cl.NewModeledElement(size)
	}
	e.InjectedAt = int64(s.Now())
	return e
}

func (g *Generator) injectOne(i int) {
	e := BuildElement(g.d.Sim, g.d.Clients[i], g.cfg.Sizes, g.cfg.FullPayloads)
	if err := g.d.Servers[i].Add(e); err != nil {
		g.Account.Reject(e, i)
		return
	}
	g.Account.Accept(e, i)
	if g.rec != nil {
		g.rec.Injected(e)
	}
}

// Done reports whether the injection window has closed.
func (g *Generator) Done() bool { return g.done }
