package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestEnvelopeMult(t *testing.T) {
	cfg := OpenConfig{Envelope: []RatePhase{
		{From: 0, Mult: 0.5},
		{From: 10 * time.Second, Mult: 2},
		{From: 20 * time.Second, Mult: 1},
	}}
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{0, 0.5}, {9 * time.Second, 0.5},
		{10 * time.Second, 2}, {19 * time.Second, 2},
		{20 * time.Second, 1}, {time.Hour, 1},
	} {
		if m := cfg.Mult(tc.at); m != tc.want {
			t.Fatalf("Mult(%v) = %g, want %g", tc.at, m, tc.want)
		}
	}
	// No phase before the first boundary: multiplier 1.
	late := OpenConfig{Envelope: []RatePhase{{From: 5 * time.Second, Mult: 3}}}
	if m := late.Mult(2 * time.Second); m != 1 {
		t.Fatalf("pre-envelope Mult = %g, want 1", m)
	}
}

func TestOpenConfigScaled(t *testing.T) {
	cfg := OpenConfig{
		ChurnOn:  10 * time.Second,
		ChurnOff: 5 * time.Second,
		Envelope: []RatePhase{{From: 10 * time.Second, Mult: 2}},
	}
	s := cfg.Scaled(0.1)
	if s.ChurnOn != time.Second || s.ChurnOff != 500*time.Millisecond {
		t.Fatalf("scaled churn = %v/%v", s.ChurnOn, s.ChurnOff)
	}
	if s.Envelope[0].From != time.Second || s.Envelope[0].Mult != 2 {
		t.Fatalf("scaled phase = %+v", s.Envelope[0])
	}
	// The original must be untouched (cells share config values).
	if cfg.Envelope[0].From != 10*time.Second {
		t.Fatal("Scaled mutated the receiver's envelope")
	}
	if (OpenConfig{}).Scaled(0.1).Enabled() {
		t.Fatal("scaling an empty config enabled it")
	}
}

// runOpenTicks drives OpenTicks on a bare simulator and returns the
// injection sequence (source per arrival, in order).
func runOpenTicks(seed int64, n int, rate float64, cfg OpenConfig) []int {
	s := sim.New(seed)
	var seq []int
	OpenTicks(s, seed, n, rate, 10*time.Second, 10*time.Millisecond, cfg, func(src int) {
		seq = append(seq, src)
	})
	s.RunUntil(20 * time.Second)
	return seq
}

// TestOpenTicksDeterministic pins the open generator's core contract: the
// full arrival sequence — timing, skewed source draws, churn thinning —
// is a pure function of the scenario seed.
func TestOpenTicksDeterministic(t *testing.T) {
	cfg := OpenConfig{
		Zipf:     1.1,
		ChurnOn:  2 * time.Second,
		ChurnOff: time.Second,
		Envelope: []RatePhase{{From: 0, Mult: 0.5}, {From: 5 * time.Second, Mult: 2}},
	}
	a := runOpenTicks(11, 8, 500, cfg)
	b := runOpenTicks(11, 8, 500, cfg)
	if len(a) == 0 {
		t.Fatal("no arrivals")
	}
	if len(a) != len(b) {
		t.Fatalf("arrival counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d source differs: %d vs %d", i, a[i], b[i])
		}
	}
	if c := runOpenTicks(12, 8, 500, cfg); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical arrival sequence")
		}
	}
}

func TestOpenTicksZipfSkewsSources(t *testing.T) {
	seq := runOpenTicks(3, 16, 2000, OpenConfig{Zipf: 1.2})
	counts := make([]int, 16)
	for _, src := range seq {
		counts[src]++
	}
	if counts[0] <= counts[15]*2 {
		t.Fatalf("rank 0 got %d arrivals vs last rank %d — no visible skew", counts[0], counts[15])
	}
}

func TestOpenTicksChurnThinsLoad(t *testing.T) {
	closed := runOpenTicks(5, 8, 1000, OpenConfig{Envelope: []RatePhase{{From: 0, Mult: 1}}})
	churned := runOpenTicks(5, 8, 1000, OpenConfig{ChurnOn: 2 * time.Second, ChurnOff: 2 * time.Second})
	// Expected duty cycle ~1/2; anything between 20% and 90% of the closed
	// count proves thinning without over-fitting the exponential draws.
	if len(churned) >= len(closed)*9/10 || len(churned) < len(closed)/5 {
		t.Fatalf("churned arrivals = %d of %d closed — thinning out of range", len(churned), len(closed))
	}
}

func TestEnvelopeShapesRate(t *testing.T) {
	flat := runOpenTicks(6, 4, 1000, OpenConfig{Envelope: []RatePhase{{From: 0, Mult: 1}}})
	halved := runOpenTicks(6, 4, 1000, OpenConfig{Envelope: []RatePhase{{From: 0, Mult: 0.5}}})
	ratio := float64(len(halved)) / float64(len(flat))
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("halved envelope delivered %.2fx the flat load, want ~0.5x", ratio)
	}
}

func TestAccountFairness(t *testing.T) {
	a := NewAccount(4, false)
	if f := a.Fairness(); f != 1 {
		t.Fatalf("empty account fairness = %g, want 1", f)
	}
	// Uniform acceptance: every source offers 10, all accepted — J = 1.
	for src := 0; src < 4; src++ {
		for i := 0; i < 10; i++ {
			a.Accept(nil, src)
		}
	}
	if f := a.Fairness(); math.Abs(f-1) > 1e-12 {
		t.Fatalf("uniform fairness = %g, want 1", f)
	}
	// Skewed acceptance: source 0 keeps ratio 1, the rest drop to 0 —
	// Jain index over ratios (1,0,0,0) is 1/4.
	b := NewAccount(4, false)
	a0 := 0
	for src := 0; src < 4; src++ {
		for i := 0; i < 10; i++ {
			if src == 0 {
				b.Accept(nil, src)
				a0++
			} else {
				b.Reject(nil, src)
			}
		}
	}
	if f := b.Fairness(); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("skewed fairness = %g, want 0.25", f)
	}
	if b.Offered() != 40 || b.Injected() != uint64(a0) || b.Rejected() != 30 {
		t.Fatalf("counters: offered %d injected %d rejected %d", b.Offered(), b.Injected(), b.Rejected())
	}
}
