// Open-system extension of the closed workload: the client pool is no
// longer a fixed set of always-on uniform senders. Sessions churn (clients
// depart and return on seeded exponential timers), element sources follow
// a Zipf(α) hot-key skew, and the aggregate rate is shaped by a piecewise
// envelope (bursts, diurnal swells). All randomness beyond the closed
// generator's own draws comes from dedicated sim.ChildSeed streams, so an
// open run is exactly as deterministic — and as PDES-safe — as a closed
// one: the extra draws are keyed to the scenario seed, never to scheduler
// interleaving.
//
// See DESIGN.md §14 (open-system workloads and admission control).
package workload

import (
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Stream ids for the open-system ChildSeed streams. They sit far above
// any plausible partition/source index so they can never collide with the
// per-partition streams the PDES world derives from the same seed.
const (
	zipfStream  uint64 = 1 << 40
	churnStream uint64 = 1<<40 + 1<<20 // + source index
)

// RatePhase scales the base sending rate by Mult from From onward (until
// the next phase). Times before the first phase use multiplier 1.
type RatePhase struct {
	From time.Duration
	Mult float64
}

// OpenConfig describes the open-system dynamics; the zero value is the
// closed system (fixed pool, uniform sources, flat rate).
type OpenConfig struct {
	// Zipf skews element sources: each arrival draws its source client
	// with P(rank k) ∝ 1/(k+1)^Zipf instead of belonging to a fixed
	// uniform slot. 0 = uniform (closed behavior).
	Zipf float64
	// ChurnOn is the mean in-session time. When > 0, every client cycles
	// through exponentially distributed on/off sessions; arrivals drawn
	// for an off-session client are dropped (the client is gone — the
	// load it would have offered disappears with it).
	ChurnOn time.Duration
	// ChurnOff is the mean departed time between sessions (defaulted to
	// ChurnOn by spec when churn is enabled but ChurnOff is unset).
	ChurnOff time.Duration
	// Envelope shapes the aggregate rate over the send window.
	Envelope []RatePhase
}

// Enabled reports whether any open-system dynamic is configured.
func (c OpenConfig) Enabled() bool {
	return c.Zipf > 0 || c.ChurnOn > 0 || len(c.Envelope) > 0
}

// Mult returns the envelope's rate multiplier at the given time.
func (c OpenConfig) Mult(now time.Duration) float64 {
	m := 1.0
	for _, p := range c.Envelope {
		if now < p.From {
			break
		}
		m = p.Mult
	}
	return m
}

// Scaled shrinks the config's time axes by the scenario scale factor, the
// same way send windows and fault schedules scale: session lengths and
// envelope phase boundaries keep their position relative to the window.
// Zipf and the multipliers are shape parameters and do not scale.
func (c OpenConfig) Scaled(f float64) OpenConfig {
	if f == 1 || !c.Enabled() {
		return c
	}
	out := c
	out.ChurnOn = time.Duration(float64(c.ChurnOn) * f)
	out.ChurnOff = time.Duration(float64(c.ChurnOff) * f)
	out.Envelope = make([]RatePhase, len(c.Envelope))
	for i, p := range c.Envelope {
		out.Envelope[i] = RatePhase{From: time.Duration(float64(p.From) * f), Mult: p.Mult}
	}
	return out
}

// openState is the churn bookkeeping shared by the arrival loop and the
// per-client session timers.
type openState struct {
	active  []bool
	thinned uint64
}

// OpenTicks schedules the open-system injection loop. It is the closed
// Ticks shape — the same staggered slots, the same carry arithmetic —
// with three seams opened: the per-slot rate follows the envelope, the
// arriving element's source is drawn from the Zipf sampler (uniform slot
// identity otherwise), and arrivals for off-session sources are dropped.
// seed keys the extra ChildSeed streams (one for the skew, one per client
// for churn); inject receives the SOURCE client index.
func OpenTicks(s *sim.Simulator, seed int64, n int, rate float64, duration, tick time.Duration, cfg OpenConfig, inject func(source int)) {
	var zipf *ZipfSampler
	var zipfRng *rand.Rand
	if cfg.Zipf > 0 {
		zipf = NewZipf(n, cfg.Zipf)
		zipfRng = sim.ChildRand(seed, zipfStream)
	}
	st := &openState{active: make([]bool, n)}
	for i := range st.active {
		st.active[i] = true
	}
	if cfg.ChurnOn > 0 {
		for i := 0; i < n; i++ {
			scheduleChurn(s, st, i, sim.ChildRand(seed, churnStream+uint64(i)), cfg, duration)
		}
	}
	perClient := rate / float64(n)
	RatedTicks(s, n, func(_ int, now time.Duration) float64 {
		return perClient * cfg.Mult(now)
	}, duration, tick, func(slot int) {
		src := slot
		if zipf != nil {
			src = zipf.Sample(zipfRng)
		}
		if !st.active[src] {
			st.thinned++
			return
		}
		inject(src)
	})
}

// scheduleChurn runs one client's session chain: in-session for
// Exp(ChurnOn), departed for Exp(ChurnOff), repeating until the send
// window closes. Each client owns its rng stream and has exactly one
// outstanding timer, so the draw order inside the stream is fixed
// regardless of how the executor interleaves other events.
func scheduleChurn(s *sim.Simulator, st *openState, i int, rng *rand.Rand, cfg OpenConfig, duration time.Duration) {
	expDur := func(mean time.Duration) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		return d
	}
	var depart, arrive func()
	depart = func() {
		if s.Now() >= duration {
			return
		}
		st.active[i] = false
		s.After(expDur(cfg.ChurnOff), arrive)
	}
	arrive = func() {
		if s.Now() >= duration {
			return
		}
		st.active[i] = true
		s.After(expDur(cfg.ChurnOn), depart)
	}
	s.After(expDur(cfg.ChurnOn), depart)
}
