package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestSizeDistributionMatchesPaper(t *testing.T) {
	m := ArbitrumSizes()
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := float64(m.Sample(rng))
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	// Clamping trims the extreme tail, so allow generous bands around the
	// paper's mean 438 / σ 753.5.
	if mean < 380 || mean > 500 {
		t.Fatalf("sampled mean = %.1f, want ~438", mean)
	}
	if std < 450 || std > 900 {
		t.Fatalf("sampled stddev = %.1f, want ~753", std)
	}
}

func TestSizeBounds(t *testing.T) {
	m := ArbitrumSizes()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50_000; i++ {
		v := m.Sample(rng)
		if v < m.Min || v > m.Max {
			t.Fatalf("sample %d outside [%d, %d]", v, m.Min, m.Max)
		}
	}
}

func TestZeroMeanModel(t *testing.T) {
	m := SizeModel{Min: 10, Max: 20}
	rng := rand.New(rand.NewSource(3))
	if v := m.Sample(rng); v < 10 || v > 20 {
		t.Fatalf("degenerate model sample = %d", v)
	}
}

func deployModeled(seed int64, n int) (*sim.Simulator, *core.Deployment, *metrics.Recorder) {
	s := sim.New(seed)
	f := (n - 1) / 2
	rec := metrics.New(s, metrics.LevelThroughput, n, f, 0)
	d := core.Deploy(s, n, ledger.Config{Net: netsim.DefaultLANConfig()},
		core.Options{Algorithm: core.Hashchain, Mode: core.Modeled, CollectorLimit: 50, F: f}, rec)
	d.Start()
	return s, d, rec
}

func TestGeneratorRateAccuracy(t *testing.T) {
	s, d, rec := deployModeled(1, 4)
	g := New(d, rec, Config{Rate: 1000, Duration: 10 * time.Second})
	g.Start()
	s.RunUntil(30 * time.Second)
	d.Stop()
	// 1000 el/s for 10 s => ~10,000 elements (±2% from tick rounding).
	if g.Injected() < 9800 || g.Injected() > 10200 {
		t.Fatalf("injected = %d, want ~10000", g.Injected())
	}
	if g.Rejected() != 0 {
		t.Fatalf("rejected = %d, want 0", g.Rejected())
	}
	if !g.Done() {
		t.Fatal("generator not done after duration")
	}
	if rec.TotalInjected() != g.Injected() {
		t.Fatal("recorder and generator disagree on injected count")
	}
}

func TestGeneratorStopsAtDuration(t *testing.T) {
	s, d, rec := deployModeled(2, 4)
	g := New(d, rec, Config{Rate: 500, Duration: 5 * time.Second})
	g.Start()
	s.RunUntil(6 * time.Second)
	afterWindow := g.Injected()
	s.RunUntil(20 * time.Second)
	d.Stop()
	if g.Injected() != afterWindow {
		t.Fatal("elements injected after the sending window closed")
	}
}

func TestGeneratorElementsCommit(t *testing.T) {
	s, d, rec := deployModeled(3, 4)
	g := New(d, rec, Config{Rate: 200, Duration: 5 * time.Second})
	g.Start()
	s.RunUntil(40 * time.Second)
	d.Stop()
	if rec.TotalCommitted() != g.Injected() {
		t.Fatalf("committed %d of %d injected", rec.TotalCommitted(), g.Injected())
	}
}

func TestFullPayloadGeneration(t *testing.T) {
	s := sim.New(4)
	rec := metrics.New(s, metrics.LevelThroughput, 4, 1, 0)
	d := core.Deploy(s, 4, ledger.Config{Net: netsim.DefaultLANConfig()},
		core.Options{Algorithm: core.Compresschain, Mode: core.Full, CollectorLimit: 20, F: 1}, rec)
	d.Start()
	g := New(d, rec, Config{Rate: 100, Duration: 3 * time.Second, FullPayloads: true})
	g.Start()
	s.RunUntil(30 * time.Second)
	d.Stop()
	if g.Rejected() != 0 {
		t.Fatalf("full-payload rejects = %d (signature path broken?)", g.Rejected())
	}
	if rec.TotalCommitted() == 0 {
		t.Fatal("no full-payload elements committed")
	}
}
