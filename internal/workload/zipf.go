package workload

import (
	"math"
	"math/rand"
	"sort"
)

// ZipfSampler draws ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^α — the
// hot-key skew of the open-system workload (OpenConfig.Zipf). It is a
// plain cumulative-probability table with binary-search inversion, so it
// accepts any α ≥ 0 (math/rand's Zipf requires s > 1 and excludes the
// classic α = 1 web-trace skew) and consumes exactly one uniform draw
// per sample from whatever *rand.Rand the caller supplies — which is how
// the generator keeps the skew on its own sim.ChildSeed stream,
// independent of the timing draws.
type ZipfSampler struct {
	alpha float64
	cum   []float64 // cum[k] = P(rank ≤ k); cum[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent alpha. alpha = 0
// is the uniform distribution; larger alpha concentrates mass on the
// lowest ranks.
func NewZipf(n int, alpha float64) *ZipfSampler {
	if n <= 0 {
		panic("workload: ZipfSampler needs at least one rank")
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		panic("workload: ZipfSampler exponent must be finite and non-negative")
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -alpha)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1 // exact, so Sample can never fall off the end
	return &ZipfSampler{alpha: alpha, cum: cum}
}

// N returns the number of ranks.
func (z *ZipfSampler) N() int { return len(z.cum) }

// Alpha returns the exponent the sampler was built with.
func (z *ZipfSampler) Alpha() float64 { return z.alpha }

// Prob returns the probability mass of one rank.
func (z *ZipfSampler) Prob(rank int) float64 {
	if rank == 0 {
		return z.cum[0]
	}
	return z.cum[rank] - z.cum[rank-1]
}

// Sample draws one rank. Sequences are fully determined by the rng's
// seed: one Float64 per call, inverted through the fixed table.
func (z *ZipfSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}
