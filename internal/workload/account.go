package workload

import "repro/internal/wire"

// Account is the injection ledger shared by the single-instance and
// sharded generators: ONE definition of accepted, rejected and offered
// counts, tracked ids, and the per-source series behind the fairness
// index. Both executor paths book every attempt here, so admission
// rejections surface identically whether a run is sharded or not.
type Account struct {
	injected uint64
	rejected uint64

	ids         map[wire.ElementID]struct{}
	rejectedIDs map[wire.ElementID]struct{}

	offeredBy  []uint64
	acceptedBy []uint64
}

// NewAccount creates a ledger over the given number of source clients.
// trackIDs additionally records the id of every attempt, split into
// accepted and rejected sets for the invariant checker.
func NewAccount(sources int, trackIDs bool) *Account {
	a := &Account{
		offeredBy:  make([]uint64, sources),
		acceptedBy: make([]uint64, sources),
	}
	if trackIDs {
		a.ids = make(map[wire.ElementID]struct{})
		a.rejectedIDs = make(map[wire.ElementID]struct{})
	}
	return a
}

// Accept books an element the server admitted.
func (a *Account) Accept(e *wire.Element, source int) {
	a.injected++
	a.offeredBy[source]++
	a.acceptedBy[source]++
	if a.ids != nil {
		a.ids[e.ID] = struct{}{}
	}
}

// Reject books an element the server refused (admission control or
// validation). The id goes into the rejected set and NOT the injected
// one: a rejected element that later shows up in a committed epoch must
// trip the fabrication check as well as the dedicated rejected-ID check.
func (a *Account) Reject(e *wire.Element, source int) {
	a.rejected++
	a.offeredBy[source]++
	if a.rejectedIDs != nil {
		a.rejectedIDs[e.ID] = struct{}{}
	}
}

// Injected returns how many elements servers accepted.
func (a *Account) Injected() uint64 { return a.injected }

// Rejected returns how many adds servers refused.
func (a *Account) Rejected() uint64 { return a.rejected }

// Offered returns every add attempted: accepted + rejected.
func (a *Account) Offered() uint64 { return a.injected + a.rejected }

// InjectedIDs returns the accepted ids, or nil unless ids are tracked.
// The map is live state; treat it as read-only.
func (a *Account) InjectedIDs() map[wire.ElementID]struct{} { return a.ids }

// RejectedIDs returns the refused ids, or nil unless ids are tracked.
// The map is live state; treat it as read-only.
func (a *Account) RejectedIDs() map[wire.ElementID]struct{} { return a.rejectedIDs }

// Fairness returns Jain's index over the per-source acceptance ratios
// (accepted/offered) of every source that offered at least one element:
// (Σx)²/(n·Σx²), 1.0 when all sources are served equally, → 1/n when one
// source starves the rest. A run with no offers (or no rejections at
// all) is perfectly fair.
func (a *Account) Fairness() float64 {
	var sum, sumSq float64
	n := 0
	for i, off := range a.offeredBy {
		if off == 0 {
			continue
		}
		r := float64(a.acceptedBy[i]) / float64(off)
		sum += r
		sumSq += r * r
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}
