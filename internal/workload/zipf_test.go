package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z := NewZipf(10, 0)
	for k := 0; k < 10; k++ {
		if p := z.Prob(k); math.Abs(p-0.1) > 1e-12 {
			t.Fatalf("alpha=0 rank %d prob = %g, want 0.1", k, p)
		}
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1, 1.1, 2.5} {
		z := NewZipf(64, alpha)
		var sum float64
		for k := 0; k < z.N(); k++ {
			sum += z.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("alpha=%g probs sum to %g", alpha, sum)
		}
	}
}

// TestZipfRankFrequencySlope is the sampler's headline property: empirical
// sample frequencies must recover the configured exponent. On a log-log
// rank-frequency plot Zipf(α) is a line of slope -α; regressing the
// observed frequencies of the well-sampled head ranks recovers α within a
// few percent at 200k samples.
func TestZipfRankFrequencySlope(t *testing.T) {
	for _, alpha := range []float64{0.8, 1.0, 1.4} {
		z := NewZipf(100, alpha)
		rng := rand.New(rand.NewSource(7))
		counts := make([]float64, z.N())
		const samples = 200_000
		for i := 0; i < samples; i++ {
			counts[z.Sample(rng)]++
		}
		// Least-squares slope of log(count) against log(rank+1) over the
		// head (every rank there has thousands of hits, so sampling noise
		// is small); the tail of a steep distribution is too sparse to
		// regress on.
		var sx, sy, sxx, sxy float64
		const head = 20
		for k := 0; k < head; k++ {
			if counts[k] == 0 {
				t.Fatalf("alpha=%g head rank %d never sampled", alpha, k)
			}
			x, y := math.Log(float64(k+1)), math.Log(counts[k])
			sx, sy, sxx, sxy = sx+x, sy+y, sxx+x*x, sxy+x*y
		}
		slope := (float64(head)*sxy - sx*sy) / (float64(head)*sxx - sx*sx)
		if math.Abs(-slope-alpha) > 0.05*alpha+0.02 {
			t.Fatalf("alpha=%g recovered slope %.3f, want ~%.3f", alpha, -slope, alpha)
		}
	}
}

// TestZipfDeterministicStream pins the determinism contract the open
// workload builds on: the sample sequence is a pure function of (n, alpha,
// seed stream), so two generators over the same scenario seed draw
// identical source sequences — which is what keeps open-system runs
// byte-identical across IntraWorkers settings.
func TestZipfDeterministicStream(t *testing.T) {
	const seed, n = 42, 30
	draw := func() []int {
		z := NewZipf(n, 1.1)
		rng := sim.ChildRand(seed, 1<<40)
		out := make([]int, 5000)
		for i := range out {
			out[i] = z.Sample(rng)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestZipfPanicsOnBadInputs(t *testing.T) {
	for _, tc := range []struct {
		n     int
		alpha float64
	}{{0, 1}, {-3, 1}, {10, -0.5}, {10, math.NaN()}, {10, math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.n, tc.alpha)
				}
			}()
			NewZipf(tc.n, tc.alpha)
		}()
	}
}

// FuzzZipfSampler drives the sampler with arbitrary shapes and seeds and
// checks the invariants that hold for every valid input: samples stay in
// [0, n), the cumulative table is monotone with an exact 1.0 tail, and
// with positive skew rank 0 is sampled at least as often as the last rank.
func FuzzZipfSampler(f *testing.F) {
	f.Add(10, 1.1, int64(1))
	f.Add(1, 0.0, int64(7))
	f.Add(256, 3.0, int64(-9))
	f.Fuzz(func(t *testing.T, n int, alpha float64, seed int64) {
		if n <= 0 || n > 1<<12 {
			t.Skip()
		}
		if alpha < 0 || alpha > 8 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			t.Skip()
		}
		z := NewZipf(n, alpha)
		if z.N() != n || z.Alpha() != alpha {
			t.Fatalf("shape not preserved: n=%d alpha=%g", z.N(), z.Alpha())
		}
		rng := rand.New(rand.NewSource(seed))
		first, last := 0, 0
		for i := 0; i < 2048; i++ {
			k := z.Sample(rng)
			if k < 0 || k >= n {
				t.Fatalf("sample %d outside [0, %d)", k, n)
			}
			switch k {
			case 0:
				first++
			case n - 1:
				last++
			}
		}
		// The count comparison is only sound when the skew is decisive:
		// near-uniform shapes (small α or tiny head/tail ratio) lose the
		// ordering to sampling noise, e.g. n=220 α=0.0625 has a head/tail
		// ratio of just 1.4 over ~9 expected hits per rank.
		if n > 1 && z.Prob(0) >= 8*z.Prob(n-1) && 2048*z.Prob(0) >= 32 && first < last {
			t.Fatalf("rank 0 sampled %d times, last rank %d — skew inverted", first, last)
		}
		var sum float64
		for k := 0; k < n; k++ {
			p := z.Prob(k)
			if p < 0 || p > 1 {
				t.Fatalf("rank %d prob %g outside [0,1]", k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("probs sum to %g", sum)
		}
	})
}
