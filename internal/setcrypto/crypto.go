// Package setcrypto provides the cryptographic substrate the paper assumes:
// a deployed PKI (every process knows every other process's public key),
// ed25519 signatures (the EdDSA family the paper uses) and SHA-512 hashing
// (FIPS 180-4, as in the paper's evaluation).
//
// Two suites are provided. Ed25519Suite performs real signing, verification
// and hashing and is used by the full-fidelity code path (unit tests,
// examples, small benchmarks). FastSuite produces deterministic 64-byte
// tags derived from FNV hashing; it is used by the large virtual-time
// simulations, where cryptographic CPU cost is charged to the simulated
// CPU via the cost model instead of being burned for real (see
// internal/harness.CostModel).
package setcrypto

import (
	"crypto/ed25519"
	"crypto/sha512"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Sizes of the cryptographic artifacts on the wire, matching the paper's
// reported lengths (SHA-512 digests and ed25519 signatures).
const (
	HashSize      = sha512.Size           // 64 bytes
	SignatureSize = ed25519.SignatureSize // 64 bytes
	PublicKeySize = ed25519.PublicKeySize // 32 bytes
)

// Suite bundles the primitives the Setchain algorithms need. Hash is
// SHA-512 shaped (64-byte digests) in both implementations so wire sizes
// are identical regardless of suite.
type Suite interface {
	// Sign signs msg with the private key of the given signer.
	Sign(signer KeyPair, msg []byte) []byte
	// Verify reports whether sig is a valid signature of msg under pub.
	Verify(pub PublicKey, msg []byte, sig []byte) bool
	// HashData returns the 64-byte digest of the concatenation of chunks.
	HashData(chunks ...[]byte) []byte
	// Name identifies the suite in logs and experiment metadata.
	Name() string
}

// PublicKey is an opaque verification key.
type PublicKey []byte

// KeyPair holds a signing key and its public half.
type KeyPair struct {
	Public  PublicKey
	private []byte
}

// Registry is the PKI: it maps process indices (servers 0..n-1 and any
// number of clients) to their public keys. The paper assumes all processes
// know all public keys upfront.
type Registry struct {
	keys map[int]PublicKey
}

// NewRegistry returns an empty PKI registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[int]PublicKey)}
}

// Register records the public key for a process id, replacing any previous
// key for that id.
func (r *Registry) Register(id int, pub PublicKey) {
	r.keys[id] = pub
}

// Lookup returns the public key for id, or nil if unknown.
func (r *Registry) Lookup(id int) PublicKey {
	return r.keys[id]
}

// Len reports how many processes are registered.
func (r *Registry) Len() int { return len(r.keys) }

// Ed25519Suite is the real-cryptography suite.
type Ed25519Suite struct{}

// Name implements Suite.
func (Ed25519Suite) Name() string { return "ed25519+sha512" }

// GenerateKeyPair creates an ed25519 keypair from the deterministic rng so
// simulations with the same seed use the same keys.
func GenerateKeyPair(rng *rand.Rand) KeyPair {
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(rng.Intn(256))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return KeyPair{Public: PublicKey(priv.Public().(ed25519.PublicKey)), private: priv}
}

// Sign implements Suite.
func (Ed25519Suite) Sign(signer KeyPair, msg []byte) []byte {
	if len(signer.private) != ed25519.PrivateKeySize {
		panic(fmt.Sprintf("setcrypto: signing with a non-ed25519 key (len %d)", len(signer.private)))
	}
	return ed25519.Sign(ed25519.PrivateKey(signer.private), msg)
}

// Verify implements Suite.
func (Ed25519Suite) Verify(pub PublicKey, msg []byte, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}

// HashData implements Suite using SHA-512.
func (Ed25519Suite) HashData(chunks ...[]byte) []byte {
	h := sha512.New()
	for _, c := range chunks {
		h.Write(c)
	}
	return h.Sum(nil)
}

// FastSuite is a non-cryptographic stand-in with identical artifact sizes.
// A "signature" is a 64-byte tag binding (key, msg) through FNV-1a; forging
// it would be trivial for a real adversary, but inside the simulation the
// only adversaries are the Byzantine behaviors we inject ourselves, and
// those are modeled at the protocol level (internal/byzantine), not at the
// bit level. Its purpose is to keep large simulations cheap while the cost
// model charges realistic crypto time to the virtual CPU.
type FastSuite struct{}

// Name implements Suite.
func (FastSuite) Name() string { return "fast-fnv" }

// FastKeyPair derives a FastSuite keypair for a process id.
func FastKeyPair(id int) KeyPair {
	pub := make([]byte, PublicKeySize)
	binary.LittleEndian.PutUint64(pub, uint64(id)+0x9E3779B97F4A7C15)
	priv := make([]byte, 8)
	binary.LittleEndian.PutUint64(priv, uint64(id)+1)
	return KeyPair{Public: pub, private: priv}
}

func fastTag(key []byte, msg []byte) []byte {
	h := fnv.New64a()
	h.Write(key)
	h.Write(msg)
	base := h.Sum64()
	tag := make([]byte, SignatureSize)
	for i := 0; i < SignatureSize/8; i++ {
		binary.LittleEndian.PutUint64(tag[i*8:], base^uint64(i)*0x9E3779B97F4A7C15)
	}
	return tag
}

// Sign implements Suite.
func (FastSuite) Sign(signer KeyPair, msg []byte) []byte {
	return fastTag(signer.Public, msg)
}

// Verify implements Suite.
func (FastSuite) Verify(pub PublicKey, msg []byte, sig []byte) bool {
	if len(sig) != SignatureSize {
		return false
	}
	want := fastTag(pub, msg)
	for i := range want {
		if want[i] != sig[i] {
			return false
		}
	}
	return true
}

// HashData implements Suite with a 64-byte FNV-derived digest, preserving
// SHA-512's wire size.
func (FastSuite) HashData(chunks ...[]byte) []byte {
	h := fnv.New64a()
	for _, c := range chunks {
		h.Write(c)
	}
	base := h.Sum64()
	d := make([]byte, HashSize)
	for i := 0; i < HashSize/8; i++ {
		binary.LittleEndian.PutUint64(d[i*8:], base+uint64(i)*0x9E3779B97F4A7C15)
	}
	return d
}
