// Package setcrypto provides the cryptographic substrate the paper assumes:
// a deployed PKI (every process knows every other process's public key),
// ed25519 signatures (the EdDSA family the paper uses) and SHA-512 hashing
// (FIPS 180-4, as in the paper's evaluation).
//
// Two suites are provided. Ed25519Suite performs real signing, verification
// and hashing and is used by the full-fidelity code path (unit tests,
// examples, small benchmarks). FastSuite produces deterministic 64-byte
// tags from an FNV-seeded wordwise hash; it is used by the large virtual-time
// simulations, where cryptographic CPU cost is charged to the simulated
// CPU via the cost model instead of being burned for real (see
// core.CostModel and DESIGN.md §1, fidelity substitutions).
package setcrypto

import (
	"crypto/ed25519"
	"crypto/sha512"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Sizes of the cryptographic artifacts on the wire, matching the paper's
// reported lengths (SHA-512 digests and ed25519 signatures).
const (
	HashSize      = sha512.Size           // 64 bytes
	SignatureSize = ed25519.SignatureSize // 64 bytes
	PublicKeySize = ed25519.PublicKeySize // 32 bytes
)

// Suite bundles the primitives the Setchain algorithms need. Hash is
// SHA-512 shaped (64-byte digests) in both implementations so wire sizes
// are identical regardless of suite.
type Suite interface {
	// Sign signs msg with the private key of the given signer.
	Sign(signer KeyPair, msg []byte) []byte
	// Verify reports whether sig is a valid signature of msg under pub.
	Verify(pub PublicKey, msg []byte, sig []byte) bool
	// HashData returns the 64-byte digest of the concatenation of chunks.
	HashData(chunks ...[]byte) []byte
	// Name identifies the suite in logs and experiment metadata.
	Name() string
}

// PublicKey is an opaque verification key.
type PublicKey []byte

// KeyPair holds a signing key and its public half.
type KeyPair struct {
	Public  PublicKey
	private []byte
}

// Registry is the PKI: it maps process indices (servers 0..n-1 and any
// number of clients) to their public keys. The paper assumes all processes
// know all public keys upfront.
type Registry struct {
	keys map[int]PublicKey
}

// NewRegistry returns an empty PKI registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[int]PublicKey)}
}

// Register records the public key for a process id, replacing any previous
// key for that id.
func (r *Registry) Register(id int, pub PublicKey) {
	r.keys[id] = pub
}

// Lookup returns the public key for id, or nil if unknown.
func (r *Registry) Lookup(id int) PublicKey {
	return r.keys[id]
}

// Len reports how many processes are registered.
func (r *Registry) Len() int { return len(r.keys) }

// Ed25519Suite is the real-cryptography suite.
type Ed25519Suite struct{}

// Name implements Suite.
func (Ed25519Suite) Name() string { return "ed25519+sha512" }

// GenerateKeyPair creates an ed25519 keypair from the deterministic rng so
// simulations with the same seed use the same keys.
func GenerateKeyPair(rng *rand.Rand) KeyPair {
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(rng.Intn(256))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return KeyPair{Public: PublicKey(priv.Public().(ed25519.PublicKey)), private: priv}
}

// Sign implements Suite.
func (Ed25519Suite) Sign(signer KeyPair, msg []byte) []byte {
	if len(signer.private) != ed25519.PrivateKeySize {
		panic(fmt.Sprintf("setcrypto: signing with a non-ed25519 key (len %d)", len(signer.private)))
	}
	return ed25519.Sign(ed25519.PrivateKey(signer.private), msg)
}

// Verify implements Suite.
func (Ed25519Suite) Verify(pub PublicKey, msg []byte, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}

// HashData implements Suite using SHA-512.
func (Ed25519Suite) HashData(chunks ...[]byte) []byte {
	h := sha512.New()
	for _, c := range chunks {
		h.Write(c)
	}
	return h.Sum(nil)
}

// FastSuite is a non-cryptographic stand-in with identical artifact sizes.
// A "signature" is a 64-byte tag binding (key, msg) through a seeded
// multiply-rotate word hash; forging it would be trivial for a real
// adversary, but inside the simulation the only adversaries are the
// Byzantine behaviors we inject ourselves, and those are modeled at the
// protocol level (internal/byzantine), not at the bit level. Its purpose is
// to keep large simulations cheap while the cost model charges realistic
// crypto time to the virtual CPU. The hash consumes 8 input bytes per step
// (versus FNV's one) and Verify checks the tag wordwise without
// materializing it, so sign/verify on the simulation hot path costs a few
// dozen nanoseconds and Verify does not allocate. The function is a fixed
// deterministic constant of the input — never seeded per process — so study
// results stay byte-identical across runs and machines.
type FastSuite struct{}

// Name implements Suite.
func (FastSuite) Name() string { return "fast-wordhash" }

// FastKeyPair derives a FastSuite keypair for a process id.
func FastKeyPair(id int) KeyPair {
	pub := make([]byte, PublicKeySize)
	binary.LittleEndian.PutUint64(pub, uint64(id)+0x9E3779B97F4A7C15)
	priv := make([]byte, 8)
	binary.LittleEndian.PutUint64(priv, uint64(id)+1)
	return KeyPair{Public: pub, private: priv}
}

// fastHash mixing constants (splitmix64 / xxhash-style odd primes).
const (
	fastPrime1 = 0x9E3779B97F4A7C15
	fastPrime2 = 0xC2B2AE3D27D4EB4F
	fastSeed   = 0xCBF29CE484222325 // FNV offset basis, kept as the seed
)

// fastMix absorbs one 64-bit word into the running state.
func fastMix(h, v uint64) uint64 {
	h ^= v * fastPrime1
	h = (h<<31 | h>>33) * fastPrime2
	return h
}

// fastAbsorb hashes data into h, 8 bytes per step.
func fastAbsorb(h uint64, data []byte) uint64 {
	for len(data) >= 8 {
		h = fastMix(h, binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	if len(data) > 0 {
		var tail [8]byte
		copy(tail[:], data)
		h = fastMix(h, binary.LittleEndian.Uint64(tail[:])^uint64(len(data)))
	}
	return h
}

// fastFinal scrambles the state so low-entropy inputs spread over all bits.
func fastFinal(h uint64) uint64 {
	h ^= h >> 33
	h *= fastPrime1
	h ^= h >> 29
	h *= fastPrime2
	h ^= h >> 32
	return h
}

// fastTagBase derives the 64-bit base of the (key, msg) tag.
func fastTagBase(key []byte, msg []byte) uint64 {
	h := fastAbsorb(uint64(fastSeed), key)
	h = fastAbsorb(h, msg)
	return fastFinal(h)
}

// tagWord expands the base into the i-th 8-byte word of the 64-byte tag.
func tagWord(base uint64, i int) uint64 {
	return base ^ uint64(i)*fastPrime1
}

// Sign implements Suite.
func (FastSuite) Sign(signer KeyPair, msg []byte) []byte {
	base := fastTagBase(signer.Public, msg)
	tag := make([]byte, SignatureSize)
	for i := 0; i < SignatureSize/8; i++ {
		binary.LittleEndian.PutUint64(tag[i*8:], tagWord(base, i))
	}
	return tag
}

// Verify implements Suite. It recomputes the tag base and compares the
// signature wordwise, allocating nothing — Verify dominates the simulation
// hot path (mempool CheckTx on every node, consensus vote checks, hash-batch
// co-sign verification).
func (FastSuite) Verify(pub PublicKey, msg []byte, sig []byte) bool {
	if len(sig) != SignatureSize {
		return false
	}
	base := fastTagBase(pub, msg)
	for i := 0; i < SignatureSize/8; i++ {
		if binary.LittleEndian.Uint64(sig[i*8:]) != tagWord(base, i) {
			return false
		}
	}
	return true
}

// HashData implements Suite with a 64-byte digest derived from the word
// hash, preserving SHA-512's wire size. Chunk boundaries are absorbed into
// the state so reslicing the same bytes differently yields distinct
// digests, mirroring a real hash over a length-prefixed encoding.
func (FastSuite) HashData(chunks ...[]byte) []byte {
	h := uint64(fastSeed)
	for _, c := range chunks {
		h = fastAbsorb(h, c)
		h = fastMix(h, uint64(len(c)))
	}
	base := fastFinal(h)
	d := make([]byte, HashSize)
	for i := 0; i < HashSize/8; i++ {
		binary.LittleEndian.PutUint64(d[i*8:], base+uint64(i)*fastPrime1)
	}
	return d
}
