package setcrypto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEd25519SignVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kp := GenerateKeyPair(rng)
	suite := Ed25519Suite{}
	msg := []byte("setchain epoch 7")
	sig := suite.Sign(kp, msg)
	if len(sig) != SignatureSize {
		t.Fatalf("signature size = %d, want %d", len(sig), SignatureSize)
	}
	if !suite.Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if suite.Verify(kp.Public, []byte("other"), sig) {
		t.Fatal("signature verified for wrong message")
	}
	sig[0] ^= 0xFF
	if suite.Verify(kp.Public, msg, sig) {
		t.Fatal("tampered signature verified")
	}
}

func TestEd25519WrongKeyRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kp1 := GenerateKeyPair(rng)
	kp2 := GenerateKeyPair(rng)
	suite := Ed25519Suite{}
	msg := []byte("cross-key")
	sig := suite.Sign(kp1, msg)
	if suite.Verify(kp2.Public, msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	a := GenerateKeyPair(rand.New(rand.NewSource(42)))
	b := GenerateKeyPair(rand.New(rand.NewSource(42)))
	if !bytes.Equal(a.Public, b.Public) {
		t.Fatal("same seed produced different keys")
	}
}

func TestEd25519HashShape(t *testing.T) {
	suite := Ed25519Suite{}
	h := suite.HashData([]byte("a"), []byte("b"))
	h2 := suite.HashData([]byte("ab"))
	if len(h) != HashSize {
		t.Fatalf("hash size = %d, want %d", len(h), HashSize)
	}
	if !bytes.Equal(h, h2) {
		t.Fatal("chunked hashing differs from contiguous hashing")
	}
	if bytes.Equal(h, suite.HashData([]byte("ac"))) {
		t.Fatal("different inputs hashed equal")
	}
}

func TestFastSuiteRoundTrip(t *testing.T) {
	suite := FastSuite{}
	kp := FastKeyPair(3)
	msg := []byte("fast mode message")
	sig := suite.Sign(kp, msg)
	if len(sig) != SignatureSize {
		t.Fatalf("fast signature size = %d, want %d", len(sig), SignatureSize)
	}
	if !suite.Verify(kp.Public, msg, sig) {
		t.Fatal("fast suite rejected its own signature")
	}
	other := FastKeyPair(4)
	if suite.Verify(other.Public, msg, sig) {
		t.Fatal("fast suite verified under wrong key")
	}
	if suite.Verify(kp.Public, []byte("tampered"), sig) {
		t.Fatal("fast suite verified wrong message")
	}
}

func TestFastSuiteHashShape(t *testing.T) {
	suite := FastSuite{}
	h := suite.HashData([]byte("x"))
	if len(h) != HashSize {
		t.Fatalf("fast hash size = %d, want %d", len(h), HashSize)
	}
	if bytes.Equal(h, suite.HashData([]byte("y"))) {
		t.Fatal("fast hash collided on trivial inputs")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if reg.Lookup(0) != nil {
		t.Fatal("empty registry returned a key")
	}
	kp := FastKeyPair(0)
	reg.Register(0, kp.Public)
	if got := reg.Lookup(0); !bytes.Equal(got, kp.Public) {
		t.Fatal("registry returned wrong key")
	}
	if reg.Len() != 1 {
		t.Fatalf("len = %d, want 1", reg.Len())
	}
	// Replacement.
	kp2 := FastKeyPair(99)
	reg.Register(0, kp2.Public)
	if got := reg.Lookup(0); !bytes.Equal(got, kp2.Public) {
		t.Fatal("registry did not replace key")
	}
	if reg.Len() != 1 {
		t.Fatalf("len after replace = %d, want 1", reg.Len())
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	suites := []Suite{Ed25519Suite{}, FastSuite{}}
	for _, s := range suites {
		if s.Verify(nil, []byte("m"), make([]byte, SignatureSize)) {
			t.Fatalf("%s verified with nil key", s.Name())
		}
		if s.Verify(make([]byte, PublicKeySize), []byte("m"), nil) {
			t.Fatalf("%s verified with nil signature", s.Name())
		}
		if s.Verify(make([]byte, 5), []byte("m"), make([]byte, SignatureSize)) && s.Name() == "ed25519+sha512" {
			t.Fatalf("%s verified with short key", s.Name())
		}
	}
}

// Property: for both suites, any (id, message) signs and verifies, and the
// signature never verifies under a different id's key.
func TestQuickSignVerifyProperty(t *testing.T) {
	fast := FastSuite{}
	f := func(id uint8, msg []byte) bool {
		kp := FastKeyPair(int(id))
		sig := fast.Sign(kp, msg)
		if !fast.Verify(kp.Public, msg, sig) {
			return false
		}
		other := FastKeyPair(int(id) + 1)
		return !fast.Verify(other.Public, msg, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	kp := GenerateKeyPair(rand.New(rand.NewSource(1)))
	suite := Ed25519Suite{}
	msg := make([]byte, 438)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		suite.Sign(kp, msg)
	}
}

func BenchmarkEd25519Verify(b *testing.B) {
	kp := GenerateKeyPair(rand.New(rand.NewSource(1)))
	suite := Ed25519Suite{}
	msg := make([]byte, 438)
	sig := suite.Sign(kp, msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		suite.Verify(kp.Public, msg, sig)
	}
}

func BenchmarkFastVerify(b *testing.B) {
	kp := FastKeyPair(1)
	suite := FastSuite{}
	msg := make([]byte, 438)
	sig := suite.Sign(kp, msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		suite.Verify(kp.Public, msg, sig)
	}
}
