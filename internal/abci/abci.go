// Package abci defines the interface between the block-based ledger and
// the replicated application, mirroring CometBFT's Application BlockChain
// Interface (ABCI) in the two places the paper uses it (Appendix E):
// transaction admission (CheckTx) and ordered block delivery
// (FinalizeBlock). The Setchain server logic lives entirely behind this
// interface, exactly as the paper implements its algorithms "in the ABCI
// section of the ledger".
//
// See DESIGN.md §4 (ledger stack).
package abci

import "repro/internal/wire"

// Application is the replicated state machine driven by the ledger.
type Application interface {
	// CheckTx validates a transaction before it is admitted to a mempool.
	// It runs on every node a transaction reaches (submission target and
	// gossip receivers alike). Returning false drops the transaction at
	// that node. CheckTx must not mutate application state.
	CheckTx(tx *wire.Tx) bool

	// FinalizeBlock delivers a committed block. The ledger guarantees the
	// paper's Properties 9-11: every correct node receives the same blocks
	// in the same order, exactly once, and every appended valid
	// transaction is eventually delivered in some block.
	FinalizeBlock(b *wire.Block)
}

// NopApplication accepts everything and ignores blocks; useful as a default
// and in ledger-only tests.
type NopApplication struct{}

// CheckTx implements Application.
func (NopApplication) CheckTx(*wire.Tx) bool { return true }

// FinalizeBlock implements Application.
func (NopApplication) FinalizeBlock(*wire.Block) {}
