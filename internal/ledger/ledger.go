// Package ledger assembles the block-based ledger abstraction the Setchain
// algorithms are built on (paper §2): per-server nodes combining a gossip
// mempool and a Tendermint-style consensus engine behind two endpoints —
// Append(tx) to submit a transaction and ABCI FinalizeBlock notifications
// when blocks commit. It provides the paper's ledger properties:
//
//   - Property 9 (Ledger-Add-Eventual-Notify): a valid transaction appended
//     by a correct server is eventually committed at a fixed position and
//     every correct server is notified;
//   - Property 10 (Ledger-Consistent-Notification): all correct servers see
//     the same blocks in the same order;
//   - Property 11 (Notification-Implies-Append): committed transactions
//     were appended by some server.
//
// See DESIGN.md §4 (ledger stack).
package ledger

import (
	"fmt"

	"repro/internal/abci"
	"repro/internal/consensus"
	"repro/internal/mempool"
	"repro/internal/netsim"
	"repro/internal/setcrypto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// AppMsgHandler receives non-ledger messages addressed to a node (the
// Setchain layer's batch request/response traffic shares the same fabric).
type AppMsgHandler func(from wire.NodeID, payload any, size int)

// Node is one server's ledger stack: mempool + consensus + application.
type Node struct {
	ID   wire.NodeID
	Pool *mempool.Mempool
	Cons *consensus.Node

	net    *netsim.Network
	sim    *sim.Simulator // the queue owning this node's events
	appMsg AppMsgHandler
	mesh   *netsim.Mesh // non-nil iff the cluster runs the mesh transport
}

// Sim returns the simulator owning this node's events: the partition queue
// in a partitioned run, the cluster's root simulator otherwise.
func (n *Node) Sim() *sim.Simulator { return n.sim }

// Append submits a transaction to this node's ledger (the paper's
// L.append / CometBFT BroadcastTxAsync). Returns whether the local mempool
// admitted it; gossip then replicates it and consensus eventually packs it
// into a block.
func (n *Node) Append(tx *wire.Tx) bool {
	return n.Pool.AddTx(tx)
}

// AdmitElement consults the mempool's admission policy for one incoming
// client element (DESIGN.md §14). The Setchain server gates every add —
// Vanilla's per-element transaction and the batch algorithms' collector
// entries alike — through this one door BEFORE the element enters any
// application state, so a refused element leaves no trace anywhere.
// Always true with admission off.
func (n *Node) AdmitElement() bool {
	return n.Pool.AdmitElement()
}

// SetAppMsgHandler routes non-consensus network payloads (anything that is
// not mempool gossip or a consensus message) to the application layer.
func (n *Node) SetAppMsgHandler(h AppMsgHandler) { n.appMsg = h }

// Checkpointed tells the ledger stack the application sealed a pruning
// checkpoint at the given height: consensus drops committed blocks and
// decided proposals at or below it, and the mempool drops the committed-key
// tombstones those blocks justified. Called by the application (core) when
// Options.Prune is on.
func (n *Node) Checkpointed(height uint64) {
	n.Cons.SetRetainHorizon(height)
	n.Pool.PruneTombstonesBelow(height)
}

// Send transmits an application-level message to a peer over the same
// simulated fabric the ledger uses.
func (n *Node) Send(to wire.NodeID, payload any, size int) {
	n.net.Send(n.ID, to, payload, size)
}

func (n *Node) receive(from wire.NodeID, payload any, size int) {
	switch msg := payload.(type) {
	case *netsim.Envelope:
		// Mesh transport: unwrap, dedup and relay; fresh payloads come
		// back through receiveGossiped with their origin as the sender.
		n.mesh.Receive(n.ID, from, msg)
	case *mempool.GossipMsg:
		n.Pool.ReceiveGossip(msg)
	case *consensus.Proposal, *consensus.Vote, *consensus.BlockRequest,
		*consensus.BlockResponse, *consensus.SyncOffer,
		*consensus.SyncChunkRequest, *consensus.SyncChunk:
		n.Cons.Receive(from, payload)
	default:
		if n.appMsg != nil {
			n.appMsg(from, payload, size)
		}
	}
}

// receiveGossiped is the mesh's local delivery callback: a fresh gossiped
// payload, attributed to its ORIGINATOR (not the relaying neighbor), so
// consensus sender checks and catch-up targeting behave exactly as under
// direct sends. Envelopes never nest, so routing back through receive is
// terminal.
func (n *Node) receiveGossiped(origin wire.NodeID, payload any, size int) {
	n.receive(origin, payload, size)
}

// Config describes a ledger cluster.
type Config struct {
	// N is the number of servers (validators).
	N int
	// FirstID offsets the cluster's node ids: validators are
	// FirstID..FirstID+N-1. Zero gives the classic 0..N-1 ids; sharded
	// worlds (internal/shard) give every shard's cluster a disjoint range
	// so several independent consensus groups can share one network.
	FirstID wire.NodeID
	// ClientIDBase offsets the deployment's client ids (and thus their PKI
	// registry slots) the same way FirstID offsets node ids. Consumed by
	// core.Deploy; sharded worlds give each shard a disjoint client range
	// so element ids stay globally unique across shards.
	ClientIDBase int
	// Net configures the simulated network. Ignored when Network is set.
	Net netsim.Config
	// Network, when non-nil, attaches the cluster to an existing simulated
	// fabric instead of building its own from Net. Sharded worlds pass one
	// shared network to every shard's cluster, so scheduled faults and
	// partitions compose across the whole deployment (DESIGN.md §10).
	Network *netsim.Network
	// Consensus holds the engine parameters (block size, block interval).
	Consensus consensus.Params
	// Mempool holds pool limits and gossip cadence.
	Mempool mempool.Config
	// Transport selects the fan-out path: "" or "broadcast" is the classic
	// per-validator send loop (byte-identical to every pre-mesh run);
	// "mesh" routes proposals, votes and mempool gossip over the
	// bounded-fanout overlay (DESIGN.md §13). Catch-up traffic is always
	// point-to-point.
	Transport string
	// Fanout is the mesh's target node degree; values < 2 default to 8.
	// Ignored unless Transport is "mesh".
	Fanout int
	// Suite selects real or fast crypto. Nil defaults to FastSuite.
	Suite setcrypto.Suite
	// OnTxEnterMempool observes transactions entering each node's pool.
	OnTxEnterMempool mempool.EnterFunc
	// SimFor, when non-nil, maps each node id to the simulator (partition)
	// that owns it in a partitioned run (DESIGN.md §12): the node's mempool,
	// consensus engine, and network endpoint all schedule on that queue.
	// Ids mapped to nil (and all ids when SimFor is nil) run on the root
	// simulator, which is exactly the sequential path.
	SimFor func(wire.NodeID) *sim.Simulator
}

// simFor resolves the owning simulator for a node id.
func (cfg Config) simFor(root *sim.Simulator, id wire.NodeID) *sim.Simulator {
	if cfg.SimFor != nil {
		if s := cfg.SimFor(id); s != nil {
			return s
		}
	}
	return root
}

// Cluster is a full n-node ledger deployment on one simulator.
type Cluster struct {
	Sim      *sim.Simulator
	Net      *netsim.Network
	Nodes    []*Node
	Suite    setcrypto.Suite
	Registry *setcrypto.Registry
	Keys     []setcrypto.KeyPair
	// Mesh is the gossip overlay carrying this cluster's consensus and
	// mempool fan-out; nil on the classic broadcast transport. Sharded
	// worlds build one mesh per shard over the shared fabric.
	Mesh *netsim.Mesh
}

// NewCluster builds the network, PKI, mempools and consensus nodes. The
// application for each node defaults to a no-op; install real apps with
// SetApp before calling Start.
func NewCluster(s *sim.Simulator, cfg Config) *Cluster {
	if cfg.N <= 0 {
		panic("ledger: cluster needs at least one node")
	}
	suite := cfg.Suite
	if suite == nil {
		suite = setcrypto.FastSuite{}
	}
	net := cfg.Network
	if net == nil {
		net = netsim.New(s, cfg.Net)
		if cfg.SimFor != nil {
			net.SetSimResolver(cfg.SimFor)
		}
	}
	c := &Cluster{
		Sim:      s,
		Net:      net,
		Suite:    suite,
		Registry: setcrypto.NewRegistry(),
	}
	validators := make([]wire.NodeID, cfg.N)
	for i := 0; i < cfg.N; i++ {
		validators[i] = cfg.FirstID + wire.NodeID(i)
		var kp setcrypto.KeyPair
		if _, real := suite.(setcrypto.Ed25519Suite); real {
			kp = setcrypto.GenerateKeyPair(s.Rand())
		} else {
			kp = setcrypto.FastKeyPair(int(validators[i]))
		}
		c.Keys = append(c.Keys, kp)
		c.Registry.Register(int(validators[i]), kp.Public)
	}
	for i := 0; i < cfg.N; i++ {
		id := validators[i]
		peers := make([]wire.NodeID, 0, cfg.N-1)
		for _, v := range validators {
			if v != id {
				peers = append(peers, v)
			}
		}
		ns := cfg.simFor(s, id)
		node := &Node{ID: id, net: c.Net, sim: ns}
		node.Pool = mempool.New(id, ns, c.Net, peers, cfg.Mempool, nil, cfg.OnTxEnterMempool)
		node.Cons = consensus.NewNode(id, validators, ns, c.Net, cfg.Consensus,
			suite, c.Keys[i], c.Registry, node.Pool, abci.NopApplication{})
		c.Nodes = append(c.Nodes, node)
		c.Net.AddNode(id, node.receive)
	}
	if cfg.Transport == "mesh" {
		fanout := cfg.Fanout
		if fanout < 2 {
			fanout = 8
		}
		c.Mesh = netsim.NewMesh(c.Net, validators, fanout)
		for _, node := range c.Nodes {
			node.mesh = c.Mesh
			c.Mesh.SetDeliver(node.ID, node.receiveGossiped)
			node.installMeshBroadcaster()
		}
	}
	return c
}

// installMeshBroadcaster points the node's consensus engine and mempool at
// the mesh publish path. Re-run whenever Cons is rebuilt (SetApp).
func (n *Node) installMeshBroadcaster() {
	mesh, id := n.mesh, n.ID
	pub := func(payload any, size int) { mesh.Gossip(id, payload, size) }
	n.Cons.SetBroadcaster(pub)
	n.Pool.SetBroadcaster(pub)
}

// SetApp installs the application (and its CheckTx) on one node. Must be
// called before Start. id is the node's (possibly FirstID-offset) id.
func (c *Cluster) SetApp(id wire.NodeID, app abci.Application) {
	node, key := c.node(id)
	// Rebuild the consensus node with the real app; mempool gets the app's
	// CheckTx as its admission filter.
	validators := make([]wire.NodeID, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		validators = append(validators, n.ID)
	}
	node.Pool.SetCheck(app.CheckTx)
	node.Cons = consensus.NewNode(id, validators, node.sim, c.Net, node.Cons.Params(),
		c.Suite, key, c.Registry, node.Pool, app)
	// Applications that checkpoint (core.Server) also serve and install
	// state-sync snapshots for deep catch-up.
	if syncer, ok := app.(consensus.StateSyncer); ok {
		node.Cons.SetStateSyncer(syncer)
	}
	// The rebuild above discarded the old engine's transport wiring.
	if c.Mesh != nil {
		node.installMeshBroadcaster()
	}
}

// node resolves a node id to the cluster's node and its keypair.
func (c *Cluster) node(id wire.NodeID) (*Node, setcrypto.KeyPair) {
	for i, n := range c.Nodes {
		if n.ID == id {
			return n, c.Keys[i]
		}
	}
	panic(fmt.Sprintf("ledger: no node %d in cluster", id))
}

// Start launches consensus on every node.
func (c *Cluster) Start() {
	for _, n := range c.Nodes {
		n.Cons.Start()
	}
}

// Stop freezes all nodes.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Cons.Stop()
	}
}

// VerifyConsistentChains checks Property 10 across all live nodes: every
// pair of chains agrees on the overlap of their retained height ranges
// (checkpoint pruning may have trimmed different prefixes — chains are
// aligned by absolute height via ChainBase, and the pruned prefixes are
// cross-checked digest-wise by the invariant checker instead). Returns an
// error describing the first divergence found.
func (c *Cluster) VerifyConsistentChains() error {
	for i := 0; i < len(c.Nodes); i++ {
		for j := i + 1; j < len(c.Nodes); j++ {
			a, b := c.Nodes[i].Cons.Chain(), c.Nodes[j].Cons.Chain()
			baseA, baseB := c.Nodes[i].Cons.ChainBase(), c.Nodes[j].Cons.ChainBase()
			lo := baseA
			if baseB > lo {
				lo = baseB
			}
			hi := baseA + uint64(len(a))
			if top := baseB + uint64(len(b)); top < hi {
				hi = top
			}
			for ht := lo + 1; ht <= hi; ht++ {
				ba, bb := a[ht-1-baseA], b[ht-1-baseB]
				if len(ba.Txs) != len(bb.Txs) {
					return fmt.Errorf("nodes %d/%d diverge at height %d: %d vs %d txs",
						i, j, ht, len(ba.Txs), len(bb.Txs))
				}
				for k := range ba.Txs {
					if ba.Txs[k].MapKey() != bb.Txs[k].MapKey() {
						return fmt.Errorf("nodes %d/%d diverge at height %d tx %d",
							i, j, ht, k)
					}
				}
			}
		}
	}
	return nil
}
