package ledger_test

import (
	"testing"
	"time"

	"repro/internal/abci"
	"repro/internal/ledger"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

func elemTx(i, size int) *wire.Tx {
	e := &wire.Element{Size: size}
	e.ID[0] = byte(i)
	e.ID[1] = byte(i >> 8)
	return &wire.Tx{Kind: wire.TxElement, Element: e}
}

// recordingApp counts CheckTx calls and collects finalized blocks.
type recordingApp struct {
	checked int
	blocks  []*wire.Block
	reject  bool
}

func (a *recordingApp) CheckTx(tx *wire.Tx) bool {
	a.checked++
	return !a.reject
}

func (a *recordingApp) FinalizeBlock(b *wire.Block) { a.blocks = append(a.blocks, b) }

func TestAppendEventualNotify(t *testing.T) {
	// Property 9: an appended valid tx is eventually delivered to every
	// correct server via FinalizeBlock, at the same position.
	s := sim.New(1)
	c := ledger.NewCluster(s, ledger.Config{N: 4, Net: netsim.DefaultLANConfig()})
	apps := make([]*recordingApp, 4)
	for i := range apps {
		apps[i] = &recordingApp{}
		c.SetApp(wire.NodeID(i), apps[i])
	}
	c.Start()
	tx := elemTx(1, 100)
	s.After(time.Second, func() {
		if !c.Nodes[2].Append(tx) {
			t.Error("append rejected")
		}
	})
	s.RunUntil(15 * time.Second)
	c.Stop()
	var positions []int
	for i, a := range apps {
		pos := -1
		for _, b := range a.blocks {
			for k, btx := range b.Txs {
				if btx.Key() == tx.Key() {
					pos = int(b.Height)*1_000_000 + k
				}
			}
		}
		if pos < 0 {
			t.Fatalf("app %d never saw the tx", i)
		}
		positions = append(positions, pos)
	}
	for _, p := range positions[1:] {
		if p != positions[0] {
			t.Fatalf("tx at different positions: %v", positions)
		}
	}
}

func TestConsistentNotificationOrder(t *testing.T) {
	// Property 10: same blocks, same order, everywhere.
	s := sim.New(2)
	c := ledger.NewCluster(s, ledger.Config{N: 4, Net: netsim.DefaultLANConfig()})
	apps := make([]*recordingApp, 4)
	for i := range apps {
		apps[i] = &recordingApp{}
		c.SetApp(wire.NodeID(i), apps[i])
	}
	c.Start()
	for i := 0; i < 60; i++ {
		i := i
		s.After(time.Duration(i)*100*time.Millisecond, func() {
			c.Nodes[i%4].Append(elemTx(i, 200))
		})
	}
	s.RunUntil(30 * time.Second)
	c.Stop()
	ref := apps[0].blocks
	for i := 1; i < 4; i++ {
		other := apps[i].blocks
		m := len(ref)
		if len(other) < m {
			m = len(other)
		}
		for h := 0; h < m; h++ {
			if ref[h].Height != other[h].Height || len(ref[h].Txs) != len(other[h].Txs) {
				t.Fatalf("app %d block %d differs", i, h)
			}
			for k := range ref[h].Txs {
				if ref[h].Txs[k].Key() != other[h].Txs[k].Key() {
					t.Fatalf("app %d block %d tx %d differs", i, h, k)
				}
			}
		}
	}
}

func TestCheckTxGatesAdmission(t *testing.T) {
	s := sim.New(3)
	c := ledger.NewCluster(s, ledger.Config{N: 4, Net: netsim.DefaultLANConfig()})
	app := &recordingApp{reject: true}
	c.SetApp(0, app)
	c.Start()
	s.After(0, func() {
		if c.Nodes[0].Append(elemTx(1, 100)) {
			t.Error("append admitted a tx the app rejects")
		}
	})
	s.RunUntil(time.Second)
	c.Stop()
	if app.checked == 0 {
		t.Fatal("CheckTx never invoked")
	}
}

func TestAppMsgRouting(t *testing.T) {
	s := sim.New(4)
	c := ledger.NewCluster(s, ledger.Config{N: 2, Net: netsim.DefaultLANConfig()})
	type ping struct{ v int }
	var got []int
	c.Nodes[1].SetAppMsgHandler(func(from wire.NodeID, payload any, size int) {
		if p, ok := payload.(*ping); ok {
			got = append(got, p.v)
			if from != 0 || size != 77 {
				t.Errorf("from=%d size=%d, want 0/77", from, size)
			}
		}
	})
	s.After(0, func() { c.Nodes[0].Send(1, &ping{v: 42}, 77) })
	s.RunUntil(time.Second)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("app messages = %v, want [42]", got)
	}
}

func TestVerifyConsistentChainsDetectsDivergence(t *testing.T) {
	s := sim.New(5)
	c := ledger.NewCluster(s, ledger.Config{N: 2, Net: netsim.DefaultLANConfig()})
	c.Start()
	s.After(0, func() { c.Nodes[0].Append(elemTx(1, 100)) })
	s.RunUntil(5 * time.Second)
	c.Stop()
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatalf("consistent chains flagged: %v", err)
	}
}

func TestDefaultAppIsNop(t *testing.T) {
	s := sim.New(6)
	c := ledger.NewCluster(s, ledger.Config{N: 1})
	c.Start()
	s.After(0, func() { c.Nodes[0].Append(elemTx(1, 50)) })
	s.RunUntil(5 * time.Second)
	c.Stop()
	if len(c.Nodes[0].Cons.Chain()) == 0 {
		t.Fatal("single-node chain made no progress")
	}
	var nop abci.NopApplication
	if !nop.CheckTx(nil) {
		t.Fatal("NopApplication rejects")
	}
	nop.FinalizeBlock(nil)
}

func TestBadClusterConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N=0")
		}
	}()
	ledger.NewCluster(sim.New(1), ledger.Config{N: 0})
}
