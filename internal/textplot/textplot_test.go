package textplot

import (
	"strings"
	"testing"
)

func TestLinePlotBasics(t *testing.T) {
	p := &LinePlot{Title: "test", Width: 40, Height: 10, XLabel: "t", YLabel: "v"}
	p.Add("a", []float64{0, 1, 2, 3}, []float64{1, 2, 3, 4})
	p.Add("b", []float64{0, 1, 2, 3}, []float64{4, 3, 2, 1})
	out := p.Render()
	if !strings.Contains(out, "test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "legend: * a | o b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	if !strings.Contains(out, "x: t   y: v") {
		t.Fatal("axis labels missing")
	}
}

func TestLinePlotLogScale(t *testing.T) {
	p := &LinePlot{Width: 40, Height: 12, LogY: true}
	p.Add("exp", []float64{0, 1, 2, 3}, []float64{1, 100, 10000, 0}) // zero clamped
	out := p.Render()
	if !strings.Contains(out, "10k") {
		t.Fatalf("log axis label missing:\n%s", out)
	}
}

func TestLinePlotHLines(t *testing.T) {
	p := &LinePlot{Width: 30, Height: 8, HLines: map[string]float64{"cap": 5}}
	p.Add("s", []float64{0, 10}, []float64{1, 9})
	out := p.Render()
	if !strings.Contains(out, ". cap=5") {
		t.Fatalf("hline legend missing:\n%s", out)
	}
	if !strings.Contains(out, "...") {
		t.Fatal("reference line dots missing")
	}
}

func TestLinePlotEmpty(t *testing.T) {
	p := &LinePlot{Title: "empty"}
	if out := p.Render(); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot output: %q", out)
	}
}

func TestLinePlotSinglePoint(t *testing.T) {
	p := &LinePlot{Width: 20, Height: 5}
	p.Add("pt", []float64{1}, []float64{1})
	out := p.Render() // must not divide by zero
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{
		Title: "eff",
		Max:   1,
		Width: 20,
		Group: []BarGroup{
			{Label: "500 el/s", Bars: []Bar{{"Vanilla", 1.0}, {"Hashchain", 0.5}}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "eff") || !strings.Contains(out, "500 el/s") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, strings.Repeat("=", 20)) {
		t.Fatal("full bar not full width")
	}
	if !strings.Contains(out, strings.Repeat("=", 10)+strings.Repeat(" ", 10)) {
		t.Fatalf("half bar wrong:\n%s", out)
	}
}

func TestBarChartAutoMax(t *testing.T) {
	c := &BarChart{Width: 10, Group: []BarGroup{
		{Label: "g", Bars: []Bar{{"x", 50}, {"y", 100}}},
	}}
	out := c.Render()
	if !strings.Contains(out, strings.Repeat("=", 10)) {
		t.Fatalf("max bar not full:\n%s", out)
	}
}

func TestBarChartClampsOverflow(t *testing.T) {
	c := &BarChart{Max: 1, Width: 10, Group: []BarGroup{
		{Label: "g", Bars: []Bar{{"over", 3.5}, {"neg", -1}}},
	}}
	out := c.Render() // must not panic on out-of-range values
	if !strings.Contains(out, "over") {
		t.Fatal("bar missing")
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatal("separator missing")
	}
	// Column alignment: header and data share the same width.
	if len(lines[1]) < len("a    bb") {
		t.Fatal("columns not padded")
	}
}

func TestCDFRender(t *testing.T) {
	out := CDF("cdf", 40, 10,
		map[string][]float64{
			"fast": {0.1, 0.2, 0.3},
			"slow": {1, 2, 3, 4},
		},
		map[string]float64{"fast": 1.0, "slow": 0.5})
	if !strings.Contains(out, "cdf") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Fatal("curve names missing")
	}
}

func TestCDFEmptyCurveSkipped(t *testing.T) {
	out := CDF("c", 30, 8, map[string][]float64{"empty": nil, "one": {1}}, nil)
	if strings.Contains(out, "empty") {
		t.Fatal("empty curve in legend")
	}
}

func TestCompactFormatting(t *testing.T) {
	cases := map[float64]string{
		0.5:   "0.50",
		7:     "7",
		42:    "42",
		1500:  "1.5k",
		25000: "25k",
		3.2e6: "3.2M",
		4.5e9: "4.5G",
	}
	for v, want := range cases {
		if got := compact(v); got != want {
			t.Fatalf("compact(%v) = %q, want %q", v, got, want)
		}
	}
}
