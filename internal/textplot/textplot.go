// Package textplot renders the evaluation's figures as terminal charts:
// log-scale time series (Fig. 1, Fig. 2), grouped bar charts (Fig. 3,
// Fig. 5) and CDF curves (Fig. 4). Output is plain text so the benchmark
// harness can regenerate every figure without plotting dependencies.
//
// See DESIGN.md §2 (layering).
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Marker byte
}

// markers cycles default glyphs for unnamed series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// LinePlot renders curves on a width×height character grid. If logY is set
// the y axis is log10 (zeros are clamped to the smallest positive value).
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	LogY   bool
	Series []Series
	// HLines draws labeled horizontal reference lines (the analytical
	// throughput dashes in Figs. 1-2).
	HLines map[string]float64
}

// Add appends a curve.
func (p *LinePlot) Add(name string, x, y []float64) {
	m := markers[len(p.Series)%len(markers)]
	p.Series = append(p.Series, Series{Name: name, X: x, Y: y, Marker: m})
}

func (p *LinePlot) dims() (int, int) {
	w, h := p.Width, p.Height
	if w == 0 {
		w = 72
	}
	if h == 0 {
		h = 20
	}
	return w, h
}

// Render draws the plot.
func (p *LinePlot) Render() string {
	w, h := p.dims()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			y := s.Y[i]
			if p.LogY && y <= 0 {
				continue
			}
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	for _, v := range p.HLines {
		if v > 0 || !p.LogY {
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if math.IsInf(minX, 1) {
		return p.Title + "\n(no data)\n"
	}
	if minX == maxX {
		maxX = minX + 1
	}
	ty := func(y float64) float64 {
		if !p.LogY {
			return y
		}
		if y <= 0 {
			y = minY
		}
		return math.Log10(y)
	}
	loY, hiY := ty(minY), ty(maxY)
	if loY == hiY {
		hiY = loY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	plot := func(x, y float64, m byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		row := int(math.Round((hiY - ty(y)) / (hiY - loY) * float64(h-1)))
		if col >= 0 && col < w && row >= 0 && row < h {
			grid[row][col] = m
		}
	}
	// Reference lines first so data overwrites them.
	for _, v := range p.HLines {
		row := int(math.Round((hiY - ty(v)) / (hiY - loY) * float64(h-1)))
		if row >= 0 && row < h {
			for c := 0; c < w; c++ {
				if grid[row][c] == ' ' {
					grid[row][c] = '.'
				}
			}
		}
	}
	for _, s := range p.Series {
		for i := range s.X {
			if p.LogY && s.Y[i] <= 0 {
				continue
			}
			plot(s.X[i], s.Y[i], s.Marker)
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yAxisW := 10
	for r := 0; r < h; r++ {
		val := hiY - (hiY-loY)*float64(r)/float64(h-1)
		if p.LogY {
			val = math.Pow(10, val)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yAxisW, compact(val), string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yAxisW, "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%*s  %-*s%s\n", yAxisW, "", w-len(compact(maxX)), compact(minX), compact(maxX))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", yAxisW, "", p.XLabel, p.YLabel)
	}
	var names []string
	for _, s := range p.Series {
		names = append(names, fmt.Sprintf("%c %s", s.Marker, s.Name))
	}
	var hl []string
	for name := range p.HLines {
		hl = append(hl, name)
	}
	sort.Strings(hl)
	for _, name := range hl {
		names = append(names, fmt.Sprintf(". %s=%s", name, compact(p.HLines[name])))
	}
	if len(names) > 0 {
		fmt.Fprintf(&b, "%*s  legend: %s\n", yAxisW, "", strings.Join(names, " | "))
	}
	return b.String()
}

// compact formats a number tersely (1.2k, 3.4M).
func compact(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case a >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case a >= 10 || a == math.Trunc(a):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// BarGroup is one cluster of bars (e.g. one sending rate in Fig. 3).
type BarGroup struct {
	Label string
	Bars  []Bar
}

// Bar is a single measured value.
type Bar struct {
	Name  string
	Value float64
}

// BarChart renders grouped horizontal bars scaled to Max (efficiency
// charts use Max=1).
type BarChart struct {
	Title string
	Max   float64
	Width int
	Unit  string
	Group []BarGroup
}

// Render draws the chart.
func (c *BarChart) Render() string {
	w := c.Width
	if w == 0 {
		w = 50
	}
	max := c.Max
	if max == 0 {
		for _, g := range c.Group {
			for _, b := range g.Bars {
				max = math.Max(max, b.Value)
			}
		}
		if max == 0 {
			max = 1
		}
	}
	nameW := 0
	for _, g := range c.Group {
		for _, b := range g.Bars {
			if len(b.Name) > nameW {
				nameW = len(b.Name)
			}
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, g := range c.Group {
		fmt.Fprintf(&sb, "%s\n", g.Label)
		for _, b := range g.Bars {
			filled := int(math.Round(b.Value / max * float64(w)))
			if filled > w {
				filled = w
			}
			if filled < 0 {
				filled = 0
			}
			fmt.Fprintf(&sb, "  %-*s |%s%s| %s%s\n", nameW, b.Name,
				strings.Repeat("=", filled), strings.Repeat(" ", w-filled),
				compact(b.Value), c.Unit)
		}
	}
	return sb.String()
}

// Table renders an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	var dashes []string
	for _, w := range widths {
		dashes = append(dashes, strings.Repeat("-", w))
	}
	line(dashes)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CDF renders cumulative distribution curves from sorted sample sets, with
// each curve's terminal fraction (curves that never reach 1 stay below it,
// as in Fig. 4 for elements that never reached a stage).
func CDF(title string, width, height int, curves map[string][]float64, reach map[string]float64) string {
	p := &LinePlot{Title: title, Width: width, Height: height, XLabel: "latency (s)", YLabel: "F(x)"}
	var names []string
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		samples := curves[name]
		if len(samples) == 0 {
			continue
		}
		frac := 1.0
		if reach != nil {
			if f, ok := reach[name]; ok {
				frac = f
			}
		}
		var xs, ys []float64
		for i, v := range samples {
			xs = append(xs, v)
			ys = append(ys, frac*float64(i+1)/float64(len(samples)))
		}
		p.Add(name, xs, ys)
	}
	return p.Render()
}
