package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

type recv struct {
	from wire.NodeID
	at   time.Duration
	size int
}

func setup(cfg Config) (*sim.Simulator, *Network, map[wire.NodeID]*[]recv) {
	s := sim.New(1)
	n := New(s, cfg)
	boxes := make(map[wire.NodeID]*[]recv)
	for id := wire.NodeID(0); id < 4; id++ {
		id := id
		box := &[]recv{}
		boxes[id] = box
		n.AddNode(id, func(from wire.NodeID, payload any, size int) {
			*box = append(*box, recv{from: from, at: s.Now(), size: size})
		})
	}
	return s, n, boxes
}

func TestPointToPointDelivery(t *testing.T) {
	cfg := Config{BaseLatency: time.Millisecond}
	s, n, boxes := setup(cfg)
	s.After(0, func() { n.Send(0, 1, "hello", 100) })
	s.Run()
	got := *boxes[1]
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	if got[0].from != 0 || got[0].size != 100 {
		t.Fatalf("bad delivery: %+v", got[0])
	}
	if got[0].at != time.Millisecond {
		t.Fatalf("delivered at %v, want 1ms", got[0].at)
	}
}

func TestExtraDelayAddsToAllTraffic(t *testing.T) {
	cfg := Config{BaseLatency: time.Millisecond, ExtraDelay: 30 * time.Millisecond}
	s, n, boxes := setup(cfg)
	s.After(0, func() { n.Send(0, 1, "x", 10) })
	s.Run()
	if at := (*boxes[1])[0].at; at != 31*time.Millisecond {
		t.Fatalf("delivered at %v, want 31ms", at)
	}
}

func TestBandwidthSerializesEgress(t *testing.T) {
	// 1000 B/s: a 500-byte message takes 500ms to transmit.
	cfg := Config{Bandwidth: 1000}
	s, n, boxes := setup(cfg)
	s.After(0, func() {
		n.Send(0, 1, "a", 500)
		n.Send(0, 2, "b", 500)
	})
	s.Run()
	if at := (*boxes[1])[0].at; at != 500*time.Millisecond {
		t.Fatalf("first delivery at %v, want 500ms", at)
	}
	// Second transmission waits for the first to clear the sender's egress.
	if at := (*boxes[2])[0].at; at != time.Second {
		t.Fatalf("second delivery at %v, want 1s", at)
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Millisecond})
	s.After(0, func() { n.Broadcast(2, "blk", 64) })
	s.Run()
	for id, box := range boxes {
		want := 1
		if id == 2 {
			want = 0
		}
		if len(*box) != want {
			t.Fatalf("node %d got %d messages, want %d", id, len(*box), want)
		}
	}
}

func TestSelfSendLoopsBack(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Hour}) // latency must not apply
	s.After(0, func() { n.Send(3, 3, "self", 8) })
	s.Run()
	if len(*boxes[3]) != 1 {
		t.Fatal("self-send not delivered")
	}
	if at := (*boxes[3])[0].at; at > time.Millisecond {
		t.Fatalf("self-send took %v, want loopback-fast", at)
	}
}

func TestDownNodeSendsAndReceivesNothing(t *testing.T) {
	s, n, boxes := setup(Config{})
	n.SetDown(1, true)
	s.After(0, func() {
		n.Send(1, 0, "from-down", 5)
		n.Send(0, 1, "to-down", 5)
	})
	s.Run()
	if len(*boxes[0]) != 0 {
		t.Fatal("message from down node delivered")
	}
	if len(*boxes[1]) != 0 {
		t.Fatal("message to down node delivered")
	}
	// Revive: traffic flows again.
	n.SetDown(1, false)
	s.After(0, func() { n.Send(0, 1, "again", 5) })
	s.Run()
	if len(*boxes[1]) != 1 {
		t.Fatal("revived node did not receive")
	}
}

func TestJitterBoundsLatency(t *testing.T) {
	cfg := Config{BaseLatency: time.Millisecond, Jitter: time.Millisecond}
	s, n, boxes := setup(cfg)
	s.After(0, func() {
		for i := 0; i < 100; i++ {
			n.Send(0, 1, i, 10)
		}
	})
	s.Run()
	for _, r := range *boxes[1] {
		if r.at < time.Millisecond || r.at >= 2*time.Millisecond {
			t.Fatalf("delivery at %v outside [1ms, 2ms)", r.at)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s, n, _ := setup(Config{})
	s.After(0, func() {
		n.Send(0, 1, "a", 100)
		n.Send(0, 2, "b", 200)
		n.Send(1, 0, "c", 50)
	})
	s.Run()
	if n.Messages() != 3 {
		t.Fatalf("messages = %d, want 3", n.Messages())
	}
	if n.BytesSent() != 350 {
		t.Fatalf("bytes = %d, want 350", n.BytesSent())
	}
	if n.NodeBytesOut(0) != 300 {
		t.Fatalf("node 0 egress = %d, want 300", n.NodeBytesOut(0))
	}
	if n.NodeBytesOut(9) != 0 {
		t.Fatal("unknown node has egress bytes")
	}
}

func TestNodeIDsSorted(t *testing.T) {
	s := sim.New(1)
	n := New(s, Config{})
	for _, id := range []wire.NodeID{5, 1, 9, 0, 3} {
		n.AddNode(id, nil)
	}
	ids := n.NodeIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestUnknownNodePanics(t *testing.T) {
	s := sim.New(1)
	n := New(s, Config{})
	n.AddNode(0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown destination")
		}
	}()
	n.Send(0, 42, "x", 1)
}

func TestHandlerReplacement(t *testing.T) {
	s := sim.New(1)
	n := New(s, Config{})
	hits := 0
	n.AddNode(0, nil)
	n.AddNode(1, func(wire.NodeID, any, int) { hits += 100 })
	n.AddNode(1, func(wire.NodeID, any, int) { hits++ }) // replaces
	s.After(0, func() { n.Send(0, 1, "x", 1) })
	s.Run()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (replaced handler)", hits)
	}
}

func BenchmarkBroadcast(b *testing.B) {
	s := sim.New(1)
	n := New(s, DefaultLANConfig())
	for id := wire.NodeID(0); id < 10; id++ {
		n.AddNode(id, func(wire.NodeID, any, int) {})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Broadcast(0, i, 438)
		if s.Pending() > 8192 {
			s.Run()
		}
	}
	s.Run()
}
