package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestMeshPeersConnectivity is the property test behind the liveness
// argument (DESIGN.md §13): every seeded peer graph at fanout >= 2 is
// connected, degrees are bounded by ~fanout, edges are symmetric, and
// the same (seed, ids, fanout) always yields the same graph.
func TestMeshPeersConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		for _, n := range []int{2, 3, 4, 5, 10, 31, 50, 100} {
			for _, fanout := range []int{2, 3, 4, 8} {
				ids := make([]wire.NodeID, n)
				for i := range ids {
					ids[i] = wire.NodeID(i)
				}
				peers := MeshPeers(seed, ids, fanout)
				name := fmt.Sprintf("seed=%d n=%d fanout=%d", seed, n, fanout)

				// Degree bounds: every node has at least min(2, n-1)
				// neighbors (the ring) and at most fanout+1 (odd fanouts
				// and the n/2 offset round unevenly).
				for id, ps := range peers {
					minDeg := 2
					if n-1 < minDeg {
						minDeg = n - 1
					}
					if len(ps) < minDeg || len(ps) > fanout+1 {
						t.Fatalf("%s: node %d has degree %d, want %d..%d", name, id, len(ps), minDeg, fanout+1)
					}
					for _, p := range ps {
						sym := false
						for _, back := range peers[p] {
							if back == id {
								sym = true
							}
						}
						if !sym {
							t.Fatalf("%s: edge %d->%d not symmetric", name, id, p)
						}
					}
				}

				// BFS from node 0 must reach everyone.
				seen := map[wire.NodeID]bool{0: true}
				frontier := []wire.NodeID{0}
				for len(frontier) > 0 {
					var next []wire.NodeID
					for _, u := range frontier {
						for _, v := range peers[u] {
							if !seen[v] {
								seen[v] = true
								next = append(next, v)
							}
						}
					}
					frontier = next
				}
				if len(seen) != n {
					t.Fatalf("%s: graph disconnected, reached %d of %d nodes", name, len(seen), n)
				}

				// Determinism: rebuilding with the same inputs gives the
				// identical adjacency.
				again := MeshPeers(seed, ids, fanout)
				for id := range peers {
					if fmt.Sprint(again[id]) != fmt.Sprint(peers[id]) {
						t.Fatalf("%s: rebuild changed node %d's peers: %v vs %v", name, id, peers[id], again[id])
					}
				}
			}
		}
	}
}

// meshHarness wires a Mesh over a fresh network and records, per node,
// how many times each digest was delivered.
type meshHarness struct {
	s     *sim.Simulator
	net   *Network
	mesh  *Mesh
	seen  map[wire.NodeID]map[gossip.Digest]int
	nodes int
}

func newMeshHarness(t *testing.T, n, fanout int, seed int64) *meshHarness {
	t.Helper()
	h := &meshHarness{
		s:     sim.New(seed),
		seen:  make(map[wire.NodeID]map[gossip.Digest]int),
		nodes: n,
	}
	h.net = New(h.s, Config{BaseLatency: 250 * time.Microsecond})
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	for _, id := range ids {
		id := id
		h.seen[id] = make(map[gossip.Digest]int)
		h.net.AddNode(id, func(from wire.NodeID, payload any, size int) {
			if env, ok := payload.(*Envelope); ok {
				h.mesh.Receive(id, from, env)
			}
		})
	}
	h.mesh = NewMesh(h.net, ids, fanout)
	for _, id := range ids {
		id := id
		h.mesh.SetDeliver(id, func(origin wire.NodeID, payload any, size int) {
			h.seen[id][payload.(gossip.Digest)]++
		})
	}
	return h
}

// originate has every node publish one message (payload = its digest so
// receivers can count per-digest deliveries).
func (h *meshHarness) originate() {
	for i := 0; i < h.nodes; i++ {
		id := wire.NodeID(i)
		h.s.After(time.Duration(i)*time.Millisecond, func() {
			h.mesh.Gossip(id, gossip.Digest{Origin: id, Seq: 0}, 200)
		})
	}
}

// TestMeshExactlyOnceDelivery is the integration contract: over a real
// simulated network, every message reaches every node other than its
// originator exactly once, at any fanout.
func TestMeshExactlyOnceDelivery(t *testing.T) {
	for _, tc := range []struct{ n, fanout int }{
		{4, 2}, {7, 2}, {10, 4}, {20, 8}, {20, 50}, // last = full-mesh degenerate
	} {
		h := newMeshHarness(t, tc.n, tc.fanout, 42)
		h.originate()
		h.s.Run()
		for node, counts := range h.seen {
			for origin := 0; origin < tc.n; origin++ {
				d := gossip.Digest{Origin: wire.NodeID(origin), Seq: 0}
				want := 1
				if wire.NodeID(origin) == node {
					want = 0 // no self-delivery, like Broadcast
				}
				if got := counts[d]; got != want {
					t.Fatalf("n=%d fanout=%d: node %d saw digest from %d %d times, want %d",
						tc.n, tc.fanout, node, origin, got, want)
				}
			}
		}
		st := h.mesh.Stats()
		if st.Originated != uint64(tc.n) || st.Delivered != uint64(tc.n*(tc.n-1)) {
			t.Fatalf("n=%d fanout=%d: stats %+v, want %d originated, %d delivered",
				tc.n, tc.fanout, st, tc.n, tc.n*(tc.n-1))
		}
	}
}

// TestMeshBrokenDedupDuplicates sabotages the dedup cache and proves the
// exactly-once check above would catch it: with dedup broken, nodes see
// the same digest more than once (the MaxHops backstop keeps the storm
// finite). If this passes cleanly, the delivery-count assertions are
// vacuous.
func TestMeshBrokenDedupDuplicates(t *testing.T) {
	gossip.SetBreakDedupForTest(true)
	defer gossip.SetBreakDedupForTest(false)
	h := newMeshHarness(t, 5, 2, 42)
	h.originate()
	h.s.Run()
	dup := false
	for _, counts := range h.seen {
		for _, c := range counts {
			if c > 1 {
				dup = true
			}
		}
	}
	if !dup {
		t.Fatal("broken dedup produced no duplicate delivery — the exactly-once check is vacuous")
	}
}

// TestMeshBrokenExpiryStarves sabotages the relay queue expiry — every
// flush drains nothing — and proves gossip stops entirely: no node
// receives anything. This is what the harness-level Committed>0 checks
// key off.
func TestMeshBrokenExpiryStarves(t *testing.T) {
	gossip.SetBreakExpiryForTest(true)
	defer gossip.SetBreakExpiryForTest(false)
	h := newMeshHarness(t, 5, 2, 42)
	h.originate()
	h.s.Run()
	for node, counts := range h.seen {
		if len(counts) != 0 {
			t.Fatalf("broken expiry still delivered %d digests to node %d — starvation checks are vacuous", len(counts), node)
		}
	}
}

// TestMeshDeterministicAcrossRuns pins byte-equal delivery traces for
// identical seeds at the netsim layer (the harness sweeps assert the same
// through full scenarios).
func TestMeshDeterministicAcrossRuns(t *testing.T) {
	run := func() (string, uint64) {
		h := newMeshHarness(t, 10, 4, 7)
		h.originate()
		h.s.Run()
		return fmt.Sprint(h.mesh.Stats()), h.net.Messages()
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1 != s2 || m1 != m2 {
		t.Fatalf("identical seeds diverged: %s/%d vs %s/%d", s1, m1, s2, m2)
	}
}
