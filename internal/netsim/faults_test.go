package netsim

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// The fault-state owner must compose independent causes: a Byzantine
// preset silencing a node and a scheduled plan crashing and restarting the
// same node each retract only their own contribution.
func TestDownCausesCompose(t *testing.T) {
	_, n, _ := setup(Config{BaseLatency: time.Millisecond})
	f := n.Faults()

	f.SetDown(1, CauseByzantine, true) // silent Byzantine preset
	f.SetDown(1, CausePlan, true)      // plan crash
	if !f.Down(1) || f.DownCauses(1) != 2 {
		t.Fatalf("down=%v causes=%d, want down with 2 causes", f.Down(1), f.DownCauses(1))
	}
	f.SetDown(1, CausePlan, false) // plan restart
	if !f.Down(1) {
		t.Fatal("plan restart revived a Byzantine-silent node")
	}
	f.SetDown(1, CauseByzantine, false)
	if f.Down(1) {
		t.Fatal("node still down after every cause retracted")
	}
	// Retracting a cause that was never set is a no-op.
	f.SetDown(1, CausePlan, false)
	if f.Down(1) {
		t.Fatal("no-op retraction changed liveness")
	}
}

func TestLegacySetDownUsesManualCause(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Millisecond})
	n.SetDown(2, true)
	if !n.Faults().Down(2) {
		t.Fatal("SetDown(true) did not mark the node down")
	}
	s.After(0, func() { n.Send(0, 2, "x", 10) })
	s.Run()
	if len(*boxes[2]) != 0 {
		t.Fatal("down node received a message")
	}
	n.SetDown(2, false)
	if n.Faults().Down(2) {
		t.Fatal("SetDown(false) did not revive the node")
	}
}

func TestBlockedLinkDropsDirectionally(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Millisecond})
	f := n.Faults()
	f.Block(CausePlan, 0, 1)
	s.After(0, func() {
		n.Send(0, 1, "blocked", 10)
		n.Send(1, 0, "open", 10)
	})
	s.Run()
	if len(*boxes[1]) != 0 {
		t.Fatal("blocked link delivered")
	}
	if len(*boxes[0]) != 1 {
		t.Fatal("reverse direction should be unaffected")
	}
	if f.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", f.Dropped())
	}
	f.Unblock(CausePlan, 0, 1)
	s.After(0, func() { n.Send(0, 1, "after-unblock", 10) })
	s.Run()
	if len(*boxes[1]) != 1 {
		t.Fatal("unblocked link did not deliver")
	}
}

// Two causes blocking the same link: the link opens only when both retract.
func TestBlockCausesCompose(t *testing.T) {
	_, n, _ := setup(Config{})
	f := n.Faults()
	f.Block(CauseByzantine, 0, 1)
	f.Block(CausePlan, 0, 1)
	f.Heal(CausePlan)
	if !f.Blocked(0, 1) {
		t.Fatal("healing the plan cause opened a link another cause blocks")
	}
	f.Heal(CauseByzantine)
	if f.Blocked(0, 1) {
		t.Fatal("link still blocked after every cause healed")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Millisecond})
	f := n.Faults()
	f.Partition(CausePlan, []wire.NodeID{0, 1}, []wire.NodeID{2, 3})
	s.After(0, func() {
		n.Send(0, 1, "same-side", 10)
		n.Send(0, 2, "cross", 10)
		n.Send(3, 1, "cross", 10)
		n.Send(2, 3, "same-side", 10)
	})
	s.Run()
	if len(*boxes[1]) != 1 || len(*boxes[3]) != 1 {
		t.Fatalf("same-side traffic disturbed: %d, %d deliveries", len(*boxes[1]), len(*boxes[3]))
	}
	if len(*boxes[2]) != 0 {
		t.Fatal("cross-partition traffic delivered")
	}
	f.Heal(CausePlan)
	s.After(0, func() { n.Send(0, 2, "healed", 10) })
	s.Run()
	if len(*boxes[2]) != 1 {
		t.Fatal("healed partition did not deliver")
	}
}

func TestLinkDropProbability(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Millisecond})
	n.Faults().SetLink(0, 1, LinkFault{Drop: 0.5})
	const sends = 400
	s.After(0, func() {
		for i := 0; i < sends; i++ {
			n.Send(0, 1, i, 10)
		}
	})
	s.Run()
	got := len(*boxes[1])
	if got < sends/4 || got > sends*3/4 {
		t.Fatalf("deliveries = %d of %d with 50%% drop, want roughly half", got, sends)
	}
	if n.Faults().Dropped() != uint64(sends-got) {
		t.Fatalf("dropped = %d, want %d", n.Faults().Dropped(), sends-got)
	}
}

func TestLinkDuplicateDeliversTwice(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Millisecond})
	n.Faults().SetLink(0, 1, LinkFault{Duplicate: 1.0})
	s.After(0, func() { n.Send(0, 1, "x", 10) })
	s.Run()
	if len(*boxes[1]) != 2 {
		t.Fatalf("deliveries = %d with certain duplication, want 2", len(*boxes[1]))
	}
	got := *boxes[1]
	if got[1].at != got[0].at+time.Millisecond {
		t.Fatalf("duplicate at %v, want one BaseLatency after original %v", got[1].at, got[0].at)
	}
	if n.Faults().Duplicated() != 1 {
		t.Fatalf("duplicated = %d, want 1", n.Faults().Duplicated())
	}
}

func TestLinkExtraDelayAndReorder(t *testing.T) {
	s, n, boxes := setup(Config{BaseLatency: time.Millisecond})
	n.Faults().SetLink(0, 1, LinkFault{ExtraDelay: 10 * time.Millisecond})
	s.After(0, func() { n.Send(0, 1, "slow", 10) })
	s.Run()
	if at := (*boxes[1])[0].at; at != 11*time.Millisecond {
		t.Fatalf("delivered at %v, want 11ms", at)
	}

	// Certain reordering holds messages back by < ReorderDelay.
	n.Faults().SetLink(0, 1, LinkFault{Reorder: 1.0, ReorderDelay: 20 * time.Millisecond})
	start := s.Now()
	s.After(0, func() { n.Send(0, 1, "held", 10) })
	s.Run()
	at := (*boxes[1])[1].at - start
	if at < time.Millisecond || at >= 21*time.Millisecond {
		t.Fatalf("reordered delivery after %v, want [1ms, 21ms)", at)
	}
	if n.Faults().Reordered() != 1 {
		t.Fatalf("reordered = %d, want 1", n.Faults().Reordered())
	}

	// Clearing with a zero fault restores the perfect link.
	n.Faults().SetLink(0, 1, LinkFault{})
	if !n.Faults().Link(0, 1).IsZero() {
		t.Fatal("zero SetLink did not clear the link fault")
	}
}

// Installing and clearing fault state must leave the no-fault random
// stream untouched: a run that never faults is bit-identical whether or
// not the Faults controller was ever instantiated.
func TestNoFaultsNoExtraRandomDraws(t *testing.T) {
	run := func(touchFaults bool) time.Duration {
		s, n, boxes := setup(Config{BaseLatency: time.Millisecond, Jitter: time.Millisecond})
		if touchFaults {
			f := n.Faults()
			f.SetLink(0, 1, LinkFault{Drop: 0.9})
			f.SetLink(0, 1, LinkFault{}) // cleared before any send
		}
		s.After(0, func() {
			for i := 0; i < 16; i++ {
				n.Send(0, 1, i, 10)
			}
		})
		s.Run()
		last := (*boxes[1])[len(*boxes[1])-1]
		return last.at
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("fault bookkeeping perturbed the random stream: %v vs %v", a, b)
	}
}
