// Package netsim simulates the cluster network the paper's evaluation runs
// on: reliable point-to-point links between servers with configurable base
// latency, jitter, an additive artificial delay (the paper's network_delay
// parameter used to emulate WAN deployments), and per-node egress bandwidth.
//
// Reliability matches the paper's model ("messages sent between correct
// processes are eventually delivered only once, and no spurious messages
// are generated"): by default delivery is guaranteed and exactly-once,
// though delayed. Byzantine behavior is modeled at the protocol layer, not
// by corrupting the network.
//
// Chaos scenarios deliberately break that default through the Faults
// controller (faults.go): node crashes, link-level partitions, and
// per-link message drop/duplication/reordering and delay spikes. All fault
// state has a single owner — Faults — and every mutation is tagged with a
// Cause so independent fault sources compose (DESIGN.md §8).
//
// See DESIGN.md §2 (layering) and §8 (fault model).
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Handler receives a delivered message on a node. from is the sender,
// payload the (shared, read-only by convention) message object, and size
// its wire size in bytes.
type Handler func(from wire.NodeID, payload any, size int)

// Config describes link characteristics.
type Config struct {
	// BaseLatency is the one-way propagation delay inside the cluster
	// (LAN). The paper's cluster is a single rack; ~250µs is typical.
	BaseLatency time.Duration
	// ExtraDelay is the paper's network_delay parameter: an artificial
	// latency added to ALL communications between servers (0/30/100 ms).
	ExtraDelay time.Duration
	// Jitter adds a uniformly distributed random delay in [0, Jitter).
	Jitter time.Duration
	// Bandwidth is per-node egress bandwidth in bytes/second; 0 means
	// unlimited. Transmissions on one node serialize through its egress.
	Bandwidth float64
}

// DefaultLANConfig mirrors the paper's cluster: sub-millisecond LAN latency,
// gigabit-class egress, no artificial delay.
func DefaultLANConfig() Config {
	return Config{
		BaseLatency: 250 * time.Microsecond,
		Jitter:      100 * time.Microsecond,
		Bandwidth:   125e6, // 1 Gbit/s
	}
}

// Network is the simulated cluster fabric.
type Network struct {
	sim    *sim.Simulator
	cfg    Config
	nodes  map[wire.NodeID]*node
	faults *Faults // lazily created by Faults(); nil until any fault exists

	// simFor maps a node to the simulator (partition) that owns it. nil
	// means every node runs on the root simulator (the sequential path).
	simFor func(wire.NodeID) *sim.Simulator

	// Cached conservative lookahead window for partitioned execution;
	// invalidated whenever topology or link delays change (AddNode,
	// SetSimResolver, Faults.SetLink).
	lookahead      time.Duration
	lookaheadValid bool
}

type node struct {
	id      wire.NodeID
	handler Handler
	egress  *sim.Resource
	// sim is the simulator (partition) owning this node: all of its sends,
	// deliveries, and egress grants execute as events on this queue.
	sim *sim.Simulator
	// rng is the node's private random stream, seeded from
	// sim.ChildSeed(rootSeed, id). Link-fault and jitter draws for messages
	// this node SENDS come from here, so the draw sequence depends only on
	// the node's own event order — identical whether the run is sequential
	// or partitioned, and whatever the worker interleaving.
	rng *rand.Rand
	// down caches whether any fault cause currently holds the node down;
	// only Faults.SetDown writes it (single fault-state owner).
	down bool

	// Per-node stats, attributed to the sending node so concurrent
	// partitions never share a counter; network totals are summed on read.
	bytesOut   uint64
	msgsOut    uint64
	dropped    uint64
	duplicated uint64
	reordered  uint64
}

// New creates an empty network on the given simulator.
func New(s *sim.Simulator, cfg Config) *Network {
	return &Network{sim: s, cfg: cfg, nodes: make(map[wire.NodeID]*node)}
}

// SetSimResolver installs the node→partition mapping for partitioned runs.
// It must be called before any AddNode; nodes the resolver maps to nil run
// on the root simulator.
func (n *Network) SetSimResolver(f func(wire.NodeID) *sim.Simulator) {
	if len(n.nodes) > 0 {
		panic("netsim: SetSimResolver after AddNode")
	}
	n.simFor = f
	n.lookaheadValid = false
}

func (n *Network) simOf(id wire.NodeID) *sim.Simulator {
	if n.simFor != nil {
		if s := n.simFor(id); s != nil {
			return s
		}
	}
	return n.sim
}

// AddNode registers a node and its delivery handler. Registering an id
// twice replaces the handler (used by tests to interpose).
func (n *Network) AddNode(id wire.NodeID, h Handler) {
	if existing, ok := n.nodes[id]; ok {
		existing.handler = h
		return
	}
	ns := n.simOf(id)
	n.nodes[id] = &node{
		id:      id,
		handler: h,
		sim:     ns,
		rng:     sim.ChildRand(ns.Seed(), uint64(id)),
		egress:  ns.NewResource(fmt.Sprintf("egress-%d", id)),
	}
	n.lookaheadValid = false
}

// SetDown marks a node as crashed: it neither sends nor receives. It is a
// convenience shim over Faults().SetDown with CauseManual; fault sources
// with their own lifecycle (Byzantine presets, scheduled plans) should use
// the Faults controller directly so their state composes.
func (n *Network) SetDown(id wire.NodeID, down bool) {
	n.Faults().SetDown(id, CauseManual, down)
}

// NodeIDs returns the registered node ids in ascending order.
func (n *Network) NodeIDs() []wire.NodeID {
	ids := make([]wire.NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	// Insertion sort: n is at most tens of nodes.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// Send transmits payload of the given wire size from one node to another.
// On a fault-free link delivery is reliable and exactly-once; latency is
// transmission time (size/bandwidth, serialized per sender) plus
// propagation (base + extra + jitter). Installed link faults may drop,
// duplicate, hold back (reorder) or further delay the message. Sending to
// self delivers after a negligible loopback delay, does not consume egress
// bandwidth, and is never subject to link faults.
func (n *Network) Send(from, to wire.NodeID, payload any, size int) {
	src, ok := n.nodes[from]
	if !ok {
		panic(fmt.Sprintf("netsim: send from unknown node %d", from))
	}
	dst, ok := n.nodes[to]
	if !ok {
		panic(fmt.Sprintf("netsim: send to unknown node %d", to))
	}
	if src.down {
		return // crashed nodes emit nothing
	}
	src.msgsOut++
	src.bytesOut += uint64(size)

	if from == to {
		src.sim.After(time.Microsecond, func() { n.deliver(src.id, dst, payload, size) })
		return
	}

	// Link faults. All probability draws happen here, at send time, from the
	// SENDER's private random stream, so the draw sequence depends only on
	// the sender's own event order — deterministic per seed and identical
	// across IntraWorkers settings (DESIGN.md §12).
	var lf LinkFault
	if n.faults != nil && n.faults.linkActive() {
		if n.faults.Blocked(from, to) {
			src.dropped++
			return
		}
		lf = n.faults.Link(from, to)
		if lf.Drop > 0 && src.rng.Float64() < lf.Drop {
			src.dropped++
			return
		}
	}

	prop := n.cfg.BaseLatency + n.cfg.ExtraDelay + lf.ExtraDelay
	if n.cfg.Jitter > 0 {
		prop += time.Duration(src.rng.Int63n(int64(n.cfg.Jitter)))
	}
	if lf.Reorder > 0 && src.rng.Float64() < lf.Reorder {
		src.reordered++
		if lf.ReorderDelay > 0 {
			prop += time.Duration(src.rng.Int63n(int64(lf.ReorderDelay)))
		}
	}
	dup := lf.Duplicate > 0 && src.rng.Float64() < lf.Duplicate
	var txTime time.Duration
	if n.cfg.Bandwidth > 0 {
		txTime = time.Duration(float64(size) / n.cfg.Bandwidth * float64(time.Second))
	}
	// The sender's egress serializes transmissions; propagation then runs
	// concurrently with later transmissions.
	src.egress.Submit(txTime, func() {
		if dup {
			src.duplicated++
		}
		n.propagate(src, dst, prop, payload, size)
		if dup {
			n.propagate(src, dst, prop+n.cfg.BaseLatency, payload, size)
		}
	})
}

// propagate schedules delivery prop after the egress grant. When source and
// destination live on different partitions the delivery crosses queues via
// the destination's inbox; prop includes the cross-partition link floor
// (BaseLatency + ExtraDelay + LinkFault.ExtraDelay), which is what makes
// the Lookahead window safe.
func (n *Network) propagate(src, dst *node, prop time.Duration, payload any, size int) {
	if src.sim == dst.sim {
		src.sim.After(prop, func() { n.deliver(src.id, dst, payload, size) })
		return
	}
	src.sim.SendCross(dst.sim, src.sim.Now()+prop, func() { n.deliver(src.id, dst, payload, size) })
}

func (n *Network) deliver(from wire.NodeID, dst *node, payload any, size int) {
	if dst.down || dst.handler == nil {
		return
	}
	dst.handler(from, payload, size)
}

// Broadcast sends payload to every other registered node.
func (n *Network) Broadcast(from wire.NodeID, payload any, size int) {
	for _, id := range n.NodeIDs() {
		if id != from {
			n.Send(from, id, payload, size)
		}
	}
}

// Messages returns the total number of messages sent.
func (n *Network) Messages() uint64 {
	var total uint64
	for _, nd := range n.nodes {
		total += nd.msgsOut
	}
	return total
}

// BytesSent returns the total bytes placed on the network.
func (n *Network) BytesSent() uint64 {
	var total uint64
	for _, nd := range n.nodes {
		total += nd.bytesOut
	}
	return total
}

// Lookahead returns the conservative PDES window: a lower bound on the
// propagation delay of any message that crosses partition boundaries. A
// partition may execute all events below min(other clocks) + Lookahead
// without missing an incoming message. The value is BaseLatency +
// ExtraDelay, raised by the minimum LinkFault.ExtraDelay only when EVERY
// cross-partition directed link carries one (a single uncovered link pins
// the floor at the base). Jitter, reordering, and duplication only ever add
// delay, and egress queueing only delays the grant, so the floor is safe.
//
// The value is cached; AddNode, SetSimResolver, and Faults.SetLink
// invalidate it. Fault-plan events apply link changes and invalidate in the
// same sim event (see faults.go), and the World re-reads Lookahead every
// round, so a delay change is honored from the next round on.
func (n *Network) Lookahead() time.Duration {
	if !n.lookaheadValid {
		n.lookahead = n.computeLookahead()
		n.lookaheadValid = true
	}
	return n.lookahead
}

func (n *Network) computeLookahead() time.Duration {
	cross := 0
	for _, u := range n.nodes {
		for _, v := range n.nodes {
			if u.sim != v.sim {
				cross++
			}
		}
	}
	if cross == 0 {
		// All nodes share one queue: no message ever crosses partitions.
		return time.Duration(math.MaxInt64)
	}
	base := n.cfg.BaseLatency + n.cfg.ExtraDelay
	covered := 0
	minExtra := time.Duration(math.MaxInt64)
	if n.faults != nil {
		for k, lf := range n.faults.links {
			u, okU := n.nodes[k.from]
			v, okV := n.nodes[k.to]
			if okU && okV && u.sim != v.sim && lf.ExtraDelay > 0 {
				covered++
				if lf.ExtraDelay < minExtra {
					minExtra = lf.ExtraDelay
				}
			}
		}
	}
	if covered == cross {
		base += minExtra
	}
	return base
}

// NodeBytesOut returns the egress byte count for one node.
func (n *Network) NodeBytesOut(id wire.NodeID) uint64 {
	if nd, ok := n.nodes[id]; ok {
		return nd.bytesOut
	}
	return 0
}
