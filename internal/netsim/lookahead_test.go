package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// minRealizableCrossDelay computes, from first principles, the smallest
// propagation delay any message crossing partition boundaries can
// experience on the given network: for each ordered cross-partition pair,
// BaseLatency + ExtraDelay + that link's LinkFault.ExtraDelay. Jitter,
// reordering, and duplication only ever add delay, and egress queueing
// delays the grant (the send), not the flight — so this is the exact floor
// the PDES window must respect.
func minRealizableCrossDelay(n *Network) (time.Duration, bool) {
	min := time.Duration(0)
	found := false
	for _, u := range n.nodes {
		for _, v := range n.nodes {
			if u.sim == v.sim {
				continue
			}
			d := n.cfg.BaseLatency + n.cfg.ExtraDelay
			if n.faults != nil {
				d += n.faults.Link(u.id, v.id).ExtraDelay
			}
			if !found || d < min {
				min = d
				found = true
			}
		}
	}
	return min, found
}

func checkLookaheadSafe(t *testing.T, n *Network) {
	t.Helper()
	got := n.Lookahead()
	floor, cross := minRealizableCrossDelay(n)
	if !cross {
		return // no cross-partition traffic: any window is safe
	}
	if got <= 0 {
		t.Fatalf("Lookahead() = %v with cross-partition links; a round needs a positive window", got)
	}
	if got > floor {
		t.Fatalf("Lookahead() = %v exceeds the minimum realizable cross-partition delay %v: a message could arrive inside the window", got, floor)
	}
}

// FuzzLookahead drives random topologies, partition assignments, and link
// fault schedules through the cached lookahead and checks the PDES safety
// property after every mutation: the window never exceeds any realizable
// cross-partition delivery delay. Lowering a single link's extra delay must
// show up immediately (cache invalidation), or a partition could run past
// an in-flight message.
func FuzzLookahead(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(123456789))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		root := sim.New(seed)
		parts := 1 + rng.Intn(4)
		sims := make([]*sim.Simulator, parts)
		w := sim.NewWorld(seed, parts, 1)
		for i := range sims {
			sims[i] = w.Part(i)
		}
		cfg := Config{
			BaseLatency: time.Duration(1+rng.Intn(1000)) * time.Microsecond,
			ExtraDelay:  time.Duration(rng.Intn(3)) * 10 * time.Millisecond,
			Jitter:      time.Duration(rng.Intn(2)) * 100 * time.Microsecond,
		}
		n := New(root, cfg)
		nodes := 2 + rng.Intn(8)
		assign := make(map[wire.NodeID]int, nodes)
		for id := 0; id < nodes; id++ {
			assign[wire.NodeID(id)] = rng.Intn(parts)
		}
		n.SetSimResolver(func(id wire.NodeID) *sim.Simulator { return sims[assign[id]] })
		for id := 0; id < nodes; id++ {
			n.AddNode(wire.NodeID(id), nil)
		}
		checkLookaheadSafe(t, n)

		// A schedule of random link mutations; every step must keep the
		// window at or below the new floor.
		for step := 0; step < 20; step++ {
			from := wire.NodeID(rng.Intn(nodes))
			to := wire.NodeID(rng.Intn(nodes))
			var lf LinkFault
			switch rng.Intn(3) {
			case 0: // add or raise a delay spike
				lf.ExtraDelay = time.Duration(1+rng.Intn(50)) * time.Millisecond
			case 1: // clear the link entirely — the floor may DROP
				lf = LinkFault{}
			case 2: // delay plus lossiness; probabilities never lower delay
				lf.ExtraDelay = time.Duration(rng.Intn(10)) * time.Millisecond
				lf.Drop = rng.Float64() * 0.3
				lf.Reorder = rng.Float64() * 0.3
			}
			n.Faults().SetLink(from, to, lf)
			checkLookaheadSafe(t, n)
		}

		// Covering EVERY cross link with a spike may raise the window; it
		// must still respect the floor, and wiping one link must bring it
		// straight back down (the classic stale-cache bug).
		spike := time.Duration(1+rng.Intn(20)) * time.Millisecond
		var crossPairs [][2]wire.NodeID
		for a := 0; a < nodes; a++ {
			for b := 0; b < nodes; b++ {
				if assign[wire.NodeID(a)] != assign[wire.NodeID(b)] {
					crossPairs = append(crossPairs, [2]wire.NodeID{wire.NodeID(a), wire.NodeID(b)})
					n.Faults().SetLink(wire.NodeID(a), wire.NodeID(b), LinkFault{ExtraDelay: spike})
				}
			}
		}
		checkLookaheadSafe(t, n)
		if len(crossPairs) > 0 {
			raised := n.Lookahead()
			if want := cfg.BaseLatency + cfg.ExtraDelay + spike; raised != want {
				t.Fatalf("fully covered links: Lookahead() = %v, want base+extra+spike = %v", raised, want)
			}
			drop := crossPairs[rng.Intn(len(crossPairs))]
			n.Faults().SetLink(drop[0], drop[1], LinkFault{})
			checkLookaheadSafe(t, n)
			if got, want := n.Lookahead(), cfg.BaseLatency+cfg.ExtraDelay; got != want {
				t.Fatalf("after clearing one covered link: Lookahead() = %v, want base %v (stale cache?)", got, want)
			}
		}
	})
}
