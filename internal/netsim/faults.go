package netsim

// This file is the network's fault layer: the single owner of all injected
// fault state. Node liveness (crash/silence) and link behavior (blocking,
// probabilistic loss/duplication/reordering, delay spikes) are mutated only
// through the Faults controller, and every mutation is tagged with a Cause.
// That makes independently written fault sources compose: a Byzantine
// preset that silences a server (CauseByzantine) and a scheduled fault plan
// that crashes and later restarts the same server (CausePlan) each retract
// only their own contribution — the restart does not revive the
// still-Byzantine-silent node. See DESIGN.md §8 (fault model).

import (
	"time"

	"repro/internal/wire"
)

// Cause tags who installed a piece of fault state, so independent fault
// sources can retract their own contribution without clobbering others.
type Cause string

// The causes used by this repo's fault sources. Any non-empty string is a
// valid cause; tests may invent their own.
const (
	// CauseManual tags faults installed through the legacy
	// Network.SetDown entry point (tests, ad-hoc tooling).
	CauseManual Cause = "manual"
	// CauseByzantine tags faults installed by internal/byzantine presets
	// (the always-on silent-server fault).
	CauseByzantine Cause = "byzantine"
	// CausePlan tags faults installed by internal/faults scheduled plans
	// (crash/restart, partition/heal, link events).
	CausePlan Cause = "plan"
)

// LinkFault describes the unreliable behavior of one directed link. The
// zero value is a perfect link (netsim's default: reliable, exactly-once).
type LinkFault struct {
	// Drop is the probability a message on the link is lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice; the copy
	// arrives one BaseLatency after the original.
	Duplicate float64
	// Reorder is the probability a message is held back by an extra delay
	// uniform in [0, ReorderDelay), letting later messages overtake it.
	Reorder float64
	// ReorderDelay bounds the reordering hold-back.
	ReorderDelay time.Duration
	// ExtraDelay is added to every message's propagation time (delay
	// spikes, asymmetric WAN links).
	ExtraDelay time.Duration
}

// IsZero reports whether the link behaves perfectly.
func (lf LinkFault) IsZero() bool { return lf == LinkFault{} }

// linkKey identifies a directed link.
type linkKey struct {
	from, to wire.NodeID
}

// Faults owns every piece of injected fault state on a Network. All
// mutation goes through it; Network.Send only reads.
type Faults struct {
	net *Network
	// down holds the active down-causes per node. A node is down while at
	// least one cause is active; the node's cached down flag is the OR.
	down map[wire.NodeID]map[Cause]bool
	// blocks holds the active block-causes per directed link.
	blocks map[linkKey]map[Cause]bool
	// links holds the probabilistic fault configuration per directed link.
	links map[linkKey]LinkFault
}

// Faults returns the network's fault controller, creating it on first use.
func (n *Network) Faults() *Faults {
	if n.faults == nil {
		n.faults = &Faults{
			net:    n,
			down:   make(map[wire.NodeID]map[Cause]bool),
			blocks: make(map[linkKey]map[Cause]bool),
			links:  make(map[linkKey]LinkFault),
		}
	}
	return n.faults
}

// SetDown marks a node down (or back up) on behalf of one cause. The node
// stays down while any cause is active: a fault plan's restart cannot
// revive a node a Byzantine preset silenced, and vice versa. Unknown node
// ids are ignored.
func (f *Faults) SetDown(id wire.NodeID, cause Cause, down bool) {
	nd, ok := f.net.nodes[id]
	if !ok {
		return
	}
	causes := f.down[id]
	if down {
		if causes == nil {
			causes = make(map[Cause]bool)
			f.down[id] = causes
		}
		causes[cause] = true
	} else {
		delete(causes, cause)
	}
	nd.down = len(causes) > 0
}

// Down reports whether the node is currently down (any cause active).
func (f *Faults) Down(id wire.NodeID) bool {
	return len(f.down[id]) > 0
}

// DownCauses returns how many distinct causes currently hold the node down.
func (f *Faults) DownCauses(id wire.NodeID) int { return len(f.down[id]) }

// Block stops all delivery on the directed link from→to on behalf of one
// cause, until the same cause unblocks it (or Heal clears the cause).
func (f *Faults) Block(cause Cause, from, to wire.NodeID) {
	k := linkKey{from, to}
	causes := f.blocks[k]
	if causes == nil {
		causes = make(map[Cause]bool)
		f.blocks[k] = causes
	}
	causes[cause] = true
}

// Unblock retracts one cause's block on the directed link. The link stays
// blocked while other causes remain.
func (f *Faults) Unblock(cause Cause, from, to wire.NodeID) {
	k := linkKey{from, to}
	causes := f.blocks[k]
	delete(causes, cause)
	if len(causes) == 0 {
		delete(f.blocks, k)
	}
}

// Blocked reports whether the directed link is currently blocked.
func (f *Faults) Blocked(from, to wire.NodeID) bool {
	return len(f.blocks[linkKey{from, to}]) > 0
}

// Partition blocks, on behalf of cause, every link between nodes in
// different groups (both directions). Nodes absent from all groups keep
// full connectivity. Heal with the same cause reconnects everything the
// partition cut.
func (f *Faults) Partition(cause Cause, groups ...[]wire.NodeID) {
	for i, a := range groups {
		for _, b := range groups[i+1:] {
			for _, u := range a {
				for _, v := range b {
					f.Block(cause, u, v)
					f.Block(cause, v, u)
				}
			}
		}
	}
}

// Heal retracts every link block the cause installed (partitions and
// individual Block calls alike). Node down state is untouched.
func (f *Faults) Heal(cause Cause) {
	for k, causes := range f.blocks {
		delete(causes, cause)
		if len(causes) == 0 {
			delete(f.blocks, k)
		}
	}
}

// SetLink installs the probabilistic fault configuration for the directed
// link from→to, replacing whatever was set before. A zero LinkFault
// restores the perfect link.
//
// Partitioned-execution interaction: a LinkFault.ExtraDelay change can
// change the network's conservative lookahead window, so SetLink
// invalidates the cached window in the same sim event that applies the
// change. This is safe precisely because of the single-owner rule: all
// fault mutation flows through this controller, and scheduled fault plans
// run as events on the World's HOME queue — at a round barrier, with no
// partition executing — so no partition can be mid-round with a window that
// the mutation just widened or narrowed. The World re-reads
// Network.Lookahead when it forms the next round.
func (f *Faults) SetLink(from, to wire.NodeID, lf LinkFault) {
	k := linkKey{from, to}
	f.net.lookaheadValid = false
	if lf.IsZero() {
		delete(f.links, k)
		return
	}
	f.links[k] = lf
}

// Link returns the link's current fault configuration (zero = perfect).
func (f *Faults) Link(from, to wire.NodeID) LinkFault {
	return f.links[linkKey{from, to}]
}

// Dropped returns how many messages link faults discarded (blocks + drops).
// Counters live on the sending node (so concurrent partitions never share
// one) and are summed on read.
func (f *Faults) Dropped() uint64 {
	var total uint64
	for _, nd := range f.net.nodes {
		total += nd.dropped
	}
	return total
}

// Duplicated returns how many duplicate deliveries link faults created.
func (f *Faults) Duplicated() uint64 {
	var total uint64
	for _, nd := range f.net.nodes {
		total += nd.duplicated
	}
	return total
}

// Reordered returns how many messages were held back for reordering.
func (f *Faults) Reordered() uint64 {
	var total uint64
	for _, nd := range f.net.nodes {
		total += nd.reordered
	}
	return total
}

// linkActive reports whether any link-level fault state exists at all; the
// Send hot path checks this once before touching the maps.
func (f *Faults) linkActive() bool {
	return len(f.blocks) > 0 || len(f.links) > 0
}
