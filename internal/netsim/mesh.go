package netsim

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/gossip"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Mesh is the bounded-fanout gossip overlay (DESIGN.md §13): a
// deterministic peer graph over the network's nodes, one gossip.Relay per
// node, and a short flush timer that batches each node's pending relay
// backlog into per-peer Envelopes. Protocol layers publish through
// Gossip() and receive through a DeliverFunc; the mesh owns dedup,
// forwarding, and expiry in between.
//
// The message-complexity win over Broadcast is the batching: a flood
// alone costs ~n·fanout links per payload (worse than broadcast's n-1),
// but every flush ships one envelope per peer carrying the whole burst a
// consensus height generates, so envelopes-per-committed-element drops to
// O(n·fanout / burst) — measured by the mesh_* registry entries.
//
// Determinism under intra-run PDES: every endpoint's state (relay, seq,
// flush timer) is touched only by its own node's events on its own
// partition queue; the peer graph is a pure function of the root seed
// computed once at deploy time; flush iterates a sorted peer slice, never
// map order. See DESIGN.md §12/§13.
type Mesh struct {
	net    *Network
	fanout int
	ids    []wire.NodeID // sorted
	peers  map[wire.NodeID][]wire.NodeID
	eps    map[wire.NodeID]*meshEndpoint
}

// DeliverFunc receives a gossiped payload on a node. origin is the node
// that originated the message (not the mesh neighbor that relayed it), so
// protocol-level sender checks keep working.
type DeliverFunc func(origin wire.NodeID, payload any, size int)

// Envelope is the mesh's wire message: the batch of relay entries one
// flush ships toward one peer.
type Envelope struct {
	Entries []gossip.Entry
}

// MeshStats aggregates the endpoint and relay counters across a mesh.
type MeshStats struct {
	Originated uint64 // payloads published via Gossip
	Delivered  uint64 // fresh payloads handed to DeliverFuncs
	Relayed    uint64 // fresh entries fanned back out toward peers
	DedupDrops uint64 // received entries discarded as already-seen
	QueueDrops uint64 // entries dropped at full relay queues
	Expired    uint64 // queued entries dropped past their TTL
}

// Add accumulates another snapshot (per-shard aggregation).
func (s *MeshStats) Add(o MeshStats) {
	s.Originated += o.Originated
	s.Delivered += o.Delivered
	s.Relayed += o.Relayed
	s.DedupDrops += o.DedupDrops
	s.QueueDrops += o.QueueDrops
	s.Expired += o.Expired
}

// Mesh tuning. The flush interval is the batching window: a payload waits
// at most meshFlushInterval per hop, ~hops·5ms end to end — negligible
// against the ~1.25s consensus block interval. Dedup memory far outlives
// any plausible redelivery path; the entry TTL only discards backlog that
// missed many consecutive flushes (a down or saturated peer link).
const (
	meshFlushInterval = 5 * time.Millisecond
	meshDedupTTL      = 60 * time.Second
	meshEntryTTL      = 250 * time.Millisecond
	meshQueueCap      = 8192
	// Wire-size accounting for the envelope framing: per-entry digest,
	// hop count and length prefix, plus the envelope header.
	meshEntryOverhead    = 24
	meshEnvelopeOverhead = 16
	// meshTopoSalt derives the topology RNG stream from the root seed,
	// disjoint from every per-node stream (node ids are small).
	meshTopoSalt = 0x6d657368 // "mesh"
)

// MeshPeers builds the deterministic peer graph: a circulant topology
// over the sorted ids. Offset 1 (the ring) is always included, which
// guarantees connectivity at any fanout >= 2; the remaining fanout/2 - 1
// offsets are drawn without replacement from [2, n/2] using an RNG stream
// derived from the seed, so the graph is "k-regular-ish" — every node has
// the same degree ~= fanout — and identical for identical (seed, ids,
// fanout) regardless of partitioning or worker count. A fanout >= n-1
// degenerates to the full mesh (gossip over it behaves like broadcast
// plus dedup).
func MeshPeers(seed int64, ids []wire.NodeID, fanout int) map[wire.NodeID][]wire.NodeID {
	sorted := append([]wire.NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	peers := make(map[wire.NodeID][]wire.NodeID, n)
	if n <= 1 {
		for _, id := range sorted {
			peers[id] = nil
		}
		return peers
	}
	if fanout >= n-1 {
		for i, id := range sorted {
			full := make([]wire.NodeID, 0, n-1)
			for j, other := range sorted {
				if j != i {
					full = append(full, other)
				}
			}
			peers[id] = full
		}
		return peers
	}
	m := fanout / 2
	if m < 1 {
		m = 1
	}
	offsets := []int{1}
	if m > 1 {
		candidates := make([]int, 0, n/2)
		for o := 2; o <= n/2; o++ {
			candidates = append(candidates, o)
		}
		rng := rand.New(rand.NewSource(sim.ChildSeed(seed, meshTopoSalt)))
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		if len(candidates) > m-1 {
			candidates = candidates[:m-1]
		}
		offsets = append(offsets, candidates...)
	}
	for i, id := range sorted {
		set := map[wire.NodeID]bool{}
		for _, o := range offsets {
			set[sorted[(i+o)%n]] = true
			set[sorted[((i-o)%n+n)%n]] = true
		}
		ps := make([]wire.NodeID, 0, len(set))
		for p := range set {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
		peers[id] = ps
	}
	return peers
}

// meshEndpoint is one node's slice of the mesh. All of its state is
// mutated only by events on its own node's simulator queue.
type meshEndpoint struct {
	mesh    *Mesh
	id      wire.NodeID
	sim     *sim.Simulator
	peers   []wire.NodeID
	relay   *gossip.Relay
	deliver DeliverFunc

	seq        uint64
	flushArmed bool
	originated uint64
	delivered  uint64
}

// NewMesh builds the overlay over the given node ids with the given
// fanout, seeding the topology from the network's simulator. Call after
// the ids are registered with AddNode; install receivers with SetDeliver
// and route *Envelope payloads arriving at a node into Receive.
func NewMesh(net *Network, ids []wire.NodeID, fanout int) *Mesh {
	sorted := append([]wire.NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m := &Mesh{
		net:    net,
		fanout: fanout,
		ids:    sorted,
		peers:  MeshPeers(net.sim.Seed(), sorted, fanout),
		eps:    make(map[wire.NodeID]*meshEndpoint, len(sorted)),
	}
	cfg := gossip.Config{
		QueueCap: meshQueueCap,
		EntryTTL: meshEntryTTL,
		DedupTTL: meshDedupTTL,
		// Any connected graph's diameter is < n, so n hops is a pure
		// re-circulation backstop, never a reachability limit.
		MaxHops: len(sorted),
	}
	for _, id := range sorted {
		m.eps[id] = &meshEndpoint{
			mesh:  m,
			id:    id,
			sim:   net.simOf(id),
			peers: m.peers[id],
			relay: gossip.NewRelay(m.peers[id], cfg),
		}
	}
	return m
}

// Fanout returns the configured fanout.
func (m *Mesh) Fanout() int { return m.fanout }

// Peers returns node id's neighbors (sorted, shared slice — read only).
func (m *Mesh) Peers(id wire.NodeID) []wire.NodeID { return m.peers[id] }

// SetDeliver installs the local delivery callback for a node.
func (m *Mesh) SetDeliver(id wire.NodeID, fn DeliverFunc) {
	ep, ok := m.eps[id]
	if !ok {
		panic("netsim: SetDeliver for node outside the mesh")
	}
	ep.deliver = fn
}

// Gossip publishes a payload from a node into the mesh. The message gets
// a fresh digest, is remembered locally (so the looped-back copy is not
// re-delivered to its originator), and is queued toward every neighbor
// for the next flush. Like Broadcast, it does not deliver to self.
func (m *Mesh) Gossip(from wire.NodeID, payload any, size int) {
	ep, ok := m.eps[from]
	if !ok {
		panic("netsim: Gossip from node outside the mesh")
	}
	now := ep.sim.Now()
	d := gossip.Digest{Origin: from, Seq: ep.seq}
	ep.seq++
	ep.relay.Observe(d, now)
	ep.originated++
	e := gossip.Entry{Digest: d, Payload: payload, Size: size}
	for _, p := range ep.peers {
		ep.relay.Enqueue(p, e, now)
	}
	ep.armFlush()
}

// Receive ingests an envelope that arrived at self from a mesh neighbor.
// Fresh entries are delivered locally (with their ORIGIN as the sender)
// and re-queued toward the rest of the neighborhood; stale ones are
// dropped by the relay's dedup cache.
func (m *Mesh) Receive(self, from wire.NodeID, env *Envelope) {
	ep, ok := m.eps[self]
	if !ok {
		panic("netsim: Receive on node outside the mesh")
	}
	now := ep.sim.Now()
	for _, e := range env.Entries {
		if ep.relay.Ingest(from, e, now) {
			ep.delivered++
			if ep.deliver != nil {
				ep.deliver(e.Digest.Origin, e.Payload, e.Size)
			}
		}
	}
	ep.armFlush()
}

// armFlush schedules the endpoint's next flush on its own node's
// simulator queue, if one is not already pending.
func (ep *meshEndpoint) armFlush() {
	if ep.flushArmed {
		return
	}
	ep.flushArmed = true
	ep.sim.After(meshFlushInterval, ep.flush)
}

// flush ships each neighbor's queued backlog as one envelope. Peer order
// is the sorted slice, never map order, so the send sequence — and with
// it the sender-rng fault/jitter draw sequence — is deterministic.
func (ep *meshEndpoint) flush() {
	ep.flushArmed = false
	for _, p := range ep.peers {
		entries := ep.relay.Flush(p, ep.sim.Now())
		if len(entries) == 0 {
			continue
		}
		size := meshEnvelopeOverhead
		for _, e := range entries {
			size += e.Size + meshEntryOverhead
		}
		ep.mesh.net.Send(ep.id, p, &Envelope{Entries: entries}, size)
	}
}

// Stats sums the mesh's counters across endpoints.
func (m *Mesh) Stats() MeshStats {
	var st MeshStats
	for _, id := range m.ids {
		ep := m.eps[id]
		st.Originated += ep.originated
		st.Delivered += ep.delivered
		rs := ep.relay.Stats()
		st.Relayed += rs.Relayed
		st.DedupDrops += rs.DedupDrops
		st.QueueDrops += rs.QueueDrops
		st.Expired += rs.Expired
	}
	return st
}
