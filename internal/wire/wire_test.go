package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/setcrypto"
)

func TestWireSizeConstantsMatchPaper(t *testing.T) {
	p := &EpochProof{}
	if p.WireSize() != 139 {
		t.Fatalf("epoch-proof wire size = %d, want 139 (paper §4)", p.WireSize())
	}
	hb := &HashBatch{}
	if hb.WireSize() != 139 {
		t.Fatalf("hash-batch wire size = %d, want 139 (paper §4)", hb.WireSize())
	}
}

func TestElementSigningBytesBindAllFields(t *testing.T) {
	e := &Element{Client: 7, Seq: 3, Payload: []byte("data")}
	e.ID[0] = 1
	base := e.SigningBytes()
	variants := []*Element{
		{Client: 8, Seq: 3, Payload: []byte("data")},
		{Client: 7, Seq: 4, Payload: []byte("data")},
		{Client: 7, Seq: 3, Payload: []byte("datb")},
	}
	variants[0].ID[0] = 1
	variants[1].ID[0] = 1
	variants[2].ID[0] = 1
	for i, v := range variants {
		if bytes.Equal(base, v.SigningBytes()) {
			t.Fatalf("variant %d has identical signing bytes", i)
		}
	}
	e2 := &Element{Client: 7, Seq: 3, Payload: []byte("data")}
	if bytes.Equal(base, e2.SigningBytes()) {
		t.Fatal("different IDs produced identical signing bytes") // e2.ID zero
	}
}

func TestBatchAccounting(t *testing.T) {
	b := &Batch{}
	if !b.Empty() || b.Len() != 0 || b.RawSize() != 0 {
		t.Fatal("empty batch accounting wrong")
	}
	b.Elements = append(b.Elements, &Element{Size: 438}, &Element{Size: 100})
	b.Proofs = append(b.Proofs, &EpochProof{})
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	if b.RawSize() != 438+100+139 {
		t.Fatalf("raw = %d, want %d", b.RawSize(), 438+100+139)
	}
}

func TestTxKeysDistinct(t *testing.T) {
	e := &Element{Size: 1}
	e.ID[0] = 9
	txs := []*Tx{
		{Kind: TxElement, Element: e},
		{Kind: TxProof, Proof: &EpochProof{Epoch: 1, Signer: 2}},
		{Kind: TxProof, Proof: &EpochProof{Epoch: 1, Signer: 3}},
		{Kind: TxProof, Proof: &EpochProof{Epoch: 2, Signer: 2}},
		{Kind: TxCompressedBatch, Compressed: &CompressedBatch{Origin: 1, Seq: 1, CompSize: 10}},
		{Kind: TxCompressedBatch, Compressed: &CompressedBatch{Origin: 1, Seq: 2, CompSize: 10}},
		{Kind: TxHashBatch, HashBatch: &HashBatch{Hash: []byte("h"), Signer: 1}},
		{Kind: TxHashBatch, HashBatch: &HashBatch{Hash: []byte("h"), Signer: 2}},
	}
	seen := make(map[string]bool)
	for i, tx := range txs {
		k := tx.Key()
		if k == "" {
			t.Fatalf("tx %d has empty key", i)
		}
		if seen[k] {
			t.Fatalf("tx %d key %q collides", i, k)
		}
		seen[k] = true
	}
}

func TestTxWireSizeDispatch(t *testing.T) {
	e := &Element{Size: 438}
	cases := []struct {
		tx   *Tx
		want int
	}{
		{&Tx{Kind: TxElement, Element: e}, 438},
		{&Tx{Kind: TxProof, Proof: &EpochProof{}}, 139},
		{&Tx{Kind: TxCompressedBatch, Compressed: &CompressedBatch{CompSize: 777}}, 777},
		{&Tx{Kind: TxHashBatch, HashBatch: &HashBatch{}}, 139},
		{&Tx{Kind: 99}, 0},
	}
	for i, c := range cases {
		if got := c.tx.WireSize(); got != c.want {
			t.Fatalf("case %d: size = %d, want %d", i, got, c.want)
		}
	}
}

func TestTxKindString(t *testing.T) {
	for _, c := range []struct {
		k    TxKind
		want string
	}{
		{TxElement, "element"}, {TxProof, "proof"},
		{TxCompressedBatch, "compressed-batch"}, {TxHashBatch, "hash-batch"},
	} {
		if c.k.String() != c.want {
			t.Fatalf("%d -> %q, want %q", c.k, c.k.String(), c.want)
		}
	}
	if TxKind(42).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}

func TestEpochHashInputOrderSensitive(t *testing.T) {
	a := &Element{}
	a.ID[0] = 1
	b := &Element{}
	b.ID[0] = 2
	h1 := EpochHashInput(3, []*Element{a, b})
	h2 := EpochHashInput(3, []*Element{b, a})
	if bytes.Equal(h1, h2) {
		t.Fatal("epoch hash input ignores element order")
	}
	h3 := EpochHashInput(4, []*Element{a, b})
	if bytes.Equal(h1, h3) {
		t.Fatal("epoch hash input ignores epoch number")
	}
}

func TestVerifyEpochProof(t *testing.T) {
	suite := setcrypto.FastSuite{}
	reg := setcrypto.NewRegistry()
	kp := setcrypto.FastKeyPair(2)
	reg.Register(2, kp.Public)
	elems := []*Element{{Size: 1}}
	hash := suite.HashData(EpochHashInput(1, elems))
	p := &EpochProof{Epoch: 1, EpochHash: hash, Sig: suite.Sign(kp, hash), Signer: 2}
	if !VerifyEpochProof(suite, reg, p, hash) {
		t.Fatal("valid proof rejected")
	}
	// Wrong expected hash.
	other := suite.HashData([]byte("other"))
	if VerifyEpochProof(suite, reg, p, other) {
		t.Fatal("proof verified against wrong epoch hash")
	}
	// Unknown signer.
	p2 := *p
	p2.Signer = 9
	if VerifyEpochProof(suite, reg, &p2, hash) {
		t.Fatal("proof from unregistered signer verified")
	}
	// Nil / empty cases.
	if VerifyEpochProof(suite, reg, nil, hash) {
		t.Fatal("nil proof verified")
	}
	if VerifyEpochProof(suite, reg, p, nil) {
		t.Fatal("empty expected hash verified")
	}
}

// Property: interned digests are injective on inputs up to DigestSize bytes
// (real digests are exactly 64 bytes; the explicit length keeps shorter
// test hashes from colliding with their zero-padded extensions).
func TestQuickDigestInjective(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > DigestSize {
			a = a[:DigestSize]
		}
		if len(b) > DigestSize {
			b = b[:DigestSize]
		}
		if bytes.Equal(a, b) {
			return DigestOf(a) == DigestOf(b)
		}
		return DigestOf(a) != DigestOf(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Digest round-trips the interned bytes.
func TestDigestBytesRoundTrip(t *testing.T) {
	for _, in := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 64), bytes.Repeat([]byte{7}, 100)} {
		d := DigestOf(in)
		want := in
		if len(want) > DigestSize {
			want = want[:DigestSize]
		}
		if !bytes.Equal(d.Bytes(), want) {
			t.Fatalf("DigestOf(%d bytes).Bytes() = %d bytes, want %d", len(in), len(d.Bytes()), len(want))
		}
	}
}

// MapKey must discriminate exactly as the diagnostic string Key does.
func TestMapKeysDistinct(t *testing.T) {
	e := &Element{Size: 1}
	e.ID[0] = 9
	h64 := bytes.Repeat([]byte{3}, 64)
	txs := []*Tx{
		{Kind: TxElement, Element: e},
		{Kind: TxProof, Proof: &EpochProof{Epoch: 1, Signer: 2}},
		{Kind: TxProof, Proof: &EpochProof{Epoch: 1, Signer: 3}},
		{Kind: TxProof, Proof: &EpochProof{Epoch: 2, Signer: 2}},
		{Kind: TxCompressedBatch, Compressed: &CompressedBatch{Origin: 1, Seq: 1, CompSize: 10}},
		{Kind: TxCompressedBatch, Compressed: &CompressedBatch{Origin: 1, Seq: 2, CompSize: 10}},
		{Kind: TxHashBatch, HashBatch: &HashBatch{Hash: []byte("h"), Signer: 1}},
		{Kind: TxHashBatch, HashBatch: &HashBatch{Hash: []byte("h"), Signer: 2}},
		{Kind: TxHashBatch, HashBatch: &HashBatch{Hash: h64, Signer: 2}},
	}
	seenMap := make(map[TxKey]int)
	seenAppend := make(map[string]int)
	for i, tx := range txs {
		k := tx.MapKey()
		if j, dup := seenMap[k]; dup {
			t.Fatalf("tx %d MapKey collides with tx %d", i, j)
		}
		seenMap[k] = i
		ak := string(tx.AppendKey(nil))
		if j, dup := seenAppend[ak]; dup {
			t.Fatalf("tx %d AppendKey collides with tx %d", i, j)
		}
		seenAppend[ak] = i
	}
}

// MapKey and the mempool dedup path must not allocate.
func TestMapKeyAllocFree(t *testing.T) {
	e := &Element{Size: 438}
	e.ID[0] = 1
	tx := &Tx{Kind: TxElement, Element: e}
	hb := &Tx{Kind: TxHashBatch, HashBatch: &HashBatch{Hash: bytes.Repeat([]byte{5}, 64), Signer: 3}}
	m := make(map[TxKey]struct{})
	avg := testing.AllocsPerRun(200, func() {
		m[tx.MapKey()] = struct{}{}
		m[hb.MapKey()] = struct{}{}
	})
	if avg != 0 {
		t.Fatalf("MapKey/map insert allocates %.2f/op, want 0", avg)
	}
}
