// Package wire defines the domain objects the Setchain algorithms exchange:
// client elements, epoch-proofs, hash-batches, batches and the ledger
// transaction envelope. Every object knows its exact wire size, which is
// what ledger block packing, mempool capacity and network bandwidth
// accounting operate on; in modeled mode the payload bytes themselves can
// be omitted while size accounting stays exact.
//
// See DESIGN.md §6 (performance engineering: interned hot-path keys).
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/setcrypto"
)

// NodeID identifies a Setchain/ledger server (0..n-1).
type NodeID int

// ClientID identifies a client process. Clients use ids disjoint from
// server ids in the PKI registry (servers are 0..n-1; clients n, n+1, ...).
type ClientID int

// ElementID is the unique identity of a Setchain element (the hash prefix
// of its content in full mode, or a generator-assigned unique id in modeled
// mode).
type ElementID [16]byte

// String renders the id as hex for logs.
func (id ElementID) String() string { return fmt.Sprintf("%x", id[:8]) }

// Wire size constants measured by the paper's evaluation (§4): an
// epoch-proof and a hash-batch are each 139 bytes on the ledger; the
// average Arbitrum element is 438 bytes.
const (
	EpochProofWireSize = 139
	HashBatchWireSize  = 139
	ElementHeaderSize  = 16 + 8 + 8 + 4 // id + client + seq + length prefix
)

// Element is a Setchain element created and signed by a client.
type Element struct {
	ID      ElementID
	Client  ClientID
	Seq     uint64
	Size    int    // full wire size in bytes (header + payload + signature)
	Payload []byte // nil in modeled mode
	Sig     []byte // client signature; nil in modeled mode

	// Bogus marks an element as invalid in modeled mode (where there is no
	// real signature to fail verification); Byzantine servers inject such
	// elements and correct servers must filter them. Always false for
	// elements created by correct clients.
	Bogus bool

	// InjectedAt records the virtual time the client created the element;
	// used only by metrics, never by protocol logic.
	InjectedAt int64
}

// WireSize returns the element's size on the ledger/network.
func (e *Element) WireSize() int { return e.Size }

// SigningBytes returns the byte string a client signs: the element header
// plus payload.
func (e *Element) SigningBytes() []byte {
	buf := make([]byte, 0, ElementHeaderSize+len(e.Payload))
	buf = append(buf, e.ID[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Client))
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Payload)))
	buf = append(buf, e.Payload...)
	return buf
}

// EpochProof is the cryptographic signature of an epoch by a server:
// p_v(i) = Sign_v(Hash(i, history[i])). Carrying the signer id lets clients
// look up the verification key in the PKI.
type EpochProof struct {
	Epoch     uint64
	EpochHash []byte // Hash(epoch number, epoch elements)
	Sig       []byte
	Signer    NodeID
}

// WireSize returns the proof's ledger footprint (139 bytes per the paper).
func (p *EpochProof) WireSize() int { return EpochProofWireSize }

// Key renders the dedup key for logs. Hot paths use MapKey.
func (p *EpochProof) Key() string {
	return fmt.Sprintf("ep/%d/%d", p.Epoch, p.Signer)
}

// ProofKey is the comparable dedup identity of an epoch-proof: one proof
// per (epoch, signer) pair.
type ProofKey struct {
	Epoch  uint64
	Signer NodeID
}

// MapKey returns the proof's comparable dedup key.
func (p *EpochProof) MapKey() ProofKey {
	return ProofKey{Epoch: p.Epoch, Signer: p.Signer}
}

// HashBatch is Hashchain's ledger transaction: the hash of a batch, signed
// by a server, with the signer's identity.
type HashBatch struct {
	Hash   []byte
	Sig    []byte
	Signer NodeID
}

// WireSize returns the hash-batch's ledger footprint (139 bytes).
func (hb *HashBatch) WireSize() int { return HashBatchWireSize }

// Key renders the dedup key for logs. Hot paths use Tx.MapKey.
func (hb *HashBatch) Key() string {
	return fmt.Sprintf("hb/%x/%d", hb.Hash, hb.Signer)
}

// DigestSize is the fixed capacity of an interned Digest: the 64 bytes of a
// SHA-512-shaped batch hash (setcrypto.HashSize).
const DigestSize = 64

// Digest interns a variable-length hash as a fixed-size comparable value,
// usable directly as a map key without a per-lookup string conversion. The
// explicit length keeps inputs of different lengths distinct (a digest and
// its zero-padded extension never collide). Inputs longer than DigestSize —
// which only a Byzantine sender can produce, since real digests are exactly
// 64 bytes — are truncated.
type Digest struct {
	b [DigestSize]byte
	n uint8
}

// DigestOf interns h.
func DigestOf(h []byte) Digest {
	var d Digest
	d.n = uint8(copy(d.b[:], h))
	return d
}

// Bytes returns the interned hash bytes.
func (d Digest) Bytes() []byte { return d.b[:d.n] }

// Batch is a collector's accumulated content: client elements plus
// epoch-proofs generated by this server since the last flush.
type Batch struct {
	Elements []*Element
	Proofs   []*EpochProof
}

// RawSize returns the uncompressed wire size of the batch content.
func (b *Batch) RawSize() int {
	s := 0
	for _, e := range b.Elements {
		s += e.WireSize()
	}
	s += len(b.Proofs) * EpochProofWireSize
	return s
}

// Len returns the number of items (elements + proofs) in the batch.
func (b *Batch) Len() int { return len(b.Elements) + len(b.Proofs) }

// Empty reports whether the batch holds nothing.
func (b *Batch) Empty() bool { return b.Len() == 0 }

// CompressedBatch is Compresschain's ledger transaction: a batch compressed
// into a single blob. In full mode Data holds the real compressed bytes; in
// modeled mode Data is nil, Original points at the batch, and CompSize was
// computed from the modeled compression ratio.
type CompressedBatch struct {
	Data     []byte
	CompSize int
	Origin   NodeID
	Seq      uint64 // per-origin sequence number, part of the dedup key

	// Original carries the decoded batch in modeled mode (no real
	// compression) so FinalizeBlock can "decompress" it; nil in full mode.
	Original *Batch
}

// WireSize returns the compressed size that lands on the ledger.
func (cb *CompressedBatch) WireSize() int { return cb.CompSize }

// Key returns a dedup key unique per (origin, sequence).
func (cb *CompressedBatch) Key() string {
	return fmt.Sprintf("cb/%d/%d", cb.Origin, cb.Seq)
}

// TxKind discriminates ledger transaction payloads.
type TxKind uint8

// Transaction kinds appearing on the block-based ledger across the three
// algorithms.
const (
	TxElement         TxKind = iota + 1 // Vanilla: a bare client element
	TxProof                             // Vanilla: a bare epoch-proof
	TxCompressedBatch                   // Compresschain: one compressed batch
	TxHashBatch                         // Hashchain: one signed batch hash
)

// String implements fmt.Stringer for diagnostics.
func (k TxKind) String() string {
	switch k {
	case TxElement:
		return "element"
	case TxProof:
		return "proof"
	case TxCompressedBatch:
		return "compressed-batch"
	case TxHashBatch:
		return "hash-batch"
	default:
		return fmt.Sprintf("TxKind(%d)", uint8(k))
	}
}

// Tx is the ledger transaction envelope. Exactly one payload field is
// non-nil, matching Kind.
type Tx struct {
	Kind       TxKind
	Element    *Element
	Proof      *EpochProof
	Compressed *CompressedBatch
	HashBatch  *HashBatch
}

// WireSize returns the transaction's ledger footprint.
func (tx *Tx) WireSize() int {
	switch tx.Kind {
	case TxElement:
		return tx.Element.WireSize()
	case TxProof:
		return tx.Proof.WireSize()
	case TxCompressedBatch:
		return tx.Compressed.WireSize()
	case TxHashBatch:
		return tx.HashBatch.WireSize()
	default:
		return 0
	}
}

// Key renders the transaction's dedup key for logs and diagnostics. Hot
// paths (mempool dedup, metrics carrier tracking, block hashing) use MapKey
// and AppendKey, which do not allocate.
func (tx *Tx) Key() string {
	switch tx.Kind {
	case TxElement:
		return "el/" + string(tx.Element.ID[:])
	case TxProof:
		return tx.Proof.Key()
	case TxCompressedBatch:
		return tx.Compressed.Key()
	case TxHashBatch:
		return tx.HashBatch.Key()
	default:
		return ""
	}
}

// TxKey is the comparable dedup identity of a ledger transaction: the
// fields that make the transaction unique, packed into a fixed-size value
// so mempool and metrics maps never build string keys on the hot path.
// Kind discriminates the populated fields: elements intern their 16-byte id
// into H, hash-batches intern the batch hash into H with the signer in A,
// proofs pack (epoch, signer) into (A, B), and compressed batches pack
// (origin, seq) into (A, B).
type TxKey struct {
	Kind TxKind
	H    Digest
	A, B uint64
}

// MapKey returns the transaction's comparable dedup key.
func (tx *Tx) MapKey() TxKey {
	switch tx.Kind {
	case TxElement:
		return TxKey{Kind: TxElement, H: DigestOf(tx.Element.ID[:])}
	case TxProof:
		return TxKey{Kind: TxProof, A: tx.Proof.Epoch, B: uint64(tx.Proof.Signer)}
	case TxCompressedBatch:
		return TxKey{Kind: TxCompressedBatch,
			A: uint64(tx.Compressed.Origin), B: tx.Compressed.Seq}
	case TxHashBatch:
		return TxKey{Kind: TxHashBatch,
			H: DigestOf(tx.HashBatch.Hash), A: uint64(tx.HashBatch.Signer)}
	default:
		return TxKey{}
	}
}

// AppendKey appends an unambiguous binary form of the transaction's dedup
// identity to buf and returns the extended slice. Consensus hashes proposal
// contents through this instead of allocating one string per transaction.
// Every record is self-delimiting: a kind byte, fixed-width fields, and a
// length prefix before the only variable-length field (the batch hash).
func (tx *Tx) AppendKey(buf []byte) []byte {
	buf = append(buf, byte(tx.Kind))
	switch tx.Kind {
	case TxElement:
		buf = append(buf, tx.Element.ID[:]...)
	case TxProof:
		buf = binary.LittleEndian.AppendUint64(buf, tx.Proof.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(tx.Proof.Signer))
	case TxCompressedBatch:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(tx.Compressed.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, tx.Compressed.Seq)
	case TxHashBatch:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(tx.HashBatch.Signer))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tx.HashBatch.Hash)))
		buf = append(buf, tx.HashBatch.Hash...)
	}
	return buf
}

// Block is a finalized ledger block: an ordered sequence of transactions.
//
// CkptEpoch and CkptFold bind the proposer's sealed checkpoint chain into
// the header: CkptEpoch is the latest sealed checkpoint epoch (0 before
// any seal) and CkptFold is checkpoint.FoldChain over the chain through
// that epoch. Both feed the block id, so the 2f+1 commit certificate
// covers them — a state-syncing node verifies a peer snapshot's chain
// against a certified header instead of trusting the peer (DESIGN.md §15).
type Block struct {
	Height    uint64
	Proposer  NodeID
	Txs       []*Tx
	Bytes     int    // sum of tx wire sizes
	Time      int64  // virtual commit time in nanoseconds
	CkptEpoch uint64 // latest sealed checkpoint epoch at propose time
	CkptFold  uint64 // checkpoint chain fold through CkptEpoch
}

// EpochHashInput builds the canonical byte string hashed to identify an
// epoch: the epoch number followed by the ids of its elements in ledger
// order. All correct servers derive identical input for the same epoch,
// which is what makes epoch-proofs comparable across servers.
func EpochHashInput(epoch uint64, elems []*Element) []byte {
	buf := make([]byte, 0, 8+len(elems)*16)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	for _, e := range elems {
		buf = append(buf, e.ID[:]...)
	}
	return buf
}

// VerifyEpochProof checks an epoch-proof against the expected epoch hash
// using the signer's registered public key.
func VerifyEpochProof(suite setcrypto.Suite, reg *setcrypto.Registry, p *EpochProof, expectedHash []byte) bool {
	if p == nil || len(expectedHash) == 0 {
		return false
	}
	if len(p.EpochHash) != len(expectedHash) {
		return false
	}
	for i := range expectedHash {
		if p.EpochHash[i] != expectedHash[i] {
			return false
		}
	}
	pub := reg.Lookup(int(p.Signer))
	if pub == nil {
		return false
	}
	return suite.Verify(pub, p.EpochHash, p.Sig)
}
