package spec

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryEntriesAreDocumentedAndValid(t *testing.T) {
	if len(All()) < 14 {
		t.Fatalf("registry has %d entries, want the full catalog", len(All()))
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.Name] {
			t.Errorf("duplicate entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.Title == "" || e.Description == "" || e.Figure == "" {
			t.Errorf("entry %q missing documentation: %+v", e.Name, e)
		}
		for i, c := range e.Cells {
			if err := c.WithDefaults().Validate(); err != nil {
				t.Errorf("entry %q cell %d invalid: %v", e.Name, i, err)
			}
		}
	}
}

func TestRegistryCatalogShapes(t *testing.T) {
	// The shapes the study functions rely on; see internal/harness for the
	// full equivalence checks against the pre-registry implementations.
	cases := map[string]int{
		"fig1": 7, "table2": 7, "fig2left": 5,
		"fig3a": 20, "fig3b": 15, "fig3c": 15,
		"fig4": 3, "fig5a": 20, "fig5b": 15, "fig5c": 15,
		"table1": 0, "fig2right": 0, "d1": 0, "perf": 1,
	}
	for name, want := range cases {
		e, ok := Get(name)
		if !ok {
			t.Errorf("entry %q missing", name)
			continue
		}
		if len(e.Cells) != want {
			t.Errorf("entry %q has %d cells, want %d", name, len(e.Cells), want)
		}
	}
	fig1 := MustGet("fig1")
	if fig1.Cells[0].Group != "left" || fig1.Cells[3].Group != "center" || fig1.Cells[5].Group != "right" {
		t.Fatalf("fig1 panel grouping wrong: %+v", fig1.Cells)
	}
	fig4 := MustGet("fig4")
	for _, c := range fig4.Cells {
		if c.Metrics != MetricsStages || c.Rate != 1250 {
			t.Fatalf("fig4 cell wrong: %+v", c)
		}
	}
	lim := MustGet("fig2left")
	if lim.Cells[1].Rate != 150000 || !lim.Cells[1].Light {
		t.Fatalf("fig2left Light cell wrong: %+v", lim.Cells[1])
	}
	if lim.Cells[0].Horizon.Std() != 90*time.Second {
		t.Fatalf("fig2left horizon = %v, want 90s", lim.Cells[0].Horizon.Std())
	}
}

func TestRegisterPanics(t *testing.T) {
	defer func(old []Entry) { registry = old }(registry)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("duplicate name", func() { Register(Entry{Name: "fig1"}) })
	expectPanic("empty name", func() { Register(Entry{}) })
	expectPanic("invalid cell", func() {
		Register(Entry{Name: "broken", Cells: []ScenarioSpec{{Algorithm: "nope", Rate: 1}}})
	})
}

func TestSuggestEntries(t *testing.T) {
	got := SuggestEntries("fig3")
	if len(got) < 3 {
		t.Fatalf("SuggestEntries(fig3) = %v", got)
	}
	joined := strings.Join(got, " ")
	for _, want := range []string{"fig3a", "fig3b", "fig3c"} {
		if !strings.Contains(joined, want) {
			t.Errorf("SuggestEntries(fig3) = %v, missing %s", got, want)
		}
	}
}
