package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Set assigns one field of the spec by its override key. Keys are the
// JSON field names plus short aliases; values are parsed the way the CLI
// writes them ("hashchain", "500", "30ms", "true"). Multi-valued
// behaviors join with '+' ("withhold-batches+corrupt-proofs") so commas
// stay free for matrix value lists.
func Set(s *ScenarioSpec, key, value string) error {
	fail := func(err error) error {
		return fmt.Errorf("%s=%s: %w", key, value, err)
	}
	switch strings.ToLower(key) {
	case "name":
		s.Name = value
	case "group":
		s.Group = value
	case "algorithm", "alg":
		s.Algorithm = strings.ToLower(value)
	case "collector", "c":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		s.Collector = v
	case "light":
		v, err := strconv.ParseBool(value)
		if err != nil {
			return fail(err)
		}
		s.Light = v
	case "servers", "n":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		s.Servers = v
	case "shards", "s":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		s.Shards = v
	case "intra_workers", "iw":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		s.IntraWorkers = v
	case "transport":
		s.Transport = strings.ToLower(value)
	case "fanout":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		s.Fanout = v
	case "rate":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		s.Rate = v
	case "send_for", "sendfor", "send":
		v, err := parseDuration(value)
		if err != nil {
			return fail(err)
		}
		s.SendFor = v
	case "horizon":
		v, err := parseDuration(value)
		if err != nil {
			return fail(err)
		}
		s.Horizon = v
	case "network_delay", "delay":
		v, err := parseDuration(value)
		if err != nil {
			return fail(err)
		}
		s.NetworkDelay = v
	case "bandwidth":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		s.Bandwidth = v
	case "seed":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fail(err)
		}
		s.Seed = v
	case "scale":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		s.Scale = v
	case "metrics":
		s.Metrics = strings.ToLower(value)
	case "crypto":
		s.Crypto = strings.ToLower(value)
	case "faulty":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		if s.Byzantine == nil {
			s.Byzantine = &ByzantineSpec{}
		}
		s.Byzantine.Faulty = v
	case "behaviors", "behavior":
		if s.Byzantine == nil {
			s.Byzantine = &ByzantineSpec{Faulty: 1}
		}
		s.Byzantine.Behaviors = strings.Split(value, "+")
	case "inject_count":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		if s.Byzantine == nil {
			s.Byzantine = &ByzantineSpec{Faulty: 1}
		}
		s.Byzantine.InjectCount = v
	case "checkpoint_interval", "ckpt":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		s.CheckpointInterval = v
	case "prune":
		v, err := strconv.ParseBool(value)
		if err != nil {
			return fail(err)
		}
		s.Prune = v
	case "heap_ceiling_mb", "heap":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		s.HeapCeilingMB = v
	case "zipf":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		openOf(s).Zipf = v
	case "churn_on", "churn":
		v, err := parseDuration(value)
		if err != nil {
			return fail(err)
		}
		openOf(s).ChurnOn = v
	case "churn_off":
		v, err := parseDuration(value)
		if err != nil {
			return fail(err)
		}
		openOf(s).ChurnOff = v
	case "admission", "policy":
		admissionOf(s).Policy = strings.ToLower(value)
	case "watermark":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		admissionOf(s).Watermark = v
	case "max_txs":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		admissionOf(s).MaxTxs = v
	case "max_bytes":
		v, err := strconv.Atoi(value)
		if err != nil {
			return fail(err)
		}
		admissionOf(s).MaxBytes = v
	case "drop":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		baseLinkEvent(s).Drop = v
	case "duplicate", "dup":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		baseLinkEvent(s).Duplicate = v
	case "reorder":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fail(err)
		}
		baseLinkEvent(s).Reorder = v
	default:
		return fmt.Errorf("unknown spec field %q (known: %s)",
			key, strings.Join(overrideKeys, ", "))
	}
	return nil
}

// overrideKeys lists the canonical Set keys for error messages.
var overrideKeys = []string{
	"name", "group", "algorithm", "collector", "light", "servers", "shards",
	"intra_workers", "transport", "fanout", "rate",
	"send_for", "horizon", "network_delay", "bandwidth", "seed", "scale",
	"metrics", "crypto", "faulty", "behaviors", "inject_count",
	"checkpoint_interval", "prune", "heap_ceiling_mb",
	"zipf", "churn_on", "churn_off", "admission", "watermark",
	"max_txs", "max_bytes",
	"drop", "duplicate", "reorder",
}

// openOf finds (or creates) the spec's open-system block for the
// zipf/churn override keys.
func openOf(s *ScenarioSpec) *OpenSpec {
	if s.Open == nil {
		s.Open = &OpenSpec{}
	}
	return s.Open
}

// admissionOf finds (or creates) the spec's admission block. The bare
// watermark/cap keys default the policy to "reject" so a single matrix
// axis like max_txs=200,400,800 is runnable on its own.
func admissionOf(s *ScenarioSpec) *AdmissionSpec {
	if s.Admission == nil {
		s.Admission = &AdmissionSpec{Policy: AdmissionReject}
	}
	return s.Admission
}

// baseLinkEvent finds (or creates) the spec's time-zero all-links fault
// event, so the drop/duplicate/reorder override keys merge into one event
// instead of each replacing the others' link configuration.
func baseLinkEvent(s *ScenarioSpec) *FaultEventSpec {
	if s.Faults == nil {
		s.Faults = &FaultSpec{}
	}
	for i := range s.Faults.Events {
		ev := &s.Faults.Events[i]
		if ev.Action == FaultLink && ev.At == 0 && len(ev.From) == 0 && len(ev.To) == 0 {
			return ev
		}
	}
	s.Faults.Events = append(s.Faults.Events, FaultEventSpec{Action: FaultLink})
	return &s.Faults.Events[len(s.Faults.Events)-1]
}

// parseDuration accepts "30ms"/"50s" and bare numbers of seconds.
func parseDuration(v string) (Duration, error) {
	if d, err := time.ParseDuration(v); err == nil {
		return Duration(d), nil
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("want a duration (\"30ms\") or seconds, got %q", v)
	}
	return Duration(secs * float64(time.Second)), nil
}

// Axis is one matrix dimension: a spec field crossed over several values.
type Axis struct {
	Key    string
	Values []string
}

// ParseAxis parses a "servers=4,8,16"-style matrix override.
func ParseAxis(arg string) (Axis, error) {
	key, vals, ok := strings.Cut(arg, "=")
	if !ok || key == "" || vals == "" {
		return Axis{}, fmt.Errorf("matrix override %q: want key=v1,v2,...", arg)
	}
	ax := Axis{Key: strings.TrimSpace(key)}
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return Axis{}, fmt.Errorf("matrix override %q: empty value", arg)
		}
		ax.Values = append(ax.Values, v)
	}
	// Validate the key and value syntax once up front, against a throwaway
	// spec, so errors surface before any simulation starts.
	var probe ScenarioSpec
	for _, v := range ax.Values {
		if err := Set(&probe, ax.Key, v); err != nil {
			return Axis{}, err
		}
	}
	return ax, nil
}

// Expand crosses the cells over every axis in order (the last axis varies
// fastest). Axes with more than one value tag each resulting cell's Name
// with "key=value" so matrix output stays tellable apart.
func Expand(cells []ScenarioSpec, axes ...Axis) ([]ScenarioSpec, error) {
	out := append([]ScenarioSpec(nil), cells...)
	for _, ax := range axes {
		next := make([]ScenarioSpec, 0, len(out)*len(ax.Values))
		for _, cell := range out {
			for _, v := range ax.Values {
				c := cell
				if c.Byzantine != nil {
					b := *c.Byzantine
					c.Byzantine = &b
				}
				if c.Faults != nil {
					f := FaultSpec{Events: append([]FaultEventSpec(nil), c.Faults.Events...)}
					c.Faults = &f
				}
				if c.Open != nil {
					o := *c.Open
					o.Envelope = append([]RatePhaseSpec(nil), c.Open.Envelope...)
					c.Open = &o
				}
				if c.Admission != nil {
					a := *c.Admission
					c.Admission = &a
				}
				if err := Set(&c, ax.Key, v); err != nil {
					return nil, err
				}
				if len(ax.Values) > 1 {
					tag := fmt.Sprintf("%s=%s", ax.Key, v)
					if c.Name == "" {
						c.Name = fmt.Sprintf("%s %s", c.VariantLabel(), tag)
					} else {
						c.Name += " " + tag
					}
				}
				next = append(next, c)
			}
		}
		out = next
	}
	return out, nil
}

// Suggest returns registry-independent near-miss candidates for name from
// the given vocabulary: exact-prefix and substring matches first, then
// anything within edit distance 2, closest first.
func Suggest(name string, vocabulary []string) []string {
	type cand struct {
		name string
		rank int
	}
	var cands []cand
	lower := strings.ToLower(name)
	for _, v := range vocabulary {
		lv := strings.ToLower(v)
		switch {
		case strings.HasPrefix(lv, lower) || strings.Contains(lv, lower):
			cands = append(cands, cand{v, 0})
		default:
			if d := editDistance(lower, lv); d <= 2 {
				cands = append(cands, cand{v, d})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].rank < cands[j].rank })
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
