package spec

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioSpecJSON fuzzes the scenario-document pipeline: whatever
// bytes Decode accepts must survive a marshal/decode round trip as a fixed
// point — parse → default+validate → marshal → parse yields the same
// cells — and nothing may panic on arbitrary input. Seeds come from the
// checked-in example scenario documents plus hand-written edge cases.
func FuzzScenarioSpecJSON(f *testing.F) {
	// Seed corpus: every example spec shipped in the repo.
	if paths, err := filepath.Glob("../../examples/specs/*.json"); err == nil {
		for _, p := range paths {
			if blob, err := os.ReadFile(p); err == nil {
				f.Add(blob)
			}
		}
	}
	f.Add([]byte(`{"algorithm":"hashchain","rate":100}`))
	f.Add([]byte(`[{"algorithm":"vanilla","rate":1}]`))
	f.Add([]byte(`{"algorithm":"compresschain","rate":5,"send_for":"50s","horizon":60}`))
	f.Add([]byte(`{"algorithm":"hashchain","rate":2,"byzantine":{"faulty":1,"behaviors":["silent"]}}`))
	f.Add([]byte(`{"algorithm":"hashchain","rate":2,"faults":{"events":[` +
		`{"at":"10s","action":"partition","groups":[[0,1],[2,3]]},` +
		`{"at":"20s","action":"heal"},` +
		`{"action":"link","drop":0.1,"reorder":0.5}]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"algorithm":"hashchain","rate":1e309}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cells, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only panics count as failures
		}
		// Decode returns defaulted, validated cells; defaulting must be
		// idempotent from here on.
		for i, c := range cells {
			if !reflect.DeepEqual(c, c.WithDefaults()) {
				t.Fatalf("cell %d: WithDefaults not idempotent after Decode", i)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("cell %d: Decode returned an invalid cell: %v", i, err)
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, cells); err != nil {
			t.Fatalf("accepted cells failed to marshal: %v", err)
		}
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("marshaled form no longer decodes: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(cells, again) {
			t.Fatalf("round trip is not a fixed point:\nfirst:  %#v\nsecond: %#v", cells, again)
		}
	})
}
