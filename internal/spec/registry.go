package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Entry is one named experiment of the catalog: the documentation (title,
// description, the paper figure or table it reproduces) and the scenario
// cells that run it live in the same struct, so cmd/specdoc's generated
// EXPERIMENTS.md can never drift from what the executor runs.
type Entry struct {
	// Name is the -exp identifier ("fig3a").
	Name string
	// Title is the one-line headline shown by -list.
	Title string
	// Figure names the paper figure/table the entry reproduces
	// ("Fig. 3a", "Table 2").
	Figure string
	// Description explains the experiment: what is swept, what the paper
	// reports, what to look for in the output.
	Description string
	// Cells are the simulation cells the entry expands into, in execution
	// order. Analytic entries (closed-form model only) have none.
	Cells []ScenarioSpec
	// Refs are the entry's expected measurements — what the paper (or the
	// Appendix D model, or this repo's pinned baseline) reports for
	// individual cells, with tolerance bands. cmd/setchain-report compares
	// them against a paper-scale run artifact in RESULTS.md; every entry
	// with cells must carry at least one so the fidelity table covers the
	// whole catalog.
	Refs []Reference
}

// registry holds the catalog in registration order.
var registry []Entry

// Register adds an entry to the catalog. It panics on duplicate names or
// invalid cells — registration happens at init time from checked-in code,
// so any failure is a programming error the tests catch immediately.
func Register(e Entry) {
	if e.Name == "" {
		panic("spec: Register with empty name")
	}
	if _, ok := Get(e.Name); ok {
		panic(fmt.Sprintf("spec: duplicate registry entry %q", e.Name))
	}
	for i, c := range e.Cells {
		if err := c.WithDefaults().Validate(); err != nil {
			panic(fmt.Sprintf("spec: entry %q cell %d: %v", e.Name, i, err))
		}
	}
	if len(e.Cells) > 0 && len(e.Refs) == 0 {
		panic(fmt.Sprintf("spec: entry %q has cells but no reference values (RESULTS.md's fidelity table must cover every non-analytic entry)", e.Name))
	}
	for i := range e.Refs {
		e.Refs[i] = e.Refs[i].WithDefaults()
		if err := e.Refs[i].Validate(len(e.Cells)); err != nil {
			panic(fmt.Sprintf("spec: entry %q ref %d: %v", e.Name, i, err))
		}
	}
	registry = append(registry, e)
}

// Get returns the named entry.
func Get(name string) (Entry, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// MustGet returns the named entry or panics; for registry names fixed at
// compile time.
func MustGet(name string) Entry {
	e, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("spec: no registry entry %q", name))
	}
	return e
}

// All returns the catalog in registration order. The slice is shared;
// treat it as read-only.
func All() []Entry { return registry }

// Names returns every entry name in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// SuggestEntries returns registry names resembling the (unknown) name,
// closest first.
func SuggestEntries(name string) []string { return Suggest(name, Names()) }

// Decode reads a scenario document: either a single ScenarioSpec object
// or an array of them. Cells are returned defaulted and validated.
func Decode(r io.Reader) ([]ScenarioSpec, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var cells []ScenarioSpec
	var one ScenarioSpec
	dec := func(v any) error {
		d := json.NewDecoder(bytes.NewReader(blob))
		d.DisallowUnknownFields()
		return d.Decode(v)
	}
	if err := dec(&cells); err != nil {
		if errOne := dec(&one); errOne != nil {
			// Report the error for the form the document actually uses, so
			// an unknown-field typo in a single object surfaces as such
			// instead of as "cannot unmarshal object into []ScenarioSpec".
			if trimmed := bytes.TrimLeft(blob, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
				return nil, fmt.Errorf("scenario object: %w", errOne)
			}
			return nil, fmt.Errorf("want a scenario object or array: %w", err)
		}
		cells = []ScenarioSpec{one}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("empty scenario document")
	}
	for i := range cells {
		cells[i] = cells[i].WithDefaults()
		if err := cells[i].Validate(); err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
	}
	return cells, nil
}

// LoadFile reads a scenario document from disk (see Decode).
func LoadFile(path string) ([]ScenarioSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cells, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cells, nil
}

// Encode writes the cells as indented JSON — the inverse of Decode, used
// to export registry entries as editable starting points.
func Encode(w io.Writer, cells []ScenarioSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if len(cells) == 1 {
		return enc.Encode(cells[0])
	}
	return enc.Encode(cells)
}
