package spec

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fullSpec exercises every field of the schema.
func fullSpec() ScenarioSpec {
	return ScenarioSpec{
		Name:         "wan stress",
		Group:        "wan",
		Algorithm:    AlgHashchain,
		Collector:    500,
		Light:        true,
		Servers:      16,
		Rate:         25000,
		SendFor:      Duration(40 * time.Second),
		Horizon:      Duration(200 * time.Second),
		NetworkDelay: Duration(30 * time.Millisecond),
		Bandwidth:    12.5e6,
		Seed:         7,
		Scale:        0.5,
		Metrics:      MetricsStages,
		Crypto:       CryptoModeled,
		Workload: &WorkloadSpec{
			SizeMean: 438, SizeStdDev: 753.5, SizeMin: 96, SizeMax: 16384,
			Tick: Duration(5 * time.Millisecond),
		},
		Byzantine: &ByzantineSpec{
			Faulty:      2,
			Behaviors:   []string{BehaviorWithholdBatches, BehaviorCorruptProofs},
			InjectCount: 0,
		},
		Faults: &FaultSpec{Events: []FaultEventSpec{
			{At: Duration(5 * time.Second), Action: FaultCrash, Nodes: []int{15}},
			{At: Duration(8 * time.Second), Action: FaultPartition,
				Groups: [][]int{{0, 1, 2}, {3, 4}}},
			{At: Duration(12 * time.Second), Action: FaultHeal},
			{At: Duration(15 * time.Second), Action: FaultRestart, Nodes: []int{15}},
			{Action: FaultLink, From: []int{0}, To: []int{1}, Drop: 0.1,
				Duplicate: 0.05, Reorder: 0.2,
				ReorderDelay: Duration(10 * time.Millisecond),
				Delay:        Duration(40 * time.Millisecond)},
		}},
	}
}

func TestRoundTripIdentity(t *testing.T) {
	// encode → decode → validate is the identity on a defaulted spec.
	for _, sp := range []ScenarioSpec{
		fullSpec().WithDefaults(),
		vanilla().WithDefaults(),
		withRate(1250, hash(100)).WithDefaults(),
	} {
		if err := sp.Validate(); err == nil || sp.Rate > 0 {
			var buf bytes.Buffer
			if err := Encode(&buf, []ScenarioSpec{sp}); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(&buf)
			if err != nil {
				t.Fatalf("decode: %v\nspec: %+v", err, sp)
			}
			if len(got) != 1 || !reflect.DeepEqual(got[0], sp) {
				t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", sp, got[0])
			}
		}
	}
}

func TestDecodeSingleObjectAndArray(t *testing.T) {
	one := `{"algorithm": "hashchain", "rate": 1250}`
	cells, err := Decode(strings.NewReader(one))
	if err != nil {
		t.Fatalf("single object: %v", err)
	}
	if len(cells) != 1 || cells[0].Algorithm != AlgHashchain || cells[0].Servers != 10 {
		t.Fatalf("single object decoded wrong: %+v", cells)
	}
	arr := `[{"algorithm": "vanilla", "rate": 500}, {"algorithm": "compresschain", "rate": 500, "collector": 500}]`
	cells, err = Decode(strings.NewReader(arr))
	if err != nil {
		t.Fatalf("array: %v", err)
	}
	if len(cells) != 2 || cells[1].Collector != 500 {
		t.Fatalf("array decoded wrong: %+v", cells)
	}
}

func TestDecodeRejectsUnknownFieldsAndBadCells(t *testing.T) {
	cases := []string{
		`{"algorithm": "hashchain", "rate": 1250, "colector": 100}`,      // typo
		`{"algorithm": "blockchain", "rate": 1250}`,                      // unknown alg
		`{"algorithm": "hashchain"}`,                                     // no rate
		`[]`,                                                             // empty document
		`{"algorithm": "vanilla", "rate": 100, "light": true}`,           // vanilla light
		`{"algorithm": "hashchain", "rate": 1, "metrics": "everything"}`, // bad level
	}
	for _, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("Decode accepted %s", doc)
		}
	}
	// A typo in a single-object document must surface the unknown-field
	// error, not the generic object-into-array mismatch.
	_, err := Decode(strings.NewReader(`{"algorthm": "hashchain", "rate": 100}`))
	if err == nil || !strings.Contains(err.Error(), "algorthm") {
		t.Errorf("single-object typo error unhelpful: %v", err)
	}
}

func TestWorkloadDefaultsFillPartialSpecs(t *testing.T) {
	sp := ScenarioSpec{Algorithm: AlgHashchain, Rate: 100,
		Workload: &WorkloadSpec{SizeMean: 600}}.WithDefaults()
	w := sp.Workload
	if w.SizeMean != 600 || w.SizeStdDev != 753.5 || w.SizeMin != 96 ||
		w.SizeMax != 16384 || w.Tick.Std() != 10*time.Millisecond {
		t.Fatalf("partial workload not defaulted: %+v", w)
	}
	if sp.WithDefaults().Workload.SizeMean != 600 {
		t.Fatal("workload defaulting not idempotent")
	}
}

func TestDurationForms(t *testing.T) {
	var sp ScenarioSpec
	doc := `{"algorithm": "hashchain", "rate": 1, "send_for": 40, "network_delay": "30ms"}`
	if err := json.Unmarshal([]byte(doc), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.SendFor.Std() != 40*time.Second {
		t.Fatalf("numeric seconds: got %v", sp.SendFor.Std())
	}
	if sp.NetworkDelay.Std() != 30*time.Millisecond {
		t.Fatalf("duration string: got %v", sp.NetworkDelay.Std())
	}
	blob, err := json.Marshal(Duration(30 * time.Millisecond))
	if err != nil || string(blob) != `"30ms"` {
		t.Fatalf("marshal: %s, %v", blob, err)
	}
}

func TestWithDefaultsIdempotent(t *testing.T) {
	for _, sp := range []ScenarioSpec{
		{Algorithm: AlgHashchain, Rate: 1250},
		{Algorithm: AlgVanilla, Rate: 500},
		fullSpec(),
		{Algorithm: AlgCompresschain, Rate: 1,
			Byzantine: &ByzantineSpec{Faulty: 1, Behaviors: []string{BehaviorInjectInvalid}}},
	} {
		once := sp.WithDefaults()
		twice := once.WithDefaults()
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("WithDefaults not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
		}
		if err := once.Validate(); err != nil {
			t.Fatalf("defaulted spec invalid: %v", err)
		}
	}
	d := ScenarioSpec{Algorithm: AlgVanilla, Rate: 1}.WithDefaults()
	if d.Collector != 0 {
		t.Fatalf("Vanilla must keep collector 0, got %d", d.Collector)
	}
	d = ScenarioSpec{Algorithm: AlgHashchain, Rate: 1,
		Byzantine: &ByzantineSpec{Faulty: 1, Behaviors: []string{BehaviorInjectInvalid}}}.WithDefaults()
	if d.Byzantine.InjectCount != 3 {
		t.Fatalf("inject-invalid default count = %d, want 3", d.Byzantine.InjectCount)
	}
}

func TestValidateCatchesByzantineMistakes(t *testing.T) {
	base := func() ScenarioSpec { return withRate(100, hash(100)).WithDefaults() }
	sp := base()
	sp.Byzantine = &ByzantineSpec{Faulty: 10, Behaviors: []string{BehaviorSilent}}
	if err := sp.Validate(); err == nil {
		t.Error("faulty == servers accepted")
	}
	sp = base()
	sp.Byzantine = &ByzantineSpec{Faulty: 1, Behaviors: []string{"explode"}}
	if err := sp.Validate(); err == nil {
		t.Error("unknown behavior accepted")
	}
	sp = base()
	sp.Byzantine = &ByzantineSpec{Faulty: 1}
	if err := sp.Validate(); err == nil {
		t.Error("faulty without behaviors accepted")
	}
}

func TestLabels(t *testing.T) {
	cases := map[string]ScenarioSpec{
		"Vanilla":                 vanilla(),
		"Compresschain c=100":     compress(100),
		"Hashchain c=500":         hash(500),
		"Hashchain Light c=500":   light(hash(500)),
		"Compresschain Light c=5": light(compress(5)),
	}
	for want, sp := range cases {
		if got := sp.Label(); got != want {
			t.Errorf("Label() = %q, want %q", got, want)
		}
	}
	if got := named("custom", hash(100)).Label(); got != "custom" {
		t.Errorf("named Label() = %q", got)
	}
}

func TestSetAndParseAxis(t *testing.T) {
	sp := withRate(100, hash(100))
	for _, kv := range [][2]string{
		{"servers", "16"}, {"delay", "30ms"}, {"crypto", "full"},
		{"behaviors", "withhold-batches+corrupt-proofs"}, {"faulty", "2"},
		{"rate", "5000"}, {"light", "true"}, {"send_for", "40"},
	} {
		if err := Set(&sp, kv[0], kv[1]); err != nil {
			t.Fatalf("Set(%s=%s): %v", kv[0], kv[1], err)
		}
	}
	if sp.Servers != 16 || sp.NetworkDelay.Std() != 30*time.Millisecond ||
		sp.Crypto != CryptoFull || sp.Byzantine.Faulty != 2 ||
		len(sp.Byzantine.Behaviors) != 2 || sp.Rate != 5000 || !sp.Light ||
		sp.SendFor.Std() != 40*time.Second {
		t.Fatalf("Set results wrong: %+v byz=%+v", sp, sp.Byzantine)
	}
	if err := Set(&sp, "warp", "9"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseAxis("servers=4,8,16"); err != nil {
		t.Fatalf("ParseAxis: %v", err)
	}
	for _, bad := range []string{"servers", "servers=", "=4", "servers=4,,8", "servers=x"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

func TestExpandCrossProduct(t *testing.T) {
	ax1, _ := ParseAxis("servers=4,8")
	ax2, _ := ParseAxis("delay=0s,30ms,100ms")
	cells, err := Expand([]ScenarioSpec{withRate(100, hash(100))}, ax1, ax2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("len = %d, want 6", len(cells))
	}
	// Last axis varies fastest; names record the varied values.
	if cells[0].Servers != 4 || cells[1].Servers != 4 || cells[2].Servers != 4 ||
		cells[3].Servers != 8 {
		t.Fatalf("outer axis order wrong: %+v", cells)
	}
	if cells[1].NetworkDelay.Std() != 30*time.Millisecond {
		t.Fatalf("inner axis order wrong: %+v", cells[1])
	}
	if !strings.Contains(cells[5].Name, "servers=8") || !strings.Contains(cells[5].Name, "delay=100ms") {
		t.Fatalf("name not tagged: %q", cells[5].Name)
	}
	// A single-valued axis overrides without tagging names.
	one, _ := ParseAxis("crypto=full")
	cells, err = Expand([]ScenarioSpec{named("x", hash(100))}, one)
	if err != nil || len(cells) != 1 || cells[0].Crypto != CryptoFull || cells[0].Name != "x" {
		t.Fatalf("single-value axis: %+v, %v", cells, err)
	}
}

func TestExpandCopiesByzantine(t *testing.T) {
	base := withRate(100, hash(100))
	base.Byzantine = &ByzantineSpec{Faulty: 1, Behaviors: []string{BehaviorSilent}}
	ax, _ := ParseAxis("faulty=1,2")
	cells, err := Expand([]ScenarioSpec{base}, ax)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Byzantine.Faulty != 1 || cells[1].Byzantine.Faulty != 2 {
		t.Fatalf("byzantine aliasing across cells: %+v / %+v", cells[0].Byzantine, cells[1].Byzantine)
	}
	if base.Byzantine.Faulty != 1 {
		t.Fatalf("base mutated: %+v", base.Byzantine)
	}
}

func TestSuggest(t *testing.T) {
	vocab := []string{"fig1", "fig2left", "fig3a", "fig3b", "fig4", "table2"}
	if got := Suggest("fig3", vocab); len(got) < 2 || got[0] != "fig3a" {
		t.Fatalf("Suggest(fig3) = %v", got)
	}
	if got := Suggest("figg4", vocab); len(got) == 0 || got[0] != "fig4" {
		t.Fatalf("Suggest(figg4) = %v", got)
	}
	if got := Suggest("tabel2", vocab); len(got) == 0 || got[0] != "table2" {
		t.Fatalf("Suggest(tabel2) = %v", got)
	}
	if got := Suggest("zzzzzzz", vocab); len(got) != 0 {
		t.Fatalf("Suggest(zzzzzzz) = %v", got)
	}
}
