// Package spec makes experiment scenarios data instead of code: a
// serializable ScenarioSpec captures everything a harness run needs —
// algorithm variant, workload shape and rate, deployment size, network
// latency/bandwidth, Byzantine faults, crypto fidelity and metric
// granularity — with JSON encode/decode, validation and defaulting, plus
// the named-experiment registry that the study functions in
// internal/harness expand and cmd/specdoc renders into EXPERIMENTS.md.
// See DESIGN.md §7 (declarative scenarios and the experiment registry).
//
// The package is pure data: it imports nothing above the standard library,
// so cmd/specdoc can render the catalog without linking the simulator, and
// internal/harness (not spec) owns the mapping onto core/metrics types.
package spec

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("50s", "30ms") and unmarshals from either that form or a bare JSON
// number of seconds.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "350ms"/"50s"-style strings or numeric seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return err
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Algorithm names (the canonical strings of ScenarioSpec.Algorithm).
const (
	AlgVanilla       = "vanilla"
	AlgCompresschain = "compresschain"
	AlgHashchain     = "hashchain"
)

// Metric granularities (ScenarioSpec.Metrics).
const (
	MetricsThroughput = "throughput" // counters and time buckets only
	MetricsStages     = "stages"     // + per-element latency stages (Fig. 4)
)

// Crypto fidelity modes (ScenarioSpec.Crypto); see DESIGN.md §1.
const (
	CryptoModeled = "modeled" // modeled bytes, CPU cost charged to sim clock
	CryptoFull    = "full"    // real ed25519/SHA-512/Deflate over real payloads
)

// Transport names (ScenarioSpec.Transport); see DESIGN.md §13.
const (
	TransportBroadcast = "broadcast" // direct per-validator sends (the default)
	TransportMesh      = "mesh"      // bounded-fanout gossip overlay
)

// Byzantine behavior names (ByzantineSpec.Behaviors); each maps onto one
// preset of internal/byzantine.
const (
	BehaviorSilent          = "silent"           // network-down (crash-like)
	BehaviorInjectInvalid   = "inject-invalid"   // bogus elements in every batch
	BehaviorWithholdBatches = "withhold-batches" // sign hashes, never serve data
	BehaviorWrongBatches    = "wrong-batches"    // serve corrupted batch contents
	BehaviorCorruptProofs   = "corrupt-proofs"   // sign garbage epoch hashes
	BehaviorForgeSnapshot   = "forge-snapshot"   // corrupt served state-sync snapshots
)

// Behaviors lists every valid Byzantine behavior name.
var Behaviors = []string{
	BehaviorSilent, BehaviorInjectInvalid, BehaviorWithholdBatches,
	BehaviorWrongBatches, BehaviorCorruptProofs, BehaviorForgeSnapshot,
}

// DefaultInjectCount is the bogus-element count "inject-invalid" uses
// when a spec leaves inject_count unset; the harness applies the same
// default to hand-built scenarios.
const DefaultInjectCount = 3

// WorkloadSpec shapes the element stream. The zero value is the paper's
// Arbitrum distribution at the default 10 ms injection tick; WithDefaults
// fills unset fields with those same values, so a partially-specified
// workload keeps the paper's parameters for whatever it leaves out.
type WorkloadSpec struct {
	// SizeMean / SizeStdDev parameterize the log-normal element-size model
	// (paper: mean 438 B, σ 753.5).
	SizeMean   float64 `json:"size_mean,omitempty"`
	SizeStdDev float64 `json:"size_stddev,omitempty"`
	// SizeMin / SizeMax clamp sampled sizes (defaults 96 / 16384).
	SizeMin int `json:"size_min,omitempty"`
	SizeMax int `json:"size_max,omitempty"`
	// Tick batches injection bookkeeping (default 10ms).
	Tick Duration `json:"tick,omitempty"`
}

// Admission policy names (AdmissionSpec.Policy); see DESIGN.md §14.
const (
	AdmissionReject = "reject" // refuse new elements while saturated
	AdmissionDelay  = "delay"  // park their transactions, bounded queue + deadline
)

// RatePhaseSpec is one piece of an open-system rate envelope: from From
// onward the base rate is multiplied by Mult (until the next phase).
type RatePhaseSpec struct {
	From Duration `json:"from"`
	Mult float64  `json:"mult"`
}

// OpenSpec configures open-system workload dynamics (DESIGN.md §14):
// Zipf hot-key skew over element sources, session churn, and bursty or
// diurnal rate envelopes. Nil keeps the closed system; the zero value of
// each field disables that dynamic, so pre-open specs and artifacts
// round-trip unchanged.
type OpenSpec struct {
	// Zipf is the source-skew exponent α: each arrival draws its source
	// client with P(rank k) ∝ 1/(k+1)^α. 0 = uniform sources.
	Zipf float64 `json:"zipf,omitempty"`
	// ChurnOn is the mean in-session time; > 0 cycles every client
	// through exponential on/off sessions (arrivals for departed clients
	// are dropped — the load disappears with the client).
	ChurnOn Duration `json:"churn_on,omitempty"`
	// ChurnOff is the mean departed time (defaults to ChurnOn).
	ChurnOff Duration `json:"churn_off,omitempty"`
	// Envelope shapes the aggregate rate over the send window; phases
	// must be in ascending From order.
	Envelope []RatePhaseSpec `json:"envelope,omitempty"`
}

// AdmissionSpec enables mempool admission control (DESIGN.md §14): when
// the pool crosses Watermark × its caps, new elements are refused
// ("reject") or their transactions parked in a bounded deferred queue
// ("delay"). Nil keeps admission off. MaxTxs/MaxBytes override the
// paper's pool caps, which are far too large to ever saturate — an
// admission experiment picks caps the workload can actually reach.
type AdmissionSpec struct {
	// Policy is "reject" or "delay".
	Policy string `json:"policy"`
	// Watermark is the saturation threshold as a fraction of the pool
	// caps (default 0.9); the gap to 1.0 is headroom for transactions
	// carrying already-admitted elements.
	Watermark float64 `json:"watermark,omitempty"`
	// MaxTxs / MaxBytes override the pool caps (0 keeps the paper's
	// 10,000,000 txs / 2 GB).
	MaxTxs   int `json:"max_txs,omitempty"`
	MaxBytes int `json:"max_bytes,omitempty"`
	// MaxDelay bounds a deferred transaction's wait (delay policy;
	// default 5s).
	MaxDelay Duration `json:"max_delay,omitempty"`
	// MaxDeferred caps the deferred queue (delay policy; default 1024).
	MaxDeferred int `json:"max_deferred,omitempty"`
}

// ByzantineSpec configures faulty servers. The highest-indexed Faulty
// servers of the deployment run every listed behavior (server 0, the
// metrics observer, always stays correct).
type ByzantineSpec struct {
	// Faulty is how many servers misbehave.
	Faulty int `json:"faulty"`
	// Behaviors lists the preset fault behaviors (see Behaviors).
	Behaviors []string `json:"behaviors"`
	// InjectCount is the bogus elements added per batch when Behaviors
	// includes "inject-invalid" (default 3).
	InjectCount int `json:"inject_count,omitempty"`
}

// ScenarioSpec is one experiment cell as data: a full description of an
// algorithm variant under a workload and deployment configuration. The
// zero values of optional fields select the paper's defaults (10 servers,
// 50 s send window, LAN network, modeled crypto, throughput metrics).
type ScenarioSpec struct {
	// Name labels the cell in output; empty derives a label from the
	// configuration at run time.
	Name string `json:"name,omitempty"`
	// Group buckets cells of one experiment (a Fig. 1 panel, a Fig. 3
	// bar group); purely presentational.
	Group string `json:"group,omitempty"`
	// Algorithm is "vanilla", "compresschain" or "hashchain".
	Algorithm string `json:"algorithm"`
	// Collector is the paper's collector size c (ignored by Vanilla;
	// default 100 otherwise).
	Collector int `json:"collector,omitempty"`
	// Light disables the expensive pipeline half (Fig. 2 ablations).
	Light bool `json:"light,omitempty"`
	// Servers is the deployment size (paper: 4, 7, 10; default 10). In a
	// sharded run this is the size of EACH shard's consensus group.
	Servers int `json:"servers,omitempty"`
	// Shards splits the element space across this many independent
	// Setchain instances inside one shared network, routed by element-id
	// digest (internal/shard; beyond the paper). 0 or 1 runs the classic
	// single instance; the zero value stays unset so pre-sharding specs
	// and artifacts round-trip unchanged.
	Shards int `json:"shards,omitempty"`
	// IntraWorkers runs the scenario's own event population on this many
	// concurrent workers via lookahead-bounded partitioned execution (one
	// partition per server node, or per shard when Shards > 1). Purely an
	// executor knob: results are byte-identical to the sequential schedule,
	// only wall-clock time may change. 0 or 1 is the classic single-queue
	// path; the zero value stays unset so existing specs and artifacts
	// round-trip unchanged.
	IntraWorkers int `json:"intra_workers,omitempty"`
	// Transport selects how consensus and mempool traffic fans out:
	// "broadcast" (direct per-validator sends, the paper's model) or
	// "mesh" (bounded-fanout gossip overlay with digest-keyed dedup,
	// DESIGN.md §13). The zero value means broadcast and stays unset so
	// pre-mesh specs and artifacts round-trip unchanged.
	Transport string `json:"transport,omitempty"`
	// Fanout is the mesh overlay's target node degree (default 8). Only
	// meaningful — and only defaulted — when Transport is "mesh".
	Fanout int `json:"fanout,omitempty"`
	// Rate is the aggregate sending rate in elements/second.
	Rate float64 `json:"rate"`
	// SendFor is how long clients keep adding (default 50s).
	SendFor Duration `json:"send_for,omitempty"`
	// Horizon is the total virtual time simulated; 0 derives
	// SendFor + 100s at run time (and is never scaled — explicit horizons
	// shrink with the run-time scale factor).
	Horizon Duration `json:"horizon,omitempty"`
	// NetworkDelay is the paper's network_delay: artificial latency added
	// to every link (0, 30ms, 100ms in the evaluation).
	NetworkDelay Duration `json:"network_delay,omitempty"`
	// Bandwidth overrides per-node egress bandwidth in bytes/second;
	// 0 keeps the default 1 Gbit/s LAN.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Scale multiplies Rate and SendFor (quick passes; default 1). The
	// harness multiplies it further by its run-time scale argument.
	Scale float64 `json:"scale,omitempty"`
	// Metrics is "throughput" (default) or "stages".
	Metrics string `json:"metrics,omitempty"`
	// Crypto is "modeled" (default) or "full".
	Crypto string `json:"crypto,omitempty"`
	// Workload shapes the element stream; nil uses the paper's model.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Open adds open-system dynamics — Zipf source skew, session churn,
	// rate envelopes; nil keeps the closed system (and stays unset so
	// pre-open specs and artifacts round-trip unchanged).
	Open *OpenSpec `json:"open,omitempty"`
	// Admission enables mempool admission control; nil keeps it off
	// (zero-stays-unset, same round-trip contract as Open).
	Admission *AdmissionSpec `json:"admission,omitempty"`
	// Byzantine configures faulty servers; nil means all correct.
	Byzantine *ByzantineSpec `json:"byzantine,omitempty"`
	// Faults schedules network fault injection (crash/restart, partition/
	// heal, link loss); nil means a fault-free network.
	Faults *FaultSpec `json:"faults,omitempty"`
	// CheckpointInterval makes every server seal a pruning checkpoint —
	// epoch number, cumulative element count, chained digest — each time
	// this many further epochs settle (internal/checkpoint, DESIGN.md §11).
	// 0 disables checkpointing; runs without it are byte-identical to
	// pre-checkpoint builds.
	CheckpointInterval int `json:"checkpoint_interval,omitempty"`
	// Prune drops settled epoch history, ledger blocks and mempool
	// tombstones below each sealed checkpoint, bounding memory on long
	// runs; requires CheckpointInterval > 0. Restarted servers then
	// recover by state-syncing a peer's latest checkpoint snapshot and
	// replaying only the suffix.
	Prune bool `json:"prune,omitempty"`
	// HeapCeilingMB asserts the process's live heap (after a forced GC at
	// the end of the run, deployment still reachable) stays at or under
	// this many MiB — the soak family's bounded-memory check. 0 disables
	// the measurement.
	HeapCeilingMB int `json:"heap_ceiling_mb,omitempty"`
	// SyncChunkBytes sets the chunk size of the state-sync transfer
	// protocol (consensus.Params.SyncChunkBytes): snapshots stream as
	// fixed-size verified chunks instead of one blob, each charged to the
	// modeled network. 0 keeps the 64 KiB default.
	SyncChunkBytes int `json:"sync_chunk_bytes,omitempty"`
}

// WithDefaults fills the paper's defaults into unset fields. It is
// idempotent, and its choices mirror harness.Scenario's own defaulting so
// a defaulted spec and a sparse one produce identical runs.
func (s ScenarioSpec) WithDefaults() ScenarioSpec {
	if s.Servers == 0 {
		s.Servers = 10
	}
	if s.SendFor == 0 {
		s.SendFor = Duration(50 * time.Second)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Metrics == "" {
		s.Metrics = MetricsThroughput
	}
	if s.Crypto == "" {
		s.Crypto = CryptoModeled
	}
	if s.Collector == 0 && s.Algorithm != AlgVanilla {
		s.Collector = 100
	}
	if s.Transport == TransportMesh && s.Fanout == 0 {
		s.Fanout = 8
	}
	if s.Workload != nil {
		w := *s.Workload
		if w.SizeMean == 0 {
			w.SizeMean = 438
		}
		if w.SizeStdDev == 0 {
			w.SizeStdDev = 753.5
		}
		if w.SizeMin == 0 {
			w.SizeMin = 96
		}
		if w.SizeMax == 0 {
			w.SizeMax = 16384
		}
		if w.Tick == 0 {
			w.Tick = Duration(10 * time.Millisecond)
		}
		s.Workload = &w
	}
	if s.Open != nil {
		o := *s.Open
		if o.ChurnOn > 0 && o.ChurnOff == 0 {
			o.ChurnOff = o.ChurnOn
		}
		o.Envelope = append([]RatePhaseSpec(nil), o.Envelope...)
		s.Open = &o
	}
	if s.Admission != nil {
		a := *s.Admission
		if a.Watermark == 0 {
			a.Watermark = 0.9
		}
		if a.Policy == AdmissionDelay {
			if a.MaxDelay == 0 {
				a.MaxDelay = Duration(5 * time.Second)
			}
			if a.MaxDeferred == 0 {
				a.MaxDeferred = 1024
			}
		}
		s.Admission = &a
	}
	if s.Byzantine != nil {
		b := *s.Byzantine
		if b.InjectCount == 0 && hasBehavior(b.Behaviors, BehaviorInjectInvalid) {
			b.InjectCount = DefaultInjectCount
		}
		s.Byzantine = &b
	}
	if s.Faults != nil {
		s.Faults = s.Faults.withDefaults()
	}
	return s
}

// orBroadcast names the transport an unset field denotes, for messages.
func orBroadcast(t string) string {
	if t == "" {
		return TransportBroadcast
	}
	return t
}

func hasBehavior(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// Validate reports the first problem with the spec, or nil. Call after
// WithDefaults; a defaulted registry cell always validates.
func (s ScenarioSpec) Validate() error {
	switch s.Algorithm {
	case AlgVanilla, AlgCompresschain, AlgHashchain:
	case "":
		return fmt.Errorf("algorithm missing (want %q, %q or %q)",
			AlgVanilla, AlgCompresschain, AlgHashchain)
	default:
		return fmt.Errorf("unknown algorithm %q (want %q, %q or %q)",
			s.Algorithm, AlgVanilla, AlgCompresschain, AlgHashchain)
	}
	if s.Algorithm == AlgVanilla && s.Light {
		return fmt.Errorf("light has no Vanilla variant (the ablation removes batch validation, which Vanilla does not have)")
	}
	if s.Rate <= 0 {
		return fmt.Errorf("rate must be positive, got %g", s.Rate)
	}
	if s.Servers < 1 {
		return fmt.Errorf("servers must be >= 1, got %d", s.Servers)
	}
	if s.Shards < 0 {
		return fmt.Errorf("shards must be >= 0, got %d", s.Shards)
	}
	if s.Shards > 64 {
		return fmt.Errorf("shards must be <= 64, got %d (each shard is a full consensus group)", s.Shards)
	}
	if s.Shards > 1 && s.Metrics == MetricsStages {
		return fmt.Errorf("stages metrics are per-instance and are not aggregated across shards yet (use %q)",
			MetricsThroughput)
	}
	if s.IntraWorkers < 0 {
		return fmt.Errorf("intra_workers must be >= 0, got %d", s.IntraWorkers)
	}
	if s.IntraWorkers > 256 {
		return fmt.Errorf("intra_workers must be <= 256, got %d", s.IntraWorkers)
	}
	switch s.Transport {
	case "", TransportBroadcast, TransportMesh:
	default:
		return fmt.Errorf("unknown transport %q (want %q or %q)",
			s.Transport, TransportBroadcast, TransportMesh)
	}
	if s.Transport == TransportMesh && s.Fanout < 2 {
		return fmt.Errorf("mesh transport needs fanout >= 2 for a connected overlay, got %d", s.Fanout)
	}
	if s.Transport != TransportMesh && s.Fanout != 0 {
		return fmt.Errorf("fanout is a mesh parameter; transport is %q", orBroadcast(s.Transport))
	}
	if s.Collector < 0 {
		return fmt.Errorf("collector must be >= 0, got %d", s.Collector)
	}
	if s.SendFor < 0 || s.Horizon < 0 || s.NetworkDelay < 0 {
		return fmt.Errorf("durations must be >= 0")
	}
	if s.Horizon != 0 && s.Horizon < s.SendFor {
		return fmt.Errorf("horizon %v shorter than send window %v", s.Horizon.Std(), s.SendFor.Std())
	}
	if s.Bandwidth < 0 {
		return fmt.Errorf("bandwidth must be >= 0, got %g", s.Bandwidth)
	}
	if s.SyncChunkBytes < 0 {
		return fmt.Errorf("sync_chunk_bytes must be >= 0, got %d", s.SyncChunkBytes)
	}
	if s.Scale < 0 {
		return fmt.Errorf("scale must be >= 0, got %g", s.Scale)
	}
	switch s.Metrics {
	case "", MetricsThroughput, MetricsStages:
	default:
		return fmt.Errorf("unknown metrics level %q (want %q or %q)",
			s.Metrics, MetricsThroughput, MetricsStages)
	}
	switch s.Crypto {
	case "", CryptoModeled, CryptoFull:
	default:
		return fmt.Errorf("unknown crypto mode %q (want %q or %q)",
			s.Crypto, CryptoModeled, CryptoFull)
	}
	if w := s.Workload; w != nil {
		if w.SizeMean < 0 || w.SizeStdDev < 0 || w.SizeMin < 0 || w.SizeMax < 0 || w.Tick < 0 {
			return fmt.Errorf("workload parameters must be >= 0")
		}
		if w.SizeMax != 0 && w.SizeMin > w.SizeMax {
			return fmt.Errorf("workload size_min %d > size_max %d", w.SizeMin, w.SizeMax)
		}
	}
	if o := s.Open; o != nil {
		if o.Zipf < 0 || o.Zipf > 8 {
			return fmt.Errorf("open zipf must be in [0, 8], got %g", o.Zipf)
		}
		if o.ChurnOn < 0 || o.ChurnOff < 0 {
			return fmt.Errorf("open churn durations must be >= 0")
		}
		if o.ChurnOff > 0 && o.ChurnOn == 0 {
			return fmt.Errorf("open churn_off without churn_on (no sessions to leave)")
		}
		for i, p := range o.Envelope {
			if p.From < 0 {
				return fmt.Errorf("open envelope phase %d: from must be >= 0", i)
			}
			if p.Mult < 0 {
				return fmt.Errorf("open envelope phase %d: mult must be >= 0, got %g", i, p.Mult)
			}
			if i > 0 && p.From <= o.Envelope[i-1].From {
				return fmt.Errorf("open envelope phases must have strictly ascending from times")
			}
		}
	}
	if a := s.Admission; a != nil {
		switch a.Policy {
		case AdmissionReject, AdmissionDelay:
		case "":
			return fmt.Errorf("admission policy missing (want %q or %q)", AdmissionReject, AdmissionDelay)
		default:
			return fmt.Errorf("unknown admission policy %q (want %q or %q)",
				a.Policy, AdmissionReject, AdmissionDelay)
		}
		if a.Watermark < 0 || a.Watermark > 1 {
			return fmt.Errorf("admission watermark must be in (0, 1], got %g", a.Watermark)
		}
		if a.MaxTxs < 0 || a.MaxBytes < 0 || a.MaxDeferred < 0 {
			return fmt.Errorf("admission caps must be >= 0")
		}
		if a.MaxDelay < 0 {
			return fmt.Errorf("admission max_delay must be >= 0")
		}
	}
	if b := s.Byzantine; b != nil {
		if b.Faulty < 0 {
			return fmt.Errorf("byzantine faulty must be >= 0, got %d", b.Faulty)
		}
		if b.Faulty >= s.Servers {
			return fmt.Errorf("byzantine faulty %d leaves no correct server of %d", b.Faulty, s.Servers)
		}
		if b.Faulty > 0 && len(b.Behaviors) == 0 {
			return fmt.Errorf("byzantine faulty %d but no behaviors listed", b.Faulty)
		}
		for _, name := range b.Behaviors {
			if !hasBehavior(Behaviors, name) {
				return fmt.Errorf("unknown byzantine behavior %q (want one of %s)",
					name, strings.Join(Behaviors, ", "))
			}
		}
		if b.InjectCount < 0 {
			return fmt.Errorf("byzantine inject_count must be >= 0, got %d", b.InjectCount)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.validate(s.Servers, s.Shards); err != nil {
			return err
		}
	}
	if s.CheckpointInterval < 0 {
		return fmt.Errorf("checkpoint_interval must be >= 0, got %d", s.CheckpointInterval)
	}
	if s.Prune && s.CheckpointInterval == 0 {
		return fmt.Errorf("prune requires checkpoint_interval > 0 (pruning drops history below sealed checkpoints)")
	}
	if s.HeapCeilingMB < 0 {
		return fmt.Errorf("heap_ceiling_mb must be >= 0, got %d", s.HeapCeilingMB)
	}
	return nil
}

// TotalServers returns the deployment's node count across all shards:
// Servers per shard times the shard count (0 or 1 shards = one instance).
// Fault-plan node ids live in this global space.
func (s ScenarioSpec) TotalServers() int {
	if s.Shards > 1 {
		return s.Servers * s.Shards
	}
	return s.Servers
}

// Label renders the paper's legend label for the variant ("Hashchain
// c=500", "Vanilla", "Compresschain Light c=100"), or Name when set.
func (s ScenarioSpec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.VariantLabel()
}

// VariantLabel renders the algorithm-variant part of the label alone,
// ignoring Name.
func (s ScenarioSpec) VariantLabel() string {
	var b strings.Builder
	switch s.Algorithm {
	case AlgVanilla:
		b.WriteString("Vanilla")
	case AlgCompresschain:
		b.WriteString("Compresschain")
	case AlgHashchain:
		b.WriteString("Hashchain")
	default:
		b.WriteString(s.Algorithm)
	}
	if s.Light {
		b.WriteString(" Light")
	}
	if s.Algorithm != AlgVanilla && s.Collector != 0 {
		fmt.Fprintf(&b, " c=%d", s.Collector)
	}
	return b.String()
}
