package spec

import (
	"strings"
	"testing"
	"time"
)

func shardedSpec(shards int) ScenarioSpec {
	return ScenarioSpec{
		Algorithm: AlgCompresschain, Servers: 4, Shards: shards, Rate: 1000,
	}.WithDefaults()
}

func TestShardsValidation(t *testing.T) {
	if err := shardedSpec(4).Validate(); err != nil {
		t.Fatalf("valid sharded spec rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*ScenarioSpec)
		want string
	}{
		{"negative", func(s *ScenarioSpec) { s.Shards = -1 }, "shards must be >= 0"},
		{"huge", func(s *ScenarioSpec) { s.Shards = 65 }, "shards must be <= 64"},
		{"stages", func(s *ScenarioSpec) { s.Metrics = MetricsStages }, "not aggregated across shards"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := shardedSpec(4)
			tc.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// Fault-plan node ids live in the global Servers x Shards space, and
// every shard's first server is a protected observer.
func TestShardedFaultValidation(t *testing.T) {
	withFaults := func(shards int, ev FaultEventSpec) ScenarioSpec {
		s := shardedSpec(shards)
		s.Faults = &FaultSpec{Events: []FaultEventSpec{ev}}
		return s.WithDefaults()
	}
	// Node 7 exists only in the sharded world: 2 shards x 4 servers.
	ev := FaultEventSpec{At: Duration(time.Second), Action: FaultCrash, Nodes: []int{7}}
	if err := withFaults(2, ev).Validate(); err != nil {
		t.Fatalf("global node id rejected: %v", err)
	}
	if err := withFaults(1, ev).Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range node accepted: %v", err)
	}
	// Node 4 is shard 1's observer in a 2x4 world.
	obs := FaultEventSpec{At: Duration(time.Second), Action: FaultCrash, Nodes: []int{4}}
	if err := withFaults(2, obs).Validate(); err == nil || !strings.Contains(err.Error(), "observer") {
		t.Fatalf("crashing shard 1's observer accepted: %v", err)
	}
}

func TestShardsMatrixAxis(t *testing.T) {
	ax, err := ParseAxis("shards=1,2,4,8")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Expand([]ScenarioSpec{{Algorithm: AlgCompresschain, Rate: 1000}}, ax)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells", len(cells))
	}
	for i, want := range []int{1, 2, 4, 8} {
		if cells[i].Shards != want {
			t.Errorf("cell %d has %d shards, want %d", i, cells[i].Shards, want)
		}
		if !strings.Contains(cells[i].Name, "shards=") {
			t.Errorf("cell %d name %q lacks the axis tag", i, cells[i].Name)
		}
	}
}

// The zero value stays unset through defaulting, so every pre-sharding
// spec (and the committed artifacts embedding them) round-trips
// byte-identically.
func TestShardsZeroValueStable(t *testing.T) {
	s := ScenarioSpec{Algorithm: AlgHashchain, Rate: 100}.WithDefaults()
	if s.Shards != 0 {
		t.Fatalf("WithDefaults set Shards=%d; it must stay 0", s.Shards)
	}
	if s.TotalServers() != s.Servers {
		t.Fatalf("TotalServers %d != Servers %d for the single-instance world",
			s.TotalServers(), s.Servers)
	}
	sharded := shardedSpec(4)
	if sharded.TotalServers() != 16 {
		t.Fatalf("TotalServers = %d, want 16", sharded.TotalServers())
	}
}
