package spec

import (
	"strings"
	"testing"
)

func TestReferenceValidate(t *testing.T) {
	good := Reference{Cell: 0, Metric: MetricAvgTput, Value: 100, Tolerance: 0.25}
	if err := good.WithDefaults().Validate(1); err != nil {
		t.Fatalf("valid reference rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Reference)
		want string
	}{
		{"cell out of range", func(r *Reference) { r.Cell = 1 }, "out of range"},
		{"negative cell", func(r *Reference) { r.Cell = -1 }, "out of range"},
		{"unknown metric", func(r *Reference) { r.Metric = "tput" }, "unknown reference metric"},
		{"zero value", func(r *Reference) { r.Value = 0 }, "positive finite"},
		{"zero tolerance", func(r *Reference) { r.Tolerance = 0 }, "tolerance"},
		{"huge tolerance", func(r *Reference) { r.Tolerance = 10 }, "tolerance"},
		{"bad compare", func(r *Reference) { r.Compare = "min" }, "compare mode"},
		{"bad source", func(r *Reference) { r.Source = "folklore" }, "unknown reference source"},
	}
	for _, tc := range cases {
		r := good
		tc.mut(&r)
		err := r.WithDefaults().Validate(1)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestReferenceDeltaAndPass(t *testing.T) {
	band := Reference{Cell: 0, Metric: MetricAvgTput, Value: 100, Tolerance: 0.25}.WithDefaults()
	if d := band.Delta(125); d != 0.25 {
		t.Fatalf("Delta(125) = %g, want 0.25", d)
	}
	if !band.Pass(125) || !band.Pass(75) {
		t.Fatal("band edges should pass")
	}
	if band.Pass(126) || band.Pass(74) {
		t.Fatal("outside the band should not pass")
	}

	max := Reference{Cell: 0, Metric: MetricP99CommitS, Value: 4, Tolerance: 0.1,
		Compare: CompareMax}.WithDefaults()
	if !max.Pass(0.5) {
		t.Fatal("max-bound: far below the bound should pass")
	}
	if !max.Pass(4.3) {
		t.Fatal("max-bound: inside the headroom should pass")
	}
	if max.Pass(4.5) {
		t.Fatal("max-bound: above value*(1+tol) should not pass")
	}
}

// Every non-analytic registry entry must carry at least one reference
// (Register enforces it; this pins the property at the catalog level) and
// every reference must target a metric the entry's cells can produce:
// latency-stage metrics need Metrics="stages" on the referenced cell.
func TestRegistryReferencesCoverCatalog(t *testing.T) {
	for _, e := range All() {
		if len(e.Cells) == 0 {
			if len(e.Refs) != 0 {
				t.Errorf("analytic entry %q has references but no cells to measure", e.Name)
			}
			continue
		}
		if len(e.Refs) == 0 {
			t.Errorf("entry %q has cells but no reference values", e.Name)
		}
		for i, r := range e.Refs {
			if err := r.Validate(len(e.Cells)); err != nil {
				t.Errorf("entry %q ref %d: %v", e.Name, i, err)
				continue
			}
			if r.Metric == MetricP50CommitS || r.Metric == MetricP99CommitS {
				if c := e.Cells[r.Cell].WithDefaults(); c.Metrics != MetricsStages {
					t.Errorf("entry %q ref %d targets %s but cell %d runs metrics=%q",
						e.Name, i, r.Metric, r.Cell, c.Metrics)
				}
			}
		}
	}
}
