package spec

import (
	"strings"
	"testing"
	"time"
)

func openSpec() ScenarioSpec {
	return ScenarioSpec{
		Algorithm: AlgHashchain, Collector: 100, Rate: 1000,
		Open: &OpenSpec{
			Zipf:    1.1,
			ChurnOn: Duration(10 * time.Second),
			Envelope: []RatePhaseSpec{
				{From: 0, Mult: 0.5},
				{From: Duration(10 * time.Second), Mult: 2},
			},
		},
		Admission: &AdmissionSpec{Policy: AdmissionReject, MaxTxs: 400},
	}
}

func TestOpenAdmissionDefaults(t *testing.T) {
	s := openSpec().WithDefaults()
	if s.Open.ChurnOff != s.Open.ChurnOn {
		t.Fatalf("ChurnOff not defaulted to ChurnOn: %v", s.Open.ChurnOff)
	}
	if s.Admission.Watermark != 0.9 {
		t.Fatalf("Watermark not defaulted: %g", s.Admission.Watermark)
	}
	// Reject policy has no deferral: the delay knobs stay zero.
	if s.Admission.MaxDelay != 0 || s.Admission.MaxDeferred != 0 {
		t.Fatalf("reject policy grew delay knobs: %+v", s.Admission)
	}
	d := ScenarioSpec{Algorithm: AlgHashchain, Collector: 100, Rate: 100,
		Admission: &AdmissionSpec{Policy: AdmissionDelay}}.WithDefaults()
	if d.Admission.MaxDelay != Duration(5*time.Second) || d.Admission.MaxDeferred != 1024 {
		t.Fatalf("delay defaults = %+v", d.Admission)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted open spec invalid: %v", err)
	}
}

// Zero open/admission blocks stay unset through defaulting, so pre-open
// artifacts round-trip byte-identically (the shards_test contract,
// extended to this PR's fields).
func TestOpenZeroValueStable(t *testing.T) {
	s := ScenarioSpec{Algorithm: AlgVanilla, Rate: 500}.WithDefaults()
	if s.Open != nil || s.Admission != nil {
		t.Fatalf("closed-system spec grew open blocks: %+v / %+v", s.Open, s.Admission)
	}
}

func TestOpenValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ScenarioSpec)
		want   string
	}{
		{"zipf negative", func(s *ScenarioSpec) { s.Open.Zipf = -1 }, "zipf"},
		{"zipf huge", func(s *ScenarioSpec) { s.Open.Zipf = 9 }, "zipf"},
		{"churn negative", func(s *ScenarioSpec) { s.Open.ChurnOn = Duration(-time.Second) }, "churn"},
		{"churn_off alone", func(s *ScenarioSpec) {
			s.Open.ChurnOn = 0
			s.Open.ChurnOff = Duration(time.Second)
		}, "churn_off"},
		{"envelope negative mult", func(s *ScenarioSpec) { s.Open.Envelope[0].Mult = -1 }, "mult"},
		{"envelope out of order", func(s *ScenarioSpec) {
			s.Open.Envelope[1].From = 0
		}, "ascending"},
		{"admission bad policy", func(s *ScenarioSpec) { s.Admission.Policy = "drop" }, "policy"},
		{"admission empty policy", func(s *ScenarioSpec) { s.Admission.Policy = "" }, "policy"},
		{"watermark above one", func(s *ScenarioSpec) { s.Admission.Watermark = 1.5 }, "watermark"},
		{"negative max_txs", func(s *ScenarioSpec) { s.Admission.MaxTxs = -1 }, "caps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openSpec().WithDefaults()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid spec validated")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestOpenMatrixAxes(t *testing.T) {
	var s ScenarioSpec
	for _, kv := range [][2]string{
		{"zipf", "1.1"}, {"churn_on", "10s"}, {"churn_off", "5s"},
		{"admission", "delay"}, {"watermark", "0.8"},
		{"max_txs", "400"}, {"max_bytes", "1000000"},
	} {
		if err := Set(&s, kv[0], kv[1]); err != nil {
			t.Fatalf("Set(%s=%s): %v", kv[0], kv[1], err)
		}
	}
	if s.Open.Zipf != 1.1 || s.Open.ChurnOn != Duration(10*time.Second) ||
		s.Open.ChurnOff != Duration(5*time.Second) {
		t.Fatalf("open block = %+v", s.Open)
	}
	if s.Admission.Policy != AdmissionDelay || s.Admission.Watermark != 0.8 ||
		s.Admission.MaxTxs != 400 || s.Admission.MaxBytes != 1000000 {
		t.Fatalf("admission block = %+v", s.Admission)
	}
	// A bare cap axis defaults the policy so it is runnable alone.
	var bare ScenarioSpec
	if err := Set(&bare, "max_txs", "200"); err != nil {
		t.Fatal(err)
	}
	if bare.Admission.Policy != AdmissionReject {
		t.Fatalf("bare cap axis policy = %q", bare.Admission.Policy)
	}
}

// Expand must deep-copy the open/admission blocks: a matrix axis writing
// through one cell's pointer must not leak into its siblings.
func TestExpandCopiesOpenAndAdmission(t *testing.T) {
	base := openSpec()
	cells, err := Expand([]ScenarioSpec{base},
		Axis{Key: "zipf", Values: []string{"0.5", "2"}},
		Axis{Key: "watermark", Values: []string{"0.5", "0.9"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	if cells[0].Open == cells[1].Open || cells[0].Admission == cells[1].Admission {
		t.Fatal("cells share open/admission pointers")
	}
	if cells[0].Open.Zipf != 0.5 || cells[3].Open.Zipf != 2 {
		t.Fatalf("zipf axis not applied: %g / %g", cells[0].Open.Zipf, cells[3].Open.Zipf)
	}
	if cells[0].Admission.Watermark != 0.5 || cells[1].Admission.Watermark != 0.9 {
		t.Fatalf("watermark axis not applied: %g / %g",
			cells[0].Admission.Watermark, cells[1].Admission.Watermark)
	}
	if base.Open.Zipf != 1.1 || base.Admission.Watermark != 0 {
		t.Fatalf("expansion mutated the base cell: %+v / %+v", base.Open, base.Admission)
	}
	// Envelope backing arrays must not be shared either.
	cells[0].Open.Envelope[0].Mult = 99
	if cells[1].Open.Envelope[0].Mult == 99 {
		t.Fatal("cells share an envelope backing array")
	}
}
