package spec

import (
	"fmt"
	"math"
	"slices"
)

// This file types the *expected* side of the reproduction: a Reference
// states what the paper (or, where the paper is silent, the Appendix D
// model or this repo's own pinned baseline) measured for one cell of an
// entry, with an explicit tolerance band. cmd/setchain-report compares
// these against a paper-scale run artifact and renders the deltas into
// RESULTS.md, so "how close do the numbers land" is a reviewable table
// instead of folklore. See DESIGN.md §9 (reference-value semantics).

// Metric names a Reference can target — the closed vocabulary of the
// per-cell measurements a run artifact records (internal/report fills the
// same keys from a harness Result).
const (
	MetricInjected      = "injected"         // elements injected by the workload
	MetricCommitted     = "committed"        // elements committed by the horizon
	MetricAvgTput       = "avg_tput"         // Table 2: committed/s to send-end
	MetricEffSend       = "eff_send"         // efficiency at the send-end
	MetricEff15x        = "eff_1_5x"         // efficiency at 1.5x the send window
	MetricEff2x         = "eff_2x"           // efficiency at 2.0x the send window
	MetricAnalytic      = "analytic"         // Appendix D model value
	MetricCommitFirstS  = "commit_first_s"   // commit time of the first element
	MetricCommit50pS    = "commit_50pct_s"   // commit time of the 50% fraction
	MetricP50CommitS    = "p50_commit_s"     // median commit latency (stages runs)
	MetricP99CommitS    = "p99_commit_s"     // p99 commit latency (stages runs)
	MetricCkptSeals     = "checkpoint_seals" // pruning checkpoints the observer sealed
	MetricSyncInstalls  = "sync_installs"    // servers recovered via checkpoint state-sync
	MetricMsgsPerCommit = "msgs_per_commit"  // network messages per committed element
	MetricOfferedRate   = "offered_rate"     // open-system: offered load in el/s
	MetricRejectionRate = "rejection_rate"   // open-system: rejected/offered fraction
	MetricFairness      = "fairness"         // open-system: Jain index over per-client acceptance
)

// Metrics lists every valid Reference metric name.
var Metrics = []string{
	MetricInjected, MetricCommitted, MetricAvgTput,
	MetricEffSend, MetricEff15x, MetricEff2x, MetricAnalytic,
	MetricCommitFirstS, MetricCommit50pS, MetricP50CommitS, MetricP99CommitS,
	MetricCkptSeals, MetricSyncInstalls, MetricMsgsPerCommit,
	MetricOfferedRate, MetricRejectionRate, MetricFairness,
}

// Reference sources — where the expected value comes from.
const (
	// SourcePaper is a number the paper itself reports (the default).
	SourcePaper = "paper"
	// SourceModel is a value of the Appendix D closed-form model, used
	// where the paper gives no measurement for a cell.
	SourceModel = "model"
	// SourceRepo is a regression anchor pinned from this repo's own
	// paper-scale baseline, for entries beyond the paper (chaos_*, perf).
	SourceRepo = "repo"
)

// Sources lists every valid Reference source.
var Sources = []string{SourcePaper, SourceModel, SourceRepo}

// Reference comparison modes.
const (
	// CompareBand passes while the measured value is inside the two-sided
	// relative band value*(1±tolerance) — the default.
	CompareBand = "band"
	// CompareMax passes while measured <= value*(1+tolerance): for paper
	// claims that are upper bounds ("finality below 4 s").
	CompareMax = "max"
)

// Reference is one expected measurement for one cell of a registry entry:
// the paper's number (or a model/repo anchor), the metric it constrains
// and the tolerance band within which the reproduction counts as faithful.
type Reference struct {
	// Cell indexes the entry's Cells slice.
	Cell int `json:"cell"`
	// Metric is the measurement constrained (see Metrics).
	Metric string `json:"metric"`
	// Value is the expected number, in the metric's natural unit
	// (elements/second, seconds, or a 0..1 efficiency fraction).
	Value float64 `json:"value"`
	// Tolerance is the relative band half-width (0.25 = ±25%).
	Tolerance float64 `json:"tolerance"`
	// Compare selects the comparison mode ("band" default, or "max").
	Compare string `json:"compare,omitempty"`
	// Source is where Value comes from: "paper" (default), "model", "repo".
	Source string `json:"source,omitempty"`
	// Note is a one-line caveat rendered next to the fidelity row.
	Note string `json:"note,omitempty"`
}

// WithDefaults fills the default comparison mode and source.
func (r Reference) WithDefaults() Reference {
	if r.Compare == "" {
		r.Compare = CompareBand
	}
	if r.Source == "" {
		r.Source = SourcePaper
	}
	return r
}

// Validate reports the first problem with the reference, or nil; cells is
// the owning entry's cell count. Call after WithDefaults.
func (r Reference) Validate(cells int) error {
	if r.Cell < 0 || r.Cell >= cells {
		return fmt.Errorf("reference cell %d out of range (entry has %d cells)", r.Cell, cells)
	}
	if !slices.Contains(Metrics, r.Metric) {
		return fmt.Errorf("unknown reference metric %q", r.Metric)
	}
	if r.Value <= 0 || math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
		return fmt.Errorf("reference value must be a positive finite number, got %g", r.Value)
	}
	if r.Tolerance <= 0 || r.Tolerance >= 10 {
		return fmt.Errorf("reference tolerance must be in (0, 10), got %g", r.Tolerance)
	}
	switch r.Compare {
	case CompareBand, CompareMax:
	default:
		return fmt.Errorf("unknown reference compare mode %q (want %q or %q)",
			r.Compare, CompareBand, CompareMax)
	}
	if !slices.Contains(Sources, r.Source) {
		return fmt.Errorf("unknown reference source %q (want one of %v)", r.Source, Sources)
	}
	return nil
}

// Delta returns the measured value's signed relative deviation from the
// reference ((measured-value)/value).
func (r Reference) Delta(measured float64) float64 {
	return (measured - r.Value) / r.Value
}

// Pass reports whether the measured value lands inside the tolerance
// band: two-sided for "band", upper-bounded for "max".
func (r Reference) Pass(measured float64) bool {
	d := r.Delta(measured)
	if r.Compare == CompareMax {
		return d <= r.Tolerance
	}
	return math.Abs(d) <= r.Tolerance
}
