package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// This file is the pure-data form of scheduled fault injection: a
// FaultSpec serializes the fault plan a scenario runs under, and
// internal/harness converts it into an executable faults.Plan. Keeping
// the JSON shape here (stdlib-only) and the executor in internal/faults
// preserves the package's layering rule: spec describes, harness runs.
// See DESIGN.md §7 (declarative scenarios) and §8 (fault model).

// Fault actions (FaultEventSpec.Action).
const (
	FaultCrash     = "crash"     // listed nodes stop sending and receiving
	FaultRestart   = "restart"   // listed nodes come back up
	FaultPartition = "partition" // block links between the listed groups
	FaultHeal      = "heal"      // remove every plan-installed link block
	FaultLink      = "link"      // set loss/dup/reorder/delay on links
)

// FaultActions lists every valid fault action name.
var FaultActions = []string{
	FaultCrash, FaultRestart, FaultPartition, FaultHeal, FaultLink,
}

// DefaultReorderDelay is the hold-back bound filled in when a link event
// sets a reorder probability but no reorder_delay.
const DefaultReorderDelay = Duration(20 * time.Millisecond)

// FaultEventSpec is one timestamped fault action.
type FaultEventSpec struct {
	// At is the virtual time the action executes.
	At Duration `json:"at"`
	// Action is one of FaultActions.
	Action string `json:"action"`
	// Nodes are the targets of crash/restart (server indices).
	Nodes []int `json:"nodes,omitempty"`
	// Groups are the partition's sides; servers absent from every group
	// keep full connectivity.
	Groups [][]int `json:"groups,omitempty"`
	// From/To scope a link event to the links between the two node sets
	// (both directions); empty means every server.
	From []int `json:"from,omitempty"`
	To   []int `json:"to,omitempty"`
	// Drop / Duplicate / Reorder are per-message probabilities on the
	// affected links.
	Drop      float64 `json:"drop,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	Reorder   float64 `json:"reorder,omitempty"`
	// ReorderDelay bounds the reordering hold-back (default 20ms when
	// Reorder is set).
	ReorderDelay Duration `json:"reorder_delay,omitempty"`
	// Delay is added to every message on the affected links (delay
	// spikes).
	Delay Duration `json:"delay,omitempty"`
}

// FaultSpec is a scenario's scheduled fault plan.
type FaultSpec struct {
	// Events execute in timestamp order; ties execute in list order.
	Events []FaultEventSpec `json:"events"`
}

// withDefaults fills derived defaults into a copy of the spec.
func (f *FaultSpec) withDefaults() *FaultSpec {
	out := FaultSpec{Events: make([]FaultEventSpec, len(f.Events))}
	copy(out.Events, f.Events)
	for i := range out.Events {
		ev := &out.Events[i]
		if ev.Reorder > 0 && ev.ReorderDelay == 0 {
			ev.ReorderDelay = DefaultReorderDelay
		}
	}
	return &out
}

// validate reports the first problem with the plan for a deployment of n
// servers per shard across the given shard count, or nil. Node ids are
// global: shard k's servers are k·n..k·n+n-1 (shards <= 1 is the classic
// single instance with ids 0..n-1).
func (f *FaultSpec) validate(n, shards int) error {
	if shards < 1 {
		shards = 1
	}
	total := n * shards
	inRange := func(ids []int) error {
		for _, id := range ids {
			if id < 0 || id >= total {
				return fmt.Errorf("server %d out of range [0,%d)", id, total)
			}
		}
		return nil
	}
	for i, ev := range f.Events {
		fail := func(err error) error {
			return fmt.Errorf("fault event %d (%s): %w", i, ev.Action, err)
		}
		if ev.At < 0 {
			return fail(fmt.Errorf("negative time %v", ev.At.Std()))
		}
		switch ev.Action {
		case FaultCrash, FaultRestart:
			if len(ev.Nodes) == 0 {
				return fail(fmt.Errorf("no nodes listed"))
			}
			if err := inRange(ev.Nodes); err != nil {
				return fail(err)
			}
			if ev.Action == FaultCrash {
				for _, id := range ev.Nodes {
					// Every shard's first server is that shard's metrics
					// observer (the classic single-instance observer is
					// server 0).
					if id%n == 0 {
						return fail(fmt.Errorf("server %d is shard %d's metrics observer and cannot crash", id, id/n))
					}
				}
			}
		case FaultPartition:
			if len(ev.Groups) < 2 {
				return fail(fmt.Errorf("need at least 2 groups, got %d", len(ev.Groups)))
			}
			seen := make(map[int]bool)
			for _, g := range ev.Groups {
				if err := inRange(g); err != nil {
					return fail(err)
				}
				for _, id := range g {
					if seen[id] {
						return fail(fmt.Errorf("server %d in two groups", id))
					}
					seen[id] = true
				}
			}
		case FaultHeal:
			// No operands.
		case FaultLink:
			if err := inRange(ev.From); err != nil {
				return fail(err)
			}
			if err := inRange(ev.To); err != nil {
				return fail(err)
			}
			for _, p := range []struct {
				name string
				v    float64
			}{{"drop", ev.Drop}, {"duplicate", ev.Duplicate}, {"reorder", ev.Reorder}} {
				if p.v < 0 || p.v > 1 {
					return fail(fmt.Errorf("%s probability %g outside [0,1]", p.name, p.v))
				}
			}
			if ev.ReorderDelay < 0 || ev.Delay < 0 {
				return fail(fmt.Errorf("negative delay"))
			}
		case "":
			return fail(fmt.Errorf("action missing (want one of %v)", FaultActions))
		default:
			return fail(fmt.Errorf("unknown action (want one of %v)", FaultActions))
		}
	}
	return nil
}

// LoadFaultFile reads a standalone fault-plan document (a FaultSpec
// object) from disk. Node-range validation happens later, when the plan
// meets a scenario with a known server count.
func LoadFaultFile(path string) (*FaultSpec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var fs FaultSpec
	if err := dec.Decode(&fs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(fs.Events) == 0 {
		return nil, fmt.Errorf("%s: fault plan has no events", path)
	}
	return &fs, nil
}

// Summary condenses the plan for catalogs and tables:
// "crash@10s restart@30s".
func (f *FaultSpec) Summary() string {
	if f == nil || len(f.Events) == 0 {
		return ""
	}
	s := ""
	for i, ev := range f.Events {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s@%v", ev.Action, ev.At.Std())
	}
	return s
}
