package spec

import (
	"fmt"
	"time"
)

// This file declares the paper's experiment catalog. Cell order inside an
// entry is execution order and — for the entries the pre-registry study
// functions covered — matches the order those functions built their
// scenario lists in, which internal/harness's equivalence tests pin down.

// Variant constructors for the evaluation's standard legend entries.

func vanilla() ScenarioSpec { return ScenarioSpec{Algorithm: AlgVanilla} }

func compress(c int) ScenarioSpec {
	return ScenarioSpec{Algorithm: AlgCompresschain, Collector: c}
}

func hash(c int) ScenarioSpec {
	return ScenarioSpec{Algorithm: AlgHashchain, Collector: c}
}

func light(s ScenarioSpec) ScenarioSpec { s.Light = true; return s }

// effVariants is the variant set of Fig. 3/5's legends.
func effVariants() []ScenarioSpec {
	return []ScenarioSpec{vanilla(), compress(100), compress(500), hash(100), hash(500)}
}

// grid crosses parameter points with the Fig. 3 variant set: for every
// point (outer) each variant (inner) gets one cell, grouped and customized
// by the point.
func grid(points []string, customize func(ScenarioSpec, int) ScenarioSpec) []ScenarioSpec {
	var cells []ScenarioSpec
	for i, label := range points {
		for _, v := range effVariants() {
			c := customize(v, i)
			c.Group = label
			cells = append(cells, c)
		}
	}
	return cells
}

func fig1Cells() []ScenarioSpec {
	panel := func(group string, rate float64, horizon time.Duration, variants ...ScenarioSpec) []ScenarioSpec {
		var cells []ScenarioSpec
		for _, v := range variants {
			v.Group = group
			v.Rate = rate
			v.Horizon = Duration(horizon)
			cells = append(cells, v)
		}
		return cells
	}
	var cells []ScenarioSpec
	cells = append(cells, panel("left", 5000, 350*time.Second, vanilla(), compress(100), hash(100))...)
	cells = append(cells, panel("center", 10000, 350*time.Second, compress(100), hash(100))...)
	cells = append(cells, panel("right", 10000, 250*time.Second, compress(500), hash(500))...)
	return cells
}

func fig3aCells() []ScenarioSpec {
	rates := []float64{500, 1000, 5000, 10000}
	points := make([]string, len(rates))
	for i, r := range rates {
		points[i] = fmt.Sprintf("%.0f el/s", r)
	}
	return grid(points, func(v ScenarioSpec, i int) ScenarioSpec {
		v.Rate = rates[i]
		return v
	})
}

func fig3bCells() []ScenarioSpec {
	servers := []int{4, 7, 10}
	points := make([]string, len(servers))
	for i, n := range servers {
		points[i] = fmt.Sprintf("%d servers", n)
	}
	return grid(points, func(v ScenarioSpec, i int) ScenarioSpec {
		v.Rate = 10000
		v.Servers = servers[i]
		return v
	})
}

func fig3cCells() []ScenarioSpec {
	delays := []time.Duration{0, 30 * time.Millisecond, 100 * time.Millisecond}
	points := make([]string, len(delays))
	for i, d := range delays {
		points[i] = d.String()
	}
	return grid(points, func(v ScenarioSpec, i int) ScenarioSpec {
		v.Rate = 10000
		v.NetworkDelay = Duration(delays[i])
		return v
	})
}

func fig4Cells() []ScenarioSpec {
	var cells []ScenarioSpec
	for _, v := range []ScenarioSpec{vanilla(), compress(100), hash(100)} {
		v.Rate = 1250
		v.Metrics = MetricsStages
		cells = append(cells, v)
	}
	return cells
}

func named(name string, s ScenarioSpec) ScenarioSpec { s.Name = name; return s }

func withRate(rate float64, s ScenarioSpec) ScenarioSpec { s.Rate = rate; return s }

func withHorizon(h time.Duration, s ScenarioSpec) ScenarioSpec {
	s.Horizon = Duration(h)
	return s
}

func fig2LeftCells() []ScenarioSpec {
	cells := []ScenarioSpec{
		named("Hashchain c=500 (hash-reversal on)", withRate(25000, hash(500))),
		named("Hashchain Light c=500 (no hash-reversal)", withRate(150000, light(hash(500)))),
		named("Compresschain c=500", withRate(25000, compress(500))),
		named("Compresschain Light c=500", withRate(25000, light(compress(500)))),
		named("Vanilla", withRate(5000, vanilla())),
	}
	for i := range cells {
		cells[i] = withHorizon(90*time.Second, cells[i])
	}
	return cells
}

// Reference-value constructors. Source policy (DESIGN.md §9): SourcePaper
// only for numbers the paper prints; SourceModel for Appendix D-derived
// expectations where the paper is silent; SourceRepo for regression
// anchors pinned from this repo's own paper-scale artifact (entries
// beyond the paper).

func paperRef(cell int, metric string, value, tol float64, note string) Reference {
	return Reference{Cell: cell, Metric: metric, Value: value, Tolerance: tol, Note: note}
}

func modelRef(cell int, metric string, value, tol float64, note string) Reference {
	return Reference{Cell: cell, Metric: metric, Value: value, Tolerance: tol,
		Source: SourceModel, Note: note}
}

func repoRef(cell int, metric string, value, tol float64, note string) Reference {
	return Reference{Cell: cell, Metric: metric, Value: value, Tolerance: tol,
		Source: SourceRepo, Note: note}
}

// fig1Refs holds Table 2's printed averages for Fig. 1's seven cells —
// the paper's headline measured-throughput numbers. Six of seven land
// inside ±30%; the standing WARN is the center-panel Hashchain, where
// the paper's deployment bottlenecks near 2.5k el/s while the simulator
// (charging the model's validation costs) sustains the offered 10k.
func fig1Refs() []Reference {
	return []Reference{
		paperRef(0, MetricAvgTput, 171, 0.3,
			"overload: 5k el/s against a ~955 el/s ledger ceiling clogs the commit queue"),
		paperRef(1, MetricAvgTput, 996, 0.3, ""),
		paperRef(2, MetricAvgTput, 4183, 0.3, ""),
		paperRef(3, MetricAvgTput, 571, 0.3, ""),
		paperRef(4, MetricAvgTput, 2540, 0.3,
			"paper's implementation bottlenecks here; the simulator sustains the offered rate"),
		paperRef(5, MetricAvgTput, 743, 0.3, ""),
		paperRef(6, MetricAvgTput, 7369, 0.3, ""),
	}
}

func init() {
	Register(Entry{
		Name:   "table1",
		Title:  "Evaluation parameter grid",
		Figure: "Table 1",
		Description: "Prints the evaluation's parameter space: sending rates " +
			"500/1,000/5,000/10,000 el/s, collector sizes 100/500, server counts " +
			"4/7/10 and artificial network delays 0/30/100 ms. Analytic — no " +
			"simulation runs.",
	})
	Register(Entry{
		Name:   "table2",
		Title:  "Average throughput to end of sending for Fig. 1's panels",
		Figure: "Table 2",
		Description: "Reruns Fig. 1's three panels and reports each variant's " +
			"average committed throughput up to the end of the 50 s send window, " +
			"next to the Appendix D analytical value. Paper: left V=171 C=996 " +
			"H=4,183; center C=571 H=2,540; right C=743 H=7,369 el/s.",
		Cells: fig1Cells(),
		Refs:  fig1Refs(),
	})
	Register(Entry{
		Name:   "fig1",
		Title:  "Throughput over time, three panels",
		Figure: "Fig. 1",
		Description: "Committed-rate curves (9 s rolling average) on 10 servers: " +
			"(left) 5,000 el/s with c=100 and all three algorithms; (center) " +
			"10,000 el/s with c=100, Compresschain vs Hashchain; (right) " +
			"10,000 el/s with c=500. Dotted reference lines mark " +
			"min(sending rate, analytical throughput).",
		Cells: fig1Cells(),
		Refs:  fig1Refs(),
	})
	Register(Entry{
		Name:   "fig2left",
		Title:  "Highest sustained throughput and the Light ablations",
		Figure: "Fig. 2 (left)",
		Description: "Pushes each variant to its implementation limit at c=500 on " +
			"10 servers: 25,000 el/s at Hashchain with hash-reversal on " +
			"(bottlenecked near 20k el/s by per-element validation), 150,000 el/s " +
			"at Hashchain Light (paper average 133,882 el/s), and Compresschain " +
			"with and without decompression+validation plus Vanilla.",
		Cells: fig2LeftCells(),
		Refs: []Reference{
			paperRef(0, MetricAvgTput, 20061, 0.3,
				"hash-reversal validation bottleneck"),
			paperRef(1, MetricAvgTput, 133882, 0.3, "paper average over the run"),
			repoRef(2, MetricAvgTput, 300, 0.3,
				"7.5x beyond Tc[500] the pipeline collapses instead of saturating cleanly"),
			repoRef(3, MetricAvgTput, 300, 0.3,
				"Light skips decompression, but ledger bandwidth is the binding ceiling"),
			repoRef(4, MetricAvgTput, 157, 0.3,
				"overload collapse at 5x the Vanilla ceiling, matching Fig. 1's left panel"),
		},
	})
	Register(Entry{
		Name:   "fig2right",
		Title:  "Analytical throughput vs block size",
		Figure: "Fig. 2 (right)",
		Description: "Sweeps the Appendix D closed-form model over doubling ledger " +
			"block sizes at c=500 for all three algorithms. Analytic — no " +
			"simulation runs.",
	})
	Register(Entry{
		Name:   "fig3a",
		Title:  "Efficiency vs sending rate",
		Figure: "Fig. 3a",
		Description: "Committed/added efficiency at the send-end, 1.5x and 2.0x " +
			"checkpoints for sending rates 500/1,000/5,000/10,000 el/s " +
			"(10 servers, no delay), across Vanilla, Compresschain and Hashchain " +
			"at c=100 and c=500.",
		Cells: fig3aCells(),
		// Cell order: rates 500/1,000/5,000/10,000 (outer) x the five
		// variants Vanilla/C100/C500/H100/H500 (inner).
		Refs: []Reference{
			modelRef(3, MetricEff2x, 1.0, 0.05,
				"H100 at 500 el/s: far under every ceiling, everything commits"),
			modelRef(18, MetricEff2x, 1.0, 0.05,
				"H100 at 10,000 el/s: still under Th[100]≈27k"),
			repoRef(16, MetricEff2x, 0.117, 0.3,
				"C100 at 4x its ceiling collapses well below the clean-saturation 0.5"),
			repoRef(15, MetricEff2x, 0.016, 0.5,
				"Vanilla at 10x its ceiling: near-total collapse, as in the paper's figure"),
		},
	})
	Register(Entry{
		Name:   "fig3b",
		Title:  "Efficiency vs number of servers",
		Figure: "Fig. 3b",
		Description: "The same efficiency checkpoints for 4/7/10 servers at " +
			"10,000 el/s with no artificial delay.",
		Cells: fig3bCells(),
		// Cell order: 4/7/10 servers (outer) x the five variants (inner).
		Refs: []Reference{
			modelRef(3, MetricEff2x, 1.0, 0.05, "H100 on 4 servers"),
			modelRef(13, MetricEff2x, 1.0, 0.05, "H100 on 10 servers"),
			repoRef(10, MetricEff2x, 0.016, 0.5,
				"Vanilla at 10x its ceiling: near-total collapse, as in the paper's figure"),
		},
	})
	Register(Entry{
		Name:   "fig3c",
		Title:  "Efficiency vs network delay",
		Figure: "Fig. 3c",
		Description: "The same efficiency checkpoints for artificial network " +
			"delays 0/30/100 ms (10 servers, 10,000 el/s).",
		Cells: fig3cCells(),
		// Cell order: delays 0/30/100 ms (outer) x the five variants (inner).
		Refs: []Reference{
			modelRef(13, MetricEff2x, 1.0, 0.05,
				"H100 at 100 ms: delay shifts latency, not steady-state rate"),
			repoRef(10, MetricEff2x, 0.009, 0.5,
				"Vanilla collapse deepens with delay: slower blocks shrink the ceiling itself"),
		},
	})
	Register(Entry{
		Name:   "fig4",
		Title:  "Latency CDFs to five pipeline stages",
		Figure: "Fig. 4",
		Description: "Per-element latency CDFs to first mempool, f+1 mempools, " +
			"all mempools, ledger and f+1 epoch-proofs for the three algorithms " +
			"at c=100, 10 servers, 1,250 el/s. Paper: finality below 4 s with " +
			"probability ~1.",
		Cells: fig4Cells(),
		Refs: []Reference{
			{Cell: 1, Metric: MetricP99CommitS, Value: 4.0, Tolerance: 0.1,
				Compare: CompareMax, Note: "finality below 4 s with probability ~1"},
			{Cell: 2, Metric: MetricP99CommitS, Value: 4.0, Tolerance: 0.1,
				Compare: CompareMax, Note: "finality below 4 s with probability ~1"},
			modelRef(0, MetricEffSend, 0.7, 0.5,
				"Vanilla: 1,250 el/s exceeds Tv≈955, so the send-end backlog grows"),
		},
	})
	Register(Entry{
		Name:   "fig5a",
		Title:  "Commit times vs sending rate",
		Figure: "Fig. 5a (Appendix F)",
		Description: "Commit times of the first element and the 10..50% fractions " +
			"over Fig. 3a's sending-rate grid.",
		Cells: fig3aCells(),
		Refs: []Reference{
			modelRef(3, MetricCommit50pS, 26, 0.25,
				"unsaturated: half the elements exist at half the 50 s send window"),
			modelRef(18, MetricCommit50pS, 26, 0.25, "H100 at 10,000 el/s"),
		},
	})
	Register(Entry{
		Name:   "fig5b",
		Title:  "Commit times vs number of servers",
		Figure: "Fig. 5b (Appendix F)",
		Description: "Commit times of the first element and the 10..50% fractions " +
			"over Fig. 3b's server-count grid.",
		Cells: fig3bCells(),
		Refs: []Reference{
			modelRef(13, MetricCommit50pS, 26, 0.25, "H100 on 10 servers"),
		},
	})
	Register(Entry{
		Name:   "fig5c",
		Title:  "Commit times vs network delay",
		Figure: "Fig. 5c (Appendix F)",
		Description: "Commit times of the first element and the 10..50% fractions " +
			"over Fig. 3c's network-delay grid.",
		Cells: fig3cCells(),
		Refs: []Reference{
			modelRef(13, MetricCommit50pS, 27, 0.25,
				"100 ms links add little to a 26 s half-window commit point"),
		},
	})
	Register(Entry{
		Name:   "d1",
		Title:  "Analytical throughput table",
		Figure: "Appendix D.1",
		Description: "Evaluates the closed-form throughput model at the paper's " +
			"parameters (n=10, C=0.5 MiB, R=0.8 blocks/s, le=438, lp=lh=139). " +
			"Paper: Tv≈955, Tc[100]≈2,497, Tc[500]≈3,330, Th[100]≈27,157, " +
			"Th[500]≈147,857 el/s. Analytic — no simulation runs.",
	})
	Register(Entry{
		Name:   "perf",
		Title:  "Simulator perf probe on the Fig. 4 workload",
		Figure: "—",
		Description: "Measures virtual seconds simulated per wall-clock second on " +
			"the Fig. 4 Hashchain cell, plus a parallel sweep of that cell across " +
			"the worker pool to expose executor scaling. Committed BENCH_*.json " +
			"files track these numbers across changes.",
		Cells: []ScenarioSpec{withRate(1250, hash(100))},
		Refs: []Reference{
			modelRef(0, MetricAvgTput, 1250, 0.1,
				"rate-limited, not ceiling-limited: the probe must commit what it is sent"),
		},
	})
	registerChaos()
	registerScale()
	registerSoak()
	registerMesh()
	registerOpen()
	registerSync()
}

// openRampCell is one point on the open_ramp offered-load sweep: an
// admission-gated Compresschain instance pushed at `rate` el/s against a
// 400-tx mempool cap. Below the commit ceiling the pool stays shallow and
// everything is admitted; above it the batch backlog crosses the
// watermark in seconds and the rejection rate — not a latency collapse —
// absorbs the overload.
func openRampCell(rate float64) ScenarioSpec {
	s := compress(100)
	s.Name = "open-ramp"
	s.Group = fmt.Sprintf("%.0f el/s", rate)
	s.Servers = 4
	s.Rate = rate
	s.SendFor = Duration(30 * time.Second)
	s.Admission = &AdmissionSpec{Policy: AdmissionReject, MaxTxs: 400}
	return s
}

// registerOpen declares the open-system workload family (DESIGN.md §14;
// beyond the paper): the paper's workload is closed — every client is
// always up and sends at a fixed rate — so these entries add the three
// open-system realism axes (client churn, Zipf hot-key skew, piecewise
// rate envelopes) plus mempool admission control, and measure the
// goodput/rejection/fairness surface the paper never touches.
func registerOpen() {
	Register(Entry{
		Name:   "open_ramp",
		Title:  "Goodput vs offered load under admission control",
		Figure: "— (beyond the paper)",
		Description: "Compresschain c=100 on 4 servers with a reject-policy " +
			"admission gate (watermark 0.9 of a 400-tx mempool cap), offered " +
			"1,000/2,000/4,000/8,000 el/s for 30 s. Below the ~2.5k el/s " +
			"Tc[100] ceiling the pool never saturates and rejection is zero; " +
			"above it the batch backlog crosses the watermark and the " +
			"rejection rate climbs while goodput plateaus — the collapse " +
			"knee that closed-system overload (fig2left) hides inside " +
			"commit-queue latency.",
		Cells: []ScenarioSpec{
			openRampCell(1000), openRampCell(2000),
			openRampCell(4000), openRampCell(8000),
		},
		Refs: []Reference{
			repoRef(0, MetricAvgTput, 1000, 0.1,
				"below the knee: rate-limited, everything admitted and committed"),
			repoRef(1, MetricAvgTput, 2000, 0.1,
				"still under Tc[100]≈2,497; the pool stays below the watermark"),
			repoRef(2, MetricRejectionRate, 0.139, 0.15,
				"past the knee: the gate sheds the overload the ledger cannot commit"),
			repoRef(3, MetricRejectionRate, 0.571, 0.1,
				"3.2x the ceiling: most offered elements are refused at the gate"),
			repoRef(3, MetricFairness, 1.0, 0.05,
				"uniform clients hit the same saturated gate: Jain index stays at 1"),
		},
	})
	Register(Entry{
		Name:   "open_skew",
		Title:  "Zipf hot-key skew across a sharded deployment",
		Figure: "— (beyond the paper)",
		Description: "Compresschain c=100 on 4 shards of 4 servers at an " +
			"aggregate 6,000 el/s with Zipf(1.1) source skew: a handful of " +
			"hot clients emit most of the load. The FNV digest router keys " +
			"on element IDs (client, seq), so even a hot client's elements " +
			"spread across shards and no shard melts down — per-shard " +
			"balance survives hot-key skew that would collapse a " +
			"client-keyed router.",
		Cells: []ScenarioSpec{func() ScenarioSpec {
			s := compress(100)
			s.Name = "open-skew"
			s.Servers = 4
			s.Shards = 4
			s.Rate = 6000
			s.SendFor = Duration(30 * time.Second)
			s.Open = &OpenSpec{Zipf: 1.1}
			return s
		}()},
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"skew moves load between sources, not past any ceiling: everything commits"),
			repoRef(0, MetricAvgTput, 5719, 0.1,
				"aggregate goodput near the offered 6,000 el/s minus pipeline latency"),
		},
	})
	Register(Entry{
		Name:   "open_churn",
		Title:  "Client churn and a bursty rate envelope under delay-policy admission",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 4 servers at a 1,500 el/s base rate " +
			"with open-system dynamics: clients churn (exp(10 s) up, " +
			"exp(5 s) down), and a piecewise envelope halves the rate for " +
			"the first 10 s, doubles it for the next 10 s and returns to " +
			"1x — while a delay-policy admission gate (50-tx cap) defers " +
			"local txs into a bounded queue during the burst instead of " +
			"refusing them. Deferred txs drain as commits free the pool; " +
			"the safety checker passes with churn thinning the workload.",
		Cells: []ScenarioSpec{func() ScenarioSpec {
			s := hash(100)
			s.Name = "open-churn"
			s.Servers = 4
			s.Rate = 1500
			s.SendFor = Duration(30 * time.Second)
			s.Open = &OpenSpec{
				ChurnOn:  Duration(10 * time.Second),
				ChurnOff: Duration(5 * time.Second),
				Envelope: []RatePhaseSpec{
					{From: 0, Mult: 0.5},
					{From: Duration(10 * time.Second), Mult: 2},
					{From: Duration(20 * time.Second), Mult: 1},
				},
			}
			s.Admission = &AdmissionSpec{Policy: AdmissionDelay, MaxTxs: 50}
			return s
		}()},
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"every admitted element commits: deferral delays txs, never loses them"),
			repoRef(0, MetricOfferedRate, 994, 0.1,
				"churn (2/3 duty cycle) x envelope (7/6 mean) thins the 1,500 el/s base"),
		},
	})
}

// meshCell is the base configuration of the mesh_* family: a rate-limited
// Hashchain workload whose transport — not its load — is the experiment.
// The explicit 60 s horizon (vs the 120 s default) keeps the large-n cells
// affordable in the reduced catalog, where explicit horizons scale down
// with the run-time factor.
func meshCell(name string, servers, fanout int, rate float64) ScenarioSpec {
	s := hash(100)
	s.Name = name
	s.Group = fmt.Sprintf("n=%d f=%d", servers, fanout)
	s.Servers = servers
	s.Rate = rate
	s.SendFor = Duration(20 * time.Second)
	s.Horizon = Duration(60 * time.Second)
	s.Transport = TransportMesh
	s.Fanout = fanout
	return s
}

// registerMesh declares the gossip-mesh transport family (DESIGN.md §13;
// beyond the paper): fanout x node-count sweeps of the bounded-fanout
// overlay, a broadcast-vs-mesh message-complexity comparison at n=50, the
// existing lossy/partition chaos plans rerun over the mesh, and a
// sharded+mesh determinism cell. Messages-per-committed-element is the
// family's headline metric: broadcast costs Theta(n^2) sends per height,
// the mesh O(n*fanout) envelopes.
func registerMesh() {
	Register(Entry{
		Name:   "mesh_scale",
		Title:  "Gossip-mesh transport across node counts and fanouts",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 at a rate-limited 1,000 el/s with consensus " +
			"and mempool traffic routed over the bounded-fanout gossip overlay " +
			"instead of direct broadcast: n=4/10/50/100 at fanout 8, and fanout " +
			"4/8/16 at n=50. Every cell must commit with the safety checker " +
			"passing; the n=50 fanout-8 cell is the acceptance anchor for the " +
			">=2x messages-per-commit reduction over broadcast.",
		Cells: []ScenarioSpec{
			meshCell("mesh-scale", 4, 8, 1000),
			meshCell("mesh-scale", 10, 8, 1000),
			meshCell("mesh-scale", 50, 4, 1000),
			meshCell("mesh-scale", 50, 8, 1000),
			meshCell("mesh-scale", 50, 16, 1000),
			func() ScenarioSpec {
				// At n=100 the first epochs settle only after f+1 = 50
				// servers' proofs land in blocks — ~10 block intervals of
				// pure pipeline latency — so this cell needs the longer
				// horizon to commit in the reduced catalog too.
				s := meshCell("mesh-scale", 100, 8, 1000)
				s.Horizon = Duration(120 * time.Second)
				return s
			}(),
		},
		Refs: []Reference{
			repoRef(3, MetricAvgTput, 350, 0.1,
				"n=50 f=8: avg-to-send-end trails the 1,000 el/s rate — the f+1-proof commit pipeline, not the overlay, is the bottleneck (everything commits by the horizon)"),
			repoRef(3, MetricMsgsPerCommit, 58.1, 0.3,
				"n=50 f=8: vs 184.3 for broadcast at the same cell — the Theta(n^2)->O(n*fanout) drop"),
			repoRef(5, MetricMsgsPerCommit, 841.2, 0.3,
				"n=100 f=8: inflated by the commit tail — under half the injected elements commit inside even the stretched horizon (f+1=50 proofs must land in blocks first), so the denominator shrinks while gossip keeps flowing"),
		},
	})
	Register(Entry{
		Name:   "mesh_vs_broadcast",
		Title:  "Message complexity: broadcast vs mesh at n=50",
		Figure: "— (beyond the paper)",
		Description: "The same Hashchain c=100, 1,000 el/s, 50-server workload on " +
			"both transports: direct per-validator broadcast (cell 0) and the " +
			"fanout-8 gossip mesh (cell 1). The mesh must commit the same workload " +
			"with at most half the network messages per committed element — " +
			"enforced by TestMeshMessageReduction and by the benchgate " +
			"msgs_per_commit gate on every perf artifact.",
		Cells: []ScenarioSpec{
			func() ScenarioSpec {
				s := hash(100)
				s.Name = "bcast-n50"
				s.Group = "broadcast"
				s.Servers = 50
				s.Rate = 1000
				s.SendFor = Duration(20 * time.Second)
				s.Horizon = Duration(60 * time.Second)
				return s
			}(),
			meshCell("mesh-n50", 50, 8, 1000),
		},
		Refs: []Reference{
			repoRef(0, MetricMsgsPerCommit, 184.3, 0.3,
				"broadcast at n=50: every proposal/vote/gossip batch costs n-1 sends"),
			repoRef(1, MetricMsgsPerCommit, 58.1, 0.3,
				"mesh f=8: a 3.2x reduction; must stay <= 0.5x the broadcast cell (benchgate-enforced)"),
		},
	})
	Register(Entry{
		Name:   "mesh_chaos",
		Title:  "Gossip mesh under the lossy-WAN and partition fault plans",
		Figure: "— (beyond the paper)",
		Description: "The chaos_lossy and chaos_partition fault plans rerun with " +
			"all fan-out traffic on the gossip mesh: 7 servers at fanout 4 under " +
			"2% drop/1% duplication/20% reorder with a mid-run 150 ms delay " +
			"spike, and 4 servers at fanout 2 under a minority partition that " +
			"heals. Each gossiped digest reaches a node over ~fanout disjoint " +
			"paths, so 2% loss must not dent liveness; the invariant checker " +
			"passes non-vacuously (commits > 0) on both cells.",
		Cells: []ScenarioSpec{
			func() ScenarioSpec {
				s := chaosCell("mesh-lossy", 7, 2000, &FaultSpec{
					Events: []FaultEventSpec{
						{Action: FaultLink, Drop: 0.02, Duplicate: 0.01,
							Reorder: 0.2, ReorderDelay: Duration(25 * time.Millisecond)},
						{At: Duration(15 * time.Second), Action: FaultLink,
							Drop: 0.02, Duplicate: 0.01, Reorder: 0.2,
							ReorderDelay: Duration(25 * time.Millisecond),
							Delay:        Duration(150 * time.Millisecond)},
						{At: Duration(25 * time.Second), Action: FaultLink,
							Drop: 0.02, Duplicate: 0.01, Reorder: 0.2,
							ReorderDelay: Duration(25 * time.Millisecond)},
					},
				})
				s.Transport = TransportMesh
				s.Fanout = 4
				return s
			}(),
			func() ScenarioSpec {
				s := chaosCell("mesh-partition", 4, 1500, &FaultSpec{
					Events: []FaultEventSpec{
						{At: Duration(10 * time.Second), Action: FaultPartition,
							Groups: [][]int{{0, 1, 2}, {3}}},
						{At: Duration(30 * time.Second), Action: FaultHeal},
					},
				})
				s.Transport = TransportMesh
				s.Fanout = 2
				return s
			}(),
		},
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"path redundancy + consensus catch-up hide 2% loss; everything commits by 2x"),
			repoRef(1, MetricEff2x, 1.0, 0.05,
				"the isolated server rejoins over the fanout-2 ring and every add commits"),
		},
	})
	Register(Entry{
		Name:   "mesh_shards",
		Title:  "Sharded deployment with per-shard gossip meshes",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 2 shards of 10 servers (20 nodes, one " +
			"shared network) at an aggregate 2,000 el/s, each shard's consensus " +
			"group running its own fanout-4 mesh over the shared fabric. Pins " +
			"that per-shard overlays compose with the digest router, the " +
			"cross-shard safety checker, and partitioned (IntraWorkers) " +
			"execution.",
		Cells: []ScenarioSpec{func() ScenarioSpec {
			s := meshCell("mesh-sharded", 10, 4, 2000)
			s.Group = ""
			s.Shards = 2
			return s
		}()},
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"rate-limited on both shards; the overlay must not lose anything"),
		},
	})
}

// soakCell is the base configuration of the soak_* family: a modest,
// rate-limited Hashchain workload run 10-100x longer than any other entry,
// with checkpointing + pruning on and a heap ceiling asserted — the
// experiment is bounded memory and checkpoint recovery, not throughput.
func soakCell(name string, servers int, rate float64, sendFor, horizon time.Duration, heapMB int) ScenarioSpec {
	s := hash(100)
	s.Name = name
	s.Servers = servers
	s.Rate = rate
	s.SendFor = Duration(sendFor)
	s.Horizon = Duration(horizon)
	s.CheckpointInterval = 8
	s.Prune = true
	s.HeapCeilingMB = heapMB
	return s
}

// registerSoak declares the long-horizon soak family (beyond the paper):
// epoch checkpointing + settled-history pruning (DESIGN.md §11) under the
// chaos_* fault plans at 10x the catalog's longest horizon, with the live
// heap asserted under an explicit ceiling and crash recovery going through
// checkpoint state-sync instead of full replay.
func registerSoak() {
	Register(Entry{
		Name:   "soak_steady",
		Title:  "One-hour steady-state soak with pruning and a heap ceiling",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 4 servers at a rate-limited 200 el/s for a " +
			"3,400 s send window (3,600 s horizon — 10x the catalog's longest run). " +
			"Every server seals a checkpoint each 8 settled epochs and prunes " +
			"settled history, ledger blocks and mempool tombstones below it; the " +
			"end-of-run live heap must stay under 2 GiB. The invariant checker " +
			"verifies the pruned prefix against the checkpoint digest chain.",
		Cells: []ScenarioSpec{soakCell("soak-steady", 4, 200,
			3400*time.Second, 3600*time.Second, 2048)},
		Refs: []Reference{
			modelRef(0, MetricAvgTput, 200, 0.05,
				"rate-limited far below every ceiling: the soak must commit what it is sent"),
			modelRef(0, MetricEff2x, 1.0, 0.05,
				"nothing may be lost across ~hundreds of checkpoint seals and prunes"),
		},
	})
	Register(Entry{
		Name:   "soak_chaos",
		Title:  "One-hour sharded soak under repeated crash/restart cycles",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 2 shards of 4 servers (8 nodes, one shared " +
			"network) at an aggregate 400 el/s for a 3,400 s send window (3,600 s " +
			"horizon). Servers 3 and 6 crash and restart in three staggered " +
			"5-minute outages; with pruning on, the restarted server's missing " +
			"blocks are gone from every peer, so recovery must state-sync the " +
			"latest checkpoint snapshot and replay only the suffix. Both the " +
			"per-shard and the cross-shard safety checkers run on the pruned " +
			"histories, and the live heap must stay under 4 GiB.",
		Cells: []ScenarioSpec{func() ScenarioSpec {
			s := soakCell("soak-chaos", 4, 400, 3400*time.Second, 3600*time.Second, 4096)
			s.Shards = 2
			s.Faults = &FaultSpec{Events: []FaultEventSpec{
				{At: Duration(300 * time.Second), Action: FaultCrash, Nodes: []int{3}},
				{At: Duration(600 * time.Second), Action: FaultRestart, Nodes: []int{3}},
				{At: Duration(1200 * time.Second), Action: FaultCrash, Nodes: []int{6}},
				{At: Duration(1500 * time.Second), Action: FaultRestart, Nodes: []int{6}},
				{At: Duration(2100 * time.Second), Action: FaultCrash, Nodes: []int{3}},
				{At: Duration(2400 * time.Second), Action: FaultRestart, Nodes: []int{3}},
			}}
			return s
		}()},
		Refs: []Reference{
			modelRef(0, MetricEff2x, 1.0, 0.05,
				"every crash recovers through checkpoint state-sync; everything still commits"),
			modelRef(0, MetricAvgTput, 400, 0.1,
				"each crashed shard keeps committing on its 3/4 quorum through the outages"),
		},
	})
	Register(Entry{
		Name:   "soak_smoke",
		Title:  "CI-scale soak smoke: pruning + crash recovery + heap ceiling",
		Figure: "— (beyond the paper)",
		Description: "The soak family's fast regression cell: Hashchain c=100 on 4 " +
			"servers at 800 el/s for 60 s, checkpoint every 4 settled epochs with " +
			"pruning on, one crash/restart of server 3 (down 15-35 s, long enough " +
			"that its gap is pruned everywhere and recovery must state-sync), and " +
			"a 1 GiB heap ceiling. Runs in seconds; CI executes it on every push.",
		Cells: []ScenarioSpec{func() ScenarioSpec {
			s := soakCell("soak-smoke", 4, 800, 60*time.Second, 120*time.Second, 1024)
			s.CheckpointInterval = 4
			s.Faults = &FaultSpec{Events: []FaultEventSpec{
				{At: Duration(15 * time.Second), Action: FaultCrash, Nodes: []int{3}},
				{At: Duration(35 * time.Second), Action: FaultRestart, Nodes: []int{3}},
			}}
			return s
		}()},
		Refs: []Reference{
			modelRef(0, MetricEff2x, 1.0, 0.05,
				"the restarted server state-syncs a checkpoint and nothing is lost"),
		},
	})
}

// syncCell is the base configuration of the sync_* family: the soak_smoke
// recovery shape — Hashchain c=100, checkpoint every 4 settled epochs with
// pruning on, one crash/restart long enough that the crashed server's gap
// is pruned everywhere — so every cell forces a checkpoint state-sync,
// and the sweep axes (rate → snapshot size, bandwidth, chunk size, forger
// count) stress the chunked transfer protocol rather than throughput.
func syncCell(name string, servers int, rate float64, crashed int) ScenarioSpec {
	s := hash(100)
	s.Name = name
	s.Servers = servers
	s.Rate = rate
	s.SendFor = Duration(60 * time.Second)
	s.Horizon = Duration(120 * time.Second)
	s.CheckpointInterval = 4
	s.Prune = true
	s.Faults = &FaultSpec{Events: []FaultEventSpec{
		{At: Duration(15 * time.Second), Action: FaultCrash, Nodes: []int{crashed}},
		{At: Duration(35 * time.Second), Action: FaultRestart, Nodes: []int{crashed}},
	}}
	return s
}

// registerSync declares the state-sync transfer family (DESIGN.md §15;
// beyond the paper): snapshots move as certified, fixed-size chunks
// charged to the modeled network, and the recovering server verifies the
// snapshot against the checkpoint commitment a 2f+1-certified block
// header binds before installing anything a peer sent.
func registerSync() {
	Register(Entry{
		Name:   "sync_transfer",
		Title:  "Chunked state-sync transfer: snapshot size × bandwidth × chunk size",
		Figure: "— (beyond the paper)",
		Description: "The soak_smoke recovery shape (Hashchain c=100 on 4 servers, " +
			"checkpoint every 4 settled epochs, pruning on, server 3 down 15-35 s so " +
			"its gap is pruned everywhere and recovery must state-sync) swept across " +
			"the transfer axes: small 16 KiB vs default 64 KiB chunks, the default " +
			"1 Gbit/s LAN vs a constrained 2 MB/s uplink, and a 2.5x rate bump that " +
			"grows the snapshot itself. Every chunk is charged to the modeled " +
			"network and verified against the certified snapshot identity before " +
			"assembly; recovery must still complete and commit everything inside " +
			"the horizon on every cell.",
		Cells: []ScenarioSpec{
			func() ScenarioSpec {
				s := syncCell("sync-transfer", 4, 800, 3)
				s.Group = "16KiB chunks"
				s.SyncChunkBytes = 16 * 1024
				return s
			}(),
			func() ScenarioSpec {
				s := syncCell("sync-transfer", 4, 800, 3)
				s.Group = "2MB/s uplink"
				s.Bandwidth = 2e6
				return s
			}(),
			func() ScenarioSpec {
				s := syncCell("sync-transfer", 4, 2000, 3)
				s.Group = "2.5x snapshot, 2MB/s"
				s.Bandwidth = 2e6
				return s
			}(),
		},
		Refs: []Reference{
			modelRef(0, MetricEff2x, 1.0, 0.05,
				"chunked recovery completes and nothing is lost"),
			modelRef(1, MetricEff2x, 1.0, 0.05,
				"a constrained uplink slows the transfer but recovery still completes"),
			modelRef(2, MetricEff2x, 0.917, 0.05,
				"the 2.5x snapshot streams within the horizon, but the crashed "+
					"server's down-window backlog replays past the 2x-send mark"),
		},
	})
	Register(Entry{
		Name:   "sync_forged",
		Title:  "Forged-snapshot Byzantine servers vs the certified header binding",
		Figure: "— (beyond the paper)",
		Description: "The same recovery shape with the highest-indexed servers running " +
			"the forge-snapshot behavior: every snapshot they serve carries a " +
			"fabricated checkpoint smuggling bogus elements under the requester's " +
			"prune horizon, attached to the legitimate commit certificate. The " +
			"recovering server verifies each offer against the checkpoint " +
			"commitment bound into the certified block header, rejects the " +
			"forgeries, and completes recovery from an honest peer — the safety " +
			"checker then proves no bogus element reached any correct set. Swept " +
			"over forger count (1 of 5, 2 of 7).",
		Cells: []ScenarioSpec{
			func() ScenarioSpec {
				s := syncCell("sync-forged", 5, 800, 1)
				s.Group = "1 forger"
				s.Byzantine = &ByzantineSpec{Faulty: 1, Behaviors: []string{BehaviorForgeSnapshot}}
				return s
			}(),
			func() ScenarioSpec {
				s := syncCell("sync-forged", 7, 800, 1)
				s.Group = "2 forgers"
				s.Byzantine = &ByzantineSpec{Faulty: 2, Behaviors: []string{BehaviorForgeSnapshot}}
				return s
			}(),
		},
		Refs: []Reference{
			modelRef(0, MetricEff2x, 1.0, 0.05,
				"forged snapshots are rejected; recovery completes from honest peers"),
			modelRef(1, MetricEff2x, 1.0, 0.05,
				"two forgers cannot outvote the certified header binding"),
		},
	})
}

// scaleCell is the base configuration of the scale_* family: one
// deliberately overloaded workload whose shard count — not its load — is
// the experiment. The aggregate rate (8,000 el/s) is ~3.2x one ledger's
// Compresschain c=100 ceiling (Tc[100] ≈ 2,497 el/s), so a single
// instance collapses while four shards (2,000 el/s each) commit
// everything: the S=1→8 curve in RESULTS.md is the sharding payoff.
func scaleCell(name string, shards int) ScenarioSpec {
	s := compress(100)
	s.Name = name
	s.Group = fmt.Sprintf("S=%d", shards)
	s.Servers = 4
	s.Shards = shards
	s.Rate = 8000
	s.SendFor = Duration(30 * time.Second)
	return s
}

// registerScale declares the sharded scale-out family (internal/shard;
// beyond the paper): the same cell at S=1/2/4/8 for the throughput
// scaling curve, and a sharded run under a scheduled fault plan to prove
// the cross-shard safety argument holds when the shared network
// misbehaves.
func registerScale() {
	Register(Entry{
		Name:   "scale_tput",
		Title:  "Sharded throughput scale-out, S=1/2/4/8",
		Figure: "— (beyond the paper)",
		Description: "Compresschain c=100 at an aggregate 8,000 el/s — ~3.2x one " +
			"ledger's Tc[100] ceiling — split across S=1/2/4/8 shards of 4 servers " +
			"each by the digest router (internal/shard). One instance collapses " +
			"under the overload; at S=4 every shard runs below its own ceiling and " +
			"aggregate throughput must reach at least 2.5x the S=1 number. Every " +
			"cell passes both the per-shard Setchain checker and the cross-shard " +
			"checker (router completeness, no cross-shard duplication, superepoch " +
			"integrity).",
		Cells: []ScenarioSpec{
			scaleCell("sharded-tput", 1), scaleCell("sharded-tput", 2),
			scaleCell("sharded-tput", 4), scaleCell("sharded-tput", 8),
		},
		Refs: []Reference{
			repoRef(0, MetricAvgTput, 698, 0.3,
				"S=1 collapses at 3.2x the Compresschain ceiling, as in Fig. 2 left"),
			repoRef(1, MetricAvgTput, 2883, 0.3,
				"S=2 still runs each shard at 1.6x its ceiling; partial recovery"),
			repoRef(2, MetricAvgTput, 7644, 0.2,
				"10.9x the S=1 number — far above the 2.5x acceptance floor for S=4"),
			repoRef(3, MetricAvgTput, 7590, 0.2,
				"rate-limited plateau: the offered 8,000 el/s, minus pipeline latency"),
			repoRef(3, MetricEff2x, 1.0, 0.05,
				"at S=8 every shard runs far below its ceiling; everything commits"),
		},
	})
	Register(Entry{
		Name:   "scale_chaos",
		Title:  "Sharded run under a scheduled crash/restart",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 2 shards of 4 servers (8 nodes in one " +
			"shared network) at an aggregate 2,400 el/s; global node 6 — shard 1's " +
			"third server — crashes at t=8s and restarts at t=20s. The fault plan " +
			"acts on the shared fabric, the crashed shard keeps committing on its " +
			"3-server quorum, and both the per-shard and the cross-shard safety " +
			"checkers must pass at the end of the run.",
		Cells: []ScenarioSpec{func() ScenarioSpec {
			s := hash(100)
			s.Name = "sharded-crash"
			s.Servers = 4
			s.Shards = 2
			s.Rate = 2400
			s.SendFor = Duration(30 * time.Second)
			s.Faults = &FaultSpec{Events: []FaultEventSpec{
				{At: Duration(8 * time.Second), Action: FaultCrash, Nodes: []int{6}},
				{At: Duration(20 * time.Second), Action: FaultRestart, Nodes: []int{6}},
			}}
			return s
		}()},
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"nothing is lost: the restarted server catches up and everything commits by 2x"),
			repoRef(0, MetricEffSend, 0.81, 0.15,
				"the send-end dent measures the 12 s outage on the crashed shard's 3/4 quorum"),
		},
	})
}

// chaosCell is the base configuration of the chaos_* family: a modest
// Hashchain workload whose fault plan — not its load — is the experiment.
// The invariant checker (run on every scenario) is the measurement: safety
// must hold through every fault schedule below.
func chaosCell(name string, servers int, rate float64, fs *FaultSpec) ScenarioSpec {
	s := hash(100)
	s.Name = name
	s.Servers = servers
	s.Rate = rate
	s.SendFor = Duration(40 * time.Second)
	s.Faults = fs
	return s
}

// registerChaos declares the scheduled-fault experiment family. Paper
// coverage stops at always-on Byzantine servers; these entries exercise
// the crash/partition/lossy-network scenarios a deployment actually
// meets, with the end-of-run invariant checker asserting Setchain safety
// across every correct server.
func registerChaos() {
	Register(Entry{
		Name:   "chaos_crash",
		Title:  "Crash and restart a server mid-run",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 4 servers at 1,500 el/s; server 3 " +
			"crashes at t=10s and restarts at t=30s. The cluster keeps " +
			"committing on the 3-server quorum, the restarted server catches " +
			"up via certified block requests, and the invariant checker " +
			"verifies its recovered history is a consistent prefix.",
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"nothing is lost: the restarted server catches up and everything commits by 2x"),
			repoRef(0, MetricEffSend, 0.75, 0.15,
				"the send-end dent measures the 20 s outage on a 3/4 quorum"),
		},
		Cells: []ScenarioSpec{chaosCell("crash-restart", 4, 1500, &FaultSpec{
			Events: []FaultEventSpec{
				{At: Duration(10 * time.Second), Action: FaultCrash, Nodes: []int{3}},
				{At: Duration(30 * time.Second), Action: FaultRestart, Nodes: []int{3}},
			},
		})},
	})
	Register(Entry{
		Name:   "chaos_partition",
		Title:  "Minority partition and heal",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 4 servers at 1,500 el/s; at t=10s " +
			"server 3 is partitioned away from the majority {0,1,2}, at t=30s " +
			"the partition heals. Consensus continues on the majority side, " +
			"the isolated server rejoins, and epoch-prefix consistency must " +
			"hold across all four servers at the end of the run.",
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"the isolated server rejoins and every add commits by 2x"),
			repoRef(0, MetricEffSend, 0.75, 0.15,
				"the send-end dent measures the 20 s minority partition"),
		},
		Cells: []ScenarioSpec{chaosCell("minority-partition", 4, 1500, &FaultSpec{
			Events: []FaultEventSpec{
				{At: Duration(10 * time.Second), Action: FaultPartition,
					Groups: [][]int{{0, 1, 2}, {3}}},
				{At: Duration(30 * time.Second), Action: FaultHeal},
			},
		})},
	})
	Register(Entry{
		Name:   "chaos_majority",
		Title:  "Quorum-splitting partition and heal",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 4 servers at 1,000 el/s; at t=10s the " +
			"cluster splits 2/2, leaving no side with a consensus quorum, and " +
			"heals at t=25s. Commits stall during the split (liveness yields) " +
			"but must resume after healing, and no side may have committed " +
			"anything the other contradicts — safety holds throughout.",
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"liveness yields during the split, safety does not; all commits land by 2x"),
			repoRef(0, MetricEffSend, 0.94, 0.1,
				"the 15 s no-quorum stall's backlog drains within the send window after healing"),
		},
		Cells: []ScenarioSpec{chaosCell("majority-partition", 4, 1000, &FaultSpec{
			Events: []FaultEventSpec{
				{At: Duration(10 * time.Second), Action: FaultPartition,
					Groups: [][]int{{0, 1}, {2, 3}}},
				{At: Duration(25 * time.Second), Action: FaultHeal},
			},
		})},
	})
	Register(Entry{
		Name:   "chaos_lossy",
		Title:  "Lossy WAN with a mid-run delay spike",
		Figure: "— (beyond the paper)",
		Description: "Hashchain c=100 on 7 servers at 2,000 el/s over a lossy " +
			"wide-area network: every link drops 2% and duplicates 1% of " +
			"messages and reorders 20% by up to 25ms; between t=15s and t=25s " +
			"a delay spike adds 150ms to every link. Exactly-once delivery is " +
			"deliberately broken, so this entry is the regression net for " +
			"duplicate-suppression and retransmission paths.",
		Refs: []Reference{
			repoRef(0, MetricEff2x, 1.0, 0.05,
				"retransmission fully hides 2% loss by 2x; a shortfall means a recovery path broke"),
			repoRef(0, MetricEffSend, 0.81, 0.15,
				"the send-end dent is the loss+delay-spike tax on commit latency"),
		},
		Cells: []ScenarioSpec{chaosCell("lossy-wan", 7, 2000, &FaultSpec{
			Events: []FaultEventSpec{
				{Action: FaultLink, Drop: 0.02, Duplicate: 0.01,
					Reorder: 0.2, ReorderDelay: Duration(25 * time.Millisecond)},
				{At: Duration(15 * time.Second), Action: FaultLink,
					Drop: 0.02, Duplicate: 0.01, Reorder: 0.2,
					ReorderDelay: Duration(25 * time.Millisecond),
					Delay:        Duration(150 * time.Millisecond)},
				{At: Duration(25 * time.Second), Action: FaultLink,
					Drop: 0.02, Duplicate: 0.01, Reorder: 0.2,
					ReorderDelay: Duration(25 * time.Millisecond)},
			},
		})},
	})
}
