package spec

import (
	"strings"
	"testing"
	"time"
)

func faulted(events ...FaultEventSpec) ScenarioSpec {
	s := hash(100)
	s.Rate = 100
	s.Faults = &FaultSpec{Events: events}
	return s
}

func TestFaultSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		ev   FaultEventSpec
		want string // "" = valid
	}{
		{"crash", FaultEventSpec{At: Duration(time.Second), Action: FaultCrash, Nodes: []int{3}}, ""},
		{"heal alone", FaultEventSpec{Action: FaultHeal}, ""},
		{"all-links loss", FaultEventSpec{Action: FaultLink, Drop: 0.5}, ""},
		{"missing action", FaultEventSpec{At: Duration(time.Second)}, "action missing"},
		{"unknown action", FaultEventSpec{Action: "meteor"}, "unknown action"},
		{"negative time", FaultEventSpec{At: Duration(-time.Second), Action: FaultHeal}, "negative time"},
		{"crash without nodes", FaultEventSpec{Action: FaultCrash}, "no nodes"},
		{"crash observer", FaultEventSpec{Action: FaultCrash, Nodes: []int{0}}, "observer"},
		{"node out of range", FaultEventSpec{Action: FaultRestart, Nodes: []int{10}}, "out of range"},
		{"single group", FaultEventSpec{Action: FaultPartition, Groups: [][]int{{1, 2}}}, "at least 2"},
		{"overlapping groups", FaultEventSpec{Action: FaultPartition,
			Groups: [][]int{{0, 1}, {1, 2}}}, "two groups"},
		{"drop above one", FaultEventSpec{Action: FaultLink, Drop: 1.2}, "outside [0,1]"},
		{"negative reorder delay", FaultEventSpec{Action: FaultLink,
			ReorderDelay: Duration(-time.Millisecond)}, "negative delay"},
		{"link scope out of range", FaultEventSpec{Action: FaultLink,
			From: []int{12}}, "out of range"},
	}
	for _, tc := range cases {
		err := faulted(tc.ev).WithDefaults().Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFaultDefaultsFillReorderDelay(t *testing.T) {
	s := faulted(FaultEventSpec{Action: FaultLink, Reorder: 0.3}).WithDefaults()
	if got := s.Faults.Events[0].ReorderDelay; got != DefaultReorderDelay {
		t.Fatalf("reorder delay = %v, want default %v", got.Std(), DefaultReorderDelay.Std())
	}
	// Defaulting copies: the original spec's events are untouched.
	orig := faulted(FaultEventSpec{Action: FaultLink, Reorder: 0.3})
	_ = orig.WithDefaults()
	if orig.Faults.Events[0].ReorderDelay != 0 {
		t.Fatal("WithDefaults mutated the original fault events")
	}
}

func TestFaultSummary(t *testing.T) {
	s := faulted(
		FaultEventSpec{At: Duration(10 * time.Second), Action: FaultCrash, Nodes: []int{3}},
		FaultEventSpec{At: Duration(30 * time.Second), Action: FaultRestart, Nodes: []int{3}},
	)
	if got, want := s.Faults.Summary(), "crash@10s restart@30s"; got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
	var none *FaultSpec
	if none.Summary() != "" {
		t.Fatal("nil summary not empty")
	}
}

func TestChaosEntriesRegistered(t *testing.T) {
	for _, name := range []string{"chaos_crash", "chaos_partition", "chaos_majority", "chaos_lossy"} {
		e, ok := Get(name)
		if !ok {
			t.Errorf("entry %q missing", name)
			continue
		}
		if len(e.Cells) == 0 {
			t.Errorf("entry %q has no cells", name)
			continue
		}
		if e.Cells[0].Faults == nil || len(e.Cells[0].Faults.Events) == 0 {
			t.Errorf("entry %q cell has no fault plan", name)
		}
	}
}

func TestMatrixFaultAxesMergeIntoOneEvent(t *testing.T) {
	var s ScenarioSpec
	for _, kv := range [][2]string{{"drop", "0.1"}, {"dup", "0.05"}, {"reorder", "0.2"}} {
		if err := Set(&s, kv[0], kv[1]); err != nil {
			t.Fatalf("Set(%s): %v", kv[0], err)
		}
	}
	if len(s.Faults.Events) != 1 {
		t.Fatalf("events = %d, want the axes merged into 1", len(s.Faults.Events))
	}
	ev := s.Faults.Events[0]
	if ev.Drop != 0.1 || ev.Duplicate != 0.05 || ev.Reorder != 0.2 {
		t.Fatalf("merged event wrong: %+v", ev)
	}
}

func TestExpandCopiesFaults(t *testing.T) {
	base := faulted(FaultEventSpec{Action: FaultLink, Drop: 0.5})
	cells, err := Expand([]ScenarioSpec{base}, Axis{Key: "drop", Values: []string{"0.1", "0.2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Faults.Events[0].Drop != 0.1 || cells[1].Faults.Events[0].Drop != 0.2 {
		t.Fatalf("axis values not applied: %+v / %+v", cells[0].Faults, cells[1].Faults)
	}
	if base.Faults.Events[0].Drop != 0.5 {
		t.Fatal("Expand mutated the input cell's fault plan")
	}
}
