package metrics

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

func elem(i int) *wire.Element {
	e := &wire.Element{Size: 438}
	e.ID[0] = byte(i)
	e.ID[1] = byte(i >> 8)
	return e
}

// elemAt stamps the injection time the way workload.BuildElement does;
// Injected buckets by the element's own timestamp (see Recorder.Injected).
func elemAt(i int, at time.Duration) *wire.Element {
	e := elem(i)
	e.InjectedAt = int64(at)
	return e
}

func TestCommitRequiresQuorumProofs(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0) // f=1: commit needs 2 proofs
	es := []*wire.Element{elem(1), elem(2)}
	s.After(time.Second, func() {
		for _, e := range es {
			r.Injected(e)
		}
		r.EpochCreated(0, 1, es)
		r.ProofOnLedger(0, 1, 0)
	})
	s.After(2*time.Second, func() {
		if r.TotalCommitted() != 0 {
			t.Error("committed with a single proof")
		}
		r.ProofOnLedger(0, 1, 0) // duplicate signer ignored
		if r.TotalCommitted() != 0 {
			t.Error("duplicate signer counted")
		}
		r.ProofOnLedger(0, 1, 2) // second distinct signer: commit
	})
	s.Run()
	if r.TotalCommitted() != 2 {
		t.Fatalf("committed = %d, want 2", r.TotalCommitted())
	}
	if r.LastCommitTime() != 2*time.Second {
		t.Fatalf("commit time = %v, want 2s", r.LastCommitTime())
	}
	// Extra proofs after commit are ignored.
	r.ProofOnLedger(0, 1, 3)
	if r.TotalCommitted() != 2 {
		t.Fatal("post-commit proof recounted elements")
	}
}

func TestNonObserverIgnored(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0)
	r.Injected(elem(1))
	r.EpochCreated(3, 1, []*wire.Element{elem(1)}) // node 3 is not observer
	r.ProofOnLedger(3, 1, 0)
	r.ProofOnLedger(3, 1, 1)
	if r.TotalCommitted() != 0 {
		t.Fatal("non-observer observations counted")
	}
}

func TestEfficiencyAndAvgThroughput(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0)
	var es []*wire.Element
	s.After(0, func() {
		for i := 0; i < 100; i++ {
			e := elem(i)
			es = append(es, e)
			r.Injected(e)
		}
	})
	// Half commit at t=10s.
	s.After(10*time.Second, func() {
		r.EpochCreated(0, 1, es[:50])
		r.ProofOnLedger(0, 1, 1)
		r.ProofOnLedger(0, 1, 2)
	})
	// Rest at t=60s.
	s.After(60*time.Second, func() {
		r.EpochCreated(0, 2, es[50:])
		r.ProofOnLedger(0, 2, 1)
		r.ProofOnLedger(0, 2, 2)
	})
	s.Run()
	if eff := r.Efficiency(50 * time.Second); eff != 0.5 {
		t.Fatalf("eff@50 = %v, want 0.5", eff)
	}
	if eff := r.Efficiency(100 * time.Second); eff != 1.0 {
		t.Fatalf("eff@100 = %v, want 1.0", eff)
	}
	if avg := r.AvgThroughputUpTo(50 * time.Second); avg != 1.0 {
		t.Fatalf("avg tput = %v el/s, want 1.0 (50 el in 50 s)", avg)
	}
}

func TestCommitTimeAtFraction(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0)
	var es []*wire.Element
	s.After(0, func() {
		for i := 0; i < 100; i++ {
			e := elem(i)
			es = append(es, e)
			r.Injected(e)
		}
	})
	s.After(5*time.Second, func() {
		r.EpochCreated(0, 1, es[:30])
		r.ProofOnLedger(0, 1, 1)
		r.ProofOnLedger(0, 1, 2)
	})
	s.Run()
	if tm, ok := r.CommitTimeAtFraction(0); !ok || tm != 6*time.Second {
		t.Fatalf("first-element commit = %v/%v, want 6s bucket", tm, ok)
	}
	if tm, ok := r.CommitTimeAtFraction(0.30); !ok || tm != 6*time.Second {
		t.Fatalf("30%% commit = %v/%v", tm, ok)
	}
	if _, ok := r.CommitTimeAtFraction(0.50); ok {
		t.Fatal("50% reported committed with only 30 of 100")
	}
}

func TestThroughputSeriesRollingWindow(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0)
	// Commit 10 el/s for 20 s via one epoch per second.
	var all []*wire.Element
	for i := 0; i < 200; i++ {
		all = append(all, elem(i))
	}
	s.After(0, func() {
		for _, e := range all {
			r.Injected(e)
		}
	})
	for sec := 0; sec < 20; sec++ {
		sec := sec
		s.After(time.Duration(sec)*time.Second+500*time.Millisecond, func() {
			ep := uint64(sec + 1)
			r.EpochCreated(0, ep, all[sec*10:(sec+1)*10])
			r.ProofOnLedger(0, ep, 1)
			r.ProofOnLedger(0, ep, 2)
		})
	}
	s.Run()
	series := r.ThroughputSeries(9 * time.Second)
	if len(series) != 20 {
		t.Fatalf("series length = %d, want 20", len(series))
	}
	// Steady state: 10 el/s.
	last := series[len(series)-1]
	if last.Rate < 9.9 || last.Rate > 10.1 {
		t.Fatalf("steady rate = %v, want ~10", last.Rate)
	}
	if last.Time != 20*time.Second {
		t.Fatalf("last sample at %v, want 20s", last.Time)
	}
}

func TestStageTracking(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelStages, 4, 1, 0)
	e := elem(1)
	tx := &wire.Tx{Kind: wire.TxElement, Element: e}
	s.After(0, func() {
		r.Injected(e)
		r.RegisterCarrier(tx.MapKey(), []*wire.Element{e})
	})
	s.After(100*time.Millisecond, func() { r.TxEnteredMempool(0, tx) })
	s.After(200*time.Millisecond, func() { r.TxEnteredMempool(1, tx) }) // f+1 = 2
	s.After(250*time.Millisecond, func() { r.TxEnteredMempool(1, tx) }) // dup node ignored
	s.After(300*time.Millisecond, func() { r.TxEnteredMempool(2, tx) })
	s.After(400*time.Millisecond, func() { r.TxEnteredMempool(3, tx) }) // all
	s.After(2*time.Second, func() {
		r.BlockCommitted(0, &wire.Block{Height: 1, Txs: []*wire.Tx{tx}})
	})
	s.After(4*time.Second, func() {
		r.EpochCreated(0, 1, []*wire.Element{e})
		r.ProofOnLedger(0, 1, 1)
		r.ProofOnLedger(0, 1, 2)
	})
	s.Run()
	expect := map[Stage]time.Duration{
		StageFirstMempool:   100 * time.Millisecond,
		StageQuorumMempools: 200 * time.Millisecond,
		StageAllMempools:    400 * time.Millisecond,
		StageLedger:         2 * time.Second,
		StageCommitted:      4 * time.Second,
	}
	for stage, want := range expect {
		lats, frac := r.LatencyCDF(stage)
		if len(lats) != 1 || frac != 1.0 {
			t.Fatalf("%v: %d samples frac %v, want 1/1.0", stage, len(lats), frac)
		}
		if lats[0] != want {
			t.Fatalf("%v latency = %v, want %v", stage, lats[0], want)
		}
	}
}

func TestStageCDFOmitsUnreached(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelStages, 10, 4, 0)
	e1, e2 := elem(1), elem(2)
	tx1 := &wire.Tx{Kind: wire.TxElement, Element: e1}
	s.After(0, func() {
		r.Injected(e1)
		r.Injected(e2)
		r.RegisterCarrier(tx1.MapKey(), []*wire.Element{e1})
		r.TxEnteredMempool(0, tx1)
	})
	s.Run()
	lats, frac := r.LatencyCDF(StageFirstMempool)
	if len(lats) != 1 {
		t.Fatalf("samples = %d, want 1", len(lats))
	}
	if frac != 0.5 {
		t.Fatalf("reach fraction = %v, want 0.5", frac)
	}
}

func TestThroughputLevelSkipsStageWork(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0)
	e := elem(1)
	tx := &wire.Tx{Kind: wire.TxElement, Element: e}
	r.Injected(e)
	r.RegisterCarrier(tx.MapKey(), []*wire.Element{e})
	r.TxEnteredMempool(0, tx)
	lats, _ := r.LatencyCDF(StageFirstMempool)
	if lats != nil {
		t.Fatal("throughput level produced stage latencies")
	}
}

func TestLatencyQuantile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5}
	if q := LatencyQuantile(sorted, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := LatencyQuantile(sorted, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := LatencyQuantile(sorted, 0.5); q != 3 {
		t.Fatalf("q0.5 = %v", q)
	}
	if q := LatencyQuantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestStageStrings(t *testing.T) {
	names := map[Stage]string{
		StageFirstMempool:   "First mempool",
		StageQuorumMempools: "f+1 mempools",
		StageAllMempools:    "All mempools",
		StageLedger:         "Ledger",
		StageCommitted:      "f+1 epoch-proofs",
	}
	for st, want := range names {
		if st.String() != want {
			t.Fatalf("%d -> %q, want %q", st, st.String(), want)
		}
	}
}

// pairSum is the primitive behind coarsening and width reconciliation: it
// halves a series by adding adjacent buckets, carrying an odd tail as its
// own bucket, and must never lose counts.
func TestPairSum(t *testing.T) {
	got := pairSum([]uint64{1, 2, 3, 4, 5})
	want := []uint64{3, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("pairSum len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pairSum[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if out := pairSum(nil); len(out) != 0 {
		t.Fatalf("pairSum(nil) = %v, want empty", out)
	}
}

// When the horizon outgrows the bucket budget the recorder coarsens
// instead of growing: the width doubles (staying bucketWidth·2^k), the
// bucket count stays under the budget and no count is lost.
func TestBucketBudgetCoarsens(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0)
	r.SetBucketBudget(4)
	const events = 16
	for i := 0; i < events; i++ {
		at := time.Duration(i)*time.Second + 500*time.Millisecond
		s.After(at, func() { r.Injected(elemAt(i, at)) })
	}
	s.Run()
	// 16 one-second buckets under a budget of 4 force two doublings.
	if r.BucketWidth() != 4*time.Second {
		t.Fatalf("BucketWidth = %v after coarsening, want 4s", r.BucketWidth())
	}
	if len(r.injected) > 4 {
		t.Fatalf("injected series holds %d buckets, budget is 4", len(r.injected))
	}
	var sum uint64
	for _, c := range r.injected {
		sum += c
	}
	if sum != events || r.TotalInjected() != events {
		t.Fatalf("coarsening lost counts: bucket sum %d, total %d, want %d",
			sum, r.TotalInjected(), events)
	}
}

// A zero budget disables coarsening entirely: the width pins at one
// second no matter how long the run gets.
func TestBucketBudgetZeroDisablesCoarsening(t *testing.T) {
	s := sim.New(1)
	r := New(s, LevelThroughput, 4, 1, 0)
	r.SetBucketBudget(0)
	s.After(5000*time.Second, func() { r.Injected(elemAt(1, 5000*time.Second)) })
	s.Run()
	if r.BucketWidth() != time.Second {
		t.Fatalf("BucketWidth = %v with budget 0, want 1s", r.BucketWidth())
	}
	if len(r.injected) != 5001 {
		t.Fatalf("injected series holds %d buckets, want 5001", len(r.injected))
	}
}

// MergeBuckets reconciles series of different (power-of-two-related)
// widths by coarsening the finer one, preserves totals, pads length
// mismatches and treats a nil first series as the additive identity —
// without mutating its inputs (the sharded executor reuses per-shard
// slices after merging).
func TestMergeBucketsReconcilesWidths(t *testing.T) {
	b1 := []uint64{1, 2, 3, 4}
	b2 := []uint64{10, 20}
	w, out := MergeBuckets(time.Second, b1, 2*time.Second, b2)
	if w != 2*time.Second {
		t.Fatalf("merged width = %v, want 2s", w)
	}
	want := []uint64{13, 27} // pairSum(b1)=[3,7] + [10,20]
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merged[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	if b1[0] != 1 || b1[1] != 2 || b2[0] != 10 {
		t.Fatal("MergeBuckets mutated its inputs")
	}
	// Accumulator seeding: nil first series adopts the other's width.
	if w, out := MergeBuckets(0, nil, 2*time.Second, b2); w != 2*time.Second ||
		len(out) != 2 || out[0] != 10 || out[1] != 20 {
		t.Fatalf("nil identity merge = (%v, %v)", w, out)
	}
	// Shorter first series is padded, not truncated.
	if _, out := MergeBuckets(time.Second, []uint64{1}, time.Second, []uint64{1, 2, 3}); len(out) != 3 ||
		out[0] != 2 || out[2] != 3 {
		t.Fatalf("length padding merge = %v", out)
	}
}
