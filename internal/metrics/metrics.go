// Package metrics instruments a Setchain experiment with the measurements
// the paper reports: throughput over time (rolling averages of committed
// elements), efficiency (committed/added at 50/75/100 s), commit-time
// percentiles (first element, 10%..50%), and the five-stage latency CDFs of
// Fig. 4 (first mempool, f+1 mempools, all mempools, ledger, f+1
// epoch-proofs).
//
// Two levels are supported: LevelThroughput keeps only counters and time
// buckets (cheap enough for multi-million-element runs), while LevelStages
// additionally tracks per-element stage timestamps for latency CDFs.
//
// See DESIGN.md §2 (layering).
package metrics

import (
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Level selects the tracking granularity.
type Level int

// Tracking levels.
const (
	// LevelThroughput records injected/committed counts in time buckets.
	LevelThroughput Level = iota
	// LevelStages additionally tracks per-element latency stages.
	LevelStages
)

// Stage identifies one of the paper's five latency milestones.
type Stage int

// Latency stages in pipeline order (Fig. 4).
const (
	StageFirstMempool Stage = iota
	StageQuorumMempools
	StageAllMempools
	StageLedger
	StageCommitted
	numStages
)

// String names the stage as in Fig. 4's legend.
func (s Stage) String() string {
	switch s {
	case StageFirstMempool:
		return "First mempool"
	case StageQuorumMempools:
		return "f+1 mempools"
	case StageAllMempools:
		return "All mempools"
	case StageLedger:
		return "Ledger"
	case StageCommitted:
		return "f+1 epoch-proofs"
	default:
		return "unknown"
	}
}

const bucketWidth = time.Second

// defaultBucketBudget caps the per-series bucket count. When a run's
// horizon outgrows the budget the recorder coarsens: adjacent buckets are
// pair-summed and the width doubles (widths are always bucketWidth·2^k),
// keeping memory O(budget) for arbitrarily long soak runs. Runs shorter
// than the budget — every pre-soak scenario — never coarsen, so their
// bucket math is bit-identical to the uncapped recorder.
const defaultBucketBudget = 1024

// unset marks a stage timestamp that has not occurred.
const unset = time.Duration(-1)

type txStageRec struct {
	elems   []wire.ElementID
	count   int // number of element copies (modeled counting when ids untracked)
	mempool map[wire.NodeID]bool
	first   time.Duration
	quorum  time.Duration
	all     time.Duration
	ledger  time.Duration
}

type elemRec struct {
	injected  time.Duration
	committed time.Duration
}

// Recorder accumulates measurements for one experiment run.
type Recorder struct {
	sim      *sim.Simulator
	level    Level
	n        int
	f        int
	observer wire.NodeID

	injected  []uint64 // time buckets, bw wide (per-second until coarsened)
	committed []uint64
	bw        time.Duration // current bucket width (bucketWidth·2^k)
	budget    int           // max buckets per series; 0 = unbounded
	totalInj  uint64
	totalComm uint64

	// Checkpoint accounting (CheckpointSealed).
	ckptSeals    uint64
	lastCkpt     checkpoint.Checkpoint
	foldedEpochs uint64 // highest epoch folded out of the per-epoch maps
	foldedComm   uint64 // committed elements folded (sum of dropped sizes)

	epochElems   map[uint64]int
	epochIDs     map[uint64][]wire.ElementID
	proofSigners map[uint64]map[wire.NodeID]bool
	epochDone    map[uint64]bool

	txs   map[wire.TxKey]*txStageRec
	elems map[wire.ElementID]*elemRec

	lastCommit time.Duration
}

// New creates a recorder. n is the server count, f the Setchain fault bound
// (commit requires f+1 epoch-proofs on the ledger); observer is the correct
// server whose epoch/proof observations define global commit times.
func New(s *sim.Simulator, level Level, n, f int, observer wire.NodeID) *Recorder {
	return &Recorder{
		sim:          s,
		level:        level,
		n:            n,
		f:            f,
		observer:     observer,
		bw:           bucketWidth,
		budget:       defaultBucketBudget,
		epochElems:   make(map[uint64]int),
		epochIDs:     make(map[uint64][]wire.ElementID),
		proofSigners: make(map[uint64]map[wire.NodeID]bool),
		epochDone:    make(map[uint64]bool),
		txs:          make(map[wire.TxKey]*txStageRec),
		elems:        make(map[wire.ElementID]*elemRec),
	}
}

// SetBucketBudget overrides the bucket-count cap (0 disables coarsening).
// Call before the run starts.
func (r *Recorder) SetBucketBudget(n int) { r.budget = n }

func (r *Recorder) bucket(slice *[]uint64, t time.Duration) {
	idx := int(t / r.bw)
	for r.budget > 0 && idx >= r.budget {
		r.coarsen()
		idx = int(t / r.bw)
	}
	for len(*slice) <= idx {
		*slice = append(*slice, 0)
	}
	(*slice)[idx]++
}

// coarsen halves both series in place by pair-summing and doubles the
// width. Both series share one width so merged readouts stay consistent.
func (r *Recorder) coarsen() {
	r.injected = pairSum(r.injected)
	r.committed = pairSum(r.committed)
	r.bw *= 2
}

func pairSum(b []uint64) []uint64 {
	out := b[:0]
	for i := 0; i < len(b); i += 2 {
		v := b[i]
		if i+1 < len(b) {
			v += b[i+1]
		}
		out = append(out, v)
	}
	return out
}

// Injected records a client creating an element. The timestamp comes from
// the element itself (stamped by workload.BuildElement at creation, always
// the instant Injected is called) rather than r.sim.Now(): in a partitioned
// run injection happens on the home queue while r.sim is the observer's
// partition clock, which may lag the barrier time.
func (r *Recorder) Injected(e *wire.Element) {
	now := time.Duration(e.InjectedAt)
	r.totalInj++
	r.bucket(&r.injected, now)
	if r.level >= LevelStages {
		r.elems[e.ID] = &elemRec{injected: now, committed: unset}
	}
}

// RegisterCarrier associates a ledger transaction key with the elements it
// carries (the element itself for Vanilla; the batch's elements for
// Compresschain/Hashchain). The origin server calls this when it creates
// the transaction. Stage timestamps recorded for the transaction then apply
// to all carried elements.
func (r *Recorder) RegisterCarrier(txKey wire.TxKey, elems []*wire.Element) {
	if r.level < LevelStages {
		return
	}
	rec := r.txs[txKey]
	if rec == nil {
		rec = &txStageRec{
			mempool: make(map[wire.NodeID]bool),
			first:   unset, quorum: unset, all: unset, ledger: unset,
		}
		r.txs[txKey] = rec
	}
	for _, e := range elems {
		rec.elems = append(rec.elems, e.ID)
	}
	rec.count = len(rec.elems)
}

// TxEnteredMempool is wired to each node's mempool admission hook.
func (r *Recorder) TxEnteredMempool(node wire.NodeID, tx *wire.Tx) {
	if r.level < LevelStages {
		return
	}
	rec := r.txs[tx.MapKey()]
	if rec == nil {
		return // not a carrier of tracked elements (e.g. proof tx)
	}
	if rec.mempool[node] {
		return
	}
	rec.mempool[node] = true
	now := r.sim.Now()
	switch len(rec.mempool) {
	case 1:
		rec.first = now
	case r.f + 1:
		rec.quorum = now
	}
	if len(rec.mempool) == r.n {
		rec.all = now
	}
}

// BlockCommitted records ledger arrival for every carried element in the
// block. Call it only for the observer node's commits.
func (r *Recorder) BlockCommitted(node wire.NodeID, b *wire.Block) {
	if node != r.observer || r.level < LevelStages {
		return
	}
	now := r.sim.Now()
	for _, tx := range b.Txs {
		if rec := r.txs[tx.MapKey()]; rec != nil && rec.ledger == unset {
			rec.ledger = now
		}
	}
}

// EpochCreated records the observer server assigning elements to an epoch.
func (r *Recorder) EpochCreated(node wire.NodeID, epoch uint64, elems []*wire.Element) {
	if node != r.observer {
		return
	}
	r.epochElems[epoch] = len(elems)
	if r.level >= LevelStages {
		ids := make([]wire.ElementID, len(elems))
		for i, e := range elems {
			ids[i] = e.ID
		}
		r.epochIDs[epoch] = ids
	}
}

// ProofOnLedger records the observer extracting a valid epoch-proof from a
// committed block. When an epoch accumulates f+1 distinct signers its
// elements become committed (the paper's commit definition).
func (r *Recorder) ProofOnLedger(node wire.NodeID, epoch uint64, signer wire.NodeID) {
	if node != r.observer || r.epochDone[epoch] {
		return
	}
	signers := r.proofSigners[epoch]
	if signers == nil {
		signers = make(map[wire.NodeID]bool)
		r.proofSigners[epoch] = signers
	}
	if signers[signer] {
		return
	}
	signers[signer] = true
	if len(signers) < r.f+1 {
		return
	}
	r.epochDone[epoch] = true
	now := r.sim.Now()
	r.lastCommit = now
	count := r.epochElems[epoch]
	r.totalComm += uint64(count)
	for i := 0; i < count; i++ {
		r.bucket(&r.committed, now)
	}
	if r.level >= LevelStages {
		for _, id := range r.epochIDs[epoch] {
			if er := r.elems[id]; er != nil && er.committed == unset {
				er.committed = now
			}
		}
	}
}

// CheckpointSealed records the observer sealing an epoch checkpoint.
// When the deployment prunes, the recorder folds its own settled state in
// lockstep: per-epoch maps for epochs at or below the checkpoint horizon
// are dropped (their committed counts are already in the totals), keeping
// the recorder's epoch-keyed memory bounded by the retention window. The
// folded totals stay available via FoldedEpochs/FoldedCommitted so the
// invariant checker can reconcile them against the checkpoint's
// cumulative element count.
func (r *Recorder) CheckpointSealed(node wire.NodeID, ck checkpoint.Checkpoint, prune bool) {
	if node != r.observer {
		return
	}
	r.ckptSeals++
	r.lastCkpt = ck
	if !prune {
		return
	}
	for ep := r.foldedEpochs + 1; ep <= ck.Epoch; ep++ {
		if r.epochDone[ep] {
			r.foldedComm += uint64(r.epochElems[ep])
		}
		delete(r.epochElems, ep)
		delete(r.epochIDs, ep)
		delete(r.proofSigners, ep)
		delete(r.epochDone, ep)
	}
	r.foldedEpochs = ck.Epoch
}

// CheckpointSeals returns how many checkpoints the observer sealed.
func (r *Recorder) CheckpointSeals() uint64 { return r.ckptSeals }

// LastCheckpoint returns the observer's most recent checkpoint (zero value
// when none sealed).
func (r *Recorder) LastCheckpoint() checkpoint.Checkpoint { return r.lastCkpt }

// FoldedEpochs returns the highest epoch folded below the prune horizon.
func (r *Recorder) FoldedEpochs() uint64 { return r.foldedEpochs }

// FoldedCommitted returns how many committed elements were folded below
// the prune horizon (they no longer appear in CommittedEpochSizes).
func (r *Recorder) FoldedCommitted() uint64 { return r.foldedComm }

// CommittedEpochSizes returns, for every epoch the observer saw reach f+1
// epoch-proofs on the ledger, the element count the observer recorded at
// epoch creation. The invariant checker replays this against the servers'
// final histories (no committed element lost). Epochs folded below a
// prune horizon are absent — FoldedEpochs/FoldedCommitted account for
// them in aggregate.
func (r *Recorder) CommittedEpochSizes() map[uint64]int {
	out := make(map[uint64]int, len(r.epochDone))
	for ep := range r.epochDone {
		out[ep] = r.epochElems[ep]
	}
	return out
}

// TotalInjected returns the number of elements clients created.
func (r *Recorder) TotalInjected() uint64 { return r.totalInj }

// TotalCommitted returns elements whose epoch has f+1 proofs on the ledger.
func (r *Recorder) TotalCommitted() uint64 { return r.totalComm }

// LastCommitTime returns when the most recent epoch commit happened.
func (r *Recorder) LastCommitTime() time.Duration { return r.lastCommit }

// BucketWidth returns the current width of the recorder's time buckets —
// one second until the bucket budget forces coarsening.
func (r *Recorder) BucketWidth() time.Duration { return r.bw }

// CommittedPerSecond returns a copy of the committed-element buckets.
// Bucket i covers virtual time [i·w, (i+1)·w) with w = BucketWidth() —
// one second for any run short enough to never coarsen. Aggregators — the
// sharded executor merges several recorders' buckets via MergeBuckets —
// use it to compute global series and commit-time fractions with the same
// bucket semantics a single recorder has.
func (r *Recorder) CommittedPerSecond() []uint64 {
	return append([]uint64(nil), r.committed...)
}

// CommittedBy returns how many elements were committed at or before t.
func (r *Recorder) CommittedBy(t time.Duration) uint64 {
	return BucketCommittedBy(r.bw, r.committed, t)
}

// BucketCommittedBy is CommittedBy over a caller-held bucket slice of the
// given width (bucket i covers [i·w, (i+1)·w)). Aggregators — the sharded
// executor merges several recorders' buckets — share this one
// implementation so their checkpoint semantics cannot drift from a
// single recorder's.
func BucketCommittedBy(width time.Duration, buckets []uint64, t time.Duration) uint64 {
	var sum uint64
	limit := int(t / width)
	for i, c := range buckets {
		if i > limit {
			break
		}
		sum += c
	}
	return sum
}

// MergeBuckets element-sums two bucket series that may have different
// (power-of-two-related) widths: the finer series is coarsened to the
// wider width first — exact, because widths are always bucketWidth·2^k —
// then the series are added. Returns the common width and merged slice.
// A nil first series acts as the additive identity (accumulator seeding).
func MergeBuckets(w1 time.Duration, b1 []uint64, w2 time.Duration, b2 []uint64) (time.Duration, []uint64) {
	if len(b1) == 0 && w1 == 0 {
		w1 = w2
	}
	for w1 < w2 {
		b1 = pairSum(append([]uint64(nil), b1...))
		w1 *= 2
	}
	for w2 < w1 {
		b2 = pairSum(append([]uint64(nil), b2...))
		w2 *= 2
	}
	out := append([]uint64(nil), b1...)
	for len(out) < len(b2) {
		out = append(out, 0)
	}
	for i, c := range b2 {
		out[i] += c
	}
	return w1, out
}

// Efficiency returns committed-by-t divided by total added (the paper's
// efficiency metric, computed at 50/75/100 s).
func (r *Recorder) Efficiency(t time.Duration) float64 {
	if r.totalInj == 0 {
		return 0
	}
	return float64(r.CommittedBy(t)) / float64(r.totalInj)
}

// AvgThroughputUpTo returns committed elements per second averaged over
// [0, t] (Table 2's metric).
func (r *Recorder) AvgThroughputUpTo(t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(r.CommittedBy(t)) / t.Seconds()
}

// SeriesPoint is one sample of a rolling-average throughput curve.
type SeriesPoint struct {
	Time time.Duration
	Rate float64 // elements/second
}

// ThroughputSeries returns the rolling average commit rate with the given
// window (the paper plots a 9 s window), sampled once per bucket.
func (r *Recorder) ThroughputSeries(window time.Duration) []SeriesPoint {
	return BucketSeries(r.bw, r.committed, window)
}

// BucketSeries is ThroughputSeries over a caller-held bucket slice of the
// given width (see BucketCommittedBy for why the bucket math lives here).
func BucketSeries(width time.Duration, buckets []uint64, window time.Duration) []SeriesPoint {
	w := int(window / width)
	if w < 1 {
		w = 1
	}
	var out []SeriesPoint
	var sum uint64
	for i := 0; i < len(buckets); i++ {
		sum += buckets[i]
		if i >= w {
			sum -= buckets[i-w]
		}
		span := w
		if i+1 < w {
			span = i + 1
		}
		out = append(out, SeriesPoint{
			Time: time.Duration(i+1) * width,
			Rate: float64(sum) / (time.Duration(span) * width).Seconds(),
		})
	}
	return out
}

// CommitTimeAtFraction returns the virtual time by which the given fraction
// of all injected elements had committed, and ok=false if never reached
// (Appendix F's commit-time metric).
func (r *Recorder) CommitTimeAtFraction(frac float64) (time.Duration, bool) {
	return BucketTimeAtFraction(r.bw, r.committed, r.totalInj, frac)
}

// BucketTimeAtFraction is CommitTimeAtFraction over a caller-held bucket
// slice of the given width and its injected total (see BucketCommittedBy
// for why the bucket math lives here).
func BucketTimeAtFraction(width time.Duration, buckets []uint64, total uint64, frac float64) (time.Duration, bool) {
	target := uint64(frac * float64(total))
	if target == 0 {
		target = 1
	}
	var sum uint64
	for i, c := range buckets {
		sum += c
		if sum >= target {
			return time.Duration(i+1) * width, true
		}
	}
	return 0, false
}

// LatencyCDF returns the sorted per-element latencies from injection to the
// given stage. Elements that never reached the stage are omitted; frac
// reports the fraction that did (the CDF's terminal value).
func (r *Recorder) LatencyCDF(stage Stage) (latencies []time.Duration, frac float64) {
	if r.level < LevelStages || r.totalInj == 0 {
		return nil, 0
	}
	switch stage {
	case StageCommitted:
		for _, er := range r.elems {
			if er.committed != unset {
				latencies = append(latencies, er.committed-er.injected)
			}
		}
	default:
		for _, rec := range r.txs {
			var t time.Duration
			switch stage {
			case StageFirstMempool:
				t = rec.first
			case StageQuorumMempools:
				t = rec.quorum
			case StageAllMempools:
				t = rec.all
			case StageLedger:
				t = rec.ledger
			}
			if t == unset {
				continue
			}
			for _, id := range rec.elems {
				if er := r.elems[id]; er != nil {
					latencies = append(latencies, t-er.injected)
				}
			}
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies, float64(len(latencies)) / float64(r.totalInj)
}

// LatencyQuantile returns the q-quantile (0..1) of a sorted latency slice.
func LatencyQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
