// Package batchstore implements Hashchain's hash-reversal substrate: a
// per-server store mapping batch hashes to batch contents (the pseudocode's
// hash_to_batch map plus Register_batch), and the request/response message
// types servers exchange to recover a batch from its hash (Request_batch).
//
// The store is the distributed service the paper identifies as Hashchain's
// bottleneck: every server must obtain every batch to validate it before
// co-signing its hash, so batches flow origin → n-1 peers for every
// collector flush.
//
// See DESIGN.md §3 (algorithm refinements).
package batchstore

import (
	"repro/internal/wire"
)

// Store holds batches by hash for one server.
type Store struct {
	byHash map[wire.Digest]*wire.Batch

	// Stats.
	registered uint64
	hits       uint64
	misses     uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{byHash: make(map[wire.Digest]*wire.Batch)}
}

// Register saves a batch under its hash (Register_batch in the paper).
// Re-registering the same hash is a no-op.
func (s *Store) Register(hash []byte, b *wire.Batch) {
	key := wire.DigestOf(hash)
	if _, ok := s.byHash[key]; ok {
		return
	}
	s.byHash[key] = b
	s.registered++
}

// Get returns the batch for a hash, or nil (the paper's
// hash_to_batch[h] lookup).
func (s *Store) Get(hash []byte) *wire.Batch {
	b, ok := s.byHash[wire.DigestOf(hash)]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return b
}

// Has reports whether the hash is registered without touching hit counters.
func (s *Store) Has(hash []byte) bool {
	_, ok := s.byHash[wire.DigestOf(hash)]
	return ok
}

// Len returns the number of stored batches.
func (s *Store) Len() int { return len(s.byHash) }

// Stats returns (registered, hits, misses).
func (s *Store) Stats() (registered, hits, misses uint64) {
	return s.registered, s.hits, s.misses
}

// Request asks the receiver for the batch whose hash is Hash. ReqID lets
// the requester correlate the response and detect late replies.
type Request struct {
	Hash  []byte
	ReqID uint64
}

// RequestWireSize is the bytes a batch request occupies on the network.
const RequestWireSize = 80

// Response carries the batch (or Found=false if the receiver does not have
// it — a Byzantine server may also simply never respond).
type Response struct {
	Hash  []byte
	ReqID uint64
	Found bool
	Batch *wire.Batch
}

// ResponseWireSize returns the response's network footprint.
func (r *Response) ResponseWireSize() int {
	if !r.Found || r.Batch == nil {
		return 96
	}
	return 96 + r.Batch.RawSize()
}
