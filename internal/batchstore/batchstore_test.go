package batchstore

import (
	"testing"

	"repro/internal/wire"
)

func batchOf(n int) *wire.Batch {
	b := &wire.Batch{}
	for i := 0; i < n; i++ {
		e := &wire.Element{Size: 438}
		e.ID[0] = byte(i)
		b.Elements = append(b.Elements, e)
	}
	return b
}

func TestRegisterAndGet(t *testing.T) {
	s := New()
	h := []byte("hash-1")
	b := batchOf(3)
	s.Register(h, b)
	if got := s.Get(h); got != b {
		t.Fatal("Get returned wrong batch")
	}
	if s.Get([]byte("missing")) != nil {
		t.Fatal("missing hash returned a batch")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	reg, hits, misses := s.Stats()
	if reg != 1 || hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", reg, hits, misses)
	}
}

func TestReRegisterIsNoop(t *testing.T) {
	s := New()
	h := []byte("h")
	first := batchOf(1)
	s.Register(h, first)
	s.Register(h, batchOf(9))
	if s.Get(h) != first {
		t.Fatal("re-register replaced the original batch")
	}
	reg, _, _ := s.Stats()
	if reg != 1 {
		t.Fatalf("registered = %d, want 1", reg)
	}
}

func TestHasDoesNotTouchCounters(t *testing.T) {
	s := New()
	s.Register([]byte("h"), batchOf(1))
	if !s.Has([]byte("h")) || s.Has([]byte("x")) {
		t.Fatal("Has wrong")
	}
	_, hits, misses := s.Stats()
	if hits != 0 || misses != 0 {
		t.Fatal("Has touched hit/miss counters")
	}
}

func TestResponseWireSize(t *testing.T) {
	b := batchOf(10)
	r := &Response{Hash: []byte("h"), Found: true, Batch: b}
	if got := r.ResponseWireSize(); got != 96+b.RawSize() {
		t.Fatalf("size = %d, want %d", got, 96+b.RawSize())
	}
	empty := &Response{Found: false}
	if empty.ResponseWireSize() != 96 {
		t.Fatal("not-found response size wrong")
	}
}
