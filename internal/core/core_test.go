package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/netsim"
	"repro/internal/setcrypto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// deployFull builds an n-server Full-mode deployment with real ed25519 and
// a LAN network.
func deployFull(seed int64, n int, opts core.Options) (*sim.Simulator, *core.Deployment) {
	s := sim.New(seed)
	opts.Mode = core.Full
	d := core.Deploy(s, n, ledger.Config{
		Net:   netsim.DefaultLANConfig(),
		Suite: setcrypto.Ed25519Suite{},
	}, opts, nil)
	d.Start()
	return s, d
}

// addElements injects count elements round-robin through the deployment's
// clients at 50ms spacing, returning the created ids.
func addElements(s *sim.Simulator, d *core.Deployment, count int) []wire.ElementID {
	ids := make([]wire.ElementID, 0, count)
	for i := 0; i < count; i++ {
		i := i
		cl := d.Clients[i%len(d.Clients)]
		e := cl.NewElement([]byte(fmt.Sprintf("payload-%d", i)))
		ids = append(ids, e.ID)
		s.After(time.Duration(i)*50*time.Millisecond, func() {
			if err := d.Servers[i%len(d.Servers)].Add(e); err != nil {
				panic(err)
			}
		})
	}
	return ids
}

// checkProperties asserts the paper's safety properties (1, 5, 6, 7) on the
// current state and, when liveness is expected (quiesced run), properties
// 2/3/4/8 for the given element ids.
func checkProperties(t *testing.T, d *core.Deployment, ids []wire.ElementID, expectLive bool) {
	t.Helper()
	f := d.F()
	known := make(map[wire.ElementID]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	snaps := make([]core.Snapshot, len(d.Servers))
	for i, srv := range d.Servers {
		snaps[i] = srv.Get()
	}
	for si, snap := range snaps {
		// Property 1 (Consistent-Sets): H[i] ⊆ T.
		for _, ep := range snap.History {
			for _, e := range ep.Elements {
				if _, ok := snap.TheSet[e.ID]; !ok {
					t.Fatalf("server %d: epoch %d element %v not in the_set", si, ep.Number, e.ID)
				}
			}
		}
		// Property 5 (Unique-Epoch): epochs are disjoint.
		seen := make(map[wire.ElementID]uint64)
		for _, ep := range snap.History {
			for _, e := range ep.Elements {
				if prev, dup := seen[e.ID]; dup {
					t.Fatalf("server %d: element %v in epochs %d and %d", si, e.ID, prev, ep.Number)
				}
				seen[e.ID] = ep.Number
			}
		}
		// Property 7 (Add-before-Get): everything in the_set was added by
		// a known client (no fabricated elements).
		for id := range snap.TheSet {
			if !known[id] {
				t.Fatalf("server %d: the_set contains unknown element %v", si, id)
			}
		}
	}
	// Property 6 (Consistent-Gets): common history prefixes agree.
	for i := 1; i < len(snaps); i++ {
		a, b := snaps[0], snaps[i]
		m := len(a.History)
		if len(b.History) < m {
			m = len(b.History)
		}
		for k := 0; k < m; k++ {
			ea, eb := a.History[k], b.History[k]
			if len(ea.Elements) != len(eb.Elements) {
				t.Fatalf("servers 0/%d: epoch %d sizes differ: %d vs %d",
					i, k+1, len(ea.Elements), len(eb.Elements))
			}
			for j := range ea.Elements {
				if ea.Elements[j].ID != eb.Elements[j].ID {
					t.Fatalf("servers 0/%d: epoch %d element %d differs", i, k+1, j)
				}
			}
		}
	}
	if !expectLive {
		return
	}
	for si, snap := range snaps {
		// Properties 2/3/4 (Add-Get-Local, Get-Global, Eventual-Get):
		// every added element is in every correct server's history.
		inHist := make(map[wire.ElementID]bool)
		for _, ep := range snap.History {
			for _, e := range ep.Elements {
				inHist[e.ID] = true
			}
		}
		for _, id := range ids {
			if !inHist[id] {
				t.Fatalf("server %d: element %v never reached an epoch", si, id)
			}
		}
		// Property 8 (Valid-Epoch): every epoch has >= f+1 valid proofs.
		cl := d.Clients[0]
		for _, ep := range snap.History {
			if got := cl.CountValidProofs(snap, ep.Number); got < f+1 {
				t.Fatalf("server %d: epoch %d has %d valid proofs, want >= %d",
					si, ep.Number, got, f+1)
			}
		}
	}
}

func runQuiesce(s *sim.Simulator, d *core.Deployment, until time.Duration) {
	s.RunUntil(until)
	d.Drain()
	s.RunUntil(until + 30*time.Second)
}

func TestVanillaEndToEnd(t *testing.T) {
	s, d := deployFull(1, 4, core.Options{Algorithm: core.Vanilla})
	ids := addElements(s, d, 40)
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	checkProperties(t, d, ids, true)
}

func TestCompresschainEndToEnd(t *testing.T) {
	s, d := deployFull(2, 4, core.Options{Algorithm: core.Compresschain, CollectorLimit: 10})
	ids := addElements(s, d, 40)
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	checkProperties(t, d, ids, true)
}

func TestHashchainEndToEnd(t *testing.T) {
	s, d := deployFull(3, 4, core.Options{Algorithm: core.Hashchain, CollectorLimit: 10})
	ids := addElements(s, d, 40)
	runQuiesce(s, d, 30*time.Second)
	d.Stop()
	checkProperties(t, d, ids, true)
	// The hash-reversal service was exercised: peers fetched batches.
	fetched := uint64(0)
	for _, srv := range d.Servers {
		st := srv.HashchainStats()
		fetched += st.RequestsServed
	}
	if fetched == 0 {
		t.Fatal("no Request_batch traffic despite multi-server Hashchain")
	}
}

func TestHashchainSevenServers(t *testing.T) {
	s, d := deployFull(4, 7, core.Options{Algorithm: core.Hashchain, CollectorLimit: 20})
	ids := addElements(s, d, 70)
	runQuiesce(s, d, 30*time.Second)
	d.Stop()
	checkProperties(t, d, ids, true)
}

func TestClientVerifyCommitted(t *testing.T) {
	s, d := deployFull(5, 4, core.Options{Algorithm: core.Hashchain, CollectorLimit: 10})
	cl := d.Clients[0]
	e := cl.NewElement([]byte("my diploma"))
	s.After(time.Second, func() {
		if err := d.Servers[1].Add(e); err != nil {
			t.Errorf("Add: %v", err)
		}
	})
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	// The client queries a single (different) server and verifies with f+1
	// epoch-proofs, per the paper's single-server interaction model.
	snap := d.Servers[2].Get()
	epoch, err := cl.VerifyCommitted(snap, e.ID)
	if err != nil {
		t.Fatalf("VerifyCommitted: %v", err)
	}
	if epoch == 0 {
		t.Fatal("epoch = 0")
	}
	// An unknown element is not committed.
	var bogus wire.ElementID
	bogus[0] = 0xFF
	if _, err := cl.VerifyCommitted(snap, bogus); err == nil {
		t.Fatal("unknown element verified as committed")
	}
}

func TestClientRejectsTamperedEpoch(t *testing.T) {
	s, d := deployFull(6, 4, core.Options{Algorithm: core.Compresschain, CollectorLimit: 5})
	cl := d.Clients[0]
	e := cl.NewElement([]byte("genuine"))
	s.After(time.Second, func() { _ = d.Servers[0].Add(e) })
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	snap := d.Servers[0].Get()
	epoch, err := cl.VerifyCommitted(snap, e.ID)
	if err != nil {
		t.Fatalf("VerifyCommitted: %v", err)
	}
	// A Byzantine server forging history content cannot keep the proofs
	// valid: tamper with the epoch the element landed in.
	forged := cl.NewElement([]byte("forged"))
	tampered := snap
	hist := append([]*core.Epoch(nil), snap.History...)
	ep := *hist[epoch-1]
	ep.Elements = append(append([]*wire.Element(nil), ep.Elements...), forged)
	hist[epoch-1] = &ep
	tampered.History = hist
	if _, err := cl.VerifyCommitted(tampered, forged.ID); err == nil {
		t.Fatal("client accepted a tampered epoch")
	}
}

func TestInvalidAndDuplicateAdds(t *testing.T) {
	s, d := deployFull(7, 4, core.Options{Algorithm: core.Vanilla})
	cl := d.Clients[0]
	good := cl.NewElement([]byte("ok"))
	s.After(0, func() {
		if err := d.Servers[0].Add(good); err != nil {
			t.Errorf("valid add failed: %v", err)
		}
		if err := d.Servers[0].Add(good); err != core.ErrDuplicate {
			t.Errorf("duplicate add: err = %v, want ErrDuplicate", err)
		}
		bad := cl.NewElement([]byte("tampered"))
		bad.Payload = []byte("evil") // breaks the signature
		if err := d.Servers[0].Add(bad); err != core.ErrInvalidElement {
			t.Errorf("invalid add: err = %v, want ErrInvalidElement", err)
		}
	})
	s.RunUntil(time.Second)
	d.Stop()
}

func TestByzantineBogusElementsFiltered(t *testing.T) {
	// A Byzantine server injects invalid elements into its batches; correct
	// servers must filter them during FinalizeBlock (paper §3).
	for _, alg := range []core.Algorithm{core.Compresschain, core.Hashchain} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			s, d := deployFull(8, 4, core.Options{Algorithm: alg, CollectorLimit: 10})
			d.Servers[3].SetBehavior(&core.Behavior{InjectBogusElements: 3})
			ids := addElements(s, d, 40)
			runQuiesce(s, d, 30*time.Second)
			d.Stop()
			// Correct servers' epochs contain only known valid elements.
			known := make(map[wire.ElementID]bool)
			for _, id := range ids {
				known[id] = true
			}
			for si := 0; si < 3; si++ {
				snap := d.Servers[si].Get()
				for _, ep := range snap.History {
					for _, e := range ep.Elements {
						if !known[e.ID] {
							t.Fatalf("server %d epoch %d contains Byzantine junk %v",
								si, ep.Number, e.ID)
						}
					}
				}
			}
		})
	}
}

func TestHashchainByzantineRefusesToServe(t *testing.T) {
	// The Byzantine origin never serves its batches: they gather only one
	// signature and never consolidate. Correct servers' elements are
	// unaffected.
	s, d := deployFull(9, 4, core.Options{Algorithm: core.Hashchain, CollectorLimit: 10})
	d.Servers[3].SetBehavior(&core.Behavior{
		RefuseServe:         func(int, []byte) bool { return true },
		InjectBogusElements: 2, // it also creates its own junk batches
	})
	var ids []wire.ElementID
	for i := 0; i < 30; i++ {
		i := i
		cl := d.Clients[i%3]
		e := cl.NewElement([]byte(fmt.Sprintf("v-%d", i)))
		ids = append(ids, e.ID)
		s.After(time.Duration(i)*100*time.Millisecond, func() {
			_ = d.Servers[i%3].Add(e) // only correct servers
		})
	}
	runQuiesce(s, d, 40*time.Second)
	d.Stop()
	checkProperties(t, d, ids, false)
	// All correct-server elements still reached epochs everywhere correct.
	for si := 0; si < 3; si++ {
		snap := d.Servers[si].Get()
		inHist := make(map[wire.ElementID]bool)
		for _, ep := range snap.History {
			for _, e := range ep.Elements {
				inHist[e.ID] = true
			}
		}
		for _, id := range ids {
			if !inHist[id] {
				t.Fatalf("server %d: element %v lost to Byzantine refusal", si, id)
			}
		}
	}
}

func TestHashchainSelectiveServingKeepsEpochsConsistent(t *testing.T) {
	// The Byzantine origin serves only server 1. Server 1 co-signs, pushing
	// the hash to f+1 signatures; servers 0 and 2 must then recover the
	// batch via retries (from server 1) to consolidate at the same ledger
	// position — the ordering subtlety DESIGN.md documents.
	s, d := deployFull(10, 4, core.Options{
		Algorithm:      core.Hashchain,
		CollectorLimit: 5,
		RequestTimeout: 500 * time.Millisecond,
		RetryBackoff:   200 * time.Millisecond,
	})
	d.Servers[3].SetBehavior(&core.Behavior{
		RefuseServe: func(to int, _ []byte) bool { return to != 1 },
	})
	var ids []wire.ElementID
	// Elements injected at the Byzantine server's clients still flow
	// through its (honestly built) batches.
	for i := 0; i < 20; i++ {
		i := i
		cl := d.Clients[i%4]
		e := cl.NewElement([]byte(fmt.Sprintf("sel-%d", i)))
		ids = append(ids, e.ID)
		s.After(time.Duration(i)*100*time.Millisecond, func() {
			_ = d.Servers[i%4].Add(e)
		})
	}
	runQuiesce(s, d, 60*time.Second)
	d.Stop()
	checkProperties(t, d, ids, false)
	// Every element — including those batched by the selective server —
	// reaches every correct server's history, in identical epochs.
	for si := 0; si < 3; si++ {
		snap := d.Servers[si].Get()
		inHist := make(map[wire.ElementID]bool)
		for _, ep := range snap.History {
			for _, e := range ep.Elements {
				inHist[e.ID] = true
			}
		}
		for _, id := range ids {
			if !inHist[id] {
				t.Fatalf("server %d missing element %v after selective serving", si, id)
			}
		}
	}
	stalls := uint64(0)
	for si := 0; si < 3; si++ {
		stalls += d.Servers[si].HashchainStats().StallRetries
	}
	if stalls == 0 {
		t.Log("note: recovery succeeded without stall retries (prefetch window)")
	}
}

func TestByzantineCorruptProofsRejected(t *testing.T) {
	s, d := deployFull(11, 4, core.Options{Algorithm: core.Compresschain, CollectorLimit: 10})
	d.Servers[3].SetBehavior(&core.Behavior{CorruptProofs: true})
	ids := addElements(s, d, 20)
	runQuiesce(s, d, 30*time.Second)
	d.Stop()
	checkProperties(t, d, ids, false)
	cl := d.Clients[0]
	snap := d.Servers[0].Get()
	for _, ep := range snap.History {
		// Correct servers alone still produce >= f+1 valid proofs, and the
		// corrupt server's proofs never verify.
		valid := cl.CountValidProofs(snap, ep.Number)
		if valid < d.F()+1 {
			t.Fatalf("epoch %d: %d valid proofs despite 3 correct servers", ep.Number, valid)
		}
		for signer, p := range snap.Proofs[ep.Number] {
			if signer == 3 && p != nil {
				// If present at all it must have failed verification...
				want := snap.History[ep.Number-1].Hash
				if wire.VerifyEpochProof(d.Ledger.Suite, d.Ledger.Registry, p, want) {
					t.Fatalf("corrupt proof from server 3 verified for epoch %d", ep.Number)
				}
			}
		}
	}
}

func TestHashchainWrongBatchRejected(t *testing.T) {
	// A Byzantine server responds to Request_batch with a batch whose hash
	// does not match; requesters must reject it and recover elsewhere.
	s, d := deployFull(12, 4, core.Options{Algorithm: core.Hashchain, CollectorLimit: 5,
		RequestTimeout: 500 * time.Millisecond})
	d.Servers[3].SetBehavior(&core.Behavior{ServeWrongBatch: true})
	ids := addElements(s, d, 20)
	runQuiesce(s, d, 40*time.Second)
	d.Stop()
	checkProperties(t, d, ids, false)
	known := make(map[wire.ElementID]bool)
	for _, id := range ids {
		known[id] = true
	}
	for si := 0; si < 3; si++ {
		snap := d.Servers[si].Get()
		for id := range snap.TheSet {
			if !known[id] {
				t.Fatalf("server %d accepted element from a hash-mismatched batch", si)
			}
		}
	}
}

func TestDeterministicDeployment(t *testing.T) {
	run := func() (uint64, int) {
		s, d := deployFull(42, 4, core.Options{Algorithm: core.Hashchain, CollectorLimit: 10})
		addElements(s, d, 30)
		runQuiesce(s, d, 20*time.Second)
		d.Stop()
		snap := d.Servers[0].Get()
		return s.Executed(), len(snap.History)
	}
	e1, h1 := run()
	e2, h2 := run()
	if e1 != e2 || h1 != h2 {
		t.Fatalf("nondeterministic: events %d/%d epochs %d/%d", e1, e2, h1, h2)
	}
}
