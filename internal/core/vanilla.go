package core

import (
	"time"

	"repro/internal/wire"
)

// vanillaAlg implements Algorithm Vanilla (paper Appendix B): every element
// is its own ledger transaction; each committed block's fresh valid
// elements form one epoch; the server's epoch-proof is appended to the
// ledger as its own transaction.
//
// Deviation from the pseudocode (documented in DESIGN.md): the pseudocode
// increments the epoch for every block, including blocks containing no
// valid fresh elements, which makes the system churn proof transactions
// forever. Like the paper's experiments (which terminate once all elements
// and proofs are on the ledger), this implementation creates an epoch only
// for blocks that contribute at least one fresh valid element.
type vanillaAlg struct {
	s *Server
}

func (v *vanillaAlg) onAdd(e *wire.Element) {
	tx := &wire.Tx{Kind: wire.TxElement, Element: e}
	if v.s.rec != nil {
		v.s.rec.RegisterCarrier(tx.MapKey(), []*wire.Element{e})
	}
	v.s.node.Append(tx)
}

func (v *vanillaAlg) checkTx(tx *wire.Tx) bool { return true }

func (v *vanillaAlg) drain() {}

func (v *vanillaAlg) processBlock(b *wire.Block, done func()) {
	s := v.s
	// Charge the block's element re-validation up front: a Byzantine
	// server may have appended invalid elements directly, so FinalizeBlock
	// cannot trust mempool CheckTx (paper §3).
	var cost time.Duration
	for _, tx := range b.Txs {
		if tx.Kind == wire.TxElement {
			cost += s.opts.Costs.VerifyElement + s.opts.Costs.PerElement
		}
	}
	s.runCosted(cost, func() {
		var elems []*wire.Element
		for _, tx := range b.Txs {
			switch tx.Kind {
			case wire.TxProof:
				s.acceptProof(tx.Proof)
			case wire.TxElement:
				elems = append(elems, tx.Element)
			}
		}
		g := s.freshValid(elems)
		if len(g) > 0 {
			p := s.createEpoch(g)
			s.node.Append(&wire.Tx{Kind: wire.TxProof, Proof: p})
		}
		done()
	})
}
