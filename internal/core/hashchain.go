package core

import (
	"bytes"
	"encoding/binary"
	"time"

	"repro/internal/batchstore"
	"repro/internal/codec"
	"repro/internal/collector"
	"repro/internal/sim"
	"repro/internal/wire"
)

// hashchainAlg implements Algorithm Hashchain (paper §3), the paper's
// primary contribution: a ready batch is hashed; the batch is stored in the
// local batch store (Register_batch) and the signed 139-byte hash-batch
// ⟨h, sig, v⟩ is appended to the ledger. On seeing a hash-batch in a
// committed block, a server recovers the batch (locally or by Request_batch
// to a signer), verifies it, co-signs the hash, and counts signers; when
// f+1 distinct servers have signed a hash on the ledger the batch
// consolidates into the next epoch.
//
// Two deliberate refinements over the pseudocode (DESIGN.md §3):
//
//   - Signer counting is unconditional (after signature verification) and
//     consolidation position is therefore determined purely by ledger
//     order. The pseudocode only counts a signer after successfully
//     recovering the batch, which lets a Byzantine signer that serves some
//     servers but not others make correct servers consolidate batches in
//     different orders, breaking Consistent-Gets. When the f+1 threshold is
//     reached before the batch is recovered, processing stalls and retries
//     the f+1 signers (at least one is correct and, per the paper's Lemma
//     17, serves the batch), preserving both order and liveness.
//
//   - Batches are prefetched when a hash-batch first enters the mempool,
//     overlapping recovery with consensus instead of paying a fetch RTT
//     inside block processing. The paper's servers achieve the same overlap
//     by handling batch distribution concurrently with CometBFT.
//
// The Light variant removes hash-reversal and validation (paper Fig. 2):
// batches come from a shared oracle store and servers co-sign unseen hashes
// without verification, isolating the hash-reversal bottleneck.
type hashchainAlg struct {
	s   *Server
	seq uint64 // request ids

	hashBuf []byte // scratch for modeled batch hashing, reused across flushes

	signers      map[wire.Digest]map[wire.NodeID]bool
	signedOwn    map[wire.Digest]bool
	contentDone  map[wire.Digest]bool
	proofsDone   map[wire.Digest]bool // proofs extracted at ledger time (once)
	validElems   map[wire.Digest][]*wire.Element
	consolidated map[wire.Digest]bool
	fetches      map[wire.Digest]*fetchState

	// Stats.
	requestsSent   uint64
	requestsServed uint64
	fetchFailures  uint64
	stallRetries   uint64
}

type fetchState struct {
	hash       []byte
	candidates []wire.NodeID
	tried      map[wire.NodeID]bool
	inFlight   bool
	reqID      uint64
	timer      sim.Event
	waiters    []func(ok bool)
}

func newHashchainAlg(s *Server) *hashchainAlg {
	h := &hashchainAlg{
		s:            s,
		signers:      make(map[wire.Digest]map[wire.NodeID]bool),
		signedOwn:    make(map[wire.Digest]bool),
		contentDone:  make(map[wire.Digest]bool),
		proofsDone:   make(map[wire.Digest]bool),
		validElems:   make(map[wire.Digest][]*wire.Element),
		consolidated: make(map[wire.Digest]bool),
		fetches:      make(map[wire.Digest]*fetchState),
	}
	s.coll = collector.New(s.sim, s.opts.CollectorLimit, s.opts.CollectorTimeout, h.flushBatch)
	s.store = batchstore.New()
	return h
}

func (h *hashchainAlg) onAdd(e *wire.Element) { h.s.coll.AddElement(e) }

func (h *hashchainAlg) drain() { h.s.coll.Flush() }

// batchHash computes the canonical hash of a batch: over its full encoding
// in Full mode, over element ids and packed proof identities in Modeled
// mode (same 64-byte digest shape either way). The modeled encoding is
// fixed-width per item, so it is unambiguous without separators, and it is
// built in a scratch buffer reused across flushes.
func (h *hashchainAlg) batchHash(b *wire.Batch) []byte {
	if h.s.opts.Mode == Full {
		return h.s.suite.HashData(codec.EncodeBatch(b))
	}
	buf := h.hashBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(b.Elements)))
	for _, e := range b.Elements {
		buf = append(buf, e.ID[:]...)
	}
	for _, p := range b.Proofs {
		buf = binary.LittleEndian.AppendUint64(buf, p.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Signer))
	}
	h.hashBuf = buf
	return h.s.suite.HashData(buf)
}

// flushBatch is the isReady(batch) handler (pseudocode lines 12-21).
func (h *hashchainAlg) flushBatch(b *wire.Batch) {
	s := h.s
	s.injectBogus(b)
	hash := h.batchHash(b)
	key := wire.DigestOf(hash)
	s.store.Register(hash, b)
	if s.opts.Light && s.opts.SharedStore != nil {
		s.opts.SharedStore.Register(hash, b)
	}
	// Our own elements were validated at Add; cache them as this batch's
	// valid set so consolidation does not re-verify.
	valid := make([]*wire.Element, 0, len(b.Elements))
	for _, e := range b.Elements {
		if s.validElement(e) {
			valid = append(valid, e)
		}
	}
	h.validElems[key] = valid
	h.contentDone[key] = true
	h.signedOwn[key] = true

	s.chargeCPU(time.Duration(b.RawSize())*s.opts.Costs.HashPerByte +
		s.opts.Costs.SignCost + s.opts.Costs.PerBatch)
	hb := &wire.HashBatch{Hash: hash, Sig: s.suite.Sign(s.key, hash), Signer: s.id}
	tx := &wire.Tx{Kind: wire.TxHashBatch, HashBatch: hb}
	if s.rec != nil {
		s.rec.RegisterCarrier(tx.MapKey(), b.Elements)
	}
	s.node.Append(tx)
}

// checkTx validates a hash-batch at mempool admission and prefetches the
// batch so it is usually local by the time the block commits.
func (h *hashchainAlg) checkTx(tx *wire.Tx) bool {
	hb := tx.HashBatch
	if hb == nil || len(hb.Hash) == 0 {
		return false
	}
	h.s.chargeCPU(h.s.opts.Costs.VerifySig)
	if !h.validHashBatchSig(hb) {
		return false
	}
	if !h.s.opts.Light && !h.s.store.Has(hb.Hash) {
		h.prefetch(hb.Hash, hb.Signer)
	}
	return true
}

func (h *hashchainAlg) validHashBatchSig(hb *wire.HashBatch) bool {
	pub := h.s.registry.Lookup(int(hb.Signer))
	if pub == nil {
		return false
	}
	return h.s.suite.Verify(pub, hb.Hash, hb.Sig)
}

// processBlock walks the block's hash-batches strictly in order, keeping
// epoch consolidation deterministic across servers.
func (h *hashchainAlg) processBlock(b *wire.Block, done func()) {
	h.processTx(b.Txs, 0, done)
}

func (h *hashchainAlg) processTx(txs []*wire.Tx, i int, done func()) {
	s := h.s
	// Skip non-hash-batch transactions iteratively (no stack growth).
	for i < len(txs) && txs[i].Kind != wire.TxHashBatch {
		i++
	}
	if i >= len(txs) {
		done()
		return
	}
	hb := txs[i].HashBatch
	next := func() { h.processTx(txs, i+1, done) }
	s.runCosted(s.opts.Costs.VerifySig, func() {
		if !s.opts.Light && !h.validHashBatchSig(hb) {
			next()
			return
		}
		key := wire.DigestOf(hb.Hash)
		if h.consolidated[key] {
			// Signer counting stops at consolidation: the set was released
			// (maybeConsolidate) and late signatures change nothing.
			next()
			return
		}
		set := h.signers[key]
		if set == nil {
			set = make(map[wire.NodeID]bool)
			h.signers[key] = set
		}
		set[hb.Signer] = true
		if s.opts.Light {
			h.lightProcess(hb, key, next)
			return
		}
		if s.store.Has(hb.Hash) {
			h.withContent(key, hb.Hash, next)
			return
		}
		// Batch missing. Before the f+1 threshold a bounded recovery
		// attempt suffices (pseudocode lines 26-29: continue on failure);
		// at or past the threshold the batch MUST be recovered to keep
		// consolidation order consistent, so retry until success.
		mustHave := len(set) >= s.opts.F+1
		h.fetch(hb.Hash, hb.Signer, func(ok bool) {
			if ok {
				h.withContent(key, hb.Hash, next)
				return
			}
			if !mustHave {
				h.fetchFailures++
				next()
				return
			}
			h.stallRetries++
			s.sim.After(s.opts.RetryBackoff, func() {
				h.retryUntilRecovered(key, hb.Hash, next)
			})
		})
	})
}

func (h *hashchainAlg) retryUntilRecovered(key wire.Digest, hash []byte, next func()) {
	if h.s.store.Has(hash) {
		h.withContent(key, hash, next)
		return
	}
	// The batch MUST be recovered (f+1 signers, >= 1 correct): clear the
	// failure memory so all candidates are retried from scratch.
	if st := h.fetches[key]; st != nil && !st.inFlight {
		st.tried = make(map[wire.NodeID]bool)
	}
	h.fetch(hash, -1, func(ok bool) {
		if ok {
			h.withContent(key, hash, next)
			return
		}
		h.stallRetries++
		h.s.sim.After(h.s.opts.RetryBackoff, func() {
			h.retryUntilRecovered(key, hash, next)
		})
	})
}

// lightProcess handles a hash-batch with hash-reversal disabled: co-sign
// without verification; batch content comes from the shared oracle.
func (h *hashchainAlg) lightProcess(hb *wire.HashBatch, key wire.Digest, next func()) {
	s := h.s
	if !s.store.Has(hb.Hash) && s.opts.SharedStore != nil {
		if b := s.opts.SharedStore.Get(hb.Hash); b != nil {
			s.store.Register(hb.Hash, b)
		}
	}
	if !h.signedOwn[key] {
		h.signedOwn[key] = true
		s.chargeCPU(s.opts.Costs.SignCost)
		own := &wire.HashBatch{Hash: hb.Hash, Sig: s.suite.Sign(s.key, hb.Hash), Signer: s.id}
		s.node.Append(&wire.Tx{Kind: wire.TxHashBatch, HashBatch: own})
	}
	if b := s.store.Get(hb.Hash); b != nil && h.contentDone[key] {
		h.extractProofsOnce(key, b)
	}
	if b := s.store.Get(hb.Hash); b != nil && !h.contentDone[key] {
		h.contentDone[key] = true
		valid := b.Elements // Light: all servers correct, skip validation
		h.validElems[key] = valid
		cost := time.Duration(len(valid)) * s.opts.Costs.PerElement
		s.runCosted(cost, func() {
			h.extractProofsOnce(key, b)
			for _, e := range valid {
				if _, ok := s.theSet[e.ID]; !ok {
					s.theSet[e.ID] = e
				}
			}
			h.maybeConsolidate(key)
			next()
		})
		return
	}
	h.maybeConsolidate(key)
	next()
}

// extractProofsOnce records a batch's epoch-proofs the first time the
// batch is observed ON THE LEDGER. This is separate from contentDone
// because a server's own batches have their elements validated at Add time
// (contentDone is pre-set at flush) while their proofs still only count
// once a block carries the batch's hash.
func (h *hashchainAlg) extractProofsOnce(key wire.Digest, b *wire.Batch) {
	if h.proofsDone[key] {
		return
	}
	h.proofsDone[key] = true
	for _, p := range b.Proofs {
		h.s.acceptProof(p)
	}
}

// withContent runs content extraction (once), co-signing (once) and the
// consolidation check for a locally available batch, then continues.
func (h *hashchainAlg) withContent(key wire.Digest, hash []byte, next func()) {
	s := h.s
	b := s.store.Get(hash)
	if b == nil { // raced with nothing: treat as recovery failure
		next()
		return
	}
	if h.contentDone[key] {
		h.extractProofsOnce(key, b)
		h.cosignAndConsolidate(key, hash, next)
		return
	}
	h.contentDone[key] = true
	// First contact with this batch's content: verify every element (the
	// per-element cost that produces the paper's ~20k el/s ceiling) and
	// extract proofs.
	cost := time.Duration(len(b.Elements))*(s.opts.Costs.VerifyElement+s.opts.Costs.PerElement) +
		s.opts.Costs.PerBatch
	s.runCosted(cost, func() {
		valid := make([]*wire.Element, 0, len(b.Elements))
		for _, e := range b.Elements {
			if s.validElement(e) {
				valid = append(valid, e)
			}
		}
		h.validElems[key] = valid
		h.extractProofsOnce(key, b)
		for _, e := range valid {
			if _, ok := s.theSet[e.ID]; !ok {
				s.theSet[e.ID] = e
			}
		}
		h.cosignAndConsolidate(key, hash, next)
	})
}

func (h *hashchainAlg) cosignAndConsolidate(key wire.Digest, hash []byte, next func()) {
	s := h.s
	if !h.signedOwn[key] {
		h.signedOwn[key] = true
		s.chargeCPU(s.opts.Costs.SignCost)
		own := &wire.HashBatch{Hash: hash, Sig: s.suite.Sign(s.key, hash), Signer: s.id}
		s.node.Append(&wire.Tx{Kind: wire.TxHashBatch, HashBatch: own})
	}
	h.maybeConsolidate(key)
	next()
}

// maybeConsolidate performs epoch consolidation once f+1 distinct servers
// have signed the hash on the ledger and the content is known.
func (h *hashchainAlg) maybeConsolidate(key wire.Digest) {
	s := h.s
	if h.consolidated[key] || !h.contentDone[key] {
		return
	}
	if len(h.signers[key]) < s.opts.F+1 {
		return
	}
	h.consolidated[key] = true
	// Release the signer set: consolidation position is fixed, and keeping
	// only unconsolidated sets is what lets state-sync ship exactly the
	// pending signatures (pendingSigners in checkpointing.go).
	delete(h.signers, key)
	g := make([]*wire.Element, 0, len(h.validElems[key]))
	for _, e := range h.validElems[key] {
		if _, in := s.inHistory[e.ID]; !in {
			g = append(g, e)
		}
	}
	delete(h.validElems, key)
	if len(g) == 0 {
		return // proof-only batch: no epoch (quiescence, see vanillaAlg)
	}
	p := s.createEpoch(g)
	s.coll.AddProof(p)
}

// --- batch recovery (Request_batch) ---

// prefetch starts recovery for a hash first seen in the mempool.
func (h *hashchainAlg) prefetch(hash []byte, signer wire.NodeID) {
	key := wire.DigestOf(hash)
	if h.fetches[key] != nil || h.consolidated[key] {
		return
	}
	h.fetch(hash, signer, func(bool) {})
}

// fetch recovers the batch for hash, trying candidate signers one at a time
// with RequestTimeout each, and calls cb exactly once. hint names a known
// signer to try first (-1 for none); known ledger signers are also tried.
func (h *hashchainAlg) fetch(hash []byte, hint wire.NodeID, cb func(ok bool)) {
	if h.s.store.Has(hash) {
		cb(true)
		return
	}
	key := wire.DigestOf(hash)
	st := h.fetches[key]
	if st == nil {
		st = &fetchState{hash: hash, tried: make(map[wire.NodeID]bool)}
		h.fetches[key] = st
	}
	if hint >= 0 && hint != h.s.id {
		st.addCandidate(hint)
	}
	for signer := range h.signers[key] {
		if signer != h.s.id {
			st.addCandidate(signer)
		}
	}
	st.waiters = append(st.waiters, cb)
	if !st.inFlight {
		h.tryNextCandidate(st)
	}
}

func (st *fetchState) addCandidate(id wire.NodeID) {
	for _, c := range st.candidates {
		if c == id {
			return
		}
	}
	st.candidates = append(st.candidates, id)
}

func (h *hashchainAlg) tryNextCandidate(st *fetchState) {
	var target wire.NodeID = -1
	for _, c := range st.candidates {
		if !st.tried[c] {
			target = c
			break
		}
	}
	if target < 0 {
		h.failFetch(st)
		return
	}
	st.tried[target] = true
	st.inFlight = true
	h.seq++
	st.reqID = h.seq
	h.requestsSent++
	h.s.node.Send(target, &batchstore.Request{Hash: st.hash, ReqID: st.reqID},
		batchstore.RequestWireSize)
	reqID := st.reqID
	st.timer = h.s.sim.After(h.s.opts.RequestTimeout, func() {
		if st.inFlight && st.reqID == reqID {
			st.inFlight = false
			h.tryNextCandidate(st)
		}
	})
}

// resolveFetch completes a successful recovery: the batch is registered,
// so the state can be discarded entirely.
func (h *hashchainAlg) resolveFetch(st *fetchState, ok bool) {
	delete(h.fetches, wire.DigestOf(st.hash))
	st.timer.Cancel()
	waiters := st.waiters
	st.waiters = nil
	for _, w := range waiters {
		w(ok)
	}
}

// failFetch reports failure to the current waiters but RETAINS the state
// with its tried set: a later fetch for the same hash fails immediately
// unless a new candidate signer has appeared since. Without this, every
// hash-batch from a Byzantine server that withholds its batch would cost a
// full request timeout inside the strictly ordered block-processing
// pipeline — enough sustained chatter would starve epoch processing.
// The post-quorum recovery path resets the tried set explicitly.
func (h *hashchainAlg) failFetch(st *fetchState) {
	st.inFlight = false
	st.timer.Cancel()
	waiters := st.waiters
	st.waiters = nil
	for _, w := range waiters {
		w(false)
	}
}

// onAppMsg handles the Request_batch protocol traffic.
func (h *hashchainAlg) onAppMsg(from wire.NodeID, payload any, size int) {
	switch msg := payload.(type) {
	case *batchstore.Request:
		h.serveRequest(from, msg)
	case *batchstore.Response:
		h.handleResponse(from, msg)
	}
}

func (h *hashchainAlg) serveRequest(from wire.NodeID, req *batchstore.Request) {
	s := h.s
	if s.behavior != nil && s.behavior.RefuseServe != nil &&
		s.behavior.RefuseServe(int(from), req.Hash) {
		return // Byzantine silence: requester's timeout handles it
	}
	b := s.store.Get(req.Hash)
	resp := &batchstore.Response{Hash: req.Hash, ReqID: req.ReqID, Found: b != nil, Batch: b}
	if b != nil && s.behavior != nil && s.behavior.ServeWrongBatch {
		wrong := &wire.Batch{Elements: append([]*wire.Element(nil), b.Elements...)}
		junk := &wire.Element{Size: 438, Bogus: true}
		junk.ID[0] = 0xEE
		wrong.Elements = append(wrong.Elements, junk)
		resp.Batch = wrong
	}
	h.requestsServed++
	s.chargeCPU(s.opts.Costs.PerBatch)
	s.node.Send(from, resp, resp.ResponseWireSize())
}

func (h *hashchainAlg) handleResponse(from wire.NodeID, resp *batchstore.Response) {
	s := h.s
	key := wire.DigestOf(resp.Hash)
	st := h.fetches[key]
	if st == nil || !st.inFlight || st.reqID != resp.ReqID {
		return // stale or unsolicited
	}
	st.inFlight = false
	st.timer.Cancel()
	if !resp.Found || resp.Batch == nil {
		h.tryNextCandidate(st)
		return
	}
	// Verify Hash(batch_original) == h before accepting (pseudocode line
	// 28); a Byzantine server may serve a wrong batch.
	batch := resp.Batch
	cost := time.Duration(batch.RawSize()) * s.opts.Costs.HashPerByte
	s.runCosted(cost, func() {
		if !bytes.Equal(h.batchHash(batch), resp.Hash) {
			h.tryNextCandidate(st)
			return
		}
		s.store.Register(resp.Hash, batch)
		h.resolveFetch(st, true)
	})
}

// HashchainStats exposes recovery counters for experiments and tests.
type HashchainStats struct {
	RequestsSent   uint64
	RequestsServed uint64
	FetchFailures  uint64
	StallRetries   uint64
	Consolidated   int
}

// HashchainStats returns hash-reversal counters; zero value for other
// algorithms.
func (s *Server) HashchainStats() HashchainStats {
	h, ok := s.alg.(*hashchainAlg)
	if !ok {
		return HashchainStats{}
	}
	return HashchainStats{
		RequestsSent:   h.requestsSent,
		RequestsServed: h.requestsServed,
		FetchFailures:  h.fetchFailures,
		StallRetries:   h.stallRetries,
		Consolidated:   len(h.consolidated),
	}
}
