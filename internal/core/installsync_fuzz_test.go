package core_test

import (
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/wire"
)

// FuzzInstallSync drives mutated state-sync snapshots through the full
// install pipeline a recovering server runs: the consensus-side gate (the
// snapshot chain must fold to the certified header commitment) followed by
// InstallSync's local consistency checks. The oracle is the layered trust
// model of DESIGN.md §15: InstallSync must never panic, and no snapshot
// that passes BOTH layers may smuggle a bogus element or a different
// sealed chain into the victim. Mutations stay within the catchable
// classes — forged digests, truncations, count inflation, epoch splices,
// index smuggling; element-value swaps below the horizon are the
// documented residual hole (they need Merkle state proofs) and are not
// generated.
func FuzzInstallSync(f *testing.F) {
	s, d := deployFull(21, 4, core.Options{
		Algorithm: core.Hashchain, CollectorLimit: 10,
		CheckpointInterval: 2, Prune: true,
	})
	addElements(s, d, 120)
	s.RunUntil(5 * time.Second) // mid-run: sealed chain AND unsettled suffix epochs
	snap, ok := d.Servers[0].SyncSnapshot()
	if !ok {
		f.Fatal("no snapshot frozen after 5s")
	}
	base := snap.State.(*core.SyncState)
	if len(snap.Chain) < 2 || len(base.Epochs) == 0 {
		f.Fatalf("weak base snapshot (chain %d, suffix %d); tune the workload",
			len(snap.Chain), len(base.Epochs))
	}
	certEpoch, certFold := snap.Last.Epoch, checkpoint.FoldChain(snap.Chain)
	d.Stop()

	for _, seed := range [][]byte{
		{}, {0, 0}, {1, 0}, {1, 1}, {2, 3}, {3, 1}, {4, 0}, {4, 1},
		{5, 0}, {6, 0}, {7, 0}, {8, 0}, {4, 1, 1, 0}, {2, 0, 5, 1},
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mut := mutateSnapshot(snap, data)
		_, fd := deployFull(22, 4, core.Options{
			Algorithm: core.Hashchain, CollectorLimit: 10,
			CheckpointInterval: 2, Prune: true,
		})
		defer fd.Stop()
		victim := fd.Servers[0]
		gate := len(mut.Chain) > 0 && mut.Last.Epoch == certEpoch &&
			checkpoint.FoldChain(mut.Chain) == certFold
		installed := victim.InstallSync(mut) // must never panic
		if !gate || !installed {
			return
		}
		// Both layers passed: the installed state must be the certified one.
		for _, el := range victim.Get().TheSet {
			if el.Bogus {
				t.Fatalf("bogus element %x installed through the certified pipeline", el.ID[:4])
			}
		}
		cks := victim.Checkpoints()
		if len(cks) == 0 || !cks[len(cks)-1].Same(snap.Last) {
			t.Fatal("installed chain head differs from the certified checkpoint")
		}
	})
}

// mutateSnapshot deep-copies the base snapshot and applies the mutation
// ops encoded in data as (op, arg) byte pairs.
func mutateSnapshot(snap *checkpoint.Snapshot, data []byte) *checkpoint.Snapshot {
	base := snap.State.(*core.SyncState)
	st := &core.SyncState{
		LastEpoch:      base.LastEpoch,
		CkptBytes:      base.CkptBytes,
		Members:        make(map[wire.ElementID]uint64, len(base.Members)),
		Set:            make(map[wire.ElementID]*wire.Element, len(base.Set)),
		Proofs:         make(map[uint64]map[wire.NodeID]*wire.EpochProof, len(base.Proofs)),
		PendingSigners: base.PendingSigners,
	}
	for id, epn := range base.Members {
		st.Members[id] = epn
	}
	for id, el := range base.Set {
		st.Set[id] = el
	}
	for e, by := range base.Proofs {
		cp := make(map[wire.NodeID]*wire.EpochProof, len(by))
		for id, p := range by {
			cp[id] = p
		}
		st.Proofs[e] = cp
	}
	for _, ep := range base.Epochs {
		st.Epochs = append(st.Epochs, &core.Epoch{
			Number:   ep.Number,
			Elements: append([]*wire.Element(nil), ep.Elements...),
			Hash:     append([]byte(nil), ep.Hash...),
		})
	}
	mut := &checkpoint.Snapshot{
		Last:  snap.Last,
		Chain: append([]checkpoint.Checkpoint(nil), snap.Chain...),
		State: st,
		Bytes: snap.Bytes,
	}
	bogusN := 0
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i]%9, data[i+1]
		switch op {
		case 0: // truncate the chain (older snapshot — gate must reject)
			if len(mut.Chain) > 1 {
				mut.Chain = mut.Chain[:len(mut.Chain)-1]
				mut.Last = mut.Chain[len(mut.Chain)-1]
			}
		case 1: // forge a chain digest (keeping Last == Chain[last] coherent)
			k := int(arg) % len(mut.Chain)
			mut.Chain[k].Digest ^= 0x5a5a
			mut.Last = mut.Chain[len(mut.Chain)-1]
		case 2: // inflate a cumulative element count
			k := int(arg) % len(mut.Chain)
			mut.Chain[k].Elements += uint64(arg) + 1
			mut.Last = mut.Chain[len(mut.Chain)-1]
		case 3: // inflate the claimed top epoch
			st.LastEpoch += uint64(arg%3) + 1
		case 4: // smuggle a bogus element through the index and set
			e := &wire.Element{Client: wire.ClientID(-1), Size: 100, Bogus: true}
			e.ID[0], e.ID[1], e.ID[2] = 0xFE, arg, byte(bogusN)
			bogusN++
			epn := mut.Last.Epoch // below the horizon
			if arg%2 == 1 && len(st.Epochs) > 0 {
				epn = st.Epochs[int(arg/2)%len(st.Epochs)].Number // suffix range
			}
			st.Members[e.ID] = epn
			st.Set[e.ID] = e
		case 5: // splice a suffix epoch's number
			if len(st.Epochs) > 0 {
				st.Epochs[int(arg)%len(st.Epochs)].Number++
			}
		case 6: // drop a suffix epoch, leaving its elements indexed
			if len(st.Epochs) > 0 {
				st.Epochs = st.Epochs[:len(st.Epochs)-1]
			}
		case 7: // index-only smuggle: Members entry with no Set element
			e := &wire.Element{Client: wire.ClientID(-1), Size: 100, Bogus: true}
			e.ID[0], e.ID[1] = 0xFC, arg
			st.Members[e.ID] = mut.Last.Epoch
		case 8: // duplicate a suffix element into another suffix epoch
			if len(st.Epochs) > 1 {
				src := st.Epochs[0]
				dst := st.Epochs[1]
				if len(src.Elements) > 0 {
					dst.Elements = append(dst.Elements, src.Elements[int(arg)%len(src.Elements)])
				}
			}
		}
	}
	return mut
}
