package core

import (
	"repro/internal/batchstore"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/setcrypto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Deployment is a complete Setchain system on one simulator: the ledger
// cluster, one Setchain server per ledger node, and one client per server
// (the paper's evaluation topology: each Docker container holds one client,
// one collector and one CometBFT server).
type Deployment struct {
	Sim     *sim.Simulator
	Ledger  *ledger.Cluster
	Servers []*Server
	Clients []*Client
	Opts    Options
}

// Deploy builds a full Setchain deployment. opts applies to every server;
// rec may be nil.
func Deploy(s *sim.Simulator, n int, ledgerCfg ledger.Config, opts Options, rec *metrics.Recorder) *Deployment {
	ledgerCfg.N = n
	if rec != nil && ledgerCfg.OnTxEnterMempool == nil {
		ledgerCfg.OnTxEnterMempool = rec.TxEnteredMempool
	}
	lc := ledger.NewCluster(s, ledgerCfg)
	opts = opts.withDefaults(n)
	if opts.Algorithm == Hashchain && opts.Light && opts.SharedStore == nil {
		opts.SharedStore = batchstore.New()
	}
	d := &Deployment{Sim: s, Ledger: lc, Opts: opts}
	for i := 0; i < n; i++ {
		node := lc.Nodes[i]
		// node.Sim() is the partition queue owning this node in a
		// partitioned run (ledger.Config.SimFor), the root simulator
		// otherwise — the server's CPU resource and timers live there.
		srv := NewServer(node, node.Sim(), n, lc.Suite, lc.Keys[i], lc.Registry, opts)
		if rec != nil {
			srv.SetRecorder(rec)
		}
		lc.SetApp(node.ID, srv)
		d.Servers = append(d.Servers, srv)
	}
	for i := 0; i < n; i++ {
		// ClientIDBase keeps client ids (and the element ids derived from
		// them) globally unique when several shard deployments share one
		// world; the classic single-deployment base is 0.
		id := wire.ClientID(ledgerCfg.ClientIDBase + i)
		var kp setcrypto.KeyPair
		if _, real := lc.Suite.(setcrypto.Ed25519Suite); real {
			kp = setcrypto.GenerateKeyPair(s.Rand())
		} else {
			kp = setcrypto.FastKeyPair(int(id) + clientKeyOffset(n))
		}
		RegisterClientKey(lc.Registry, n, id, kp.Public)
		d.Clients = append(d.Clients, NewClient(id, lc.Suite, kp, lc.Registry, n, opts.F, opts.Mode))
	}
	return d
}

// Server returns the deployment's server with the given node id, or nil.
// Servers are stored in deployment order; in sharded worlds their ids are
// offset by the shard's ledger.Config.FirstID, so lookups go through the
// id rather than the slice index.
func (d *Deployment) Server(id wire.NodeID) *Server {
	for _, s := range d.Servers {
		if s.ID() == id {
			return s
		}
	}
	return nil
}

// Start launches the ledger.
func (d *Deployment) Start() { d.Ledger.Start() }

// Stop freezes the ledger.
func (d *Deployment) Stop() { d.Ledger.Stop() }

// Drain flushes every server's collector (call after clients stop adding).
func (d *Deployment) Drain() {
	for _, s := range d.Servers {
		s.Drain()
	}
}

// F returns the deployment's Setchain fault bound.
func (d *Deployment) F() int { return d.Opts.F }
