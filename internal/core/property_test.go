package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/byzantine"
	"repro/internal/core"
	"repro/internal/wire"
)

// TestRandomizedFaultSchedules fuzzes deployments across algorithms, fault
// presets and seeds, asserting the safety properties every time and
// liveness for elements added at correct servers whenever the fault budget
// is respected. This is the repository's broadest invariant net: any
// regression in consensus, mempool, batch recovery or epoch consolidation
// tends to surface here first.
func TestRandomizedFaultSchedules(t *testing.T) {
	algs := []core.Algorithm{core.Vanilla, core.Compresschain, core.Hashchain}
	faults := []func() *core.Behavior{
		nil,
		func() *core.Behavior { return byzantine.InjectInvalid(2) },
		func() *core.Behavior { return byzantine.WithholdBatches() },
		func() *core.Behavior { return byzantine.WrongBatches() },
		func() *core.Behavior { return byzantine.CorruptProofs() },
		func() *core.Behavior {
			return byzantine.Combine(byzantine.InjectInvalid(1), byzantine.CorruptProofs())
		},
	}
	// Under -short, run a reduced pass instead of skipping outright: 6
	// rounds still exercise every algorithm (twice) and every fault preset
	// (once) along the i%3/i%6 diagonal, keeping the invariant net active
	// in short CI runs at half the cost.
	rounds := 12
	if testing.Short() {
		rounds = 6
	}
	for i := 0; i < rounds; i++ {
		i := i
		alg := algs[i%len(algs)]
		mkFault := faults[i%len(faults)]
		name := fmt.Sprintf("seed=%d/%s/fault=%d", i, alg, i%len(faults))
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, d := deployFull(int64(100+i), 4, core.Options{
				Algorithm:      alg,
				CollectorLimit: 5 + i%7,
				RequestTimeout: time.Second,
				RetryBackoff:   300 * time.Millisecond,
			})
			byzID := 3
			if mkFault != nil {
				d.Servers[byzID].SetBehavior(mkFault())
			}
			// Elements go only to the three correct servers.
			var ids []wire.ElementID
			for k := 0; k < 24; k++ {
				cl := d.Clients[k%3]
				e := cl.NewElement([]byte(fmt.Sprintf("r%d-%d", i, k)))
				ids = append(ids, e.ID)
				k := k
				s.After(time.Duration(k*137)*time.Millisecond, func() {
					_ = d.Servers[k%3].Add(e)
				})
			}
			runQuiesce(s, d, 45*time.Second)
			d.Stop()
			checkProperties(t, d, ids, false)
			// Liveness for correct-server elements regardless of the
			// single Byzantine server's behavior.
			for si := 0; si < 3; si++ {
				snap := d.Servers[si].Get()
				inHist := make(map[wire.ElementID]bool)
				for _, ep := range snap.History {
					for _, e := range ep.Elements {
						inHist[e.ID] = true
					}
				}
				for _, id := range ids {
					if !inHist[id] {
						t.Fatalf("server %d: element %v never reached an epoch", si, id)
					}
				}
			}
		})
	}
}

func TestHashchainLightEndToEnd(t *testing.T) {
	// The Light ablation still satisfies the Setchain properties under the
	// all-correct assumption it is defined for.
	s, d := deployFull(60, 4, core.Options{
		Algorithm:      core.Hashchain,
		Light:          true,
		CollectorLimit: 8,
	})
	ids := addElements(s, d, 32)
	runQuiesce(s, d, 25*time.Second)
	d.Stop()
	checkProperties(t, d, ids, true)
	// No batch requests happened: the whole point of the ablation.
	for _, srv := range d.Servers {
		if st := srv.HashchainStats(); st.RequestsSent != 0 {
			t.Fatalf("Light mode issued %d batch requests", st.RequestsSent)
		}
	}
}

func TestCompresschainLightEndToEnd(t *testing.T) {
	s, d := deployFull(61, 4, core.Options{
		Algorithm:      core.Compresschain,
		Light:          true,
		CollectorLimit: 8,
	})
	ids := addElements(s, d, 32)
	runQuiesce(s, d, 25*time.Second)
	d.Stop()
	checkProperties(t, d, ids, true)
}

func TestSnapshotEpochCounter(t *testing.T) {
	s, d := deployFull(62, 4, core.Options{Algorithm: core.Compresschain, CollectorLimit: 4})
	ids := addElements(s, d, 12)
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	snap := d.Servers[0].Get()
	if snap.Epoch != uint64(len(snap.History)) {
		t.Fatalf("epoch counter %d != history length %d", snap.Epoch, len(snap.History))
	}
	if snap.Epoch == 0 {
		t.Fatal("no epochs despite committed elements")
	}
	_ = ids
}

func TestServerStatsProgress(t *testing.T) {
	s, d := deployFull(63, 4, core.Options{Algorithm: core.Hashchain, CollectorLimit: 4})
	addElements(s, d, 16)
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	adds, rejects, blocks, epochs := d.Servers[0].Stats()
	if adds == 0 || blocks == 0 || epochs == 0 {
		t.Fatalf("stats stuck at zero: adds=%d blocks=%d epochs=%d", adds, blocks, epochs)
	}
	if rejects != 0 {
		t.Fatalf("unexpected rejects: %d", rejects)
	}
	if d.Servers[0].F() != 1 {
		t.Fatalf("F = %d, want 1", d.Servers[0].F())
	}
	if d.Servers[0].ID() != 0 {
		t.Fatal("server id wrong")
	}
	if d.Servers[0].Store() == nil {
		t.Fatal("hashchain server lacks a batch store")
	}
	if d.Servers[0].CPU() == nil {
		t.Fatal("server lacks a CPU resource")
	}
}

func TestCheckTxRejectsCrossAlgorithmTraffic(t *testing.T) {
	// A hash-batch tx must not enter a Vanilla deployment's mempool and
	// vice versa (a Byzantine server cannot smuggle foreign tx kinds).
	s, d := deployFull(64, 4, core.Options{Algorithm: core.Vanilla})
	_ = s
	srv := d.Servers[0]
	hb := &wire.Tx{Kind: wire.TxHashBatch, HashBatch: &wire.HashBatch{Hash: []byte("h")}}
	if srv.CheckTx(hb) {
		t.Fatal("Vanilla accepted a hash-batch tx")
	}
	cb := &wire.Tx{Kind: wire.TxCompressedBatch, Compressed: &wire.CompressedBatch{CompSize: 5}}
	if srv.CheckTx(cb) {
		t.Fatal("Vanilla accepted a compressed-batch tx")
	}
	bad := &wire.Tx{Kind: 99}
	if srv.CheckTx(bad) {
		t.Fatal("unknown tx kind accepted")
	}
	proofShape := &wire.Tx{Kind: wire.TxProof, Proof: &wire.EpochProof{Epoch: 0, Sig: []byte("s")}}
	if srv.CheckTx(proofShape) {
		t.Fatal("epoch-0 proof accepted")
	}
	d.Stop()
}

func TestElementSizesFlowToLedgerBlocks(t *testing.T) {
	// Wire-size accounting: Vanilla ledger bytes must equal the sum of
	// element sizes plus proof sizes.
	s, d := deployFull(65, 4, core.Options{Algorithm: core.Vanilla})
	ids := addElements(s, d, 10)
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	var elBytes, prBytes, blockBytes int
	for _, b := range d.Ledger.Nodes[0].Cons.Chain() {
		blockBytes += b.Bytes
		for _, tx := range b.Txs {
			switch tx.Kind {
			case wire.TxElement:
				elBytes += tx.Element.WireSize()
			case wire.TxProof:
				prBytes += wire.EpochProofWireSize
			}
		}
	}
	if blockBytes != elBytes+prBytes {
		t.Fatalf("block bytes %d != elements %d + proofs %d", blockBytes, elBytes, prBytes)
	}
	if prBytes == 0 {
		t.Fatal("no proof bytes on the ledger")
	}
	_ = ids
}

func TestDrainFlushesPartialBatches(t *testing.T) {
	// Without Drain a partial batch below the collector limit would wait
	// for the timeout; Drain forces it out immediately.
	s, d := deployFull(66, 4, core.Options{
		Algorithm:        core.Hashchain,
		CollectorLimit:   1000,      // never reached
		CollectorTimeout: time.Hour, // never fires
	})
	cl := d.Clients[0]
	e := cl.NewElement([]byte("stuck?"))
	s.After(time.Second, func() {
		if err := d.Servers[0].Add(e); err != nil {
			t.Errorf("Add: %v", err)
		}
	})
	s.RunUntil(10 * time.Second)
	d.Drain()
	s.RunUntil(40 * time.Second)
	d.Stop()
	snap := d.Servers[1].Get()
	if _, ok := snap.TheSet[e.ID]; !ok {
		t.Fatal("drained element never propagated")
	}
}

func TestMaximumByzantineBoundary(t *testing.T) {
	// n=7 tolerates f=3 at the Setchain layer: with exactly 3 servers
	// misbehaving (withholding batches, corrupting proofs, injecting
	// junk), elements added at the 4 correct servers still commit with
	// f+1 = 4 valid proofs, and correct histories agree.
	// (The misbehaving servers still run consensus correctly — the ledger
	// itself tolerates only 2 of 7 — which matches the paper's layering:
	// Setchain faults and ledger faults are separate budgets.)
	s, d := deployFull(70, 7, core.Options{
		Algorithm:      core.Hashchain,
		CollectorLimit: 6,
		RequestTimeout: time.Second,
	})
	for _, byz := range []int{4, 5, 6} {
		d.Servers[byz].SetBehavior(byzantine.Combine(
			byzantine.WithholdBatches(),
			byzantine.CorruptProofs(),
			byzantine.InjectInvalid(1),
		))
	}
	var ids []wire.ElementID
	for k := 0; k < 28; k++ {
		cl := d.Clients[k%4]
		e := cl.NewElement([]byte(fmt.Sprintf("bnd-%d", k)))
		ids = append(ids, e.ID)
		k := k
		s.After(time.Duration(k*150)*time.Millisecond, func() {
			_ = d.Servers[k%4].Add(e)
		})
	}
	runQuiesce(s, d, 60*time.Second)
	d.Stop()
	checkProperties(t, d, ids, false)
	cl := d.Clients[0]
	for si := 0; si < 4; si++ {
		snap := d.Servers[si].Get()
		for _, id := range ids {
			found := false
			for _, ep := range snap.History {
				for _, e := range ep.Elements {
					if e.ID == id {
						found = true
						// The client's f+1 verification must pass using
						// only the 4 correct servers' proofs.
						if _, err := cl.VerifyCommitted(snap, id); err != nil {
							t.Fatalf("server %d: element %v unverifiable: %v", si, id, err)
						}
					}
				}
			}
			if !found {
				t.Fatalf("server %d: element %v lost with f=3 Byzantine servers", si, id)
			}
		}
	}
}
