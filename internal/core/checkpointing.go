package core

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/wire"
)

// This file is the server half of the epoch-checkpoint subsystem
// (internal/checkpoint; DESIGN.md §11): sealing a checkpoint every K
// settled epochs, pruning settled state below the horizon, and serving /
// installing state-sync snapshots so a restarted node recovers from the
// latest checkpoint plus a block suffix instead of replaying the whole
// chain.
//
// Determinism argument, in one place: an epoch settles when its f+1-th
// valid proof is processed, proofs travel only inside committed blocks,
// and block processing is strictly ordered — so every correct server
// seals checkpoints with identical content (epoch, cumulative elements,
// digest). That agreement is what the invariant checker verifies in place
// of the pruned epochs. The seal Height is NOT part of the agreement: a
// proof rides in a batch, and a server whose fetch of that batch failed
// (crashed signer) extracts its proofs a block later than peers that held
// the batch locally, so heights may trail by a block under faults —
// cross-server comparisons use checkpoint.Same, which ignores Height.

// Modeled wire sizes for the state-sync snapshot: a real transfer ships
// the set's elements plus per-epoch and per-proof framing.
const (
	proofWireSize     = 139 // same envelope class as a signed hash-batch
	epochFrameSize    = 80  // number + hash + element-count framing
	checkpointBinSize = 32  // four 64-bit words
)

// maybeSeal seals every checkpoint interval the settled prefix has
// crossed. Called only at block-processing boundaries (processNext), so a
// frozen snapshot always reflects COMPLETE processing of blocks
// 1..curHeight and a state-syncing peer can replay from curHeight+1
// without a gap.
func (s *Server) maybeSeal() {
	k := uint64(s.opts.CheckpointInterval)
	if k == 0 {
		return
	}
	for s.settled >= s.lastCheckpointEpoch()+k {
		s.seal(s.lastCheckpointEpoch() + k)
	}
}

func (s *Server) lastCheckpointEpoch() uint64 {
	if len(s.checkpoints) == 0 {
		return 0
	}
	return s.checkpoints[len(s.checkpoints)-1].Epoch
}

// seal creates the checkpoint covering epochs 1..target, extending the
// previous checkpoint's digest chain over the newly settled range, then
// freezes the state-sync snapshot and (when enabled) prunes below the
// horizon.
func (s *Server) seal(target uint64) {
	prev := checkpoint.Checkpoint{Digest: checkpoint.Seed()}
	if len(s.checkpoints) > 0 {
		prev = s.checkpoints[len(s.checkpoints)-1]
	}
	d, elems, bytes := prev.Digest, prev.Elements, s.ckptBytes
	for e := prev.Epoch + 1; e <= target; e++ {
		ep := s.history[e-1-s.prunedEpochs]
		d = checkpoint.ChainEpoch(d, ep.Number, ep.Hash)
		elems += uint64(len(ep.Elements))
		for _, el := range ep.Elements {
			bytes += uint64(el.Size)
		}
	}
	ck := checkpoint.Checkpoint{Epoch: target, Height: s.curHeight, Elements: elems, Digest: d}
	s.checkpoints = append(s.checkpoints, ck)
	s.ckptFold = checkpoint.FoldEntry(s.ckptFold, ck)
	s.ckptBytes = bytes
	s.chargeCPU(time.Duration(target-prev.Epoch) * s.opts.Costs.PerBatch / 8)
	s.freezeSyncState(ck)
	if s.rec != nil {
		s.rec.CheckpointSealed(s.id, ck, s.opts.Prune)
	}
	if s.opts.Prune {
		s.prune(ck)
	}
}

// prune drops settled state at or below the checkpoint horizon: the
// server's epoch slices and proof maps, the ledger node's per-height
// blocks and commit certificates, and the mempool's committed-key
// tombstones. the_set and the id→epoch membership index stay — they ARE
// the replicated set and the exactly-once filter; what pruning removes is
// the per-epoch and per-block history that only re-proves the past.
func (s *Server) prune(ck checkpoint.Checkpoint) {
	drop := ck.Epoch - s.prunedEpochs
	if drop == 0 {
		return
	}
	for e := s.prunedEpochs + 1; e <= ck.Epoch; e++ {
		delete(s.proofs, e)
	}
	// Copy the tail so the pruned prefix's backing array is released.
	s.history = append([]*Epoch(nil), s.history[drop:]...)
	s.prunedEpochs = ck.Epoch
	s.prunedElements = ck.Elements
	s.node.Checkpointed(ck.Height)
}

// SyncState is the application half of a state-sync snapshot: the
// Setchain state needed on top of the checkpoint chain to resume from the
// seal height. EVERYTHING here is a frozen copy taken at seal time,
// inside the serving server's own event — epoch structs, the membership
// index, the set map. Earlier revisions shared the server's live maps and
// epoch pointers, which violated the read-only-shared-payload convention
// of partitioned runs (DESIGN.md §12): an installer iterating the maps
// raced the serving node mutating them on another partition. Only the
// leaf *wire.Element and *wire.EpochProof pointers are shared — those are
// immutable wire payloads, exactly what the convention permits.
type SyncState struct {
	// Epochs are frozen copies of the created epochs above the checkpoint
	// as of the seal height, ascending by number.
	Epochs []*Epoch
	// Proofs are the proof-signer sets for epochs above the checkpoint as
	// of the seal height.
	Proofs map[uint64]map[wire.NodeID]*wire.EpochProof
	// LastEpoch is the highest created epoch at seal time (the checkpoint
	// epoch when Epochs is empty).
	LastEpoch uint64
	// Members is a frozen copy of the id→epoch index at seal time; every
	// entry has epoch <= LastEpoch.
	Members map[wire.ElementID]uint64
	// Set is a frozen copy of the_set at seal time, keyed consistently
	// with Members.
	Set map[wire.ElementID]*wire.Element
	// PendingSigners carries Hashchain's ledger signer sets for batches
	// not yet consolidated at seal time: their remaining signatures arrive
	// in the replayed suffix and must count on top of these. Sorted per
	// batch for determinism; nil for other algorithms.
	PendingSigners map[wire.Digest][]wire.NodeID
	// CkptBytes is the serving server's modeled element-byte total through
	// the checkpoint, so the installer's next seal sizes its own snapshot
	// consistently.
	CkptBytes uint64
}

// freezeSyncState captures the snapshot served for state-sync requests
// targeting heights at or below this checkpoint. The copy happens here,
// in the serving server's own event, because that is the only
// single-owner moment: once the snapshot is handed to a requester it is
// read on other partitions while this server keeps mutating its live
// maps, so anything short of a freeze-time copy is a data race.
func (s *Server) freezeSyncState(ck checkpoint.Checkpoint) {
	created := s.prunedEpochs + uint64(len(s.history))
	st := &SyncState{
		LastEpoch: created,
		Members:   make(map[wire.ElementID]uint64, len(s.inHistory)),
		Set:       make(map[wire.ElementID]*wire.Element, len(s.theSet)),
		Proofs:    make(map[uint64]map[wire.NodeID]*wire.EpochProof),
		CkptBytes: s.ckptBytes,
	}
	for id, epn := range s.inHistory {
		st.Members[id] = epn
	}
	for id, el := range s.theSet {
		st.Set[id] = el
	}
	size := int(s.ckptBytes) + len(s.checkpoints)*checkpointBinSize
	for e := ck.Epoch + 1; e <= created; e++ {
		ep := s.history[e-1-s.prunedEpochs]
		// Copy the epoch struct and its element-slice header; the element
		// pointers themselves are immutable shared payloads.
		cp := &Epoch{
			Number:   ep.Number,
			Elements: append([]*wire.Element(nil), ep.Elements...),
			Hash:     append([]byte(nil), ep.Hash...),
		}
		st.Epochs = append(st.Epochs, cp)
		size += epochFrameSize
		for _, el := range ep.Elements {
			size += el.Size
		}
		if by := s.proofs[e]; len(by) > 0 {
			cp := make(map[wire.NodeID]*wire.EpochProof, len(by))
			for id, p := range by {
				cp[id] = p
			}
			st.Proofs[e] = cp
			size += len(by) * proofWireSize
		}
	}
	if h, ok := s.alg.(*hashchainAlg); ok {
		st.PendingSigners = h.pendingSigners()
		for _, ids := range st.PendingSigners {
			size += len(ids) * proofWireSize
		}
	}
	s.syncState = &checkpoint.Snapshot{
		Last:  ck,
		Chain: append([]checkpoint.Checkpoint(nil), s.checkpoints...),
		State: st,
		Bytes: size,
	}
}

// SyncSnapshot implements consensus.StateSyncer: the latest frozen
// snapshot, served to peers requesting heights below the checkpoint
// horizon.
func (s *Server) SyncSnapshot() (*checkpoint.Snapshot, bool) {
	return s.syncState, s.syncState != nil
}

// InstallSync implements consensus.StateSyncer: adopt a peer's checkpoint
// snapshot as this server's state. Trust is layered (DESIGN.md §15):
// consensus has ALREADY verified, before calling this, that the
// snapshot's chain folds to the checkpoint commitment a 2f+1-certified
// block header binds — a peer cannot forge sealed history, even history
// this server never saw. What remains here is everything locally
// checkable: the local checkpoint chain must be a prefix of the
// snapshot's, chain digests covering locally retained epochs must
// recompute, the membership index must account for exactly the certified
// cumulative element count, and the snapshot's suffix epochs must hash
// correctly and agree with any local epochs of the same number. The
// end-of-run invariant checker cross-validates every install on top.
// Returns false, leaving state untouched, when the snapshot is stale or
// inconsistent.
func (s *Server) InstallSync(snap *checkpoint.Snapshot) bool {
	st, ok := snap.State.(*SyncState)
	if !ok || st == nil {
		return false
	}
	ck := snap.Last
	total := s.prunedEpochs + uint64(len(s.history))
	if len(snap.Chain) == 0 || snap.Chain[len(snap.Chain)-1] != ck {
		return false
	}
	if st.LastEpoch < total || ck.Epoch+uint64(len(st.Epochs)) != st.LastEpoch {
		return false // snapshot older than local state, or malformed
	}
	// The certified chain commits to the cumulative element count through
	// the checkpoint: the membership index must account for exactly that
	// many elements at or below ck.Epoch (and none beyond LastEpoch), so a
	// peer cannot pad the set with elements hidden below the prune horizon.
	// Set-only entries (added but not yet stamped into an epoch) are legal
	// and ignored at adoption; an INDEXED element missing from the set is
	// not — the index would dangle.
	var below uint64
	for id, epn := range st.Members {
		if st.Set[id] == nil {
			return false
		}
		switch {
		case epn > st.LastEpoch:
			return false
		case epn <= ck.Epoch:
			below++
		}
	}
	if below != ck.Elements {
		return false
	}
	for i, mine := range s.checkpoints {
		// Content prefix (Same): the peer's seal heights may differ from
		// ours by a block (see package checkpoint), which is not divergence.
		if i >= len(snap.Chain) || !snap.Chain[i].Same(mine) {
			return false
		}
	}
	// Recompute chain digests over locally retained epochs: every chain
	// entry whose covered range (prev, entry] lies within local history
	// must match what the local epochs hash to.
	prev := checkpoint.Checkpoint{Digest: checkpoint.Seed()}
	for _, entry := range snap.Chain {
		if entry.Epoch > total {
			break
		}
		if prev.Epoch >= s.prunedEpochs {
			d, elems := prev.Digest, prev.Elements
			for e := prev.Epoch + 1; e <= entry.Epoch; e++ {
				ep := s.history[e-1-s.prunedEpochs]
				d = checkpoint.ChainEpoch(d, ep.Number, ep.Hash)
				elems += uint64(len(ep.Elements))
			}
			if d != entry.Digest || elems != entry.Elements {
				return false
			}
		}
		prev = entry
	}
	// Verify the suffix epochs: contiguous numbering, recomputable hashes,
	// and agreement with local epochs of the same number.
	num := ck.Epoch
	var cost time.Duration
	for _, ep := range st.Epochs {
		num++
		if ep.Number != num || !bytes.Equal(ep.Hash, s.epochHashFor(ep.Number, ep.Elements)) {
			return false
		}
		if num > s.prunedEpochs && num <= total {
			if !bytes.Equal(s.history[num-1-s.prunedEpochs].Hash, ep.Hash) {
				return false
			}
		}
		cost += time.Duration(len(ep.Elements)) * s.opts.Costs.PerElement
	}
	// The suffix must account for the rest of the membership index: every
	// index entry above the checkpoint names a suffix epoch, and that epoch
	// must actually contain the element — otherwise a peer could smuggle
	// elements into the set through the index while every epoch hash still
	// verified.
	var above uint64
	for _, ep := range st.Epochs {
		for _, el := range ep.Elements {
			if epn, ok := st.Members[el.ID]; !ok || epn != ep.Number {
				return false
			}
			above++
		}
	}
	if below+above != uint64(len(st.Members)) {
		return false
	}
	s.chargeCPU(cost)

	// Adopt: checkpoint chain, suffix history, membership through
	// LastEpoch, proof state as of the seal height.
	s.checkpoints = append([]checkpoint.Checkpoint(nil), snap.Chain...)
	s.ckptFold = checkpoint.FoldChain(s.checkpoints)
	s.prunedEpochs = ck.Epoch
	s.prunedElements = ck.Elements
	s.ckptBytes = st.CkptBytes
	s.history = append([]*Epoch(nil), st.Epochs...)
	for id, epn := range st.Members {
		if epn > st.LastEpoch {
			continue
		}
		if _, in := s.inHistory[id]; !in {
			s.inHistory[id] = epn
			if _, ok := s.theSet[id]; !ok {
				if el := st.Set[id]; el != nil {
					s.theSet[id] = el
				}
			}
		}
	}
	s.proofs = make(map[uint64]map[wire.NodeID]*wire.EpochProof, len(st.Proofs))
	for e, by := range st.Proofs {
		cp := make(map[wire.NodeID]*wire.EpochProof, len(by))
		for id, p := range by {
			cp[id] = p
		}
		s.proofs[e] = cp
	}
	s.settled = ck.Epoch
	for len(s.proofs[s.settled+1]) >= s.opts.F+1 {
		s.settled++
	}
	if h, ok := s.alg.(*hashchainAlg); ok {
		h.installPending(st.PendingSigners)
	}
	// Queued blocks predate the checkpoint and are fully covered by the
	// installed state; the replayed suffix arrives through consensus.
	s.blockQueue = nil
	s.syncInstalls++
	if s.opts.Prune {
		s.node.Checkpointed(ck.Height)
	}
	return true
}

// pendingSigners snapshots Hashchain's per-batch ledger signer sets for
// unconsolidated batches, each sorted for deterministic installs.
func (h *hashchainAlg) pendingSigners() map[wire.Digest][]wire.NodeID {
	out := make(map[wire.Digest][]wire.NodeID, len(h.signers))
	for key, set := range h.signers {
		ids := make([]wire.NodeID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[key] = ids
	}
	return out
}

// installPending replaces the signer state with a snapshot's pending
// sets: signatures in blocks at or below the seal height are invisible to
// the installing node, so the suffix replay must count on top of these.
// Own-signature memory is rebuilt from the sets to avoid double-signing.
func (h *hashchainAlg) installPending(pending map[wire.Digest][]wire.NodeID) {
	h.signers = make(map[wire.Digest]map[wire.NodeID]bool, len(pending))
	for key, ids := range pending {
		set := make(map[wire.NodeID]bool, len(ids))
		for _, id := range ids {
			set[id] = true
			if id == h.s.id {
				h.signedOwn[key] = true
			}
		}
		h.signers[key] = set
	}
}

// Checkpoints returns the sealed checkpoint chain (read-only).
func (s *Server) Checkpoints() []checkpoint.Checkpoint { return s.checkpoints }

// Settled returns the settled-prefix watermark: epochs 1..Settled have
// f+1 proofs locally.
func (s *Server) Settled() uint64 { return s.settled }

// SyncInstalls returns how many checkpoint snapshots this server has
// installed (state-sync recoveries).
func (s *Server) SyncInstalls() uint64 { return s.syncInstalls }

// HeaderCommitment implements consensus.StateSyncer: the latest sealed
// checkpoint epoch and the fold of the chain through it, stamped into
// every block header this server proposes. (0, checkpoint.Seed()) before
// any seal.
func (s *Server) HeaderCommitment() (uint64, uint64) {
	return s.lastCheckpointEpoch(), s.ckptFold
}

// VerifyCommitment implements consensus.StateSyncer: check a proposed
// header's claimed checkpoint commitment against local sealing. Seal
// points and content are deterministic across correct servers, so a
// claim at or below the local horizon must match the local chain prefix
// bit for bit; a claim ahead of local sealing passes — this validator
// cannot falsify state it has not computed yet, which is exactly the
// f+1-honest-signatures trust state-sync relies on (DESIGN.md §15).
func (s *Server) VerifyCommitment(epoch, fold uint64) bool {
	last := s.lastCheckpointEpoch()
	if epoch > last {
		return true
	}
	if epoch == last {
		return fold == s.ckptFold
	}
	h := checkpoint.Seed()
	for _, c := range s.checkpoints {
		if c.Epoch > epoch {
			break
		}
		h = checkpoint.FoldEntry(h, c)
		if c.Epoch == epoch {
			return h == fold
		}
	}
	// epoch is below the horizon but not a seal point: only the empty
	// chain (epoch 0) is claimable there.
	return epoch == 0 && fold == h
}

// ForgeSyncSnapshot implements consensus.SnapshotForger when the server's
// Byzantine behavior enables ForgeSnapshot: a deep-copied snapshot
// extended with one fabricated checkpoint that "settles" the honest
// suffix plus a forged epoch of bogus elements. The forgery is crafted to
// pass every LOCAL check a behind requester can run — internally
// consistent digests, hashes, and element counts — so before the header
// binding it installed cleanly and smuggled bogus elements into the
// requester's set; the certified fold check rejects it because the
// fabricated chain cannot fold to any quorum-signed commitment. Returns
// nil (serve honestly) when the behavior is off.
func (s *Server) ForgeSyncSnapshot(snap *checkpoint.Snapshot) *checkpoint.Snapshot {
	if s.behavior == nil || !s.behavior.ForgeSnapshot || snap == nil {
		return nil
	}
	st, ok := snap.State.(*SyncState)
	if !ok || st == nil {
		return nil
	}
	const bogusN = 3
	forgedNum := st.LastEpoch + 1
	bogus := make([]*wire.Element, 0, bogusN)
	for i := 0; i < bogusN; i++ {
		e := &wire.Element{Client: wire.ClientID(-1), Size: 438, Bogus: true}
		e.ID[0] = 0xFD // forged-snapshot marker, distinct from injectBogus's 0xBB
		e.ID[1] = byte(s.id)
		e.ID[2] = byte(forgedNum)
		e.ID[3] = byte(i)
		bogus = append(bogus, e)
	}
	forgedEp := &Epoch{Number: forgedNum, Elements: bogus}
	forgedEp.Hash = s.epochHashFor(forgedNum, bogus)

	// Fabricated checkpoint covering (Last.Epoch, forgedNum]: chain the
	// honest suffix epochs, then the forged one — internally consistent,
	// provably unsigned.
	d, elems, bytes := snap.Last.Digest, snap.Last.Elements, st.CkptBytes
	for _, ep := range st.Epochs {
		d = checkpoint.ChainEpoch(d, ep.Number, ep.Hash)
		elems += uint64(len(ep.Elements))
		for _, el := range ep.Elements {
			bytes += uint64(el.Size)
		}
	}
	d = checkpoint.ChainEpoch(d, forgedEp.Number, forgedEp.Hash)
	elems += bogusN
	for _, el := range bogus {
		bytes += uint64(el.Size)
	}
	ckF := checkpoint.Checkpoint{Epoch: forgedNum, Height: snap.Last.Height, Elements: elems, Digest: d}

	fst := &SyncState{
		LastEpoch: forgedNum,
		Members:   make(map[wire.ElementID]uint64, len(st.Members)+bogusN),
		Set:       make(map[wire.ElementID]*wire.Element, len(st.Set)+bogusN),
		Proofs:    make(map[uint64]map[wire.NodeID]*wire.EpochProof),
		// Everything is claimed sealed, so no suffix epochs and no pending
		// proof state survive the fabricated horizon.
		PendingSigners: st.PendingSigners,
		CkptBytes:      bytes,
	}
	for id, epn := range st.Members {
		fst.Members[id] = epn
	}
	for id, el := range st.Set {
		fst.Set[id] = el
	}
	for _, el := range bogus {
		fst.Members[el.ID] = forgedNum
		fst.Set[el.ID] = el
	}
	return &checkpoint.Snapshot{
		Last:  ckF,
		Chain: append(append([]checkpoint.Checkpoint(nil), snap.Chain...), ckF),
		State: fst,
		Bytes: snap.Bytes + bogusN*438,
	}
}
