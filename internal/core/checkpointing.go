package core

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/wire"
)

// This file is the server half of the epoch-checkpoint subsystem
// (internal/checkpoint; DESIGN.md §11): sealing a checkpoint every K
// settled epochs, pruning settled state below the horizon, and serving /
// installing state-sync snapshots so a restarted node recovers from the
// latest checkpoint plus a block suffix instead of replaying the whole
// chain.
//
// Determinism argument, in one place: an epoch settles when its f+1-th
// valid proof is processed, proofs travel only inside committed blocks,
// and block processing is strictly ordered — so every correct server
// seals checkpoints with identical content (epoch, cumulative elements,
// digest). That agreement is what the invariant checker verifies in place
// of the pruned epochs. The seal Height is NOT part of the agreement: a
// proof rides in a batch, and a server whose fetch of that batch failed
// (crashed signer) extracts its proofs a block later than peers that held
// the batch locally, so heights may trail by a block under faults —
// cross-server comparisons use checkpoint.Same, which ignores Height.

// Modeled wire sizes for the state-sync snapshot: a real transfer ships
// the set's elements plus per-epoch and per-proof framing.
const (
	proofWireSize     = 139 // same envelope class as a signed hash-batch
	epochFrameSize    = 80  // number + hash + element-count framing
	checkpointBinSize = 32  // four 64-bit words
)

// maybeSeal seals every checkpoint interval the settled prefix has
// crossed. Called only at block-processing boundaries (processNext), so a
// frozen snapshot always reflects COMPLETE processing of blocks
// 1..curHeight and a state-syncing peer can replay from curHeight+1
// without a gap.
func (s *Server) maybeSeal() {
	k := uint64(s.opts.CheckpointInterval)
	if k == 0 {
		return
	}
	for s.settled >= s.lastCheckpointEpoch()+k {
		s.seal(s.lastCheckpointEpoch() + k)
	}
}

func (s *Server) lastCheckpointEpoch() uint64 {
	if len(s.checkpoints) == 0 {
		return 0
	}
	return s.checkpoints[len(s.checkpoints)-1].Epoch
}

// seal creates the checkpoint covering epochs 1..target, extending the
// previous checkpoint's digest chain over the newly settled range, then
// freezes the state-sync snapshot and (when enabled) prunes below the
// horizon.
func (s *Server) seal(target uint64) {
	prev := checkpoint.Checkpoint{Digest: checkpoint.Seed()}
	if len(s.checkpoints) > 0 {
		prev = s.checkpoints[len(s.checkpoints)-1]
	}
	d, elems, bytes := prev.Digest, prev.Elements, s.ckptBytes
	for e := prev.Epoch + 1; e <= target; e++ {
		ep := s.history[e-1-s.prunedEpochs]
		d = checkpoint.ChainEpoch(d, ep.Number, ep.Hash)
		elems += uint64(len(ep.Elements))
		for _, el := range ep.Elements {
			bytes += uint64(el.Size)
		}
	}
	ck := checkpoint.Checkpoint{Epoch: target, Height: s.curHeight, Elements: elems, Digest: d}
	s.checkpoints = append(s.checkpoints, ck)
	s.ckptBytes = bytes
	s.chargeCPU(time.Duration(target-prev.Epoch) * s.opts.Costs.PerBatch / 8)
	s.freezeSyncState(ck)
	if s.rec != nil {
		s.rec.CheckpointSealed(s.id, ck, s.opts.Prune)
	}
	if s.opts.Prune {
		s.prune(ck)
	}
}

// prune drops settled state at or below the checkpoint horizon: the
// server's epoch slices and proof maps, the ledger node's per-height
// blocks and commit certificates, and the mempool's committed-key
// tombstones. the_set and the id→epoch membership index stay — they ARE
// the replicated set and the exactly-once filter; what pruning removes is
// the per-epoch and per-block history that only re-proves the past.
func (s *Server) prune(ck checkpoint.Checkpoint) {
	drop := ck.Epoch - s.prunedEpochs
	if drop == 0 {
		return
	}
	for e := s.prunedEpochs + 1; e <= ck.Epoch; e++ {
		delete(s.proofs, e)
	}
	// Copy the tail so the pruned prefix's backing array is released.
	s.history = append([]*Epoch(nil), s.history[drop:]...)
	s.prunedEpochs = ck.Epoch
	s.prunedElements = ck.Elements
	s.node.Checkpointed(ck.Height)
}

// SyncState is the application half of a state-sync snapshot: the
// Setchain state needed on top of the checkpoint chain to resume from the
// seal height. Epochs and Proofs are frozen copies taken at seal time;
// Members and Set are the serving server's live maps — epoch assignment
// is immutable and monotone, so filtering Members by epoch <= LastEpoch
// reconstructs the exact seal-time membership no matter when the snapshot
// is installed.
type SyncState struct {
	// Epochs are the created epochs above the checkpoint as of the seal
	// height, ascending by number.
	Epochs []*Epoch
	// Proofs are the proof-signer sets for epochs above the checkpoint as
	// of the seal height.
	Proofs map[uint64]map[wire.NodeID]*wire.EpochProof
	// LastEpoch is the highest created epoch at seal time (the checkpoint
	// epoch when Epochs is empty).
	LastEpoch uint64
	// Members is the serving server's live id→epoch index; only entries
	// with epoch <= LastEpoch belong to the snapshot.
	Members map[wire.ElementID]uint64
	// Set is the serving server's live the_set, keyed consistently with
	// Members.
	Set map[wire.ElementID]*wire.Element
	// PendingSigners carries Hashchain's ledger signer sets for batches
	// not yet consolidated at seal time: their remaining signatures arrive
	// in the replayed suffix and must count on top of these. Sorted per
	// batch for determinism; nil for other algorithms.
	PendingSigners map[wire.Digest][]wire.NodeID
	// CkptBytes is the serving server's modeled element-byte total through
	// the checkpoint, so the installer's next seal sizes its own snapshot
	// consistently.
	CkptBytes uint64
}

// freezeSyncState captures the snapshot served for state-sync requests
// targeting heights at or below this checkpoint.
func (s *Server) freezeSyncState(ck checkpoint.Checkpoint) {
	created := s.prunedEpochs + uint64(len(s.history))
	st := &SyncState{
		LastEpoch: created,
		Members:   s.inHistory,
		Set:       s.theSet,
		Proofs:    make(map[uint64]map[wire.NodeID]*wire.EpochProof),
		CkptBytes: s.ckptBytes,
	}
	size := int(s.ckptBytes) + len(s.checkpoints)*checkpointBinSize
	for e := ck.Epoch + 1; e <= created; e++ {
		ep := s.history[e-1-s.prunedEpochs]
		st.Epochs = append(st.Epochs, ep)
		size += epochFrameSize
		for _, el := range ep.Elements {
			size += el.Size
		}
		if by := s.proofs[e]; len(by) > 0 {
			cp := make(map[wire.NodeID]*wire.EpochProof, len(by))
			for id, p := range by {
				cp[id] = p
			}
			st.Proofs[e] = cp
			size += len(by) * proofWireSize
		}
	}
	if h, ok := s.alg.(*hashchainAlg); ok {
		st.PendingSigners = h.pendingSigners()
		for _, ids := range st.PendingSigners {
			size += len(ids) * proofWireSize
		}
	}
	s.syncState = &checkpoint.Snapshot{
		Last:  ck,
		Chain: append([]checkpoint.Checkpoint(nil), s.checkpoints...),
		State: st,
		Bytes: size,
	}
}

// SyncSnapshot implements consensus.StateSyncer: the latest frozen
// snapshot, served to peers requesting heights below the checkpoint
// horizon.
func (s *Server) SyncSnapshot() (*checkpoint.Snapshot, bool) {
	return s.syncState, s.syncState != nil
}

// InstallSync implements consensus.StateSyncer: adopt a peer's checkpoint
// snapshot as this server's state. The snapshot is verified against
// everything locally known — the local checkpoint chain must be a prefix
// of the snapshot's, chain digests covering locally retained epochs must
// recompute, the snapshot's suffix epochs must hash correctly and agree
// with any local epochs of the same number. (A Byzantine peer could still
// forge state beyond local knowledge; a production system closes that by
// binding the checkpoint digest into the certified block headers —
// DESIGN.md §11 — and the end-of-run invariant checker cross-validates
// every install here.) Returns false, leaving state untouched, when the
// snapshot is stale or inconsistent.
func (s *Server) InstallSync(snap *checkpoint.Snapshot) bool {
	st, ok := snap.State.(*SyncState)
	if !ok || st == nil {
		return false
	}
	ck := snap.Last
	total := s.prunedEpochs + uint64(len(s.history))
	if len(snap.Chain) == 0 || snap.Chain[len(snap.Chain)-1] != ck {
		return false
	}
	if st.LastEpoch < total || ck.Epoch+uint64(len(st.Epochs)) != st.LastEpoch {
		return false // snapshot older than local state, or malformed
	}
	for i, mine := range s.checkpoints {
		// Content prefix (Same): the peer's seal heights may differ from
		// ours by a block (see package checkpoint), which is not divergence.
		if i >= len(snap.Chain) || !snap.Chain[i].Same(mine) {
			return false
		}
	}
	// Recompute chain digests over locally retained epochs: every chain
	// entry whose covered range (prev, entry] lies within local history
	// must match what the local epochs hash to.
	prev := checkpoint.Checkpoint{Digest: checkpoint.Seed()}
	for _, entry := range snap.Chain {
		if entry.Epoch > total {
			break
		}
		if prev.Epoch >= s.prunedEpochs {
			d, elems := prev.Digest, prev.Elements
			for e := prev.Epoch + 1; e <= entry.Epoch; e++ {
				ep := s.history[e-1-s.prunedEpochs]
				d = checkpoint.ChainEpoch(d, ep.Number, ep.Hash)
				elems += uint64(len(ep.Elements))
			}
			if d != entry.Digest || elems != entry.Elements {
				return false
			}
		}
		prev = entry
	}
	// Verify the suffix epochs: contiguous numbering, recomputable hashes,
	// and agreement with local epochs of the same number.
	num := ck.Epoch
	var cost time.Duration
	for _, ep := range st.Epochs {
		num++
		if ep.Number != num || !bytes.Equal(ep.Hash, s.epochHashFor(ep.Number, ep.Elements)) {
			return false
		}
		if num > s.prunedEpochs && num <= total {
			if !bytes.Equal(s.history[num-1-s.prunedEpochs].Hash, ep.Hash) {
				return false
			}
		}
		cost += time.Duration(len(ep.Elements)) * s.opts.Costs.PerElement
	}
	s.chargeCPU(cost)

	// Adopt: checkpoint chain, suffix history, membership through
	// LastEpoch, proof state as of the seal height.
	s.checkpoints = append([]checkpoint.Checkpoint(nil), snap.Chain...)
	s.prunedEpochs = ck.Epoch
	s.prunedElements = ck.Elements
	s.ckptBytes = st.CkptBytes
	s.history = append([]*Epoch(nil), st.Epochs...)
	for id, epn := range st.Members {
		if epn > st.LastEpoch {
			continue
		}
		if _, in := s.inHistory[id]; !in {
			s.inHistory[id] = epn
			if _, ok := s.theSet[id]; !ok {
				if el := st.Set[id]; el != nil {
					s.theSet[id] = el
				}
			}
		}
	}
	s.proofs = make(map[uint64]map[wire.NodeID]*wire.EpochProof, len(st.Proofs))
	for e, by := range st.Proofs {
		cp := make(map[wire.NodeID]*wire.EpochProof, len(by))
		for id, p := range by {
			cp[id] = p
		}
		s.proofs[e] = cp
	}
	s.settled = ck.Epoch
	for len(s.proofs[s.settled+1]) >= s.opts.F+1 {
		s.settled++
	}
	if h, ok := s.alg.(*hashchainAlg); ok {
		h.installPending(st.PendingSigners)
	}
	// Queued blocks predate the checkpoint and are fully covered by the
	// installed state; the replayed suffix arrives through consensus.
	s.blockQueue = nil
	s.syncInstalls++
	if s.opts.Prune {
		s.node.Checkpointed(ck.Height)
	}
	return true
}

// pendingSigners snapshots Hashchain's per-batch ledger signer sets for
// unconsolidated batches, each sorted for deterministic installs.
func (h *hashchainAlg) pendingSigners() map[wire.Digest][]wire.NodeID {
	out := make(map[wire.Digest][]wire.NodeID, len(h.signers))
	for key, set := range h.signers {
		ids := make([]wire.NodeID, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[key] = ids
	}
	return out
}

// installPending replaces the signer state with a snapshot's pending
// sets: signatures in blocks at or below the seal height are invisible to
// the installing node, so the suffix replay must count on top of these.
// Own-signature memory is rebuilt from the sets to avoid double-signing.
func (h *hashchainAlg) installPending(pending map[wire.Digest][]wire.NodeID) {
	h.signers = make(map[wire.Digest]map[wire.NodeID]bool, len(pending))
	for key, ids := range pending {
		set := make(map[wire.NodeID]bool, len(ids))
		for _, id := range ids {
			set[id] = true
			if id == h.s.id {
				h.signedOwn[key] = true
			}
		}
		h.signers[key] = set
	}
}

// Checkpoints returns the sealed checkpoint chain (read-only).
func (s *Server) Checkpoints() []checkpoint.Checkpoint { return s.checkpoints }

// Settled returns the settled-prefix watermark: epochs 1..Settled have
// f+1 proofs locally.
func (s *Server) Settled() uint64 { return s.settled }

// SyncInstalls returns how many checkpoint snapshots this server has
// installed (state-sync recoveries).
func (s *Server) SyncInstalls() uint64 { return s.syncInstalls }
