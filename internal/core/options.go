// Package core implements the paper's contribution: the three Setchain
// algorithms — Vanilla, Compresschain and Hashchain (§3, Appendix B) —
// as replicated applications over the block-based ledger, together with
// epoch-proofs, the batch collector pipeline, Hashchain's hash-reversal
// protocol with f+1 consolidation, and the client-side verification logic.
//
// See DESIGN.md §1 (the Full/Modeled fidelity modes) and §3 (where the
// implementation deliberately refines the paper's pseudocode).
package core

import (
	"time"

	"repro/internal/batchstore"
	"repro/internal/compressor"
)

// Algorithm selects which of the paper's three implementations a server
// runs.
type Algorithm int

// The paper's algorithms in order of presentation.
const (
	// Vanilla appends every element as its own ledger transaction; each
	// block's fresh valid elements form one epoch.
	Vanilla Algorithm = iota
	// Compresschain batches elements in a collector and appends each
	// compressed batch as one transaction; each batch becomes one epoch.
	Compresschain
	// Hashchain appends only the signed 139-byte hash of each batch; a
	// batch consolidates into an epoch after f+1 servers sign its hash.
	Hashchain
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case Vanilla:
		return "Vanilla"
	case Compresschain:
		return "Compresschain"
	case Hashchain:
		return "Hashchain"
	default:
		return "unknown"
	}
}

// Mode selects byte-path fidelity.
type Mode int

// Execution modes.
const (
	// Modeled carries exact wire sizes but no payload bytes; compression
	// uses the paper's measured ratios and crypto CPU cost is charged to
	// the simulated CPU via the CostModel. Used for large evaluations.
	Modeled Mode = iota
	// Full carries real payloads through real DEFLATE, real ed25519 and
	// real SHA-512-shaped hashing. Used by correctness tests and examples.
	Full
)

// CostModel charges realistic CPU time for the work a real server would
// do, to the per-server serial CPU resource. The defaults are calibrated so
// the simulation reproduces the paper's measured ceilings — most notably
// Hashchain's ~20k el/s limit, which the paper attributes to the
// hash-reversal path (every server fetches and validates every batch).
// The zero CostModel charges nothing (pure-logic unit tests).
type CostModel struct {
	// VerifyElement is per-element signature verification (ed25519 verify
	// of a ~438-byte message is ~45µs on the paper's Xeon class hardware).
	VerifyElement time.Duration
	// PerElement is per-element bookkeeping (dedup lookups, set inserts,
	// epoch assembly) along the full pipeline.
	PerElement time.Duration
	// SignCost is one ed25519 signature generation.
	SignCost time.Duration
	// VerifySig is one batch-level signature verification (hash-batches,
	// epoch-proofs, consensus artifacts).
	VerifySig time.Duration
	// HashPerByte is SHA-512 throughput (~3 ns/B single-threaded).
	HashPerByte time.Duration
	// CompressPerByte / DecompressPerByte model Brotli-class codecs.
	CompressPerByte   time.Duration
	DecompressPerByte time.Duration
	// PerBatch is fixed per-batch handling (framing, RPC dispatch, map
	// shuffling) on every batch-touching operation.
	PerBatch time.Duration
}

// PaperCostModel returns costs calibrated to the paper's platform (Intel
// Xeon E-2186G @3.8GHz). With these values a single server core saturates
// at ≈1/(VerifyElement+PerElement) ≈ 20k el/s with validation on, and at
// ≈1/PerElement ≈ 160k el/s without — the two ceilings Fig. 2 (left)
// reports (20,061 and 133,882 el/s average over the first 50 s).
func PaperCostModel() CostModel {
	return CostModel{
		VerifyElement:     34 * time.Microsecond,
		PerElement:        2 * time.Microsecond,
		SignCost:          20 * time.Microsecond,
		VerifySig:         30 * time.Microsecond,
		HashPerByte:       3 * time.Nanosecond,
		CompressPerByte:   30 * time.Nanosecond,
		DecompressPerByte: 10 * time.Nanosecond,
		PerBatch:          100 * time.Microsecond,
	}
}

// IsZero reports whether no costs are charged.
func (c CostModel) IsZero() bool { return c == CostModel{} }

// Options configures a Setchain server.
type Options struct {
	// Algorithm selects Vanilla, Compresschain or Hashchain.
	Algorithm Algorithm
	// Mode selects Full or Modeled byte paths.
	Mode Mode
	// Light disables the expensive half of the pipeline, reproducing the
	// paper's Fig. 2 ablation: for Hashchain it removes hash-reversal and
	// hash-batch validation (all servers assumed correct, batches come
	// from a shared oracle); for Compresschain it removes decompression
	// and validation. Ignored by Vanilla.
	Light bool
	// CollectorLimit is the paper's collector size c (elements per batch;
	// 100 or 500 in the evaluation). Unused by Vanilla.
	CollectorLimit int
	// CollectorTimeout flushes a partial batch after this long.
	CollectorTimeout time.Duration
	// RequestTimeout bounds one Request_batch attempt (the paper: "waits
	// for a limited amount of time").
	RequestTimeout time.Duration
	// RetryBackoff spaces retry cycles when a batch with f+1 signatures
	// must be recovered before epoch processing can continue.
	RetryBackoff time.Duration
	// Costs charges simulated CPU time; zero charges nothing.
	Costs CostModel
	// Ratio is the modeled compression ratio model (Modeled mode).
	Ratio compressor.RatioModel
	// Deflate is the real compressor (Full mode).
	Deflate compressor.Deflate
	// SharedStore is the out-of-band batch oracle used by Hashchain Light
	// (paper Fig. 2: hash-reversal removed). All Light servers must share
	// one instance.
	SharedStore *batchstore.Store
	// F is the Setchain fault bound (max Byzantine servers, f < n/2);
	// commit and consolidation both use f+1. Defaults to (n-1)/2.
	F int
	// CheckpointInterval seals a digest checkpoint every this many settled
	// epochs (internal/checkpoint); 0 disables checkpointing. All servers
	// of one instance must agree on the interval — seal points are part of
	// the replicated state machine.
	CheckpointInterval int
	// Prune drops settled state below each new checkpoint: server epoch
	// history, the ledger's per-height blocks and commit certificates, and
	// mempool tombstones. Requires CheckpointInterval > 0. The set itself
	// (the_set and the id→epoch membership index) is never pruned — it is
	// the data structure Setchain replicates.
	Prune bool
}

func (o Options) withDefaults(n int) Options {
	if o.CollectorLimit == 0 {
		o.CollectorLimit = 100
	}
	if o.CollectorTimeout == 0 {
		o.CollectorTimeout = 500 * time.Millisecond
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 500 * time.Millisecond
	}
	if o.Ratio == (compressor.RatioModel{}) {
		o.Ratio = compressor.PaperRatioModel()
	}
	if o.F == 0 {
		o.F = (n - 1) / 2
	}
	return o
}

// Behavior injects Byzantine behavior into a server. A nil *Behavior (or
// the zero value) is a correct server. All hooks are optional.
type Behavior struct {
	// RefuseServe makes the server ignore batch requests for which it
	// returns true (the Byzantine signer that "refuses to provide the
	// batch that corresponds to the hash").
	RefuseServe func(to int, hash []byte) bool
	// ServeWrongBatch makes responses carry a corrupted batch whose hash
	// does not match (detected by requesters).
	ServeWrongBatch bool
	// CorruptProofs makes the server sign garbage epoch hashes, producing
	// invalid epoch-proofs that correct servers and clients must reject.
	CorruptProofs bool
	// InjectBogusElements adds this many invalid elements to every batch
	// the server creates (Compresschain/Hashchain) — the attack the
	// paper's validation in FinalizeBlock exists to filter.
	InjectBogusElements int
	// ForgeSnapshot makes the server corrupt every state-sync snapshot it
	// serves — a fabricated extra checkpoint smuggling bogus elements past
	// the requester's local knowledge, attached to the legitimate commit
	// certificate. Caught by the certified-header fold check
	// (DESIGN.md §15); installs cleanly if that check is sabotaged.
	ForgeSnapshot bool
}
