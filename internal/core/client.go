package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/setcrypto"
	"repro/internal/wire"
)

// Client is a Setchain client: it creates signed elements, adds them
// through a single server, and can later verify — against the response of a
// single, possibly Byzantine, server — that an element is committed, using
// the f+1 epoch-proof rule the paper introduces.
type Client struct {
	id       wire.ClientID
	suite    setcrypto.Suite
	key      setcrypto.KeyPair
	registry *setcrypto.Registry
	n        int
	f        int
	mode     Mode
	seq      uint64
}

// NewClient creates a client. n and f describe the deployment; the
// client's public key must already be registered in the PKI at id offset n
// (see RegisterClientKey).
func NewClient(id wire.ClientID, suite setcrypto.Suite, key setcrypto.KeyPair,
	registry *setcrypto.Registry, n, f int, mode Mode) *Client {
	return &Client{id: id, suite: suite, key: key, registry: registry, n: n, f: f, mode: mode}
}

// RegisterClientKey records a client's public key in the shared PKI,
// mapping client ids after the n server ids.
func RegisterClientKey(registry *setcrypto.Registry, n int, id wire.ClientID, pub setcrypto.PublicKey) {
	registry.Register(int(id)+clientKeyOffset(n), pub)
}

// ID returns the client id.
func (c *Client) ID() wire.ClientID { return c.id }

// PublicKey returns the client's verification key, so deployments that
// span several PKI registries (sharded worlds, where a client's element
// may land on any shard) can register it everywhere.
func (c *Client) PublicKey() setcrypto.PublicKey { return c.key.Public }

// NewElement creates and signs a full-fidelity element carrying payload.
func (c *Client) NewElement(payload []byte) *wire.Element {
	c.seq++
	e := &wire.Element{
		Client:  c.id,
		Seq:     c.seq,
		Payload: payload,
	}
	c.fillID(e)
	e.Sig = c.suite.Sign(c.key, e.SigningBytes())
	e.Size = wire.ElementHeaderSize + len(payload) + len(e.Sig)
	return e
}

// NewModeledElement creates a payload-free element with the given wire
// size, for Modeled-mode simulations.
func (c *Client) NewModeledElement(size int) *wire.Element {
	c.seq++
	e := &wire.Element{Client: c.id, Seq: c.seq, Size: size}
	c.fillID(e)
	return e
}

func (c *Client) fillID(e *wire.Element) {
	binary.LittleEndian.PutUint64(e.ID[0:8], uint64(c.id))
	binary.LittleEndian.PutUint64(e.ID[8:16], e.Seq)
}

// Verification errors.
var (
	ErrNotInEpoch         = errors.New("setchain: element not assigned to an epoch yet")
	ErrInsufficientProofs = errors.New("setchain: fewer than f+1 valid epoch-proofs")
)

// VerifyCommitted checks — trusting nothing but the PKI — that the element
// is committed according to a server's get() response: the element must be
// in some epoch of the returned history, and the returned proofs must
// contain at least f+1 valid signatures over that epoch's recomputed hash
// (paper §2, Epoch-proofs). Returns the epoch number on success.
func (c *Client) VerifyCommitted(snap Snapshot, id wire.ElementID) (uint64, error) {
	for _, ep := range snap.History {
		for _, e := range ep.Elements {
			if e.ID == id {
				return ep.Number, c.verifyEpoch(snap, ep)
			}
		}
	}
	return 0, ErrNotInEpoch
}

func (c *Client) verifyEpoch(snap Snapshot, ep *Epoch) error {
	// Recompute the epoch hash from the server-supplied content; a
	// Byzantine server cannot fabricate f+1 signatures over a fake epoch.
	want := c.suite.HashData(wire.EpochHashInput(ep.Number, ep.Elements))
	valid := 0
	for signer, p := range snap.Proofs[ep.Number] {
		if p == nil || p.Signer != signer {
			continue
		}
		if wire.VerifyEpochProof(c.suite, c.registry, p, want) {
			valid++
		}
	}
	if valid < c.f+1 {
		return fmt.Errorf("%w: %d of %d", ErrInsufficientProofs, valid, c.f+1)
	}
	return nil
}

// CountValidProofs returns how many of the snapshot's proofs for an epoch
// verify against the recomputed epoch hash.
func (c *Client) CountValidProofs(snap Snapshot, epoch uint64) int {
	if epoch < 1 || epoch > uint64(len(snap.History)) {
		return 0
	}
	ep := snap.History[epoch-1]
	want := c.suite.HashData(wire.EpochHashInput(ep.Number, ep.Elements))
	valid := 0
	for _, p := range snap.Proofs[epoch] {
		if wire.VerifyEpochProof(c.suite, c.registry, p, want) {
			valid++
		}
	}
	return valid
}
