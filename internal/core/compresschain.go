package core

import (
	"time"

	"repro/internal/codec"
	"repro/internal/collector"
	"repro/internal/wire"
)

// compressAlg implements Algorithm Compresschain (paper §3): elements and
// epoch-proofs accumulate in the collector; a ready batch is compressed and
// appended to the ledger as a single transaction; each transaction in a
// committed block decompresses into one epoch.
//
// The Light variant (paper Fig. 2's "Compresschain Light") skips
// decompression and element validation CPU, measuring their impact.
type compressAlg struct {
	s   *Server
	seq uint64
}

func newCompressAlg(s *Server) *compressAlg {
	c := &compressAlg{s: s}
	s.coll = collector.New(s.sim, s.opts.CollectorLimit, s.opts.CollectorTimeout, c.flushBatch)
	return c
}

func (c *compressAlg) onAdd(e *wire.Element) { c.s.coll.AddElement(e) }

func (c *compressAlg) checkTx(tx *wire.Tx) bool { return true }

func (c *compressAlg) drain() { c.s.coll.Flush() }

// flushBatch is the isReady(batch) handler: compress and append.
func (c *compressAlg) flushBatch(b *wire.Batch) {
	s := c.s
	s.injectBogus(b)
	raw := b.RawSize()
	cb := &wire.CompressedBatch{Origin: s.id, Seq: c.seq}
	c.seq++
	if s.opts.Mode == Full {
		blob, err := s.opts.Deflate.Compress(codec.EncodeBatch(b))
		if err != nil {
			return // cannot happen with flate on valid input
		}
		cb.Data = blob
		cb.CompSize = len(blob)
	} else {
		cb.CompSize = s.opts.Ratio.CompressedSize(b.Len(), raw)
		cb.Original = b
	}
	s.chargeCPU(time.Duration(raw)*s.opts.Costs.CompressPerByte + s.opts.Costs.PerBatch)
	tx := &wire.Tx{Kind: wire.TxCompressedBatch, Compressed: cb}
	if s.rec != nil {
		s.rec.RegisterCarrier(tx.MapKey(), b.Elements)
	}
	s.node.Append(tx)
}

// decode recovers the original batch from a compressed transaction, or nil
// if the blob is corrupt (a Byzantine server's garbage).
func (c *compressAlg) decode(cb *wire.CompressedBatch) *wire.Batch {
	if c.s.opts.Mode == Full {
		data, err := c.s.opts.Deflate.Decompress(cb.Data)
		if err != nil {
			return nil
		}
		b, err := codec.DecodeBatch(data)
		if err != nil {
			return nil
		}
		return b
	}
	return cb.Original
}

func (c *compressAlg) processBlock(b *wire.Block, done func()) {
	s := c.s
	type item struct {
		batch *wire.Batch
	}
	var items []item
	var cost time.Duration
	for _, tx := range b.Txs {
		if tx.Kind != wire.TxCompressedBatch {
			continue
		}
		batch := c.decode(tx.Compressed)
		items = append(items, item{batch: batch})
		if batch == nil {
			continue
		}
		cost += s.opts.Costs.PerBatch
		if s.opts.Light {
			// Light skips decompression and validation entirely; only
			// bookkeeping cost remains.
			cost += time.Duration(len(batch.Elements)) * s.opts.Costs.PerElement
			continue
		}
		cost += time.Duration(batch.RawSize()) * s.opts.Costs.DecompressPerByte
		cost += time.Duration(len(batch.Elements)) *
			(s.opts.Costs.VerifyElement + s.opts.Costs.PerElement)
	}
	s.runCosted(cost, func() {
		for _, it := range items {
			batch := it.batch
			if batch == nil || batch.Empty() {
				continue // paper line 21: undecodable or empty -> skip
			}
			for _, p := range batch.Proofs {
				s.acceptProof(p)
			}
			g := s.freshValid(batch.Elements)
			if len(g) == 0 {
				// Proof-only (or fully duplicate) batches contribute no
				// epoch; see the quiescence note on vanillaAlg.
				continue
			}
			p := s.createEpoch(g)
			s.coll.AddProof(p)
		}
		done()
	})
}
