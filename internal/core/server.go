package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/batchstore"
	"repro/internal/checkpoint"
	"repro/internal/collector"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/setcrypto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Errors returned by Add.
var (
	ErrInvalidElement = errors.New("setchain: invalid element")
	ErrDuplicate      = errors.New("setchain: element already in the_set")
	ErrAdmission      = errors.New("setchain: admission control refused element (mempool saturated)")
)

// Epoch is one entry of the Setchain history: an epoch number and the set
// of elements stamped with it. Elements keep their ledger order so all
// servers hash the epoch identically.
type Epoch struct {
	Number   uint64
	Elements []*wire.Element
	Hash     []byte // canonical Hash(number, elements)
}

// Snapshot is the result of S.get(): (the_set, history, epoch, proofs).
// It is a zero-copy view of live server state, valid until the next
// simulator event; callers must treat it as read-only.
type Snapshot struct {
	Server  wire.NodeID
	TheSet  map[wire.ElementID]*wire.Element
	History []*Epoch
	Epoch   uint64
	Proofs  map[uint64]map[wire.NodeID]*wire.EpochProof
	// PrunedEpochs is the settled prefix dropped below the checkpoint
	// horizon: History[0] is epoch PrunedEpochs+1 and Epoch counts the
	// pruned prefix too. Zero when pruning never ran.
	PrunedEpochs uint64
	// PrunedElements is the element count of the pruned prefix — equal to
	// the latest checkpoint's cumulative Elements.
	PrunedElements uint64
	// Checkpoints is the server's sealed checkpoint chain, ascending
	// (empty when checkpointing is off).
	Checkpoints []checkpoint.Checkpoint
}

// algorithm is the per-variant behavior behind the shared server machinery.
type algorithm interface {
	// onAdd runs after a valid fresh element entered the_set.
	onAdd(e *wire.Element)
	// checkTx is the algorithm part of ABCI CheckTx.
	checkTx(tx *wire.Tx) bool
	// processBlock handles one committed block and calls done when state
	// is fully updated (Hashchain may stall on batch recovery in between).
	processBlock(b *wire.Block, done func())
	// drain flushes any pending collector content (experiment shutdown).
	drain()
}

// Server is one Setchain server: the replicated application installed on a
// ledger node, plus the algorithm-specific pipeline.
type Server struct {
	id   wire.NodeID
	n    int
	opts Options
	sim  *sim.Simulator
	cpu  *sim.Resource
	node *ledger.Node

	suite    setcrypto.Suite
	key      setcrypto.KeyPair
	registry *setcrypto.Registry

	// Setchain state (paper §2): the_set, history, epoch, proofs.
	theSet    map[wire.ElementID]*wire.Element
	history   []*Epoch
	inHistory map[wire.ElementID]uint64
	proofs    map[uint64]map[wire.NodeID]*wire.EpochProof

	// Checkpointing state (checkpointing.go). history is base-offset:
	// history[i] is epoch prunedEpochs+i+1; epochs at or below
	// prunedEpochs live only in the checkpoint digests. settled is the
	// contiguous prefix with f+1 proofs; curHeight the block being
	// processed (seal heights are part of the replicated state).
	settled        uint64
	checkpoints    []checkpoint.Checkpoint
	prunedEpochs   uint64
	prunedElements uint64
	ckptBytes      uint64 // modeled element bytes in epochs 1..last checkpoint
	curHeight      uint64
	syncState      *checkpoint.Snapshot
	syncInstalls   uint64
	// ckptFold caches checkpoint.FoldChain(checkpoints) — the header
	// commitment proposers stamp — maintained incrementally at each seal
	// and recomputed on a state-sync install.
	ckptFold uint64

	alg      algorithm
	coll     *collector.Collector
	store    *batchstore.Store
	rec      *metrics.Recorder
	behavior *Behavior

	// Ordered block processing: FinalizeBlock enqueues; blocks are
	// processed strictly in order, possibly asynchronously (CPU cost,
	// batch recovery stalls).
	blockQueue []*wire.Block
	processing bool

	// Stats.
	addsAccepted uint64
	addsRejected uint64
	blocksSeen   uint64
	epochsMade   uint64
	proofsMade   uint64
}

// NewServer creates a Setchain server on a ledger node. The server installs
// itself as the node's ABCI application and app-message handler.
func NewServer(node *ledger.Node, s *sim.Simulator, n int, suite setcrypto.Suite,
	key setcrypto.KeyPair, registry *setcrypto.Registry, opts Options) *Server {
	opts = opts.withDefaults(n)
	srv := &Server{
		id:        node.ID,
		n:         n,
		opts:      opts,
		sim:       s,
		cpu:       s.NewResource(fmt.Sprintf("setchain-cpu-%d", node.ID)),
		node:      node,
		suite:     suite,
		key:       key,
		registry:  registry,
		theSet:    make(map[wire.ElementID]*wire.Element),
		inHistory: make(map[wire.ElementID]uint64),
		proofs:    make(map[uint64]map[wire.NodeID]*wire.EpochProof),
		ckptFold:  checkpoint.Seed(),
	}
	switch opts.Algorithm {
	case Vanilla:
		srv.alg = &vanillaAlg{s: srv}
	case Compresschain:
		srv.alg = newCompressAlg(srv)
	case Hashchain:
		srv.alg = newHashchainAlg(srv)
	default:
		panic("core: unknown algorithm")
	}
	node.SetAppMsgHandler(srv.onAppMsg)
	return srv
}

// SetRecorder attaches experiment metrics.
func (s *Server) SetRecorder(r *metrics.Recorder) { s.rec = r }

// SetBehavior installs Byzantine behavior (nil = correct).
func (s *Server) SetBehavior(b *Behavior) { s.behavior = b }

// ID returns the server's node id.
func (s *Server) ID() wire.NodeID { return s.id }

// F returns the Setchain fault bound in effect.
func (s *Server) F() int { return s.opts.F }

// CPU exposes the server's simulated CPU resource (diagnostics).
func (s *Server) CPU() *sim.Resource { return s.cpu }

// Store exposes the Hashchain batch store (nil for other algorithms).
func (s *Server) Store() *batchstore.Store { return s.store }

// Add implements S.add_v(e): validate, insert into the_set, and hand the
// element to the algorithm pipeline (direct append for Vanilla, collector
// for Compresschain/Hashchain).
func (s *Server) Add(e *wire.Element) error {
	if !s.validElement(e) {
		s.addsRejected++
		return ErrInvalidElement
	}
	if _, dup := s.theSet[e.ID]; dup {
		s.addsRejected++
		return ErrDuplicate
	}
	// Admission gate (DESIGN.md §14): refused elements never enter
	// the_set or any collector, so they structurally cannot commit — the
	// invariant checker's rejected-ID scan is the independent witness.
	if !s.node.AdmitElement() {
		s.addsRejected++
		return ErrAdmission
	}
	s.theSet[e.ID] = e
	s.addsAccepted++
	addCost := s.opts.Costs.VerifyElement + s.opts.Costs.PerElement
	if s.opts.Light {
		// The Light ablations remove element validation entirely.
		addCost = s.opts.Costs.PerElement
	}
	s.chargeCPU(addCost)
	s.alg.onAdd(e)
	return nil
}

// Get implements S.get_v(): the current (the_set, history, epoch, proofs).
func (s *Server) Get() Snapshot {
	return Snapshot{
		Server:         s.id,
		TheSet:         s.theSet,
		History:        s.history,
		Epoch:          s.prunedEpochs + uint64(len(s.history)),
		Proofs:         s.proofs,
		PrunedEpochs:   s.prunedEpochs,
		PrunedElements: s.prunedElements,
		Checkpoints:    s.checkpoints,
	}
}

// Drain flushes pending collector content so in-flight elements reach the
// ledger after clients stop adding (experiment shutdown).
func (s *Server) Drain() { s.alg.drain() }

// --- ABCI ---

// CheckTx validates transactions at mempool admission on every node.
func (s *Server) CheckTx(tx *wire.Tx) bool {
	switch tx.Kind {
	case wire.TxElement:
		if s.opts.Algorithm != Vanilla {
			return false
		}
		s.chargeCPU(s.opts.Costs.VerifyElement)
		return s.validElement(tx.Element)
	case wire.TxProof:
		if s.opts.Algorithm != Vanilla {
			return false
		}
		// Deep validation needs history[j] and happens in FinalizeBlock;
		// here we check shape only.
		s.chargeCPU(s.opts.Costs.VerifySig)
		return tx.Proof != nil && tx.Proof.Epoch >= 1 && len(tx.Proof.Sig) > 0
	case wire.TxCompressedBatch:
		if s.opts.Algorithm != Compresschain {
			return false
		}
		return tx.Compressed != nil && tx.Compressed.CompSize > 0
	case wire.TxHashBatch:
		if s.opts.Algorithm != Hashchain {
			return false
		}
		return s.alg.checkTx(tx)
	default:
		return false
	}
}

// FinalizeBlock receives committed blocks in ledger order and feeds the
// ordered processing queue.
func (s *Server) FinalizeBlock(b *wire.Block) {
	s.blocksSeen++
	if s.rec != nil {
		s.rec.BlockCommitted(s.id, b)
	}
	s.blockQueue = append(s.blockQueue, b)
	if !s.processing {
		s.processNext()
	}
}

func (s *Server) processNext() {
	// Seal at the block boundary, never mid-block: the settled watermark
	// may have advanced while the just-finished block's txs were processed,
	// but a snapshot frozen mid-block would miss the block's remaining txs
	// — a restarted peer installs the snapshot and replays from Height+1,
	// so proofs and signatures in the tail of the seal block would be lost
	// to it forever (its settled prefix would stall). Sealing here makes
	// "state as of the seal height" exact.
	s.maybeSeal()
	if len(s.blockQueue) == 0 {
		s.processing = false
		return
	}
	s.processing = true
	b := s.blockQueue[0]
	s.blockQueue = s.blockQueue[1:]
	// Blocks are processed strictly in order, so every state change during
	// this block's (possibly asynchronous) processing — including a
	// checkpoint seal — happens at this height on every correct server.
	s.curHeight = b.Height
	s.alg.processBlock(b, s.processNext)
}

func (s *Server) onAppMsg(from wire.NodeID, payload any, size int) {
	if h, ok := s.alg.(*hashchainAlg); ok {
		h.onAppMsg(from, payload, size)
	}
}

// --- shared machinery ---

// chargeCPU books fire-and-forget occupancy on the server's CPU, delaying
// later cost-gated work.
func (s *Server) chargeCPU(d time.Duration) {
	if d > 0 {
		s.cpu.Submit(d, nil)
	}
}

// runCosted executes fn after the given CPU cost clears the server's queue.
// Zero cost still round-trips through the resource to preserve FIFO order
// with earlier costed work.
func (s *Server) runCosted(d time.Duration, fn func()) {
	s.cpu.Submit(d, fn)
}

// validElement is the paper's valid_element(e): clients sign elements, and
// only authenticated valid elements are processed by correct servers.
func (s *Server) validElement(e *wire.Element) bool {
	if e == nil || e.Size <= 0 {
		return false
	}
	if s.opts.Mode == Full {
		pub := s.registry.Lookup(int(e.Client) + clientKeyOffset(s.n))
		if pub == nil {
			return false
		}
		return s.suite.Verify(pub, e.SigningBytes(), e.Sig)
	}
	return !e.Bogus
}

// clientKeyOffset maps client ids into the PKI registry's id space, after
// the n server ids.
func clientKeyOffset(n int) int { return n }

// epochHashFor computes the canonical epoch hash Hash(i, history[i]).
func (s *Server) epochHashFor(number uint64, elems []*wire.Element) []byte {
	return s.suite.HashData(wire.EpochHashInput(number, elems))
}

// createEpoch appends a new epoch built from the valid fresh elements in G
// (already deduplicated against history by the caller) and returns its
// epoch-proof, signed by this server. Elements keep their given order.
func (s *Server) createEpoch(g []*wire.Element) *wire.EpochProof {
	number := s.prunedEpochs + uint64(len(s.history)) + 1
	hash := s.epochHashFor(number, g)
	ep := &Epoch{Number: number, Elements: g, Hash: hash}
	s.history = append(s.history, ep)
	for _, e := range g {
		s.inHistory[e.ID] = number
		// Get-Global/Consistent-Sets: epoch elements enter the_set even if
		// this server never saw their add.
		if _, ok := s.theSet[e.ID]; !ok {
			s.theSet[e.ID] = e
		}
	}
	s.epochsMade++
	if s.rec != nil {
		s.rec.EpochCreated(s.id, number, g)
	}
	signHash := hash
	if s.behavior != nil && s.behavior.CorruptProofs {
		signHash = s.suite.HashData([]byte("corrupt"), hash)
	}
	p := &wire.EpochProof{
		Epoch:     number,
		EpochHash: signHash,
		Sig:       s.suite.Sign(s.key, signHash),
		Signer:    s.id,
	}
	s.proofsMade++
	s.chargeCPU(s.opts.Costs.SignCost + time.Duration(len(g))*s.opts.Costs.PerElement)
	return p
}

// acceptProof implements valid_proof(j, p, w, history[j]) and records the
// proof. Returns whether the proof was valid and new.
func (s *Server) acceptProof(p *wire.EpochProof) bool {
	if p == nil || p.Epoch <= s.prunedEpochs {
		// At or below the checkpoint horizon the epoch is settled and its
		// proofs are folded into the checkpoint digest; late copies carry
		// no information.
		return false
	}
	if p.Epoch > s.prunedEpochs+uint64(len(s.history)) {
		return false
	}
	want := s.history[p.Epoch-1-s.prunedEpochs].Hash
	s.chargeCPU(s.opts.Costs.VerifySig)
	if !wire.VerifyEpochProof(s.suite, s.registry, p, want) {
		return false
	}
	bySigner := s.proofs[p.Epoch]
	if bySigner == nil {
		bySigner = make(map[wire.NodeID]*wire.EpochProof)
		s.proofs[p.Epoch] = bySigner
	}
	if _, dup := bySigner[p.Signer]; dup {
		return false
	}
	bySigner[p.Signer] = p
	if s.rec != nil {
		s.rec.ProofOnLedger(s.id, p.Epoch, p.Signer)
	}
	// Advance the settled prefix; any checkpoint interval it crossed is
	// sealed at the end of the current block (processNext), never here —
	// a mid-block seal would freeze a snapshot that cuts the block in two.
	for len(s.proofs[s.settled+1]) >= s.opts.F+1 {
		s.settled++
	}
	return true
}

// freshValid filters a batch's elements to the valid ones not yet in
// history, preserving order — the G extraction shared by all algorithms.
func (s *Server) freshValid(elems []*wire.Element) []*wire.Element {
	var g []*wire.Element
	for _, e := range elems {
		if !s.validElement(e) {
			continue
		}
		if _, in := s.inHistory[e.ID]; in {
			continue
		}
		g = append(g, e)
	}
	return g
}

// injectBogus appends Byzantine junk elements to a batch when configured.
func (s *Server) injectBogus(b *wire.Batch) {
	if s.behavior == nil || s.behavior.InjectBogusElements == 0 {
		return
	}
	for i := 0; i < s.behavior.InjectBogusElements; i++ {
		e := &wire.Element{Client: wire.ClientID(-1), Size: 438, Bogus: true}
		e.ID[0] = 0xBB
		e.ID[1] = byte(s.id)
		e.ID[2] = byte(s.epochsMade)
		e.ID[3] = byte(i)
		e.ID[4] = byte(s.blocksSeen)
		b.Elements = append(b.Elements, e)
	}
}

// Stats returns server counters.
func (s *Server) Stats() (adds, rejects, blocks, epochs uint64) {
	return s.addsAccepted, s.addsRejected, s.blocksSeen, s.epochsMade
}
