package core_test

import (
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// deployCheckpointed builds a 4-server Full-mode Hashchain deployment with
// checkpointing + pruning on, feeds it elements and quiesces, so every
// server has a sealed chain and a frozen state-sync snapshot.
func deployCheckpointed(t *testing.T, seed int64) *core.Deployment {
	t.Helper()
	s, d := deployFull(seed, 4, core.Options{
		Algorithm: core.Hashchain, CollectorLimit: 10,
		CheckpointInterval: 2, Prune: true,
	})
	addElements(s, d, 60)
	runQuiesce(s, d, 20*time.Second)
	d.Stop()
	return d
}

// Header commitments are consistent across correct servers: seal points
// and content are deterministic, so every server's (epoch, fold) claim
// verifies everywhere — and a tampered fold, or a fold claimed for the
// wrong epoch, verifies nowhere at or below the local horizon.
func TestHeaderCommitmentAcrossServers(t *testing.T) {
	d := deployCheckpointed(t, 11)
	epoch, fold := d.Servers[0].HeaderCommitment()
	if epoch == 0 {
		t.Fatal("no checkpoint sealed; the commitment test is vacuous")
	}
	if want := checkpoint.FoldChain(d.Servers[0].Checkpoints()); fold != want {
		t.Fatalf("incremental fold cache %x diverges from FoldChain %x", fold, want)
	}
	for i, srv := range d.Servers {
		if !srv.VerifyCommitment(epoch, fold) {
			t.Fatalf("server %d rejects server 0's commitment (epoch %d)", i, epoch)
		}
		if srv.VerifyCommitment(epoch, fold^1) {
			t.Fatalf("server %d accepts a tampered fold at epoch %d", i, epoch)
		}
		if !srv.VerifyCommitment(epoch+1000, fold^1) {
			t.Fatalf("server %d rejects a claim beyond its horizon — validators "+
				"cannot falsify state they have not computed", i)
		}
	}
	// Interior prefix claims: the fold through any earlier seal point
	// verifies; the same fold claimed one epoch later does not.
	chain := d.Servers[0].Checkpoints()
	if len(chain) < 2 {
		t.Fatalf("need >= 2 checkpoints, have %d", len(chain))
	}
	prefix := checkpoint.FoldChain(chain[:1])
	if !d.Servers[1].VerifyCommitment(chain[0].Epoch, prefix) {
		t.Fatal("interior prefix commitment rejected")
	}
	if d.Servers[1].VerifyCommitment(chain[1].Epoch, prefix) {
		t.Fatal("prefix fold accepted at the wrong epoch")
	}
}

// The forge-snapshot behavior produces exactly the attack the header
// binding exists for: a snapshot that is internally consistent under every
// local check — so it INSTALLS on a behind server, smuggling bogus
// elements into its set — while its chain cannot fold to any certified
// commitment. If the install here starts failing, the sabotage tests in
// the harness go vacuous.
func TestForgedSnapshotInstallsLocallyButBreaksFold(t *testing.T) {
	d := deployCheckpointed(t, 12)
	forger := d.Servers[3]
	forger.SetBehavior(&core.Behavior{ForgeSnapshot: true})
	snap, ok := forger.SyncSnapshot()
	if !ok {
		t.Fatal("no frozen snapshot to forge")
	}
	forged := forger.ForgeSyncSnapshot(snap)
	if forged == nil {
		t.Fatal("ForgeSnapshot behavior returned no forgery")
	}
	if forged.Last.Epoch != snap.Last.Epoch+1 || len(forged.Chain) != len(snap.Chain)+1 {
		t.Fatalf("forgery shape wrong: Last.Epoch %d vs honest %d, chain %d vs %d",
			forged.Last.Epoch, snap.Last.Epoch, len(forged.Chain), len(snap.Chain))
	}
	if checkpoint.FoldChain(forged.Chain) == checkpoint.FoldChain(snap.Chain) {
		t.Fatal("forged chain folds identically to the honest chain — the header binding could never catch it")
	}
	// A maximally-behind requester (fresh server, empty chain): every local
	// check passes and the forgery installs — the pre-binding trust hole.
	_, fresh := deployFull(13, 4, core.Options{
		Algorithm: core.Hashchain, CollectorLimit: 10,
		CheckpointInterval: 2, Prune: true,
	})
	victim := fresh.Servers[0]
	if !victim.InstallSync(forged) {
		t.Fatal("forgery rejected by InstallSync's local checks — it is no longer " +
			"the certified-fold check doing the work, and the sabotage tests are vacuous")
	}
	var smuggled int
	for _, el := range victim.Get().TheSet {
		if el.Bogus {
			smuggled++
		}
	}
	if smuggled == 0 {
		t.Fatal("forgery installed but smuggled nothing — the attack demonstrates no harm")
	}
	fresh.Stop()
}

// A served snapshot must stay readable while the serving server keeps
// running: everything in SyncState is a freeze-time copy, so concurrent
// iteration by an installer (another partition in a parallel run) must not
// race the server's live maps. Run under -race; a regression back to
// sharing live maps fails here deterministically.
func TestSyncSnapshotReadsDoNotRaceServingServer(t *testing.T) {
	s, d := deployFull(14, 4, core.Options{
		Algorithm: core.Hashchain, CollectorLimit: 10,
		CheckpointInterval: 2, Prune: true,
	})
	addElements(s, d, 200) // 50ms spacing: injection runs to t=10s
	s.RunUntil(4 * time.Second)
	snap, ok := d.Servers[0].SyncSnapshot()
	if !ok {
		t.Fatal("no snapshot frozen after 4s; tune the workload")
	}
	st := snap.State.(*core.SyncState)

	// Walk every frozen structure for the entire remainder of the run,
	// while the serving server keeps adding elements, creating epochs and
	// sealing checkpoints on the main goroutine.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var n int
			for id, epn := range st.Members {
				if epn > st.LastEpoch {
					panic("frozen index entry above LastEpoch")
				}
				if st.Set[id] != nil {
					n += st.Set[id].Size
				}
			}
			for _, ep := range st.Epochs {
				n += len(ep.Elements) + len(ep.Hash)
			}
			_ = n
		}
	}()
	runQuiesce(s, d, 15*time.Second)
	close(stop)
	<-done
	d.Stop()
}
