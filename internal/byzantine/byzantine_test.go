package byzantine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Regression for the fault-state ownership bug: Silent used to flip the
// node's raw down flag, so a scheduled fault plan crashing and restarting
// the same node would silently revive a server that was supposed to stay
// Byzantine-silent for the whole run. Both sources now go through netsim's
// Faults controller under distinct causes.
func TestSilentSurvivesPlanCrashRestart(t *testing.T) {
	s := sim.New(1)
	net := netsim.New(s, netsim.DefaultLANConfig())
	net.AddNode(0, nil)
	net.AddNode(1, nil)

	Silent(net, 1, true)
	f := net.Faults()
	f.SetDown(1, netsim.CausePlan, true)  // plan crash
	f.SetDown(1, netsim.CausePlan, false) // plan restart
	if !f.Down(1) {
		t.Fatal("plan restart revived a Byzantine-silent server")
	}
	Silent(net, 1, false)
	if f.Down(1) {
		t.Fatal("server down after the Byzantine fault was retracted")
	}
}

func TestServeOnly(t *testing.T) {
	b := ServeOnly(1, 2)
	if b.RefuseServe(1, nil) || b.RefuseServe(2, nil) {
		t.Fatal("allowed peer refused")
	}
	if !b.RefuseServe(3, nil) {
		t.Fatal("disallowed peer served")
	}
}

func TestWithholdBatches(t *testing.T) {
	b := WithholdBatches()
	for to := 0; to < 5; to++ {
		if !b.RefuseServe(to, []byte("h")) {
			t.Fatal("withholding server served a request")
		}
	}
}

func TestPresetsSetExpectedFields(t *testing.T) {
	if InjectInvalid(3).InjectBogusElements != 3 {
		t.Fatal("InjectInvalid count wrong")
	}
	if !WrongBatches().ServeWrongBatch {
		t.Fatal("WrongBatches flag unset")
	}
	if !CorruptProofs().CorruptProofs {
		t.Fatal("CorruptProofs flag unset")
	}
}

func TestCombine(t *testing.T) {
	b := Combine(ServeOnly(1), WrongBatches(), InjectInvalid(2), nil, CorruptProofs())
	if !b.ServeWrongBatch || !b.CorruptProofs || b.InjectBogusElements != 2 {
		t.Fatal("combined scalar fields wrong")
	}
	if b.RefuseServe(1, nil) {
		t.Fatal("combined refusal blocks allowed peer")
	}
	if !b.RefuseServe(2, nil) {
		t.Fatal("combined refusal misses disallowed peer")
	}
}

func TestCombineEmpty(t *testing.T) {
	b := Combine()
	if b.RefuseServe != nil || b.ServeWrongBatch || b.CorruptProofs || b.InjectBogusElements != 0 {
		t.Fatal("empty combine is not the correct behavior")
	}
	var zero core.Behavior
	if b.ServeWrongBatch != zero.ServeWrongBatch {
		t.Fatal("zero-value mismatch")
	}
}
