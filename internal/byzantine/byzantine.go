// Package byzantine provides preset fault behaviors for Setchain servers,
// covering the attacks the paper's algorithms are designed to survive with
// up to f < n/2 faulty servers:
//
//   - silence (crash-like: the server sends nothing);
//   - invalid-element injection (the reason FinalizeBlock must re-validate:
//     "a Byzantine server may have added invalid elements to the ledger");
//   - hash-batch-without-data (signing a hash but refusing to serve the
//     batch, the scenario that motivates f+1-signature consolidation);
//   - selective serving (serving only some peers, the ordering attack the
//     unconditional-signer-counting refinement defends against);
//   - wrong-batch responses (hash mismatch, detected by requesters);
//   - corrupt epoch-proofs (signatures over wrong hashes, rejected by
//     servers and clients).
//
// See DESIGN.md §3 (algorithm refinements).
package byzantine

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Silent crashes a server at the network level: it neither sends nor
// receives. Call with down=false to revive it. The liveness change is
// tagged with netsim.CauseByzantine, so it composes with scheduled fault
// plans: a plan's restart event cannot revive a Byzantine-silent server,
// and retracting the Byzantine fault leaves plan-installed crashes alone.
func Silent(net *netsim.Network, id wire.NodeID, down bool) {
	net.Faults().SetDown(id, netsim.CauseByzantine, down)
}

// InjectInvalid returns behavior that adds count invalid elements to every
// batch the server creates.
func InjectInvalid(count int) *core.Behavior {
	return &core.Behavior{InjectBogusElements: count}
}

// WithholdBatches returns behavior that never serves Request_batch: the
// server's hash-batches can never be validated by peers, so its batches
// never gather f+1 signatures and never consolidate.
func WithholdBatches() *core.Behavior {
	return &core.Behavior{RefuseServe: func(int, []byte) bool { return true }}
}

// ServeOnly returns behavior that serves batch requests only to the listed
// peers — the selective-serving attack on consolidation ordering.
func ServeOnly(peers ...int) *core.Behavior {
	allowed := make(map[int]bool, len(peers))
	for _, p := range peers {
		allowed[p] = true
	}
	return &core.Behavior{
		RefuseServe: func(to int, _ []byte) bool { return !allowed[to] },
	}
}

// WrongBatches returns behavior that answers Request_batch with corrupted
// content whose hash does not match.
func WrongBatches() *core.Behavior {
	return &core.Behavior{ServeWrongBatch: true}
}

// CorruptProofs returns behavior that signs garbage epoch hashes.
func CorruptProofs() *core.Behavior {
	return &core.Behavior{CorruptProofs: true}
}

// ForgeSnapshot returns behavior that corrupts every state-sync snapshot
// the server serves: a fabricated checkpoint is appended that smuggles
// bogus elements past the requester's local knowledge, attached to the
// legitimate commit certificate. The certified header fold check rejects
// it (DESIGN.md §15); with that check sabotaged, the forgery installs.
func ForgeSnapshot() *core.Behavior {
	return &core.Behavior{ForgeSnapshot: true}
}

// Combine merges several behaviors into one (later behaviors win for
// scalar fields; RefuseServe predicates are OR-ed).
func Combine(bs ...*core.Behavior) *core.Behavior {
	out := &core.Behavior{}
	var refusals []func(int, []byte) bool
	for _, b := range bs {
		if b == nil {
			continue
		}
		if b.RefuseServe != nil {
			refusals = append(refusals, b.RefuseServe)
		}
		if b.ServeWrongBatch {
			out.ServeWrongBatch = true
		}
		if b.CorruptProofs {
			out.CorruptProofs = true
		}
		if b.ForgeSnapshot {
			out.ForgeSnapshot = true
		}
		if b.InjectBogusElements > out.InjectBogusElements {
			out.InjectBogusElements = b.InjectBogusElements
		}
	}
	if len(refusals) > 0 {
		out.RefuseServe = func(to int, hash []byte) bool {
			for _, r := range refusals {
				if r(to, hash) {
					return true
				}
			}
			return false
		}
	}
	return out
}
