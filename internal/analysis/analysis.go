// Package analysis implements the paper's analytical performance model
// (Appendix D): closed-form estimates of each algorithm's stationary
// throughput as a function of the system parameters, used in Figs. 1 and 2
// as the dotted/dashed reference lines and swept over block sizes for
// Fig. 2 (right).
//
// With n servers all correct, epoch-proof length lp, element length le,
// hash-batch length lh, ledger block capacity C, block rate R and collector
// size c:
//
//	Vanilla:        Tv = R · (C − n·lp) / le
//	Compresschain:  Tc = R · (c−n) · C / ℓ,  ℓ = ((c−n)·le + n·lp) / r
//	Hashchain:      Th = R · (c−n) · C / (n·lh)
//
// See DESIGN.md §2 (layering).
package analysis

import "fmt"

// Params are the model inputs (Appendix D / §4 defaults).
type Params struct {
	N             int     // servers
	BlockBytes    float64 // C, ledger block capacity in bytes
	BlockRate     float64 // R, blocks per second
	ElementLen    float64 // le, average element size in bytes
	ProofLen      float64 // lp, epoch-proof size in bytes
	HashBatchLen  float64 // lh, hash-batch size in bytes
	CollectorSize int     // c
	CompressRatio float64 // r, for Compresschain
}

// PaperParams returns the evaluation's configuration: n=10, C=0.5 MiB,
// R=0.8 blocks/s, le=438, lp=lh=139.
func PaperParams() Params {
	return Params{
		N:            10,
		BlockBytes:   512 * 1024, // the paper's "0.5 MB" is 0.5 MiB (reproduces D.1 exactly)
		BlockRate:    0.8,
		ElementLen:   438,
		ProofLen:     139,
		HashBatchLen: 139,
	}
}

// CompressionRatioFor returns the paper's measured ratio for a collector
// size (§D.1: r ≈ 2.7 at c=100, r ≈ 3.5 at c=500), interpolating linearly
// in between and clamping outside.
func CompressionRatioFor(c int) float64 {
	switch {
	case c <= 100:
		return 2.7
	case c >= 500:
		return 3.5
	default:
		return 2.7 + (3.5-2.7)*float64(c-100)/400.0
	}
}

// VanillaThroughput returns Tv in elements/second: each block carries n
// epoch-proofs plus elements.
func VanillaThroughput(p Params) float64 {
	usable := p.BlockBytes - float64(p.N)*p.ProofLen
	if usable <= 0 {
		return 0
	}
	return p.BlockRate * usable / p.ElementLen
}

// CompresschainThroughput returns Tc in elements/second for the given
// collector size: each epoch batch holds c−n elements and n proofs,
// compressed with ratio r.
func CompresschainThroughput(p Params) float64 {
	c := float64(p.CollectorSize)
	n := float64(p.N)
	if c <= n {
		return 0
	}
	r := p.CompressRatio
	if r == 0 {
		r = CompressionRatioFor(p.CollectorSize)
	}
	l := ((c-n)*p.ElementLen + n*p.ProofLen) / r
	return p.BlockRate * (c - n) * p.BlockBytes / l
}

// HashchainThroughput returns Th in elements/second: n hash-batches of lh
// bytes on the ledger per consolidated epoch of c−n elements.
func HashchainThroughput(p Params) float64 {
	c := float64(p.CollectorSize)
	n := float64(p.N)
	if c <= n {
		return 0
	}
	return p.BlockRate * (c - n) * p.BlockBytes / (n * p.HashBatchLen)
}

// Throughput dispatches on an algorithm name ("vanilla", "compresschain",
// "hashchain").
func Throughput(alg string, p Params) (float64, error) {
	switch alg {
	case "vanilla":
		return VanillaThroughput(p), nil
	case "compresschain":
		return CompresschainThroughput(p), nil
	case "hashchain":
		return HashchainThroughput(p), nil
	default:
		return 0, fmt.Errorf("analysis: unknown algorithm %q", alg)
	}
}

// D1Row is one line of the Appendix D.1 table.
type D1Row struct {
	Label      string
	Collector  int
	Throughput float64
}

// D1Table reproduces Appendix D.1's five analytical numbers with the
// paper's parameters: Tv ≈ 955, Tc[100] ≈ 2497, Tc[500] ≈ 3330,
// Th[100] ≈ 27157, Th[500] ≈ 147857 el/s.
func D1Table() []D1Row {
	p := PaperParams()
	rows := []D1Row{{Label: "Vanilla", Throughput: VanillaThroughput(p)}}
	for _, c := range []int{100, 500} {
		pc := p
		pc.CollectorSize = c
		rows = append(rows, D1Row{
			Label:      "Compresschain",
			Collector:  c,
			Throughput: CompresschainThroughput(pc),
		})
	}
	for _, c := range []int{100, 500} {
		pc := p
		pc.CollectorSize = c
		rows = append(rows, D1Row{
			Label:      "Hashchain",
			Collector:  c,
			Throughput: HashchainThroughput(pc),
		})
	}
	return rows
}

// BlockSizePoint is one sample of the Fig. 2 (right) sweep.
type BlockSizePoint struct {
	BlockMB       float64
	Vanilla       float64
	Compresschain float64
	Hashchain     float64
}

// BlockSizeSweep reproduces Fig. 2 (right): analytical throughput of the
// three algorithms for block sizes 0.5–128 MB with collector size 500 and
// the other parameters held at the paper's values.
func BlockSizeSweep() []BlockSizePoint {
	var out []BlockSizePoint
	for mb := 0.5; mb <= 128; mb *= 2 {
		p := PaperParams()
		p.BlockBytes = mb * 1024 * 1024
		p.CollectorSize = 500
		out = append(out, BlockSizePoint{
			BlockMB:       mb,
			Vanilla:       VanillaThroughput(p),
			Compresschain: CompresschainThroughput(p),
			Hashchain:     HashchainThroughput(p),
		})
	}
	return out
}
