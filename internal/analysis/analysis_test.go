package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tolFrac float64, label string) {
	t.Helper()
	if math.Abs(got-want) > want*tolFrac {
		t.Fatalf("%s = %.0f, want ~%.0f (±%.0f%%)", label, got, want, tolFrac*100)
	}
}

// The five Appendix D.1 numbers, within 2% (the paper rounds its inputs).
func TestD1Numbers(t *testing.T) {
	p := PaperParams()
	approx(t, VanillaThroughput(p), 955, 0.02, "Tv")

	p.CollectorSize = 100
	p.CompressRatio = 2.7
	approx(t, CompresschainThroughput(p), 2497, 0.02, "Tc[100]")

	p.CollectorSize = 500
	p.CompressRatio = 3.5
	approx(t, CompresschainThroughput(p), 3330, 0.02, "Tc[500]")

	p.CompressRatio = 0
	p.CollectorSize = 100
	approx(t, HashchainThroughput(p), 27157, 0.02, "Th[100]")

	p.CollectorSize = 500
	approx(t, HashchainThroughput(p), 147857, 0.02, "Th[500]")
}

// The paper's headline ratios: Th[500]/Tv ≈ 155 and Th[500]/Tc[500] ≈ 44.
func TestHeadlineRatios(t *testing.T) {
	p := PaperParams()
	p.CollectorSize = 500
	th := HashchainThroughput(p)
	tv := VanillaThroughput(p)
	p.CompressRatio = 3.5
	tc := CompresschainThroughput(p)
	approx(t, th/tv, 155, 0.03, "Th/Tv")
	approx(t, th/tc, 44, 0.03, "Th/Tc")
}

func TestD1Table(t *testing.T) {
	rows := D1Table()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0].Label != "Vanilla" || rows[0].Collector != 0 {
		t.Fatalf("unexpected first row %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput <= rows[i-1].Throughput {
			t.Fatalf("D1 rows not strictly increasing at %d: %+v", i, rows)
		}
	}
}

// Fig. 2 (right) anchors: with 4 MB blocks Hashchain exceeds 10^6 el/s and
// with 128 MB it exceeds 3×10^7 el/s (the paper: "with the usual 4MB
// blocksize ... 10^6 el/s, and with blocks of 128 MB reaches more than 30
// million el/s").
func TestBlockSizeSweepAnchors(t *testing.T) {
	sweep := BlockSizeSweep()
	if len(sweep) != 9 {
		t.Fatalf("sweep has %d points, want 9 (0.5..128 MB doublings)", len(sweep))
	}
	var at4, at128 float64
	for _, pt := range sweep {
		switch pt.BlockMB {
		case 4:
			at4 = pt.Hashchain
		case 128:
			at128 = pt.Hashchain
		}
	}
	if at4 < 1e6 {
		t.Fatalf("Hashchain at 4MB = %.0f, want >= 1e6", at4)
	}
	if at128 < 3e7 {
		t.Fatalf("Hashchain at 128MB = %.0f, want >= 3e7", at128)
	}
	// Ordering holds at every block size: Hashchain > Compresschain > Vanilla.
	for _, pt := range sweep {
		if !(pt.Hashchain > pt.Compresschain && pt.Compresschain > pt.Vanilla) {
			t.Fatalf("ordering violated at %v MB: %+v", pt.BlockMB, pt)
		}
	}
}

func TestCompressionRatioInterpolation(t *testing.T) {
	if r := CompressionRatioFor(100); r != 2.7 {
		t.Fatalf("r(100) = %v", r)
	}
	if r := CompressionRatioFor(500); r != 3.5 {
		t.Fatalf("r(500) = %v", r)
	}
	if r := CompressionRatioFor(300); r <= 2.7 || r >= 3.5 {
		t.Fatalf("r(300) = %v not between anchors", r)
	}
	if r := CompressionRatioFor(10); r != 2.7 {
		t.Fatalf("r(10) = %v, want clamp", r)
	}
	if r := CompressionRatioFor(9999); r != 3.5 {
		t.Fatalf("r(9999) = %v, want clamp", r)
	}
}

func TestThroughputDispatch(t *testing.T) {
	p := PaperParams()
	p.CollectorSize = 100
	for _, alg := range []string{"vanilla", "compresschain", "hashchain"} {
		v, err := Throughput(alg, p)
		if err != nil || v <= 0 {
			t.Fatalf("Throughput(%s) = %v, %v", alg, v, err)
		}
	}
	if _, err := Throughput("nope", p); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestDegenerateParams(t *testing.T) {
	p := PaperParams()
	p.CollectorSize = 5 // c <= n
	if CompresschainThroughput(p) != 0 || HashchainThroughput(p) != 0 {
		t.Fatal("c <= n should yield zero throughput")
	}
	p = PaperParams()
	p.BlockBytes = 100 // smaller than n proofs
	if VanillaThroughput(p) != 0 {
		t.Fatal("block smaller than proofs should yield zero Vanilla throughput")
	}
}

// Property: all model outputs are monotone in block capacity and rate.
func TestQuickMonotoneInCapacity(t *testing.T) {
	f := func(extraKB uint16, c uint8) bool {
		base := PaperParams()
		base.CollectorSize = 100 + int(c)
		grown := base
		grown.BlockBytes += float64(extraKB) * 1000
		return VanillaThroughput(grown) >= VanillaThroughput(base) &&
			CompresschainThroughput(grown) >= CompresschainThroughput(base) &&
			HashchainThroughput(grown) >= HashchainThroughput(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hashchain dominates Compresschain dominates Vanilla whenever
// the collector meaningfully exceeds n (the paper's central claim).
func TestQuickAlgorithmOrdering(t *testing.T) {
	f := func(c uint8) bool {
		p := PaperParams()
		p.CollectorSize = 100 + int(c)*2
		th := HashchainThroughput(p)
		tc := CompresschainThroughput(p)
		tv := VanillaThroughput(p)
		return th > tc && tc > tv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 128}); err != nil {
		t.Fatal(err)
	}
}
