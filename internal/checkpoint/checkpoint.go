// Package checkpoint defines the epoch-checkpoint subsystem's data model:
// a digest-sealed summary of the settled epoch prefix that every server
// can recompute independently, plus the state-sync snapshot a peer serves
// to a node too far behind for per-height certified blocks.
//
// A checkpoint is sealed every K settled epochs (K = the deployment's
// CheckpointInterval). "Settled" means the epoch has f+1 valid
// epoch-proofs on the ledger, so its content can never change; because
// proofs travel inside committed blocks and consolidation order is fixed
// by ledger order, the checkpoint's content — epoch number, cumulative
// element count and chained digest — is identical on every correct
// server. That agreement is what lets a server prune everything below the
// checkpoint and still prove, digest against digest, that its discarded
// prefix matched everyone else's (invariant.Check verifies exactly this).
// The seal Height is deliberately NOT part of that identity: it records
// where THIS server's prune horizon sits, and can trail by a block on a
// server whose batch recovery was deferred by a crashed peer (see Same).
//
// The digest chain reuses the superepoch-digest machinery (FNV-1a 64-bit
// with fixed-width framing, see internal/shard): checkpoint m's digest
// extends checkpoint m-1's by folding in each newly settled epoch's
// number and hash. Epoch hashes are already collision-resistant
// (setcrypto over the element list), so chaining their frame is enough to
// commit to the full prefix content.
package checkpoint

import "encoding/binary"

// FNV-1a 64-bit parameters — deliberately the same constants as the shard
// router and superepoch digests, so the whole repo has one digest idiom.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Seed returns the digest chain's starting value (the FNV-1a offset
// basis). Checkpoint 0 — "nothing settled" — has this digest.
func Seed() uint64 { return fnvOffset }

// Mix64 folds one fixed-width little-endian word into the digest.
func Mix64(h, v uint64) uint64 {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return MixRaw(h, w[:])
}

// MixRaw folds raw bytes into the digest, byte by byte.
func MixRaw(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// MixBytes folds a length-prefixed byte string into the digest. The
// fixed-width length frame keeps concatenated fields unambiguous.
func MixBytes(h uint64, b []byte) uint64 {
	h = Mix64(h, uint64(len(b)))
	return MixRaw(h, b)
}

// ChainEpoch extends a checkpoint digest with one settled epoch: its
// number, then its length-framed hash. Folding epochs prev+1..m into
// checkpoint prev's digest yields checkpoint m's digest.
func ChainEpoch(h uint64, number uint64, hash []byte) uint64 {
	h = Mix64(h, number)
	return MixBytes(h, hash)
}

// Checkpoint summarizes the settled epoch prefix 1..Epoch. Every correct
// server of one Setchain instance seals checkpoints with identical
// content (Epoch, Elements, Digest — see Same); the seal Height is local.
type Checkpoint struct {
	// Epoch is the last settled epoch the checkpoint covers — always a
	// multiple of the deployment's checkpoint interval.
	Epoch uint64
	// Height is the ledger height whose processing settled epoch Epoch on
	// THIS server (the block during which its f+1-th proof was accepted).
	// Advisory: a server that had to defer a batch recovery past a failed
	// fetch — a crashed signer, say — extracts that batch's proofs a block
	// or two later than its peers, so Height may differ across correct
	// servers even though the settled content cannot.
	Height uint64
	// Elements is the cumulative element count over epochs 1..Epoch.
	Elements uint64
	// Digest chains (number, hash) of epochs 1..Epoch from Seed(), via
	// ChainEpoch. Two servers agree on a settled prefix iff they agree on
	// this digest.
	Digest uint64
}

// Same reports content equality: Epoch, Elements and Digest. Height is
// excluded on purpose — it is per-server prune metadata, not part of the
// agreed prefix — so Same is the comparison every cross-server check
// (invariant divergence, state-sync prefix verification) must use.
func (c Checkpoint) Same(o Checkpoint) bool {
	return c.Epoch == o.Epoch && c.Elements == o.Elements && c.Digest == o.Digest
}

// FoldChain commits to an entire checkpoint chain as one word: every
// entry's content identity — Epoch, Elements, Digest; Height is per-server
// and excluded, matching Same — folded in ascending order from Seed().
// This is the header commitment consensus binds into certified block
// headers (DESIGN.md §15): a proposer stamps its current fold, the 2f+1
// commit certificate covers it, and a state-syncing node accepts a peer's
// snapshot only if the offered chain folds to a certified value — so
// forging ANY chain entry, not just the latest, breaks the binding. An
// empty chain folds to Seed().
func FoldChain(chain []Checkpoint) uint64 {
	h := Seed()
	for _, c := range chain {
		h = FoldEntry(h, c)
	}
	return h
}

// FoldEntry extends a chain fold with one checkpoint. Sealing is
// append-only, so a server can maintain its current fold incrementally:
// FoldChain(chain[:m+1]) == FoldEntry(FoldChain(chain[:m]), chain[m]).
func FoldEntry(h uint64, c Checkpoint) uint64 {
	h = Mix64(h, c.Epoch)
	h = Mix64(h, c.Elements)
	return Mix64(h, c.Digest)
}

// Snapshot is a state-sync payload: the serving peer's checkpoint chain
// plus its application state as of the latest checkpoint's seal height.
// The simulation ships Go references in State; Bytes models the wire size
// a real transfer would move, and is what the network simulator charges.
type Snapshot struct {
	// Last is the latest sealed checkpoint — the snapshot's identity.
	Last Checkpoint
	// Chain is every checkpoint the peer has sealed, ascending by epoch;
	// its final entry equals Last. The requester verifies its own chain is
	// a prefix of this one before installing.
	Chain []Checkpoint
	// State is the application half of the snapshot, opaque to consensus
	// (core.SyncState for a Setchain server).
	State any
	// Bytes is the modeled transfer size of the snapshot on the wire.
	Bytes int
}
