package checkpoint

import (
	"encoding/binary"
	"testing"
)

// The digest chain is pure arithmetic; these tests pin its algebra so a
// refactor cannot silently change what sealed checkpoints commit to
// (every persisted digest in a run artifact depends on these rules).

func TestSeedAndMixRawMatchFNV1a(t *testing.T) {
	if Seed() != uint64(14695981039346656037) {
		t.Fatalf("Seed() = %d, not the FNV-1a offset basis", Seed())
	}
	if MixRaw(Seed(), nil) != Seed() {
		t.Fatal("mixing zero bytes must be the identity")
	}
	// Reference value: FNV-1a of "a" (offset ^ 'a') * prime.
	want := (Seed() ^ uint64('a')) * 1099511628211
	if got := MixRaw(Seed(), []byte("a")); got != want {
		t.Fatalf("MixRaw(Seed, \"a\") = %d, want %d", got, want)
	}
	// Byte-at-a-time chaining: mixing "ab" equals mixing "a" then "b".
	ab := MixRaw(Seed(), []byte("ab"))
	chained := MixRaw(MixRaw(Seed(), []byte("a")), []byte("b"))
	if ab != chained {
		t.Fatal("MixRaw is not byte-chainable")
	}
}

func TestMix64IsFixedWidthLittleEndian(t *testing.T) {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], 0xDEADBEEF)
	if Mix64(Seed(), 0xDEADBEEF) != MixRaw(Seed(), w[:]) {
		t.Fatal("Mix64 must equal MixRaw over the 8-byte little-endian encoding")
	}
	// Fixed width means 1 and 1<<40 occupy the same number of digest steps
	// but produce different digests.
	if Mix64(Seed(), 1) == Mix64(Seed(), 1<<40) {
		t.Fatal("distinct words collided")
	}
}

// The length prefix keeps concatenated fields unambiguous: ("ab","c") and
// ("a","bc") concatenate identically but must digest differently.
func TestMixBytesFramingIsUnambiguous(t *testing.T) {
	d1 := MixBytes(MixBytes(Seed(), []byte("ab")), []byte("c"))
	d2 := MixBytes(MixBytes(Seed(), []byte("a")), []byte("bc"))
	if d1 == d2 {
		t.Fatal("length framing failed: different splits digest equal")
	}
}

func TestChainEpochSensitivity(t *testing.T) {
	hash := []byte{1, 2, 3, 4}
	base := ChainEpoch(Seed(), 1, hash)
	if base == ChainEpoch(Seed(), 2, hash) {
		t.Fatal("epoch number not committed")
	}
	other := []byte{1, 2, 3, 5}
	if base == ChainEpoch(Seed(), 1, other) {
		t.Fatal("epoch hash not committed")
	}
	// Order matters: folding (1,h1) then (2,h2) differs from the swap.
	h1, h2 := []byte{0xAA}, []byte{0xBB}
	fwd := ChainEpoch(ChainEpoch(Seed(), 1, h1), 2, h2)
	rev := ChainEpoch(ChainEpoch(Seed(), 1, h2), 2, h1)
	if fwd == rev {
		t.Fatal("chain is order-insensitive")
	}
	// Determinism: same inputs, same digest.
	if fwd != ChainEpoch(ChainEpoch(Seed(), 1, h1), 2, h2) {
		t.Fatal("chain is not deterministic")
	}
}

// Same is the cross-server identity: content fields compared, the
// advisory seal Height ignored (it may trail by a block under faults).
func TestSameIgnoresHeightOnly(t *testing.T) {
	ck := Checkpoint{Epoch: 8, Height: 100, Elements: 2048, Digest: 0xFEED}
	skewed := ck
	skewed.Height = 101
	if !ck.Same(skewed) {
		t.Fatal("Same must ignore the seal height")
	}
	for name, mut := range map[string]Checkpoint{
		"epoch":    {Epoch: 9, Height: 100, Elements: 2048, Digest: 0xFEED},
		"elements": {Epoch: 8, Height: 100, Elements: 2049, Digest: 0xFEED},
		"digest":   {Epoch: 8, Height: 100, Elements: 2048, Digest: 0xBEEF},
	} {
		if ck.Same(mut) {
			t.Fatalf("Same ignored a %s mismatch", name)
		}
	}
}
