package faults

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

func network(t *testing.T, n int) (*sim.Simulator, *netsim.Network) {
	t.Helper()
	s := sim.New(1)
	net := netsim.New(s, netsim.Config{BaseLatency: time.Millisecond})
	for i := 0; i < n; i++ {
		net.AddNode(wire.NodeID(i), func(wire.NodeID, any, int) {})
	}
	return s, net
}

func TestInstallExecutesOnSchedule(t *testing.T) {
	s, net := network(t, 4)
	p := Plan{Events: []Event{
		{At: 10 * time.Millisecond, Kind: Crash, Nodes: []wire.NodeID{3}},
		{At: 20 * time.Millisecond, Kind: Partition,
			Groups: [][]wire.NodeID{{0, 1}, {2}}},
		{At: 30 * time.Millisecond, Kind: Restart, Nodes: []wire.NodeID{3}},
		{At: 40 * time.Millisecond, Kind: Heal},
		{At: 50 * time.Millisecond, Kind: Link, From: []wire.NodeID{0},
			To: []wire.NodeID{1}, Fault: netsim.LinkFault{Drop: 0.5}},
	}}
	p.Install(s, net)
	f := net.Faults()

	s.RunUntil(15 * time.Millisecond)
	if !f.Down(3) {
		t.Fatal("crash event did not take node 3 down")
	}
	s.RunUntil(25 * time.Millisecond)
	if !f.Blocked(0, 2) || !f.Blocked(2, 1) || f.Blocked(0, 1) {
		t.Fatal("partition blocks wrong links")
	}
	if f.Blocked(0, 3) || f.Blocked(3, 0) {
		t.Fatal("node absent from every group lost connectivity")
	}
	s.RunUntil(35 * time.Millisecond)
	if f.Down(3) {
		t.Fatal("restart event did not revive node 3")
	}
	s.RunUntil(45 * time.Millisecond)
	if f.Blocked(0, 2) {
		t.Fatal("heal event did not clear the partition")
	}
	s.RunUntil(55 * time.Millisecond)
	if f.Link(0, 1).Drop != 0.5 || f.Link(1, 0).Drop != 0.5 {
		t.Fatal("link event did not install the fault in both directions")
	}
}

func TestLinkEventEmptyScopeMeansAllLinks(t *testing.T) {
	s, net := network(t, 3)
	Plan{Events: []Event{{Kind: Link, Fault: netsim.LinkFault{Drop: 0.1}}}}.Install(s, net)
	s.RunUntil(time.Millisecond)
	f := net.Faults()
	for _, u := range net.NodeIDs() {
		for _, v := range net.NodeIDs() {
			if u == v {
				continue
			}
			if f.Link(u, v).Drop != 0.1 {
				t.Fatalf("link %d→%d missing the all-links fault", u, v)
			}
		}
	}
}

func TestEmptyPlanIsNoOp(t *testing.T) {
	s, net := network(t, 2)
	var p Plan
	if !p.Empty() {
		t.Fatal("zero plan not empty")
	}
	p.Install(s, net)
	if s.Pending() != 0 {
		t.Fatal("empty plan scheduled events")
	}
	_ = net
}

// Install must tolerate ids outside the deployment (validation is the
// spec layer's job; netsim ignores fault state for unknown nodes).
func TestInstallToleratesUnknownNodes(t *testing.T) {
	s, net := network(t, 2)
	Plan{Events: []Event{
		{Kind: Crash, Nodes: []wire.NodeID{9}},
		{Kind: Partition, Groups: [][]wire.NodeID{{0}, {9}}},
	}}.Install(s, net)
	s.RunUntil(time.Millisecond)
	if net.Faults().Down(0) || net.Faults().Down(1) {
		t.Fatal("unknown-node events disturbed real nodes")
	}
}
