// Package faults schedules deterministic fault injection for a simulated
// Setchain deployment: a Plan is a list of timestamped events — node
// crashes and restarts, network partitions and heals, and per-link message
// drop/duplication/reordering probabilities and delay spikes — installed
// as ordinary simulator events. Because the events execute on the virtual
// clock and all randomness comes from the simulator's seeded stream, a
// faulted run is exactly as reproducible as a fault-free one: same seed,
// same plan ⇒ same schedule, bit for bit.
//
// The plan drives netsim's Faults controller under netsim.CausePlan, so it
// composes with the always-on Byzantine presets of internal/byzantine
// (which use netsim.CauseByzantine): restarting a node the plan crashed
// never revives a node a Byzantine preset silenced.
//
// Plans are usually written as JSON (spec.FaultSpec, a "faults" block in
// any scenario document or a standalone file for setchain-bench -faults)
// and converted by internal/harness; the chaos_* registry entries ship
// ready-made schedules. Determinism is what makes faulted runs usable as
// regression pins in the generated RESULTS.md.
//
// See DESIGN.md §8 (fault model and the invariant checker).
package faults

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Kind names a fault event's action.
type Kind string

// The fault event kinds.
const (
	// Crash takes Nodes down (they neither send nor receive).
	Crash Kind = "crash"
	// Restart brings Nodes back up (unless another cause holds them down).
	Restart Kind = "restart"
	// Partition blocks every link between nodes in different Groups.
	Partition Kind = "partition"
	// Heal removes every link BLOCK the plan installed (i.e. undoes
	// Partition). It does not touch LinkFaults: restoring a link that a
	// Link event degraded takes another Link event with a zero Fault.
	Heal Kind = "heal"
	// Link sets the LinkFault for every directed link in From×To (both
	// directions; empty From/To mean "all nodes"), replacing whatever the
	// plan set on those links before — repeat every field a later event
	// (e.g. a delay spike) should keep. A zero Fault restores perfect
	// links.
	Link Kind = "link"
)

// Event is one scheduled fault action.
type Event struct {
	// At is the virtual time the action executes.
	At time.Duration
	// Kind selects the action; the fields below apply per kind.
	Kind Kind
	// Nodes are the targets of Crash/Restart.
	Nodes []wire.NodeID
	// Groups are Partition's sides; nodes absent from every group keep
	// full connectivity.
	Groups [][]wire.NodeID
	// From/To scope a Link event; empty means every registered node.
	From, To []wire.NodeID
	// Fault is the link behavior a Link event installs.
	Fault netsim.LinkFault
}

// Plan is a deterministic fault schedule. The zero value is a no-op.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Scaled returns a copy of the plan with every event time multiplied by f,
// so a run-time scale factor shrinks the whole timeline — workload rate,
// send window and fault schedule together. f == 1 (or <= 0, the harness's
// "unset") returns the plan unchanged.
func (p Plan) Scaled(f float64) Plan {
	if f == 1 || f <= 0 || p.Empty() {
		return p
	}
	out := Plan{Events: make([]Event, len(p.Events))}
	copy(out.Events, p.Events)
	for i := range out.Events {
		out.Events[i].At = time.Duration(float64(out.Events[i].At) * f)
	}
	return out
}

// Plans carry no validator of their own: spec.FaultSpec.validate is the
// single authority (every production path — JSON documents, registry
// cells, -faults files, matrix axes — flows through it before FromSpec
// converts to a Plan). Install is tolerant of out-of-range ids: netsim
// ignores fault state for nodes that do not exist.

// Install schedules every event of the plan on the simulator, acting on
// the network's fault controller under netsim.CausePlan. Call it after the
// deployment's nodes are registered and before the run starts. Events
// sharing a timestamp execute in plan order.
func (p Plan) Install(s *sim.Simulator, net *netsim.Network) {
	if p.Empty() {
		return
	}
	f := net.Faults()
	for _, ev := range p.Events {
		ev := ev
		s.At(ev.At, func() { apply(f, net, ev) })
	}
}

func apply(f *netsim.Faults, net *netsim.Network, ev Event) {
	switch ev.Kind {
	case Crash:
		for _, id := range ev.Nodes {
			f.SetDown(id, netsim.CausePlan, true)
		}
	case Restart:
		for _, id := range ev.Nodes {
			f.SetDown(id, netsim.CausePlan, false)
		}
	case Partition:
		f.Partition(netsim.CausePlan, ev.Groups...)
	case Heal:
		f.Heal(netsim.CausePlan)
	case Link:
		from, to := ev.From, ev.To
		if len(from) == 0 {
			from = net.NodeIDs()
		}
		if len(to) == 0 {
			to = net.NodeIDs()
		}
		for _, u := range from {
			for _, v := range to {
				if u == v {
					continue
				}
				f.SetLink(u, v, ev.Fault)
				f.SetLink(v, u, ev.Fault)
			}
		}
	}
}
