package report

import (
	"testing"

	"repro/internal/spec"
)

// mergeRecord builds a minimal experiment record with one cell at the
// given seed.
func mergeRecord(name string, seed int64) ExperimentRecord {
	return ExperimentRecord{Name: name, Cells: []CellRecord{{
		Spec:         spec.ScenarioSpec{Algorithm: spec.AlgHashchain, Rate: 100, Seed: seed}.WithDefaults(),
		Measurements: map[string]float64{spec.MetricAvgTput: 1},
		Invariant:    "ok",
	}}}
}

// A partial regeneration must replace matching records, append new ones,
// keep everything else byte-for-byte, and never relabel provenance: the
// artifact-level git stays the previous full run's, while the fresh
// records carry the fresh run's git themselves.
func TestMergeExperimentsProvenance(t *testing.T) {
	prev := &Artifact{
		SchemaVersion: SchemaVersion,
		Provenance:    Provenance{Tool: "setchain-report", Scale: 1, Git: "aaa111"},
		Experiments: []ExperimentRecord{
			mergeRecord("fig1", 1),
			mergeRecord("scale_tput", 1),
		},
	}
	fresh := &Artifact{
		SchemaVersion: SchemaVersion,
		Provenance:    Provenance{Tool: "setchain-report", Scale: 1, Git: "bbb222"},
		Experiments: []ExperimentRecord{
			mergeRecord("scale_tput", 1),
			mergeRecord("scale_chaos", 1),
		},
	}
	out := MergeExperiments(prev, fresh)
	if got := out.Provenance.Git; got != "aaa111" {
		t.Errorf("artifact-level git relabeled to %q; must keep the previous full run's", got)
	}
	names := map[string]ExperimentRecord{}
	for _, e := range out.Experiments {
		names[e.Name] = e
	}
	if len(out.Experiments) != 3 {
		t.Fatalf("got %d experiments, want 3", len(out.Experiments))
	}
	if g := names["fig1"].Git; g != "" {
		t.Errorf("untouched record carries git %q; must stay on the provenance block", g)
	}
	for _, rerun := range []string{"scale_tput", "scale_chaos"} {
		if g := names[rerun].Git; g != "bbb222" {
			t.Errorf("rerun record %q carries git %q, want the fresh run's", rerun, g)
		}
	}
	if out.Experiments[0].Name != "fig1" || out.Experiments[1].Name != "scale_tput" ||
		out.Experiments[2].Name != "scale_chaos" {
		t.Errorf("merge order wrong: %s %s %s",
			out.Experiments[0].Name, out.Experiments[1].Name, out.Experiments[2].Name)
	}
	// Same git on both sides ⇒ no per-record stamping at all.
	fresh.Provenance.Git = "aaa111"
	out = MergeExperiments(prev, fresh)
	for _, e := range out.Experiments {
		if e.Git != "" {
			t.Errorf("record %q stamped git %q despite identical run git", e.Name, e.Git)
		}
	}
}
