// Package report turns study results into reviewable reproduction
// evidence: a versioned machine-readable run artifact (results plus
// provenance, the successor of the ad-hoc BENCH_*.json shapes) and a
// deterministic Markdown report — per-experiment fidelity tables
// comparing measured numbers against the registry's paper reference
// values (internal/spec.Reference), unicode figures via
// internal/textplot, and a provenance header. cmd/setchain-report
// regenerates RESULTS.md from it under go generate, and
// cmd/setchain-bench emits artifacts with -artifact.
//
// See DESIGN.md §9 (the report layer: reference semantics, tolerance
// policy, artifact schema versioning).
package report

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/spec"
)

// SchemaVersion is the run-artifact schema generation. Versioning rules
// (DESIGN.md §9): adding optional fields keeps the version; renaming,
// removing or re-interpreting a field bumps it. Readers accept any
// version in [1, SchemaVersion] and ignore unknown fields, so older
// tools can read newer artifacts of the same generation and committed
// artifacts stay readable across additive changes.
const SchemaVersion = 1

// Artifact is one benchmark invocation's machine-readable record: what
// ran, under which conditions, and what every cell measured. Following
// the "report conditions and provenance with every number" rule, a
// measurement never travels without the Provenance block that scopes it.
type Artifact struct {
	SchemaVersion int                `json:"schema_version"`
	Provenance    Provenance         `json:"provenance"`
	Experiments   []ExperimentRecord `json:"experiments"`
}

// Provenance records the conditions behind the artifact's numbers.
// Wall-clock fields (Go version, CPU count, git state, timestamps) live
// here and only here: per-cell measurements are pure virtual-time
// quantities, deterministic for a given (seed, scale, code) triple.
type Provenance struct {
	// Tool is the emitting command ("setchain-bench", "setchain-report").
	Tool string `json:"tool"`
	// Git is `git describe --always --dirty` at emission time, empty when
	// unavailable. Generated docs render it from committed artifacts only —
	// embedding HEAD's own hash in a committed file can never round-trip.
	Git       string  `json:"git,omitempty"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	Workers   int     `json:"workers"`
	Scale     float64 `json:"scale"`
	// Seed is the cells' common workload seed when they share one, else 0.
	Seed int64 `json:"seed,omitempty"`
	// Mode is "modeled" unless any cell ran full crypto, then "mixed" or
	// "full".
	Mode string `json:"mode"`
}

// ExperimentRecord is one registry entry's (or scenario document's) runs.
type ExperimentRecord struct {
	// Name is the registry entry name or the scenario file path.
	Name string `json:"name"`
	// Git is the `git describe` state this record was (re)emitted at,
	// set only when it differs from the artifact-level Provenance.Git:
	// partial regenerations (setchain-report -emit-artifact -entries)
	// re-run some entries at a newer commit without relabeling the
	// records they did not touch. Empty means the record belongs to the
	// provenance block's own run. Additive optional field — same schema
	// generation (DESIGN.md §9).
	Git string `json:"git,omitempty"`
	// WallSeconds is the wall-clock cost of the whole experiment. Zero in
	// deterministic artifacts (cmd/setchain-report strips it).
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Metrics holds experiment-level measurements (the perf probe's
	// virtual_s_per_wall_s family); cell measurements live on the cells.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Cells are the simulation runs, in the entry's cell order.
	Cells []CellRecord `json:"cells,omitempty"`
}

// CellRecord is one simulation run: the defaulted spec it executed and
// everything it measured.
type CellRecord struct {
	// Index is the cell's position in the owning entry.
	Index int `json:"index"`
	// Label and Group mirror the spec's presentation fields.
	Label string `json:"label"`
	Group string `json:"group,omitempty"`
	// Spec is the defaulted scenario that ran.
	Spec spec.ScenarioSpec `json:"spec"`
	// Measurements maps spec metric names (spec.Metrics vocabulary) to
	// measured values. JSON object keys marshal sorted, so encoding is
	// deterministic.
	Measurements map[string]float64 `json:"measurements"`
	// Invariant is "ok" or the end-of-run safety violation's text.
	Invariant string `json:"invariant"`
	// Series is the committed-rate rolling average (9 s window), present
	// only for entries the report plots as time-series figures.
	Series []SeriesPoint `json:"series,omitempty"`
}

// SeriesPoint is one throughput-curve sample.
type SeriesPoint struct {
	// T is the sample time in virtual seconds.
	T float64 `json:"t"`
	// Rate is the rolling-average commit rate in elements/second.
	Rate float64 `json:"rate"`
}

// Experiment returns the named experiment record.
func (a *Artifact) Experiment(name string) (ExperimentRecord, bool) {
	for _, e := range a.Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return ExperimentRecord{}, false
}

// Violations lists "experiment/label" identifiers of every cell whose
// invariant check failed.
func (a *Artifact) Violations() []string {
	var out []string
	for _, e := range a.Experiments {
		for _, c := range e.Cells {
			if c.Invariant != "ok" {
				out = append(out, fmt.Sprintf("%s/%s", e.Name, c.Label))
			}
		}
	}
	return out
}

// CellCount returns the total number of cell records.
func (a *Artifact) CellCount() int {
	n := 0
	for _, e := range a.Experiments {
		n += len(e.Cells)
	}
	return n
}

// Encode renders the artifact as indented JSON with a trailing newline.
// A zero SchemaVersion is stamped with the current generation; an older
// one is refused — re-stamping unmigrated data would lie about its shape.
func (a *Artifact) Encode() ([]byte, error) {
	if a.SchemaVersion == 0 {
		a.SchemaVersion = SchemaVersion
	} else if a.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("artifact: cannot encode schema version %d with a v%d writer (migrate the data first)",
			a.SchemaVersion, SchemaVersion)
	}
	blob, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Decode parses an artifact. Unknown fields are ignored — a newer writer
// may have added optional fields — but an unknown schema generation is
// an error: field meanings may have changed.
func Decode(blob []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(blob, &a); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if a.SchemaVersion < 1 || a.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("artifact schema version %d not in [1, %d] (regenerate it, or upgrade this tool)",
			a.SchemaVersion, SchemaVersion)
	}
	return &a, nil
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	blob, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// ReadFile loads an artifact from path.
func ReadFile(path string) (*Artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// roundTo trims a float to the given decimal places so artifact JSON and
// rendered tables stay stable under formatting round-trips.
func roundTo(v float64, places int) float64 {
	scale := math.Pow(10, float64(places))
	return math.Round(v*scale) / scale
}

// seconds converts a duration to float seconds rounded to milliseconds.
func seconds(d time.Duration) float64 { return roundTo(d.Seconds(), 3) }
