package report

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/spec"
)

func sampleArtifact() *Artifact {
	return &Artifact{
		SchemaVersion: SchemaVersion,
		Provenance: Provenance{
			Tool: "setchain-bench", Git: "abc1234", GoVersion: "go1.24",
			GOOS: "linux", GOARCH: "amd64", CPUs: 8, Workers: 8,
			Scale: 1, Seed: 1, Mode: "modeled",
		},
		Experiments: []ExperimentRecord{{
			Name:        "fig4",
			WallSeconds: 1.25,
			Metrics:     map[string]float64{"virtual_s_per_wall_s": 2002},
			Cells: []CellRecord{{
				Index: 0,
				Label: "Hashchain c=100",
				Spec: spec.ScenarioSpec{
					Algorithm: spec.AlgHashchain, Rate: 1250,
				}.WithDefaults(),
				Measurements: map[string]float64{
					spec.MetricAvgTput: 1244.98, spec.MetricEff2x: 1,
				},
				Invariant: "ok",
				Series:    []SeriesPoint{{T: 1, Rate: 0}, {T: 2, Rate: 310.5}},
			}},
		}},
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	a := sampleArtifact()
	blob, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("round trip changed the artifact:\n got %+v\nwant %+v", back, a)
	}
	// Encoding must be stable: a second encode of the decoded value is
	// byte-identical (JSON object keys marshal sorted).
	blob2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("re-encoding a decoded artifact changed the bytes")
	}
}

// A reader must tolerate fields it does not know — a newer writer of the
// same schema generation may have added optional ones — while refusing
// an unknown generation outright.
func TestArtifactForwardCompat(t *testing.T) {
	blob := []byte(`{
		"schema_version": 1,
		"provenance": {"tool": "future-bench", "mode": "modeled", "scale": 1,
			"hyperthreads": 96, "cgroup": "v2"},
		"experiments": [{
			"name": "fig4",
			"novel_summary": {"a": 1},
			"cells": [{
				"index": 0, "label": "Hashchain c=100",
				"spec": {"algorithm": "hashchain", "rate": 1250},
				"measurements": {"avg_tput": 1244, "novel_metric": 7},
				"invariant": "ok",
				"flame_graph": "zzz"
			}]
		}]
	}`)
	a, err := Decode(blob)
	if err != nil {
		t.Fatalf("unknown fields must decode: %v", err)
	}
	if got := a.Experiments[0].Cells[0].Measurements["avg_tput"]; got != 1244 {
		t.Fatalf("avg_tput = %g, want 1244", got)
	}
	if n := a.CellCount(); n != 1 {
		t.Fatalf("CellCount = %d, want 1", n)
	}

	if _, err := Decode([]byte(`{"schema_version": 99}`)); err == nil ||
		!strings.Contains(err.Error(), "schema version") {
		t.Fatalf("future schema generation must be refused, got %v", err)
	}
	if _, err := Decode([]byte(`{"experiments": []}`)); err == nil {
		t.Fatal("missing schema version must be refused")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("garbage must be refused")
	}

	// The writer side is version-honest too: re-encoding data labeled
	// with another generation must fail rather than re-stamp it.
	stale := sampleArtifact()
	stale.SchemaVersion = SchemaVersion + 1
	if _, err := stale.Encode(); err == nil ||
		!strings.Contains(err.Error(), "migrate") {
		t.Fatalf("encoding a foreign schema generation must fail, got %v", err)
	}
}

func TestArtifactViolations(t *testing.T) {
	a := sampleArtifact()
	if v := a.Violations(); len(v) != 0 {
		t.Fatalf("clean artifact reports violations: %v", v)
	}
	a.Experiments[0].Cells[0].Invariant = "epoch 3 mismatch"
	want := []string{"fig4/Hashchain c=100"}
	if v := a.Violations(); !reflect.DeepEqual(v, want) {
		t.Fatalf("Violations = %v, want %v", v, want)
	}
}

func TestCellsSeedMode(t *testing.T) {
	exps := sampleArtifact().Experiments
	seed, mode := CellsSeedMode(exps)
	if seed != 1 || mode != spec.CryptoModeled {
		t.Fatalf("CellsSeedMode = (%d, %q), want (1, modeled)", seed, mode)
	}
	full := spec.ScenarioSpec{Algorithm: spec.AlgVanilla, Rate: 10, Seed: 7,
		Crypto: spec.CryptoFull}.WithDefaults()
	exps = append(exps, ExperimentRecord{Name: "custom", Cells: []CellRecord{{
		Spec: full, Measurements: map[string]float64{}, Invariant: "ok",
	}}})
	seed, mode = CellsSeedMode(exps)
	if seed != 0 || mode != "mixed" {
		t.Fatalf("CellsSeedMode = (%d, %q), want (0, mixed) for differing seeds and crypto", seed, mode)
	}
}
