package report

import (
	"encoding/json"
	"fmt"
	"os/exec"
	"runtime"
	"strings"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/spec"
)

// This file is the bridge from the executor to the artifact: a harness
// Result becomes a CellRecord of pure virtual-time measurements, and
// Collect runs a whole catalog (deduplicating cells shared between
// entries — the Fig. 5 grids reuse Fig. 3's, Table 2 reuses Fig. 1's)
// into one artifact.

// SeriesEntries names the registry entries whose cells keep their
// throughput-over-time series in the artifact, for the report's
// line-plot figures. The rest stay series-free to keep artifacts small.
var SeriesEntries = map[string]bool{"fig1": true, "fig2left": true}

// Measurements extracts a Result's per-cell measurement map, keyed by
// the spec package's metric vocabulary. Values are rounded (3 decimals
// for rates and seconds, 4 for efficiency fractions) so the artifact's
// JSON is stable under format round-trips.
func Measurements(res *harness.Result) map[string]float64 {
	m := map[string]float64{
		spec.MetricInjected:  float64(res.Injected),
		spec.MetricCommitted: float64(res.Committed),
		spec.MetricAvgTput:   roundTo(res.AvgTput, 3),
		spec.MetricEffSend:   roundTo(res.Eff50, 4),
		spec.MetricEff15x:    roundTo(res.Eff75, 4),
		spec.MetricEff2x:     roundTo(res.Eff100, 4),
		spec.MetricAnalytic:  roundTo(res.Analytical, 3),
	}
	if t, ok := res.CommitFrac[0]; ok {
		m[spec.MetricCommitFirstS] = seconds(t)
	}
	if t, ok := res.CommitFrac[50]; ok {
		m[spec.MetricCommit50pS] = seconds(t)
	}
	if res.Scenario.Level == metrics.LevelStages && res.Recorder != nil {
		if lats, _ := res.Recorder.LatencyCDF(metrics.StageCommitted); len(lats) > 0 {
			m[spec.MetricP50CommitS] = seconds(metrics.LatencyQuantile(lats, 0.50))
			m[spec.MetricP99CommitS] = seconds(metrics.LatencyQuantile(lats, 0.99))
		}
	}
	// Checkpoint counters are deterministic (pure functions of the
	// scenario) and so belong in the artifact; the heap measurement does
	// not — it depends on the host and on concurrently-running cells, so
	// it stays a run-time assertion (harness.Result.HeapLiveMB) only.
	if res.Scenario.CheckpointInterval > 0 {
		m[spec.MetricCkptSeals] = float64(res.CheckpointSeals)
		m[spec.MetricSyncInstalls] = float64(res.SyncInstalls)
	}
	// Message complexity (the mesh transport's headline axis). NetMsgs is
	// deterministic, so the ratio is artifact-worthy on every committed
	// run, broadcast or mesh.
	if res.Committed > 0 {
		m[spec.MetricMsgsPerCommit] = roundTo(float64(res.NetMsgs)/float64(res.Committed), 3)
	}
	// Open-system measurements (DESIGN.md §14). Gated on the open/admission
	// knobs so closed-system cells — every pre-open artifact — keep a
	// byte-identical measurement map.
	if res.Scenario.Admission.Policy != "" || res.Scenario.Open.Enabled() {
		// Scenario.SendFor already carries the scale by the time the
		// executor stores it back into the Result.
		if secs := res.Scenario.SendFor.Seconds(); secs > 0 {
			m[spec.MetricOfferedRate] = roundTo(float64(res.Offered)/secs, 3)
		}
		if res.Offered > 0 {
			m[spec.MetricRejectionRate] = roundTo(float64(res.Rejected)/float64(res.Offered), 4)
		}
		m[spec.MetricFairness] = roundTo(res.Fairness, 4)
	}
	return m
}

// CellFromResult builds one cell record. withSeries keeps the rolling
// throughput curve (entries listed in SeriesEntries).
func CellFromResult(index int, cell spec.ScenarioSpec, res *harness.Result, withSeries bool) CellRecord {
	cell = cell.WithDefaults()
	rec := CellRecord{
		Index:        index,
		Label:        cell.Label(),
		Group:        cell.Group,
		Spec:         cell,
		Measurements: Measurements(res),
		Invariant:    "ok",
	}
	if res.Invariant != nil {
		rec.Invariant = res.Invariant.Error()
	}
	if withSeries {
		for _, pt := range res.Series {
			rec.Series = append(rec.Series, SeriesPoint{
				T:    roundTo(pt.Time.Seconds(), 3),
				Rate: roundTo(pt.Rate, 3),
			})
		}
	}
	return rec
}

// FromResults builds an experiment record from an entry's cells and
// their results (aligned by index, as RunSpecs returns them).
func FromResults(name string, cells []spec.ScenarioSpec, results []*harness.Result) ExperimentRecord {
	e := ExperimentRecord{Name: name}
	withSeries := SeriesEntries[name]
	for i, res := range results {
		e.Cells = append(e.Cells, CellFromResult(i, cells[i], res, withSeries))
	}
	return e
}

// GitDescribe returns `git describe --always --dirty` for artifact
// provenance, or "" outside a work tree — shared by the emitting
// commands so their artifacts agree on the field's meaning.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// StampRuntime fills the wall-clock context fields — git state, Go
// toolchain, host, worker count — in one place for every artifact
// emitter, so the two commands cannot drift in what the fields mean.
// Run-defining fields (Tool, Scale, Seed, Mode) stay the caller's.
func StampRuntime(p *Provenance) {
	p.Git = GitDescribe()
	p.GoVersion = runtime.Version()
	p.GOOS = runtime.GOOS
	p.GOARCH = runtime.GOARCH
	p.CPUs = runtime.NumCPU()
	p.Workers = harness.Workers()
}

// cellKey canonicalizes a cell for cross-entry deduplication: two cells
// with the same defaulted spec run identically (the executor is a pure
// function of the spec and scale), so one simulation serves both.
func cellKey(c spec.ScenarioSpec) (string, error) {
	blob, err := json.Marshal(c.WithDefaults())
	return string(blob), err
}

// Collect runs every non-analytic entry of the catalog at the given
// scale and returns the artifact. Cells shared between entries (Fig. 5
// reuses Fig. 3's grids, Table 2 reuses Fig. 1's panels) are simulated
// once. The provenance carries only run-defining conditions — scale,
// seed, crypto mode — because the measurements are deterministic for
// those; wall-clock context is the emitting command's business.
func Collect(catalog []spec.Entry, scale float64) (*Artifact, error) {
	var unique []spec.ScenarioSpec
	index := map[string]int{}
	for _, e := range catalog {
		for _, c := range e.Cells {
			k, err := cellKey(c)
			if err != nil {
				return nil, fmt.Errorf("entry %q: %w", e.Name, err)
			}
			if _, ok := index[k]; !ok {
				index[k] = len(unique)
				unique = append(unique, c)
			}
		}
	}
	results, err := harness.RunSpecs(unique, scale)
	if err != nil {
		return nil, err
	}

	art := &Artifact{
		SchemaVersion: SchemaVersion,
		Provenance: Provenance{
			Tool:  "setchain-report",
			Scale: scale,
		},
	}
	for _, e := range catalog {
		if len(e.Cells) == 0 {
			continue
		}
		shared := make([]*harness.Result, len(e.Cells))
		for i, c := range e.Cells {
			k, _ := cellKey(c)
			shared[i] = results[index[k]]
		}
		art.Experiments = append(art.Experiments, FromResults(e.Name, e.Cells, shared))
	}
	art.Provenance.Seed, art.Provenance.Mode = CellsSeedMode(art.Experiments)
	return art, nil
}

// MergeExperiments overlays fresh experiment records onto a previous
// artifact: records sharing a name are replaced in place, new names
// append in the fresh artifact's order, everything else is kept.
// Provenance stays honest in both directions: the artifact-level block
// (git included) keeps describing the previous full-catalog run, so the
// untouched records are never relabeled to a commit they did not run at,
// while each fresh record carries the fresh run's git describe in its
// own Git field whenever it differs. Only seed/mode are re-derived from
// the merged record set. Callers pass a fresh artifact that has already
// been runtime-stamped.
func MergeExperiments(prev, fresh *Artifact) *Artifact {
	out := &Artifact{
		SchemaVersion: SchemaVersion,
		Provenance:    prev.Provenance,
		Experiments:   append([]ExperimentRecord(nil), prev.Experiments...),
	}
	for _, e := range fresh.Experiments {
		if fresh.Provenance.Git != prev.Provenance.Git {
			e.Git = fresh.Provenance.Git
		}
		replaced := false
		for i := range out.Experiments {
			if out.Experiments[i].Name == e.Name {
				out.Experiments[i] = e
				replaced = true
				break
			}
		}
		if !replaced {
			out.Experiments = append(out.Experiments, e)
		}
	}
	out.Provenance.Seed, out.Provenance.Mode = CellsSeedMode(out.Experiments)
	return out
}

// CellsSeedMode derives the provenance seed and crypto-mode summary from
// the cells that actually ran: the common seed (0 when they differ) and
// "modeled", "full" or "mixed". Deriving from the records rather than
// the registry keeps -spec/-matrix artifacts honestly labeled.
func CellsSeedMode(exps []ExperimentRecord) (int64, string) {
	seed := int64(0)
	mixedSeeds, modeled, full := false, false, false
	for _, e := range exps {
		for _, c := range e.Cells {
			if seed == 0 {
				seed = c.Spec.Seed
			} else if c.Spec.Seed != seed {
				mixedSeeds = true
			}
			if c.Spec.Crypto == spec.CryptoFull {
				full = true
			} else {
				modeled = true
			}
		}
	}
	if mixedSeeds {
		seed = 0
	}
	mode := spec.CryptoModeled
	switch {
	case full && modeled:
		mode = "mixed"
	case full:
		mode = spec.CryptoFull
	}
	return seed, mode
}
