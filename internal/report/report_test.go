package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// miniCatalog is a small fixed-seed registry standing in for the real
// one: a throughput entry with a line-plot figure, a grid entry with a
// bar figure, and a stage-latency entry — every rendering path RESULTS.md
// exercises, at a fraction of the runtime.
func miniCatalog() []spec.Entry {
	mini := func(alg string, rate float64, group string) spec.ScenarioSpec {
		return spec.ScenarioSpec{
			Algorithm: alg, Rate: rate, Servers: 4, Group: group,
			SendFor: spec.Duration(4 * time.Second),
			Horizon: spec.Duration(20 * time.Second),
		}
	}
	stages := mini(spec.AlgHashchain, 400, "")
	stages.Metrics = spec.MetricsStages
	defRefs := func(rs []spec.Reference) []spec.Reference {
		for i := range rs {
			rs[i] = rs[i].WithDefaults()
		}
		return rs
	}
	return []spec.Entry{
		{
			Name: "mini_analytic", Title: "Closed-form only", Figure: "—",
			Description: "No cells; must not render measurement tables.",
		},
		{
			Name: "mini_tput", Title: "Throughput pair", Figure: "Fig. T",
			Cells: []spec.ScenarioSpec{
				mini(spec.AlgVanilla, 300, "pair"),
				mini(spec.AlgHashchain, 300, "pair"),
			},
			Refs: defRefs([]spec.Reference{
				{Cell: 0, Metric: spec.MetricAvgTput, Value: 250, Tolerance: 0.3,
					Source: spec.SourceModel, Note: "rate-limited"},
				{Cell: 1, Metric: spec.MetricEff2x, Value: 1, Tolerance: 0.05},
			}),
		},
		{
			Name: "mini_grid", Title: "Grid", Figure: "Fig. G",
			Cells: []spec.ScenarioSpec{
				mini(spec.AlgHashchain, 200, "200 el/s"),
				mini(spec.AlgHashchain, 400, "400 el/s"),
			},
			Refs: defRefs([]spec.Reference{
				{Cell: 1, Metric: spec.MetricEff2x, Value: 1, Tolerance: 0.05,
					Source: spec.SourceRepo},
			}),
		},
		{
			Name: "mini_lat", Title: "Latency", Figure: "Fig. L",
			Cells: []spec.ScenarioSpec{stages},
			Refs: defRefs([]spec.Reference{
				{Cell: 0, Metric: spec.MetricP99CommitS, Value: 4, Tolerance: 0.1,
					Compare: spec.CompareMax, Note: "finality bound"},
			}),
		},
	}
}

// withMiniFigures routes the mini entries through the figure renderers
// (package-level maps keyed by entry name) for the duration of f.
func withMiniFigures(t *testing.T, f func()) {
	t.Helper()
	SeriesEntries["mini_tput"] = true
	barEntries["mini_grid"] = spec.MetricEff2x
	defer func() {
		delete(SeriesEntries, "mini_tput")
		delete(barEntries, "mini_grid")
	}()
	f()
}

// TestGoldenResults pins the full rendering pipeline byte-for-byte:
// collect the mini catalog at two scales on fixed seeds, render, and
// compare against the golden file. Regenerate with
//
//	go test ./internal/report -run TestGoldenResults -update
func TestGoldenResults(t *testing.T) {
	withMiniFigures(t, func() {
		paper, err := Collect(miniCatalog(), 1)
		if err != nil {
			t.Fatal(err)
		}
		paper.Provenance.Git = "v-golden-fixed"
		reduced, err := Collect(miniCatalog(), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := Render(miniCatalog(), paper, reduced, Options{
			GeneratedBy:       "internal/report golden test",
			PaperArtifactPath: "testdata/golden_paper.json",
			ReducedScale:      0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", "golden_results.md")
		if *update {
			if err := os.WriteFile(golden, []byte(doc), 0o644); err != nil {
				t.Fatal(err)
			}
			// The paper-side artifact is golden too: its JSON encoding must
			// be as stable as the rendering.
			blob, err := paper.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join("testdata", "golden_paper.json"), blob, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run with -update to create it)", err)
		}
		if doc != string(want) {
			t.Fatalf("rendered report drifted from %s (run with -update after verifying the change)\n--- got ---\n%s",
				golden, doc)
		}
		wantBlob, err := os.ReadFile(filepath.Join("testdata", "golden_paper.json"))
		if err != nil {
			t.Fatal(err)
		}
		gotBlob, err := paper.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(gotBlob) != string(wantBlob) {
			t.Fatal("collected artifact JSON drifted from testdata/golden_paper.json (run with -update after verifying)")
		}
	})
}

// Render must refuse artifacts that no longer describe the catalog.
func TestRenderRejectsStaleArtifact(t *testing.T) {
	catalog := miniCatalog()
	paper, err := Collect(catalog, 1)
	if err != nil {
		t.Fatal(err)
	}
	reduced := paper

	missing := append([]spec.Entry(nil), catalog...)
	missing = append(missing, spec.Entry{
		Name: "mini_new", Title: "Added after the artifact", Figure: "—",
		Cells: []spec.ScenarioSpec{{
			Algorithm: spec.AlgVanilla, Rate: 100,
			SendFor: spec.Duration(2 * time.Second),
			Horizon: spec.Duration(10 * time.Second),
		}},
		Refs: []spec.Reference{{Cell: 0, Metric: spec.MetricEff2x, Value: 1,
			Tolerance: 0.1, Compare: spec.CompareBand, Source: spec.SourceRepo}},
	})
	if _, err := Render(missing, paper, reduced, Options{}); err == nil ||
		!strings.Contains(err.Error(), "mini_new") {
		t.Fatalf("missing entry must fail rendering, got %v", err)
	}

	edited := miniCatalog()
	edited[1].Cells[0].Rate = 999 // parameter change invalidates measurements
	if _, err := Render(edited, paper, reduced, Options{}); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Fatalf("edited cell must fail rendering, got %v", err)
	}

	// A reference whose metric the cell never measured constrains nothing
	// and must fail loudly, not render as an empty row.
	unmeasured := miniCatalog()
	unmeasured[1].Refs = append(unmeasured[1].Refs, spec.Reference{
		Cell: 0, Metric: spec.MetricP50CommitS, Value: 1, Tolerance: 0.1,
		Compare: spec.CompareBand, Source: spec.SourceRepo,
	})
	if _, err := Render(unmeasured, paper, reduced, Options{}); err == nil ||
		!strings.Contains(err.Error(), "not measured") {
		t.Fatalf("unmeasured reference must fail rendering, got %v", err)
	}
}

// Collect must simulate shared cells once but report them under every
// owning entry.
func TestCollectDeduplicatesSharedCells(t *testing.T) {
	catalog := miniCatalog()[1:3] // mini_tput + mini_grid share no cells
	twin := spec.Entry{
		Name: "mini_twin", Title: "Same cells as mini_grid", Figure: "—",
		Cells: miniCatalog()[2].Cells,
		Refs:  miniCatalog()[2].Refs,
	}
	art, err := Collect(append(catalog, twin), 1)
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := art.Experiment("mini_grid")
	dup, _ := art.Experiment("mini_twin")
	if len(grid.Cells) != 2 || len(dup.Cells) != 2 {
		t.Fatalf("cells: grid %d, twin %d, want 2 and 2", len(grid.Cells), len(dup.Cells))
	}
	for i := range grid.Cells {
		a, b := grid.Cells[i].Measurements, dup.Cells[i].Measurements
		for k, v := range a {
			if b[k] != v {
				t.Fatalf("shared cell %d measurement %s differs: %g vs %g", i, k, v, b[k])
			}
		}
	}
}
