// Package consensus implements a Tendermint-style Byzantine fault tolerant
// consensus engine, the core of this repo's CometBFT substitute. It follows
// the structure of Tendermint/CometBFT consensus (Buchman, Kwon, Milosevic,
// "The latest gossip on BFT consensus"):
//
//   - heights decided one at a time, each through one or more rounds;
//   - rotating proposers; a proposal carries the full block;
//   - two voting phases (prevote, precommit) with 2f+1-of-3f+1 quorums;
//   - value locking: once a validator precommits a block it only prevotes
//     that block — or a later-round re-proposal of the same transactions —
//     until a newer quorum releases it; a locked proposer re-proposes its
//     locked value (the simplified proof-of-lock rule), which keeps the
//     cluster live when message loss splits a round's locks;
//   - timeouts with per-round escalation to skip faulty proposers;
//   - catch-up: a validator that observes a precommit quorum for a block it
//     never received requests the block from a voter.
//
// Tolerates f < n/3 Byzantine validators, the bound the paper notes for
// CometBFT (the Setchain layer above only needs f < n/2 of its own model).
//
// Block pacing follows the paper's measured deployment: one block roughly
// every 1.25 s (block rate ~0.8 blocks/s), enforced as a minimum
// start-to-start interval between heights.
//
// See DESIGN.md §4 (ledger stack).
package consensus

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/abci"
	"repro/internal/checkpoint"
	"repro/internal/mempool"
	"repro/internal/netsim"
	"repro/internal/setcrypto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Step is the phase of the current round.
type Step uint8

// Round steps in order.
const (
	StepPropose Step = iota
	StepPrevote
	StepPrecommit
)

// VoteType distinguishes the two voting phases.
type VoteType uint8

// Vote phases.
const (
	VotePrevote VoteType = iota
	VotePrecommit
)

func (v VoteType) String() string {
	if v == VotePrevote {
		return "prevote"
	}
	return "precommit"
}

// nilBlockID is the vote value meaning "no block this round".
const nilBlockID = ""

// Proposal is the proposer's block announcement for (height, round).
type Proposal struct {
	Height   uint64
	Round    int32
	Block    *wire.Block
	BlockID  string
	Proposer wire.NodeID
	Sig      []byte
}

// Vote is a prevote or precommit for a block id (or nil) at (height, round).
type Vote struct {
	Height  uint64
	Round   int32
	Type    VoteType
	BlockID string
	Voter   wire.NodeID
	Sig     []byte
}

// BlockRequest asks a peer for the proposal behind a blockID the requester
// saw a precommit quorum for but never received. An empty BlockID asks for
// whatever block was DECIDED at that height (deep catch-up after an
// outage); such responses must carry a commit certificate.
type BlockRequest struct {
	Height  uint64
	BlockID string
}

// BlockResponse answers a BlockRequest. Commit carries the 2f+1 precommit
// votes certifying the decision when the request had no blockID; the
// requester verifies every signature before committing.
type BlockResponse struct {
	Proposal *Proposal
	Commit   []*Vote
}

// SyncOffer answers a deep catch-up BlockRequest the peer can no longer
// serve block-by-block (the height is below its prune horizon, or outside
// its decided-proposal window). It replaces the old single-blob
// SyncResponse: the offer carries only the snapshot's identity, checkpoint
// chain, and the certified block header binding that chain (a decided
// proposal whose CkptEpoch/CkptFold equal the snapshot's, plus its 2f+1
// precommit certificate); the state itself transfers in fixed-size chunks
// (SyncChunkRequest/SyncChunk) so bandwidth caps and link faults shape
// real state-sync latency. The requester verifies the certificate and the
// fold binding BEFORE fetching a single chunk.
type SyncOffer struct {
	Snapshot *checkpoint.Snapshot
	// Proposal/Commit certify the header that binds the snapshot's chain:
	// Proposal.Block.CkptEpoch == Snapshot.Last.Epoch and
	// Proposal.Block.CkptFold == checkpoint.FoldChain(Snapshot.Chain).
	Proposal *Proposal
	Commit   []*Vote
	// Chunks and ChunkBytes describe the transfer: Chunks fixed-size
	// envelopes of ChunkBytes each (the last possibly smaller), covering
	// Snapshot.Bytes modeled bytes in total.
	Chunks     int
	ChunkBytes int
}

// SyncChunkRequest asks the offering peer for one snapshot chunk. Epoch
// and Fold name the snapshot (its Last.Epoch and chain fold) so a stale
// request cannot pull chunks of a different snapshot.
type SyncChunkRequest struct {
	Epoch uint64
	Fold  uint64
	Seq   int
}

// SyncChunk is one fixed-size slice of a snapshot transfer. Size is the
// modeled payload bytes charged through netsim; Sum is the per-chunk
// digest the requester verifies before accepting the chunk (the
// simulation ships state by reference in the offer, so the digest models
// per-chunk hash verification).
type SyncChunk struct {
	Epoch uint64
	Fold  uint64
	Seq   int
	Size  int
	Sum   uint64
}

// chunkSum is the modeled per-chunk digest: snapshot identity + sequence
// + size, folded with the checkpoint digest idiom.
func chunkSum(fold uint64, seq, size int) uint64 {
	h := checkpoint.Mix64(checkpoint.Seed(), fold)
	h = checkpoint.Mix64(h, uint64(seq))
	return checkpoint.Mix64(h, uint64(size))
}

// StateSyncer is the application side of checkpoint state-sync: the
// replicated application (core.Server) serves its latest sealed snapshot
// and installs a verified peer snapshot. Both directions are wired by the
// ledger node at construction; a nil syncer disables state-sync.
type StateSyncer interface {
	// SyncSnapshot returns the latest sealed checkpoint snapshot, if any.
	SyncSnapshot() (*checkpoint.Snapshot, bool)
	// InstallSync verifies a peer snapshot against local state and adopts
	// it, returning false (state untouched) when stale or inconsistent.
	// The certificate binding the snapshot to a quorum-signed header is
	// verified by consensus before this is called (DESIGN.md §15).
	InstallSync(snap *checkpoint.Snapshot) bool
	// HeaderCommitment returns the latest sealed checkpoint epoch and the
	// fold of the chain through it (0, checkpoint.Seed() before any seal);
	// proposers stamp it into every block header.
	HeaderCommitment() (epoch, fold uint64)
	// VerifyCommitment checks a proposed header's claimed commitment
	// against local sealing: a claim at or below the local seal horizon
	// must match the local chain prefix exactly; a claim ahead of local
	// sealing is accepted (the quorum vets it — a validator cannot
	// falsify state it has not reached).
	VerifyCommitment(epoch, fold uint64) bool
}

// SnapshotForger is implemented by Byzantine applications that corrupt
// the snapshot they serve while reusing the legitimate certificate (the
// forged-snapshot attack the header binding exists to stop). A nil return
// serves the snapshot unmodified.
type SnapshotForger interface {
	ForgeSyncSnapshot(snap *checkpoint.Snapshot) *checkpoint.Snapshot
}

// BreakHeaderBindForTest disables the requester-side verification of
// state-sync offers — the certificate check and the chain-fold binding —
// restoring the pre-fix trust hole. Sabotage tests flip it to prove the
// verification is non-vacuous: a forged snapshot MUST install with the
// check broken and MUST be rejected with it intact. Never set outside
// tests.
var BreakHeaderBindForTest bool

// syncFetch is an in-flight chunked snapshot transfer on the requester:
// the verified offer, the serving peer, and the received-chunk bitmap
// that makes the transfer resumable — a re-offer or retry resumes from
// the first missing chunk instead of restarting.
type syncFetch struct {
	snap       *checkpoint.Snapshot
	from       wire.NodeID
	epoch      uint64
	fold       uint64
	chunks     int
	chunkBytes int
	got        []bool
	ngot       int
}

// next returns the first missing chunk sequence (chunks are requested one
// at a time, ascending, so this is also the resume point).
func (f *syncFetch) next() int {
	for i, ok := range f.got {
		if !ok {
			return i
		}
	}
	return -1
}

// syncChunkCount is the envelope count for a snapshot of size bytes.
func syncChunkCount(bytes, chunkBytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + chunkBytes - 1) / chunkBytes
}

// voteWireSize approximates a consensus vote's bytes on the wire.
const voteWireSize = 120

// proposalOverhead is the proposal envelope beyond the block's tx bytes.
const proposalOverhead = 200

// Params configures the engine. Zero values take paper-calibrated defaults.
type Params struct {
	// MaxBlockBytes is the ledger block size C (paper default 0.5 MiB).
	MaxBlockBytes int
	// TimeoutCommit is CometBFT's post-commit wait before starting the
	// next height, so the inter-block interval is consensus latency +
	// TimeoutCommit. 1.24 s yields the paper's ~0.8 blocks/s on a LAN and,
	// as in the real system, the block rate degrades as network delay
	// stretches consensus.
	TimeoutCommit time.Duration
	// TimeoutPropose is how long validators wait for a proposal in round 0
	// before prevoting nil; each later round adds TimeoutDelta.
	TimeoutPropose time.Duration
	// TimeoutPrevote / TimeoutPrecommit bound the voting phases after a
	// quorum of conflicting/absent votes is seen.
	TimeoutPrevote   time.Duration
	TimeoutPrecommit time.Duration
	// TimeoutDelta is the per-round escalation added to each timeout.
	TimeoutDelta time.Duration
	// SyncChunkBytes is the fixed chunk size of state-sync snapshot
	// transfers (default 64 KiB). Snapshots ship as ceil(Bytes/chunk)
	// envelopes, each charged through netsim individually.
	SyncChunkBytes int
}

// PaperParams returns the evaluation configuration (C = 0.5 MiB, one block
// every 1.25 s).
func PaperParams() Params {
	return Params{
		MaxBlockBytes:    512 * 1024,
		TimeoutCommit:    1240 * time.Millisecond,
		TimeoutPropose:   3 * time.Second,
		TimeoutPrevote:   time.Second,
		TimeoutPrecommit: time.Second,
		TimeoutDelta:     500 * time.Millisecond,
		SyncChunkBytes:   64 * 1024,
	}
}

func (p Params) withDefaults() Params {
	d := PaperParams()
	if p.MaxBlockBytes == 0 {
		p.MaxBlockBytes = d.MaxBlockBytes
	}
	if p.TimeoutCommit == 0 {
		p.TimeoutCommit = d.TimeoutCommit
	}
	if p.TimeoutPropose == 0 {
		p.TimeoutPropose = d.TimeoutPropose
	}
	if p.TimeoutPrevote == 0 {
		p.TimeoutPrevote = d.TimeoutPrevote
	}
	if p.TimeoutPrecommit == 0 {
		p.TimeoutPrecommit = d.TimeoutPrecommit
	}
	if p.TimeoutDelta == 0 {
		p.TimeoutDelta = d.TimeoutDelta
	}
	if p.SyncChunkBytes == 0 {
		p.SyncChunkBytes = d.SyncChunkBytes
	}
	return p
}

// ProposalMutator lets a Byzantine validator rewrite the transactions of
// blocks it proposes (e.g. to inject invalid Setchain elements, the attack
// the paper's algorithms must filter in FinalizeBlock).
type ProposalMutator func(txs []*wire.Tx) []*wire.Tx

// CommitListener observes committed blocks (metrics, tests).
type CommitListener func(node wire.NodeID, b *wire.Block)

type roundVotes struct {
	votes  [2]map[string]map[wire.NodeID]*Vote // by VoteType: blockID -> voter -> vote
	voters [2]map[wire.NodeID]bool             // distinct voters per type
}

func newRoundVotes() *roundVotes {
	rv := &roundVotes{}
	for i := range rv.votes {
		rv.votes[i] = make(map[string]map[wire.NodeID]*Vote)
		rv.voters[i] = make(map[wire.NodeID]bool)
	}
	return rv
}

func (rv *roundVotes) add(v *Vote) bool {
	t := int(v.Type)
	byID := rv.votes[t][v.BlockID]
	if byID == nil {
		byID = make(map[wire.NodeID]*Vote)
		rv.votes[t][v.BlockID] = byID
	}
	if byID[v.Voter] != nil {
		return false
	}
	byID[v.Voter] = v
	rv.voters[t][v.Voter] = true
	return true
}

// voteOf returns the vote a validator already cast for this type, if any.
func (rv *roundVotes) voteOf(t VoteType, voter wire.NodeID) *Vote {
	for _, byVoter := range rv.votes[int(t)] {
		if v := byVoter[voter]; v != nil {
			return v
		}
	}
	return nil
}

func (rv *roundVotes) count(t VoteType, blockID string) int {
	return len(rv.votes[t][blockID])
}

func (rv *roundVotes) totalVoters(t VoteType) int { return len(rv.voters[t]) }

// quorumBlockID returns a blockID (possibly nil) holding >= q votes of the
// given type, if any. Honest voters vote once per round, so at most one id
// can reach quorum; the smallest-id tie-break only matters when Byzantine
// equivocation manufactures two, and keeps the choice — like everything
// else in the simulation — independent of map iteration order.
func (rv *roundVotes) quorumBlockID(t VoteType, q int) (string, bool) {
	best, found := "", false
	for id, voters := range rv.votes[t] {
		if len(voters) >= q && (!found || id < best) {
			best, found = id, true
		}
	}
	return best, found
}

// Node is one validator's consensus state machine.
type Node struct {
	id         wire.NodeID
	validators []wire.NodeID
	sim        *sim.Simulator
	net        *netsim.Network
	params     Params
	suite      setcrypto.Suite
	key        setcrypto.KeyPair
	registry   *setcrypto.Registry
	pool       *mempool.Mempool
	app        abci.Application

	height      uint64
	round       int32
	step        Step
	heightStart time.Duration
	proposals   map[int32]*Proposal
	votes       map[int32]*roundVotes
	lockedID    string
	lockedRound int32
	// lockedValue/lockedProposal track the VALUE behind lockedID: the
	// round-independent identity of the locked block's transactions, and
	// the proposal carrying them. Proposals are bound to their round (the
	// blockID hashes it), so liveness under message loss needs the value:
	// a locked proposer re-proposes the locked transactions in the new
	// round, and other validators recognize the re-proposal as their
	// locked value even though its blockID differs (the simplified form
	// of Tendermint's proof-of-lock re-proposal). lockedValue is empty
	// when the locked proposal was never received (vote-only lock).
	lockedValue    string
	lockedProposal *Proposal

	// chain holds committed blocks for heights chainBase+1..chainBase+len;
	// blocks at or below chainBase were pruned under a checkpoint horizon
	// (SetRetainHorizon) or skipped by a state-sync install, and are
	// covered by the application's checkpoint digests instead. chainBase
	// is 0 until either happens, so chain[h-1] is height h as it always
	// was.
	chain     []*wire.Block
	chainBase uint64
	// decidedProps/decidedCommits retain the proposals and precommit
	// certificates of recently committed heights so lagging peers can
	// catch up after this node advanced.
	decidedProps   map[uint64]*Proposal
	decidedCommits map[uint64][]*Vote
	decided        bool // current height decided, waiting for next-height start

	// syncer is the application's checkpoint state-sync hook (nil = no
	// state-sync; deep catch-up then only works within the decided window).
	syncer       StateSyncer
	syncInstalls uint64
	// syncRejects counts state-sync offers dropped by the certified-header
	// verification (bad certificate, or a chain that does not fold to the
	// certified commitment) — the forged-snapshot defense firing.
	syncRejects uint64

	// Serve side of chunked state-sync: servableSnap is the newest local
	// snapshot for which a commit certificate binding its chain fold was
	// observed (commit() refreshes it); servableProp/servableCert are that
	// certificate. serveSnap/serveFold name the snapshot most recently
	// offered — the chunk source — which under a Byzantine SnapshotForger
	// differs from servableSnap.
	servableSnap *checkpoint.Snapshot
	servableProp *Proposal
	servableCert []*Vote
	serveSnap    *checkpoint.Snapshot
	serveFold    uint64

	// Fetch side of chunked state-sync: the offer being assembled, nil
	// when no transfer is in flight. The catch-up retry timer doubles as
	// the resumption engine — a lost chunk is re-requested on the next
	// retry tick, resuming from the received bitmap instead of restarting.
	fetch *syncFetch

	// Deep catch-up state: the highest height observed in buffered future
	// messages and whether a certified-block request is in flight.
	// catchupRetries counts consecutive unproductive retries for the
	// bounded exponential backoff; catchupRng is its jitter stream, a
	// dedicated sim.ChildSeed stream drawn from ONLY on actual retries so
	// runs where every catch-up resolves first try stay byte-identical.
	futureHeight   uint64
	futureSender   wire.NodeID
	catchupPending bool
	catchupRetries int
	catchupRng     *rand.Rand
	stopped        bool
	mutator        ProposalMutator
	onCommit       CommitListener

	// bcast, when set, replaces the per-validator send loop for
	// proposal/vote fan-out (the mesh transport seam, DESIGN.md §13).
	// Catch-up request/response traffic always stays point-to-point.
	bcast func(payload any, size int)

	futureMsgs []any // buffered messages for heights beyond the current one

	keyBuf  []byte // scratch for blockID hashing, reused across calls
	signBuf []byte // scratch for vote/proposal sign bytes, reused across calls

	// Stats.
	roundsUsed    uint64
	catchupReqs   uint64
	invalidMsgs   uint64
	emptyBlocks   uint64
	totalTxBytes  uint64
	equivocations uint64
}

// NewNode constructs a validator. Call Start once the network is wired.
func NewNode(id wire.NodeID, validators []wire.NodeID, s *sim.Simulator, net *netsim.Network,
	params Params, suite setcrypto.Suite, key setcrypto.KeyPair, registry *setcrypto.Registry,
	pool *mempool.Mempool, app abci.Application) *Node {
	if app == nil {
		app = abci.NopApplication{}
	}
	return &Node{
		decidedProps:   make(map[uint64]*Proposal),
		decidedCommits: make(map[uint64][]*Vote),
		id:             id,
		validators:     append([]wire.NodeID(nil), validators...),
		sim:            s,
		net:            net,
		params:         params.withDefaults(),
		suite:          suite,
		key:            key,
		registry:       registry,
		pool:           pool,
		app:            app,
		height:         1,
		proposals:      make(map[int32]*Proposal),
		votes:          make(map[int32]*roundVotes),
		lockedID:       nilBlockID,
		lockedRound:    -1,
		// No catch-up target until a future message names one; the zero
		// value would silently be node 0, which on a shared fabric belongs
		// to another group.
		futureSender: -1,
	}
}

// SetProposalMutator installs a Byzantine proposal rewrite (tests/faults).
func (n *Node) SetProposalMutator(m ProposalMutator) { n.mutator = m }

// SetCommitListener installs a block-commit observer.
func (n *Node) SetCommitListener(l CommitListener) { n.onCommit = l }

// SetStateSyncer installs the application's checkpoint state-sync hook.
func (n *Node) SetStateSyncer(s StateSyncer) { n.syncer = s }

// SetBroadcaster installs the transport used for proposal/vote fan-out.
// nil (the default) keeps the classic per-validator send loop, preserving
// byte-identical traffic for every existing scenario; the mesh transport
// installs its Gossip publish here. Point-to-point catch-up traffic is
// unaffected either way.
func (n *Node) SetBroadcaster(b func(payload any, size int)) { n.bcast = b }

// SetRetainHorizon prunes committed blocks and decided
// proposals/certificates at or below the given height (the latest
// checkpoint's seal height): lagging peers below the horizon recover via
// state-sync snapshots instead of block replay. Monotone; lower horizons
// are no-ops.
func (n *Node) SetRetainHorizon(h uint64) {
	if h <= n.chainBase {
		return
	}
	drop := h - n.chainBase
	if drop > uint64(len(n.chain)) {
		drop = uint64(len(n.chain))
	}
	// Fresh backing array so the pruned prefix's blocks are collectable.
	n.chain = append([]*wire.Block(nil), n.chain[drop:]...)
	for ht := n.chainBase + 1; ht <= h; ht++ {
		delete(n.decidedProps, ht)
		delete(n.decidedCommits, ht)
	}
	n.chainBase = h
}

// Params returns the node's effective (defaulted) parameters.
func (n *Node) Params() Params { return n.params }

// Quorum returns the 2f+1 vote threshold for the validator set.
func (n *Node) Quorum() int {
	f := (len(n.validators) - 1) / 3
	return 2*f + 1
}

// Height returns the height currently being decided.
func (n *Node) Height() uint64 { return n.height }

// Chain returns the retained committed blocks in order: heights
// ChainBase()+1 onward (all heights from 1 when nothing was pruned).
func (n *Node) Chain() []*wire.Block { return n.chain }

// ChainBase returns the height below which committed blocks were pruned
// (or skipped by state-sync); 0 means the chain is complete from height 1.
func (n *Node) ChainBase() uint64 { return n.chainBase }

// HeightCommitted returns the number of heights this node has committed or
// adopted via checkpoint install (ChainBase + retained blocks).
func (n *Node) HeightCommitted() uint64 { return n.chainBase + uint64(len(n.chain)) }

// SyncInstalls returns how many checkpoint snapshots this node installed.
func (n *Node) SyncInstalls() uint64 { return n.syncInstalls }

// SyncRejects returns how many state-sync offers this node rejected at
// the certified-header check (forged or unprovable snapshots).
func (n *Node) SyncRejects() uint64 { return n.syncRejects }

// RoundsUsed returns the cumulative number of extra rounds consumed (0 when
// every height decides in round 0).
func (n *Node) RoundsUsed() uint64 { return n.roundsUsed }

// CatchupRequests returns how many block-recovery requests this node sent.
func (n *Node) CatchupRequests() uint64 { return n.catchupReqs }

// InvalidMessages returns how many malformed/forged consensus messages
// were dropped.
func (n *Node) InvalidMessages() uint64 { return n.invalidMsgs }

// EmptyBlocks returns how many committed blocks carried no transactions.
func (n *Node) EmptyBlocks() uint64 { return n.emptyBlocks }

// TotalTxBytes returns the cumulative transaction bytes committed.
func (n *Node) TotalTxBytes() uint64 { return n.totalTxBytes }

// Equivocations returns how many conflicting double-votes were detected
// and discarded.
func (n *Node) Equivocations() uint64 { return n.equivocations }

// SignVote signs a vote's canonical bytes; exported for tooling and fault
// injection in tests.
func SignVote(suite setcrypto.Suite, key setcrypto.KeyPair, v *Vote) []byte {
	n := &Node{}
	return suite.Sign(key, n.voteSignBytes(v))
}

// Stop freezes the node (end of experiment).
func (n *Node) Stop() { n.stopped = true }

// Start schedules the first height.
func (n *Node) Start() {
	n.sim.After(0, func() { n.enterHeight(1) })
}

func (n *Node) proposerFor(height uint64, round int32) wire.NodeID {
	idx := (int(height) + int(round)) % len(n.validators)
	return n.validators[idx]
}

func (n *Node) enterHeight(h uint64) {
	if n.stopped || h != n.height {
		return
	}
	// Proposal/vote state for this height was reset when the previous
	// height committed, so messages that raced ahead during the commit
	// wait are already tallied here.
	n.decided = false
	n.heightStart = n.sim.Now()
	n.enterRound(0)
	n.replayFuture()
}

func (n *Node) enterRound(r int32) {
	if n.stopped {
		return
	}
	n.round = r
	n.step = StepPropose
	if r > 0 {
		n.roundsUsed++
	}
	if n.proposerFor(n.height, r) == n.id {
		n.propose(r)
	}
	// Even the proposer arms the timeout: if its own proposal somehow fails
	// to gather votes the round must still advance.
	h, round := n.height, r
	n.sim.After(n.timeout(n.params.TimeoutPropose, r), func() {
		n.onTimeoutPropose(h, round)
	})
	// Proposals and votes for this round may have arrived before we
	// entered it (early traffic during the previous height's commit wait,
	// or a round skip): act on the existing tallies now.
	n.sweep()
}

// sweep re-evaluates the stored proposal and vote tallies for the current
// round, advancing through any steps whose conditions are already met.
// handleProposal/handleVote only react to NEW messages, so entering a
// height or round must explicitly recheck state that accumulated earlier.
func (n *Node) sweep() {
	if n.stopped || n.decided {
		return
	}
	if n.step == StepPropose {
		if p := n.proposals[n.round]; p != nil {
			n.tryPrevote(p)
		}
	}
	if n.step == StepPrevote && !n.decided {
		if rv := n.votes[n.round]; rv != nil {
			if id, ok := rv.quorumBlockID(VotePrevote, n.Quorum()); ok {
				if id != nilBlockID {
					n.lockOn(n.round, id)
				}
				n.advanceToPrecommit(id)
			}
		}
	}
	// Rounds are visited in ascending order: two rounds can both hold
	// precommit quorums (a locked value re-proposed under a new round's
	// blockID), and which one commits must not depend on map iteration.
	for _, r := range sortedRounds(n.votes) {
		n.tryCommit(r)
	}
}

// sortedRounds returns the vote map's keys ascending.
func sortedRounds(votes map[int32]*roundVotes) []int32 {
	rounds := make([]int32, 0, len(votes))
	for r := range votes {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	return rounds
}

func (n *Node) timeout(base time.Duration, round int32) time.Duration {
	return base + time.Duration(round)*n.params.TimeoutDelta
}

// blockID hashes a block's full header identity, INCLUDING the checkpoint
// commitment (CkptEpoch, CkptFold): prevotes and precommits are cast on
// the id, so a 2f+1 commit certificate certifies the commitment — the
// root of trust for state-sync verification (DESIGN.md §15).
func (n *Node) blockID(height uint64, round int32, proposer wire.NodeID, ckptEpoch, ckptFold uint64, txs []*wire.Tx) string {
	buf := n.keyBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, height)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(round))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(proposer))
	buf = binary.LittleEndian.AppendUint64(buf, ckptEpoch)
	buf = binary.LittleEndian.AppendUint64(buf, ckptFold)
	for _, tx := range txs {
		buf = tx.AppendKey(buf)
	}
	n.keyBuf = buf
	return string(n.suite.HashData(buf))
}

// valueID is the round- and proposer-independent identity of a block's
// contents at a height. Locking tracks it alongside the blockID so a
// re-proposal of the same transactions in a later round is recognized as
// the locked value.
func (n *Node) valueID(height uint64, txs []*wire.Tx) string {
	buf := n.keyBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, height)
	for _, tx := range txs {
		buf = tx.AppendKey(buf)
	}
	n.keyBuf = buf
	return string(n.suite.HashData(buf))
}

func (n *Node) propose(r int32) {
	// A locked proposer re-proposes the locked value verbatim (Tendermint's
	// proof-of-lock rule, simplified): without this, a round-0 lock split
	// under message loss leaves every later proposal unable to gather a
	// prevote quorum and the height stalls forever. The Byzantine mutator
	// applies only to fresh reaps — a locked value is already fixed.
	var txs []*wire.Tx
	if n.lockedProposal != nil {
		txs = n.lockedProposal.Block.Txs
	} else {
		txs = n.pool.Reap(n.params.MaxBlockBytes)
		if n.mutator != nil {
			txs = n.mutator(txs)
		}
	}
	bytes := 0
	for _, tx := range txs {
		bytes += tx.WireSize()
	}
	// Stamp the application's checkpoint commitment into the header. App
	// state at propose time is event-deterministic, so correct proposers
	// stamp values every correct validator can verify against its own
	// chain prefix (or accept as ahead of its sealing).
	ckptEpoch, ckptFold := uint64(0), checkpoint.Seed()
	if n.syncer != nil {
		ckptEpoch, ckptFold = n.syncer.HeaderCommitment()
	}
	block := &wire.Block{Height: n.height, Proposer: n.id, Txs: txs, Bytes: bytes,
		CkptEpoch: ckptEpoch, CkptFold: ckptFold}
	p := &Proposal{
		Height:   n.height,
		Round:    r,
		Block:    block,
		BlockID:  n.blockID(n.height, r, n.id, ckptEpoch, ckptFold, txs),
		Proposer: n.id,
	}
	p.Sig = n.suite.Sign(n.key, n.proposalSignBytes(p))
	size := bytes + proposalOverhead
	n.broadcast(p, size)
	n.handleProposal(p) // self-delivery
}

// broadcast sends a consensus message to every other validator of this
// group. The explicit list — rather than netsim's whole-fabric Broadcast —
// keeps a group's consensus traffic inside the group when several groups
// share one network (sharded worlds); validators are id-ascending, so the
// send order (and with it every downstream random draw) matches what
// Broadcast produced for a single-group fabric.
func (n *Node) broadcast(payload any, size int) {
	if n.bcast != nil {
		n.bcast(payload, size)
		return
	}
	for _, v := range n.validators {
		if v != n.id {
			n.net.Send(n.id, v, payload, size)
		}
	}
}

// isValidator reports whether id belongs to this group's validator set.
func (n *Node) isValidator(id wire.NodeID) bool {
	for _, v := range n.validators {
		if v == id {
			return true
		}
	}
	return false
}

// proposalSignBytes renders a proposal's canonical signing bytes into the
// node's scratch buffer. The result is only valid until the next
// *SignBytes call — callers hand it straight to Sign/Verify, which do not
// retain their message argument.
func (n *Node) proposalSignBytes(p *Proposal) []byte {
	buf := n.signBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, p.Height)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Round))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Proposer))
	buf = append(buf, p.BlockID...)
	n.signBuf = buf
	return buf
}

// voteSignBytes renders a vote's canonical signing bytes into the node's
// scratch buffer; same lifetime contract as proposalSignBytes.
func (n *Node) voteSignBytes(v *Vote) []byte {
	buf := n.signBuf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, v.Height)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Round))
	buf = append(buf, byte(v.Type))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Voter))
	buf = append(buf, v.BlockID...)
	n.signBuf = buf
	return buf
}

// Receive is the network entry point for all consensus payloads. Messages
// from outside the validator set are dropped before touching any state:
// when several consensus groups share one fabric (sharded worlds,
// internal/shard), a foreign group's proposals and votes must not leak in
// — an accepted foreign proposal would, among other damage, poison the
// deep catch-up target (futureSender) with a node that serves a different
// chain — and a non-validator has no standing in this group's consensus
// regardless.
func (n *Node) Receive(from wire.NodeID, payload any) {
	if n.stopped {
		return
	}
	if !n.isValidator(from) {
		n.invalidMsgs++
		return
	}
	switch msg := payload.(type) {
	case *Proposal:
		n.handleProposal(msg)
	case *Vote:
		n.handleVote(msg)
	case *BlockRequest:
		n.handleBlockRequest(from, msg)
	case *BlockResponse:
		if len(msg.Commit) > 0 {
			n.handleCertifiedBlock(msg)
			return
		}
		if msg.Proposal != nil {
			n.handleProposal(msg.Proposal)
		}
	case *SyncOffer:
		n.handleSyncOffer(from, msg)
	case *SyncChunkRequest:
		n.handleSyncChunkRequest(from, msg)
	case *SyncChunk:
		n.handleSyncChunk(msg)
	}
}

func (n *Node) handleProposal(p *Proposal) {
	if p.Height < n.height {
		return // stale
	}
	if p.Height > n.height {
		n.bufferFuture(p)
		return
	}
	if p.Proposer != n.proposerFor(p.Height, p.Round) {
		n.invalidMsgs++
		return
	}
	pub := n.registry.Lookup(int(p.Proposer))
	if pub == nil || !n.suite.Verify(pub, n.proposalSignBytes(p), p.Sig) {
		n.invalidMsgs++
		return
	}
	// Structural check: the block must match the announced id and respect
	// the size limit. (Application-level tx validity is NOT checked here:
	// the paper's model explicitly allows Byzantine servers to put invalid
	// elements on the ledger; Setchain filters them in FinalizeBlock.)
	if p.Block == nil || p.Block.Height != p.Height ||
		n.blockID(p.Height, p.Round, p.Proposer, p.Block.CkptEpoch, p.Block.CkptFold, p.Block.Txs) != p.BlockID {
		n.invalidMsgs++
		return
	}
	if p.Block.Bytes > n.params.MaxBlockBytes {
		n.invalidMsgs++
		return
	}
	// Header-commitment check: a claimed checkpoint chain at or below this
	// validator's own seal horizon must match its chain prefix exactly; a
	// proposer cannot rewrite sealed history a quorum of validators has
	// reached. Claims ahead of local sealing pass — the validator cannot
	// falsify state it hasn't computed, and 2f+1 such checks are exactly
	// the light-client trust state-sync leans on.
	if n.syncer != nil && !n.syncer.VerifyCommitment(p.Block.CkptEpoch, p.Block.CkptFold) {
		n.invalidMsgs++
		return
	}
	if _, dup := n.proposals[p.Round]; dup {
		return
	}
	n.proposals[p.Round] = p
	if p.Round == n.round && n.step == StepPropose {
		n.tryPrevote(p)
	}
	// The proposal may complete a precommit quorum observed earlier.
	n.tryCommit(p.Round)
}

func (n *Node) tryPrevote(p *Proposal) {
	if n.decided || n.step != StepPropose || p.Round != n.round {
		return
	}
	// Locking rule: if locked on a block from an earlier round, prevote
	// only that block — or a later-round re-proposal of the same VALUE
	// (same transactions), which is how a locked cluster regains liveness.
	id := p.BlockID
	if n.lockedID != nilBlockID && n.lockedID != id {
		if n.lockedValue == "" || n.valueID(p.Height, p.Block.Txs) != n.lockedValue {
			id = nilBlockID
		}
	}
	n.step = StepPrevote
	n.castVote(VotePrevote, id)
	h, r := n.height, n.round
	n.sim.After(n.timeout(n.params.TimeoutPrevote, r), func() {
		n.onTimeoutPrevote(h, r)
	})
}

func (n *Node) castVote(t VoteType, blockID string) {
	v := &Vote{Height: n.height, Round: n.round, Type: t, BlockID: blockID, Voter: n.id}
	v.Sig = n.suite.Sign(n.key, n.voteSignBytes(v))
	n.broadcast(v, voteWireSize)
	n.handleVote(v) // self-delivery
}

func (n *Node) handleVote(v *Vote) {
	if v.Height < n.height {
		return
	}
	if v.Height > n.height {
		n.bufferFuture(v)
		return
	}
	valid := false
	for _, val := range n.validators {
		if val == v.Voter {
			valid = true
			break
		}
	}
	if !valid {
		n.invalidMsgs++
		return
	}
	pub := n.registry.Lookup(int(v.Voter))
	if pub == nil || !n.suite.Verify(pub, n.voteSignBytes(v), v.Sig) {
		n.invalidMsgs++
		return
	}
	rv := n.votes[v.Round]
	if rv == nil {
		rv = newRoundVotes()
		n.votes[v.Round] = rv
	}
	// Equivocation defense: a validator's first vote per (round, type)
	// wins; a conflicting second vote is evidence of Byzantine behavior
	// and is not counted (Tendermint would additionally gossip the
	// evidence for slashing; here we record it).
	if prev := rv.voteOf(v.Type, v.Voter); prev != nil {
		if prev.BlockID != v.BlockID {
			n.equivocations++
		}
		return
	}
	if !rv.add(v) {
		return
	}
	q := n.Quorum()

	// Round skip: f+1 voters already in a later round means ours is dead.
	f := (len(n.validators) - 1) / 3
	if v.Round > n.round && !n.decided {
		distinct := make(map[wire.NodeID]bool)
		for r, votes := range n.votes {
			if r <= n.round {
				continue
			}
			for _, t := range []VoteType{VotePrevote, VotePrecommit} {
				for voter := range votes.voters[int(t)] {
					distinct[voter] = true
				}
			}
		}
		if len(distinct) >= f+1 {
			n.enterRound(v.Round)
		}
	}

	if v.Round == n.round && !n.decided {
		switch v.Type {
		case VotePrevote:
			if id, ok := rv.quorumBlockID(VotePrevote, q); ok && n.step == StepPrevote {
				if id != nilBlockID {
					// Lock and precommit the quorum block.
					n.lockOn(n.round, id)
					n.advanceToPrecommit(id)
				} else {
					n.advanceToPrecommit(nilBlockID)
				}
			}
		case VotePrecommit:
			if id, ok := rv.quorumBlockID(VotePrecommit, q); ok {
				if id == nilBlockID {
					if n.step == StepPrecommit {
						n.enterRound(n.round + 1)
					}
				} else {
					n.tryCommitID(v.Round, id)
				}
			}
		}
	} else if v.Type == VotePrecommit {
		// Precommit quorum can complete for a round other than ours.
		n.tryCommit(v.Round)
	}
}

// lockOn records a prevote quorum for blockID at round as the node's lock,
// tracking the underlying value when the proposal is known so the lock can
// be re-proposed (and recognized) in later rounds. A newer quorum always
// replaces an older lock, as in Tendermint.
func (n *Node) lockOn(round int32, blockID string) {
	n.lockedID = blockID
	n.lockedRound = round
	if p := n.proposals[round]; p != nil && p.BlockID == blockID {
		n.lockedProposal = p
		n.lockedValue = n.valueID(p.Height, p.Block.Txs)
	} else {
		// Vote-only lock: the quorum arrived but the proposal was lost.
		// The value stays unknown, so this node can only re-prevote the
		// exact blockID (catch-up recovers the block if it commits).
		n.lockedProposal = nil
		n.lockedValue = nilBlockID
	}
}

func (n *Node) advanceToPrecommit(blockID string) {
	n.step = StepPrecommit
	n.castVote(VotePrecommit, blockID)
	h, r := n.height, n.round
	n.sim.After(n.timeout(n.params.TimeoutPrecommit, r), func() {
		n.onTimeoutPrecommit(h, r)
	})
}

func (n *Node) tryCommit(round int32) {
	rv := n.votes[round]
	if rv == nil {
		return
	}
	if id, ok := rv.quorumBlockID(VotePrecommit, n.Quorum()); ok && id != nilBlockID {
		n.tryCommitID(round, id)
	}
}

func (n *Node) tryCommitID(round int32, blockID string) {
	if n.decided {
		return
	}
	p := n.proposals[round]
	if p == nil || p.BlockID != blockID {
		// Quorum exists but the block is missing: catch up from a voter.
		n.requestBlock(round, blockID)
		return
	}
	n.commit(p)
}

func (n *Node) requestBlock(round int32, blockID string) {
	rv := n.votes[round]
	if rv == nil {
		return
	}
	// Ask the lowest-id precommitter: the target choice shapes message
	// timing, so it must not depend on map iteration order.
	target, found := wire.NodeID(0), false
	for voter := range rv.votes[int(VotePrecommit)][blockID] {
		if voter != n.id && (!found || voter < target) {
			target, found = voter, true
		}
	}
	if found {
		n.catchupReqs++
		n.net.Send(n.id, target, &BlockRequest{Height: n.height, BlockID: blockID}, 64)
		// One request at a time; timeouts re-trigger if lost.
	}
}

func (n *Node) handleBlockRequest(from wire.NodeID, req *BlockRequest) {
	// Serve committed heights from the retained decided proposals, and the
	// in-progress height from the pending proposal set. An empty BlockID is
	// a deep catch-up request and gets the commit certificate too.
	if p := n.decidedProps[req.Height]; p != nil {
		if req.BlockID == "" {
			cert := n.decidedCommits[req.Height]
			size := p.Block.Bytes + proposalOverhead + len(cert)*voteWireSize
			n.net.Send(n.id, from, &BlockResponse{Proposal: p, Commit: cert}, size)
			return
		}
		if p.BlockID == req.BlockID {
			n.net.Send(n.id, from, &BlockResponse{Proposal: p}, p.Block.Bytes+proposalOverhead)
			return
		}
	}
	for _, p := range n.proposals {
		if p.Height == req.Height && p.BlockID == req.BlockID {
			n.net.Send(n.id, from, &BlockResponse{Proposal: p}, p.Block.Bytes+proposalOverhead)
			return
		}
	}
	// Deep catch-up for a height we can no longer serve block-by-block
	// (pruned under the checkpoint horizon, or outside the decided window):
	// offer the latest CERTIFIED snapshot if it would actually move the
	// requester forward. A snapshot without an observed certificate binding
	// its chain fold is never served — the requester could not verify it,
	// and its retry backoff finds a peer that can prove its offer.
	if req.BlockID == "" && n.syncer != nil && n.servableSnap != nil {
		snap := n.servableSnap
		// The forged-snapshot attack: a Byzantine server corrupts the
		// snapshot but attaches the legitimate certificate. The requester's
		// fold check is what catches the mismatch.
		if f, ok := n.syncer.(SnapshotForger); ok {
			if forged := f.ForgeSyncSnapshot(snap); forged != nil {
				snap = forged
			}
		}
		if snap.Last.Height < req.Height {
			return
		}
		n.serveSnap = snap
		n.serveFold = checkpoint.FoldChain(snap.Chain)
		cb := n.params.SyncChunkBytes
		offer := &SyncOffer{
			Snapshot:   snap,
			Proposal:   n.servableProp,
			Commit:     n.servableCert,
			Chunks:     syncChunkCount(snap.Bytes, cb),
			ChunkBytes: cb,
		}
		// The offer ships metadata and proof, not the state: the chain (32
		// modeled bytes per entry, as in core's snapshot sizing), the
		// certified proposal envelope, and the certificate votes.
		size := 32*len(snap.Chain) + proposalOverhead + len(offer.Commit)*voteWireSize
		n.net.Send(n.id, from, offer, size)
	}
}

// handleSyncChunkRequest serves one chunk of the most recently offered
// snapshot. Requests naming a different snapshot (stale identity after a
// newer seal) are dropped; the requester's retry fetches a fresh offer.
func (n *Node) handleSyncChunkRequest(from wire.NodeID, req *SyncChunkRequest) {
	snap := n.serveSnap
	if snap == nil || req.Epoch != snap.Last.Epoch || req.Fold != n.serveFold {
		return
	}
	cb := n.params.SyncChunkBytes
	total := syncChunkCount(snap.Bytes, cb)
	if req.Seq < 0 || req.Seq >= total {
		return
	}
	size := snap.Bytes - req.Seq*cb
	if size > cb {
		size = cb
	}
	if size < 1 {
		size = 1
	}
	n.net.Send(n.id, from, &SyncChunk{
		Epoch: req.Epoch, Fold: req.Fold, Seq: req.Seq, Size: size,
		Sum: chunkSum(req.Fold, req.Seq, size),
	}, size)
}

// handleSyncOffer verifies a state-sync offer against its certified
// header — the certificate must hold 2f+1 valid precommits for the
// proposal, and the offered chain must fold to the commitment the
// certified header binds — then starts (or resumes) the chunked transfer.
// Nothing is installed here: InstallSync runs only after every chunk
// arrived and verified (handleSyncChunk).
func (n *Node) handleSyncOffer(from wire.NodeID, offer *SyncOffer) {
	snap := offer.Snapshot
	if snap == nil || n.syncer == nil || n.stopped || n.decided {
		return
	}
	if snap.Last.Height < n.height {
		return // would not advance us; keep block-by-block catch-up
	}
	if !BreakHeaderBindForTest {
		p := offer.Proposal
		if p == nil || p.Block == nil || !n.verifyCommitCert(p, offer.Commit) {
			n.syncRejects++
			n.invalidMsgs++
			return
		}
		// The certified binding: the header commits to exactly this chain.
		if p.Block.CkptEpoch != snap.Last.Epoch ||
			p.Block.CkptFold != checkpoint.FoldChain(snap.Chain) {
			n.syncRejects++
			n.invalidMsgs++
			return
		}
	}
	fold := checkpoint.FoldChain(snap.Chain)
	if f := n.fetch; f != nil {
		if f.epoch == snap.Last.Epoch && f.fold == fold {
			// Same snapshot re-offered (retry path): resume from the bitmap.
			f.from = from
			n.requestChunk(f)
			return
		}
		if snap.Last.Epoch <= f.epoch {
			return // already fetching something at least as new
		}
	}
	cb := offer.ChunkBytes
	if cb <= 0 {
		cb = n.params.SyncChunkBytes
	}
	chunks := syncChunkCount(snap.Bytes, cb)
	if offer.Chunks != chunks {
		n.syncRejects++
		n.invalidMsgs++
		return // chunk accounting does not match the declared snapshot size
	}
	n.fetch = &syncFetch{
		snap:       snap,
		from:       from,
		epoch:      snap.Last.Epoch,
		fold:       fold,
		chunks:     chunks,
		chunkBytes: cb,
		got:        make([]bool, chunks),
	}
	n.requestChunk(n.fetch)
}

// requestChunk asks the serving peer for the fetch's first missing chunk.
func (n *Node) requestChunk(f *syncFetch) {
	seq := f.next()
	if seq < 0 {
		return
	}
	n.net.Send(n.id, f.from, &SyncChunkRequest{Epoch: f.epoch, Fold: f.fold, Seq: seq}, 32)
}

// handleSyncChunk verifies one received chunk against the fetch in flight
// — identity, bounds, per-chunk digest — and either requests the next
// missing chunk or, once the bitmap is full, installs the assembled
// snapshot and resumes consensus after the checkpoint height. A chunk
// failing verification is dropped; the retry backoff re-requests it.
func (n *Node) handleSyncChunk(c *SyncChunk) {
	f := n.fetch
	if f == nil || n.stopped || n.decided {
		return
	}
	if c.Epoch != f.epoch || c.Fold != f.fold || c.Seq < 0 || c.Seq >= f.chunks {
		return
	}
	if f.got[c.Seq] {
		return // duplicate (retry raced the response)
	}
	want := f.snap.Bytes - c.Seq*f.chunkBytes
	if want > f.chunkBytes {
		want = f.chunkBytes
	}
	if want < 1 {
		want = 1
	}
	if c.Size != want || c.Sum != chunkSum(f.fold, c.Seq, c.Size) {
		n.invalidMsgs++
		return
	}
	f.got[c.Seq] = true
	f.ngot++
	if f.ngot < f.chunks {
		n.requestChunk(f)
		return
	}
	// Transfer complete: hand the snapshot to the application. InstallSync
	// re-verifies everything locally checkable; the certificate already
	// vouched for the chain. On rejection the fetch is abandoned and the
	// catch-up retry probes for a better peer.
	snap := f.snap
	n.fetch = nil
	if snap.Last.Height < n.height || !n.syncer.InstallSync(snap) {
		return
	}
	n.syncInstalls++
	h := snap.Last.Height
	// Heights through h are now covered by the installed checkpoint state;
	// retained blocks below it are superseded.
	n.chain = nil
	n.chainBase = h
	n.height = h + 1
	n.proposals = make(map[int32]*Proposal)
	n.votes = make(map[int32]*roundVotes)
	n.lockedID = nilBlockID
	n.lockedRound = -1
	n.lockedValue = nilBlockID
	n.lockedProposal = nil
	n.round = 0
	n.step = StepPropose
	n.decided = false
	n.catchupPending = false
	n.catchupRetries = 0
	n.enterHeight(n.height)
}

func (n *Node) commit(p *Proposal) {
	n.decided = true
	// Copy the block header before stamping the local commit time: the
	// proposal is a shared broadcast payload (read-only by convention), and
	// in partitioned runs other nodes commit it concurrently. Txs stay
	// shared — they are never mutated.
	blk := *p.Block
	block := &blk
	block.Time = int64(n.sim.Now())
	n.chain = append(n.chain, block)
	n.totalTxBytes += uint64(block.Bytes)
	if len(block.Txs) == 0 {
		n.emptyBlocks++
	}
	n.pool.RemoveCommitted(p.Height, block.Txs)
	if n.onCommit != nil {
		n.onCommit(n.id, block)
	}
	n.app.FinalizeBlock(block)

	// Retain the decided proposal and its precommit certificate so lagging
	// peers can request them after we advance; prune the retention window.
	n.decidedProps[p.Height] = p
	for _, r := range sortedRounds(n.votes) {
		byVoter := n.votes[r].votes[int(VotePrecommit)][p.BlockID]
		if len(byVoter) >= n.Quorum() {
			cert := make([]*Vote, 0, len(byVoter))
			for _, v := range byVoter {
				cert = append(cert, v)
			}
			// Certificates travel on the wire; keep their order a function
			// of the votes, not of map iteration.
			sort.Slice(cert, func(i, j int) bool { return cert[i].Voter < cert[j].Voter })
			n.decidedCommits[p.Height] = cert
			break
		}
	}
	if p.Height > 128 {
		delete(n.decidedProps, p.Height-128)
		delete(n.decidedCommits, p.Height-128)
	}

	// Refresh the servable snapshot: when this decided header's checkpoint
	// commitment matches the application's current snapshot, this proposal
	// and its certificate become the proof attached to state-sync offers.
	// The previous servable pair stays until a newer match commits, so a
	// freshly sealed (not yet certified) snapshot never leaves the node
	// unprovable — it just serves the older certified one meanwhile.
	if n.syncer != nil {
		if cert := n.decidedCommits[p.Height]; len(cert) >= n.Quorum() {
			if snap, ok := n.syncer.SyncSnapshot(); ok && snap != n.servableSnap &&
				p.Block.CkptEpoch == snap.Last.Epoch &&
				p.Block.CkptFold == checkpoint.FoldChain(snap.Chain) {
				n.servableSnap = snap
				n.servableProp = p
				n.servableCert = cert
			}
		}
	}
	n.catchupRetries = 0

	// Reset consensus state for the next height NOW: proposals and votes
	// for it can arrive during the commit wait and must not be discarded.
	h := n.height + 1
	n.height = h
	n.proposals = make(map[int32]*Proposal)
	n.votes = make(map[int32]*roundVotes)
	n.lockedID = nilBlockID
	n.lockedRound = -1
	n.lockedValue = nilBlockID
	n.lockedProposal = nil
	n.round = 0
	n.step = StepPropose

	// Pace the chain: CometBFT waits TimeoutCommit after committing before
	// starting the next height, so block rate = 1/(consensus + timeout).
	n.sim.After(n.params.TimeoutCommit, func() { n.enterHeight(h) })
}

func (n *Node) bufferFuture(msg any) {
	// Bounded buffer: a lagging node only needs messages for height+1; a
	// deeply lagging node recovers via certified block requests instead.
	if len(n.futureMsgs) < 4096 {
		n.futureMsgs = append(n.futureMsgs, msg)
	}
	var h uint64
	var sender wire.NodeID = -1
	switch m := msg.(type) {
	case *Proposal:
		h, sender = m.Height, m.Proposer
	case *Vote:
		h, sender = m.Height, m.Voter
	}
	if h > n.futureHeight {
		n.futureHeight = h
		n.futureSender = sender
	}
	// Evidence of a height beyond the next one means the cluster decided
	// our current height without us: fetch the certified block.
	if n.futureHeight > n.height+1 {
		n.maybeCatchup()
	}
}

// Catch-up retry pacing: the first attempt retries after the flat base
// delay (exactly the old behavior, so runs where every catch-up resolves
// first try stay byte-identical); consecutive unproductive retries back
// off exponentially to the cap, each with up to +25% jitter from a
// dedicated stream — at mesh scale (n=100) a partition heal would
// otherwise release every stalled node's retry in one synchronized storm.
const (
	catchupBaseDelay = 2 * time.Second
	catchupMaxDelay  = 30 * time.Second
	// catchupJitterStream offsets the jitter stream ids far away from the
	// other ChildSeed users (netsim per-node streams use raw node ids,
	// workload uses 1<<40 + small offsets).
	catchupJitterStream = uint64(1) << 41
)

// catchupDelay returns the backoff delay for the current retry count,
// drawing jitter ONLY when an actual retry happened (catchupRetries > 0):
// the jitter stream must stay untouched on runs with no retries.
func (n *Node) catchupDelay() time.Duration {
	d := catchupBaseDelay
	for i := 0; i < n.catchupRetries && d < catchupMaxDelay; i++ {
		d *= 2
	}
	if d > catchupMaxDelay {
		d = catchupMaxDelay
	}
	if n.catchupRetries > 0 {
		if n.catchupRng == nil {
			n.catchupRng = sim.ChildRand(n.sim.Seed(), catchupJitterStream+uint64(n.id))
		}
		d += time.Duration(n.catchupRng.Int63n(int64(d/4) + 1))
	}
	return d
}

// maybeCatchup requests the certified block for the current height from a
// peer known to be ahead — or, when a chunked snapshot transfer is in
// flight, re-requests its first missing chunk (the resumable half of the
// transfer: lost chunks are recovered from the bitmap, not by
// restarting). One request in flight at a time, retried with bounded
// exponential backoff until the node advances.
func (n *Node) maybeCatchup() {
	if n.catchupPending || n.decided || n.stopped {
		return
	}
	if n.fetch == nil && n.futureSender < 0 {
		return
	}
	n.catchupPending = true
	n.catchupReqs++
	height := n.height
	if f := n.fetch; f != nil {
		n.requestChunk(f)
	} else {
		n.net.Send(n.id, n.futureSender, &BlockRequest{Height: height}, 64)
	}
	n.sim.After(n.catchupDelay(), func() {
		// Retry (possibly via a different ahead peer) until we advance.
		if n.catchupPending && n.height == height && !n.stopped {
			n.catchupPending = false
			n.catchupRetries++
			n.maybeCatchup()
		}
	})
}

// verifyCommitCert checks that a proposal's id re-derives from its
// contents (including the header's checkpoint commitment) and that the
// certificate holds 2f+1 valid precommit signatures for it. Shared by
// deep catch-up (handleCertifiedBlock) and state-sync offer verification
// (handleSyncOffer) — the same quorum proof backs both.
func (n *Node) verifyCommitCert(p *Proposal, commit []*Vote) bool {
	if p.Block == nil || p.Block.Height != p.Height ||
		n.blockID(p.Height, p.Round, p.Proposer, p.Block.CkptEpoch, p.Block.CkptFold, p.Block.Txs) != p.BlockID {
		return false
	}
	seen := make(map[wire.NodeID]bool)
	for _, v := range commit {
		if v == nil || v.Height != p.Height || v.Type != VotePrecommit || v.BlockID != p.BlockID {
			continue
		}
		valid := false
		for _, val := range n.validators {
			if val == v.Voter {
				valid = true
				break
			}
		}
		if !valid || seen[v.Voter] {
			continue
		}
		pub := n.registry.Lookup(int(v.Voter))
		if pub == nil || !n.suite.Verify(pub, n.voteSignBytes(v), v.Sig) {
			continue
		}
		seen[v.Voter] = true
	}
	return len(seen) >= n.Quorum()
}

// handleCertifiedBlock validates a deep catch-up response: the proposal
// must be for our current height, its id must re-derive from its contents,
// and the certificate must hold 2f+1 valid precommit signatures for it.
func (n *Node) handleCertifiedBlock(resp *BlockResponse) {
	p := resp.Proposal
	if p == nil || n.decided || p.Height != n.height {
		if p != nil && p.Height < n.height {
			n.catchupPending = false
			n.catchupRetries = 0
		}
		return
	}
	if !n.verifyCommitCert(p, resp.Commit) {
		n.invalidMsgs++
		return
	}
	n.catchupPending = false
	n.catchupRetries = 0
	n.proposals[p.Round] = p
	n.commit(p)
}

func (n *Node) replayFuture() {
	if len(n.futureMsgs) == 0 {
		return
	}
	msgs := n.futureMsgs
	n.futureMsgs = nil
	for _, m := range msgs {
		switch msg := m.(type) {
		case *Proposal:
			n.handleProposal(msg)
		case *Vote:
			n.handleVote(msg)
		}
	}
}

func (n *Node) onTimeoutPropose(h uint64, r int32) {
	if n.stopped || n.decided || h != n.height || r != n.round || n.step != StepPropose {
		return
	}
	// No acceptable proposal in time: prevote nil (or the locked block).
	id := nilBlockID
	if n.lockedID != nilBlockID {
		id = n.lockedID
	}
	n.step = StepPrevote
	n.castVote(VotePrevote, id)
	n.sim.After(n.timeout(n.params.TimeoutPrevote, r), func() {
		n.onTimeoutPrevote(h, r)
	})
}

func (n *Node) onTimeoutPrevote(h uint64, r int32) {
	if n.stopped || n.decided || h != n.height || r != n.round || n.step != StepPrevote {
		return
	}
	n.advanceToPrecommit(nilBlockID)
}

func (n *Node) onTimeoutPrecommit(h uint64, r int32) {
	if n.stopped || n.decided || h != n.height || r != n.round || n.step != StepPrecommit {
		return
	}
	n.enterRound(r + 1)
}

// String summarizes the node state for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("consensus[%d h=%d r=%d step=%d chain=%d]",
		n.id, n.height, n.round, n.step, len(n.chain))
}
