package consensus

import "testing"

func TestVoteBookkeeping(t *testing.T) {
	rv := newRoundVotes()
	v := &Vote{Height: 1, Round: 0, Type: VotePrevote, BlockID: "abc", Voter: 1}
	if !rv.add(v) {
		t.Fatal("first vote rejected")
	}
	if rv.add(v) {
		t.Fatal("duplicate vote accepted")
	}
	if rv.count(VotePrevote, "abc") != 1 {
		t.Fatal("count wrong")
	}
	if rv.totalVoters(VotePrevote) != 1 {
		t.Fatal("total voters wrong")
	}
	if _, ok := rv.quorumBlockID(VotePrevote, 2); ok {
		t.Fatal("quorum found with one vote")
	}
	rv.add(&Vote{Type: VotePrevote, BlockID: "abc", Voter: 2})
	if id, ok := rv.quorumBlockID(VotePrevote, 2); !ok || id != "abc" {
		t.Fatal("quorum not found with two votes")
	}
}

func TestVoteTypeString(t *testing.T) {
	if VotePrevote.String() != "prevote" || VotePrecommit.String() != "precommit" {
		t.Fatal("vote type strings wrong")
	}
}
