package consensus_test

import (
	"repro/internal/consensus"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Consensus is exercised through the ledger cluster assembly, which wires
// network, mempools and validators exactly as production code does.

func newCluster(t *testing.T, n int, seed int64) (*sim.Simulator, *ledger.Cluster) {
	t.Helper()
	s := sim.New(seed)
	c := ledger.NewCluster(s, ledger.Config{
		N:   n,
		Net: netsim.DefaultLANConfig(),
	})
	return s, c
}

func elemTx(i int, size int) *wire.Tx {
	e := &wire.Element{Size: size}
	e.ID[0] = byte(i)
	e.ID[1] = byte(i >> 8)
	e.ID[2] = byte(i >> 16)
	return &wire.Tx{Kind: wire.TxElement, Element: e}
}

func TestSingleTxCommitsEverywhere(t *testing.T) {
	s, c := newCluster(t, 4, 1)
	c.Start()
	tx := elemTx(1, 200)
	s.After(100*time.Millisecond, func() { c.Nodes[0].Append(tx) })
	s.RunUntil(10 * time.Second)
	c.Stop()
	for i, n := range c.Nodes {
		found := false
		for _, b := range n.Cons.Chain() {
			for _, btx := range b.Txs {
				if btx.Key() == tx.Key() {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("node %d never committed the tx", i)
		}
	}
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPacingMatchesPaperRate(t *testing.T) {
	s, c := newCluster(t, 4, 2)
	c.Start()
	s.RunUntil(60 * time.Second)
	c.Stop()
	blocks := len(c.Nodes[0].Cons.Chain())
	// Paper: ~0.8 blocks/s -> 48 blocks in 60 s. Allow one block of slack
	// for startup.
	if blocks < 45 || blocks > 49 {
		t.Fatalf("blocks in 60s = %d, want ~48 (0.8 blocks/s)", blocks)
	}
}

func TestChainsConsistentUnderLoad(t *testing.T) {
	s, c := newCluster(t, 7, 3)
	c.Start()
	// Inject txs at different nodes at staggered times.
	for i := 0; i < 300; i++ {
		i := i
		s.After(time.Duration(i)*20*time.Millisecond, func() {
			c.Nodes[i%7].Append(elemTx(i, 300))
		})
	}
	s.RunUntil(30 * time.Second)
	c.Stop()
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatal(err)
	}
	// Every tx committed exactly once (Properties 9+10).
	seen := make(map[string]int)
	for _, b := range c.Nodes[0].Cons.Chain() {
		for _, tx := range b.Txs {
			seen[tx.Key()]++
		}
	}
	if len(seen) != 300 {
		t.Fatalf("committed %d distinct txs, want 300", len(seen))
	}
	for k, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("tx %q committed %d times", k, cnt)
		}
	}
}

func TestBlockSizeLimitRespected(t *testing.T) {
	s := sim.New(4)
	params := consensus.PaperParams()
	params.MaxBlockBytes = 2000
	c := ledger.NewCluster(s, ledger.Config{N: 4, Net: netsim.DefaultLANConfig(), Consensus: params})
	c.Start()
	s.After(0, func() {
		for i := 0; i < 50; i++ {
			c.Nodes[0].Append(elemTx(i, 300))
		}
	})
	s.RunUntil(60 * time.Second)
	c.Stop()
	total := 0
	for _, b := range c.Nodes[0].Cons.Chain() {
		if b.Bytes > 2000 {
			t.Fatalf("block of %d bytes exceeds 2000 limit", b.Bytes)
		}
		total += len(b.Txs)
	}
	if total != 50 {
		t.Fatalf("committed %d txs, want all 50 across multiple blocks", total)
	}
}

func TestToleratesSilentByzantineMinority(t *testing.T) {
	s, c := newCluster(t, 4, 5)
	c.Start()
	c.Net.SetDown(3, true) // f=1 silent validator
	tx := elemTx(1, 100)
	s.After(100*time.Millisecond, func() { c.Nodes[0].Append(tx) })
	s.RunUntil(40 * time.Second)
	c.Stop()
	for i := 0; i < 3; i++ {
		found := false
		for _, b := range c.Nodes[i].Cons.Chain() {
			for _, btx := range b.Txs {
				if btx.Key() == tx.Key() {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("correct node %d missing tx with one silent validator", i)
		}
	}
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatal(err)
	}
	// Rounds were consumed skipping the dead proposer.
	if c.Nodes[0].Cons.RoundsUsed() == 0 {
		t.Fatal("expected round changes while skipping silent proposer")
	}
}

func TestHaltsWithoutQuorum(t *testing.T) {
	s, c := newCluster(t, 4, 6)
	c.Start()
	c.Net.SetDown(2, true)
	c.Net.SetDown(3, true) // 2 of 4 down: no 2f+1 quorum possible
	s.After(0, func() { c.Nodes[0].Append(elemTx(1, 100)) })
	s.RunUntil(30 * time.Second)
	c.Stop()
	for i := 0; i < 2; i++ {
		for _, b := range c.Nodes[i].Cons.Chain() {
			if len(b.Txs) > 0 {
				t.Fatal("committed a tx without quorum (safety violation)")
			}
		}
	}
}

func TestRecoversAfterPartitionHeals(t *testing.T) {
	s, c := newCluster(t, 4, 7)
	c.Start()
	c.Net.SetDown(3, true)
	s.After(5*time.Second, func() { c.Nodes[0].Append(elemTx(1, 100)) })
	s.After(20*time.Second, func() { c.Net.SetDown(3, false) })
	s.RunUntil(90 * time.Second)
	c.Stop()
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatal(err)
	}
	// The healed node may lag but its committed prefix must be consistent
	// and consensus must have continued committing.
	if len(c.Nodes[0].Cons.Chain()) < 10 {
		t.Fatalf("chain stalled: only %d blocks", len(c.Nodes[0].Cons.Chain()))
	}
}

func TestByzantineProposerInjectsTxs(t *testing.T) {
	// A Byzantine proposer injecting structurally-valid but app-invalid txs
	// still commits (consensus is app-agnostic, as the paper requires:
	// Setchain must filter invalid elements at FinalizeBlock).
	s, c := newCluster(t, 4, 8)
	junk := elemTx(999, 100)
	c.Nodes[2].Cons.SetProposalMutator(func(txs []*wire.Tx) []*wire.Tx {
		return append(txs, junk)
	})
	c.Start()
	s.RunUntil(20 * time.Second)
	c.Stop()
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range c.Nodes[0].Cons.Chain() {
		for _, tx := range b.Txs {
			if tx.Key() == junk.Key() {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Byzantine-injected tx never reached the ledger")
	}
}

func TestCommitListenerObservesBlocksInOrder(t *testing.T) {
	s, c := newCluster(t, 4, 9)
	var heights []uint64
	c.Nodes[0].Cons.SetCommitListener(func(node wire.NodeID, b *wire.Block) {
		heights = append(heights, b.Height)
	})
	c.Start()
	s.RunUntil(10 * time.Second)
	c.Stop()
	if len(heights) == 0 {
		t.Fatal("no blocks observed")
	}
	for i, h := range heights {
		if h != uint64(i+1) {
			t.Fatalf("heights out of order: %v", heights)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int, uint64) {
		s, c := newCluster(t, 4, 42)
		c.Start()
		for i := 0; i < 50; i++ {
			i := i
			s.After(time.Duration(i)*100*time.Millisecond, func() {
				c.Nodes[i%4].Append(elemTx(i, 250))
			})
		}
		s.RunUntil(30 * time.Second)
		c.Stop()
		return len(c.Nodes[0].Cons.Chain()), s.Executed()
	}
	b1, e1 := run()
	b2, e2 := run()
	if b1 != b2 || e1 != e2 {
		t.Fatalf("nondeterministic: blocks %d/%d events %d/%d", b1, b2, e1, e2)
	}
}

func TestQuorumThresholds(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {4, 3}, {7, 5}, {10, 7},
	} {
		s := sim.New(1)
		c := ledger.NewCluster(s, ledger.Config{N: tc.n})
		if got := c.Nodes[0].Cons.Quorum(); got != tc.want {
			t.Fatalf("n=%d quorum=%d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestCatchupAfterOutage(t *testing.T) {
	// A node that sleeps through several heights recovers the missed
	// blocks via catch-up requests once it hears newer precommits.
	s, c := newCluster(t, 4, 11)
	c.Start()
	for i := 0; i < 20; i++ {
		i := i
		s.After(time.Duration(i)*500*time.Millisecond, func() {
			c.Nodes[i%4].Append(elemTx(i, 200))
		})
	}
	s.After(2*time.Second, func() { c.Net.SetDown(3, true) })
	s.After(12*time.Second, func() { c.Net.SetDown(3, false) })
	s.RunUntil(60 * time.Second)
	c.Stop()
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatal(err)
	}
	// The healed node must have made progress past the outage window.
	healed := len(c.Nodes[3].Cons.Chain())
	if healed < 10 {
		t.Fatalf("healed node chain = %d blocks, want >= 10", healed)
	}
}

func TestStatsAccessors(t *testing.T) {
	s, c := newCluster(t, 4, 12)
	c.Start()
	s.After(time.Second, func() { c.Nodes[0].Append(elemTx(1, 100)) })
	s.RunUntil(10 * time.Second)
	c.Stop()
	n := c.Nodes[0].Cons
	if n.TotalTxBytes() == 0 {
		t.Fatal("no tx bytes accounted")
	}
	if n.EmptyBlocks() == 0 {
		t.Fatal("expected some empty blocks in a mostly idle run")
	}
	if n.InvalidMessages() != 0 {
		t.Fatalf("invalid messages = %d in a fault-free run", n.InvalidMessages())
	}
	_ = n.CatchupRequests() // exercised by TestCatchupAfterOutage
}

func TestEquivocationDetectedAndDiscarded(t *testing.T) {
	s, c := newCluster(t, 4, 13)
	c.Start()
	// Node 3 equivocates: two conflicting prevotes for a future height,
	// delivered directly to the other validators (buffered and replayed
	// when that height starts).
	s.After(50*time.Millisecond, func() {
		for _, id := range []string{"fake-block-A", "fake-block-B"} {
			v := &consensus.Vote{Height: 3, Round: 0, Type: consensus.VotePrevote,
				BlockID: id, Voter: 3}
			v.Sig = consensus.SignVote(c.Suite, c.Keys[3], v)
			for to := 0; to < 3; to++ {
				c.Net.Send(3, wire.NodeID(to), v, 120)
			}
		}
	})
	s.After(time.Second, func() { c.Nodes[0].Append(elemTx(1, 100)) })
	s.RunUntil(20 * time.Second)
	c.Stop()
	// The double vote was flagged somewhere and consensus stayed safe.
	var evidence uint64
	for i := 0; i < 3; i++ {
		evidence += c.Nodes[i].Cons.Equivocations()
	}
	if evidence == 0 {
		t.Fatal("equivocation went undetected")
	}
	if err := c.VerifyConsistentChains(); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes[0].Cons.Chain()) < 5 {
		t.Fatal("equivocation stalled the chain")
	}
}

// Regression for the lock-split deadlock the fault-injection engine
// exposed: with a few percent of messages dropped, round-0 prevote quorums
// can be seen by only part of the cluster, leaving some validators locked
// and the rest not. Before the proof-of-lock re-proposal rule, every later
// round proposed a fresh (round-bound) block that locked validators would
// not prevote, and the height stalled forever. The cluster must keep
// committing — more slowly, but indefinitely — under sustained loss.
func TestLivenessUnderMessageLoss(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		s, c := newCluster(t, 4, seed)
		f := c.Net.Faults()
		for _, u := range c.Net.NodeIDs() {
			for _, v := range c.Net.NodeIDs() {
				if u != v {
					f.SetLink(u, v, netsim.LinkFault{Drop: 0.05})
				}
			}
		}
		c.Start()
		for i := 0; i < 40; i++ {
			i := i
			s.After(time.Duration(i)*500*time.Millisecond, func() {
				c.Nodes[i%4].Append(elemTx(i, 150))
			})
		}
		s.RunUntil(120 * time.Second)
		c.Stop()
		if err := c.VerifyConsistentChains(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var committed int
		for _, b := range c.Nodes[0].Cons.Chain() {
			committed += len(b.Txs)
		}
		if committed == 0 {
			t.Fatalf("seed %d: nothing committed under 5%% loss (lock-split deadlock?)", seed)
		}
		if len(c.Nodes[0].Cons.Chain()) < 5 {
			t.Fatalf("seed %d: chain nearly stalled: %d blocks", seed, len(c.Nodes[0].Cons.Chain()))
		}
	}
}
