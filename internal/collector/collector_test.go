package collector

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

func elem(i int) *wire.Element {
	e := &wire.Element{Size: 438}
	e.ID[0] = byte(i)
	e.ID[1] = byte(i >> 8)
	return e
}

func proof(epoch uint64) *wire.EpochProof {
	return &wire.EpochProof{Epoch: epoch, Sig: make([]byte, 64)}
}

func TestFlushBySize(t *testing.T) {
	s := sim.New(1)
	var got []*wire.Batch
	c := New(s, 5, time.Second, func(b *wire.Batch) { got = append(got, b) })
	s.After(0, func() {
		for i := 0; i < 12; i++ {
			c.AddElement(elem(i))
		}
	})
	s.RunUntil(10 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("flushes = %d, want 2 full batches", len(got))
	}
	for _, b := range got {
		if b.Len() != 5 {
			t.Fatalf("batch size = %d, want 5", b.Len())
		}
	}
	if c.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", c.Pending())
	}
}

func TestFlushByTimeout(t *testing.T) {
	s := sim.New(1)
	var got []*wire.Batch
	var at time.Duration
	c := New(s, 100, 500*time.Millisecond, func(b *wire.Batch) {
		got = append(got, b)
		at = s.Now()
	})
	s.After(0, func() { c.AddElement(elem(1)) })
	s.Run()
	if len(got) != 1 {
		t.Fatalf("flushes = %d, want 1", len(got))
	}
	if at != 500*time.Millisecond {
		t.Fatalf("timeout flush at %v, want 500ms", at)
	}
	_, bySize, byTimeout, _ := c.Stats()
	if bySize != 0 || byTimeout != 1 {
		t.Fatalf("bySize=%d byTimeout=%d, want 0/1", bySize, byTimeout)
	}
}

func TestTimeoutTimerResetAfterSizeFlush(t *testing.T) {
	s := sim.New(1)
	var flushes int
	c := New(s, 2, time.Second, func(b *wire.Batch) { flushes++ })
	s.After(0, func() {
		c.AddElement(elem(1))
		c.AddElement(elem(2)) // size flush; timer must be canceled
	})
	s.Run()
	if flushes != 1 {
		t.Fatalf("flushes = %d, want exactly 1 (no empty timeout flush)", flushes)
	}
}

func TestProofsCountTowardLimit(t *testing.T) {
	s := sim.New(1)
	var got *wire.Batch
	c := New(s, 3, time.Hour, func(b *wire.Batch) { got = b })
	s.After(0, func() {
		c.AddElement(elem(1))
		c.AddProof(proof(1))
		c.AddProof(proof(2))
	})
	s.RunUntil(time.Millisecond)
	if got == nil {
		t.Fatal("mixed batch did not flush at limit")
	}
	if len(got.Elements) != 1 || len(got.Proofs) != 2 {
		t.Fatalf("batch = %d elems %d proofs, want 1/2", len(got.Elements), len(got.Proofs))
	}
}

func TestManualFlushAndEmptyFlushNoop(t *testing.T) {
	s := sim.New(1)
	var flushes int
	c := New(s, 100, 0, func(b *wire.Batch) { flushes++ })
	c.Flush() // empty: no-op
	if flushes != 0 {
		t.Fatal("empty flush produced a batch")
	}
	s.After(0, func() {
		c.AddElement(elem(1))
		c.Flush()
		c.Flush() // second flush has nothing
	})
	s.Run()
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1", flushes)
	}
}

func TestZeroTimeoutNeverArmsTimer(t *testing.T) {
	s := sim.New(1)
	var flushes int
	c := New(s, 10, 0, func(b *wire.Batch) { flushes++ })
	s.After(0, func() { c.AddElement(elem(1)) })
	s.Run()
	if flushes != 0 {
		t.Fatal("flush happened without timeout or limit")
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestBadConstruction(t *testing.T) {
	s := sim.New(1)
	for _, fn := range []func(){
		func() { New(s, 0, time.Second, func(*wire.Batch) {}) },
		func() { New(s, 10, time.Second, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: for any add sequence, no element is lost or duplicated across
// flushed batches plus the pending batch.
func TestQuickNoLossNoDup(t *testing.T) {
	f := func(adds uint16, limit uint8) bool {
		n := int(adds)%500 + 1
		lim := int(limit)%50 + 1
		s := sim.New(1)
		var flushed []*wire.Batch
		c := New(s, lim, 0, func(b *wire.Batch) { flushed = append(flushed, b) })
		s.After(0, func() {
			for i := 0; i < n; i++ {
				c.AddElement(elem(i))
			}
			c.Flush()
		})
		s.Run()
		seen := make(map[wire.ElementID]bool)
		total := 0
		for _, b := range flushed {
			for _, e := range b.Elements {
				if seen[e.ID] {
					return false
				}
				seen[e.ID] = true
				total++
			}
		}
		return total == n && c.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
