// Command benchgate guards the perf trajectory: it compares a freshly
// measured perf-probe artifact against a committed BENCH_*.json baseline
// and exits nonzero when the simulator's headline number — virtual
// seconds simulated per wall-clock second — regressed by more than the
// allowed fraction.
//
// Usage (what CI runs after the perf probe):
//
//	go run ./cmd/setchain-bench -exp perf -scale 0.1 -workers 1 -artifact BENCH_ci.json
//	go run ./cmd/benchgate -baseline BENCH_pr4.json -candidate BENCH_ci.json -max-regression 0.15
//
// The gate is one-sided: faster is always fine, slower than
// baseline·(1-max-regression) fails. The ratio of virtual to wall time
// factors out the probe's workload size but NOT the host's single-core
// speed, so a baseline measured on very different hardware will mis-gate:
// compare like with like (the committed baselines and CI both pin
// -workers 1 at scale 0.1), keep the threshold generous, and raise
// -max-regression on fleets whose runners vary more than ~15% from the
// baseline machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

// probeMetric is the perf probe's headline measurement in BENCH_*.json
// artifacts (see setchain-bench runPerf).
const probeMetric = "virtual_s_per_wall_s"

// Parallel-path probe metrics (setchain-bench's intra-run PDES probe).
// Baselines committed before the probe existed lack them, so each check
// applies only when the artifacts involved carry the metric: byte-identity
// needs only the candidate (it is machine-independent), while the speedup
// comparison needs both sides measured the same way.
const (
	intraIdenticalMetric = "intra_byte_identical"
	intraSpeedupMetric   = "intra_speedup"
)

// Mesh-transport probe metrics (setchain-bench's mesh probe). Like the
// intra metrics these are gated only when the candidate recorded them;
// the ratio is deterministic, so no baseline is needed — the mesh must
// always clear the 2x message reduction over broadcast at n=50.
const (
	meshBcastMetric = "bcast_msgs_per_commit"
	meshMsgsMetric  = "mesh_msgs_per_commit"
)

func main() {
	baseline := flag.String("baseline", "BENCH_pr4.json", "committed baseline artifact")
	candidate := flag.String("candidate", "", "freshly measured artifact to gate")
	maxRegression := flag.Float64("max-regression", 0.15, "allowed fractional slowdown before failing")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}
	base := probeValue(*baseline)
	cand := probeValue(*candidate)
	floor := base * (1 - *maxRegression)
	fmt.Printf("benchgate: %s %s=%.0f, %s %s=%.0f, floor %.0f (-%.0f%%)\n",
		*baseline, probeMetric, base, *candidate, probeMetric, cand,
		floor, 100**maxRegression)
	if cand < floor {
		fmt.Fprintf(os.Stderr,
			"benchgate: FAIL — %s regressed %.1f%% (%.0f -> %.0f virtual_s/wall_s; allowed %.0f%%)\n",
			probeMetric, 100*(1-cand/base), base, cand, 100**maxRegression)
		os.Exit(1)
	}

	// Parallel-path gates. Byte-identity is a hard correctness bit: any
	// candidate that measured the intra-run probe must have matched the
	// sequential fingerprint. The speedup gate engages only when both
	// artifacts carry the metric (pre-probe baselines don't).
	if v, ok := perfMetric(*candidate, intraIdenticalMetric); ok && v != 1 {
		fmt.Fprintf(os.Stderr,
			"benchgate: FAIL — %s: IntraWorkers changed the run's fingerprint (%s = %v)\n",
			*candidate, intraIdenticalMetric, v)
		os.Exit(1)
	}
	baseSpeed, okBase := perfMetric(*baseline, intraSpeedupMetric)
	candSpeed, okCand := perfMetric(*candidate, intraSpeedupMetric)
	if okBase && okCand {
		speedFloor := baseSpeed * (1 - *maxRegression)
		fmt.Printf("benchgate: %s %s=%.2f, %s %s=%.2f, floor %.2f\n",
			*baseline, intraSpeedupMetric, baseSpeed, *candidate, intraSpeedupMetric, candSpeed, speedFloor)
		if candSpeed < speedFloor {
			fmt.Fprintf(os.Stderr,
				"benchgate: FAIL — %s regressed %.1f%% (%.2fx -> %.2fx; allowed %.0f%%)\n",
				intraSpeedupMetric, 100*(1-candSpeed/baseSpeed), baseSpeed, candSpeed, 100**maxRegression)
			os.Exit(1)
		}
	}
	// Mesh-transport gate: any candidate that measured the mesh probe must
	// show the gossip mesh at or under half the broadcast messages per
	// committed element. Both numbers are deterministic measurements of the
	// candidate itself, so this gate never depends on the baseline.
	bcastPer, okB := perfMetric(*candidate, meshBcastMetric)
	meshPer, okM := perfMetric(*candidate, meshMsgsMetric)
	if okB && okM {
		fmt.Printf("benchgate: %s %s=%.1f, %s=%.1f (ceiling %.1f)\n",
			*candidate, meshBcastMetric, bcastPer, meshMsgsMetric, meshPer, bcastPer/2)
		if meshPer > bcastPer/2 {
			fmt.Fprintf(os.Stderr,
				"benchgate: FAIL — mesh transport uses %.1f msgs/commit vs broadcast %.1f: reduction %.2fx is under the required 2x\n",
				meshPer, bcastPer, bcastPer/meshPer)
			os.Exit(1)
		}
	}
	fmt.Println("benchgate: PASS")
}

// perfMetric loads an artifact and looks up one perf-experiment metric,
// reporting whether it was recorded at all.
func perfMetric(path string, name string) (float64, bool) {
	a, err := report.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	exp, ok := a.Experiment("perf")
	if !ok {
		return 0, false
	}
	v, ok := exp.Metrics[name]
	return v, ok
}

// probeValue loads an artifact and extracts the perf experiment's probe
// metric.
func probeValue(path string) float64 {
	a, err := report.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	exp, ok := a.Experiment("perf")
	if !ok {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no 'perf' experiment (run setchain-bench -exp perf -artifact)\n", path)
		os.Exit(2)
	}
	v, ok := exp.Metrics[probeMetric]
	if !ok || v <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s lacks the %s metric\n", path, probeMetric)
		os.Exit(2)
	}
	return v
}
