// Command benchgate guards the perf trajectory: it compares a freshly
// measured perf-probe artifact against a committed BENCH_*.json baseline
// and exits nonzero when the simulator's headline number — virtual
// seconds simulated per wall-clock second — regressed by more than the
// allowed fraction.
//
// Usage (what CI runs after the perf probe):
//
//	go run ./cmd/setchain-bench -exp perf -scale 0.1 -workers 1 -artifact BENCH_ci.json
//	go run ./cmd/benchgate -baseline BENCH_pr4.json -candidate BENCH_ci.json -max-regression 0.15
//
// The gate is one-sided: faster is always fine, slower than
// baseline·(1-max-regression) fails. The ratio of virtual to wall time
// factors out the probe's workload size but NOT the host's single-core
// speed, so a baseline measured on very different hardware will mis-gate:
// compare like with like (the committed baselines and CI both pin
// -workers 1 at scale 0.1), keep the threshold generous, and raise
// -max-regression on fleets whose runners vary more than ~15% from the
// baseline machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

// probeMetric is the perf probe's headline measurement in BENCH_*.json
// artifacts (see setchain-bench runPerf).
const probeMetric = "virtual_s_per_wall_s"

func main() {
	baseline := flag.String("baseline", "BENCH_pr4.json", "committed baseline artifact")
	candidate := flag.String("candidate", "", "freshly measured artifact to gate")
	maxRegression := flag.Float64("max-regression", 0.15, "allowed fractional slowdown before failing")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}
	base := probeValue(*baseline)
	cand := probeValue(*candidate)
	floor := base * (1 - *maxRegression)
	fmt.Printf("benchgate: %s %s=%.0f, %s %s=%.0f, floor %.0f (-%.0f%%)\n",
		*baseline, probeMetric, base, *candidate, probeMetric, cand,
		floor, 100**maxRegression)
	if cand < floor {
		fmt.Fprintf(os.Stderr,
			"benchgate: FAIL — %s regressed %.1f%% (%.0f -> %.0f virtual_s/wall_s; allowed %.0f%%)\n",
			probeMetric, 100*(1-cand/base), base, cand, 100**maxRegression)
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

// probeValue loads an artifact and extracts the perf experiment's probe
// metric.
func probeValue(path string) float64 {
	a, err := report.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	exp, ok := a.Experiment("perf")
	if !ok {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no 'perf' experiment (run setchain-bench -exp perf -artifact)\n", path)
		os.Exit(2)
	}
	v, ok := exp.Metrics[probeMetric]
	if !ok || v <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s lacks the %s metric\n", path, probeMetric)
		os.Exit(2)
	}
	return v
}
