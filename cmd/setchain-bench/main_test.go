package main

import (
	"testing"

	"repro/internal/spec"
)

// The runner map must stay aligned with the registry: a runner keyed by a
// name the registry does not know is unreachable, and an analytic entry
// (no cells) without a figure-specific runner could never execute.
func TestRunnersAlignWithRegistry(t *testing.T) {
	for name := range runners {
		if _, ok := spec.Get(name); !ok {
			t.Errorf("runner %q has no registry entry", name)
		}
	}
	for _, e := range spec.All() {
		if _, ok := runners[e.Name]; !ok && len(e.Cells) == 0 {
			t.Errorf("analytic entry %q has neither cells nor a runner", e.Name)
		}
	}
}

func TestWrap(t *testing.T) {
	lines := wrap("one two three four", 9)
	want := []string{"one two", "three", "four"}
	if len(lines) != len(want) {
		t.Fatalf("wrap = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("wrap = %v, want %v", lines, want)
		}
	}
	if got := wrap("", 10); len(got) != 0 {
		t.Fatalf("wrap(empty) = %v", got)
	}
}
