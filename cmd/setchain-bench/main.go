// Command setchain-bench regenerates every table and figure of "Setchain
// Algorithms for Blockchain Scalability" on the virtual-time simulator,
// and runs arbitrary declarative scenario files.
//
// Usage:
//
//	setchain-bench -exp all            # everything (minutes at -scale 1)
//	setchain-bench -exp fig1 -scale 0.2
//	setchain-bench -exp perf -artifact BENCH_pr4.json
//	setchain-bench -spec examples/specs/fig4.json
//	setchain-bench -spec examples/specs/wan.json -matrix servers=4,8,16
//	setchain-bench -exp fig4 -matrix delay=0s,30ms,100ms
//	setchain-bench -exp chaos_partition          # scheduled partition+heal
//	setchain-bench -exp fig4 -faults examples/specs/partition.json
//	setchain-bench -exp fig4 -matrix drop=0,0.01,0.05
//	setchain-bench -exp scale_tput               # sharded S=1/2/4/8 scaling curve
//	setchain-bench -spec examples/specs/sharded.json -matrix shards=1,2,4,8
//	setchain-bench -list
//
// Sharded scenarios (a "shards" spec field, the shards= matrix key, the
// scale_* registry family) run S independent Setchain instances in one
// shared network with elements routed by id digest (internal/shard);
// fault-plan node ids are then global (shard k's servers are k·n..k·n+n-1)
// and every run adds the cross-shard safety check on top of the per-shard
// one.
//
// Experiments come from the internal/spec registry (rendered into
// EXPERIMENTS.md by cmd/specdoc); -list prints each entry's description.
// -spec runs a JSON scenario document (one object or an array; see
// examples/specs/README.md), and -matrix crosses the cells over extra
// parameter values — repeat the flag for more axes. -matrix composes with
// a single -exp entry too, replacing the entry's custom rendering with
// the generic results table (it does not combine with -exp all).
//
// -faults FILE loads a JSON fault plan (a spec.FaultSpec document: crash/
// restart, partition/heal, per-link drop/duplicate/reorder probabilities
// and delay spikes) and appends its events to every cell being run, on top
// of whatever the cells already schedule. The chaos_* registry entries
// ship ready-made plans; the drop/duplicate/reorder -matrix keys sweep
// uniform link loss without a file. Like -matrix, -faults routes the
// entry through the generic results table.
//
// Every scenario — faulted or not — ends with the internal/invariant
// safety check; any violation is reported and the process exits nonzero.
//
// -scale shrinks sending rates, windows and fault schedules proportionally
// (saturation relationships against the fixed ledger/CPU capacities are
// preserved for rates near or above the ceilings; use 1 for the paper's
// exact workloads).
//
// -workers caps the study executor's worker pool (default GOMAXPROCS);
// independent study cells run concurrently, each simulation still
// single-threaded and deterministic. -artifact FILE writes a versioned
// machine-readable run artifact (internal/report schema: provenance,
// per-experiment wall time and metrics, and one record per simulation
// cell) — the successor of the earlier ad-hoc -json baselines, still
// committed as BENCH_*.json to track the perf trajectory and consumed by
// cmd/setchain-report for RESULTS.md fidelity tables.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/textplot"
)

// runners maps registry entries to their figure-specific renderers.
// Entries without a runner (future registry additions) fall back to the
// generic results table, so registering an experiment is enough to make
// it runnable. The -list order is the registry's.
var runners = map[string]func(scale float64){
	"table1":    runTable1,
	"table2":    runTable2,
	"fig1":      runFig1,
	"fig2left":  runFig2Left,
	"fig2right": runFig2Right,
	"fig3a":     runFig3a,
	"fig3b":     runFig3b,
	"fig3c":     runFig3c,
	"fig4":      runFig4,
	"fig5a":     runFig5a,
	"fig5b":     runFig5b,
	"fig5c":     runFig5c,
	"d1":        runD1,
	"perf":      runPerf,
}

// currentRecord is the -artifact record of the experiment currently
// running (see timed in main).
var currentRecord *report.ExperimentRecord

// recordMetric attaches an experiment-level metric (the perf probe's
// wall-clock family) to the experiment currently running.
func recordMetric(name string, v float64) {
	if currentRecord == nil {
		return
	}
	if currentRecord.Metrics == nil {
		currentRecord.Metrics = make(map[string]float64)
	}
	currentRecord.Metrics[name] = v
}

// captureCells attaches per-cell records — defaulted spec, measurements,
// invariant verdict — to the experiment currently running. Every runner
// calls it with the entry's cells and their results in cell order, so a
// -artifact file carries the full measurement set of whatever ran.
func captureCells(cells []spec.ScenarioSpec, results []*harness.Result) {
	if currentRecord == nil {
		return
	}
	currentRecord.Cells = report.FromResults(currentRecord.Name, cells, results).Cells
}

// matrixFlags accumulates repeated -matrix overrides into axes.
type matrixFlags []spec.Axis

func (m *matrixFlags) String() string {
	var parts []string
	for _, ax := range *m {
		parts = append(parts, ax.Key+"="+strings.Join(ax.Values, ","))
	}
	return strings.Join(parts, " ")
}

func (m *matrixFlags) Set(arg string) error {
	ax, err := spec.ParseAxis(arg)
	if err != nil {
		return err
	}
	*m = append(*m, ax)
	return nil
}

func main() {
	exp := flag.String("exp", "", "registry experiment to run (or 'all'; see -list)")
	specFile := flag.String("spec", "", "run a JSON scenario document instead of a registry experiment")
	var matrix matrixFlags
	flag.Var(&matrix, "matrix", "cross the cells over extra values, e.g. servers=4,8,16 (repeatable)")
	faultsFile := flag.String("faults", "", "apply a JSON fault plan (spec.FaultSpec) on top of every cell")
	scale := flag.Float64("scale", 1.0, "workload scale factor (rates, send windows and fault schedules)")
	list := flag.Bool("list", false, "list experiments with their descriptions")
	workers := flag.Int("workers", 0, "study executor workers (0 = GOMAXPROCS)")
	artifactOut := flag.String("artifact", "", "write a versioned run artifact (results + provenance) to this file")
	flag.Parse()
	harness.SetWorkers(*workers)

	var faultPlan *spec.FaultSpec
	if *faultsFile != "" {
		var err error
		if faultPlan, err = spec.LoadFaultFile(*faultsFile); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	}

	if *list || (*exp == "" && *specFile == "") {
		printCatalog()
		if *exp == "" && *specFile == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *exp != "" && *specFile != "" {
		fmt.Fprintln(os.Stderr, "-exp and -spec are mutually exclusive")
		os.Exit(2)
	}

	doc := report.Artifact{
		SchemaVersion: report.SchemaVersion,
		Provenance:    report.Provenance{Tool: "setchain-bench", Scale: *scale},
	}
	timed := func(name, desc string, run func()) {
		doc.Experiments = append(doc.Experiments, report.ExperimentRecord{Name: name})
		currentRecord = &doc.Experiments[len(doc.Experiments)-1]
		t0 := time.Now()
		fmt.Printf("==> %s — %s (scale %.2g)\n\n", name, desc, *scale)
		run()
		wall := time.Since(t0)
		currentRecord.WallSeconds = wall.Seconds()
		currentRecord = nil
		fmt.Printf("\n[%s done in %v]\n\n", name, wall.Round(time.Millisecond))
	}

	switch {
	case *specFile != "":
		cells, err := spec.LoadFile(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		if cells, err = spec.Expand(cells, matrix...); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		cells = withFaults(cells, faultPlan)
		timed(*specFile, "scenario document", func() {
			if err := runCells(cells, *scale); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
		})
	case *exp == "all":
		if len(matrix) > 0 || faultPlan != nil {
			fmt.Fprintln(os.Stderr, "-matrix/-faults need a single experiment (or -spec), not -exp all")
			os.Exit(2)
		}
		for _, e := range spec.All() {
			e := e
			timed(e.Name, e.Figure+": "+e.Title, func() { runEntry(e, matrix, faultPlan, *scale) })
		}
	default:
		e, ok := spec.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			if sugg := spec.SuggestEntries(*exp); len(sugg) > 0 {
				fmt.Fprintf(os.Stderr, "did you mean: %s?\n", strings.Join(sugg, ", "))
			}
			os.Exit(2)
		}
		timed(e.Name, e.Figure+": "+e.Title, func() { runEntry(e, matrix, faultPlan, *scale) })
	}

	if *artifactOut != "" {
		// Seed/mode come from the cells that actually ran (a -spec file may
		// override both), not from the registry catalog; runtime provenance
		// (git subprocess included) is gathered only when actually writing.
		report.StampRuntime(&doc.Provenance)
		doc.Provenance.Seed, doc.Provenance.Mode = report.CellsSeedMode(doc.Experiments)
		if err := doc.WriteFile(*artifactOut); err != nil {
			fmt.Fprintf(os.Stderr, "write artifact: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("run artifact written to %s\n", *artifactOut)
	}

	// Every scenario executed above ran the end-of-run safety check; a
	// violation anywhere is a hard failure regardless of which renderer
	// displayed the run.
	if v := harness.InvariantViolations(); v > 0 {
		fmt.Fprintf(os.Stderr, "SAFETY: %d scenario(s) violated Setchain invariants (see output above)\n", v)
		os.Exit(1)
	}
	// Soak cells declare a heap ceiling; exceeding it is an unbounded-memory
	// regression and fails the run just like a safety violation.
	if v := harness.HeapViolations(); v > 0 {
		fmt.Fprintf(os.Stderr, "MEMORY: %d scenario(s) exceeded their declared heap ceiling (see output above)\n", v)
		os.Exit(1)
	}
}

// withFaults appends a -faults plan's events to every cell, on top of
// whatever the cells already schedule.
func withFaults(cells []spec.ScenarioSpec, fs *spec.FaultSpec) []spec.ScenarioSpec {
	if fs == nil {
		return cells
	}
	out := make([]spec.ScenarioSpec, len(cells))
	for i, c := range cells {
		var events []spec.FaultEventSpec
		if c.Faults != nil {
			events = append(events, c.Faults.Events...)
		}
		events = append(events, fs.Events...)
		c.Faults = &spec.FaultSpec{Events: events}
		out[i] = c
	}
	return out
}

// printCatalog renders the rich -list: every registry entry with the
// figure it reproduces and its description.
func printCatalog() {
	fmt.Println("experiments (from the internal/spec registry; full catalog in EXPERIMENTS.md):")
	for _, e := range spec.All() {
		cells := "analytic"
		if n := len(e.Cells); n > 0 {
			cells = fmt.Sprintf("%d cells", n)
		}
		fmt.Printf("\n  %-10s %s — %s (%s)\n", e.Name, e.Figure, e.Title, cells)
		for _, line := range wrap(e.Description, 66) {
			fmt.Printf("             %s\n", line)
		}
	}
	fmt.Printf("\n  %-10s run everything\n", "all")
	fmt.Println("\nor run a scenario document: -spec file.json [-matrix servers=4,8,16]")
}

// wrap breaks s into lines at most width runes wide on word boundaries.
func wrap(s string, width int) []string {
	var lines []string
	var cur string
	for _, w := range strings.Fields(s) {
		switch {
		case cur == "":
			cur = w
		case len(cur)+1+len(w) <= width:
			cur += " " + w
		default:
			lines = append(lines, cur)
			cur = w
		}
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

// runEntry runs one registry entry: through its figure-specific renderer
// when it has one and no matrix/fault overrides are in play, otherwise
// through the generic results table over its (expanded) cells.
func runEntry(e spec.Entry, matrix []spec.Axis, faultPlan *spec.FaultSpec, scale float64) {
	if run, ok := runners[e.Name]; ok && len(matrix) == 0 && faultPlan == nil {
		run(scale)
		return
	}
	if len(e.Cells) == 0 {
		fmt.Fprintf(os.Stderr, "entry %q is analytic: it has no cells to expand with -matrix/-faults\n", e.Name)
		os.Exit(2)
	}
	cells, err := spec.Expand(e.Cells, matrix...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	cells = withFaults(cells, faultPlan)
	if err := runCells(cells, scale); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}

// runCells executes expanded scenario cells on the worker pool and prints
// the generic results table.
func runCells(cells []spec.ScenarioSpec, scale float64) error {
	results, err := harness.RunSpecs(cells, scale)
	if err != nil {
		return err
	}
	captureCells(cells, results)
	stages := false
	for _, c := range cells {
		if c.Metrics == spec.MetricsStages {
			stages = true
		}
	}
	faulted := false
	for _, c := range cells {
		if c.Faults != nil && len(c.Faults.Events) > 0 {
			faulted = true
		}
	}
	sharded := false
	for _, c := range cells {
		if c.Shards > 1 {
			sharded = true
		}
	}
	ckpt := false
	heap := false
	for _, c := range cells {
		if c.CheckpointInterval > 0 {
			ckpt = true
		}
		if c.HeapCeilingMB > 0 {
			heap = true
		}
	}
	open := false
	for _, c := range cells {
		if c.Admission != nil || c.Open != nil {
			open = true
		}
	}
	headers := []string{"Scenario", "n", "Rate el/s", "Delay",
		"Injected", "Committed", "Avg el/s", "Eff@2x", "Analytic", "Safety"}
	if sharded {
		// n stays the per-shard group size; S is the shard count.
		headers = append(headers, "S")
	}
	if ckpt {
		// Seals are the observer's checkpoint count; syncs count servers
		// that recovered via checkpoint state-sync instead of full replay.
		headers = append(headers, "Ckpts", "Syncs")
	}
	if heap {
		headers = append(headers, "Heap MiB")
	}
	if faulted {
		headers = append(headers, "Faults")
	}
	if open {
		// Offered counts every generation attempt (accepted + rejected);
		// Rej% is the admission gate's shed fraction; Fair is the Jain
		// index over per-client acceptance ratios.
		headers = append(headers, "Offered", "Rej%", "Fair")
	}
	if stages {
		headers = append(headers, "p50 commit", "p99 commit")
	}
	t := &textplot.Table{Title: "Scenario results", Headers: headers}
	for i, res := range results {
		sc := res.Scenario
		label := cells[i].Label()
		if cells[i].Group != "" {
			label = cells[i].Group + " " + label
		}
		safety := "ok"
		if res.Invariant != nil {
			safety = "VIOLATED"
			fmt.Fprintf(os.Stderr, "SAFETY VIOLATION in %q:\n%v\n", label, res.Invariant)
		}
		row := []string{
			label,
			fmt.Sprintf("%d", sc.Servers),
			fmt.Sprintf("%.0f", sc.Rate),
			sc.NetworkDelay.String(),
			fmt.Sprintf("%d", res.Injected),
			fmt.Sprintf("%d", res.Committed),
			fmt.Sprintf("%.0f", res.AvgTput),
			fmt.Sprintf("%.3f", res.Eff100),
			fmt.Sprintf("%.0f", res.Analytical),
			safety,
		}
		if sharded {
			s := sc.Shards
			if s < 1 {
				s = 1
			}
			row = append(row, fmt.Sprintf("%d", s))
		}
		if ckpt {
			row = append(row, fmt.Sprintf("%d", res.CheckpointSeals),
				fmt.Sprintf("%d", res.SyncInstalls))
		}
		if heap {
			h := "-"
			if res.HeapLiveMB >= 0 {
				h = fmt.Sprintf("%.0f/%d", res.HeapLiveMB, sc.HeapCeilingMB)
				if res.HeapViolation {
					h += " OVER"
					fmt.Fprintf(os.Stderr, "HEAP CEILING EXCEEDED in %q: %.0f MiB live > %d MiB ceiling\n",
						label, res.HeapLiveMB, sc.HeapCeilingMB)
				}
			}
			row = append(row, h)
		}
		if faulted {
			row = append(row, cells[i].Faults.Summary())
		}
		if open {
			rej := "-"
			if res.Offered > 0 {
				rej = fmt.Sprintf("%.1f", 100*float64(res.Rejected)/float64(res.Offered))
			}
			row = append(row, fmt.Sprintf("%d", res.Offered), rej,
				fmt.Sprintf("%.3f", res.Fairness))
		}
		if stages {
			p50, p99 := "-", "-"
			if res.Recorder != nil {
				if lats, _ := res.Recorder.LatencyCDF(metrics.StageCommitted); len(lats) > 0 {
					p50 = metrics.LatencyQuantile(lats, 0.50).Round(time.Millisecond).String()
					p99 = metrics.LatencyQuantile(lats, 0.99).Round(time.Millisecond).String()
				}
			}
			row = append(row, p50, p99)
		}
		t.AddRow(row...)
		recordMetric(fmt.Sprintf("cell%d_avg_tput", i), res.AvgTput)
	}
	fmt.Print(t.Render())
	// Sharded cells get a per-shard breakdown under the table: the
	// aggregate hides router balance and straggler shards.
	for i, res := range results {
		if len(res.PerShard) == 0 {
			continue
		}
		label := cells[i].Label()
		if cells[i].Group != "" {
			label = cells[i].Group + " " + label
		}
		fmt.Printf("\n%s — %d superepochs; per shard:\n", label, len(res.SuperDigests))
		for _, st := range res.PerShard {
			fmt.Printf("  shard %d: injected %d, committed %d, avg %.0f el/s, %d epochs, %d blocks\n",
				st.Shard, st.Injected, st.Committed, st.AvgTput, st.Epochs, st.Blocks)
		}
	}
	return nil
}

// runPerf measures the simulator's speedup — virtual seconds simulated per
// wall-clock second — on the Fig. 4 workload (Hashchain c=100, 1,250 el/s),
// the same cell BenchmarkAblationVirtualTime uses, plus a parallel sweep of
// that cell across the worker pool to expose executor scaling. Committed
// BENCH_*.json files track these numbers across changes.
func runPerf(scale float64) {
	sc := harness.Scenario{Spec: harness.SpecHash100, Rate: 1250, Scale: scale}

	start := time.Now()
	res := harness.Run(sc)
	wall := time.Since(start).Seconds()
	captureCells(spec.MustGet("perf").Cells, []*harness.Result{res})
	virtual := res.Scenario.Horizon.Seconds()
	if wall > 0 {
		recordMetric("virtual_s_per_wall_s", virtual/wall)
		recordMetric("events_per_wall_s", float64(res.Events)/wall)
	}
	recordMetric("events", float64(res.Events))
	recordMetric("single_run_wall_s", wall)
	fmt.Printf("single cell: %.0f virtual s in %.3f wall s  =>  %.0f virtual_s/wall_s, %d events\n",
		virtual, wall, virtual/wall, res.Events)

	const sweepCells = 4
	cells := make([]harness.Scenario, sweepCells)
	for i := range cells {
		cells[i] = sc
	}
	start = time.Now()
	harness.RunMany(cells)
	sweepWall := time.Since(start).Seconds()
	if sweepWall > 0 {
		recordMetric("sweep_cells", sweepCells)
		recordMetric("sweep_wall_s", sweepWall)
		recordMetric("sweep_speedup_vs_serial", sweepCells*wall/sweepWall)
	}
	fmt.Printf("%d-cell sweep on %d workers: %.3f wall s (%.2fx vs serial estimate)\n",
		sweepCells, harness.Workers(), sweepWall, sweepCells*wall/sweepWall)

	// Intra-run parallel PDES probe (DESIGN.md §12): the S=8 scale_tput
	// cell — eight shards, so eight partition queues — at IntraWorkers 1
	// versus NumCPU inside ONE run. Byte-identity of the two fingerprints
	// is machine-independent and gated by benchgate on every artifact that
	// records it; the speedup depends on real cores and is recorded for
	// the perf trajectory only on multi-core hosts (with one core both
	// runs are IW=1 and the ratio is noise).
	cells, err := harness.EntryScenarios("scale_tput", scale)
	if err != nil || len(cells) < 4 {
		fmt.Fprintf(os.Stderr, "intra probe: scale_tput cells unavailable: %v\n", err)
		return
	}
	psc := cells[3] // S=8
	psc.IntraWorkers = 1
	start = time.Now()
	seq := harness.Run(psc)
	seqWall := time.Since(start).Seconds()
	iw := runtime.NumCPU()
	psc.IntraWorkers = iw
	start = time.Now()
	par := harness.Run(psc)
	parWall := time.Since(start).Seconds()
	identical := bytes.Equal(harness.Fingerprint(seq), harness.Fingerprint(par))
	recordMetric("intra_workers", float64(iw))
	if identical {
		recordMetric("intra_byte_identical", 1)
	} else {
		recordMetric("intra_byte_identical", 0)
	}
	recordMetric("intra_wall_iw1_s", seqWall)
	recordMetric("intra_wall_iwn_s", parWall)
	// With one core both runs use IW=1 and the ratio is pure timer noise;
	// recording it would bake a meaningless floor into the committed
	// baseline and flap benchgate's speedup comparison on the next one.
	if iw > 1 && parWall > 0 {
		recordMetric("intra_speedup", seqWall/parWall)
	}
	fmt.Printf("intra-run PDES probe (%s, S=8): IW=1 %.3f s, IW=%d %.3f s, speedup %.2fx, byte-identical=%v\n",
		psc.Name, seqWall, iw, parWall, seqWall/parWall, identical)
	if !identical {
		fmt.Fprintln(os.Stderr, "intra probe: IntraWorkers changed the result — the PDES equivalence contract is broken")
		os.Exit(1)
	}

	// Mesh transport probe (DESIGN.md §13): the mesh_vs_broadcast pair — the
	// same n=50 workload on the flat broadcast transport and on the fanout-8
	// gossip mesh. Messages per committed element are deterministic, so the
	// committed baseline pins the Θ(n²)→O(n·fanout) reduction and benchgate
	// fails any artifact where the mesh stops clearing 2x.
	mcells, err := harness.EntryScenarios("mesh_vs_broadcast", scale)
	if err != nil || len(mcells) != 2 {
		fmt.Fprintf(os.Stderr, "mesh probe: mesh_vs_broadcast cells unavailable: %v\n", err)
		return
	}
	bres, mres := harness.Run(mcells[0]), harness.Run(mcells[1])
	if bres.Committed == 0 || mres.Committed == 0 {
		fmt.Fprintf(os.Stderr, "mesh probe: no commits (broadcast %d, mesh %d) — metrics not recorded\n",
			bres.Committed, mres.Committed)
		return
	}
	bper := float64(bres.NetMsgs) / float64(bres.Committed)
	mper := float64(mres.NetMsgs) / float64(mres.Committed)
	recordMetric("bcast_msgs_per_commit", bper)
	recordMetric("mesh_msgs_per_commit", mper)
	recordMetric("mesh_msgs_ratio", mper/bper)
	fmt.Printf("mesh probe (n=50): broadcast %.1f msgs/commit, mesh f=%d %.1f msgs/commit, ratio %.3f\n",
		bper, mcells[1].Fanout, mper, mper/bper)
}

func runTable1(float64) {
	g := harness.PaperGrid()
	t := &textplot.Table{
		Title:   "Table 1: Parameters for Setchain evaluation",
		Headers: []string{"Name", "Description", "Values"},
	}
	t.AddRow("sending_rate", "Adding rate (el/s)", joinF(g.SendingRates))
	t.AddRow("collector_limit", "Collector size (el)", joinI(g.Collectors))
	t.AddRow("server_count", "Number of servers", joinI(g.ServerCounts))
	t.AddRow("network_delay", "Delay increase (ms)", joinD(g.NetworkDelays))
	fmt.Print(t.Render())
}

func joinF(vs []float64) string {
	var p []string
	for _, v := range vs {
		p = append(p, fmt.Sprintf("%.0f", v))
	}
	return strings.Join(p, ", ")
}

func joinI(vs []int) string {
	var p []string
	for _, v := range vs {
		p = append(p, fmt.Sprintf("%d", v))
	}
	return strings.Join(p, ", ")
}

func joinD(vs []time.Duration) string {
	var p []string
	for _, v := range vs {
		p = append(p, fmt.Sprintf("%d", v.Milliseconds()))
	}
	return strings.Join(p, ", ")
}

func runTable2(scale float64) {
	t := &textplot.Table{
		Title: "Table 2: Throughput comparison (avg to end of sending) for Fig. 1\n" +
			"paper:  left  V=171  C=996  H=4183 | center C=571 H=2540 | right C=743 H=7369",
		Headers: []string{"Panel", "Algorithm", "Measured el/s", "Analytical el/s"},
	}
	var all []*harness.Result
	for _, panel := range harness.Fig1Panels() {
		for _, res := range harness.RunFig1Panel(panel, scale) {
			all = append(all, res)
			t.AddRow(panel.Name, res.Scenario.Spec.Label(),
				fmt.Sprintf("%.0f", res.AvgTput), fmt.Sprintf("%.0f", res.Analytical))
		}
	}
	captureCells(spec.MustGet("table2").Cells, all)
	fmt.Print(t.Render())
}

func runFig1(scale float64) {
	var all []*harness.Result
	for _, panel := range harness.Fig1Panels() {
		results := harness.RunFig1Panel(panel, scale)
		all = append(all, results...)
		p := &textplot.LinePlot{
			Title: fmt.Sprintf("Fig. 1 (%s): throughput over time — rate %.0f el/s, c=%d, 10 servers",
				panel.Name, panel.Rate*scale, panel.Collector),
			XLabel: "time (s)", YLabel: "el/s (9 s rolling avg)",
			LogY:   true,
			HLines: map[string]float64{},
		}
		for _, res := range results {
			var xs, ys []float64
			for _, pt := range res.Series {
				xs = append(xs, pt.Time.Seconds())
				ys = append(ys, pt.Rate)
			}
			p.Add(res.Scenario.Spec.Label(), xs, ys)
			bound := res.Analytical
			if res.Scenario.Rate < bound {
				bound = res.Scenario.Rate
			}
			p.HLines["min(rate,analytic) "+res.Scenario.Spec.Label()] = bound
		}
		fmt.Print(p.Render())
		fmt.Println()
	}
	captureCells(spec.MustGet("fig1").Cells, all)
}

func runFig2Left(scale float64) {
	results := harness.RunLimitStudy(scale)
	p := &textplot.LinePlot{
		Title: "Fig. 2 (left): highest throughput, c=500, 10 servers\n" +
			"paper: Hashchain w/ reversal avg 20,061 el/s; Hashchain Light avg 133,882 el/s",
		XLabel: "time (s)", YLabel: "el/s (9 s rolling avg)",
		LogY: true,
	}
	t := &textplot.Table{Headers: []string{"Variant", "Sending el/s", "Avg to send-end el/s", "Analytical el/s"}}
	var all []*harness.Result
	for _, lr := range results {
		res := lr.Result
		all = append(all, res)
		var xs, ys []float64
		for _, pt := range res.Series {
			xs = append(xs, pt.Time.Seconds())
			ys = append(ys, pt.Rate)
		}
		p.Add(lr.Label, xs, ys)
		t.AddRow(lr.Label, fmt.Sprintf("%.0f", res.Scenario.Rate),
			fmt.Sprintf("%.0f", res.AvgTput), fmt.Sprintf("%.0f", res.Analytical))
	}
	captureCells(spec.MustGet("fig2left").Cells, all)
	fmt.Print(p.Render())
	fmt.Println()
	fmt.Print(t.Render())
}

func runFig2Right(float64) {
	sweep := analysis.BlockSizeSweep()
	p := &textplot.LinePlot{
		Title:  "Fig. 2 (right): analytical throughput vs block size (c=500)",
		XLabel: "block size (MB, doubling)", YLabel: "el/s",
		LogY: true,
	}
	var xs, v, c, h []float64
	for i, pt := range sweep {
		xs = append(xs, float64(i)) // doubling steps, log-x effectively
		v = append(v, pt.Vanilla)
		c = append(c, pt.Compresschain)
		h = append(h, pt.Hashchain)
	}
	p.Add("Vanilla", xs, v)
	p.Add("Compresschain", xs, c)
	p.Add("Hashchain", xs, h)
	fmt.Print(p.Render())
	t := &textplot.Table{Headers: []string{"Block MB", "Vanilla", "Compresschain", "Hashchain"}}
	for _, pt := range sweep {
		t.AddRow(fmt.Sprintf("%g", pt.BlockMB), fmt.Sprintf("%.0f", pt.Vanilla),
			fmt.Sprintf("%.0f", pt.Compresschain), fmt.Sprintf("%.0f", pt.Hashchain))
	}
	fmt.Println()
	fmt.Print(t.Render())
}

func effChart(title string, cells []harness.EfficiencyCell) {
	groups := map[string]*textplot.BarGroup{}
	var order []string
	for _, c := range cells {
		g, ok := groups[c.Param]
		if !ok {
			g = &textplot.BarGroup{Label: c.Param}
			groups[c.Param] = g
			order = append(order, c.Param)
		}
		g.Bars = append(g.Bars,
			textplot.Bar{Name: c.Spec.Label() + " @send-end", Value: c.Result.Eff50},
			textplot.Bar{Name: c.Spec.Label() + " @1.5x", Value: c.Result.Eff75},
			textplot.Bar{Name: c.Spec.Label() + " @2.0x", Value: c.Result.Eff100},
		)
	}
	chart := &textplot.BarChart{Title: title, Max: 1}
	for _, name := range order {
		chart.Group = append(chart.Group, *groups[name])
	}
	fmt.Print(chart.Render())
}

// captureEff records a Fig. 3/5-style grid's cells into the current
// -artifact experiment.
func captureEff(name string, cells []harness.EfficiencyCell) {
	rs := make([]*harness.Result, len(cells))
	for i, c := range cells {
		rs[i] = c.Result
	}
	captureCells(spec.MustGet(name).Cells, rs)
}

func runFig3a(scale float64) {
	cells := harness.RunEfficiencyVsRate(scale)
	captureEff("fig3a", cells)
	effChart("Fig. 3a: efficiency vs sending rate (10 servers, no delay)", cells)
}

func runFig3b(scale float64) {
	cells := harness.RunEfficiencyVsServers(scale)
	captureEff("fig3b", cells)
	effChart("Fig. 3b: efficiency vs number of servers (10,000 el/s, no delay)", cells)
}

func runFig3c(scale float64) {
	cells := harness.RunEfficiencyVsDelay(scale)
	captureEff("fig3c", cells)
	effChart("Fig. 3c: efficiency vs network delay (10 servers, 10,000 el/s)", cells)
}

func runFig4(scale float64) {
	curves := harness.RunLatencyStudy(scale)
	rs := make([]*harness.Result, len(curves))
	for i, lc := range curves {
		rs[i] = lc.Result
	}
	captureCells(spec.MustGet("fig4").Cells, rs)
	for _, lc := range curves {
		data := map[string][]float64{}
		reach := map[string]float64{}
		for st := metrics.StageFirstMempool; st <= metrics.StageCommitted; st++ {
			var xs []float64
			for _, d := range lc.Stages[st] {
				xs = append(xs, d.Seconds())
			}
			data[st.String()] = xs
			reach[st.String()] = lc.Reach[st]
		}
		fmt.Print(textplot.CDF(
			fmt.Sprintf("Fig. 4 (%s): latency CDF to five stages — 10 servers, 1250 el/s, c=100",
				lc.Spec.Label()),
			72, 18, data, reach))
		commit := lc.Stages[metrics.StageCommitted]
		fmt.Printf("  commit latency: p50=%v p95=%v p99=%v (paper: finality < 4 s w.p. ~1)\n\n",
			metrics.LatencyQuantile(commit, 0.50).Round(time.Millisecond),
			metrics.LatencyQuantile(commit, 0.95).Round(time.Millisecond),
			metrics.LatencyQuantile(commit, 0.99).Round(time.Millisecond))
	}
}

func commitChart(title string, cells []harness.EfficiencyCell) {
	t := &textplot.Table{
		Title:   title,
		Headers: []string{"Scenario", "Variant", "first", "10%", "20%", "30%", "40%", "50%"},
	}
	for _, c := range cells {
		row := []string{c.Param, c.Spec.Label()}
		for _, pct := range []int{0, 10, 20, 30, 40, 50} {
			if tm, ok := c.Result.CommitFrac[pct]; ok {
				row = append(row, fmt.Sprintf("%.0fs", tm.Seconds()))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	fmt.Print(t.Render())
}

func runFig5a(scale float64) {
	cells := harness.RunCommitTimeStudy(harness.CommitVsRate, scale)
	captureEff("fig5a", cells)
	commitChart("Fig. 5a: commit times vs sending rate (10 servers, no delay)", cells)
}

func runFig5b(scale float64) {
	cells := harness.RunCommitTimeStudy(harness.CommitVsServers, scale)
	captureEff("fig5b", cells)
	commitChart("Fig. 5b: commit times vs number of servers (10,000 el/s)", cells)
}

func runFig5c(scale float64) {
	cells := harness.RunCommitTimeStudy(harness.CommitVsDelay, scale)
	captureEff("fig5c", cells)
	commitChart("Fig. 5c: commit times vs network delay (10 servers, 10,000 el/s)", cells)
}

func runD1(float64) {
	t := &textplot.Table{
		Title: "Appendix D.1: analytical throughput (n=10, C=0.5 MiB, R=0.8 b/s, le=438, lp=lh=139)\n" +
			"paper: Tv≈955, Tc[100]≈2497, Tc[500]≈3330, Th[100]≈27157, Th[500]≈147857",
		Headers: []string{"Algorithm", "Collector", "Throughput el/s"},
	}
	rows := analysis.D1Table()
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Throughput < rows[j].Throughput })
	for _, r := range rows {
		c := "-"
		if r.Collector > 0 {
			c = fmt.Sprintf("%d", r.Collector)
		}
		t.AddRow(r.Label, c, fmt.Sprintf("%.0f", r.Throughput))
	}
	fmt.Print(t.Render())
	p := analysis.PaperParams()
	p.CollectorSize = 500
	fmt.Printf("\nheadline ratios: Th[500]/Tv = %.0f (paper ~155), Th[500]/Tc[500] = %.0f (paper ~44)\n",
		analysis.HashchainThroughput(p)/analysis.VanillaThroughput(p),
		analysis.HashchainThroughput(p)/analysis.CompresschainThroughput(p))
}
