// Command setchain-demo runs a full-fidelity Setchain deployment (real
// ed25519, SHA-512, DEFLATE) on the virtual-time simulator and narrates the
// life of a batch of elements: add -> batch -> ledger -> consolidation ->
// f+1 epoch-proofs -> client verification.
//
//	setchain-demo -alg hashchain -servers 7 -elements 50 -byzantine 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/setchain"
)

func main() {
	algName := flag.String("alg", "hashchain", "vanilla | compresschain | hashchain")
	servers := flag.Int("servers", 4, "number of Setchain servers")
	elements := flag.Int("elements", 20, "elements to add")
	collector := flag.Int("collector", 10, "collector size c")
	byzantine := flag.Int("byzantine", 0, "number of Byzantine servers (must be <= f)")
	delay := flag.Duration("delay", 0, "artificial network delay (e.g. 30ms)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var alg setchain.Algorithm
	switch *algName {
	case "vanilla":
		alg = setchain.Vanilla
	case "compresschain":
		alg = setchain.Compresschain
	case "hashchain":
		alg = setchain.Hashchain
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	net, err := setchain.New(setchain.Config{
		Algorithm:     alg,
		Servers:       *servers,
		CollectorSize: *collector,
		NetworkDelay:  *delay,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	f := net.F()
	if *byzantine > f {
		log.Fatalf("%d Byzantine servers exceeds the tolerated f=%d", *byzantine, f)
	}
	for i := 0; i < *byzantine; i++ {
		srv := *servers - 1 - i
		net.SetByzantine(srv, &setchain.Byzantine{
			InjectBogusElements: 2,
			RefuseServe:         func(int, []byte) bool { return true },
			CorruptProofs:       true,
		})
		fmt.Printf("server %d is Byzantine (injects junk, withholds batches, corrupts proofs)\n", srv)
	}
	fmt.Printf("%s on %d servers (f=%d), collector=%d, delay=%v, seed=%d\n\n",
		alg, *servers, f, *collector, *delay, *seed)

	honest := *servers - *byzantine
	var ids []setchain.ElementID
	start := time.Now()
	for i := 0; i < *elements; i++ {
		id, err := net.Client(i % honest).Add([]byte(fmt.Sprintf("element-%03d", i)))
		if err != nil {
			log.Fatalf("add %d: %v", i, err)
		}
		ids = append(ids, id)
		net.Run(100 * time.Millisecond)
	}
	fmt.Printf("added %d elements through %d correct servers (virtual t=%v)\n",
		len(ids), honest, net.Now())

	if !net.RunUntilSettled(5 * time.Minute) {
		log.Fatalf("only %d of %d elements settled", net.Committed(), net.Added())
	}
	fmt.Printf("all elements committed at virtual t=%v (wall %v)\n\n",
		net.Now(), time.Since(start).Round(time.Millisecond))

	verified := 0
	for _, id := range ids {
		if _, err := net.Client(0).Confirm(1, id); err == nil {
			verified++
		}
	}
	fmt.Printf("client verification with f+1=%d epoch-proofs: %d/%d elements\n",
		f+1, verified, len(ids))
	if verified != len(ids) {
		os.Exit(1)
	}

	hist := net.History(0)
	total := 0
	for _, ep := range hist {
		total += len(ep.Elements)
	}
	fmt.Printf("history: %d epochs holding %d elements (epoch sizes:", len(hist), total)
	for _, ep := range hist {
		fmt.Printf(" %d", len(ep.Elements))
	}
	fmt.Println(")")
}
